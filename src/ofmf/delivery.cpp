#include "ofmf/delivery.hpp"

#include <algorithm>
#include <map>

#include "common/logging.hpp"
#include "common/strings.hpp"
#include "common/trace.hpp"
#include "http/sse.hpp"
#include "http/uri.hpp"
#include "json/serialize.hpp"

namespace ofmf::core {

namespace {

/// Adapter the default wire factory hands out: rewrites the full-URL
/// destination target ("http://127.0.0.1:9001/events") into the origin-form
/// target TcpClient speaks, and delegates to the shared pooled client.
class PooledEndpointClient : public http::HttpClient {
 public:
  PooledEndpointClient(std::shared_ptr<http::TcpClient> inner, std::string url_prefix)
      : inner_(std::move(inner)), url_prefix_(std::move(url_prefix)) {}

  Result<http::Response> Send(const http::Request& request) override {
    http::Request wire = request;
    std::string target = request.target.empty() ? request.path : request.target;
    if (strings::StartsWith(target, url_prefix_)) {
      target = target.substr(url_prefix_.size());
    }
    if (target.empty() || target.front() != '/') target.insert(0, "/");
    const http::ParsedUri parsed = http::ParseUriTarget(target);
    wire.target = std::move(target);
    wire.path = parsed.path;
    wire.query = parsed.query;
    return inner_->Send(wire);
  }

 private:
  std::shared_ptr<http::TcpClient> inner_;
  std::string url_prefix_;  // "http://<host>:<port>"
};

/// One pooled TcpClient per loopback port, shared across every subscriber
/// delivering to that endpoint (weak registry: the pool dies with its last
/// subscriber instead of accreting sockets for retired ports).
std::shared_ptr<http::TcpClient> SharedClientForPort(std::uint16_t port) {
  static std::mutex registry_mu;
  static std::map<std::uint16_t, std::weak_ptr<http::TcpClient>> registry;
  std::lock_guard<std::mutex> lock(registry_mu);
  std::weak_ptr<http::TcpClient>& slot = registry[port];
  if (auto existing = slot.lock()) return existing;
  auto created = std::make_shared<http::TcpClient>(port, 5000);
  slot = created;
  return created;
}

/// Placeholder spliced out of the serialized batch envelope and replaced
/// with the items' pre-serialized Events entries. Alphanumeric so the
/// serializer emits it verbatim (no escaping).
constexpr const char* kSpliceToken = "__ofmf_batch_splice__";

/// Coalesces a batch into one wire document: the first record's envelope
/// with every item's "Events" array concatenated. A batch of one posts the
/// original record unchanged, so single-event delivery is byte-identical to
/// the pre-batching wire format. Events are serialized once per publish
/// (cached on the shared DeliveryItem) and spliced as strings here, so the
/// per-subscriber cost of a fan-out is a memcpy, not a JSON deep copy.
std::string BuildBatchBody(const std::vector<DeliveryItemPtr>& batch) {
  if (batch.size() == 1) return batch.front()->record_json();
  json::Json envelope = batch.front()->record;
  envelope.as_object().Set("Events", json::Json::Arr({kSpliceToken}));
  envelope.as_object().Set("Id", std::to_string(batch.back()->sequence));
  envelope.as_object().Set("Name", "OFMF Event Batch");
  std::string shell = json::Serialize(envelope);

  std::string joined;
  std::size_t reserve = 0;
  for (const DeliveryItemPtr& item : batch) reserve += item->entries_json().size() + 1;
  joined.reserve(reserve);
  for (const DeliveryItemPtr& item : batch) {
    const std::string& entries = item->entries_json();
    if (entries.empty()) continue;
    if (!joined.empty()) joined += ',';
    joined += entries;
  }
  const std::string token = '"' + std::string(kSpliceToken) + '"';
  const std::size_t at = shell.find(token);
  if (at != std::string::npos) shell.replace(at, token.size(), joined);
  return shell;
}

}  // namespace

DeliveryItem::DeliveryItem(std::uint64_t sequence_in, std::string event_type_in,
                           json::Json record_in, std::uint64_t trace_id_in)
    : sequence(sequence_in),
      event_type(std::move(event_type_in)),
      record(std::move(record_in)),
      trace_id(trace_id_in) {}

const std::string& DeliveryItem::sse_frame() const {
  std::call_once(frame_once_, [this] {
    frame_ = http::FormatSseFrame(sequence, record_json());
  });
  return frame_;
}

const std::string& DeliveryItem::record_json() const {
  std::call_once(record_json_once_, [this] { record_json_ = json::Serialize(record); });
  return record_json_;
}

const std::string& DeliveryItem::entries_json() const {
  std::call_once(entries_once_, [this] {
    const json::Json& list = record.at("Events");
    if (!list.is_array()) return;
    for (const json::Json& entry : list.as_array()) {
      if (!entries_.empty()) entries_ += ',';
      entries_ += json::Serialize(entry);
    }
  });
  return entries_;
}

DeliveryEngine::DeliveryEngine() = default;

DeliveryEngine::~DeliveryEngine() { StopWorkers(); }

void DeliveryEngine::Configure(const DeliveryConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  config_ = config;
  if (config_.queue_capacity == 0) config_.queue_capacity = 1;
  if (config_.batch_max_events == 0) config_.batch_max_events = 1;
  if (config_.workers == 0) config_.workers = 1;
  rng_ = Rng(config_.jitter_seed);
  retry_attempts_.store(std::max(1, config_.retry_attempts), std::memory_order_relaxed);
}

DeliveryConfig DeliveryEngine::config() const {
  std::lock_guard<std::mutex> lock(mu_);
  return config_;
}

ClientFactory DefaultWireClientFactory() {
  return [](const std::string& destination) -> std::unique_ptr<http::HttpClient> {
    for (const char* scheme : {"http://127.0.0.1:", "http://localhost:"}) {
      if (!strings::StartsWith(destination, scheme)) continue;
      const std::size_t port_begin = std::string(scheme).size();
      std::size_t port_end = destination.find('/', port_begin);
      if (port_end == std::string::npos) port_end = destination.size();
      const std::string port_text =
          destination.substr(port_begin, port_end - port_begin);
      if (port_text.empty() || port_text.size() > 5 ||
          !strings::IsDigits(port_text)) {
        return nullptr;
      }
      const unsigned long port = std::stoul(port_text);
      if (port == 0 || port > 65535) return nullptr;
      return std::make_unique<PooledEndpointClient>(
          SharedClientForPort(static_cast<std::uint16_t>(port)),
          destination.substr(0, port_end));
    }
    return nullptr;
  };
}

void DeliveryEngine::set_client_factory(ClientFactory factory) {
  std::lock_guard<std::mutex> lock(mu_);
  factory_ = std::move(factory);
  // Cached per-subscriber clients came from the previous factory; drop the
  // idle ones so the next batch reconnects through the new one. In-flight
  // clients are owned by their worker until the batch finishes.
  for (auto& [uri, sub] : subs_) {
    if (sub->phase != Phase::kInFlight) sub->client.reset();
  }
}

void DeliveryEngine::set_cursor_sink(CursorSink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  cursor_sink_ = std::move(sink);
}

void DeliveryEngine::set_overflow_sink(OverflowSink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  overflow_sink_ = std::move(sink);
}

void DeliveryEngine::set_retry_attempts(int attempts) {
  retry_attempts_.store(std::max(1, attempts), std::memory_order_relaxed);
}

void DeliveryEngine::EnsureStartedLocked() {
  if (started_) return;
  started_ = true;
  stopping_.store(false);
  dispatcher_ = std::thread([this] { DispatcherMain(); });
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
}

void DeliveryEngine::StopWorkers() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stopping_.store(true);
  }
  {
    // The dispatcher checks stopping_ under intake_mu_; fence so the store
    // is visible to a dispatcher mid-wait.
    std::lock_guard<std::mutex> lock(intake_mu_);
  }
  work_cv_.notify_all();
  intake_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
  stopping_.store(false);
}

void DeliveryEngine::AddHttpSubscriber(const std::string& uri,
                                       const std::string& destination,
                                       std::vector<std::string> event_types,
                                       std::uint64_t acked_sequence) {
  std::lock_guard<std::mutex> lock(mu_);
  auto existing = subs_.find(uri);
  if (existing != subs_.end()) {
    existing->second->removed = true;
    subs_.erase(existing);
  }
  auto sub = std::make_shared<Sub>();
  sub->uri = uri;
  sub->destination = destination;
  sub->event_types = std::move(event_types);
  sub->acked_sequence = acked_sequence;
  sub->breaker = std::make_unique<CircuitBreaker>(config_.breaker);
  subs_.emplace(uri, std::move(sub));
  sub_count_.store(subs_.size(), std::memory_order_relaxed);
  EnsureStartedLocked();
}

void DeliveryEngine::AddStreamSubscriber(const std::string& uri,
                                         http::StreamWriter writer,
                                         std::vector<std::string> event_types) {
  std::lock_guard<std::mutex> lock(mu_);
  auto existing = subs_.find(uri);
  if (existing != subs_.end()) {
    existing->second->removed = true;
    subs_.erase(existing);
  }
  auto sub = std::make_shared<Sub>();
  sub->uri = uri;
  sub->is_stream = true;
  sub->writer = std::move(writer);
  sub->event_types = std::move(event_types);
  sub->acked_sequence = last_sequence_;
  sub->breaker = std::make_unique<CircuitBreaker>(config_.breaker);
  subs_.emplace(uri, std::move(sub));
  sub_count_.store(subs_.size(), std::memory_order_relaxed);
  EnsureStartedLocked();
}

bool DeliveryEngine::RemoveSubscriber(const std::string& uri) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = subs_.find(uri);
  if (it == subs_.end()) return false;
  it->second->removed = true;
  queued_items_ -= it->second->queue.size();
  it->second->queue.clear();
  subs_.erase(it);
  sub_count_.store(subs_.size(), std::memory_order_relaxed);
  if (IdleLocked()) idle_cv_.notify_all();
  return true;
}

void DeliveryEngine::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [uri, sub] : subs_) {
    sub->removed = true;
    queued_items_ -= sub->queue.size();
    sub->queue.clear();
  }
  subs_.clear();
  sub_count_.store(0, std::memory_order_relaxed);
  if (IdleLocked()) idle_cv_.notify_all();
}

bool DeliveryEngine::MatchesLocked(const Sub& sub, const DeliveryItem& item) const {
  if (sub.event_types.empty()) return true;
  return std::find(sub.event_types.begin(), sub.event_types.end(), item.event_type) !=
         sub.event_types.end();
}

bool DeliveryEngine::EnqueueLocked(Sub& sub, const DeliveryItemPtr& item) {
  ++sub.enqueued;
  if (sub.queue.size() < config_.queue_capacity) {
    sub.queue.push_back(item);
    ++queued_items_;
    return false;
  }
  // Drop-oldest overflow: the newest events survive. Never drop an item a
  // worker is currently sending (the head `in_flight_items` entries) — if
  // the whole queue is in flight, the incoming event is the drop instead.
  ++sub.dropped;
  dropped_events_.fetch_add(1, std::memory_order_relaxed);
  if (sub.queue.size() > sub.in_flight_items) {
    sub.queue.erase(sub.queue.begin() +
                    static_cast<std::ptrdiff_t>(sub.in_flight_items));
    sub.queue.push_back(item);
  }
  if (!sub.overflow_episode) {
    sub.overflow_episode = true;
    return true;
  }
  return false;
}

void DeliveryEngine::Broadcast(const DeliveryItemPtr& item) {
  // O(1) and independent of mu_: the publisher never queues behind worker
  // bookkeeping or pays the per-subscriber fan-out loop. With no push or
  // stream subscribers there is no dispatcher either — drop the item here
  // (the EventService keeps its own log for late joiners and recovery).
  if (sub_count_.load(std::memory_order_relaxed) == 0) return;
  {
    std::lock_guard<std::mutex> lock(intake_mu_);
    // Depth first: WaitIdle reads it without intake_mu_, and must never see
    // a pushed item with a zero depth.
    intake_depth_.fetch_add(1, std::memory_order_relaxed);
    intake_.push_back(item);
  }
  intake_cv_.notify_one();
}

void DeliveryEngine::DispatcherMain() {
  std::unique_lock<std::mutex> intake_lock(intake_mu_);
  while (true) {
    intake_cv_.wait(intake_lock,
                    [this] { return stopping_.load() || !intake_.empty(); });
    if (stopping_.load()) return;
    // Take the whole round: fanning N pending items out in one pass over
    // the subscriber map amortizes the map walk under publish bursts.
    std::vector<DeliveryItemPtr> round(intake_.begin(), intake_.end());
    intake_.clear();
    intake_lock.unlock();

    std::vector<Overflow> overflows;
    OverflowSink sink;
    {
      broadcast_waiting_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(mu_);
      broadcast_waiting_.fetch_sub(1, std::memory_order_relaxed);
      for (const DeliveryItemPtr& item : round) {
        last_sequence_ = std::max(last_sequence_, item->sequence);
      }
      for (auto& [uri, sub] : subs_) {
        bool fresh_episode = false;
        for (const DeliveryItemPtr& item : round) {
          if (!MatchesLocked(*sub, *item)) continue;
          if (EnqueueLocked(*sub, item)) fresh_episode = true;
        }
        if (fresh_episode) overflows.push_back({uri, sub->dropped});
        if (!sub->queue.empty() && sub->phase == Phase::kIdle) MakeReadyLocked(sub);
      }
      intake_depth_.fetch_sub(round.size(), std::memory_order_relaxed);
      sink = overflow_sink_;
      if (IdleLocked()) idle_cv_.notify_all();
    }
    // Meta-events fire here with nothing of the engine held, so the sink
    // may re-enter Publish/Broadcast freely.
    if (sink) {
      for (const Overflow& overflow : overflows) sink(overflow);
    }
    intake_lock.lock();
  }
}

void DeliveryEngine::Seed(const std::string& uri,
                          std::vector<DeliveryItemPtr> backlog) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = subs_.find(uri);
  if (it == subs_.end()) return;
  Sub& sub = *it->second;
  for (DeliveryItemPtr& item : backlog) {
    last_sequence_ = std::max(last_sequence_, item->sequence);
    (void)EnqueueLocked(sub, item);
  }
  if (!sub.queue.empty() && sub.phase == Phase::kIdle) MakeReadyLocked(it->second);
}

void DeliveryEngine::MakeReadyLocked(const SubPtr& sub) {
  sub->phase = Phase::kQueued;
  ready_.push_back(sub);
  work_cv_.notify_one();
}

void DeliveryEngine::WaitLocked(const SubPtr& sub,
                                std::chrono::steady_clock::time_point due) {
  sub->phase = Phase::kWaiting;
  sub->due = due;
  waiting_.push_back(sub);
  // A sleeping worker must re-evaluate: someone has to hold the timed wait.
  work_cv_.notify_one();
}

void DeliveryEngine::PromoteDueLocked(std::chrono::steady_clock::time_point now) {
  std::size_t promoted = 0;
  for (std::size_t i = 0; i < waiting_.size();) {
    SubPtr& sub = waiting_[i];
    if (sub->removed) {
      waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }
    if (sub->due <= now) {
      MakeReadyLocked(sub);
      ++promoted;
      waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }
    ++i;
  }
  if (promoted > 1) work_cv_.notify_all();
}

std::chrono::steady_clock::time_point DeliveryEngine::NextDueLocked() const {
  auto next = std::chrono::steady_clock::time_point::max();
  for (const SubPtr& sub : waiting_) next = std::min(next, sub->due);
  return next;
}

bool DeliveryEngine::IdleLocked() const {
  // queued_items_ mirrors the sum of all subscriber queue sizes so this
  // check — made after every batch — is O(1) instead of a fleet scan.
  // Items still in intake count as work: they have not been fanned out yet.
  return in_flight_ == 0 && ready_.empty() && queued_items_ == 0 &&
         intake_depth_.load(std::memory_order_relaxed) == 0;
}

bool DeliveryEngine::WaitIdle(int timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  return idle_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                           [this] { return IdleLocked(); });
}

void DeliveryEngine::WorkerMain() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    PromoteDueLocked(std::chrono::steady_clock::now());
    if (stopping_) return;
    if (ready_.empty()) {
      if (waiting_.empty()) {
        work_cv_.wait(lock);
      } else {
        work_cv_.wait_until(lock, NextDueLocked());
      }
      continue;
    }
    SubPtr sub = ready_.front();
    ready_.pop_front();
    if (sub->removed || sub->queue.empty()) {
      sub->phase = Phase::kIdle;
      if (IdleLocked()) idle_cv_.notify_all();
      continue;
    }
    sub->phase = Phase::kInFlight;
    ++in_flight_;
    if (sub->is_stream) {
      DeliverStreamLocked(sub);
    } else {
      DeliverHttp(lock, sub);
    }
    --in_flight_;
    if (IdleLocked()) idle_cv_.notify_all();
  }
}

void DeliveryEngine::DeliverHttp(std::unique_lock<std::mutex>& lock, const SubPtr& sub) {
  const auto now = std::chrono::steady_clock::now();
  if (!sub->breaker->Allow()) {
    // Open breaker: this wakeup burns one rejected call of the count-based
    // cooldown budget, so a dead endpoint costs one probe per cooldown
    // instead of hot retries.
    WaitLocked(sub, now + std::chrono::milliseconds(config_.breaker_cooldown_ms));
    return;
  }
  const std::size_t batch_n = std::min(sub->queue.size(), config_.batch_max_events);
  sub->in_flight_items = batch_n;
  const std::vector<DeliveryItemPtr> batch(sub->queue.begin(),
                                           sub->queue.begin() + batch_n);
  if (!sub->client && factory_) sub->client = factory_(sub->destination);
  http::HttpClient* client = sub->client.get();
  const std::string destination = sub->destination;
  if (sub->attempts > 0) {
    ++sub->retries;
    delivery_retries_.fetch_add(1, std::memory_order_relaxed);
  }
  bool delivered_ok = false;
  if (client != nullptr) {
    lock.unlock();
    // Everything from here — including coalescing the batch into one wire
    // document — runs off-lock; only shared_ptr copies were taken under it.
    http::Request request = http::MakeRequest(http::Method::kPost, destination);
    request.body = BuildBatchBody(batch);
    request.headers.Set("Content-Type", "application/json");
    // Propagate the publishing request's trace: the first record's trace id
    // wins for the whole batch (one header, many records — good enough to
    // tie a webhook POST back to the request that caused it).
    if (!batch.empty() && batch.front()->trace_id != 0) {
      request.headers.Set(trace::kTraceIdHeader,
                          trace::IdToHex(batch.front()->trace_id));
    }
    // The network happens HERE — on an engine worker with no engine or
    // EventService lock held. The marker counter proves the publish path
    // never reaches this line.
    if (PublishPathMarker::active()) {
      publish_path_sends_.fetch_add(1, std::memory_order_relaxed);
    }
    const Result<http::Response> response = client->Send(request);
    delivered_ok = response.ok() && response->status < 400;
    // Dispatcher priority: a waiting fan-out round gets the lock before
    // this worker barges back in for its (deferrable) bookkeeping.
    while (broadcast_waiting_.load(std::memory_order_relaxed) > 0) {
      std::this_thread::yield();
    }
    lock.lock();
  }
  sub->in_flight_items = 0;
  if (sub->removed) return;
  FinishBatchLocked(*sub, delivered_ok, batch_n);
}

void DeliveryEngine::FinishBatchLocked(Sub& sub, bool delivered_ok,
                                       std::size_t batch_n) {
  const auto now = std::chrono::steady_clock::now();
  SubPtr self = subs_.count(sub.uri) ? subs_[sub.uri] : nullptr;
  auto resume = [&] {
    if (sub.queue.empty()) {
      sub.phase = Phase::kIdle;
      sub.overflow_episode = false;
    } else if (self != nullptr) {
      MakeReadyLocked(self);
    } else {
      sub.phase = Phase::kIdle;
    }
  };
  auto advance_cursor = [&](std::uint64_t last) {
    if (last > sub.acked_sequence) {
      sub.acked_sequence = last;
      if (cursor_sink_ && !sub.is_stream) cursor_sink_(sub.uri, sub.acked_sequence);
    }
  };
  auto pop_batch = [&]() -> std::uint64_t {
    std::uint64_t last = 0;
    for (std::size_t i = 0; i < batch_n && !sub.queue.empty(); ++i) {
      last = sub.queue.front()->sequence;
      sub.queue.pop_front();
      --queued_items_;
    }
    return last;
  };

  if (delivered_ok) {
    sub.breaker->RecordSuccess();
    advance_cursor(pop_batch());
    sub.attempts = 0;
    sub.delivered += batch_n;
    ++sub.batches;
    if (batch_n > 1) sub.coalesced += batch_n;
    resume();
    return;
  }

  sub.breaker->RecordFailure();
  ++sub.attempts;
  if (sub.attempts >= retry_attempts_.load(std::memory_order_relaxed)) {
    // Retry budget exhausted: bounded loss. The batch is dropped (counted
    // as failures) and the cursor advances past it — the cursor is the
    // delivery *frontier*, recording what will never be retried, so crash
    // recovery does not resurrect events delivery already gave up on.
    advance_cursor(pop_batch());
    sub.attempts = 0;
    sub.failures += batch_n;
    delivery_failures_.fetch_add(batch_n, std::memory_order_relaxed);
    OFMF_WARN << "event delivery to " << sub.destination << " failed after "
              << retry_attempts_.load(std::memory_order_relaxed)
              << " attempts; dropping batch of " << batch_n << " (subscription "
              << sub.uri << ")";
    resume();
    return;
  }
  // Full-jitter exponential backoff, the http::RetryingClient policy:
  // attempt k waits Uniform(0, min(max, base·2^k)).
  const double cap = std::min<double>(
      config_.max_backoff_ms,
      static_cast<double>(config_.base_backoff_ms) *
          static_cast<double>(1ull << std::min(sub.attempts, 20)));
  const double wait_ms = rng_.Uniform(0.0, cap);
  if (self != nullptr) {
    WaitLocked(self, now + std::chrono::microseconds(
                         static_cast<std::int64_t>(wait_ms * 1000.0)));
  } else {
    sub.phase = Phase::kIdle;
  }
}

void DeliveryEngine::DeliverStreamLocked(const SubPtr& sub) {
  Sub& s = *sub;
  auto detach = [&] {
    s.removed = true;
    queued_items_ -= s.queue.size();
    s.queue.clear();
    s.phase = Phase::kIdle;
    subs_.erase(s.uri);
    sub_count_.store(subs_.size(), std::memory_order_relaxed);
  };
  if (!s.writer.valid() || s.writer.closed()) {
    detach();
    return;
  }
  if (s.writer.buffered_bytes() > config_.stream_max_buffered_bytes) {
    // Slow consumer: let the transport drain. The queue keeps absorbing
    // (and drop-oldest coalescing) in the meantime — backpressure never
    // propagates to the publisher.
    WaitLocked(sub, std::chrono::steady_clock::now() + std::chrono::milliseconds(10));
    return;
  }
  std::size_t written = 0;
  std::uint64_t last = 0;
  while (!s.queue.empty() && written < config_.batch_max_events) {
    const DeliveryItemPtr item = s.queue.front();
    if (!s.writer.Write(item->sse_frame())) {
      detach();
      return;
    }
    last = item->sequence;
    s.queue.pop_front();
    --queued_items_;
    ++written;
  }
  if (written > 0) {
    s.delivered += written;
    ++s.batches;
    if (written > 1) s.coalesced += written;
    if (last > s.acked_sequence) s.acked_sequence = last;
  }
  if (s.queue.empty()) {
    s.phase = Phase::kIdle;
    s.overflow_episode = false;
  } else {
    MakeReadyLocked(sub);
  }
}

DeliverySnapshot DeliveryEngine::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  DeliverySnapshot snap;
  snap.last_sequence = last_sequence_;
  snap.subscribers.reserve(subs_.size());
  for (const auto& [uri, sub] : subs_) {
    SubscriberSnapshot s;
    s.uri = uri;
    s.destination = sub->destination;
    s.stream = sub->is_stream;
    s.queue_depth = sub->queue.size();
    s.enqueued = sub->enqueued;
    s.delivered = sub->delivered;
    s.batches = sub->batches;
    s.coalesced = sub->coalesced;
    s.dropped = sub->dropped;
    s.retries = sub->retries;
    s.failures = sub->failures;
    s.acked_sequence = sub->acked_sequence;
    s.cursor_lag = sub->queue.empty()
                       ? 0
                       : sub->queue.back()->sequence - sub->acked_sequence;
    s.breaker_state = sub->breaker->state();
    s.breaker_stats = sub->breaker->stats();
    snap.total_queued += s.queue_depth;
    snap.max_queue_depth = std::max(snap.max_queue_depth, s.queue_depth);
    snap.delivered += s.delivered;
    snap.batches += s.batches;
    snap.coalesced += s.coalesced;
    snap.dropped += s.dropped;
    snap.retries += s.retries;
    snap.failures += s.failures;
    snap.max_cursor_lag = std::max(snap.max_cursor_lag, s.cursor_lag);
    if (s.breaker_state == BreakerState::kOpen) ++snap.breakers_open;
    if (s.stream) ++snap.streams;
    snap.subscribers.push_back(std::move(s));
  }
  return snap;
}

std::size_t DeliveryEngine::subscriber_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return subs_.size();
}

}  // namespace ofmf::core
