// Fault-isolated asynchronous event delivery (ROADMAP item 4, FAODEL's
// OpBox idiom: distributed protocols as resumable state machines, never a
// blocking RPC on the publish path).
//
// One DeliveryEngine fans events out to N subscribers, each driven by its
// own resumable state machine:
//
//     kIdle ──enqueue──▶ kQueued ──worker──▶ kInFlight ──ok──▶ kIdle/kQueued
//                           ▲                    │fail
//                           │                    ▼
//                           └──due timer──── kWaiting (full-jitter backoff /
//                                                     breaker cooldown)
//
// Invariants that make it fault-isolated:
//   * Publish-side Broadcast() only appends to per-subscriber bounded
//     queues under the engine mutex — it never touches the network and
//     never waits on a subscriber (enforced by the PublishPathMarker
//     counter the bench asserts on).
//   * One batch in flight per subscriber; a stalled endpoint occupies at
//     most one worker slot while its queue absorbs (and eventually
//     coalesces/drops) the backlog.
//   * Overflow policy is drop-oldest: the newest events survive, drops are
//     counted per subscriber and surfaced once per overflow episode through
//     the overflow sink (the EventService publishes the Redfish
//     "EventQueueFull" meta-event from it).
//   * Retries use full-jitter exponential backoff (Uniform(0, min(max,
//     base·2^k)), the http::RetryingClient policy) and a per-subscriber
//     CircuitBreaker: once open, a dead endpoint costs one probe per
//     cooldown instead of hot retries.
//   * Items stay queued until acknowledged (2xx/3xx), then the durable
//     cursor advances through the cursor sink — crash recovery replays
//     exactly the unacknowledged suffix.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "http/server.hpp"
#include "json/value.hpp"
#include "ofmf/breaker.hpp"

namespace ofmf::core {

using ClientFactory =
    std::function<std::unique_ptr<http::HttpClient>(const std::string& destination)>;

/// Default ClientFactory for real subscriber endpoints: a destination of the
/// form "http://127.0.0.1:<port>/..." (or localhost) gets a thin adapter
/// over a SHARED keep-alive-pooled TcpClient per port — every batch POST to
/// that endpoint reuses warm pooled connections instead of opening a fresh
/// one per batch, and subscribers pointed at the same endpoint share the
/// pool. Non-loopback or unparseable destinations yield nullptr, preserving
/// the no-transport behaviour tests rely on for synthetic hosts.
ClientFactory DefaultWireClientFactory();

struct DeliveryConfig {
  /// Per-subscriber queue bound; overflow drops the oldest unsent event.
  std::size_t queue_capacity = 1024;
  /// Events coalesced into one POST (their "Events" arrays concatenate).
  std::size_t batch_max_events = 16;
  /// Attempts per batch before it is dropped and the cursor advances.
  int retry_attempts = 3;
  /// Full-jitter backoff: attempt k waits Uniform(0, min(max, base·2^k)).
  int base_backoff_ms = 5;
  int max_backoff_ms = 250;
  /// Pause between probe wakeups while a subscriber's breaker rejects.
  int breaker_cooldown_ms = 20;
  /// Delivery worker threads (spawned lazily with the first subscriber).
  std::size_t workers = 2;
  /// A stream (SSE) subscriber buffering more than this in the transport
  /// is paused; its queue keeps absorbing with drop-oldest.
  std::size_t stream_max_buffered_bytes = 256 * 1024;
  /// Per-subscriber breaker tuning.
  BreakerConfig breaker{};
  std::uint64_t jitter_seed = 0x0FABull;
};

struct SubscriberSnapshot {
  std::string uri;
  std::string destination;  // empty for streams
  bool stream = false;
  std::size_t queue_depth = 0;
  std::uint64_t enqueued = 0;
  std::uint64_t delivered = 0;  // events acknowledged
  std::uint64_t batches = 0;    // POSTs / stream flushes that succeeded
  std::uint64_t coalesced = 0;  // events delivered in multi-event batches
  std::uint64_t dropped = 0;    // overflow + retry-exhausted drops
  std::uint64_t retries = 0;
  std::uint64_t failures = 0;   // events in retry-exhausted batches
  std::uint64_t acked_sequence = 0;
  std::uint64_t cursor_lag = 0;  // last broadcast sequence - acked
  BreakerState breaker_state = BreakerState::kClosed;
  BreakerStats breaker_stats{};
};

struct DeliverySnapshot {
  std::vector<SubscriberSnapshot> subscribers;
  std::uint64_t last_sequence = 0;
  std::size_t total_queued = 0;
  std::size_t max_queue_depth = 0;
  std::uint64_t delivered = 0;
  std::uint64_t batches = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t dropped = 0;
  std::uint64_t retries = 0;
  std::uint64_t failures = 0;
  std::uint64_t max_cursor_lag = 0;
  std::size_t breakers_open = 0;
  std::size_t streams = 0;
};

/// One published event, shared immutably by every subscriber queue it lands
/// in. `record` is the full single-event Redfish Event document (its
/// "Events" array holds one entry); batching concatenates those arrays.
struct DeliveryItem {
  DeliveryItem(std::uint64_t sequence, std::string event_type, json::Json record,
               std::uint64_t trace_id = 0);

  const std::uint64_t sequence;
  const std::string event_type;
  const json::Json record;
  /// Trace that published this event (0 = unsampled). Batch POSTs carry the
  /// first record's trace as X-Trace-Id so a webhook receiver can tie the
  /// delivery back to the originating request's trace.
  const std::uint64_t trace_id;

  /// The SSE frame for this event, serialized once on first use.
  const std::string& sse_frame() const;

  /// The full record serialized once on first use — the wire body for a
  /// batch of one. Shared across every subscriber that delivers this event.
  const std::string& record_json() const;

  /// The record's "Events" entries serialized once on first use, joined
  /// with commas — ready to splice into a batch document's Events array.
  const std::string& entries_json() const;

 private:
  mutable std::once_flag frame_once_;
  mutable std::string frame_;
  mutable std::once_flag record_json_once_;
  mutable std::string record_json_;
  mutable std::once_flag entries_once_;
  mutable std::string entries_;
};

using DeliveryItemPtr = std::shared_ptr<const DeliveryItem>;

class DeliveryEngine {
 public:
  /// Called after a batch is acknowledged: every sequence <= `sequence` for
  /// `uri` is delivered. Invoked under the engine mutex (lock order:
  /// engine before store — the sink may journal but must not re-enter the
  /// engine or the EventService).
  using CursorSink = std::function<void(const std::string& uri, std::uint64_t sequence)>;

  /// An overflow notice: `dropped` is the subscriber's cumulative drop
  /// count. Reported through the overflow sink on the dispatcher thread,
  /// with no engine lock held (first drop per overflow episode only).
  struct Overflow {
    std::string uri;
    std::uint64_t dropped = 0;
  };

  /// Invoked by the dispatcher, off-lock, when a subscriber queue starts an
  /// overflow episode. May publish meta-events (re-entering the EventService
  /// is safe — nothing of the engine is held).
  using OverflowSink = std::function<void(const Overflow& overflow)>;

  /// RAII thread marker the EventService holds across Publish. Any network
  /// send the engine performs while the current thread is marked counts
  /// against publish_path_sends() — the "Publish performs zero network
  /// syscalls" assertion.
  class PublishPathMarker {
   public:
    PublishPathMarker() { ++depth(); }
    ~PublishPathMarker() { --depth(); }
    PublishPathMarker(const PublishPathMarker&) = delete;
    PublishPathMarker& operator=(const PublishPathMarker&) = delete;
    static bool active() { return depth() > 0; }

   private:
    static int& depth() {
      thread_local int d = 0;
      return d;
    }
  };

  DeliveryEngine();
  ~DeliveryEngine();
  DeliveryEngine(const DeliveryEngine&) = delete;
  DeliveryEngine& operator=(const DeliveryEngine&) = delete;

  /// Replaces the tuning knobs. Applies to subscribers added afterwards
  /// (existing breakers keep their config); call before wiring subscribers.
  void Configure(const DeliveryConfig& config);
  DeliveryConfig config() const;

  void set_client_factory(ClientFactory factory);
  void set_cursor_sink(CursorSink sink);
  void set_overflow_sink(OverflowSink sink);
  /// Clamps below 1 to 1 (at least one attempt per batch).
  void set_retry_attempts(int attempts);

  /// Registers an HTTP push subscriber resuming from `acked_sequence`.
  void AddHttpSubscriber(const std::string& uri, const std::string& destination,
                         std::vector<std::string> event_types,
                         std::uint64_t acked_sequence);
  /// Registers a streaming (SSE) subscriber. Streams are not durable: no
  /// cursor is journaled, and the subscriber vanishes with its connection.
  void AddStreamSubscriber(const std::string& uri, http::StreamWriter writer,
                           std::vector<std::string> event_types);
  bool RemoveSubscriber(const std::string& uri);
  /// Drops every subscriber (recovery re-adoption).
  void Clear();

  /// Hands `item` to the dispatcher: O(1) for the caller — one push under
  /// the intake lock, which no delivery worker ever touches. The dispatcher
  /// thread fans the item out to every matching subscriber queue; overflow
  /// episodes surface through the overflow sink. Never blocks on the
  /// network, never scales with the subscriber count.
  void Broadcast(const DeliveryItemPtr& item);

  /// Seeds a subscriber's queue with a recovered backlog (events published
  /// before a crash that the destination never acknowledged). Items must be
  /// in sequence order.
  void Seed(const std::string& uri, std::vector<DeliveryItemPtr> backlog);

  /// Blocks until every queue is empty and nothing is in flight (or the
  /// timeout expires). Test/shutdown helper.
  bool WaitIdle(int timeout_ms);

  /// Joins the dispatcher and every worker. Owners whose callbacks (cursor,
  /// overflow, client factory) touch their own state must call this before
  /// that state is torn down; the destructor also stops.
  void Stop() { StopWorkers(); }

  DeliverySnapshot Snapshot() const;
  std::size_t subscriber_count() const;
  std::uint64_t delivery_failures() const {
    return delivery_failures_.load(std::memory_order_relaxed);
  }
  std::uint64_t delivery_retries() const {
    return delivery_retries_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped_events() const {
    return dropped_events_.load(std::memory_order_relaxed);
  }
  std::uint64_t publish_path_sends() const {
    return publish_path_sends_.load(std::memory_order_relaxed);
  }

 private:
  /// The per-subscriber resumable state machine (see file header).
  enum class Phase { kIdle, kQueued, kInFlight, kWaiting };

  struct Sub {
    std::string uri;
    std::string destination;
    std::vector<std::string> event_types;  // empty = all
    bool is_stream = false;
    http::StreamWriter writer;              // streams only
    std::unique_ptr<http::HttpClient> client;  // cached: keep-alive reuse
    std::deque<DeliveryItemPtr> queue;
    std::size_t in_flight_items = 0;  // head items a worker is sending
    Phase phase = Phase::kIdle;
    int attempts = 0;  // failed attempts for the head batch
    std::chrono::steady_clock::time_point due{};
    std::uint64_t acked_sequence = 0;
    bool overflow_episode = false;
    bool removed = false;
    std::uint64_t enqueued = 0, delivered = 0, batches = 0, coalesced = 0,
                  dropped = 0, retries = 0, failures = 0;
    std::unique_ptr<CircuitBreaker> breaker;
  };
  using SubPtr = std::shared_ptr<Sub>;

  void EnsureStartedLocked();
  void StopWorkers();
  void WorkerMain();
  /// Drains the intake queue and fans each round out to subscriber queues.
  void DispatcherMain();
  /// Moves subscribers whose wait expired back onto the ready deque.
  void PromoteDueLocked(std::chrono::steady_clock::time_point now);
  std::chrono::steady_clock::time_point NextDueLocked() const;
  void MakeReadyLocked(const SubPtr& sub);
  void WaitLocked(const SubPtr& sub, std::chrono::steady_clock::time_point due);
  bool MatchesLocked(const Sub& sub, const DeliveryItem& item) const;
  /// Enqueue with drop-oldest overflow; returns true on a fresh overflow
  /// episode (caller reports it).
  bool EnqueueLocked(Sub& sub, const DeliveryItemPtr& item);
  void FinishBatchLocked(Sub& sub, bool delivered_ok, std::size_t batch_n);
  void DeliverHttp(std::unique_lock<std::mutex>& lock, const SubPtr& sub);
  void DeliverStreamLocked(const SubPtr& sub);
  bool IdleLocked() const;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  DeliveryConfig config_;
  ClientFactory factory_;
  CursorSink cursor_sink_;
  OverflowSink overflow_sink_;
  std::map<std::string, SubPtr> subs_;
  std::deque<SubPtr> ready_;
  std::vector<SubPtr> waiting_;  // kWaiting subs; scanned for due times
  std::vector<std::thread> workers_;
  std::thread dispatcher_;
  bool started_ = false;
  std::atomic<bool> stopping_{false};

  /// Publish-side intake, decoupled from mu_ so a Broadcast never queues
  /// behind worker bookkeeping. Guarded by intake_mu_; intake_depth_ is the
  /// atomic mirror the idle check reads under mu_.
  std::mutex intake_mu_;
  std::condition_variable intake_cv_;
  std::deque<DeliveryItemPtr> intake_;
  std::atomic<std::size_t> intake_depth_{0};
  std::atomic<std::size_t> sub_count_{0};
  std::size_t in_flight_ = 0;
  std::size_t queued_items_ = 0;  // sum of all queue sizes (O(1) IdleLocked)
  std::uint64_t last_sequence_ = 0;
  Rng rng_{0x0FABull};

  /// Dispatcher fan-out rounds waiting on mu_. Workers reacquire the lock
  /// thousands of times per second around tiny sends; without a priority
  /// hint the dispatcher can lose the barging race and delivery lag grows.
  /// Workers spin-yield at their relock points while this is nonzero.
  std::atomic<int> broadcast_waiting_{0};

  std::atomic<int> retry_attempts_{3};
  std::atomic<std::uint64_t> delivery_failures_{0};
  std::atomic<std::uint64_t> delivery_retries_{0};
  std::atomic<std::uint64_t> dropped_events_{0};
  std::atomic<std::uint64_t> publish_path_sends_{0};
};

}  // namespace ofmf::core
