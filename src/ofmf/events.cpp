#include "ofmf/events.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/logging.hpp"
#include "common/strings.hpp"
#include "ofmf/uris.hpp"

namespace ofmf::core {

json::Json Event::ToJson(std::uint64_t sequence, SimTime timestamp) const {
  json::Json record = json::Json::Obj({
      {"@odata.type", "#Event.v1_7_0.Event"},
      {"Id", std::to_string(sequence)},
      {"Name", "OFMF Event"},
      {"Events",
       json::Json::Arr({json::Json::Obj({
           {"EventType", event_type},
           {"EventId", std::to_string(sequence)},
           {"EventTimestamp", FormatSimTimestamp(timestamp)},
           {"MessageId", message_id},
           {"Message", message},
           {"OriginOfCondition", json::Json::Obj({{"@odata.id", origin}})},
       })})},
  });
  if (!oem.is_null()) {
    record.as_object().Set("Oem", oem);
  }
  return record;
}

EventService::EventService(redfish::ResourceTree& tree, SimClock& clock)
    : tree_(tree), clock_(clock) {
  tree_token_ = tree_.Subscribe(
      [this](const redfish::ChangeEvent& change) { OnTreeChange(change); });
}

EventService::~EventService() { tree_.Unsubscribe(tree_token_); }

Status EventService::Bootstrap() {
  OFMF_RETURN_IF_ERROR(tree_.Create(
      kEventService, "#EventService.v1_10_0.EventService",
      json::Json::Obj(
          {{"Id", "EventService"},
           {"Name", "Event Service"},
           {"ServiceEnabled", true},
           {"DeliveryRetryAttempts", 3},
           {"EventTypesForSubscription",
            json::Json::Arr({"StatusChange", "ResourceUpdated", "ResourceAdded",
                             "ResourceRemoved", "Alert", "MetricReport"})},
           {"Subscriptions", json::Json::Obj({{"@odata.id", kSubscriptions}})}})));
  return tree_.CreateCollection(
      kSubscriptions, "#EventDestinationCollection.EventDestinationCollection",
      "Event Subscriptions");
}

Result<std::string> EventService::Subscribe(const json::Json& body) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const std::string destination = body.GetString("Destination");
  if (destination.empty()) {
    return Status::InvalidArgument("Destination is required");
  }
  Subscription subscription;
  subscription.destination = destination;
  subscription.context = body.GetString("Context");
  if (body.at("EventTypes").is_array()) {
    for (const json::Json& type : body.at("EventTypes").as_array()) {
      if (type.is_string()) subscription.event_types.push_back(type.as_string());
    }
  }
  const std::string id = std::to_string(next_id_++);
  subscription.uri = std::string(kSubscriptions) + "/" + id;

  json::Json payload = body;
  payload.as_object().Set("Id", id);
  if (!payload.Contains("Name")) payload.as_object().Set("Name", "Subscription " + id);
  if (!payload.Contains("SubscriptionType")) {
    payload.as_object().Set("SubscriptionType", "RedfishEvent");
  }
  OFMF_RETURN_IF_ERROR(
      tree_.Create(subscription.uri, "#EventDestination.v1_12_0.EventDestination", payload));
  OFMF_RETURN_IF_ERROR(tree_.AddMember(kSubscriptions, subscription.uri));
  const std::string uri = subscription.uri;
  subscriptions_.emplace(uri, std::move(subscription));
  return uri;
}

std::size_t EventService::AdoptSubscriptionsFromTree() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  subscriptions_.clear();
  const Result<std::vector<std::string>> members = tree_.Members(kSubscriptions);
  if (!members.ok()) return 0;
  for (const std::string& uri : *members) {
    const Result<json::Json> payload = tree_.GetRaw(uri);
    if (!payload.ok()) continue;
    Subscription subscription;
    subscription.uri = uri;
    subscription.destination = payload->GetString("Destination");
    subscription.context = payload->GetString("Context");
    if (payload->at("EventTypes").is_array()) {
      for (const json::Json& type : payload->at("EventTypes").as_array()) {
        if (type.is_string()) subscription.event_types.push_back(type.as_string());
      }
    }
    char* end = nullptr;
    const unsigned long long id =
        std::strtoull(payload->GetString("Id").c_str(), &end, 10);
    if (end != nullptr && *end == '\0' && id >= next_id_) next_id_ = id + 1;
    subscriptions_.emplace(uri, std::move(subscription));
  }
  return subscriptions_.size();
}

Status EventService::Unsubscribe(const std::string& subscription_uri) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = subscriptions_.find(subscription_uri);
  if (it == subscriptions_.end()) {
    return Status::NotFound("no subscription at " + subscription_uri);
  }
  subscriptions_.erase(it);
  OFMF_RETURN_IF_ERROR(tree_.RemoveMember(kSubscriptions, subscription_uri));
  if (tree_.Exists(subscription_uri)) {
    OFMF_RETURN_IF_ERROR(tree_.Delete(subscription_uri));
  }
  return Status::Ok();
}

void EventService::Publish(const Event& event) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const std::uint64_t sequence = ++sequence_;
  const json::Json payload = event.ToJson(sequence, clock_.now());
  for (auto& [uri, subscription] : subscriptions_) {
    if (!subscription.event_types.empty() &&
        std::find(subscription.event_types.begin(), subscription.event_types.end(),
                  event.event_type) == subscription.event_types.end()) {
      continue;
    }
    if (strings::StartsWith(subscription.destination, "ofmf-internal://")) {
      subscription.queue.push_back(payload);
      continue;
    }
    if (!client_factory_) {
      ++delivery_failures_;
      continue;
    }
    std::unique_ptr<http::HttpClient> client = client_factory_(subscription.destination);
    if (client == nullptr) {
      ++delivery_failures_;
      continue;
    }
    // Retry per the advertised DeliveryRetryAttempts before declaring the
    // delivery failed.
    bool delivered = false;
    for (int attempt = 0; attempt < retry_attempts_; ++attempt) {
      if (attempt > 0) ++delivery_retries_;
      const auto response = client->PostJson(subscription.destination, payload);
      if (response.ok() && response->status < 400) {
        delivered = true;
        break;
      }
    }
    if (!delivered) {
      ++delivery_failures_;
      OFMF_WARN << "event delivery to " << subscription.destination << " failed after "
                << retry_attempts_ << " attempts";
    }
  }
}

Result<std::vector<json::Json>> EventService::Drain(const std::string& subscription_uri) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = subscriptions_.find(subscription_uri);
  if (it == subscriptions_.end()) {
    return Status::NotFound("no subscription at " + subscription_uri);
  }
  std::vector<json::Json> events(it->second.queue.begin(), it->second.queue.end());
  it->second.queue.clear();
  return events;
}

void EventService::OnTreeChange(const redfish::ChangeEvent& change) {
  // Skip event-service plumbing itself (avoids self-amplification) and
  // session churn.
  if (strings::StartsWith(change.uri, kSubscriptions) ||
      strings::StartsWith(change.uri, kSessions)) {
    return;
  }
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (in_publish_) return;
  in_publish_ = true;
  Event event;
  switch (change.kind) {
    case redfish::ChangeKind::kCreated:
      event.event_type = "ResourceAdded";
      event.message_id = "ResourceEvent.1.0.ResourceCreated";
      break;
    case redfish::ChangeKind::kModified:
      event.event_type = "ResourceUpdated";
      event.message_id = "ResourceEvent.1.0.ResourceChanged";
      break;
    case redfish::ChangeKind::kDeleted:
      event.event_type = "ResourceRemoved";
      event.message_id = "ResourceEvent.1.0.ResourceRemoved";
      break;
  }
  event.message = std::string(to_string(change.kind)) + ": " + change.uri;
  event.origin = change.uri;
  Publish(event);
  in_publish_ = false;
}

}  // namespace ofmf::core
