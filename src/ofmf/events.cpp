#include "ofmf/events.hpp"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "common/logging.hpp"
#include "common/strings.hpp"
#include "common/trace.hpp"
#include "ofmf/uris.hpp"

namespace ofmf::core {

namespace {

constexpr const char kInternalScheme[] = "ofmf-internal://";

bool Matches(const std::vector<std::string>& event_types, const std::string& type) {
  if (event_types.empty()) return true;
  return std::find(event_types.begin(), event_types.end(), type) != event_types.end();
}

std::vector<std::string> ParseEventTypes(const json::Json& body) {
  std::vector<std::string> types;
  if (body.at("EventTypes").is_array()) {
    for (const json::Json& type : body.at("EventTypes").as_array()) {
      if (type.is_string()) types.push_back(type.as_string());
    }
  }
  return types;
}

std::string EventTypeOf(const json::Json& record) {
  const json::Json& events = record.at("Events");
  if (events.is_array() && !events.as_array().empty()) {
    return events.as_array().front().GetString("EventType");
  }
  return {};
}

}  // namespace

json::Json Event::ToJson(std::uint64_t sequence, SimTime timestamp) const {
  json::Json record = json::Json::Obj({
      {"@odata.type", "#Event.v1_7_0.Event"},
      {"Id", std::to_string(sequence)},
      {"Name", "OFMF Event"},
      {"Events",
       json::Json::Arr({json::Json::Obj({
           {"EventType", event_type},
           {"EventId", std::to_string(sequence)},
           {"EventTimestamp", FormatSimTimestamp(timestamp)},
           {"MessageId", message_id},
           {"Message", message},
           {"OriginOfCondition", json::Json::Obj({{"@odata.id", origin}})},
       })})},
  });
  if (!oem.is_null()) {
    record.as_object().Set("Oem", oem);
  }
  return record;
}

EventService::EventService(redfish::ResourceTree& tree, SimClock& clock)
    : tree_(tree), clock_(clock) {
  tree_token_ = tree_.Subscribe(
      [this](const redfish::ChangeEvent& change) { OnTreeChange(change); });
  // Real loopback endpoints deliver over shared pooled keep-alive TcpClients
  // out of the box; tests and simulations override with their own factory.
  delivery_.set_client_factory(DefaultWireClientFactory());
  // Per-subscriber queue overflows surface as meta-events. The sink runs on
  // the engine's dispatcher thread with no engine lock held, so re-entering
  // Publish here is safe.
  delivery_.set_overflow_sink([this](const DeliveryEngine::Overflow& overflow) {
    PublishOverflowAlerts({overflow});
  });
}

EventService::~EventService() {
  // Join delivery threads first: the engine's overflow/cursor sinks re-enter
  // this service, so they must be quiescent before any member is destroyed.
  delivery_.Stop();
  tree_.Unsubscribe(tree_token_);
}

Status EventService::Bootstrap() {
  OFMF_RETURN_IF_ERROR(tree_.Create(
      kEventService, "#EventService.v1_10_0.EventService",
      json::Json::Obj(
          {{"Id", "EventService"},
           {"Name", "Event Service"},
           {"ServiceEnabled", true},
           {"DeliveryRetryAttempts", 3},
           {"ServerSentEventUri", kEventServiceSse},
           {"EventTypesForSubscription",
            json::Json::Arr({"StatusChange", "ResourceUpdated", "ResourceAdded",
                             "ResourceRemoved", "Alert", "MetricReport"})},
           {"Subscriptions", json::Json::Obj({{"@odata.id", kSubscriptions}})}})));
  return tree_.CreateCollection(
      kSubscriptions, "#EventDestinationCollection.EventDestinationCollection",
      "Event Subscriptions");
}

Result<std::string> EventService::Subscribe(const json::Json& body) {
  const std::string destination = body.GetString("Destination");
  if (destination.empty()) {
    return Status::InvalidArgument("Destination is required");
  }
  Subscription subscription;
  subscription.destination = destination;
  subscription.context = body.GetString("Context");
  subscription.event_types = ParseEventTypes(body);
  subscription.internal = strings::StartsWith(destination, kInternalScheme);

  std::string id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = std::to_string(next_id_++);
  }
  subscription.uri = std::string(kSubscriptions) + "/" + id;

  json::Json payload = body;
  payload.as_object().Set("Id", id);
  if (!payload.Contains("Name")) payload.as_object().Set("Name", "Subscription " + id);
  if (!payload.Contains("SubscriptionType")) {
    payload.as_object().Set("SubscriptionType", "RedfishEvent");
  }
  OFMF_RETURN_IF_ERROR(
      tree_.Create(subscription.uri, "#EventDestination.v1_12_0.EventDestination", payload));
  OFMF_RETURN_IF_ERROR(tree_.AddMember(kSubscriptions, subscription.uri));

  const std::string uri = subscription.uri;
  std::lock_guard<std::mutex> lock(mu_);
  if (!subscription.internal) {
    // New subscriptions start at the current frontier: they receive events
    // published after this point, journaled so a crash resumes here too.
    const std::uint64_t cursor = sequence_.load();
    delivery_.AddHttpSubscriber(uri, destination, subscription.event_types, cursor);
    if (cursor_journal_) cursor_journal_(uri, cursor);
  } else {
    ++internal_count_;
  }
  subscriptions_.emplace(uri, std::move(subscription));
  return uri;
}

std::size_t EventService::AdoptSubscriptionsFromTree() {
  const Result<std::vector<std::string>> members = tree_.Members(kSubscriptions);
  std::lock_guard<std::mutex> lock(mu_);
  subscriptions_.clear();
  internal_count_ = 0;
  delivery_.Clear();
  if (!members.ok()) return 0;
  for (const std::string& uri : *members) {
    const Result<json::Json> payload = tree_.GetRaw(uri);
    if (!payload.ok()) continue;
    Subscription subscription;
    subscription.uri = uri;
    subscription.destination = payload->GetString("Destination");
    subscription.context = payload->GetString("Context");
    subscription.event_types = ParseEventTypes(*payload);
    subscription.internal =
        strings::StartsWith(subscription.destination, kInternalScheme);
    const std::string id_text = payload->GetString("Id");
    char* end = nullptr;
    const unsigned long long id = std::strtoull(id_text.c_str(), &end, 10);
    if (end != nullptr && *end == '\0' && id >= next_id_) next_id_ = id + 1;

    if (subscription.internal) ++internal_count_;
    if (!subscription.internal) {
      // Resume from the recovered cursor (or the frontier for subscriptions
      // that never recorded one) and re-queue the unacknowledged suffix of
      // the retained log. Crash-between-POST-and-cursor-commit means a
      // batch may be redelivered: at-least-once, never lost.
      std::uint64_t cursor = sequence_.load();
      const auto recovered = recovered_cursors_.find(uri);
      if (recovered != recovered_cursors_.end()) cursor = recovered->second;
      delivery_.AddHttpSubscriber(uri, subscription.destination,
                                  subscription.event_types, cursor);
      std::vector<DeliveryItemPtr> backlog;
      for (const DeliveryItemPtr& item : event_log_) {
        if (item->sequence <= cursor) continue;
        if (!Matches(subscription.event_types, item->event_type)) continue;
        backlog.push_back(item);
      }
      if (!backlog.empty()) delivery_.Seed(uri, std::move(backlog));
    }
    subscriptions_.emplace(uri, std::move(subscription));
  }
  return subscriptions_.size();
}

Status EventService::Unsubscribe(const std::string& subscription_uri) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = subscriptions_.find(subscription_uri);
    if (it == subscriptions_.end()) {
      return Status::NotFound("no subscription at " + subscription_uri);
    }
    if (!it->second.internal) {
      delivery_.RemoveSubscriber(subscription_uri);
    } else if (internal_count_ > 0) {
      --internal_count_;
    }
    subscriptions_.erase(it);
  }
  OFMF_RETURN_IF_ERROR(tree_.RemoveMember(kSubscriptions, subscription_uri));
  if (tree_.Exists(subscription_uri)) {
    OFMF_RETURN_IF_ERROR(tree_.Delete(subscription_uri));
  }
  return Status::Ok();
}

void EventService::Publish(const Event& event) {
  // Marks this thread so any network send the engine performs while we are
  // on the stack is counted — the "Publish does zero network syscalls"
  // assertion. Broadcast only enqueues; workers do the wire later.
  DeliveryEngine::PublishPathMarker marker;
  std::vector<DeliveryEngine::Overflow> overflows;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t sequence = ++sequence_;
    json::Json record = event.ToJson(sequence, clock_.now());
    if (event_journal_) event_journal_(sequence, record);
    const DeliveryItemPtr item = std::make_shared<const DeliveryItem>(
        sequence, event.event_type, std::move(record),
        trace::Current().trace_id);
    event_log_.push_back(item);
    while (event_log_.size() > kEventLogRetention) event_log_.pop_front();

    // Internal queues are rare (debug watchers); with none registered the
    // publish path never walks the subscription map at all.
    for (auto& [uri, subscription] : subscriptions_) {
      if (internal_count_ == 0) break;
      if (!subscription.internal) continue;
      if (!Matches(subscription.event_types, event.event_type)) continue;
      if (subscription.queue.size() >= kInternalQueueCapacity) {
        subscription.queue.pop_front();
        ++subscription.dropped;
        internal_dropped_.fetch_add(1, std::memory_order_relaxed);
        if (!subscription.overflow_episode) {
          subscription.overflow_episode = true;
          overflows.push_back({uri, subscription.dropped});
        }
      }
      subscription.queue.push_back(item->record);
    }

    delivery_.Broadcast(item);
  }
  if (!overflows.empty()) PublishOverflowAlerts(overflows);
}

void EventService::PublishOverflowAlerts(
    const std::vector<DeliveryEngine::Overflow>& overflows) {
  // The alert is itself a published event; the guard stops an overflow
  // caused by the alert from generating alerts recursively.
  thread_local bool in_meta = false;
  if (in_meta) return;
  in_meta = true;
  for (const DeliveryEngine::Overflow& overflow : overflows) {
    Event alert;
    alert.event_type = "Alert";
    alert.message_id = "EventService.1.0.EventQueueFull";
    alert.message = "Subscriber queue overflowed; oldest undelivered events dropped";
    alert.origin = overflow.uri;
    alert.oem = json::Json::Obj(
        {{"DroppedTotal", static_cast<std::int64_t>(overflow.dropped)}});
    Publish(alert);
  }
  in_meta = false;
}

Result<std::vector<json::Json>> EventService::Drain(const std::string& subscription_uri) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = subscriptions_.find(subscription_uri);
  if (it == subscriptions_.end()) {
    return Status::NotFound("no subscription at " + subscription_uri);
  }
  std::vector<json::Json> events(it->second.queue.begin(), it->second.queue.end());
  it->second.queue.clear();
  it->second.overflow_episode = false;
  return events;
}

std::string EventService::AttachStream(http::StreamWriter writer,
                                       std::vector<std::string> event_types) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string uri =
      std::string(kSubscriptions) + "/stream-" + std::to_string(next_stream_id_++);
  delivery_.AddStreamSubscriber(uri, std::move(writer), std::move(event_types));
  return uri;
}

void EventService::set_event_journal(EventJournal journal) {
  std::lock_guard<std::mutex> lock(mu_);
  event_journal_ = std::move(journal);
}

void EventService::set_cursor_journal(CursorJournal journal) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    cursor_journal_ = journal;
  }
  delivery_.set_cursor_sink(std::move(journal));
}

store::DurableEventState EventService::ExportDurableEventState() const {
  std::lock_guard<std::mutex> lock(mu_);
  store::DurableEventState state;
  state.next_sequence = sequence_.load();
  state.events.reserve(event_log_.size());
  for (const DeliveryItemPtr& item : event_log_) {
    state.events.emplace_back(item->sequence, item->record);
  }
  const DeliverySnapshot snapshot = delivery_.Snapshot();
  for (const SubscriberSnapshot& subscriber : snapshot.subscribers) {
    if (subscriber.stream) continue;
    state.cursors.emplace_back(subscriber.uri, subscriber.acked_sequence);
  }
  return state;
}

void EventService::RestoreDurableEventState(const store::DurableEventState& state) {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t sequence = sequence_.load();
  if (state.next_sequence > sequence) sequence_.store(state.next_sequence);

  std::map<std::uint64_t, json::Json> merged;
  for (const DeliveryItemPtr& item : event_log_) {
    merged.emplace(item->sequence, item->record);
  }
  for (const auto& [seq, record] : state.events) {
    merged[seq] = record;
  }
  event_log_.clear();
  for (auto& [seq, record] : merged) {
    event_log_.push_back(std::make_shared<const DeliveryItem>(
        seq, EventTypeOf(record), std::move(record)));
  }
  while (event_log_.size() > kEventLogRetention) event_log_.pop_front();

  recovered_cursors_.clear();
  for (const auto& [uri, cursor] : state.cursors) {
    recovered_cursors_[uri] = cursor;
  }
}

void EventService::OnTreeChange(const redfish::ChangeEvent& change) {
  // Skip event-service plumbing itself (avoids self-amplification) and
  // session churn.
  if (strings::StartsWith(change.uri, kSubscriptions) ||
      strings::StartsWith(change.uri, kSessions)) {
    return;
  }
  Event event;
  switch (change.kind) {
    case redfish::ChangeKind::kCreated:
      event.event_type = "ResourceAdded";
      event.message_id = "ResourceEvent.1.0.ResourceCreated";
      break;
    case redfish::ChangeKind::kModified:
      event.event_type = "ResourceUpdated";
      event.message_id = "ResourceEvent.1.0.ResourceChanged";
      break;
    case redfish::ChangeKind::kDeleted:
      event.event_type = "ResourceRemoved";
      event.message_id = "ResourceEvent.1.0.ResourceRemoved";
      break;
  }
  event.message = std::string(to_string(change.kind)) + ": " + change.uri;
  event.origin = change.uri;
  Publish(event);
}

}  // namespace ofmf::core
