// Redfish EventService: the OFMF's "subscription-based central repository"
// for state changes. Subscriptions are EventDestination resources; internal
// destinations ("ofmf-internal://<name>") queue in-process and are drained
// by embedded consumers like the Composability Manager, wire destinations
// are pushed asynchronously by the fault-isolated DeliveryEngine, and SSE
// streams ride the reactor's streaming responses. Tree mutations are
// translated into Redfish events automatically.
//
// Publish() is enqueue-only: it assigns a sequence, journals the record,
// appends to the retained event log and the matching queues, and returns.
// The network happens later, on DeliveryEngine workers — a stalled or dead
// subscriber can never stall a publisher (see delivery.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/result.hpp"
#include "json/value.hpp"
#include "ofmf/delivery.hpp"
#include "redfish/tree.hpp"
#include "store/store.hpp"

namespace ofmf::core {

struct Event {
  std::string event_type;  // "ResourceAdded", "Alert", ...
  std::string message_id;  // "ResourceEvent.1.0.ResourceCreated"
  std::string message;
  std::string origin;      // @odata.id of the affected resource
  json::Json oem;          // free-form extra payload

  json::Json ToJson(std::uint64_t sequence, SimTime timestamp) const;
};

class EventService {
 public:
  /// Published event records retained for crash recovery and late-cursor
  /// subscribers; the durable snapshot carries the same window.
  static constexpr std::size_t kEventLogRetention = 4096;
  /// Internal (in-process) destination queue bound; overflow drops oldest.
  static constexpr std::size_t kInternalQueueCapacity = 8192;

  EventService(redfish::ResourceTree& tree, SimClock& clock);
  ~EventService();

  Status Bootstrap();

  /// Creates an EventDestination from a POST body; returns its URI.
  /// Destination "ofmf-internal://<name>" queues internally; http(s)
  /// destinations are pushed by the delivery engine.
  Result<std::string> Subscribe(const json::Json& body);
  Status Unsubscribe(const std::string& subscription_uri);

  /// Rebuilds the subscription table from the EventDestination resources in
  /// the tree (after crash recovery). Wire subscriptions resume from their
  /// recovered delivery cursor (RestoreDurableEventState first) and the
  /// unacknowledged suffix of the retained event log is re-queued, so
  /// acknowledged events are not redelivered and unacknowledged ones are
  /// not lost. Undrained *internal* queues do not survive a restart — they
  /// are process memory. Returns the number of subscriptions adopted.
  std::size_t AdoptSubscriptionsFromTree();

  /// Publishes an event to every subscription whose EventTypes match.
  /// Enqueue-only: never touches the network, never blocks on a subscriber.
  /// Queue overflows surface as an "EventQueueFull" Alert meta-event (once
  /// per overflow episode, published outside the service lock).
  void Publish(const Event& event);

  /// Drains the internal queue of a subscription (by URI).
  Result<std::vector<json::Json>> Drain(const std::string& subscription_uri);

  /// Attaches a streaming (SSE) subscriber fed through the delivery engine.
  /// Returns its synthetic subscription URI. Streams are not durable.
  std::string AttachStream(http::StreamWriter writer,
                           std::vector<std::string> event_types);

  void set_client_factory(ClientFactory factory) {
    delivery_.set_client_factory(std::move(factory));
  }

  /// Tuning for the delivery engine; call before subscribers are wired.
  void ConfigureDelivery(const DeliveryConfig& config) { delivery_.Configure(config); }
  /// Blocks until every delivery queue is drained (tests/shutdown).
  bool FlushDelivery(int timeout_ms = 2000) { return delivery_.WaitIdle(timeout_ms); }

  /// Durability hooks (wired by the service when a store is attached).
  /// The journal sink runs under the service lock; the cursor sink is also
  /// installed as the engine's cursor sink (runs under the engine lock).
  /// Lock order everywhere: service -> engine -> store.
  using EventJournal = std::function<void(std::uint64_t sequence, const json::Json& record)>;
  using CursorJournal = std::function<void(const std::string& uri, std::uint64_t sequence)>;
  void set_event_journal(EventJournal journal);
  void set_cursor_journal(CursorJournal journal);

  /// Snapshot of the durable state (sequence counter, retained event log,
  /// per-subscription cursors) for compaction.
  store::DurableEventState ExportDurableEventState() const;
  /// Installs recovered durable state. Call before
  /// AdoptSubscriptionsFromTree so adopted subscriptions resume from their
  /// cursors.
  void RestoreDurableEventState(const store::DurableEventState& state);

  /// Live delivery telemetry (queue depths, drops, breaker states, lag).
  DeliverySnapshot CollectDelivery() const { return delivery_.Snapshot(); }

  /// Number of events ever published (delivered or not).
  std::uint64_t published_count() const { return sequence_.load(); }
  std::size_t subscription_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return subscriptions_.size();
  }

  /// Delivery failures (push destination unreachable after every retry).
  std::uint64_t delivery_failures() const { return delivery_.delivery_failures(); }
  /// Individual retry attempts that were needed (successful or not).
  std::uint64_t delivery_retries() const { return delivery_.delivery_retries(); }
  /// Events dropped to queue overflow (engine + internal queues).
  std::uint64_t dropped_events() const {
    return delivery_.dropped_events() + internal_dropped_.load();
  }
  /// Network sends observed while a Publish was on the calling thread's
  /// stack. The async contract says this stays zero (bench-asserted).
  std::uint64_t publish_path_sends() const { return delivery_.publish_path_sends(); }
  /// Push attempts per batch per destination (the advertised
  /// DeliveryRetryAttempts); clamped to >= 1.
  void set_retry_attempts(int attempts) { delivery_.set_retry_attempts(attempts); }

 private:
  struct Subscription {
    std::string uri;
    std::string destination;
    std::vector<std::string> event_types;  // empty = all
    std::string context;
    bool internal = false;
    std::deque<json::Json> queue;  // internal destinations only
    std::uint64_t dropped = 0;
    bool overflow_episode = false;  // reset when the queue drains
  };

  void OnTreeChange(const redfish::ChangeEvent& change);
  /// Publishes the "EventQueueFull" Alert meta-events for fresh overflow
  /// episodes. Called with no locks held; a thread-local guard stops a
  /// meta-event from generating meta-meta-events.
  void PublishOverflowAlerts(const std::vector<DeliveryEngine::Overflow>& overflows);

  redfish::ResourceTree& tree_;
  SimClock& clock_;
  // Plain mutex: Publish never performs I/O and never re-enters (deliveries
  // run on engine workers), so no holder can block on a subscriber.
  mutable std::mutex mu_;
  std::map<std::string, Subscription> subscriptions_;
  std::size_t internal_count_ = 0;  // lets Publish skip the map walk entirely
  std::uint64_t next_id_ = 1;
  std::uint64_t next_stream_id_ = 1;
  std::atomic<std::uint64_t> sequence_{0};
  std::deque<DeliveryItemPtr> event_log_;  // retained window, oldest first
  std::map<std::string, std::uint64_t> recovered_cursors_;
  EventJournal event_journal_;
  CursorJournal cursor_journal_;
  std::atomic<std::uint64_t> internal_dropped_{0};
  std::uint64_t tree_token_ = 0;
  DeliveryEngine delivery_;
};

}  // namespace ofmf::core
