// Redfish EventService: the OFMF's "subscription-based central repository"
// for state changes. Subscriptions are EventDestination resources; delivery
// is per-subscription queues (internal destinations, drained by in-process
// clients like the Composability Manager) or push via an HttpClient factory
// (wire destinations). Tree mutations are translated into Redfish events
// automatically.
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/result.hpp"
#include "http/server.hpp"
#include "json/value.hpp"
#include "redfish/tree.hpp"

namespace ofmf::core {

struct Event {
  std::string event_type;  // "ResourceAdded", "Alert", ...
  std::string message_id;  // "ResourceEvent.1.0.ResourceCreated"
  std::string message;
  std::string origin;      // @odata.id of the affected resource
  json::Json oem;          // free-form extra payload

  json::Json ToJson(std::uint64_t sequence, SimTime timestamp) const;
};

/// Builds TcpClient-or-other transports for push destinations.
using ClientFactory = std::function<std::unique_ptr<http::HttpClient>(const std::string&)>;

class EventService {
 public:
  EventService(redfish::ResourceTree& tree, SimClock& clock);
  ~EventService();

  Status Bootstrap();

  /// Creates an EventDestination from a POST body; returns its URI.
  /// Destination "ofmf-internal://<name>" queues internally; http(s)
  /// destinations push via the client factory (dropped if none is set).
  Result<std::string> Subscribe(const json::Json& body);
  Status Unsubscribe(const std::string& subscription_uri);

  /// Rebuilds the subscription table from the EventDestination resources in
  /// the tree (after crash recovery; the payloads hold everything needed).
  /// Undrained internal queues do not survive a restart — they are process
  /// memory, exactly like a push destination's in-flight socket. Returns the
  /// number of subscriptions adopted.
  std::size_t AdoptSubscriptionsFromTree();

  /// Publishes an event to every subscription whose EventTypes match.
  void Publish(const Event& event);

  /// Drains the internal queue of a subscription (by URI).
  Result<std::vector<json::Json>> Drain(const std::string& subscription_uri);

  void set_client_factory(ClientFactory factory) { client_factory_ = std::move(factory); }

  /// Number of events ever published (delivered or not).
  std::uint64_t published_count() const { return sequence_.load(); }
  std::size_t subscription_count() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return subscriptions_.size();
  }

  /// Delivery failures (push destination unreachable after every retry).
  std::uint64_t delivery_failures() const { return delivery_failures_.load(); }
  /// Individual retry attempts that were needed (successful or not).
  std::uint64_t delivery_retries() const { return delivery_retries_.load(); }
  /// Push attempts per event per destination (the advertised
  /// DeliveryRetryAttempts); must be >= 1.
  void set_retry_attempts(int attempts) { retry_attempts_ = attempts < 1 ? 1 : attempts; }

 private:
  struct Subscription {
    std::string uri;
    std::string destination;
    std::vector<std::string> event_types;  // empty = all
    std::string context;
    std::deque<json::Json> queue;  // internal destinations only
  };

  void OnTreeChange(const redfish::ChangeEvent& change);

  redfish::ResourceTree& tree_;
  SimClock& clock_;
  // Tree mutations notify listeners outside the tree's write lock, so
  // concurrent writers reach this service in parallel; recursive because a
  // push delivery can loop back through our own HTTP handler and re-enter
  // Publish on the same thread (see in_publish_).
  mutable std::recursive_mutex mu_;
  std::map<std::string, Subscription> subscriptions_;
  std::uint64_t next_id_ = 1;
  std::atomic<std::uint64_t> sequence_{0};
  std::atomic<std::uint64_t> delivery_failures_{0};
  std::atomic<std::uint64_t> delivery_retries_{0};
  int retry_attempts_ = 3;
  std::uint64_t tree_token_ = 0;
  bool in_publish_ = false;  // guards re-entrant tree writes; under mu_
  ClientFactory client_factory_;
};

}  // namespace ofmf::core
