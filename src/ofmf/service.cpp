#include "ofmf/service.hpp"

#include "common/strings.hpp"
#include "http/uri.hpp"
#include "json/pointer.hpp"
#include "odata/annotations.hpp"
#include "ofmf/uris.hpp"
#include "redfish/conformance.hpp"
#include "redfish/errors.hpp"

namespace ofmf::core {

OfmfService::OfmfService()
    : rest_(tree_, redfish::SchemaRegistry::BuiltIn()),
      sessions_(tree_),
      events_(tree_, clock_),
      tasks_(tree_, clock_),
      telemetry_(tree_, events_, clock_),
      composition_(tree_, events_) {}

Status OfmfService::BootstrapServiceRoot() {
  OFMF_RETURN_IF_ERROR(tree_.Create(
      kServiceRoot, "#ServiceRoot.v1_15_0.ServiceRoot",
      json::Json::Obj({
          {"Id", "RootService"},
          {"Name", "OpenFabrics Management Framework"},
          {"RedfishVersion", "1.17.0"},
          {"UUID", "5cf3e329-57b6-4d92-9a2f-ofmf00000001"},
          {"Fabrics", odata::Ref(kFabrics)},
          {"Systems", odata::Ref(kSystems)},
          {"Chassis", odata::Ref(kChassis)},
          {"StorageServices", odata::Ref(kStorageServices)},
          {"SessionService", odata::Ref(kSessionService)},
          {"EventService", odata::Ref(kEventService)},
          {"TaskService", odata::Ref(kTaskService)},
          {"TelemetryService", odata::Ref(kTelemetryService)},
          {"AggregationService", odata::Ref(kAggregationService)},
          {"CompositionService", odata::Ref(kCompositionService)},
      })));
  OFMF_RETURN_IF_ERROR(
      tree_.CreateCollection(kFabrics, "#FabricCollection.FabricCollection", "Fabrics"));
  OFMF_RETURN_IF_ERROR(tree_.CreateCollection(
      kSystems, "#ComputerSystemCollection.ComputerSystemCollection", "Systems"));
  OFMF_RETURN_IF_ERROR(tree_.CreateCollection(
      kChassis, "#ChassisCollection.ChassisCollection", "Chassis"));
  OFMF_RETURN_IF_ERROR(tree_.CreateCollection(
      kStorageServices, "#StorageServiceCollection.StorageServiceCollection",
      "Storage Services"));
  OFMF_RETURN_IF_ERROR(tree_.Create(
      kAggregationService, "#AggregationService.v1_0_2.AggregationService",
      json::Json::Obj({{"Id", "AggregationService"},
                       {"Name", "Aggregation Service"},
                       {"ServiceEnabled", true},
                       {"AggregationSources", odata::Ref(kAggregationSources)}})));
  return tree_.CreateCollection(
      kAggregationSources, "#AggregationSourceCollection.AggregationSourceCollection",
      "Aggregation Sources");
}

Status OfmfService::Bootstrap() {
  if (bootstrapped_) return Status::FailedPrecondition("already bootstrapped");
  OFMF_RETURN_IF_ERROR(BootstrapServiceRoot());
  OFMF_RETURN_IF_ERROR(sessions_.Bootstrap());
  OFMF_RETURN_IF_ERROR(events_.Bootstrap());
  OFMF_RETURN_IF_ERROR(tasks_.Bootstrap());
  OFMF_RETURN_IF_ERROR(telemetry_.Bootstrap());
  OFMF_RETURN_IF_ERROR(composition_.Bootstrap());
  WireRoutes();
  bootstrapped_ = true;
  return Status::Ok();
}

void OfmfService::WireRoutes() {
  // Event subscriptions.
  rest_.RegisterFactory(kSubscriptions, "EventDestination",
                        [this](const json::Json& body) { return events_.Subscribe(body); });
  rest_.RegisterDeleteHook(kSubscriptions, [this](const std::string& uri) {
    if (uri == kSubscriptions) {
      return Status::PermissionDenied("collection cannot be deleted");
    }
    return events_.Unsubscribe(uri);
  });
  // Drain action for internal (ofmf-internal://) subscription queues, so
  // transport-agnostic clients can poll their events over plain Redfish.
  rest_.RegisterAction(
      "EventDestination.Drain",
      [this](const std::string& resource_uri, const json::Json&) -> http::Response {
        Result<std::vector<json::Json>> drained = events_.Drain(resource_uri);
        if (!drained.ok()) return redfish::ErrorResponse(drained.status());
        json::Array events(drained->begin(), drained->end());
        return http::MakeJsonResponse(
            200, json::Json::Obj({{"Events", json::Json(std::move(events))}}));
      });

  // Composition: POST Systems with block links; DELETE decomposes.
  rest_.RegisterFactory(
      kSystems, "ComputerSystem", [this](const json::Json& body) -> Result<std::string> {
        const json::Json* blocks =
            json::ResolvePointerRef(body, "/Links/ResourceBlocks");
        if (blocks == nullptr || !blocks->is_array() || blocks->as_array().empty()) {
          return Status::InvalidArgument(
              "composition requires Links.ResourceBlocks references");
        }
        std::vector<std::string> uris;
        for (const json::Json& entry : blocks->as_array()) {
          const std::string uri = odata::IdOf(entry);
          if (uri.empty()) return Status::InvalidArgument("block reference missing @odata.id");
          uris.push_back(uri);
        }
        return composition_.Compose(body.GetString("Name", "composed-system"), uris);
      });
  rest_.RegisterDeleteHook(kSystems, [this](const std::string& uri) {
    if (uri == kSystems) return Status::PermissionDenied("collection cannot be deleted");
    return composition_.Decompose(uri);
  });

  // Dynamic expansion action (the OOM-mitigation path).
  rest_.RegisterAction(
      "ComputerSystem.AddResourceBlock",
      [this](const std::string& resource_uri, const json::Json& body) -> http::Response {
        const std::string block_uri = body.GetString("ResourceBlock");
        if (block_uri.empty()) {
          return redfish::ErrorResponse(
              Status::InvalidArgument("body must carry 'ResourceBlock': <uri>"));
        }
        const Status expanded = composition_.ExpandSystem(resource_uri, block_uri);
        if (!expanded.ok()) return redfish::ErrorResponse(expanded);
        return http::MakeJsonResponse(200, *tree_.Get(resource_uri));
      });

  // Session management hooks (creation is special-cased in Handle() because
  // the response must carry X-Auth-Token).
  rest_.RegisterDeleteHook(kSessions, [this](const std::string& uri) {
    if (uri == kSessions) return Status::PermissionDenied("collection cannot be deleted");
    const std::size_t slash = uri.rfind('/');
    return sessions_.DeleteSession(uri.substr(slash + 1));
  });

  // Self-check: POST /redfish/v1/Actions/OfmfService.Audit runs the
  // whole-tree conformance audit and returns the report.
  rest_.RegisterAction(
      "OfmfService.Audit",
      [this](const std::string&, const json::Json&) -> http::Response {
        const redfish::ConformanceReport report =
            redfish::AuditTree(tree_, rest_.schemas());
        json::Array issues;
        for (const redfish::ConformanceIssue& issue : report.issues) {
          issues.push_back(json::Json::Obj({{"Uri", issue.uri},
                                            {"Pointer", issue.pointer},
                                            {"Message", issue.message}}));
        }
        return http::MakeJsonResponse(
            200, json::Json::Obj(
                     {{"ResourcesChecked",
                       static_cast<std::int64_t>(report.resources_checked)},
                      {"ResourcesWithSchema",
                       static_cast<std::int64_t>(report.resources_with_schema)},
                      {"Clean", report.clean()},
                      {"Issues", json::Json(std::move(issues))}}));
      });

  // Authentication middleware.
  rest_.SetMiddleware([this](const http::Request& request)
                          -> std::optional<http::Response> {
    if (!sessions_.auth_required()) return std::nullopt;
    // Unauthenticated surface: the root document (GET or HEAD, per RFC 9110
    // HEAD is GET minus the body) and session creation.
    if (request.path == kServiceRoot && (request.method == http::Method::kGet ||
                                         request.method == http::Method::kHead)) {
      return std::nullopt;
    }
    if (request.path == kSessions && request.method == http::Method::kPost) {
      return std::nullopt;
    }
    const std::string token = request.headers.GetOr("X-Auth-Token", "");
    if (token.empty() || !sessions_.Authenticate(token)) {
      return redfish::ErrorResponse(401, "Base.1.0.NoValidSession",
                                    "authenticate via POST " + std::string(kSessions));
    }
    return std::nullopt;
  });
}

Status OfmfService::CreateFabricSkeleton(const std::string& fabric_id,
                                         const std::string& fabric_type,
                                         const std::string& agent_id) {
  const std::string fabric_uri = FabricUri(fabric_id);
  OFMF_RETURN_IF_ERROR(tree_.Create(
      fabric_uri, "#Fabric.v1_3_0.Fabric",
      json::Json::Obj({
          {"Id", fabric_id},
          {"Name", fabric_id + " fabric"},
          {"FabricType", fabric_type},
          {"Status", json::Json::Obj({{"State", "Enabled"}, {"Health", "OK"}})},
          {"Endpoints", odata::Ref(fabric_uri + "/Endpoints")},
          {"Switches", odata::Ref(fabric_uri + "/Switches")},
          {"Zones", odata::Ref(fabric_uri + "/Zones")},
          {"Connections", odata::Ref(fabric_uri + "/Connections")},
          {"Oem", json::Json::Obj({{"Ofmf", json::Json::Obj({{"Agent", agent_id}})}})},
      })));
  OFMF_RETURN_IF_ERROR(tree_.AddMember(kFabrics, fabric_uri));
  OFMF_RETURN_IF_ERROR(tree_.CreateCollection(
      fabric_uri + "/Endpoints", "#EndpointCollection.EndpointCollection", "Endpoints"));
  OFMF_RETURN_IF_ERROR(tree_.CreateCollection(
      fabric_uri + "/Switches", "#SwitchCollection.SwitchCollection", "Switches"));
  OFMF_RETURN_IF_ERROR(tree_.CreateCollection(fabric_uri + "/Zones",
                                              "#ZoneCollection.ZoneCollection", "Zones"));
  return tree_.CreateCollection(fabric_uri + "/Connections",
                                "#ConnectionCollection.ConnectionCollection",
                                "Connections");
}

Status OfmfService::RegisterAgent(std::shared_ptr<FabricAgent> agent) {
  if (!bootstrapped_) return Status::FailedPrecondition("bootstrap the service first");
  const std::string fabric_id = agent->fabric_id();
  if (agents_by_fabric_.count(fabric_id) != 0) {
    return Status::AlreadyExists("an agent already owns fabric " + fabric_id);
  }

  // AggregationSource entry for the agent.
  const std::string source_uri =
      std::string(kAggregationSources) + "/" + agent->agent_id();
  OFMF_RETURN_IF_ERROR(tree_.Create(
      source_uri, "#AggregationSource.v1_2_0.AggregationSource",
      json::Json::Obj({{"Id", agent->agent_id()},
                       {"Name", "Agent " + agent->agent_id()},
                       {"HostName", "ofmf-agent://" + agent->agent_id()},
                       {"Links", json::Json::Obj({{"ConnectionMethod",
                                                   json::Json::Obj({{"FabricId",
                                                                     fabric_id}})}})}})));
  OFMF_RETURN_IF_ERROR(tree_.AddMember(kAggregationSources, source_uri));

  OFMF_RETURN_IF_ERROR(agent->PublishInventory(*this));

  // Route fabric-scoped mutations to the agent.
  const std::string fabric_uri = FabricUri(fabric_id);
  FabricAgent* raw = agent.get();
  rest_.RegisterFactory(fabric_uri + "/Zones", "Zone",
                        [this, raw](const json::Json& body) {
                          return raw->CreateZone(*this, body);
                        });
  rest_.RegisterFactory(fabric_uri + "/Connections", "Connection",
                        [this, raw](const json::Json& body) {
                          return raw->CreateConnection(*this, body);
                        });
  rest_.RegisterDeleteHook(fabric_uri, [this, raw, fabric_uri](const std::string& uri) {
    if (uri == fabric_uri) {
      return Status::PermissionDenied("fabrics are owned by their agent");
    }
    return raw->DeleteResource(*this, uri);
  });

  agents_by_fabric_.emplace(fabric_id, std::move(agent));

  Event event;
  event.event_type = "ResourceAdded";
  event.message_id = "AggregationService.1.0.AgentRegistered";
  event.message = "agent registered for fabric " + fabric_id;
  event.origin = source_uri;
  events_.Publish(event);
  return Status::Ok();
}

Result<FabricAgent*> OfmfService::AgentForFabric(const std::string& fabric_id) {
  auto it = agents_by_fabric_.find(fabric_id);
  if (it == agents_by_fabric_.end()) {
    return Status::NotFound("no agent for fabric " + fabric_id);
  }
  return it->second.get();
}

std::size_t OfmfService::ProcessPendingWork() {
  std::size_t ran = 0;
  while (!pending_work_.empty()) {
    std::function<void()> work = std::move(pending_work_.front());
    pending_work_.pop_front();
    work();
    ++ran;
  }
  return ran;
}

http::Response OfmfService::Handle(const http::Request& request) {
  // Lazy refresh of the read-path cache counters: reading the ResponseCache
  // MetricReport first syncs it from the live cache (no-op when the counters
  // have not moved since the last sync; other telemetry reads are untouched).
  if ((request.method == http::Method::kGet || request.method == http::Method::kHead) &&
      http::NormalizePath(request.path) == TelemetryService::ResponseCacheReportUri()) {
    (void)telemetry_.UpdateResponseCacheReport(rest_.response_cache().stats());
  }

  // Asynchronous composition: Redfish's "Prefer: respond-async". The POST
  // is validated lazily by the deferred composition; the client gets a Task
  // monitor immediately (202) and polls it.
  if (request.method == http::Method::kPost &&
      http::NormalizePath(request.path) == kSystems &&
      request.headers.GetOr("Prefer", "").find("respond-async") != std::string::npos) {
    Result<json::Json> body = request.JsonBody();
    if (!body.ok()) return redfish::ErrorResponse(body.status());
    Result<std::string> task_uri =
        tasks_.CreateTask("compose " + body->GetString("Name", "system"));
    if (!task_uri.ok()) return redfish::ErrorResponse(task_uri.status());
    (void)tasks_.SetState(*task_uri, TaskState::kRunning);
    const json::Json captured_body = *body;
    const std::string captured_task = *task_uri;
    pending_work_.push_back([this, captured_body, captured_task] {
      http::Request inner = http::MakeJsonRequest(http::Method::kPost, kSystems,
                                                  captured_body);
      const http::Response response = rest_.Handle(inner);
      if (response.status == 201) {
        const std::string system_uri = response.headers.GetOr("Location", "");
        (void)tree_.Patch(
            captured_task,
            json::Json::Obj({{"Oem", json::Json::Obj({{"Ofmf",
                                                       json::Json::Obj(
                                                           {{"SystemUri",
                                                             system_uri}})}})}}));
        (void)tasks_.SetState(captured_task, TaskState::kCompleted,
                              "composed " + system_uri);
      } else {
        (void)tasks_.SetState(captured_task, TaskState::kException,
                              "composition failed with HTTP " +
                                  std::to_string(response.status));
      }
    });
    http::Response accepted = http::MakeJsonResponse(202, *tree_.Get(*task_uri));
    accepted.headers.Set("Location", *task_uri);
    return accepted;
  }

  // Session creation: must run before generic dispatch so the response can
  // carry the X-Auth-Token header.
  if (request.method == http::Method::kPost &&
      http::NormalizePath(request.path) == kSessions) {
    Result<json::Json> body = request.JsonBody();
    if (!body.ok()) return redfish::ErrorResponse(body.status());
    Result<SessionInfo> session =
        sessions_.CreateSession(body->GetString("UserName"), body->GetString("Password"));
    if (!session.ok()) return redfish::ErrorResponse(session.status());
    http::Response response = http::MakeJsonResponse(201, *tree_.Get(session->uri));
    response.headers.Set("Location", session->uri);
    response.headers.Set("X-Auth-Token", session->token);
    return response;
  }
  return rest_.Handle(request);
}

}  // namespace ofmf::core
