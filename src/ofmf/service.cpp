#include "ofmf/service.hpp"

#include <array>
#include <chrono>
#include <iterator>
#include <set>
#include <string_view>
#include <thread>

#include "common/metrics.hpp"
#include "common/strings.hpp"
#include "common/trace.hpp"
#include "http/uri.hpp"
#include "json/pointer.hpp"
#include "odata/annotations.hpp"
#include "ofmf/uris.hpp"
#include "redfish/conformance.hpp"
#include "redfish/errors.hpp"

namespace ofmf::core {
namespace {

// Per-endpoint HTTP latency histograms, keyed (method, top-level segment).
// The MetricReports subtree is deliberately unclassified: a metrics scrape
// must not move the counters it is reporting, or the report could never be
// ETag-stable. Resolved Histogram pointers are cached in an atomic table so
// the hot path never takes the registry mutex.
metrics::Histogram* EndpointHistogram(http::Method method, const std::string& path) {
  static constexpr const char* kSegments[] = {
      "ServiceRoot",   "Systems",          "Fabrics",
      "Chassis",       "SessionService",   "EventService",
      "TaskService",   "TelemetryService", "AggregationService",
      "CompositionService", "StorageServices", "Other"};
  constexpr std::size_t kNumSegments = std::size(kSegments);
  constexpr std::size_t kNumMethods = 7;  // http::Method enumerator count

  if (path.rfind(kMetricReports, 0) == 0) return nullptr;
  std::size_t segment = kNumSegments - 1;  // "Other"
  const std::string_view prefix = "/redfish/v1";
  if (path == prefix || path == "/redfish/v1/") {
    segment = 0;
  } else if (path.rfind(prefix, 0) == 0 && path.size() > prefix.size() &&
             path[prefix.size()] == '/') {
    const std::size_t begin = prefix.size() + 1;
    const std::size_t end = path.find('/', begin);
    const std::string_view name(path.data() + begin,
                                (end == std::string::npos ? path.size() : end) - begin);
    for (std::size_t i = 1; i + 1 < kNumSegments; ++i) {
      if (name == kSegments[i]) {
        segment = i;
        break;
      }
    }
  }
  static std::array<std::array<std::atomic<metrics::Histogram*>, kNumSegments>,
                    kNumMethods>
      table{};
  std::atomic<metrics::Histogram*>& slot =
      table[static_cast<std::size_t>(method) % kNumMethods][segment];
  metrics::Histogram* hist = slot.load(std::memory_order_acquire);
  if (hist == nullptr) {
    hist = &metrics::Registry::instance().histogram(
        std::string("http.latency.") + http::to_string(method) + "." + kSegments[segment]);
    slot.store(hist, std::memory_order_release);  // benign race: same pointer
  }
  return hist;
}

}  // namespace

OfmfService::OfmfService()
    : rest_(tree_, redfish::SchemaRegistry::BuiltIn()),
      sessions_(tree_),
      events_(tree_, clock_),
      tasks_(tree_, clock_),
      telemetry_(tree_, events_, clock_),
      composition_(tree_, events_) {}

Status OfmfService::BootstrapServiceRoot() {
  OFMF_RETURN_IF_ERROR(tree_.Create(
      kServiceRoot, "#ServiceRoot.v1_15_0.ServiceRoot",
      json::Json::Obj({
          {"Id", "RootService"},
          {"Name", "OpenFabrics Management Framework"},
          {"RedfishVersion", "1.17.0"},
          {"UUID", "5cf3e329-57b6-4d92-9a2f-ofmf00000001"},
          {"Fabrics", odata::Ref(kFabrics)},
          {"Systems", odata::Ref(kSystems)},
          {"Chassis", odata::Ref(kChassis)},
          {"StorageServices", odata::Ref(kStorageServices)},
          {"SessionService", odata::Ref(kSessionService)},
          {"EventService", odata::Ref(kEventService)},
          {"TaskService", odata::Ref(kTaskService)},
          {"TelemetryService", odata::Ref(kTelemetryService)},
          {"AggregationService", odata::Ref(kAggregationService)},
          {"CompositionService", odata::Ref(kCompositionService)},
      })));
  OFMF_RETURN_IF_ERROR(
      tree_.CreateCollection(kFabrics, "#FabricCollection.FabricCollection", "Fabrics"));
  OFMF_RETURN_IF_ERROR(tree_.CreateCollection(
      kSystems, "#ComputerSystemCollection.ComputerSystemCollection", "Systems"));
  OFMF_RETURN_IF_ERROR(tree_.CreateCollection(
      kChassis, "#ChassisCollection.ChassisCollection", "Chassis"));
  OFMF_RETURN_IF_ERROR(tree_.CreateCollection(
      kStorageServices, "#StorageServiceCollection.StorageServiceCollection",
      "Storage Services"));
  OFMF_RETURN_IF_ERROR(tree_.Create(
      kAggregationService, "#AggregationService.v1_0_2.AggregationService",
      json::Json::Obj({{"Id", "AggregationService"},
                       {"Name", "Aggregation Service"},
                       {"ServiceEnabled", true},
                       {"AggregationSources", odata::Ref(kAggregationSources)}})));
  return tree_.CreateCollection(
      kAggregationSources, "#AggregationSourceCollection.AggregationSourceCollection",
      "Aggregation Sources");
}

Status OfmfService::Bootstrap() {
  if (bootstrapped_) return Status::FailedPrecondition("already bootstrapped");
  OFMF_RETURN_IF_ERROR(BootstrapServiceRoot());
  OFMF_RETURN_IF_ERROR(sessions_.Bootstrap());
  OFMF_RETURN_IF_ERROR(events_.Bootstrap());
  OFMF_RETURN_IF_ERROR(tasks_.Bootstrap());
  OFMF_RETURN_IF_ERROR(telemetry_.Bootstrap());
  OFMF_RETURN_IF_ERROR(composition_.Bootstrap());
  WireRoutes();
  bootstrapped_ = true;
  return Status::Ok();
}

void OfmfService::set_shard_identity(const std::string& shard_id) {
  shard_id_ = shard_id;
  composition_.set_system_id_prefix(shard_id);
  if (bootstrapped_ && !shard_id.empty()) {
    (void)tree_.Patch(
        kServiceRoot,
        json::Json::Obj(
            {{"Oem", json::Json::Obj({{"Ofmf", json::Json::Obj(
                                                   {{"ShardId", shard_id}})}})}}));
  }
}

void OfmfService::WireRoutes() {
  // Event subscriptions.
  rest_.RegisterFactory(kSubscriptions, "EventDestination",
                        [this](const json::Json& body) { return events_.Subscribe(body); });
  rest_.RegisterDeleteHook(kSubscriptions, [this](const std::string& uri) {
    if (uri == kSubscriptions) {
      return Status::PermissionDenied("collection cannot be deleted");
    }
    return events_.Unsubscribe(uri);
  });
  // Drain action for internal (ofmf-internal://) subscription queues, so
  // transport-agnostic clients can poll their events over plain Redfish.
  rest_.RegisterAction(
      "EventDestination.Drain",
      [this](const std::string& resource_uri, const json::Json&) -> http::Response {
        Result<std::vector<json::Json>> drained = events_.Drain(resource_uri);
        if (!drained.ok()) return redfish::ErrorResponse(drained.status());
        json::Array events(drained->begin(), drained->end());
        return http::MakeJsonResponse(
            200, json::Json::Obj({{"Events", json::Json(std::move(events))}}));
      });

  // Composition: POST Systems with block links; DELETE decomposes. A body
  // carrying Oem.Ofmf.Federation.PreClaimed is the federation router's
  // two-phase path: local blocks were already claimed over the wire, remote
  // blocks arrive as captured payloads, and the adopted composition takes
  // (and on failure releases) no claims of its own.
  rest_.RegisterFactory(
      kSystems, "ComputerSystem", [this](const json::Json& body) -> Result<std::string> {
        const json::Json* federation =
            json::ResolvePointerRef(body, "/Oem/Ofmf/Federation");
        const bool pre_claimed =
            federation != nullptr && federation->GetBool("PreClaimed", false);
        const json::Json* blocks =
            json::ResolvePointerRef(body, "/Links/ResourceBlocks");
        if (!pre_claimed &&
            (blocks == nullptr || !blocks->is_array() || blocks->as_array().empty())) {
          return Status::InvalidArgument(
              "composition requires Links.ResourceBlocks references");
        }
        std::vector<std::string> uris;
        if (blocks != nullptr && blocks->is_array()) {
          for (const json::Json& entry : blocks->as_array()) {
            const std::string uri = odata::IdOf(entry);
            if (uri.empty()) return Status::InvalidArgument("block reference missing @odata.id");
            uris.push_back(uri);
          }
        }
        const std::string name = body.GetString("Name", "composed-system");
        if (!pre_claimed) return composition_.Compose(name, uris);
        std::vector<RemoteBlock> remote;
        const json::Json* remote_blocks =
            json::ResolvePointerRef(*federation, "/RemoteBlocks");
        if (remote_blocks != nullptr && remote_blocks->is_array()) {
          for (const json::Json& entry : remote_blocks->as_array()) {
            RemoteBlock block;
            block.uri = entry.GetString("Uri");
            block.shard_id = entry.GetString("ShardId");
            block.payload = entry.at("Payload");
            if (block.uri.empty()) {
              return Status::InvalidArgument("remote block entry missing Uri");
            }
            remote.push_back(std::move(block));
          }
        }
        return composition_.ComposeAdopted(name, uris, remote,
                                           federation->GetString("Txn"));
      });
  rest_.RegisterDeleteHook(kSystems, [this](const std::string& uri) {
    if (uri == kSystems) return Status::PermissionDenied("collection cannot be deleted");
    return composition_.Decompose(uri);
  });

  // Dynamic expansion action (the OOM-mitigation path).
  rest_.RegisterAction(
      "ComputerSystem.AddResourceBlock",
      [this](const std::string& resource_uri, const json::Json& body) -> http::Response {
        const std::string block_uri = body.GetString("ResourceBlock");
        if (block_uri.empty()) {
          return redfish::ErrorResponse(
              Status::InvalidArgument("body must carry 'ResourceBlock': <uri>"));
        }
        const Status expanded = composition_.ExpandSystem(resource_uri, block_uri);
        if (!expanded.ok()) return redfish::ErrorResponse(expanded);
        return http::MakeJsonResponse(200, *tree_.Get(resource_uri));
      });

  // Session management hooks (creation is special-cased in Handle() because
  // the response must carry X-Auth-Token).
  rest_.RegisterDeleteHook(kSessions, [this](const std::string& uri) {
    if (uri == kSessions) return Status::PermissionDenied("collection cannot be deleted");
    const std::size_t slash = uri.rfind('/');
    return sessions_.DeleteSession(uri.substr(slash + 1));
  });

  // Tenant accounts: POST a tenant (id + QoS class + DRR weight + rate
  // limits + member users) to the Tenants collection; DELETE unbinds its
  // users and falls back to best-effort scheduling for their sessions.
  rest_.RegisterFactory(kTenants, "OfmfTenant",
                        [this](const json::Json& body) {
                          return sessions_.CreateTenantFromPayload(body);
                        });
  rest_.RegisterDeleteHook(kTenants, [this](const std::string& uri) {
    if (uri == kTenants) return Status::PermissionDenied("collection cannot be deleted");
    const std::size_t slash = uri.rfind('/');
    return sessions_.DeleteTenant(uri.substr(slash + 1));
  });

  // Self-check: POST /redfish/v1/Actions/OfmfService.Audit runs the
  // whole-tree conformance audit and returns the report.
  rest_.RegisterAction(
      "OfmfService.Audit",
      [this](const std::string&, const json::Json&) -> http::Response {
        const redfish::ConformanceReport report =
            redfish::AuditTree(tree_, rest_.schemas());
        json::Array issues;
        for (const redfish::ConformanceIssue& issue : report.issues) {
          issues.push_back(json::Json::Obj({{"Uri", issue.uri},
                                            {"Pointer", issue.pointer},
                                            {"Message", issue.message}}));
        }
        return http::MakeJsonResponse(
            200, json::Json::Obj(
                     {{"ResourcesChecked",
                       static_cast<std::int64_t>(report.resources_checked)},
                      {"ResourcesWithSchema",
                       static_cast<std::int64_t>(report.resources_with_schema)},
                      {"Clean", report.clean()},
                      {"Issues", json::Json(std::move(issues))}}));
      });

  // One-shot observability dump: every histogram (with percentiles), every
  // counter, the trace-recorder stats, and the read-path cache counters in
  // one JSON document. Benches and operators scrape this instead of stitching
  // MetricReports together.
  rest_.RegisterAction(
      "OfmfService.MetricsDump",
      [this](const std::string&, const json::Json&) -> http::Response {
        json::Array histograms;
        for (const metrics::Registry::NamedHistogram& entry :
             metrics::Registry::instance().HistogramSnapshots()) {
          // Raw log2 buckets travel with every histogram so the federation
          // router can merge shard dumps bucket-wise (percentiles do not
          // compose; buckets do).
          // Pre-sized assignment, not push_back: GCC 12's
          // -Wmaybe-uninitialized false-positives on vector relocation of
          // the Json variant at -O2.
          json::Array buckets(entry.snap.buckets.size());
          for (std::size_t i = 0; i < entry.snap.buckets.size(); ++i) {
            buckets[i] = static_cast<std::int64_t>(entry.snap.buckets[i]);
          }
          histograms.push_back(json::Json::Obj(
              {{"Name", entry.name},
               {"Count", static_cast<std::int64_t>(entry.snap.count)},
               {"Sum", static_cast<std::int64_t>(entry.snap.sum)},
               {"Mean", entry.snap.mean()},
               {"P50", entry.snap.Percentile(0.50)},
               {"P95", entry.snap.Percentile(0.95)},
               {"P99", entry.snap.Percentile(0.99)},
               {"Buckets", json::Json(std::move(buckets))}}));
        }
        json::Array counters;
        for (const auto& [name, value] : metrics::Registry::instance().CounterValues()) {
          counters.push_back(json::Json::Obj(
              {{"Name", name}, {"Value", static_cast<std::int64_t>(value)}}));
        }
        const trace::TraceStats tstats = trace::TraceRecorder::instance().stats();
        const redfish::ResponseCacheStats cstats = rest_.response_cache().stats();
        const DeliverySnapshot dstats = events_.CollectDelivery();
        return http::MakeJsonResponse(
            200,
            json::Json::Obj(
                {{"ShardId", shard_id_.empty() ? "ofmf" : shard_id_},
                 {"Histograms", json::Json(std::move(histograms))},
                 {"Counters", json::Json(std::move(counters))},
                 {"Trace",
                  json::Json::Obj(
                      {{"SampledTraces", static_cast<std::int64_t>(tstats.sampled_traces)},
                       {"SkippedTraces", static_cast<std::int64_t>(tstats.skipped_traces)},
                       {"SpansRecorded", static_cast<std::int64_t>(tstats.spans_recorded)},
                       {"SpansEvicted", static_cast<std::int64_t>(tstats.spans_evicted)},
                       {"SlowTraces", static_cast<std::int64_t>(tstats.slow_traces)},
                       {"RetainedTraces",
                        static_cast<std::int64_t>(tstats.retained_traces)}})},
                 {"ResponseCache",
                  json::Json::Obj(
                      {{"Hits", static_cast<std::int64_t>(cstats.hits)},
                       {"Misses", static_cast<std::int64_t>(cstats.misses)},
                       {"Evictions", static_cast<std::int64_t>(cstats.evictions)},
                       {"Invalidations", static_cast<std::int64_t>(cstats.invalidations)},
                       {"HitRate", cstats.hit_rate()}})},
                 // The two sections below exist for the federation router's
                 // fleet aggregation (counters add across shards).
                 {"EventDelivery",
                  json::Json::Obj(
                      {{"Delivered", static_cast<std::int64_t>(dstats.delivered)},
                       {"Batches", static_cast<std::int64_t>(dstats.batches)},
                       {"Coalesced", static_cast<std::int64_t>(dstats.coalesced)},
                       {"Dropped", static_cast<std::int64_t>(dstats.dropped)},
                       {"Retries", static_cast<std::int64_t>(dstats.retries)},
                       {"Failures", static_cast<std::int64_t>(dstats.failures)},
                       {"QueuedEvents", static_cast<std::int64_t>(dstats.total_queued)},
                       {"BreakersOpen", static_cast<std::int64_t>(dstats.breakers_open)},
                       {"Streams", static_cast<std::int64_t>(dstats.streams)},
                       {"LastSequence",
                        static_cast<std::int64_t>(dstats.last_sequence)}})},
                 {"Resilience", HealthStats()}}));
      });

  // This process's fragment of a (possibly cross-process) trace: the span
  // tree retained for a slow/error trace id, or the ring's spans as a
  // best-effort fallback. No TraceId lists the retained ids. The federation
  // router fetches these per shard and stitches them into one tree.
  rest_.RegisterAction(
      "OfmfService.TraceDump",
      [this](const std::string&, const json::Json& body) -> http::Response {
        trace::TraceRecorder& recorder = trace::TraceRecorder::instance();
        const std::string origin_default = shard_id_.empty() ? "ofmf" : shard_id_;
        const std::string trace_hex = body.GetString("TraceId");
        if (trace_hex.empty()) {
          json::Array ids;
          for (const std::uint64_t id : recorder.RetainedTraceIds()) {
            ids.push_back(json::Json(trace::IdToHex(id)));
          }
          return http::MakeJsonResponse(
              200, json::Json::Obj({{"ShardId", origin_default},
                                    {"RetainedTraces", json::Json(std::move(ids))}}));
        }
        const std::uint64_t trace_id = trace::HexToId(trace_hex);
        if (trace_id == 0) {
          return redfish::ErrorResponse(
              Status::InvalidArgument("TraceId must be 16 hex digits"));
        }
        std::vector<trace::SpanRecord> spans = recorder.RetainedTrace(trace_id);
        if (spans.empty()) spans = recorder.TraceSpans(trace_id);
        json::Array out;
        for (const trace::SpanRecord& s : spans) {
          out.push_back(json::Json::Obj(
              {{"SpanId", trace::IdToHex(s.span_id)},
               {"ParentSpanId", trace::IdToHex(s.parent_span_id)},
               {"Name", s.name},
               {"Note", s.note},
               {"Origin", s.origin.empty() ? origin_default : s.origin},
               {"StartNs", static_cast<std::int64_t>(s.start_ns)},
               {"DurationNs", static_cast<std::int64_t>(s.duration_ns)},
               {"Thread", static_cast<std::int64_t>(s.thread_id)},
               {"Error", s.error}}));
        }
        return http::MakeJsonResponse(
            200, json::Json::Obj({{"TraceId", trace::IdToHex(trace_id)},
                                  {"ShardId", origin_default},
                                  {"Spans", json::Json(std::move(out))}}));
      });
}

std::optional<http::Response> OfmfService::Authenticate(const http::Request& request) {
  if (!sessions_.auth_required()) return std::nullopt;
  // Unauthenticated surface: the root document (GET or HEAD, per RFC 9110
  // HEAD is GET minus the body) and session creation.
  if (request.path == kServiceRoot && (request.method == http::Method::kGet ||
                                       request.method == http::Method::kHead)) {
    return std::nullopt;
  }
  if (request.path == kSessions && request.method == http::Method::kPost) {
    return std::nullopt;
  }
  const std::string token = request.headers.GetOr("X-Auth-Token", "");
  if (token.empty() || !sessions_.Authenticate(token)) {
    return redfish::ErrorResponse(401, "Base.1.0.NoValidSession",
                                  "authenticate via POST " + std::string(kSessions));
  }
  return std::nullopt;
}

Status OfmfService::CreateFabricSkeleton(const std::string& fabric_id,
                                         const std::string& fabric_type,
                                         const std::string& agent_id) {
  const std::string fabric_uri = FabricUri(fabric_id);
  OFMF_RETURN_IF_ERROR(tree_.Create(
      fabric_uri, "#Fabric.v1_3_0.Fabric",
      json::Json::Obj({
          {"Id", fabric_id},
          {"Name", fabric_id + " fabric"},
          {"FabricType", fabric_type},
          {"Status", json::Json::Obj({{"State", "Enabled"}, {"Health", "OK"}})},
          {"Endpoints", odata::Ref(fabric_uri + "/Endpoints")},
          {"Switches", odata::Ref(fabric_uri + "/Switches")},
          {"Zones", odata::Ref(fabric_uri + "/Zones")},
          {"Connections", odata::Ref(fabric_uri + "/Connections")},
          {"Oem", json::Json::Obj({{"Ofmf", json::Json::Obj({{"Agent", agent_id}})}})},
      })));
  OFMF_RETURN_IF_ERROR(tree_.AddMember(kFabrics, fabric_uri));
  // After crash recovery the sub-collections already exist with their member
  // lists; recreating them (even adopt-in-place) would wipe the membership,
  // so only materialize the ones actually missing.
  const auto ensure_collection = [&](const std::string& uri, const char* type,
                                     const char* name) -> Status {
    if (tree_.Exists(uri)) return Status::Ok();
    return tree_.CreateCollection(uri, type, name);
  };
  OFMF_RETURN_IF_ERROR(ensure_collection(
      fabric_uri + "/Endpoints", "#EndpointCollection.EndpointCollection", "Endpoints"));
  OFMF_RETURN_IF_ERROR(ensure_collection(
      fabric_uri + "/Switches", "#SwitchCollection.SwitchCollection", "Switches"));
  OFMF_RETURN_IF_ERROR(ensure_collection(fabric_uri + "/Zones",
                                         "#ZoneCollection.ZoneCollection", "Zones"));
  return ensure_collection(fabric_uri + "/Connections",
                           "#ConnectionCollection.ConnectionCollection", "Connections");
}

Status OfmfService::RegisterAgent(std::shared_ptr<FabricAgent> agent) {
  if (!bootstrapped_) return Status::FailedPrecondition("bootstrap the service first");
  const std::string fabric_id = agent->fabric_id();
  if (agents_by_fabric_.count(fabric_id) != 0) {
    return Status::AlreadyExists("an agent already owns fabric " + fabric_id);
  }

  // AggregationSource entry for the agent.
  const std::string source_uri =
      std::string(kAggregationSources) + "/" + agent->agent_id();
  OFMF_RETURN_IF_ERROR(tree_.Create(
      source_uri, "#AggregationSource.v1_2_0.AggregationSource",
      json::Json::Obj({{"Id", agent->agent_id()},
                       {"Name", "Agent " + agent->agent_id()},
                       {"HostName", "ofmf-agent://" + agent->agent_id()},
                       {"Links", json::Json::Obj({{"ConnectionMethod",
                                                   json::Json::Obj({{"FabricId",
                                                                     fabric_id}})}})}})));
  OFMF_RETURN_IF_ERROR(tree_.AddMember(kAggregationSources, source_uri));

  OFMF_RETURN_IF_ERROR(agent->PublishInventory(*this));

  // Route fabric-scoped mutations to the agent, guarded by its circuit
  // breaker and (when an injector is attached) the "agent.<id>" fault point.
  {
    std::lock_guard<std::mutex> lock(breakers_mu_);
    breakers_by_fabric_.emplace(fabric_id, std::make_unique<CircuitBreaker>());
  }
  const std::string fabric_uri = FabricUri(fabric_id);
  FabricAgent* raw = agent.get();
  rest_.RegisterFactory(fabric_uri + "/Zones", "Zone",
                        [this, raw, fabric_id](const json::Json& body) {
                          return GuardedAgentCreate(
                              fabric_id, [&] { return raw->CreateZone(*this, body); });
                        });
  rest_.RegisterFactory(
      fabric_uri + "/Connections", "Connection",
      [this, raw, fabric_id](const json::Json& body) {
        return GuardedAgentCreate(fabric_id,
                                  [&] { return raw->CreateConnection(*this, body); });
      });
  rest_.RegisterDeleteHook(
      fabric_uri, [this, raw, fabric_uri, fabric_id](const std::string& uri) {
        if (uri == fabric_uri) {
          return Status::PermissionDenied("fabrics are owned by their agent");
        }
        return GuardedAgentDelete(fabric_id,
                                  [&] { return raw->DeleteResource(*this, uri); });
      });

  agents_by_fabric_.emplace(fabric_id, std::move(agent));

  Event event;
  event.event_type = "ResourceAdded";
  event.message_id = "AggregationService.1.0.AgentRegistered";
  event.message = "agent registered for fabric " + fabric_id;
  event.origin = source_uri;
  events_.Publish(event);
  return Status::Ok();
}

Result<FabricAgent*> OfmfService::AgentForFabric(const std::string& fabric_id) {
  auto it = agents_by_fabric_.find(fabric_id);
  if (it == agents_by_fabric_.end()) {
    return Status::NotFound("no agent for fabric " + fabric_id);
  }
  return it->second.get();
}

Result<CircuitBreaker*> OfmfService::BreakerForFabric(const std::string& fabric_id) {
  std::lock_guard<std::mutex> lock(breakers_mu_);
  auto it = breakers_by_fabric_.find(fabric_id);
  if (it == breakers_by_fabric_.end()) {
    return Status::NotFound("no breaker for fabric " + fabric_id);
  }
  return it->second.get();
}

bool OfmfService::FabricDegraded(const std::string& fabric_id) const {
  std::lock_guard<std::mutex> lock(degraded_mu_);
  return degraded_uris_.count(fabric_id) != 0;
}

ResilienceSnapshot OfmfService::CollectResilience() const {
  ResilienceSnapshot snapshot;
  {
    std::lock_guard<std::mutex> lock(breakers_mu_);
    for (const auto& [fabric_id, breaker] : breakers_by_fabric_) {
      ResilienceSnapshot::FabricBreaker entry;
      entry.fabric_id = fabric_id;
      entry.state = breaker->state();
      entry.stats = breaker->stats();
      entry.degraded = FabricDegraded(fabric_id);
      snapshot.breakers.push_back(std::move(entry));
    }
  }
  {
    std::lock_guard<std::mutex> lock(replay_mu_);
    snapshot.replayed_posts = replay_hits_;
  }
  return snapshot;
}

json::Json OfmfService::HealthStats() {
  const ResilienceSnapshot resilience = CollectResilience();
  std::int64_t open = 0;
  json::Array breakers;
  for (const ResilienceSnapshot::FabricBreaker& breaker : resilience.breakers) {
    if (breaker.state != BreakerState::kClosed) ++open;
    breakers.push_back(json::Json::Obj({{"FabricId", breaker.fabric_id},
                                        {"State", to_string(breaker.state)},
                                        {"Degraded", breaker.degraded}}));
  }
  const redfish::ResponseCacheStats cache = rest_.response_cache().stats();
  return json::Json::Obj({
      {"BreakersOpen", open},
      {"BreakersTotal", static_cast<std::int64_t>(resilience.breakers.size())},
      {"Breakers", json::Json(std::move(breakers))},
      {"ReplayedPosts", static_cast<std::int64_t>(resilience.replayed_posts)},
      {"CacheHitRate", cache.hit_rate()},
  });
}

Status OfmfService::InjectedAgentFault(const std::string& fabric_id) {
  if (faults_ == nullptr || !faults_->enabled()) return Status::Ok();
  const FaultDecision decision = faults_->Evaluate("agent." + fabric_id);
  switch (decision.kind) {
    case FaultKind::kNone:
      return Status::Ok();
    case FaultKind::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(decision.delay_ms));
      return Status::Ok();
    case FaultKind::kDropConnection:
    case FaultKind::kDropResponse:
    case FaultKind::kErrorStatus:
    case FaultKind::kCrash:
      return Status::Unavailable("agent for fabric " + fabric_id +
                                 " unreachable (injected " +
                                 std::string(to_string(decision.kind)) + ")");
    case FaultKind::kTornWrite:
    case FaultKind::kShortFsync:
      return Status::Ok();  // storage-only faults; no agent-path meaning
  }
  return Status::Ok();
}

void OfmfService::NoteAgentOutcome(const std::string& fabric_id, const Status& status) {
  CircuitBreaker* found = nullptr;
  {
    std::lock_guard<std::mutex> lock(breakers_mu_);
    auto it = breakers_by_fabric_.find(fabric_id);
    if (it == breakers_by_fabric_.end()) return;
    found = it->second.get();
  }
  CircuitBreaker& breaker = *found;
  const BreakerState before = breaker.state();
  // Only transport-level failures are agent-health signals; a client error
  // (bad zone spec, unknown endpoint) says nothing about the agent's health.
  const bool health_failure = status.code() == ErrorCode::kUnavailable ||
                              status.code() == ErrorCode::kTimeout;
  if (health_failure) {
    breaker.RecordFailure();
  } else {
    breaker.RecordSuccess();
  }
  const BreakerState after = breaker.state();
  if (before != BreakerState::kOpen && after == BreakerState::kOpen) {
    metrics::Registry::instance().counter("breaker.opened").Increment();
    DegradeFabric(fabric_id);
  } else if (before != BreakerState::kClosed && after == BreakerState::kClosed) {
    metrics::Registry::instance().counter("breaker.closed").Increment();
    RestoreFabric(fabric_id);
  }
}

Result<std::string> OfmfService::GuardedAgentCreate(
    const std::string& fabric_id, const std::function<Result<std::string>()>& call) {
  trace::Span span("agent.call");
  if (span.active()) span.Note("fabric " + fabric_id);
  static metrics::Histogram& latency =
      metrics::Registry::instance().histogram("agent.call.ns");
  metrics::ScopedTimer timer(latency);
  auto breaker = BreakerForFabric(fabric_id);
  if (breaker.ok() && !(*breaker)->Allow()) {
    if (span.active()) span.Note("rejected: circuit open");
    return Status::Unavailable("circuit open for fabric " + fabric_id +
                               "; serving degraded inventory");
  }
  const Status injected = InjectedAgentFault(fabric_id);
  if (!injected.ok()) {
    if (span.active()) span.Note("error: " + injected.message());
    NoteAgentOutcome(fabric_id, injected);
    return injected;
  }
  Result<std::string> result = call();
  if (span.active() && !result.ok()) span.Note("error: " + result.status().message());
  NoteAgentOutcome(fabric_id, result.status());
  return result;
}

Status OfmfService::GuardedAgentDelete(const std::string& fabric_id,
                                       const std::function<Status()>& call) {
  trace::Span span("agent.call");
  if (span.active()) span.Note("fabric " + fabric_id + " delete");
  static metrics::Histogram& latency =
      metrics::Registry::instance().histogram("agent.call.ns");
  metrics::ScopedTimer timer(latency);
  auto breaker = BreakerForFabric(fabric_id);
  if (breaker.ok() && !(*breaker)->Allow()) {
    if (span.active()) span.Note("rejected: circuit open");
    return Status::Unavailable("circuit open for fabric " + fabric_id +
                               "; serving degraded inventory");
  }
  const Status injected = InjectedAgentFault(fabric_id);
  if (!injected.ok()) {
    if (span.active()) span.Note("error: " + injected.message());
    NoteAgentOutcome(fabric_id, injected);
    return injected;
  }
  const Status result = call();
  if (span.active() && !result.ok()) span.Note("error: " + result.message());
  NoteAgentOutcome(fabric_id, result);
  return result;
}

void OfmfService::DegradeFabric(const std::string& fabric_id) {
  const std::string fabric_uri = FabricUri(fabric_id);
  const json::Json degraded_status = json::Json::Obj(
      {{"Status", json::Json::Obj({{"State", "UnavailableOffline"},
                                   {"Health", "Critical"}})}});
  // A failed half-open probe re-opens the breaker and lands here again
  // while the subtree is still degraded; the first snapshot is the real
  // pre-outage state, so never re-snapshot a URI already recorded.
  std::set<std::string> already_saved;
  {
    std::lock_guard<std::mutex> lock(degraded_mu_);
    auto it = degraded_uris_.find(fabric_id);
    if (it != degraded_uris_.end()) {
      for (const auto& [uri, status] : it->second) already_saved.insert(uri);
    }
  }
  std::vector<std::pair<std::string, json::Json>> touched;
  for (const std::string& uri : tree_.UrisUnder(fabric_uri)) {
    if (already_saved.count(uri) != 0) continue;
    const Result<json::Json> doc = tree_.GetRaw(uri);
    if (!doc.ok() || !doc->is_object() || !doc->as_object().Contains("Status")) continue;
    // Snapshot the pre-degradation Status so Restore puts back the real
    // health (a port a flapper had marked down must come back down, not OK).
    json::Json original = doc->at("Status");
    if (tree_.Patch(uri, degraded_status).ok()) {
      touched.emplace_back(uri, std::move(original));
    }
  }
  {
    std::lock_guard<std::mutex> lock(degraded_mu_);
    auto& saved = degraded_uris_[fabric_id];
    saved.insert(saved.end(), std::make_move_iterator(touched.begin()),
                 std::make_move_iterator(touched.end()));
  }
  Event event;
  event.event_type = "StatusChange";
  event.message_id = "AggregationService.1.0.FabricDegraded";
  event.message = "circuit opened for fabric " + fabric_id +
                  "; inventory marked Critical and served stale";
  event.origin = fabric_uri;
  events_.Publish(event);
}

void OfmfService::RestoreFabric(const std::string& fabric_id) {
  std::vector<std::pair<std::string, json::Json>> touched;
  {
    std::lock_guard<std::mutex> lock(degraded_mu_);
    auto it = degraded_uris_.find(fabric_id);
    if (it == degraded_uris_.end()) return;
    touched = std::move(it->second);
    degraded_uris_.erase(it);
  }
  for (const auto& [uri, original_status] : touched) {
    (void)tree_.Patch(uri, json::Json::Obj({{"Status", original_status}}));
  }
  Event event;
  event.event_type = "StatusChange";
  event.message_id = "AggregationService.1.0.FabricRestored";
  event.message = "circuit closed for fabric " + fabric_id + "; inventory restored";
  event.origin = FabricUri(fabric_id);
  events_.Publish(event);
}

Result<store::RecoveryReport> OfmfService::EnableDurability(
    std::shared_ptr<store::PersistentStore> store) {
  if (!bootstrapped_) return Status::FailedPrecondition("bootstrap the service first");
  if (store_ != nullptr) return Status::FailedPrecondition("durability already enabled");
  if (store == nullptr) return Status::InvalidArgument("store must be non-null");
  store_ = std::move(store);

  OFMF_ASSIGN_OR_RETURN(store::PersistentStore::RecoveredState recovered,
                        store_->Recover(tree_));
  const bool restarted =
      recovered.report.had_snapshot || recovered.report.records_replayed > 0;
  if (restarted) {
    // The tree is now the pre-crash one; rebuild everything derived from it.
    // Tenants first: RestoreSession re-derives each session's tenant from
    // the user bindings the tenant resources carry.
    (void)sessions_.AdoptTenantsFromTree();
    for (const store::DurableSession& session : recovered.sessions) {
      // The tenant field is re-derived inside RestoreSession from the user's
      // tenant binding (tokens persist; tenant membership lives in the tree).
      sessions_.RestoreSession({session.id, session.user, session.token,
                                std::string(kSessions) + "/" + session.id, ""});
    }
    // Durable event state first (sequence counter, retained log, cursors),
    // so adopted subscriptions resume from their recovered cursor instead
    // of the frontier.
    events_.RestoreDurableEventState(recovered.events);
    (void)events_.AdoptSubscriptionsFromTree();
    // Cached responses were built from the pre-recovery (bootstrap) tree and
    // ImportState fires no change events, so invalidate wholesale.
    rest_.response_cache().Clear();
    // Agents re-registering will Create() resources that already exist in
    // the recovered tree; adopt-in-place until ReconcileWithAgents() runs.
    tree_.set_recovery_adopt(true);
  }

  // From here on every mutation is journaled. The callback runs under the
  // tree's exclusive lock: it must not re-enter the tree (recovery_adopt()
  // is a bare atomic read, LogMutation never touches the tree).
  tree_.SetMutationLog([this](const redfish::ResourceTree::Mutation& mutation) {
    if (tree_.recovery_adopt() && mutation.kind != redfish::ChangeKind::kDeleted) {
      std::lock_guard<std::mutex> lock(adopt_mu_);
      adopted_uris_.insert(mutation.uri);
    }
    store_->LogMutation(mutation);
  });

  // Event durability: every published event record and every delivery-
  // cursor advance is journaled. The sinks run under the event-service or
  // delivery-engine lock respectively and only append to the store (lock
  // order service -> engine -> store; LogEvent/LogEventCursor never call
  // back out).
  events_.set_event_journal([this](std::uint64_t sequence, const json::Json& record) {
    store_->LogEvent(sequence, record);
  });
  events_.set_cursor_journal([this](const std::string& uri, std::uint64_t sequence) {
    store_->LogEventCursor(uri, sequence);
  });

  // Baseline: fold the recovered (or freshly bootstrapped) tree and any
  // surviving journal history into one snapshot + fresh generation.
  OFMF_RETURN_IF_ERROR(CompactStore());
  return recovered.report;
}

Result<ReconcileReport> OfmfService::ReconcileWithAgents() {
  if (store_ == nullptr) return Status::FailedPrecondition("durability is not enabled");
  ReconcileReport report;

  // Resources in a re-registered agent's fabric that the agent did not
  // re-publish no longer exist on the hardware: mark them Absent (keep the
  // document — a client holding the URI should see *why* it is dead, and an
  // agent that reports it again later re-adopts it in place). Fabrics whose
  // agent has not come back are left untouched, exactly like a degraded
  // fabric: served stale.
  // The pass only makes sense after an actual recovery: recovery_adopt is
  // what routed agent re-publications into adopted_uris_. On a fresh boot it
  // was never set, adopted_uris_ is empty, and marking would declare the
  // agent's brand-new inventory dead.
  if (tree_.recovery_adopt()) {
    const json::Json absent =
        json::Json::Obj({{"Status", json::Json::Obj({{"State", "Absent"}})}});
    for (const auto& [fabric_id, agent] : agents_by_fabric_) {
      for (const std::string& uri : tree_.UrisUnder(FabricUri(fabric_id))) {
        {
          std::lock_guard<std::mutex> lock(adopt_mu_);
          if (adopted_uris_.count(uri) != 0) continue;
        }
        const Result<json::Json> doc = tree_.GetRaw(uri);
        if (!doc.ok() || !doc->is_object() || !doc->as_object().Contains("Status")) {
          continue;  // collections and the like carry no Status to mark
        }
        if (doc->at("Status").GetString("State") == "Absent") continue;
        if (tree_.Patch(uri, absent).ok()) ++report.resources_marked_absent;
      }
    }
  }

  OFMF_ASSIGN_OR_RETURN(CompositionService::CompositionRecovery recovered,
                        composition_.RecoverConsistency());
  report.systems_adopted = recovered.systems_adopted;
  report.systems_rolled_back = recovered.systems_rolled_back;
  report.claims_released = recovered.claims_released;

  tree_.set_recovery_adopt(false);
  {
    std::lock_guard<std::mutex> lock(adopt_mu_);
    adopted_uris_.clear();
  }
  // The reconciled tree is the new baseline; snapshot it so the next restart
  // replays reconciliation's outcome, not the pre-crash limbo.
  OFMF_RETURN_IF_ERROR(CompactStore());
  return report;
}

Status OfmfService::FlushStore() {
  if (store_ == nullptr) return Status::Ok();
  return store_->Flush();
}

Status OfmfService::CompactStore() {
  if (store_ == nullptr) return Status::FailedPrecondition("durability is not enabled");
  std::vector<store::DurableSession> sessions;
  for (const SessionInfo& session : sessions_.ExportSessions()) {
    sessions.push_back({session.id, session.user, session.token});
  }
  return store_->Compact([this] { return tree_.ExportState(); }, sessions,
                         events_.ExportDurableEventState());
}

std::size_t OfmfService::ProcessPendingWork() {
  std::size_t ran = 0;
  while (!pending_work_.empty()) {
    std::function<void()> work = std::move(pending_work_.front());
    pending_work_.pop_front();
    work();
    ++ran;
  }
  return ran;
}

http::Response OfmfService::Handle(const http::Request& request) {
  // Label every span this request records with the shard's identity, so an
  // assembled cross-process trace attributes each fragment to its node even
  // when several shards share one process (tests, benches).
  trace::ScopedOrigin origin(shard_id_.empty() ? std::string_view("ofmf")
                                               : std::string_view(shard_id_));
  // Adopt the wire trace identity (InProcess callers skip tcp.serve, so this
  // is their entry point too; under TCP the ambient tcp.serve span wins and
  // http.handle nests beneath it). Sampling 0 means tracing is off for this
  // node, so the header scan is skipped — that keeps the idle hot path to
  // one relaxed load.
  trace::TraceContext remote;
  if (trace::TraceRecorder::instance().enabled()) {
    remote.trace_id =
        trace::HexToId(request.headers.GetOr(trace::kTraceIdHeader, ""));
    if (remote.trace_id != 0) {
      remote.span_id =
          trace::HexToId(request.headers.GetOr(trace::kSpanIdHeader, ""));
    }
  }
  trace::Span span("http.handle", remote);
  if (span.active()) {
    span.Note(std::string(http::to_string(request.method)) + " " + request.path);
  }
  http::Response response;
  {
    metrics::ScopedTimer timer(metrics::Registry::instance().enabled()
                                   ? EndpointHistogram(request.method, request.path)
                                   : nullptr);
    // Per-tenant latency: only authenticated traffic carries a tenant, so
    // the token-less hot path (benches, bootstrap probes) pays nothing.
    const std::string& token = request.headers.GetOr("X-Auth-Token", "");
    if (metrics::Registry::instance().enabled() && !token.empty()) {
      const std::uint64_t start_ns = metrics::FastNowNs();
      response = HandleInner(request);
      const std::string tenant = sessions_.TenantOfToken(token);
      metrics::Registry::instance()
          .histogram("http.tenant." + (tenant.empty() ? "default" : tenant) +
                     ".latency.ns")
          .Record(metrics::FastNowNs() - start_ns);
    } else {
      response = HandleInner(request);
    }
  }
  if (span.active()) {
    // Echo the trace id so a client can quote it when reporting a slow call.
    response.headers.Set(trace::kTraceIdHeader, trace::IdToHex(span.context().trace_id));
    if (response.status >= 500) {
      span.Note("HTTP " + std::to_string(response.status));
      span.SetError();  // error trees are always retained for TraceDump
    }
  }
  PeriodicReportRefresh();
  return response;
}

void OfmfService::PeriodicReportRefresh() {
  if (!metrics::Registry::instance().enabled()) return;
  // Per-thread stride: no shared counter on the hot path, and each serving
  // thread refreshes once per kReportRefreshInterval requests it handles.
  thread_local std::uint64_t handled = 0;
  if ((++handled & (kReportRefreshInterval - 1)) != 0) return;
  (void)telemetry_.UpdateResponseCacheReport(rest_.response_cache().stats());
  (void)telemetry_.UpdateResilienceReport(CollectResilience());
  (void)telemetry_.UpdateRequestLatencyReport();
  (void)telemetry_.UpdateEventDeliveryReport(events_.CollectDelivery());
  (void)telemetry_.UpdateTenantQosReport();
}

http::Response OfmfService::HandleInner(const http::Request& request) {
  // Graceful drain: once shutdown has begun, mutations are refused with 503
  // + Retry-After so a retrying client fails over instead of racing the
  // store flush. Reads keep working — monitoring may scrape to the end.
  if (draining_.load(std::memory_order_relaxed) &&
      request.method != http::Method::kGet && request.method != http::Method::kHead) {
    http::Response refused = redfish::ErrorResponse(
        503, "Base.1.0.ServiceShuttingDown", "service is draining for shutdown");
    refused.headers.Set("Retry-After", "5");
    return refused;
  }
  // Auth runs first: the replay cache below must never answer an
  // unauthenticated request with another principal's cached response.
  {
    trace::Span auth_span("auth");
    if (std::optional<http::Response> denied = Authenticate(request)) return *denied;
  }

  // Idempotency dedupe: a retried POST carrying the same X-Request-Id as an
  // earlier *successful* attempt gets that attempt's response replayed
  // instead of re-executing (the first response was lost on the wire, not
  // unproduced). Failures are never cached, so a genuine retry re-executes.
  // The cache key is scoped by the authenticated token so one session can
  // never replay another's responses, and entries remember (path, body hash)
  // so a colliding id with a different request is rejected, not replayed.
  const std::string request_id = request.method == http::Method::kPost
                                     ? request.headers.GetOr("X-Request-Id", "")
                                     : "";
  const std::string replay_key =
      request_id.empty()
          ? std::string()
          : request.headers.GetOr("X-Auth-Token", "") + "\n" + request_id;
  const std::size_t body_hash =
      request_id.empty() ? 0 : std::hash<std::string_view>{}(request.body.view());
  if (!replay_key.empty()) {
    std::lock_guard<std::mutex> lock(replay_mu_);
    auto it = replayed_posts_.find(replay_key);
    if (it != replayed_posts_.end()) {
      if (it->second.path != request.path || it->second.body_hash != body_hash) {
        return redfish::ErrorResponse(
            400, "Base.1.0.ActionParameterValueConflict",
            "X-Request-Id '" + request_id +
                "' was already used for a different request");
      }
      ++replay_hits_;
      return it->second.response;
    }
  }
  http::Response response = Dispatch(request);
  // Durability upkeep rides the write path only: reads stay on the PR 1
  // fast lane (shared-lock tree + response cache) and never touch the store.
  if (store_ != nullptr && request.method != http::Method::kGet &&
      request.method != http::Method::kHead && store_->compaction_due()) {
    (void)CompactStore();
  }
  if (!replay_key.empty() && response.status >= 200 && response.status < 300) {
    std::lock_guard<std::mutex> lock(replay_mu_);
    if (replayed_posts_
            .emplace(replay_key, ReplayEntry{request.path, body_hash, response})
            .second) {
      replay_order_.push_back(replay_key);
      while (replay_order_.size() > kMaxReplayEntries) {
        replayed_posts_.erase(replay_order_.front());
        replay_order_.pop_front();
      }
    }
  }
  return response;
}

http::Response OfmfService::Dispatch(const http::Request& request) {
  // TraceDump convenience: ?trace=<id> folds into the action body (action
  // handlers only see the body). An explicit body wins over the query.
  if (request.method == http::Method::kPost && request.body.view().empty()) {
    const auto trace_param = request.query.find("trace");
    if (trace_param != request.query.end() &&
        strings::EndsWith(http::NormalizePath(request.path),
                          "/Actions/OfmfService.TraceDump")) {
      const http::Request rewritten = http::MakeJsonRequest(
          http::Method::kPost, request.path,
          json::Json::Obj({{"TraceId", trace_param->second}}));
      return rest_.Handle(rewritten);
    }
  }
  // Lazy refresh of the read-path cache counters: reading the ResponseCache
  // MetricReport first syncs it from the live cache (no-op when the counters
  // have not moved since the last sync; other telemetry reads are untouched).
  if ((request.method == http::Method::kGet || request.method == http::Method::kHead) &&
      http::NormalizePath(request.path) == TelemetryService::ResponseCacheReportUri()) {
    (void)telemetry_.UpdateResponseCacheReport(rest_.response_cache().stats());
  }
  // Same lazy pattern for the breaker/retry counters.
  if ((request.method == http::Method::kGet || request.method == http::Method::kHead) &&
      http::NormalizePath(request.path) == TelemetryService::ResilienceReportUri()) {
    (void)telemetry_.UpdateResilienceReport(CollectResilience());
  }
  // And for the event fan-out delivery report.
  if ((request.method == http::Method::kGet || request.method == http::Method::kHead) &&
      http::NormalizePath(request.path) == TelemetryService::EventDeliveryReportUri()) {
    (void)telemetry_.UpdateEventDeliveryReport(events_.CollectDelivery());
  }
  // And for the latency-histogram report. Reading the report does not move
  // any histogram (the MetricReports subtree is excluded from the per-
  // endpoint timers), so back-to-back scrapes with no traffic in between
  // keep the same ETag and the second one is a 304.
  if ((request.method == http::Method::kGet || request.method == http::Method::kHead) &&
      http::NormalizePath(request.path) ==
          TelemetryService::RequestLatencyReportUri()) {
    (void)telemetry_.UpdateRequestLatencyReport();
  }
  // And for the per-tenant fair-scheduling report.
  if ((request.method == http::Method::kGet || request.method == http::Method::kHead) &&
      http::NormalizePath(request.path) == TelemetryService::TenantQosReportUri()) {
    (void)telemetry_.UpdateTenantQosReport();
  }

  // Server-Sent-Events streaming subscription: the reactor's first
  // long-lived, non-request/response connection type. The response carries
  // an open hook instead of a body; the reactor writes the head, then runs
  // the hook on its loop thread, which hands the StreamWriter to the
  // EventService. Events flow as SSE frames through the scatter-gather
  // outbox from then on. Transports without a streamable connection (the
  // in-process client) just see the head. Optional ?EventTypes=a,b filters.
  if (request.method == http::Method::kGet &&
      http::NormalizePath(request.path) == kEventServiceSse) {
    std::vector<std::string> event_types;
    const auto filter = request.query.find("EventTypes");
    if (filter != request.query.end()) {
      for (const std::string& type : strings::Split(filter->second, ',')) {
        if (!type.empty()) event_types.push_back(type);
      }
    }
    http::Response response;
    response.status = 200;
    response.headers.Set("Content-Type", "text/event-stream");
    response.headers.Set("Cache-Control", "no-cache");
    response.set_stream([this, event_types](http::StreamWriter writer) {
      (void)events_.AttachStream(std::move(writer), event_types);
    });
    return response;
  }

  // QoS-gated composition: the requesting tenant's QoS class bounds how
  // congested the composed system's fabric paths may be
  // (CompositionService::UtilizationLimitFor). An unsatisfiable Compose is
  // never silently placed: async-preferring clients get it queued as a Task
  // that re-evaluates the gate when it runs (congestion may have drained by
  // then); synchronous clients get an explicit 503 + Retry-After.
  if (request.method == http::Method::kPost &&
      http::NormalizePath(request.path) == kSystems) {
    Result<json::Json> body = request.JsonBody();
    const json::Json* blocks =
        body.ok() ? json::ResolvePointerRef(*body, "/Links/ResourceBlocks") : nullptr;
    std::vector<std::string> block_uris;
    if (blocks != nullptr && blocks->is_array()) {
      for (const json::Json& entry : blocks->as_array()) {
        const std::string uri = odata::IdOf(entry);
        if (!uri.empty()) block_uris.push_back(uri);
      }
    }
    std::string qos_class = "BestEffort";
    const std::string tenant =
        sessions_.TenantOfToken(request.headers.GetOr("X-Auth-Token", ""));
    if (!tenant.empty()) {
      Result<TenantInfo> info = sessions_.GetTenant(tenant);
      if (info.ok()) qos_class = info->qos_class;
    }
    // Unknown blocks fall through: the composition factory reports NotFound
    // with its usual shape.
    Result<CompositionService::QosPlacementCheck> check =
        block_uris.empty() ? CompositionService::QosPlacementCheck{}
                           : composition_.EvaluateQosPlacement(block_uris, qos_class);
    if (check.ok() && !check->satisfied) {
      const bool wants_async =
          request.headers.GetOr("Prefer", "").find("respond-async") != std::string::npos;
      if (!wants_async) {
        http::Response refused = redfish::ErrorResponse(
            503, "Base.1.0.InsufficientResources",
            "composition deferred: " + check->reason);
        refused.headers.Set("Retry-After", "5");
        return refused;
      }
      Result<std::string> task_uri = tasks_.CreateTask(
          "compose " + body->GetString("Name", "system") + " (awaiting QoS headroom)");
      if (!task_uri.ok()) return redfish::ErrorResponse(task_uri.status());
      (void)tasks_.SetState(*task_uri, TaskState::kRunning);
      const json::Json captured_body = *body;
      const std::string captured_task = *task_uri;
      const std::vector<std::string> captured_blocks = block_uris;
      const std::string captured_class = qos_class;
      pending_work_.push_back([this, captured_body, captured_task, captured_blocks,
                               captured_class] {
        Result<CompositionService::QosPlacementCheck> recheck =
            composition_.EvaluateQosPlacement(captured_blocks, captured_class);
        if (!recheck.ok() || !recheck->satisfied) {
          (void)tasks_.SetState(
              captured_task, TaskState::kException,
              recheck.ok() ? "QoS still unsatisfiable: " + recheck->reason
                           : recheck.status().message());
          return;
        }
        http::Request inner =
            http::MakeJsonRequest(http::Method::kPost, kSystems, captured_body);
        const http::Response response = rest_.Handle(inner);
        if (response.status == 201) {
          (void)tasks_.SetState(captured_task, TaskState::kCompleted,
                                "composed " + response.headers.GetOr("Location", ""));
        } else {
          (void)tasks_.SetState(captured_task, TaskState::kException,
                                "composition failed with HTTP " +
                                    std::to_string(response.status));
        }
      });
      http::Response accepted = http::MakeJsonResponse(202, *tree_.Get(*task_uri));
      accepted.headers.Set("Location", *task_uri);
      return accepted;
    }
  }

  // Asynchronous composition: Redfish's "Prefer: respond-async". The POST
  // is validated lazily by the deferred composition; the client gets a Task
  // monitor immediately (202) and polls it.
  if (request.method == http::Method::kPost &&
      http::NormalizePath(request.path) == kSystems &&
      request.headers.GetOr("Prefer", "").find("respond-async") != std::string::npos) {
    Result<json::Json> body = request.JsonBody();
    if (!body.ok()) return redfish::ErrorResponse(body.status());
    Result<std::string> task_uri =
        tasks_.CreateTask("compose " + body->GetString("Name", "system"));
    if (!task_uri.ok()) return redfish::ErrorResponse(task_uri.status());
    (void)tasks_.SetState(*task_uri, TaskState::kRunning);
    const json::Json captured_body = *body;
    const std::string captured_task = *task_uri;
    pending_work_.push_back([this, captured_body, captured_task] {
      http::Request inner = http::MakeJsonRequest(http::Method::kPost, kSystems,
                                                  captured_body);
      const http::Response response = rest_.Handle(inner);
      if (response.status == 201) {
        const std::string system_uri = response.headers.GetOr("Location", "");
        (void)tree_.Patch(
            captured_task,
            json::Json::Obj({{"Oem", json::Json::Obj({{"Ofmf",
                                                       json::Json::Obj(
                                                           {{"SystemUri",
                                                             system_uri}})}})}}));
        (void)tasks_.SetState(captured_task, TaskState::kCompleted,
                              "composed " + system_uri);
      } else {
        (void)tasks_.SetState(captured_task, TaskState::kException,
                              "composition failed with HTTP " +
                                  std::to_string(response.status));
      }
    });
    http::Response accepted = http::MakeJsonResponse(202, *tree_.Get(*task_uri));
    accepted.headers.Set("Location", *task_uri);
    return accepted;
  }

  // Session creation: must run before generic dispatch so the response can
  // carry the X-Auth-Token header.
  if (request.method == http::Method::kPost &&
      http::NormalizePath(request.path) == kSessions) {
    Result<json::Json> body = request.JsonBody();
    if (!body.ok()) return redfish::ErrorResponse(body.status());
    Result<SessionInfo> session =
        sessions_.CreateSession(body->GetString("UserName"), body->GetString("Password"));
    if (!session.ok()) return redfish::ErrorResponse(session.status());
    if (store_ != nullptr) {
      // The Session resource is journaled via the tree; the token is a
      // secret the tree never carries, so it gets its own journal record.
      store_->LogSession({session->id, session->user, session->token});
    }
    http::Response response = http::MakeJsonResponse(201, *tree_.Get(session->uri));
    response.headers.Set("Location", session->uri);
    response.headers.Set("X-Auth-Token", session->token);
    return response;
  }
  return rest_.Handle(request);
}

}  // namespace ofmf::core
