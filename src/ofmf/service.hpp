// The OpenFabrics Management Framework service: one Redfish tree over every
// fabric and resource, served through the generic Redfish dispatcher, with
// SessionService (auth), EventService (subscriptions), TaskService,
// TelemetryService, AggregationService (agents) and CompositionService
// wired in. Clients talk to Handler() over the in-process or TCP transport;
// agents register and publish inventory under /redfish/v1/Fabrics.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/clock.hpp"
#include "http/server.hpp"
#include "ofmf/agent.hpp"
#include "ofmf/composition.hpp"
#include "ofmf/events.hpp"
#include "ofmf/sessions.hpp"
#include "ofmf/tasks.hpp"
#include "ofmf/telemetry.hpp"
#include "redfish/service.hpp"
#include "redfish/tree.hpp"

namespace ofmf::core {

class OfmfService {
 public:
  OfmfService();

  /// Builds the service root, collections, and all sub-services. Must be
  /// called once before handling requests.
  Status Bootstrap();

  /// Registers an agent: records it under the AggregationService, lets it
  /// publish its fabric subtree, and routes fabric-scoped mutations to it.
  Status RegisterAgent(std::shared_ptr<FabricAgent> agent);

  /// Creates the fabric resource + empty sub-collections an agent publishes
  /// into (helper for agents).
  Status CreateFabricSkeleton(const std::string& fabric_id, const std::string& fabric_type,
                              const std::string& agent_id);

  /// Full protocol entry point (auth middleware + session/compose special
  /// cases + generic Redfish dispatch). POST /redfish/v1/Systems with a
  /// "Prefer: respond-async" header is accepted as a Task (202 + monitor
  /// URI); the composition runs at the next ProcessPendingWork().
  http::Response Handle(const http::Request& request);

  /// Executes deferred (task-backed) operations; returns how many ran.
  std::size_t ProcessPendingWork();
  std::size_t pending_work() const { return pending_work_.size(); }
  http::ServerHandler Handler() {
    return [this](const http::Request& request) { return Handle(request); };
  }

  redfish::ResourceTree& tree() { return tree_; }
  redfish::RedfishService& rest() { return rest_; }
  SessionService& sessions() { return sessions_; }
  EventService& events() { return events_; }
  TaskService& tasks() { return tasks_; }
  TelemetryService& telemetry() { return telemetry_; }
  CompositionService& composition() { return composition_; }
  SimClock& clock() { return clock_; }

  Result<FabricAgent*> AgentForFabric(const std::string& fabric_id);

 private:
  Status BootstrapServiceRoot();
  void WireRoutes();

  SimClock clock_;
  redfish::ResourceTree tree_;
  redfish::RedfishService rest_;
  SessionService sessions_;
  EventService events_;
  TaskService tasks_;
  TelemetryService telemetry_;
  CompositionService composition_;
  std::map<std::string, std::shared_ptr<FabricAgent>> agents_by_fabric_;
  std::deque<std::function<void()>> pending_work_;
  bool bootstrapped_ = false;
};

}  // namespace ofmf::core
