// The OpenFabrics Management Framework service: one Redfish tree over every
// fabric and resource, served through the generic Redfish dispatcher, with
// SessionService (auth), EventService (subscriptions), TaskService,
// TelemetryService, AggregationService (agents) and CompositionService
// wired in. Clients talk to Handler() over the in-process or TCP transport;
// agents register and publish inventory under /redfish/v1/Fabrics.
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.hpp"
#include "common/faults.hpp"
#include "http/server.hpp"
#include "ofmf/agent.hpp"
#include "ofmf/breaker.hpp"
#include "ofmf/composition.hpp"
#include "ofmf/events.hpp"
#include "ofmf/sessions.hpp"
#include "ofmf/tasks.hpp"
#include "ofmf/telemetry.hpp"
#include "redfish/service.hpp"
#include "redfish/tree.hpp"
#include "store/store.hpp"

namespace ofmf::core {

/// Outcome of the post-recovery reconciliation pass (ReconcileWithAgents).
struct ReconcileReport {
  std::size_t resources_marked_absent = 0;  // recovered but no agent reports them
  std::size_t systems_adopted = 0;
  std::size_t systems_rolled_back = 0;
  std::size_t claims_released = 0;
};

class OfmfService {
 public:
  OfmfService();

  /// Builds the service root, collections, and all sub-services. Must be
  /// called once before handling requests.
  Status Bootstrap();

  /// Registers an agent: records it under the AggregationService, lets it
  /// publish its fabric subtree, and routes fabric-scoped mutations to it.
  Status RegisterAgent(std::shared_ptr<FabricAgent> agent);

  /// Creates the fabric resource + empty sub-collections an agent publishes
  /// into (helper for agents).
  Status CreateFabricSkeleton(const std::string& fabric_id, const std::string& fabric_type,
                              const std::string& agent_id);

  /// Full protocol entry point (auth middleware + session/compose special
  /// cases + generic Redfish dispatch). POST /redfish/v1/Systems with a
  /// "Prefer: respond-async" header is accepted as a Task (202 + monitor
  /// URI); the composition runs at the next ProcessPendingWork().
  http::Response Handle(const http::Request& request);

  /// Graceful shutdown, phase one: refuse new mutations with 503 +
  /// Retry-After (reads still served) while in-flight work finishes. Called
  /// before TcpServer::Stop() + FlushStore() so a retrying client observes a
  /// clean failover window instead of racing the store flush.
  void BeginDrain() { draining_.store(true, std::memory_order_relaxed); }
  void EndDrain() { draining_.store(false, std::memory_order_relaxed); }
  bool draining() const { return draining_.load(std::memory_order_relaxed); }

  /// Marks this instance as one shard of a federated deployment: system ids
  /// become "composed-<shard_id>-<n>" (so shards never mint colliding
  /// /redfish/v1/Systems URIs) and the ServiceRoot is stamped with
  /// Oem.Ofmf.ShardId. Call after Bootstrap(), before serving traffic.
  void set_shard_identity(const std::string& shard_id);
  const std::string& shard_id() const { return shard_id_; }

  /// Executes deferred (task-backed) operations; returns how many ran.
  std::size_t ProcessPendingWork();
  std::size_t pending_work() const { return pending_work_.size(); }
  http::ServerHandler Handler() {
    return [this](const http::Request& request) { return Handle(request); };
  }

  /// Per-thread request stride between piggybacked MetricReport refreshes
  /// (power of two; see PeriodicReportRefresh).
  static constexpr std::uint64_t kReportRefreshInterval = 1024;

  redfish::ResourceTree& tree() { return tree_; }
  redfish::RedfishService& rest() { return rest_; }
  SessionService& sessions() { return sessions_; }
  EventService& events() { return events_; }
  TaskService& tasks() { return tasks_; }
  TelemetryService& telemetry() { return telemetry_; }
  CompositionService& composition() { return composition_; }
  SimClock& clock() { return clock_; }

  Result<FabricAgent*> AgentForFabric(const std::string& fabric_id);

  // ------------------------------------------------------------ durability --
  // Startup ordering: Bootstrap() -> EnableDurability() -> RegisterAgent()
  // for every surviving agent -> ReconcileWithAgents() -> serve traffic.

  /// Attaches a persistent store. When the store directory holds data from a
  /// previous run, the tree is rebuilt from snapshot + journal *replacing*
  /// the bootstrapped tree, sessions and event subscriptions are re-adopted,
  /// and the tree enters recovery-adopt mode so agents can re-publish their
  /// live inventory over the recovered resources. Afterwards every tree
  /// mutation is journaled and a baseline snapshot is compacted. Returns the
  /// recovery report (empty-dir case: had_snapshot=false, 0 records).
  Result<store::RecoveryReport> EnableDurability(
      std::shared_ptr<store::PersistentStore> store);

  /// Post-recovery pass, run after every surviving agent re-registered:
  /// fabric resources no agent re-published are marked Status.State=Absent
  /// (the hardware stopped reporting them; clients see that, not a silent
  /// hole), composed systems whose block claims all hold are adopted,
  /// half-composed systems are rolled back and leaked block claims released
  /// (CompositionService::RecoverConsistency), recovery-adopt mode ends, and
  /// the reconciled tree is compacted as the new durability baseline.
  Result<ReconcileReport> ReconcileWithAgents();

  /// Commits buffered journal records now (group commit or shutdown flush).
  Status FlushStore();

  /// Snapshots the current tree + sessions and rotates the journal.
  Status CompactStore();

  bool durable() const { return store_ != nullptr; }
  const std::shared_ptr<store::PersistentStore>& store() const { return store_; }

  /// Attaches a fault injector. Agent calls then probe point
  /// "agent.<fabric_id>" before reaching the agent (nullptr detaches).
  void set_fault_injector(std::shared_ptr<FaultInjector> faults) {
    faults_ = std::move(faults);
  }
  const std::shared_ptr<FaultInjector>& fault_injector() const { return faults_; }

  /// The circuit breaker guarding an agent's fabric (created on
  /// RegisterAgent). NotFound when no agent owns the fabric.
  Result<CircuitBreaker*> BreakerForFabric(const std::string& fabric_id);

  /// True while the fabric's subtree is marked Critical/UnavailableOffline.
  bool FabricDegraded(const std::string& fabric_id) const;

  /// Current breaker + replay counters (feeds the Resilience MetricReport).
  ResilienceSnapshot CollectResilience() const;

  /// Coarse self-reported health (breaker states, replay counter, cache hit
  /// rate) in JSON form. Shards attach this to their directory heartbeats so
  /// the router's FleetHealth report can show per-shard state — including
  /// the last known state of a shard that has since gone dark.
  json::Json HealthStats();

 private:
  Status BootstrapServiceRoot();
  void WireRoutes();
  /// Handle() minus the instrumentation wrapper (span, latency histogram,
  /// periodic telemetry refresh): auth, replay cache, dispatch, upkeep.
  http::Response HandleInner(const http::Request& request);
  http::Response Dispatch(const http::Request& request);

  /// Every kReportRefreshInterval-th request a thread handles piggybacks a
  /// refresh of the internal MetricReports (ResponseCache, Resilience,
  /// RequestLatency), so the reports stay current without a background
  /// thread. The stride is per thread (a thread-local counter keeps the hot
  /// path free of shared-cache-line traffic), the registry-disabled
  /// configuration skips it entirely, and scrape GETs refresh lazily anyway
  /// — the periodic pass only serves passive ETag pollers. The quiet-update
  /// fingerprints make a refresh free when nothing moved.
  void PeriodicReportRefresh();

  /// Authentication gate, run by Handle() before anything else (including
  /// the replay-cache lookup, so a cached response can never leak past a
  /// missing 401). Returns the error response when the request is denied.
  std::optional<http::Response> Authenticate(const http::Request& request);

  /// Runs one agent call under its breaker and fault point; records the
  /// outcome and degrades/restores the fabric on breaker transitions.
  Result<std::string> GuardedAgentCreate(const std::string& fabric_id,
                                         const std::function<Result<std::string>()>& call);
  Status GuardedAgentDelete(const std::string& fabric_id,
                            const std::function<Status()>& call);
  Status InjectedAgentFault(const std::string& fabric_id);
  void NoteAgentOutcome(const std::string& fabric_id, const Status& status);

  /// Marks every resource in the fabric subtree Critical/UnavailableOffline
  /// (served stale instead of deleted) and remembers exactly which URIs it
  /// touched so Restore un-degrades only those.
  void DegradeFabric(const std::string& fabric_id);
  void RestoreFabric(const std::string& fabric_id);

  SimClock clock_;
  redfish::ResourceTree tree_;
  redfish::RedfishService rest_;
  SessionService sessions_;
  EventService events_;
  TaskService tasks_;
  TelemetryService telemetry_;
  CompositionService composition_;
  std::map<std::string, std::shared_ptr<FabricAgent>> agents_by_fabric_;
  std::deque<std::function<void()>> pending_work_;
  bool bootstrapped_ = false;
  std::string shard_id_;
  std::atomic<bool> draining_{false};

  std::shared_ptr<FaultInjector> faults_;
  std::shared_ptr<store::PersistentStore> store_;
  // URIs an agent re-published while the tree was in recovery-adopt mode;
  // ReconcileWithAgents marks everything else in that agent's fabric Absent.
  mutable std::mutex adopt_mu_;
  std::set<std::string> adopted_uris_;
  // Breakers are created by RegisterAgent and never erased, so the
  // CircuitBreaker pointers handed out stay valid; the mutex guards the map
  // itself against an agent registering while readers iterate or look up.
  mutable std::mutex breakers_mu_;
  std::map<std::string, std::unique_ptr<CircuitBreaker>> breakers_by_fabric_;
  mutable std::mutex degraded_mu_;
  // fabric -> (uri, pre-degradation Status) so Restore puts back what was
  // actually there, not a blanket Enabled/OK.
  std::map<std::string, std::vector<std::pair<std::string, json::Json>>> degraded_uris_;

  // Idempotent-POST replay cache: (auth principal, X-Request-Id) ->
  // successful response. Bounded FIFO; only 2xx responses are recorded so a
  // failed attempt never blocks its own retry from re-executing. Entries
  // remember the request's path and body hash: a same-key lookup with a
  // different request is rejected rather than replayed.
  struct ReplayEntry {
    std::string path;
    std::size_t body_hash = 0;
    http::Response response;
  };
  static constexpr std::size_t kMaxReplayEntries = 512;
  mutable std::mutex replay_mu_;
  std::map<std::string, ReplayEntry> replayed_posts_;
  std::deque<std::string> replay_order_;
  std::uint64_t replay_hits_ = 0;
};

}  // namespace ofmf::core
