#include "ofmf/sessions.hpp"

#include <cstdio>
#include <cstdlib>

#include "ofmf/uris.hpp"

namespace ofmf::core {
namespace {

std::string HexToken(Rng& rng) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%016llx%016llx",
                static_cast<unsigned long long>(rng.NextU64()),
                static_cast<unsigned long long>(rng.NextU64()));
  return buffer;
}

}  // namespace

SessionService::SessionService(redfish::ResourceTree& tree) : tree_(tree) {
  users_["admin"] = "ofmf";
}

Status SessionService::Bootstrap() {
  OFMF_RETURN_IF_ERROR(tree_.Create(
      kSessionService, "#SessionService.v1_1_8.SessionService",
      json::Json::Obj({{"Id", "SessionService"},
                       {"Name", "Session Service"},
                       {"ServiceEnabled", true},
                       {"SessionTimeout", 1800},
                       {"Sessions", json::Json::Obj({{"@odata.id", kSessions}})}})));
  return tree_.CreateCollection(kSessions, "#SessionCollection.SessionCollection",
                                "Sessions");
}

void SessionService::AddUser(const std::string& user, const std::string& password) {
  std::lock_guard<std::mutex> lock(mu_);
  users_[user] = password;
}

Result<SessionInfo> SessionService::CreateSession(const std::string& user,
                                                  const std::string& password) {
  std::lock_guard<std::mutex> lock(mu_);
  if (user.empty()) return Status::InvalidArgument("UserName must be non-empty");
  auto it = users_.find(user);
  if (it == users_.end() || it->second != password) {
    return Status::PermissionDenied("invalid credentials for user " + user);
  }
  SessionInfo session;
  session.id = std::to_string(next_id_++);
  session.user = user;
  session.token = HexToken(rng_);
  session.uri = std::string(kSessions) + "/" + session.id;

  OFMF_RETURN_IF_ERROR(tree_.Create(
      session.uri, "#Session.v1_5_0.Session",
      json::Json::Obj({{"Id", session.id}, {"Name", "Session " + session.id},
                       {"UserName", user}})));
  OFMF_RETURN_IF_ERROR(tree_.AddMember(kSessions, session.uri));
  sessions_by_token_[session.token] = session;
  return session;
}

Status SessionService::DeleteSession(const std::string& session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string uri = std::string(kSessions) + "/" + session_id;
  OFMF_RETURN_IF_ERROR(tree_.Delete(uri));
  OFMF_RETURN_IF_ERROR(tree_.RemoveMember(kSessions, uri));
  std::erase_if(sessions_by_token_,
                [&](const auto& entry) { return entry.second.id == session_id; });
  return Status::Ok();
}

std::vector<SessionInfo> SessionService::ExportSessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SessionInfo> sessions;
  sessions.reserve(sessions_by_token_.size());
  for (const auto& [token, session] : sessions_by_token_) sessions.push_back(session);
  return sessions;
}

void SessionService::RestoreSession(const SessionInfo& session) {
  std::lock_guard<std::mutex> lock(mu_);
  if (session.id.empty() || session.token.empty()) return;
  char* end = nullptr;
  const unsigned long long numeric = std::strtoull(session.id.c_str(), &end, 10);
  if (end != nullptr && *end == '\0' && numeric >= next_id_) next_id_ = numeric + 1;
  const std::string uri = std::string(kSessions) + "/" + session.id;
  if (!tree_.Exists(uri)) return;
  SessionInfo adopted = session;
  adopted.uri = uri;
  sessions_by_token_[adopted.token] = std::move(adopted);
}

std::optional<SessionInfo> SessionService::Authenticate(const std::string& token) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_by_token_.find(token);
  if (it == sessions_by_token_.end()) return std::nullopt;
  return it->second;
}

}  // namespace ofmf::core
