#include "ofmf/sessions.hpp"

#include <cstdio>
#include <cstdlib>

#include "json/pointer.hpp"
#include "ofmf/uris.hpp"

namespace ofmf::core {
namespace {

std::string HexToken(Rng& rng) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%016llx%016llx",
                static_cast<unsigned long long>(rng.NextU64()),
                static_cast<unsigned long long>(rng.NextU64()));
  return buffer;
}

std::string TenantUri(const std::string& tenant_id) {
  return std::string(kTenants) + "/" + tenant_id;
}

}  // namespace

bool ConstantTimeEquals(const std::string& expected, const std::string& provided) {
  // The loop walks every byte of `expected` regardless of where (or
  // whether) a mismatch occurs; `provided` bytes past its end read as a
  // sentinel that keeps the accumulator non-zero. Work is a function of the
  // stored token's (fixed) length only.
  unsigned char diff = expected.size() == provided.size() ? 0 : 1;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const unsigned char theirs =
        i < provided.size() ? static_cast<unsigned char>(provided[i]) : 0xFF;
    diff = static_cast<unsigned char>(
        diff | (static_cast<unsigned char>(expected[i]) ^ theirs));
  }
  return diff == 0;
}

json::Json TenantInfo::ToPayload() const {
  json::Array user_refs;
  for (const std::string& user : users) user_refs.push_back(json::Json(user));
  return json::Json::Obj(
      {{"Id", id},
       {"Name", id + " tenant"},
       {"Oem",
        json::Json::Obj(
            {{"Ofmf",
              json::Json::Obj({{"QoSClass", qos_class},
                               {"Weight", static_cast<std::int64_t>(weight)},
                               {"RateLimitRps", rate_rps},
                               {"BurstSize", burst},
                               {"Users", json::Json(std::move(user_refs))}})}})}});
}

std::string SessionService::TokenDigest(const std::string& token) {
  // FNV-1a over the token, twice with different offset bases for 128 bits
  // of key space. Collisions among 128-bit random tokens are negligible,
  // and CreateSession re-mints on the off chance anyway.
  auto fnv = [&token](std::uint64_t hash) {
    for (const char c : token) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 0x100000001B3ULL;
    }
    return hash;
  };
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%016llx%016llx",
                static_cast<unsigned long long>(fnv(0xCBF29CE484222325ULL)),
                static_cast<unsigned long long>(fnv(0x9747B28C0DFE0221ULL)));
  return buffer;
}

SessionService::SessionService(redfish::ResourceTree& tree) : tree_(tree) {
  users_["admin"] = "ofmf";
}

Status SessionService::Bootstrap() {
  OFMF_RETURN_IF_ERROR(tree_.Create(
      kSessionService, "#SessionService.v1_1_8.SessionService",
      json::Json::Obj({{"Id", "SessionService"},
                       {"Name", "Session Service"},
                       {"ServiceEnabled", true},
                       {"SessionTimeout", 1800},
                       {"Sessions", json::Json::Obj({{"@odata.id", kSessions}})},
                       {"Oem", json::Json::Obj(
                                   {{"Ofmf", json::Json::Obj(
                                                 {{"Tenants", json::Json::Obj(
                                                       {{"@odata.id", kTenants}})}})}})}})));
  OFMF_RETURN_IF_ERROR(tree_.CreateCollection(
      kSessions, "#SessionCollection.SessionCollection", "Sessions"));
  return tree_.CreateCollection(kTenants, "#OfmfTenantCollection.OfmfTenantCollection",
                                "Tenants");
}

void SessionService::AddUser(const std::string& user, const std::string& password) {
  std::lock_guard<std::mutex> lock(mu_);
  users_[user] = password;
}

Result<SessionInfo> SessionService::CreateSession(const std::string& user,
                                                  const std::string& password) {
  std::lock_guard<std::mutex> lock(mu_);
  if (user.empty()) return Status::InvalidArgument("UserName must be non-empty");
  auto it = users_.find(user);
  if (it == users_.end() || !ConstantTimeEquals(it->second, password)) {
    return Status::PermissionDenied("invalid credentials for user " + user);
  }
  SessionInfo session;
  session.id = std::to_string(next_id_++);
  session.user = user;
  session.token = HexToken(rng_);
  // Digest collision with a live session: re-mint rather than overwrite.
  while (sessions_by_digest_.count(TokenDigest(session.token)) != 0) {
    session.token = HexToken(rng_);
  }
  session.uri = std::string(kSessions) + "/" + session.id;
  const auto tenant = tenant_of_user_.find(user);
  if (tenant != tenant_of_user_.end()) session.tenant = tenant->second;

  OFMF_RETURN_IF_ERROR(tree_.Create(
      session.uri, "#Session.v1_5_0.Session",
      json::Json::Obj({{"Id", session.id}, {"Name", "Session " + session.id},
                       {"UserName", user}})));
  OFMF_RETURN_IF_ERROR(tree_.AddMember(kSessions, session.uri));
  sessions_by_digest_[TokenDigest(session.token)] = session;
  return session;
}

Status SessionService::DeleteSession(const std::string& session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string uri = std::string(kSessions) + "/" + session_id;
  OFMF_RETURN_IF_ERROR(tree_.Delete(uri));
  OFMF_RETURN_IF_ERROR(tree_.RemoveMember(kSessions, uri));
  std::erase_if(sessions_by_digest_,
                [&](const auto& entry) { return entry.second.id == session_id; });
  return Status::Ok();
}

std::vector<SessionInfo> SessionService::ExportSessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SessionInfo> sessions;
  sessions.reserve(sessions_by_digest_.size());
  for (const auto& [digest, session] : sessions_by_digest_) sessions.push_back(session);
  return sessions;
}

void SessionService::RestoreSession(const SessionInfo& session) {
  std::lock_guard<std::mutex> lock(mu_);
  if (session.id.empty() || session.token.empty()) return;
  char* end = nullptr;
  const unsigned long long numeric = std::strtoull(session.id.c_str(), &end, 10);
  if (end != nullptr && *end == '\0' && numeric >= next_id_) next_id_ = numeric + 1;
  const std::string uri = std::string(kSessions) + "/" + session.id;
  if (!tree_.Exists(uri)) return;
  SessionInfo adopted = session;
  adopted.uri = uri;
  // Re-derive the tenant binding: the journal's session record carries no
  // tenant, but the tenant resources (journaled via the tree) do. Requires
  // AdoptTenantsFromTree() to have run first.
  const auto tenant = tenant_of_user_.find(adopted.user);
  if (tenant != tenant_of_user_.end()) adopted.tenant = tenant->second;
  sessions_by_digest_[TokenDigest(adopted.token)] = std::move(adopted);
}

std::optional<SessionInfo> SessionService::Authenticate(const std::string& token) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_by_digest_.find(TokenDigest(token));
  if (it == sessions_by_digest_.end()) return std::nullopt;
  // The digest narrowed the candidate set; the authenticating comparison
  // itself must not leak the mismatch position through timing.
  if (!ConstantTimeEquals(it->second.token, token)) return std::nullopt;
  return it->second;
}

std::string SessionService::TenantOfToken(const std::string& token) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_by_digest_.find(TokenDigest(token));
  if (it == sessions_by_digest_.end()) return "";
  if (!ConstantTimeEquals(it->second.token, token)) return "";
  return it->second.tenant;
}

// ------------------------------------------------------------------ tenants

Result<TenantInfo> SessionService::CreateTenantLocked(const TenantInfo& tenant) {
  if (tenant.id.empty()) return Status::InvalidArgument("tenant Id must be non-empty");
  if (tenants_.count(tenant.id) != 0) {
    return Status::FailedPrecondition("tenant " + tenant.id + " already exists");
  }
  TenantInfo created = tenant;
  created.uri = TenantUri(created.id);
  OFMF_RETURN_IF_ERROR(
      tree_.Create(created.uri, "#OfmfTenant.v1_0_0.OfmfTenant", created.ToPayload()));
  OFMF_RETURN_IF_ERROR(tree_.AddMember(kTenants, created.uri));
  for (const std::string& user : created.users) tenant_of_user_[user] = created.id;
  tenants_[created.id] = created;
  return created;
}

Result<TenantInfo> SessionService::CreateTenant(const TenantInfo& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  return CreateTenantLocked(tenant);
}

Result<std::string> SessionService::CreateTenantFromPayload(const json::Json& body) {
  TenantInfo tenant;
  tenant.id = body.GetString("Id");
  const json::Json* oem = json::ResolvePointerRef(body, "/Oem/Ofmf");
  if (oem != nullptr) {
    tenant.qos_class = oem->GetString("QoSClass", tenant.qos_class);
    tenant.weight = static_cast<std::uint32_t>(
        oem->GetInt("Weight", static_cast<std::int64_t>(tenant.weight)));
    tenant.rate_rps = oem->GetDouble("RateLimitRps", tenant.rate_rps);
    tenant.burst = oem->GetDouble("BurstSize", tenant.burst);
    const json::Json* users = json::ResolvePointerRef(*oem, "/Users");
    if (users != nullptr && users->is_array()) {
      for (const json::Json& user : users->as_array()) {
        if (user.is_string()) tenant.users.push_back(user.as_string());
      }
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  OFMF_ASSIGN_OR_RETURN(TenantInfo created, CreateTenantLocked(tenant));
  return created.uri;
}

Status SessionService::DeleteTenant(const std::string& tenant_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant_id);
  if (it == tenants_.end()) return Status::NotFound("no tenant " + tenant_id);
  const std::string uri = TenantUri(tenant_id);
  OFMF_RETURN_IF_ERROR(tree_.Delete(uri));
  OFMF_RETURN_IF_ERROR(tree_.RemoveMember(kTenants, uri));
  std::erase_if(tenant_of_user_,
                [&](const auto& entry) { return entry.second == tenant_id; });
  // Live sessions of the deleted tenant fall back to the default class.
  for (auto& [digest, session] : sessions_by_digest_) {
    if (session.tenant == tenant_id) session.tenant.clear();
  }
  tenants_.erase(it);
  return Status::Ok();
}

Result<TenantInfo> SessionService::GetTenant(const std::string& tenant_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant_id);
  if (it == tenants_.end()) return Status::NotFound("no tenant " + tenant_id);
  return it->second;
}

std::vector<TenantInfo> SessionService::Tenants() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TenantInfo> tenants;
  tenants.reserve(tenants_.size());
  for (const auto& [id, tenant] : tenants_) tenants.push_back(tenant);
  return tenants;
}

std::string SessionService::TenantOfUser(const std::string& user) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenant_of_user_.find(user);
  return it == tenant_of_user_.end() ? "" : it->second;
}

std::size_t SessionService::AdoptTenantsFromTree() {
  const Result<std::vector<std::string>> members = tree_.Members(kTenants);
  std::lock_guard<std::mutex> lock(mu_);
  tenants_.clear();
  tenant_of_user_.clear();
  if (!members.ok()) return 0;
  for (const std::string& uri : *members) {
    const Result<json::Json> payload = tree_.GetRaw(uri);
    if (!payload.ok()) continue;
    TenantInfo tenant;
    tenant.id = payload->GetString("Id");
    if (tenant.id.empty()) continue;
    tenant.uri = uri;
    const json::Json* oem = json::ResolvePointerRef(*payload, "/Oem/Ofmf");
    if (oem != nullptr) {
      tenant.qos_class = oem->GetString("QoSClass", tenant.qos_class);
      tenant.weight = static_cast<std::uint32_t>(oem->GetInt("Weight", 1));
      tenant.rate_rps = oem->GetDouble("RateLimitRps", 0.0);
      tenant.burst = oem->GetDouble("BurstSize", 0.0);
      const json::Json* users = json::ResolvePointerRef(*oem, "/Users");
      if (users != nullptr && users->is_array()) {
        for (const json::Json& user : users->as_array()) {
          if (user.is_string()) tenant.users.push_back(user.as_string());
        }
      }
    }
    for (const std::string& user : tenant.users) tenant_of_user_[user] = tenant.id;
    tenants_[tenant.id] = std::move(tenant);
  }
  return tenants_.size();
}

}  // namespace ofmf::core
