// Redfish SessionService: POST to Sessions with UserName/Password yields an
// X-Auth-Token; when authentication is enabled, every other request must
// present a live token. Tenancy lives here too: tenants (QoS class, DRR
// weight, token-bucket rate) are resources under
// /redfish/v1/SessionService/Tenants, users bind to tenants, and every
// session carries its user's tenant — which is what the reactor's
// weighted-fair scheduler keys on.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/rng.hpp"
#include "json/value.hpp"
#include "redfish/tree.hpp"

namespace ofmf::core {

struct SessionInfo {
  std::string id;
  std::string user;
  std::string token;
  std::string uri;
  std::string tenant;  // tenant id; "" = default (unbound user)
};

/// A tenant/account: QoS class plus the scheduling parameters the reactor
/// derives from it. Persisted as a tree resource (so the journal/snapshot
/// machinery carries it across crashes); tokens never appear in it.
struct TenantInfo {
  std::string id;
  std::string qos_class = "BestEffort";  // "Guaranteed" | "Burstable" | "BestEffort"
  std::uint32_t weight = 1;              // DRR share; 0 = background
  double rate_rps = 0.0;                 // token-bucket rate; 0 = unlimited
  double burst = 0.0;                    // bucket capacity; <=0 = max(1, rate)
  std::vector<std::string> users;        // users bound to this tenant
  std::string uri;

  json::Json ToPayload() const;
};

/// Timing-safe string equality: examines every byte of `expected` and never
/// branches on where a mismatch sits, so an attacker probing the auth path
/// cannot binary-search a token byte by byte. Length mismatch is still
/// detected (folded into the same accumulator).
bool ConstantTimeEquals(const std::string& expected, const std::string& provided);

class SessionService {
 public:
  explicit SessionService(redfish::ResourceTree& tree);

  /// Installs /redfish/v1/SessionService, the Sessions collection, and the
  /// Tenants collection.
  Status Bootstrap();

  /// Validates credentials (any non-empty user with password "ofmf" or a
  /// user registered via AddUser) and mints a session + token. The session
  /// adopts the user's tenant binding at creation time.
  Result<SessionInfo> CreateSession(const std::string& user, const std::string& password);
  Status DeleteSession(const std::string& session_id);

  /// Token -> session (nullopt when unknown). The map is keyed by a token
  /// digest and the final equality check is constant-time, so lookup timing
  /// reveals nothing about how close a guessed token is to a live one.
  std::optional<SessionInfo> Authenticate(const std::string& token) const;

  /// Tenant id for a presented token; "" for unknown tokens and unbound
  /// users (the reactor's classifier and per-tenant metrics key on this).
  std::string TenantOfToken(const std::string& token) const;

  void AddUser(const std::string& user, const std::string& password);

  // ------------------------------------------------------------- tenants --

  /// Creates the tenant resource and binds its users. The tree mutation is
  /// journaled like any other, which is what persists tenants.
  Result<TenantInfo> CreateTenant(const TenantInfo& tenant);
  /// POST-factory form (Redfish payload in, member URI out).
  Result<std::string> CreateTenantFromPayload(const json::Json& body);
  Status DeleteTenant(const std::string& tenant_id);
  Result<TenantInfo> GetTenant(const std::string& tenant_id) const;
  std::vector<TenantInfo> Tenants() const;
  std::string TenantOfUser(const std::string& user) const;

  /// Rebuilds the tenant registry and user bindings from the recovered
  /// tree (crash recovery; mirrors EventService::AdoptSubscriptionsFromTree).
  /// Returns how many tenants were adopted. Run before RestoreSession so
  /// restored sessions re-bind to their tenants.
  std::size_t AdoptTenantsFromTree();

  /// Every live session, tokens included (feeds the durability snapshot;
  /// tokens never appear in the Redfish tree itself).
  std::vector<SessionInfo> ExportSessions() const;

  /// Adopts a session recovered from the journal/snapshot. The token only
  /// authenticates again if the Session resource survived in the tree — a
  /// session deleted before the crash replays its deletion and stays dead.
  /// Bumps the id counter past the adopted id so new sessions never collide.
  void RestoreSession(const SessionInfo& session);

  bool auth_required() const { return auth_required_; }
  void set_auth_required(bool required) { auth_required_ = required; }

  std::size_t session_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sessions_by_digest_.size();
  }

 private:
  /// Non-reversible map key for a token. Not a password hash (tokens are
  /// 128-bit random, not guessable secrets needing stretching); the digest
  /// only keeps raw tokens out of the lookup key comparison path.
  static std::string TokenDigest(const std::string& token);
  Result<TenantInfo> CreateTenantLocked(const TenantInfo& tenant);

  redfish::ResourceTree& tree_;
  /// Guards the maps and counters below: Authenticate runs on every request
  /// thread, and compaction exports sessions from connection threads while
  /// other connections create/delete them. Acquired before the tree's lock
  /// (CreateSession/DeleteSession mutate the tree under mu_), never after.
  mutable std::mutex mu_;
  std::map<std::string, std::string> users_;  // user -> password
  /// TokenDigest(token) -> session. Authenticate digests the presented
  /// token, finds the bucket, then confirms with ConstantTimeEquals.
  std::map<std::string, SessionInfo> sessions_by_digest_;
  std::map<std::string, TenantInfo> tenants_;        // tenant id -> info
  std::map<std::string, std::string> tenant_of_user_;  // user -> tenant id
  Rng rng_{0xC0FFEE};
  std::uint64_t next_id_ = 1;
  bool auth_required_ = false;
};

}  // namespace ofmf::core
