// Redfish SessionService: POST to Sessions with UserName/Password yields an
// X-Auth-Token; when authentication is enabled, every other request must
// present a live token.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/rng.hpp"
#include "json/value.hpp"
#include "redfish/tree.hpp"

namespace ofmf::core {

struct SessionInfo {
  std::string id;
  std::string user;
  std::string token;
  std::string uri;
};

class SessionService {
 public:
  explicit SessionService(redfish::ResourceTree& tree);

  /// Installs /redfish/v1/SessionService and the Sessions collection.
  Status Bootstrap();

  /// Validates credentials (any non-empty user with password "ofmf" or a
  /// user registered via AddUser) and mints a session + token.
  Result<SessionInfo> CreateSession(const std::string& user, const std::string& password);
  Status DeleteSession(const std::string& session_id);

  /// Token -> session (nullopt when unknown).
  std::optional<SessionInfo> Authenticate(const std::string& token) const;

  void AddUser(const std::string& user, const std::string& password);

  /// Every live session, tokens included (feeds the durability snapshot;
  /// tokens never appear in the Redfish tree itself).
  std::vector<SessionInfo> ExportSessions() const;

  /// Adopts a session recovered from the journal/snapshot. The token only
  /// authenticates again if the Session resource survived in the tree — a
  /// session deleted before the crash replays its deletion and stays dead.
  /// Bumps the id counter past the adopted id so new sessions never collide.
  void RestoreSession(const SessionInfo& session);

  bool auth_required() const { return auth_required_; }
  void set_auth_required(bool required) { auth_required_ = required; }

  std::size_t session_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sessions_by_token_.size();
  }

 private:
  redfish::ResourceTree& tree_;
  /// Guards the maps and counters below: Authenticate runs on every request
  /// thread, and compaction exports sessions from connection threads while
  /// other connections create/delete them. Acquired before the tree's lock
  /// (CreateSession/DeleteSession mutate the tree under mu_), never after.
  mutable std::mutex mu_;
  std::map<std::string, std::string> users_;  // user -> password
  std::map<std::string, SessionInfo> sessions_by_token_;
  Rng rng_{0xC0FFEE};
  std::uint64_t next_id_ = 1;
  bool auth_required_ = false;
};

}  // namespace ofmf::core
