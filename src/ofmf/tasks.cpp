#include "ofmf/tasks.hpp"

#include "ofmf/uris.hpp"

namespace ofmf::core {

const char* to_string(TaskState state) {
  switch (state) {
    case TaskState::kNew: return "New";
    case TaskState::kRunning: return "Running";
    case TaskState::kCompleted: return "Completed";
    case TaskState::kException: return "Exception";
    case TaskState::kCancelled: return "Cancelled";
  }
  return "?";
}

TaskService::TaskService(redfish::ResourceTree& tree, SimClock& clock)
    : tree_(tree), clock_(clock) {}

Status TaskService::Bootstrap() {
  OFMF_RETURN_IF_ERROR(tree_.Create(
      kTaskService, "#TaskService.v1_2_0.TaskService",
      json::Json::Obj({{"Id", "TaskService"},
                       {"Name", "Task Service"},
                       {"ServiceEnabled", true},
                       {"Tasks", json::Json::Obj({{"@odata.id", kTasks}})}})));
  return tree_.CreateCollection(kTasks, "#TaskCollection.TaskCollection", "Tasks");
}

Result<std::string> TaskService::CreateTask(const std::string& name) {
  const std::string id = std::to_string(next_id_++);
  const std::string uri = std::string(kTasks) + "/" + id;
  OFMF_RETURN_IF_ERROR(tree_.Create(
      uri, "#Task.v1_7_0.Task",
      json::Json::Obj({{"Id", id},
                       {"Name", name},
                       {"TaskState", to_string(TaskState::kNew)},
                       {"PercentComplete", 0},
                       {"StartTime", FormatSimTimestamp(clock_.now())},
                       {"Messages", json::Json::MakeArray()}})));
  OFMF_RETURN_IF_ERROR(tree_.AddMember(kTasks, uri));
  return uri;
}

Status TaskService::SetState(const std::string& task_uri, TaskState state,
                             const std::string& message) {
  json::Json patch = json::Json::Obj({{"TaskState", to_string(state)}});
  if (state == TaskState::kCompleted) {
    patch.as_object().Set("PercentComplete", 100);
    patch.as_object().Set("EndTime", FormatSimTimestamp(clock_.now()));
  }
  if (!message.empty()) {
    patch.as_object().Set(
        "Messages", json::Json::Arr({json::Json::Obj({{"Message", message}})}));
  }
  return tree_.Patch(task_uri, patch);
}

Status TaskService::SetPercentComplete(const std::string& task_uri, int percent) {
  if (percent < 0 || percent > 100) {
    return Status::InvalidArgument("percent must be 0-100");
  }
  return tree_.Patch(task_uri, json::Json::Obj({{"PercentComplete", percent}}));
}

Result<TaskState> TaskService::GetState(const std::string& task_uri) const {
  OFMF_ASSIGN_OR_RETURN(json::Json doc, tree_.Get(task_uri));
  const std::string state = doc.GetString("TaskState");
  if (state == "New") return TaskState::kNew;
  if (state == "Running") return TaskState::kRunning;
  if (state == "Completed") return TaskState::kCompleted;
  if (state == "Exception") return TaskState::kException;
  if (state == "Cancelled") return TaskState::kCancelled;
  return Status::Internal("unknown TaskState: " + state);
}

}  // namespace ofmf::core
