// Redfish TaskService: long-running operations (compositions, fabric
// reconfiguration) surface as Task resources clients can poll.
#pragma once

#include <string>

#include "common/clock.hpp"
#include "common/result.hpp"
#include "json/value.hpp"
#include "redfish/tree.hpp"

namespace ofmf::core {

enum class TaskState { kNew, kRunning, kCompleted, kException, kCancelled };

const char* to_string(TaskState state);

class TaskService {
 public:
  TaskService(redfish::ResourceTree& tree, SimClock& clock);

  Status Bootstrap();

  /// Creates a Task in kNew; returns its URI.
  Result<std::string> CreateTask(const std::string& name);

  Status SetState(const std::string& task_uri, TaskState state,
                  const std::string& message = "");
  Status SetPercentComplete(const std::string& task_uri, int percent);

  Result<TaskState> GetState(const std::string& task_uri) const;

 private:
  redfish::ResourceTree& tree_;
  SimClock& clock_;
  std::uint64_t next_id_ = 1;
};

}  // namespace ofmf::core
