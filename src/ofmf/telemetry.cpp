#include "ofmf/telemetry.hpp"

#include "ofmf/uris.hpp"

namespace ofmf::core {

TelemetryService::TelemetryService(redfish::ResourceTree& tree, EventService& events,
                                   SimClock& clock)
    : tree_(tree), events_(events), clock_(clock) {}

Status TelemetryService::Bootstrap() {
  OFMF_RETURN_IF_ERROR(tree_.Create(
      kTelemetryService, "#TelemetryService.v1_3_1.TelemetryService",
      json::Json::Obj(
          {{"Id", "TelemetryService"},
           {"Name", "Telemetry Service"},
           {"ServiceEnabled", true},
           {"MetricReports", json::Json::Obj({{"@odata.id", kMetricReports}})}})));
  return tree_.CreateCollection(
      kMetricReports, "#MetricReportCollection.MetricReportCollection", "Metric Reports");
}

Status TelemetryService::PushReport(const std::string& report_id,
                                    const std::vector<MetricValue>& values) {
  if (report_id.empty()) return Status::InvalidArgument("report id must be non-empty");
  const std::string uri = std::string(kMetricReports) + "/" + report_id;
  json::Array metric_values;
  for (const MetricValue& value : values) {
    json::Json entry = json::Json::Obj({{"MetricId", value.metric_id},
                                        {"MetricValue", value.value},
                                        {"Timestamp", FormatSimTimestamp(clock_.now())}});
    if (!value.property.empty()) {
      entry.as_object().Set("MetricProperty", value.property);
    }
    metric_values.push_back(std::move(entry));
  }
  json::Json payload = json::Json::Obj({
      {"Id", report_id},
      {"Name", "Metric report " + report_id},
      {"ReportSequence", 0},
      {"MetricValues", json::Json(std::move(metric_values))},
  });
  if (tree_.Exists(uri)) {
    OFMF_RETURN_IF_ERROR(tree_.Replace(uri, std::move(payload)));
  } else {
    OFMF_RETURN_IF_ERROR(
        tree_.Create(uri, "#MetricReport.v1_4_2.MetricReport", std::move(payload)));
    OFMF_RETURN_IF_ERROR(tree_.AddMember(kMetricReports, uri));
  }
  Event event;
  event.event_type = "MetricReport";
  event.message_id = "TelemetryService.1.0.MetricReportUpdated";
  event.message = "metric report " + report_id + " updated";
  event.origin = uri;
  events_.Publish(event);
  return Status::Ok();
}

Result<json::Json> TelemetryService::GetReport(const std::string& report_id) const {
  return tree_.Get(std::string(kMetricReports) + "/" + report_id);
}

std::vector<std::string> TelemetryService::ReportIds() const {
  std::vector<std::string> ids;
  for (const std::string& uri : tree_.UrisUnder(kMetricReports)) {
    if (uri == kMetricReports) continue;
    ids.push_back(uri.substr(std::string(kMetricReports).size() + 1));
  }
  return ids;
}

}  // namespace ofmf::core
