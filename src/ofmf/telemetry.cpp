#include "ofmf/telemetry.hpp"

#include "common/metrics.hpp"
#include "ofmf/uris.hpp"

namespace ofmf::core {

TelemetryService::TelemetryService(redfish::ResourceTree& tree, EventService& events,
                                   SimClock& clock)
    : tree_(tree), events_(events), clock_(clock) {}

Status TelemetryService::Bootstrap() {
  OFMF_RETURN_IF_ERROR(tree_.Create(
      kTelemetryService, "#TelemetryService.v1_3_1.TelemetryService",
      json::Json::Obj(
          {{"Id", "TelemetryService"},
           {"Name", "Telemetry Service"},
           {"ServiceEnabled", true},
           {"MetricReports", json::Json::Obj({{"@odata.id", kMetricReports}})}})));
  return tree_.CreateCollection(
      kMetricReports, "#MetricReportCollection.MetricReportCollection", "Metric Reports");
}

Status TelemetryService::PushReport(const std::string& report_id,
                                    const std::vector<MetricValue>& values) {
  if (report_id.empty()) return Status::InvalidArgument("report id must be non-empty");
  const std::string uri = std::string(kMetricReports) + "/" + report_id;
  json::Array metric_values;
  for (const MetricValue& value : values) {
    json::Json entry = json::Json::Obj({{"MetricId", value.metric_id},
                                        {"MetricValue", value.value},
                                        {"Timestamp", FormatSimTimestamp(clock_.now())}});
    if (!value.property.empty()) {
      entry.as_object().Set("MetricProperty", value.property);
    }
    metric_values.push_back(std::move(entry));
  }
  json::Json payload = json::Json::Obj({
      {"Id", report_id},
      {"Name", "Metric report " + report_id},
      {"ReportSequence", 0},
      {"MetricValues", json::Json(std::move(metric_values))},
  });
  if (tree_.Exists(uri)) {
    OFMF_RETURN_IF_ERROR(tree_.Replace(uri, std::move(payload)));
  } else {
    OFMF_RETURN_IF_ERROR(
        tree_.Create(uri, "#MetricReport.v1_4_2.MetricReport", std::move(payload)));
    OFMF_RETURN_IF_ERROR(tree_.AddMember(kMetricReports, uri));
  }
  Event event;
  event.event_type = "MetricReport";
  event.message_id = "TelemetryService.1.0.MetricReportUpdated";
  event.message = "metric report " + report_id + " updated";
  event.origin = uri;
  events_.Publish(event);
  return Status::Ok();
}

std::string TelemetryService::ResponseCacheReportUri() {
  return std::string(kMetricReports) + "/ResponseCache";
}

Status TelemetryService::UpdateResponseCacheReport(
    const redfish::ResponseCacheStats& stats) {
  std::lock_guard<std::mutex> lock(cache_report_mu_);
  if (cache_report_exists_ && stats.hits == last_cache_stats_.hits &&
      stats.misses == last_cache_stats_.misses &&
      stats.evictions == last_cache_stats_.evictions &&
      stats.invalidations == last_cache_stats_.invalidations) {
    return Status::Ok();
  }
  const std::string uri = ResponseCacheReportUri();
  const std::string timestamp = FormatSimTimestamp(clock_.now());
  const auto counter = [&](const char* id, double value) {
    return json::Json::Obj({{"MetricId", id},
                            {"MetricValue", value},
                            {"MetricProperty", "/redfish/v1 read path"},
                            {"Timestamp", timestamp}});
  };
  json::Json payload = json::Json::Obj({
      {"Id", "ResponseCache"},
      {"Name", "Read-path serialized-response cache counters"},
      {"ReportSequence", 0},
      {"MetricValues",
       json::Json::Arr({counter("CacheHits", static_cast<double>(stats.hits)),
                        counter("CacheMisses", static_cast<double>(stats.misses)),
                        counter("CacheEvictions", static_cast<double>(stats.evictions)),
                        counter("CacheInvalidations",
                                static_cast<double>(stats.invalidations)),
                        counter("CacheHitRate", stats.hit_rate())})},
  });
  if (cache_report_exists_ || tree_.Exists(uri)) {
    OFMF_RETURN_IF_ERROR(tree_.Replace(uri, std::move(payload)));
  } else {
    OFMF_RETURN_IF_ERROR(
        tree_.Create(uri, "#MetricReport.v1_4_2.MetricReport", std::move(payload)));
    OFMF_RETURN_IF_ERROR(tree_.AddMember(kMetricReports, uri));
  }
  cache_report_exists_ = true;
  last_cache_stats_ = stats;
  return Status::Ok();
}

std::string TelemetryService::ResilienceReportUri() {
  return std::string(kMetricReports) + "/Resilience";
}

Status TelemetryService::UpdateResilienceReport(const ResilienceSnapshot& snapshot) {
  // Fingerprint excludes timestamps so an unchanged snapshot leaves the
  // report's version (and every cached response of it) alone.
  std::string fingerprint = std::to_string(snapshot.replayed_posts);
  for (const ResilienceSnapshot::FabricBreaker& breaker : snapshot.breakers) {
    fingerprint += "|" + breaker.fabric_id + ":" + to_string(breaker.state) + ":" +
                   std::to_string(breaker.stats.successes) + ":" +
                   std::to_string(breaker.stats.failures) + ":" +
                   std::to_string(breaker.stats.rejected) + ":" +
                   std::to_string(breaker.stats.opens) + ":" +
                   std::to_string(breaker.stats.closes) + ":" +
                   (breaker.degraded ? "1" : "0");
  }
  std::lock_guard<std::mutex> lock(resilience_report_mu_);
  if (resilience_report_exists_ && fingerprint == last_resilience_fingerprint_) {
    return Status::Ok();
  }

  const std::string timestamp = FormatSimTimestamp(clock_.now());
  const auto counter = [&](const std::string& id, double value,
                           const std::string& property) {
    return json::Json::Obj({{"MetricId", id},
                            {"MetricValue", value},
                            {"MetricProperty", property},
                            {"Timestamp", timestamp}});
  };
  json::Array values;
  values.push_back(counter("ReplayedPosts", static_cast<double>(snapshot.replayed_posts),
                           "idempotency replay cache"));
  json::Array breakers;
  for (const ResilienceSnapshot::FabricBreaker& breaker : snapshot.breakers) {
    const std::string property = FabricUri(breaker.fabric_id);
    values.push_back(counter("BreakerSuccesses." + breaker.fabric_id,
                             static_cast<double>(breaker.stats.successes), property));
    values.push_back(counter("BreakerFailures." + breaker.fabric_id,
                             static_cast<double>(breaker.stats.failures), property));
    values.push_back(counter("BreakerRejected." + breaker.fabric_id,
                             static_cast<double>(breaker.stats.rejected), property));
    values.push_back(counter("BreakerOpens." + breaker.fabric_id,
                             static_cast<double>(breaker.stats.opens), property));
    values.push_back(counter("BreakerCloses." + breaker.fabric_id,
                             static_cast<double>(breaker.stats.closes), property));
    breakers.push_back(json::Json::Obj({{"FabricId", breaker.fabric_id},
                                        {"State", to_string(breaker.state)},
                                        {"Degraded", breaker.degraded}}));
  }
  json::Json payload = json::Json::Obj({
      {"Id", "Resilience"},
      {"Name", "Circuit breaker and retry counters"},
      {"ReportSequence", 0},
      {"MetricValues", json::Json(std::move(values))},
      {"Oem",
       json::Json::Obj({{"Ofmf", json::Json::Obj({{"Breakers",
                                                   json::Json(std::move(breakers))}})}})},
  });
  const std::string uri = ResilienceReportUri();
  if (resilience_report_exists_ || tree_.Exists(uri)) {
    OFMF_RETURN_IF_ERROR(tree_.Replace(uri, std::move(payload)));
  } else {
    OFMF_RETURN_IF_ERROR(
        tree_.Create(uri, "#MetricReport.v1_4_2.MetricReport", std::move(payload)));
    OFMF_RETURN_IF_ERROR(tree_.AddMember(kMetricReports, uri));
  }
  resilience_report_exists_ = true;
  last_resilience_fingerprint_ = std::move(fingerprint);
  return Status::Ok();
}

std::string TelemetryService::EventDeliveryReportUri() {
  return std::string(kMetricReports) + "/EventDelivery";
}

Status TelemetryService::UpdateEventDeliveryReport(const DeliverySnapshot& snapshot) {
  // Fingerprint excludes timestamps so an unchanged snapshot leaves the
  // report's version (and every cached response of it) alone.
  std::string fingerprint = std::to_string(snapshot.last_sequence) + "|" +
                            std::to_string(snapshot.total_queued) + "|" +
                            std::to_string(snapshot.delivered) + "|" +
                            std::to_string(snapshot.dropped) + "|" +
                            std::to_string(snapshot.retries) + "|" +
                            std::to_string(snapshot.failures) + "|" +
                            std::to_string(snapshot.breakers_open);
  for (const SubscriberSnapshot& subscriber : snapshot.subscribers) {
    fingerprint += "|" + subscriber.uri + ":" +
                   std::to_string(subscriber.queue_depth) + ":" +
                   std::to_string(subscriber.enqueued) + ":" +
                   std::to_string(subscriber.delivered) + ":" +
                   std::to_string(subscriber.batches) + ":" +
                   std::to_string(subscriber.coalesced) + ":" +
                   std::to_string(subscriber.dropped) + ":" +
                   std::to_string(subscriber.retries) + ":" +
                   std::to_string(subscriber.failures) + ":" +
                   std::to_string(subscriber.cursor_lag) + ":" +
                   std::to_string(subscriber.breaker_stats.opens) + ":" +
                   to_string(subscriber.breaker_state);
  }
  std::lock_guard<std::mutex> lock(delivery_report_mu_);
  if (delivery_report_exists_ && fingerprint == last_delivery_fingerprint_) {
    return Status::Ok();
  }

  const std::string timestamp = FormatSimTimestamp(clock_.now());
  const auto counter = [&](const std::string& id, double value,
                           const std::string& property) {
    return json::Json::Obj({{"MetricId", id},
                            {"MetricValue", value},
                            {"MetricProperty", property},
                            {"Timestamp", timestamp}});
  };
  json::Array values;
  const char* engine = "event delivery engine";
  values.push_back(counter("EventsDelivered", static_cast<double>(snapshot.delivered), engine));
  values.push_back(counter("DeliveryBatches", static_cast<double>(snapshot.batches), engine));
  values.push_back(counter("EventsCoalesced", static_cast<double>(snapshot.coalesced), engine));
  values.push_back(counter("EventsDropped", static_cast<double>(snapshot.dropped), engine));
  values.push_back(counter("DeliveryRetries", static_cast<double>(snapshot.retries), engine));
  values.push_back(counter("DeliveryFailures", static_cast<double>(snapshot.failures), engine));
  values.push_back(counter("QueuedEvents", static_cast<double>(snapshot.total_queued), engine));
  values.push_back(counter("MaxQueueDepth", static_cast<double>(snapshot.max_queue_depth), engine));
  values.push_back(counter("MaxCursorLag", static_cast<double>(snapshot.max_cursor_lag), engine));
  values.push_back(counter("BreakersOpen", static_cast<double>(snapshot.breakers_open), engine));
  values.push_back(counter("StreamSubscribers", static_cast<double>(snapshot.streams), engine));
  json::Array subscribers;
  for (const SubscriberSnapshot& subscriber : snapshot.subscribers) {
    values.push_back(counter("QueueDepth." + subscriber.uri,
                             static_cast<double>(subscriber.queue_depth),
                             subscriber.uri));
    values.push_back(counter("CursorLag." + subscriber.uri,
                             static_cast<double>(subscriber.cursor_lag),
                             subscriber.uri));
    values.push_back(counter("Queued." + subscriber.uri,
                             static_cast<double>(subscriber.enqueued),
                             subscriber.uri));
    values.push_back(counter("Delivered." + subscriber.uri,
                             static_cast<double>(subscriber.delivered),
                             subscriber.uri));
    values.push_back(counter("Dropped." + subscriber.uri,
                             static_cast<double>(subscriber.dropped),
                             subscriber.uri));
    values.push_back(counter("Retries." + subscriber.uri,
                             static_cast<double>(subscriber.retries),
                             subscriber.uri));
    values.push_back(counter("BreakerOpen." + subscriber.uri,
                             subscriber.breaker_state == BreakerState::kClosed ? 0.0 : 1.0,
                             subscriber.uri));
    subscribers.push_back(json::Json::Obj(
        {{"Subscription", subscriber.uri},
         {"Destination", subscriber.destination},
         {"Stream", subscriber.stream},
         {"QueueDepth", static_cast<std::int64_t>(subscriber.queue_depth)},
         {"Enqueued", static_cast<std::int64_t>(subscriber.enqueued)},
         {"Delivered", static_cast<std::int64_t>(subscriber.delivered)},
         {"Batches", static_cast<std::int64_t>(subscriber.batches)},
         {"Coalesced", static_cast<std::int64_t>(subscriber.coalesced)},
         {"Dropped", static_cast<std::int64_t>(subscriber.dropped)},
         {"Retries", static_cast<std::int64_t>(subscriber.retries)},
         {"Failures", static_cast<std::int64_t>(subscriber.failures)},
         {"AckedSequence", static_cast<std::int64_t>(subscriber.acked_sequence)},
         {"CursorLag", static_cast<std::int64_t>(subscriber.cursor_lag)},
         {"BreakerState", to_string(subscriber.breaker_state)},
         {"BreakerOpens", static_cast<std::int64_t>(subscriber.breaker_stats.opens)},
         {"BreakerCloses", static_cast<std::int64_t>(subscriber.breaker_stats.closes)},
         {"BreakerRejected",
          static_cast<std::int64_t>(subscriber.breaker_stats.rejected)}}));
  }
  json::Json payload = json::Json::Obj({
      {"Id", "EventDelivery"},
      {"Name", "Event fan-out delivery state"},
      {"ReportSequence", 0},
      {"MetricValues", json::Json(std::move(values))},
      {"Oem",
       json::Json::Obj(
           {{"Ofmf",
             json::Json::Obj({{"LastSequence",
                               static_cast<std::int64_t>(snapshot.last_sequence)},
                              {"Subscribers",
                               json::Json(std::move(subscribers))}})}})},
  });
  const std::string uri = EventDeliveryReportUri();
  if (delivery_report_exists_ || tree_.Exists(uri)) {
    OFMF_RETURN_IF_ERROR(tree_.Replace(uri, std::move(payload)));
  } else {
    OFMF_RETURN_IF_ERROR(
        tree_.Create(uri, "#MetricReport.v1_4_2.MetricReport", std::move(payload)));
    OFMF_RETURN_IF_ERROR(tree_.AddMember(kMetricReports, uri));
  }
  delivery_report_exists_ = true;
  last_delivery_fingerprint_ = std::move(fingerprint);
  return Status::Ok();
}

std::string TelemetryService::RequestLatencyReportUri() {
  return std::string(kMetricReports) + "/RequestLatency";
}

Status TelemetryService::UpdateRequestLatencyReport() {
  const std::vector<metrics::Registry::NamedHistogram> histograms =
      metrics::Registry::instance().HistogramSnapshots();
  const std::vector<std::pair<std::string, std::uint64_t>> counters =
      metrics::Registry::instance().CounterValues();

  // (count, sum) pins every histogram's contents; timestamps stay out of the
  // fingerprint so a no-traffic scrape is a pure no-op (ETag-stable -> 304).
  std::string fingerprint;
  for (const metrics::Registry::NamedHistogram& entry : histograms) {
    fingerprint += entry.name + ":" + std::to_string(entry.snap.count) + ":" +
                   std::to_string(entry.snap.sum) + "|";
  }
  for (const auto& [name, value] : counters) {
    fingerprint += name + "=" + std::to_string(value) + "|";
  }
  std::lock_guard<std::mutex> lock(latency_report_mu_);
  if (latency_report_exists_ && fingerprint == last_latency_fingerprint_) {
    return Status::Ok();
  }

  const std::string timestamp = FormatSimTimestamp(clock_.now());
  const auto metric = [&](const std::string& id, double value,
                          const std::string& property) {
    return json::Json::Obj({{"MetricId", id},
                            {"MetricValue", value},
                            {"MetricProperty", property},
                            {"Timestamp", timestamp}});
  };
  json::Array values;
  for (const metrics::Registry::NamedHistogram& entry : histograms) {
    // Latency series record nanoseconds by convention; report milliseconds.
    // Size-valued series (".records", ".bytes") pass through unscaled.
    const bool is_ns = (entry.name.size() >= 3 &&
                        entry.name.compare(entry.name.size() - 3, 3, ".ns") == 0) ||
                       entry.name.rfind("http.latency.", 0) == 0;
    const double scale = is_ns ? 1e-6 : 1.0;
    const std::string property = is_ns ? "milliseconds" : "units";
    values.push_back(metric(entry.name + ".count",
                            static_cast<double>(entry.snap.count), "samples"));
    values.push_back(metric(entry.name + ".p50",
                            entry.snap.Percentile(0.50) * scale, property));
    values.push_back(metric(entry.name + ".p95",
                            entry.snap.Percentile(0.95) * scale, property));
    values.push_back(metric(entry.name + ".p99",
                            entry.snap.Percentile(0.99) * scale, property));
    values.push_back(metric(entry.name + ".mean", entry.snap.mean() * scale, property));
  }
  for (const auto& [name, value] : counters) {
    values.push_back(metric(name, static_cast<double>(value), "count"));
  }
  json::Json payload = json::Json::Obj({
      {"Id", "RequestLatency"},
      {"Name", "Request latency and stage-timing histograms"},
      {"ReportSequence", 0},
      {"MetricValues", json::Json(std::move(values))},
  });
  const std::string uri = RequestLatencyReportUri();
  if (latency_report_exists_ || tree_.Exists(uri)) {
    OFMF_RETURN_IF_ERROR(tree_.Replace(uri, std::move(payload)));
  } else {
    OFMF_RETURN_IF_ERROR(
        tree_.Create(uri, "#MetricReport.v1_4_2.MetricReport", std::move(payload)));
    OFMF_RETURN_IF_ERROR(tree_.AddMember(kMetricReports, uri));
  }
  latency_report_exists_ = true;
  last_latency_fingerprint_ = std::move(fingerprint);
  return Status::Ok();
}

std::string TelemetryService::TenantQosReportUri() {
  return std::string(kMetricReports) + "/TenantQoS";
}

void TelemetryService::SetTenantQosSource(
    std::function<std::vector<qos::TenantStats>()> source) {
  std::lock_guard<std::mutex> lock(tenant_report_mu_);
  tenant_qos_source_ = std::move(source);
}

Status TelemetryService::UpdateTenantQosReport() {
  std::function<std::vector<qos::TenantStats>()> source;
  {
    std::lock_guard<std::mutex> lock(tenant_report_mu_);
    source = tenant_qos_source_;
  }
  std::vector<qos::TenantStats> tenants;
  if (source) tenants = source();

  // Per-tenant latency lives in the shared registry under a fixed prefix so
  // the reactor never needs a back-pointer into telemetry.
  static constexpr const char* kTenantLatencyPrefix = "http.tenant.";
  std::vector<metrics::Registry::NamedHistogram> latency;
  for (metrics::Registry::NamedHistogram& entry :
       metrics::Registry::instance().HistogramSnapshots()) {
    if (entry.name.rfind(kTenantLatencyPrefix, 0) == 0) {
      latency.push_back(std::move(entry));
    }
  }

  std::string fingerprint;
  for (const qos::TenantStats& tenant : tenants) {
    fingerprint += tenant.id + ":" + std::to_string(tenant.weight) + ":" +
                   std::to_string(tenant.queued) + ":" +
                   std::to_string(tenant.admitted) + ":" +
                   std::to_string(tenant.dispatched) + ":" +
                   std::to_string(tenant.rate_limited) + ":" +
                   std::to_string(tenant.queue_rejected) + "|";
  }
  for (const metrics::Registry::NamedHistogram& entry : latency) {
    fingerprint += entry.name + ":" + std::to_string(entry.snap.count) + ":" +
                   std::to_string(entry.snap.sum) + "|";
  }
  std::lock_guard<std::mutex> lock(tenant_report_mu_);
  if (tenant_report_exists_ && fingerprint == last_tenant_fingerprint_) {
    return Status::Ok();
  }

  const std::string timestamp = FormatSimTimestamp(clock_.now());
  const auto counter = [&](const std::string& id, double value,
                           const std::string& property) {
    return json::Json::Obj({{"MetricId", id},
                            {"MetricValue", value},
                            {"MetricProperty", property},
                            {"Timestamp", timestamp}});
  };
  json::Array values;
  json::Array tenant_objs;
  for (const qos::TenantStats& tenant : tenants) {
    values.push_back(counter("QueueDepth." + tenant.id,
                             static_cast<double>(tenant.queued), tenant.id));
    values.push_back(counter("Admitted." + tenant.id,
                             static_cast<double>(tenant.admitted), tenant.id));
    values.push_back(counter("Dispatched." + tenant.id,
                             static_cast<double>(tenant.dispatched), tenant.id));
    values.push_back(counter("RateLimited." + tenant.id,
                             static_cast<double>(tenant.rate_limited), tenant.id));
    values.push_back(counter("QueueRejected." + tenant.id,
                             static_cast<double>(tenant.queue_rejected), tenant.id));
    tenant_objs.push_back(json::Json::Obj(
        {{"Tenant", tenant.id},
         {"Weight", static_cast<std::int64_t>(tenant.weight)},
         {"QueueDepth", static_cast<std::int64_t>(tenant.queued)},
         {"Admitted", static_cast<std::int64_t>(tenant.admitted)},
         {"Dispatched", static_cast<std::int64_t>(tenant.dispatched)},
         {"RateLimited", static_cast<std::int64_t>(tenant.rate_limited)},
         {"QueueRejected", static_cast<std::int64_t>(tenant.queue_rejected)}}));
  }
  for (const metrics::Registry::NamedHistogram& entry : latency) {
    values.push_back(counter(entry.name + ".count",
                             static_cast<double>(entry.snap.count), "samples"));
    values.push_back(counter(entry.name + ".p50",
                             entry.snap.Percentile(0.50) * 1e-6, "milliseconds"));
    values.push_back(counter(entry.name + ".p95",
                             entry.snap.Percentile(0.95) * 1e-6, "milliseconds"));
    values.push_back(counter(entry.name + ".p99",
                             entry.snap.Percentile(0.99) * 1e-6, "milliseconds"));
  }
  json::Json payload = json::Json::Obj({
      {"Id", "TenantQoS"},
      {"Name", "Per-tenant fair-scheduling and admission state"},
      {"ReportSequence", 0},
      {"MetricValues", json::Json(std::move(values))},
      {"Oem",
       json::Json::Obj({{"Ofmf", json::Json::Obj({{"Tenants", json::Json(std::move(
                                                       tenant_objs))}})}})},
  });
  const std::string uri = TenantQosReportUri();
  if (tenant_report_exists_ || tree_.Exists(uri)) {
    OFMF_RETURN_IF_ERROR(tree_.Replace(uri, std::move(payload)));
  } else {
    OFMF_RETURN_IF_ERROR(
        tree_.Create(uri, "#MetricReport.v1_4_2.MetricReport", std::move(payload)));
    OFMF_RETURN_IF_ERROR(tree_.AddMember(kMetricReports, uri));
  }
  tenant_report_exists_ = true;
  last_tenant_fingerprint_ = std::move(fingerprint);
  return Status::Ok();
}

Result<json::Json> TelemetryService::GetReport(const std::string& report_id) const {
  return tree_.Get(std::string(kMetricReports) + "/" + report_id);
}

std::vector<std::string> TelemetryService::ReportIds() const {
  std::vector<std::string> ids;
  for (const std::string& uri : tree_.UrisUnder(kMetricReports)) {
    if (uri == kMetricReports) continue;
    ids.push_back(uri.substr(std::string(kMetricReports).size() + 1));
  }
  return ids;
}

}  // namespace ofmf::core
