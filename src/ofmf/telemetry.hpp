// TelemetryService: the "subscription-based central repository for telemetry
// information". Agents push MetricReports (power, port counters, pool
// utilization); clients read them from the tree or subscribe to
// MetricReport events.
#pragma once

#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/result.hpp"
#include "json/value.hpp"
#include "ofmf/events.hpp"
#include "redfish/tree.hpp"

namespace ofmf::core {

struct MetricValue {
  std::string metric_id;   // "PowerConsumedWatts"
  double value = 0.0;
  std::string property;    // origin @odata.id (optional)
};

class TelemetryService {
 public:
  TelemetryService(redfish::ResourceTree& tree, EventService& events, SimClock& clock);

  Status Bootstrap();

  /// Creates-or-replaces the report `report_id` and fires a MetricReport
  /// event. Repeated pushes to the same id overwrite (latest snapshot).
  Status PushReport(const std::string& report_id, const std::vector<MetricValue>& values);

  Result<json::Json> GetReport(const std::string& report_id) const;
  std::vector<std::string> ReportIds() const;

 private:
  redfish::ResourceTree& tree_;
  EventService& events_;
  SimClock& clock_;
};

}  // namespace ofmf::core
