// TelemetryService: the "subscription-based central repository for telemetry
// information". Agents push MetricReports (power, port counters, pool
// utilization); clients read them from the tree or subscribe to
// MetricReport events.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/result.hpp"
#include "json/value.hpp"
#include "ofmf/events.hpp"
#include "redfish/cache.hpp"
#include "redfish/tree.hpp"

namespace ofmf::core {

struct MetricValue {
  std::string metric_id;   // "PowerConsumedWatts"
  double value = 0.0;
  std::string property;    // origin @odata.id (optional)
};

class TelemetryService {
 public:
  TelemetryService(redfish::ResourceTree& tree, EventService& events, SimClock& clock);

  Status Bootstrap();

  /// Creates-or-replaces the report `report_id` and fires a MetricReport
  /// event. Repeated pushes to the same id overwrite (latest snapshot).
  Status PushReport(const std::string& report_id, const std::vector<MetricValue>& values);

  Result<json::Json> GetReport(const std::string& report_id) const;
  std::vector<std::string> ReportIds() const;

  /// Creates-or-replaces the "ResponseCache" MetricReport with the read-path
  /// cache counters (hits, misses, evictions, invalidations, hit rate).
  /// Quiet: no-op when the counters are unchanged since the last push, and
  /// never fires a MetricReport event (the report mirrors service-internal
  /// state rather than hardware telemetry).
  Status UpdateResponseCacheReport(const redfish::ResponseCacheStats& stats);

  /// URI of the read-path cache report.
  static std::string ResponseCacheReportUri();

 private:
  redfish::ResourceTree& tree_;
  EventService& events_;
  SimClock& clock_;

  std::mutex cache_report_mu_;
  redfish::ResponseCacheStats last_cache_stats_;
  bool cache_report_exists_ = false;
};

}  // namespace ofmf::core
