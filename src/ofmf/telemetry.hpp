// TelemetryService: the "subscription-based central repository for telemetry
// information". Agents push MetricReports (power, port counters, pool
// utilization); clients read them from the tree or subscribe to
// MetricReport events.
#pragma once

#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/qos.hpp"
#include "common/result.hpp"
#include "json/value.hpp"
#include "ofmf/breaker.hpp"
#include "ofmf/events.hpp"
#include "redfish/cache.hpp"
#include "redfish/tree.hpp"

namespace ofmf::core {

struct MetricValue {
  std::string metric_id;   // "PowerConsumedWatts"
  double value = 0.0;
  std::string property;    // origin @odata.id (optional)
};

/// Point-in-time view of the service's resilience machinery: one breaker
/// per registered agent plus the idempotent-POST replay counter.
struct ResilienceSnapshot {
  struct FabricBreaker {
    std::string fabric_id;
    BreakerState state = BreakerState::kClosed;
    BreakerStats stats;
    bool degraded = false;  // fabric subtree currently marked Critical
  };
  std::vector<FabricBreaker> breakers;
  std::uint64_t replayed_posts = 0;  // POSTs answered from the replay cache
};

class TelemetryService {
 public:
  TelemetryService(redfish::ResourceTree& tree, EventService& events, SimClock& clock);

  Status Bootstrap();

  /// Creates-or-replaces the report `report_id` and fires a MetricReport
  /// event. Repeated pushes to the same id overwrite (latest snapshot).
  Status PushReport(const std::string& report_id, const std::vector<MetricValue>& values);

  Result<json::Json> GetReport(const std::string& report_id) const;
  std::vector<std::string> ReportIds() const;

  /// Creates-or-replaces the "ResponseCache" MetricReport with the read-path
  /// cache counters (hits, misses, evictions, invalidations, hit rate).
  /// Quiet: no-op when the counters are unchanged since the last push, and
  /// never fires a MetricReport event (the report mirrors service-internal
  /// state rather than hardware telemetry).
  Status UpdateResponseCacheReport(const redfish::ResponseCacheStats& stats);

  /// URI of the read-path cache report.
  static std::string ResponseCacheReportUri();

  /// Creates-or-replaces the "Resilience" MetricReport with per-agent
  /// breaker state/counters and the POST replay-cache counter. Quiet like
  /// UpdateResponseCacheReport: no event, no-op when nothing moved.
  Status UpdateResilienceReport(const ResilienceSnapshot& snapshot);

  /// URI of the resilience (breaker/retry) report.
  static std::string ResilienceReportUri();

  /// Creates-or-replaces the "RequestLatency" MetricReport from the global
  /// metrics registry: per-endpoint HTTP latency, compose/decompose stage
  /// timings, journal fsync/batch, and agent-call histograms, each reported
  /// as count plus p50/p95/p99 (milliseconds for the *.ns series). Quiet:
  /// the fingerprint covers only (count, sum) pairs and counter values, so a
  /// scrape with no intervening traffic leaves the report — and its ETag —
  /// untouched.
  Status UpdateRequestLatencyReport();

  /// URI of the latency-histogram report.
  static std::string RequestLatencyReportUri();

  /// Creates-or-replaces the "EventDelivery" MetricReport with the event
  /// fan-out engine's state: per-subscriber queue depth, drops, retries,
  /// failures, cursor lag, and breaker state, plus fleet-wide totals.
  /// Quiet like the other service-internal reports: no event, no-op when
  /// nothing moved.
  Status UpdateEventDeliveryReport(const DeliverySnapshot& snapshot);

  /// URI of the event fan-out delivery report.
  static std::string EventDeliveryReportUri();

  /// Where the TenantQoS report pulls scheduler counters from (the reactor's
  /// TcpServer::TenantQosStats, wired by whoever owns both). Null = the
  /// report carries only the per-tenant latency histograms.
  void SetTenantQosSource(std::function<std::vector<qos::TenantStats>()> source);

  /// Creates-or-replaces the "TenantQoS" MetricReport: per-tenant scheduler
  /// counters (admitted/dispatched/429s/queue depth, DRR weight) from the
  /// source plus per-tenant request-latency percentiles from the metrics
  /// registry ("http.tenant.<id>.latency.ns"). Quiet like the other
  /// service-internal reports: no event, no-op when nothing moved.
  Status UpdateTenantQosReport();

  /// URI of the multi-tenant QoS report.
  static std::string TenantQosReportUri();

 private:
  redfish::ResourceTree& tree_;
  EventService& events_;
  SimClock& clock_;

  std::mutex cache_report_mu_;
  redfish::ResponseCacheStats last_cache_stats_;
  bool cache_report_exists_ = false;

  std::mutex resilience_report_mu_;
  std::string last_resilience_fingerprint_;
  bool resilience_report_exists_ = false;

  std::mutex latency_report_mu_;
  std::string last_latency_fingerprint_;
  bool latency_report_exists_ = false;

  std::mutex delivery_report_mu_;
  std::string last_delivery_fingerprint_;
  bool delivery_report_exists_ = false;

  std::mutex tenant_report_mu_;
  std::function<std::vector<qos::TenantStats>()> tenant_qos_source_;
  std::string last_tenant_fingerprint_;
  bool tenant_report_exists_ = false;
};

}  // namespace ofmf::core
