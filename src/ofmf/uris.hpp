// Canonical URIs of the OFMF Redfish tree ("a single Redfish tree that
// includes all the fabrics and resources available").
#pragma once

#include <string>

namespace ofmf::core {

inline constexpr const char* kServiceRoot = "/redfish/v1";
inline constexpr const char* kFabrics = "/redfish/v1/Fabrics";
inline constexpr const char* kSystems = "/redfish/v1/Systems";
inline constexpr const char* kChassis = "/redfish/v1/Chassis";
inline constexpr const char* kStorageServices = "/redfish/v1/StorageServices";
inline constexpr const char* kSessionService = "/redfish/v1/SessionService";
inline constexpr const char* kSessions = "/redfish/v1/SessionService/Sessions";
inline constexpr const char* kTenants = "/redfish/v1/SessionService/Tenants";
inline constexpr const char* kEventService = "/redfish/v1/EventService";
inline constexpr const char* kSubscriptions = "/redfish/v1/EventService/Subscriptions";
inline constexpr const char* kEventServiceSse = "/redfish/v1/EventService/SSE";
inline constexpr const char* kTaskService = "/redfish/v1/TaskService";
inline constexpr const char* kTasks = "/redfish/v1/TaskService/Tasks";
inline constexpr const char* kTelemetryService = "/redfish/v1/TelemetryService";
inline constexpr const char* kMetricReports = "/redfish/v1/TelemetryService/MetricReports";
inline constexpr const char* kAggregationService = "/redfish/v1/AggregationService";
inline constexpr const char* kAggregationSources =
    "/redfish/v1/AggregationService/AggregationSources";
inline constexpr const char* kCompositionService = "/redfish/v1/CompositionService";
inline constexpr const char* kResourceBlocks =
    "/redfish/v1/CompositionService/ResourceBlocks";

inline std::string FabricUri(const std::string& fabric_id) {
  return std::string(kFabrics) + "/" + fabric_id;
}

}  // namespace ofmf::core
