#include "redfish/cache.hpp"

#include <functional>

namespace ofmf::redfish {
namespace {

// invalidated_at tracks one generation per mutated URI; cap it (per shard) so
// a long-lived service with churning URIs (compose/decompose) cannot grow it
// without bound. Overflow collapses to a conservative floor generation.
constexpr std::size_t kMaxInvalidationEntriesPerShard = 8192;

}  // namespace

std::string NormalizeQuery(const std::map<std::string, std::string>& query) {
  std::string out;
  for (const auto& [key, value] : query) {
    if (!out.empty()) out += '&';
    out += key;
    out += '=';
    out += value;
  }
  return out;
}

ResponseCache::ResponseCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      shard_capacity_(capacity_ / kShards == 0 ? 1 : capacity_ / kShards) {}

std::string ResponseCache::MakeKey(const std::string& uri, const std::string& etag,
                                   const std::string& query) {
  std::string key;
  key.reserve(uri.size() + etag.size() + query.size() + 2);
  key += uri;
  key += '\n';
  key += etag;
  key += '\n';
  key += query;
  return key;
}

ResponseCache::Shard& ResponseCache::ShardFor(const std::string& uri) const {
  return shards_[std::hash<std::string>{}(uri) % kShards];
}

std::uint64_t ResponseCache::BeginRead(const std::string& uri) const {
  Shard& shard = ShardFor(uri);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.generation;
}

std::optional<CachedResponse> ResponseCache::Lookup(const std::string& uri,
                                                    const std::string& etag,
                                                    const std::string& query) {
  if (!enabled()) return std::nullopt;
  Shard& shard = ShardFor(uri);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(MakeKey(uri, etag, query));
  if (it == shard.entries.end()) {
    ++shard.stats.misses;
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
  ++shard.stats.hits;
  return it->second.payload;  // shared slabs: refcount bump, no byte copy
}

void ResponseCache::Insert(const std::string& uri, const std::string& etag,
                           const std::string& query, CachedResponse entry,
                           std::uint64_t read_generation) {
  if (!enabled()) return;
  Shard& shard = ShardFor(uri);
  std::lock_guard<std::mutex> lock(shard.mu);
  // Reject a body whose inputs were invalidated after the reader's snapshot:
  // for collections the body embeds member state the ETag does not cover.
  if (read_generation < shard.invalidation_floor) return;
  auto invalidated = shard.invalidated_at.find(uri);
  if (invalidated != shard.invalidated_at.end() &&
      invalidated->second > read_generation) {
    return;
  }
  const std::string key = MakeKey(uri, etag, query);
  if (shard.entries.count(key) != 0) return;  // a concurrent reader won the race
  while (shard.entries.size() >= shard_capacity_) {
    auto victim = shard.entries.find(shard.lru.back());
    shard.lru.pop_back();
    if (victim != shard.entries.end()) shard.entries.erase(victim);
    ++shard.stats.evictions;
  }
  shard.lru.push_front(key);
  shard.entries[key] = Entry{std::move(entry), shard.lru.begin()};
}

void ResponseCache::InvalidateUriInShard(Shard& shard, const std::string& uri) {
  const std::string prefix = uri + '\n';
  auto it = shard.entries.lower_bound(prefix);
  while (it != shard.entries.end() && it->first.compare(0, prefix.size(), prefix) == 0) {
    shard.lru.erase(it->second.lru_it);
    it = shard.entries.erase(it);
    ++shard.stats.invalidations;
  }
}

void ResponseCache::Invalidate(const std::string& changed_uri) {
  std::string uri = changed_uri;
  while (true) {
    Shard& shard = ShardFor(uri);
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      ++shard.generation;
      if (shard.invalidated_at.size() >= kMaxInvalidationEntriesPerShard) {
        // Collapse to a floor: treat every URI in this shard as invalidated
        // right now. Late inserts begun before this are rejected.
        shard.invalidation_floor = shard.generation;
        shard.invalidated_at.clear();
        shard.entries.clear();
        shard.lru.clear();
      } else {
        shard.invalidated_at[uri] = shard.generation;
        InvalidateUriInShard(shard, uri);
      }
    }
    if (uri == "/" || uri.empty()) break;
    const std::size_t slash = uri.rfind('/');
    if (slash == std::string::npos) break;
    uri = slash == 0 ? "/" : uri.substr(0, slash);
  }
}

void ResponseCache::ClearShardLocked(Shard& shard) {
  // Fence in-flight inserts begun before the clear: they must not resurrect
  // dropped entries with stale bodies.
  shard.invalidation_floor = ++shard.generation;
  shard.invalidated_at.clear();
  shard.entries.clear();
  shard.lru.clear();
}

void ResponseCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    ClearShardLocked(shard);
  }
}

void ResponseCache::set_enabled(bool enabled) {
  const bool was = enabled_.exchange(enabled);
  if (was && !enabled) Clear();
}

ResponseCacheStats ResponseCache::stats() const {
  ResponseCacheStats total;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total.hits += shard.stats.hits;
    total.misses += shard.stats.misses;
    total.evictions += shard.stats.evictions;
    total.invalidations += shard.stats.invalidations;
  }
  return total;
}

std::size_t ResponseCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.entries.size();
  }
  return total;
}

}  // namespace ofmf::redfish
