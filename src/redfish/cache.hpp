// Serialized-response cache for the Redfish read path. Memoizes the fully
// stamped, serialized GET body keyed on (uri, etag, normalized query string)
// so repeated reads of an unchanged resource — the telemetry polling storms
// the paper's management layer must absorb — skip the deep copy, the OData
// query evaluation, and the JSON serialization entirely.
//
// Invalidation: a mutation of URI U invalidates U and every ancestor of U,
// because collection responses ($expand, $filter) embed member documents
// whose changes do not bump the collection's own ETag. A per-shard
// generation counter closes the insert/invalidate race: a body built from a
// snapshot taken before an invalidation is rejected at insert time, so a
// cached body always matches the state its ETag names.
//
// The cache is sharded by URI hash so concurrent readers on disjoint
// resources do not serialize on one lock (the whole point of the shared-lock
// tree conversion this cache sits in front of).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

namespace ofmf::redfish {

/// A cache entry handed to readers: the serialized body plus the
/// pre-serialized header blocks for the 200 and 304 answers, all as shared
/// immutable slabs. A hit serializes nothing — the transport writes the
/// head slab and the body slab straight to the wire, and every concurrent
/// hit references the same bytes (zero-copy; see DESIGN.md "Zero-copy data
/// path"). The heads carry no Connection header and no terminating blank
/// line; the transport appends its own fragment.
struct CachedResponse {
  std::shared_ptr<const std::string> body;
  std::shared_ptr<const std::string> head200;
  std::shared_ptr<const std::string> head304;
};

struct ResponseCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;  // entries dropped by change events
  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class ResponseCache {
 public:
  explicit ResponseCache(std::size_t capacity = kDefaultCapacity);

  /// Generation fence: call before reading the resource tree, pass the value
  /// to Insert() for the same `uri`. An invalidation of `uri` between the
  /// two rejects the insert.
  std::uint64_t BeginRead(const std::string& uri) const;

  /// Cached entry for (uri, etag, query), or nullopt. Hits refresh LRU
  /// position and share the stored slabs — no body copy. `uri` must already
  /// be normalized.
  std::optional<CachedResponse> Lookup(const std::string& uri, const std::string& etag,
                                       const std::string& query);

  /// Stores a serialized body with its pre-serialized heads. Dropped (not an
  /// error) when the cache is disabled, the entry was invalidated after
  /// `read_generation`, or the key already landed via a concurrent reader.
  void Insert(const std::string& uri, const std::string& etag, const std::string& query,
              CachedResponse entry, std::uint64_t read_generation);

  /// Drops every entry for `changed_uri` and for each of its ancestors
  /// (collection bodies embed member state). Bumps the generation fences.
  void Invalidate(const std::string& changed_uri);

  void Clear();

  void set_enabled(bool enabled);
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Aggregated over all shards.
  ResponseCacheStats stats() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

  static constexpr std::size_t kDefaultCapacity = 4096;
  static constexpr std::size_t kShards = 16;

 private:
  struct Entry {
    CachedResponse payload;
    std::list<std::string>::iterator lru_it;  // position in Shard::lru
  };

  struct Shard {
    mutable std::mutex mu;
    std::map<std::string, Entry> entries;
    std::list<std::string> lru;  // front = most recent, holds map keys
    // Monotonic generation; bumped by Invalidate(). Per-URI entries record
    // the generation of their last invalidation so late inserts of bodies
    // built from stale snapshots are rejected.
    std::uint64_t generation = 0;
    std::map<std::string, std::uint64_t> invalidated_at;
    // Reads begun before this generation may not insert (set by Clear() and
    // by invalidated_at overflow collapse — a conservative whole-shard fence).
    std::uint64_t invalidation_floor = 0;
    ResponseCacheStats stats;
  };

  // Composite map key: "<uri>\n<etag>\n<query>". '\n' cannot appear in a
  // normalized path, an ETag, or a query string, so the encoding is
  // injective, and the uri-first ordering makes per-URI prefix erase a
  // contiguous range scan.
  static std::string MakeKey(const std::string& uri, const std::string& etag,
                             const std::string& query);

  Shard& ShardFor(const std::string& uri) const;
  void InvalidateUriInShard(Shard& shard, const std::string& uri);
  void ClearShardLocked(Shard& shard);

  std::size_t capacity_;          // total; split evenly across shards
  std::size_t shard_capacity_;    // >= 1
  std::atomic<bool> enabled_{true};
  mutable std::array<Shard, kShards> shards_;
};

/// "a=1&b=2" canonical form of a parsed query map (keys sorted; "" if empty).
std::string NormalizeQuery(const std::map<std::string, std::string>& query);

}  // namespace ofmf::redfish
