#include "redfish/conformance.hpp"

#include <set>

#include "odata/annotations.hpp"

namespace ofmf::redfish {

ConformanceReport AuditTree(const ResourceTree& tree, const SchemaRegistry& registry) {
  ConformanceReport report;
  for (const std::string& uri : tree.UrisUnder("/")) {
    const Result<json::Json> stamped = tree.Get(uri);
    const Result<json::Json> raw = tree.GetRaw(uri);
    if (!stamped.ok() || !raw.ok()) continue;  // deleted concurrently
    ++report.resources_checked;

    // Schema validation of the stored payload.
    const std::string type = stamped->GetString("@odata.type");
    if (const json::SchemaValidator* validator = registry.Find(type)) {
      ++report.resources_with_schema;
      for (const json::ValidationError& error : validator->Validate(*raw)) {
        report.issues.push_back({uri, error.pointer, error.message});
      }
    }

    // Collection invariants.
    const json::Json* members =
        raw->is_object() ? raw->as_object().Find("Members") : nullptr;
    if (members != nullptr && members->is_array()) {
      std::set<std::string> seen;
      for (const json::Json& entry : members->as_array()) {
        const std::string member_uri = odata::IdOf(entry);
        if (member_uri.empty()) {
          report.issues.push_back({uri, "/Members", "member entry missing @odata.id"});
          continue;
        }
        if (!seen.insert(member_uri).second) {
          report.issues.push_back({uri, "/Members", "duplicate member " + member_uri});
        }
        if (!tree.Exists(member_uri)) {
          report.issues.push_back({uri, "/Members", "dangling member " + member_uri});
        }
      }
    }
  }
  return report;
}

}  // namespace ofmf::redfish
