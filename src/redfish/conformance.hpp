// Whole-tree conformance audit: validates every resource's stored payload
// against the schema registered for its @odata.type, and checks collection
// structural invariants (every member reference resolves, no duplicate
// members). The OFMF runs this as a self-check; tests run it over fully
// populated services to catch agents publishing schema-invalid payloads.
#pragma once

#include <string>
#include <vector>

#include "redfish/schemas.hpp"
#include "redfish/tree.hpp"

namespace ofmf::redfish {

struct ConformanceIssue {
  std::string uri;      // resource at fault
  std::string pointer;  // location within the payload ("" = whole resource)
  std::string message;
};

struct ConformanceReport {
  std::size_t resources_checked = 0;
  std::size_t resources_with_schema = 0;
  std::vector<ConformanceIssue> issues;
  bool clean() const { return issues.empty(); }
};

/// Audits every resource in `tree`. Types without a registered schema only
/// get the structural checks.
ConformanceReport AuditTree(const ResourceTree& tree, const SchemaRegistry& registry);

}  // namespace ofmf::redfish
