#include "redfish/errors.hpp"

namespace ofmf::redfish {

json::Json MakeErrorBody(const std::string& code, const std::string& message,
                         const std::vector<ExtendedInfo>& extended) {
  json::Array info;
  if (extended.empty()) {
    info.push_back(json::Json::Obj({{"@odata.type", "#Message.v1_1_2.Message"},
                                    {"MessageId", code},
                                    {"Message", message},
                                    {"Severity", "Warning"},
                                    {"Resolution", "None."}}));
  }
  for (const ExtendedInfo& e : extended) {
    info.push_back(json::Json::Obj({{"@odata.type", "#Message.v1_1_2.Message"},
                                    {"MessageId", e.message_id},
                                    {"Message", e.message},
                                    {"Severity", e.severity},
                                    {"Resolution", e.resolution}}));
  }
  return json::Json::Obj(
      {{"error", json::Json::Obj({{"code", code},
                                  {"message", message},
                                  {"@Message.ExtendedInfo", json::Json(std::move(info))}})}});
}

std::string BaseMessageId(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "Base.1.0.Success";
    case ErrorCode::kInvalidArgument: return "Base.1.0.PropertyValueError";
    case ErrorCode::kNotFound: return "Base.1.0.ResourceMissingAtURI";
    case ErrorCode::kAlreadyExists: return "Base.1.0.ResourceAlreadyExists";
    case ErrorCode::kPermissionDenied: return "Base.1.0.InsufficientPrivilege";
    case ErrorCode::kFailedPrecondition: return "Base.1.0.PreconditionFailed";
    case ErrorCode::kResourceExhausted: return "Base.1.0.InsufficientResources";
    case ErrorCode::kUnavailable: return "Base.1.0.ServiceTemporarilyUnavailable";
    case ErrorCode::kTimeout: return "Base.1.0.OperationTimeout";
    case ErrorCode::kInternal: return "Base.1.0.InternalError";
    case ErrorCode::kUnimplemented: return "Base.1.0.ActionNotSupported";
  }
  return "Base.1.0.GeneralError";
}

http::Response ErrorResponse(const Status& status) {
  http::Response response = http::MakeJsonResponse(
      http::StatusToHttp(status),
      MakeErrorBody(BaseMessageId(status.code()), status.message()));
  // RFC 7231 permits Retry-After on any response; advertise it on 503 so
  // retrying clients know the condition is transient and worth backing off on.
  if (response.status == 503) response.headers.Set("Retry-After", "1");
  return response;
}

http::Response ErrorResponse(int http_status, const std::string& message_id,
                             const std::string& message) {
  http::Response response = http::MakeJsonResponse(http_status, MakeErrorBody(message_id, message));
  if (response.status == 503) response.headers.Set("Retry-After", "1");
  return response;
}

}  // namespace ofmf::redfish
