// Redfish standard error payloads (DSP0266 §Error responses, Base message
// registry). Every non-2xx response from the service carries one of these.
#pragma once

#include <string>
#include <vector>

#include "common/result.hpp"
#include "http/message.hpp"
#include "json/value.hpp"

namespace ofmf::redfish {

struct ExtendedInfo {
  std::string message_id;  // e.g. "Base.1.0.PropertyValueNotInList"
  std::string message;
  std::string severity = "Warning";
  std::string resolution;
};

/// {"error": {"code", "message", "@Message.ExtendedInfo": [...]}}
json::Json MakeErrorBody(const std::string& code, const std::string& message,
                         const std::vector<ExtendedInfo>& extended = {});

/// Full HTTP response for an internal Status (maps code -> HTTP status and a
/// Base registry message id).
http::Response ErrorResponse(const Status& status);

/// Error response with explicit HTTP status + registry id.
http::Response ErrorResponse(int http_status, const std::string& message_id,
                             const std::string& message);

/// Base registry message id for an ErrorCode ("Base.1.0.ResourceMissing"...).
std::string BaseMessageId(ErrorCode code);

}  // namespace ofmf::redfish
