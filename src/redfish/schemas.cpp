#include "redfish/schemas.hpp"

#include <cassert>

#include "common/strings.hpp"
#include "json/parse.hpp"

namespace ofmf::redfish {
namespace {

// Shared fragments. Kept as raw JSON text: the closest thing to the .json
// schema bundles DMTF ships, and trivially diffable against them.
constexpr const char* kStatusDef = R"({
  "type": "object",
  "properties": {
    "State": {"type": "string",
              "enum": ["Enabled", "Disabled", "Absent", "StandbyOffline",
                        "Starting", "UnavailableOffline", "Deferring", "Quiesced"]},
    "Health": {"type": "string", "enum": ["OK", "Warning", "Critical"]},
    "HealthRollup": {"type": "string", "enum": ["OK", "Warning", "Critical"]}
  },
  "additionalProperties": false
})";

json::Json WithCommonDefs(const std::string& schema_text) {
  auto schema = json::Parse(schema_text);
  assert(schema.ok() && "built-in schema must parse");
  json::Json defs = schema->at("$defs");
  if (!defs.is_object()) defs = json::Json::MakeObject();
  defs.as_object().Set("Status", *json::Parse(kStatusDef));
  schema->as_object().Set("$defs", defs);
  return *schema;
}

}  // namespace

std::string SchemaRegistry::BareName(const std::string& type) {
  // "#Fabric.v1_3_0.Fabric" -> "Fabric"; bare names pass through.
  if (type.empty() || type[0] != '#') return type;
  const std::size_t last_dot = type.rfind('.');
  if (last_dot == std::string::npos) return type.substr(1);
  return type.substr(last_dot + 1);
}

void SchemaRegistry::Register(const std::string& type_name, json::Json schema) {
  validators_[type_name] = std::make_unique<json::SchemaValidator>(std::move(schema));
}

const json::SchemaValidator* SchemaRegistry::Find(const std::string& type) const {
  auto it = validators_.find(BareName(type));
  if (it == validators_.end()) return nullptr;
  return it->second.get();
}

Status SchemaRegistry::ValidateCreate(const std::string& type, const json::Json& body) const {
  const json::SchemaValidator* validator = Find(type);
  if (validator == nullptr) return Status::Ok();
  return validator->Check(body);
}

Status SchemaRegistry::ValidatePatch(const std::string& type, const json::Json& body) const {
  const json::SchemaValidator* validator = Find(type);
  if (validator == nullptr) return Status::Ok();
  const auto readonly = validator->ReadOnlyViolations(body);
  if (!readonly.empty()) {
    return Status::PermissionDenied("cannot PATCH read-only property at " +
                                    readonly.front().pointer);
  }
  // PATCH bodies are partial: validate only present members by dropping
  // "required" from the check (merge semantics guarantee the rest).
  json::Json relaxed = validator->schema();
  if (relaxed.is_object()) relaxed.as_object().Erase("required");
  return json::SchemaValidator(std::move(relaxed)).Check(body);
}

std::vector<std::string> SchemaRegistry::TypeNames() const {
  std::vector<std::string> names;
  names.reserve(validators_.size());
  for (const auto& [name, v] : validators_) names.push_back(name);
  return names;
}

SchemaRegistry SchemaRegistry::BuiltIn() {
  SchemaRegistry registry;

  registry.Register("Fabric", WithCommonDefs(R"({
    "type": "object",
    "required": ["Name", "FabricType"],
    "properties": {
      "Id": {"type": "string", "readonly": true},
      "Name": {"type": "string", "minLength": 1},
      "Description": {"type": "string"},
      "FabricType": {"type": "string",
        "enum": ["CXL", "GenZ", "InfiniBand", "Ethernet", "NVMeOverFabrics", "PCIe", "OEM"]},
      "MaxZones": {"type": "integer", "minimum": 0},
      "Status": {"$ref": "#/$defs/Status"},
      "Zones": {"type": "object"},
      "Endpoints": {"type": "object"},
      "Switches": {"type": "object"},
      "Connections": {"type": "object"},
      "UUID": {"type": "string"},
      "Oem": {"type": "object"}
    }
  })"));

  registry.Register("Endpoint", WithCommonDefs(R"({
    "type": "object",
    "required": ["Name", "EndpointProtocol"],
    "properties": {
      "Id": {"type": "string", "readonly": true},
      "Name": {"type": "string", "minLength": 1},
      "Description": {"type": "string"},
      "EndpointProtocol": {"type": "string",
        "enum": ["CXL", "GenZ", "InfiniBand", "Ethernet", "NVMeOverFabrics", "PCIe", "OEM"]},
      "ConnectedEntities": {"type": "array", "items": {
        "type": "object",
        "properties": {
          "EntityType": {"type": "string",
            "enum": ["Processor", "Memory", "Drive", "StorageInitiator",
                     "StorageTarget", "NetworkController", "AccelerationFunction",
                     "MediumScopedMemory", "ComputerSystem"]},
          "EntityLink": {"type": "object"}
        }
      }},
      "EndpointRole": {"type": "string", "enum": ["Initiator", "Target", "Both"]},
      "PciId": {"type": "object"},
      "Status": {"$ref": "#/$defs/Status"},
      "Links": {"type": "object"},
      "Oem": {"type": "object"}
    }
  })"));

  registry.Register("Zone", WithCommonDefs(R"({
    "type": "object",
    "required": ["Name"],
    "properties": {
      "Id": {"type": "string", "readonly": true},
      "Name": {"type": "string", "minLength": 1},
      "ZoneType": {"type": "string",
        "enum": ["Default", "ZoneOfEndpoints", "ZoneOfZones", "ZoneOfResourceBlocks"]},
      "Status": {"$ref": "#/$defs/Status"},
      "Links": {"type": "object", "properties": {
        "Endpoints": {"type": "array", "items": {"type": "object"}}
      }},
      "Oem": {"type": "object"}
    }
  })"));

  registry.Register("Connection", WithCommonDefs(R"({
    "type": "object",
    "required": ["Name", "ConnectionType"],
    "properties": {
      "Id": {"type": "string", "readonly": true},
      "Name": {"type": "string", "minLength": 1},
      "ConnectionType": {"type": "string", "enum": ["Storage", "Memory", "Network"]},
      "Status": {"$ref": "#/$defs/Status"},
      "Links": {"type": "object", "properties": {
        "InitiatorEndpoints": {"type": "array", "items": {"type": "object"}},
        "TargetEndpoints": {"type": "array", "items": {"type": "object"}}
      }},
      "MemoryChunkInfo": {"type": "array", "items": {"type": "object"}},
      "VolumeInfo": {"type": "array", "items": {"type": "object"}},
      "Oem": {"type": "object"}
    }
  })"));

  registry.Register("Switch", WithCommonDefs(R"({
    "type": "object",
    "required": ["Name", "SwitchType"],
    "properties": {
      "Id": {"type": "string", "readonly": true},
      "Name": {"type": "string", "minLength": 1},
      "SwitchType": {"type": "string",
        "enum": ["CXL", "GenZ", "InfiniBand", "Ethernet", "NVMeOverFabrics", "PCIe", "OEM"]},
      "Manufacturer": {"type": "string"},
      "Model": {"type": "string"},
      "SerialNumber": {"type": "string", "readonly": true},
      "TotalSwitchWidth": {"type": "integer", "minimum": 0},
      "Status": {"$ref": "#/$defs/Status"},
      "Ports": {"type": "object"},
      "Oem": {"type": "object"}
    }
  })"));

  registry.Register("Port", WithCommonDefs(R"({
    "type": "object",
    "required": ["Name"],
    "properties": {
      "Id": {"type": "string", "readonly": true},
      "Name": {"type": "string", "minLength": 1},
      "PortId": {"type": "string"},
      "PortProtocol": {"type": "string"},
      "CurrentSpeedGbps": {"type": "number", "minimum": 0},
      "MaxSpeedGbps": {"type": "number", "minimum": 0},
      "Width": {"type": "integer", "minimum": 0},
      "LinkState": {"type": "string", "enum": ["Enabled", "Disabled"]},
      "LinkStatus": {"type": "string", "enum": ["LinkUp", "LinkDown", "NoLink"]},
      "Status": {"$ref": "#/$defs/Status"},
      "Links": {"type": "object"},
      "Oem": {"type": "object"}
    }
  })"));

  registry.Register("ComputerSystem", WithCommonDefs(R"({
    "type": "object",
    "required": ["Name"],
    "properties": {
      "Id": {"type": "string", "readonly": true},
      "Name": {"type": "string", "minLength": 1},
      "SystemType": {"type": "string",
        "enum": ["Physical", "Virtual", "Composed", "OS", "PhysicallyPartitioned"]},
      "PowerState": {"type": "string", "enum": ["On", "Off", "PoweringOn", "PoweringOff"]},
      "ProcessorSummary": {"type": "object", "properties": {
        "Count": {"type": "integer", "minimum": 0},
        "CoreCount": {"type": "integer", "minimum": 0},
        "Model": {"type": "string"}
      }},
      "MemorySummary": {"type": "object", "properties": {
        "TotalSystemMemoryGiB": {"type": "number", "minimum": 0}
      }},
      "Status": {"$ref": "#/$defs/Status"},
      "Links": {"type": "object"},
      "Boot": {"type": "object"},
      "HostName": {"type": "string"},
      "Oem": {"type": "object"}
    }
  })"));

  registry.Register("Chassis", WithCommonDefs(R"({
    "type": "object",
    "required": ["Name", "ChassisType"],
    "properties": {
      "Id": {"type": "string", "readonly": true},
      "Name": {"type": "string", "minLength": 1},
      "ChassisType": {"type": "string",
        "enum": ["Rack", "Blade", "Enclosure", "Sled", "Drawer", "Module", "Expansion"]},
      "Manufacturer": {"type": "string"},
      "Model": {"type": "string"},
      "PowerState": {"type": "string", "enum": ["On", "Off"]},
      "Status": {"$ref": "#/$defs/Status"},
      "Links": {"type": "object"},
      "Oem": {"type": "object"}
    }
  })"));

  registry.Register("Processor", WithCommonDefs(R"({
    "type": "object",
    "required": ["Name"],
    "properties": {
      "Id": {"type": "string", "readonly": true},
      "Name": {"type": "string"},
      "ProcessorType": {"type": "string",
        "enum": ["CPU", "GPU", "FPGA", "DSP", "Accelerator", "Core", "Thread"]},
      "TotalCores": {"type": "integer", "minimum": 0},
      "TotalThreads": {"type": "integer", "minimum": 0},
      "MaxSpeedMHz": {"type": "number", "minimum": 0},
      "Manufacturer": {"type": "string"},
      "Model": {"type": "string"},
      "Status": {"$ref": "#/$defs/Status"},
      "Oem": {"type": "object"}
    }
  })"));

  registry.Register("Memory", WithCommonDefs(R"({
    "type": "object",
    "required": ["Name"],
    "properties": {
      "Id": {"type": "string", "readonly": true},
      "Name": {"type": "string"},
      "MemoryType": {"type": "string", "enum": ["DRAM", "NVDIMM_N", "NVDIMM_F", "CXL", "HBM"]},
      "CapacityMiB": {"type": "integer", "minimum": 0},
      "AllocatedMiB": {"type": "integer", "minimum": 0},
      "OperatingSpeedMhz": {"type": "integer", "minimum": 0},
      "Status": {"$ref": "#/$defs/Status"},
      "Oem": {"type": "object"}
    }
  })"));

  registry.Register("StorageService", WithCommonDefs(R"({
    "type": "object",
    "required": ["Name"],
    "properties": {
      "Id": {"type": "string", "readonly": true},
      "Name": {"type": "string"},
      "Status": {"$ref": "#/$defs/Status"},
      "StoragePools": {"type": "object"},
      "Volumes": {"type": "object"},
      "Endpoints": {"type": "object"},
      "Oem": {"type": "object"}
    }
  })"));

  registry.Register("StoragePool", WithCommonDefs(R"({
    "type": "object",
    "required": ["Name", "Capacity"],
    "properties": {
      "Id": {"type": "string", "readonly": true},
      "Name": {"type": "string"},
      "Capacity": {"type": "object", "required": ["Data"], "properties": {
        "Data": {"type": "object", "properties": {
          "AllocatedBytes": {"type": "integer", "minimum": 0},
          "ConsumedBytes": {"type": "integer", "minimum": 0},
          "GuaranteedBytes": {"type": "integer", "minimum": 0}
        }}
      }},
      "SupportedRAIDTypes": {"type": "array", "items": {"type": "string"}},
      "Status": {"$ref": "#/$defs/Status"},
      "Oem": {"type": "object"}
    }
  })"));

  registry.Register("Volume", WithCommonDefs(R"({
    "type": "object",
    "required": ["Name", "CapacityBytes"],
    "properties": {
      "Id": {"type": "string", "readonly": true},
      "Name": {"type": "string"},
      "CapacityBytes": {"type": "integer", "minimum": 0},
      "RAIDType": {"type": "string",
        "enum": ["RAID0", "RAID1", "RAID5", "RAID6", "RAID10", "None"]},
      "AccessCapabilities": {"type": "array",
        "items": {"type": "string", "enum": ["Read", "Write", "WriteOnce", "Append"]}},
      "OptimumIOSizeBytes": {"type": "integer", "minimum": 0},
      "Status": {"$ref": "#/$defs/Status"},
      "Links": {"type": "object"},
      "Oem": {"type": "object"}
    }
  })"));

  registry.Register("EventDestination", WithCommonDefs(R"({
    "type": "object",
    "required": ["Destination", "Protocol"],
    "properties": {
      "Id": {"type": "string", "readonly": true},
      "Name": {"type": "string"},
      "Destination": {"type": "string", "minLength": 1},
      "Protocol": {"type": "string", "enum": ["Redfish", "SNMPv2c", "SyslogTCP", "OEM"]},
      "EventTypes": {"type": "array", "items": {"type": "string",
        "enum": ["StatusChange", "ResourceUpdated", "ResourceAdded",
                 "ResourceRemoved", "Alert", "MetricReport"]}},
      "Context": {"type": "string"},
      "SubscriptionType": {"type": "string", "enum": ["RedfishEvent", "SSE", "OEM"]},
      "Status": {"$ref": "#/$defs/Status"},
      "Oem": {"type": "object"}
    }
  })"));

  registry.Register("Session", WithCommonDefs(R"({
    "type": "object",
    "required": ["UserName"],
    "properties": {
      "Id": {"type": "string", "readonly": true},
      "Name": {"type": "string"},
      "UserName": {"type": "string", "minLength": 1},
      "Password": {"type": "string"},
      "Oem": {"type": "object"}
    }
  })"));

  registry.Register("ResourceBlock", WithCommonDefs(R"({
    "type": "object",
    "required": ["Name"],
    "properties": {
      "Id": {"type": "string", "readonly": true},
      "Name": {"type": "string"},
      "ResourceBlockType": {"type": "array", "items": {"type": "string",
        "enum": ["Compute", "Processor", "Memory", "Network", "Storage", "Expansion"]}},
      "CompositionStatus": {"type": "object", "properties": {
        "CompositionState": {"type": "string",
          "enum": ["Composed", "ComposedAndAvailable", "Composing", "Failed",
                   "Unused", "Unavailable"]},
        "Reserved": {"type": "boolean"},
        "MaxCompositions": {"type": "integer", "minimum": 0},
        "NumberOfCompositions": {"type": "integer", "minimum": 0}
      }},
      "Status": {"$ref": "#/$defs/Status"},
      "Links": {"type": "object"},
      "Oem": {"type": "object"}
    }
  })"));

  return registry;
}

}  // namespace ofmf::redfish
