// Schema registry: maps a Redfish @odata.type tag (or its bare type name) to
// a SchemaValidator. POST/PATCH bodies are validated before they touch the
// tree; PATCHes additionally honour "readonly" annotations.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "json/schema.hpp"

namespace ofmf::redfish {

class SchemaRegistry {
 public:
  /// Registry pre-loaded with the built-in Redfish/Swordfish schema subset
  /// used by the OFMF model (Fabric, Endpoint, Zone, Connection, Switch,
  /// Port, ComputerSystem, Chassis, Processor, Memory, StorageService,
  /// StoragePool, Volume, EventDestination, Session, ResourceBlock).
  static SchemaRegistry BuiltIn();

  /// Registers/overrides a schema for `type_name` (bare name, no version).
  void Register(const std::string& type_name, json::Json schema);

  /// Validator for a type ("Fabric" or "#Fabric.v1_3_0.Fabric"); nullptr if
  /// unknown.
  const json::SchemaValidator* Find(const std::string& type) const;

  /// Validates `body` against the schema for `type`; unknown types pass
  /// (Redfish forgiveness for OEM extensions).
  Status ValidateCreate(const std::string& type, const json::Json& body) const;

  /// PATCH check: schema validation of present members + readonly rejection.
  Status ValidatePatch(const std::string& type, const json::Json& body) const;

  std::vector<std::string> TypeNames() const;

 private:
  static std::string BareName(const std::string& type);
  std::map<std::string, std::unique_ptr<json::SchemaValidator>> validators_;
};

}  // namespace ofmf::redfish
