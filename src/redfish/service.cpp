#include "redfish/service.hpp"

#include "common/strings.hpp"
#include "common/trace.hpp"
#include "http/uri.hpp"
#include "http/wire.hpp"
#include "json/serialize.hpp"
#include "odata/annotations.hpp"
#include "odata/filter.hpp"
#include "odata/query.hpp"
#include "redfish/errors.hpp"

namespace ofmf::redfish {
namespace {

/// "/a/b/Actions/Ns.Action" -> {"/a/b", "Ns.Action"}; nullopt otherwise.
std::optional<std::pair<std::string, std::string>> SplitActionTarget(
    const std::string& path) {
  const std::size_t marker = path.rfind("/Actions/");
  if (marker == std::string::npos) return std::nullopt;
  std::string resource = path.substr(0, marker);
  std::string action = path.substr(marker + 9);
  if (action.empty()) return std::nullopt;
  if (resource.empty()) resource = "/";
  return std::make_pair(resource, action);
}

bool IsCollection(const json::Json& doc) {
  const json::Json* members =
      doc.is_object() ? doc.as_object().Find("Members") : nullptr;
  return members != nullptr && members->is_array();
}

/// RFC 9110 If-None-Match: comma-separated list of entity tags, or "*".
bool ETagMatches(const std::string& if_none_match, const std::string& etag) {
  if (etag.empty()) return false;
  if (strings::Trim(if_none_match) == "*") return true;
  std::size_t pos = 0;
  while (pos <= if_none_match.size()) {
    std::size_t comma = if_none_match.find(',', pos);
    if (comma == std::string::npos) comma = if_none_match.size();
    if (strings::Trim(std::string_view(if_none_match).substr(pos, comma - pos)) == etag) {
      return true;
    }
    pos = comma + 1;
  }
  return false;
}

http::Response NotModifiedResponse(const std::string& etag) {
  http::Response not_modified = http::MakeEmptyResponse(304);
  not_modified.headers.Set("ETag", etag);
  return not_modified;
}

void SetGetHeaders(http::Response& response, const std::string& etag) {
  if (!etag.empty()) response.headers.Set("ETag", etag);
  response.headers.Set("OData-Version", "4.0");
  response.headers.Set("Allow", "GET, HEAD, POST, PATCH, PUT, DELETE");
}

}  // namespace

RedfishService::RedfishService(ResourceTree& tree, SchemaRegistry registry)
    : tree_(tree), registry_(std::move(registry)) {
  cache_subscription_ = tree_.Subscribe(
      [this](const ChangeEvent& event) { cache_.Invalidate(event.uri); });
}

RedfishService::~RedfishService() { tree_.Unsubscribe(cache_subscription_); }

void RedfishService::RegisterFactory(const std::string& collection_uri,
                                     const std::string& type, Factory factory) {
  factories_[http::NormalizePath(collection_uri)] = {type, std::move(factory)};
}

void RedfishService::RegisterAction(const std::string& action_name, ActionHandler handler) {
  actions_[action_name] = std::move(handler);
}

void RedfishService::RegisterDeleteHook(const std::string& prefix, DeleteHook hook) {
  delete_hooks_[http::NormalizePath(prefix)] = std::move(hook);
}

std::string RedfishService::TypeOf(const std::string& uri) const {
  Result<json::Json> doc = tree_.Get(uri);
  if (!doc.ok()) return "";
  return doc->GetString("@odata.type");
}

http::Response RedfishService::Handle(const http::Request& request) {
  trace::Span span("rest.handle");
  if (span.active()) {
    span.Note(std::string(http::to_string(request.method)) + " " + request.path);
  }
  if (middleware_) {
    if (std::optional<http::Response> early = middleware_(request)) return *early;
  }
  switch (request.method) {
    case http::Method::kGet: return HandleGet(request);
    case http::Method::kHead: return HandleHead(request);
    case http::Method::kPost: return HandlePost(request);
    case http::Method::kPatch: return HandlePatch(request);
    case http::Method::kPut: return HandlePut(request);
    case http::Method::kDelete: return HandleDelete(request);
    default:
      return ErrorResponse(405, "Base.1.0.ActionNotSupported",
                           "method not supported by this service");
  }
}

Result<json::Json> RedfishService::BuildGetPayload(const std::string& path,
                                                   const ResourceTree::SnapshotPtr& snapshot,
                                                   const odata::QueryOptions& options,
                                                   bool& cacheable) {
  cacheable = true;
  json::Json payload = snapshot->payload;
  odata::Stamp(payload, path, snapshot->odata_type, snapshot->etag);

  if (IsCollection(payload)) {
    // Member documents pulled into the body from outside this collection's
    // subtree escape ancestor-based invalidation; such bodies stay uncached.
    const std::string subtree = path + "/";
    const auto covered = [&](const std::string& member_uri) {
      return strings::StartsWith(member_uri, subtree);
    };
    // $filter: evaluate against each member's full document.
    if (!options.filter.empty()) {
      auto filter = odata::Filter::Compile(options.filter);
      if (!filter.ok()) return filter.status();
      json::Json* members = payload.as_object().Find("Members");
      json::Array kept;
      for (const json::Json& entry : members->as_array()) {
        const std::string member_uri = odata::IdOf(entry);
        if (!covered(member_uri)) cacheable = false;
        Result<json::Json> member_doc = tree_.Get(member_uri);
        if (member_doc.ok() && filter->Matches(*member_doc)) kept.push_back(entry);
      }
      members->as_array() = std::move(kept);
    }
    odata::ApplyPaging(payload, options, path);
    if (options.expand) {
      odata::ApplyExpand(payload, [&](const std::string& uri) {
        if (!covered(uri)) cacheable = false;
        return tree_.Get(uri);
      });
    }
  }
  odata::ApplySelect(payload, options.select);
  return payload;
}

http::Response RedfishService::HandleGet(const http::Request& request) {
  const std::string path = http::NormalizePath(request.path);
  // Generation fence *before* the snapshot: an invalidation racing this read
  // rejects the cache insert below, so a cached body always matches the
  // member state its ETag was current for.
  const std::uint64_t read_generation = cache_.BeginRead(path);
  const ResourceTree::SnapshotPtr snapshot = tree_.GetSnapshot(path);
  if (snapshot == nullptr) return ErrorResponse(Status::NotFound("no resource at " + path));

  auto options = odata::ParseQueryOptions(request.query);
  if (!options.ok()) return ErrorResponse(options.status());

  const std::string& etag = snapshot->etag;

  const std::string query = NormalizeQuery(request.query);

  // Conditional GET: a cache hit answers with the pre-serialized 304 head.
  const std::string if_none_match = request.headers.GetOr("If-None-Match", "");
  if (!if_none_match.empty() && ETagMatches(if_none_match, etag)) {
    http::Response not_modified = NotModifiedResponse(etag);
    if (std::optional<CachedResponse> cached = cache_.Lookup(path, etag, query)) {
      not_modified.set_wire_head(cached->head304);
    }
    return not_modified;
  }

  if (std::optional<CachedResponse> cached = cache_.Lookup(path, etag, query)) {
    // Zero-copy hit: the response views the cached slab, and the attached
    // head slab means the transport serializes nothing. The header map is
    // still populated for in-process callers.
    http::Response response;
    response.status = 200;
    response.body = http::Body(cached->body);
    response.headers.Set("Content-Type", "application/json");
    SetGetHeaders(response, etag);
    response.set_wire_head(cached->head200);
    return response;
  }

  bool cacheable = true;
  Result<json::Json> payload = BuildGetPayload(path, snapshot, *options, cacheable);
  if (!payload.ok()) return ErrorResponse(payload.status());

  auto body_slab = std::make_shared<const std::string>(json::Serialize(*payload));

  http::Response response;
  response.status = 200;
  response.body = http::Body(body_slab);
  response.headers.Set("Content-Type", "application/json");
  SetGetHeaders(response, etag);
  auto head200 = std::make_shared<const std::string>(
      http::SerializeResponseHead(response, body_slab->size()));
  if (cacheable) {
    const http::Response not_modified = NotModifiedResponse(etag);
    auto head304 = std::make_shared<const std::string>(
        http::SerializeResponseHead(not_modified, 0));
    cache_.Insert(path, etag, query, CachedResponse{body_slab, head200, head304},
                  read_generation);
  }
  response.set_wire_head(std::move(head200));
  return response;
}

http::Response RedfishService::HandleHead(const http::Request& request) {
  const std::string path = http::NormalizePath(request.path);
  const ResourceTree::SnapshotPtr snapshot = tree_.GetSnapshot(path);
  if (snapshot == nullptr) {
    http::Response error = ErrorResponse(Status::NotFound("no resource at " + path));
    error.body.clear();
    return error;
  }
  auto options = odata::ParseQueryOptions(request.query);
  if (!options.ok()) {
    http::Response error = ErrorResponse(options.status());
    error.body.clear();
    return error;
  }
  const std::string& etag = snapshot->etag;
  const std::string if_none_match = request.headers.GetOr("If-None-Match", "");
  if (!if_none_match.empty() && ETagMatches(if_none_match, etag)) {
    return NotModifiedResponse(etag);
  }

  // Answer from the cached serialized form when possible: Content-Length
  // without building or serializing a body that would be thrown away.
  const std::string query = NormalizeQuery(request.query);
  std::size_t content_length = 0;
  if (std::optional<CachedResponse> cached = cache_.Lookup(path, etag, query)) {
    content_length = cached->body->size();
  } else {
    http::Request as_get = request;
    as_get.method = http::Method::kGet;
    http::Response full = HandleGet(as_get);  // also seeds the cache
    if (full.status != 200) {
      full.body.clear();
      return full;
    }
    content_length = full.body.size();
  }
  http::Response response;
  response.status = 200;
  response.headers.Set("Content-Type", "application/json");
  response.headers.Set("Content-Length", std::to_string(content_length));
  SetGetHeaders(response, etag);
  return response;
}

http::Response RedfishService::HandlePost(const http::Request& request) {
  // Action invocation?
  if (auto action_target = SplitActionTarget(request.path)) {
    const auto& [resource_uri, action_name] = *action_target;
    auto it = actions_.find(action_name);
    if (it == actions_.end()) {
      return ErrorResponse(400, "Base.1.0.ActionNotSupported",
                           "unknown action: " + action_name);
    }
    if (!tree_.Exists(resource_uri)) {
      return ErrorResponse(Status::NotFound("no resource at " + resource_uri));
    }
    json::Json body = json::Json::MakeObject();
    if (!request.body.empty()) {
      Result<json::Json> parsed = request.JsonBody();
      if (!parsed.ok()) return ErrorResponse(parsed.status());
      body = std::move(*parsed);
    }
    return it->second(resource_uri, body);
  }

  // Creation via collection factory.
  auto factory_it = factories_.find(http::NormalizePath(request.path));
  if (factory_it == factories_.end()) {
    if (!tree_.Exists(request.path)) {
      return ErrorResponse(Status::NotFound("no resource at " + request.path));
    }
    return ErrorResponse(405, "Base.1.0.ActionNotSupported",
                         "resource does not support POST");
  }
  Result<json::Json> body = [&] {
    trace::Span parse_span("rest.parse");
    return request.JsonBody();
  }();
  if (!body.ok()) return ErrorResponse(body.status());

  const auto& [type, factory] = factory_it->second;
  if (!type.empty()) {
    const Status valid = registry_.ValidateCreate(type, *body);
    if (!valid.ok()) return ErrorResponse(valid);
  }
  Result<std::string> created_uri = [&] {
    trace::Span create_span("rest.create");
    if (create_span.active()) create_span.Note(request.path);
    return factory(*body);
  }();
  if (!created_uri.ok()) return ErrorResponse(created_uri.status());

  Result<json::Json> created = tree_.Get(*created_uri);
  http::Response response =
      http::MakeJsonResponse(201, created.ok() ? *created : json::Json::MakeObject());
  response.headers.Set("Location", *created_uri);
  return response;
}

http::Response RedfishService::HandlePatch(const http::Request& request) {
  if (!tree_.Exists(request.path)) {
    return ErrorResponse(Status::NotFound("no resource at " + request.path));
  }
  Result<json::Json> body = request.JsonBody();
  if (!body.ok()) return ErrorResponse(body.status());

  const std::string type = TypeOf(request.path);
  const Status valid = registry_.ValidatePatch(type, *body);
  if (!valid.ok()) return ErrorResponse(valid);

  const Status patched =
      tree_.Patch(request.path, *body, request.headers.GetOr("If-Match", ""));
  if (!patched.ok()) return ErrorResponse(patched);

  Result<json::Json> updated = tree_.Get(request.path);
  http::Response response = http::MakeJsonResponse(200, *updated);
  response.headers.Set("ETag", updated->GetString("@odata.etag"));
  return response;
}

http::Response RedfishService::HandlePut(const http::Request& request) {
  if (!tree_.Exists(request.path)) {
    return ErrorResponse(Status::NotFound("no resource at " + request.path));
  }
  Result<json::Json> body = request.JsonBody();
  if (!body.ok()) return ErrorResponse(body.status());
  const std::string type = TypeOf(request.path);
  const Status valid = registry_.ValidateCreate(type, *body);
  if (!valid.ok()) return ErrorResponse(valid);
  const Status replaced = tree_.Replace(request.path, std::move(*body));
  if (!replaced.ok()) return ErrorResponse(replaced);
  return http::MakeJsonResponse(200, *tree_.Get(request.path));
}

http::Response RedfishService::HandleDelete(const http::Request& request) {
  const std::string path = http::NormalizePath(request.path);
  if (!tree_.Exists(path)) {
    return ErrorResponse(Status::NotFound("no resource at " + path));
  }
  // Longest-prefix delete hook wins.
  const DeleteHook* hook = nullptr;
  std::size_t best_len = 0;
  for (const auto& [prefix, candidate] : delete_hooks_) {
    if (strings::StartsWith(path, prefix) && prefix.size() >= best_len) {
      hook = &candidate;
      best_len = prefix.size();
    }
  }
  if (hook != nullptr) {
    const Status allowed = (*hook)(path);
    if (!allowed.ok()) return ErrorResponse(allowed);
    // The hook may have deleted the resource (plus dependents) itself.
    if (!tree_.Exists(path)) return http::MakeEmptyResponse(204);
  }
  const Status deleted = tree_.Delete(path);
  if (!deleted.ok()) return ErrorResponse(deleted);
  return http::MakeEmptyResponse(204);
}

}  // namespace ofmf::redfish
