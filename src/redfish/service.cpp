#include "redfish/service.hpp"

#include "common/strings.hpp"
#include "http/uri.hpp"
#include "odata/annotations.hpp"
#include "odata/filter.hpp"
#include "odata/query.hpp"
#include "redfish/errors.hpp"

namespace ofmf::redfish {
namespace {

/// "/a/b/Actions/Ns.Action" -> {"/a/b", "Ns.Action"}; nullopt otherwise.
std::optional<std::pair<std::string, std::string>> SplitActionTarget(
    const std::string& path) {
  const std::size_t marker = path.rfind("/Actions/");
  if (marker == std::string::npos) return std::nullopt;
  std::string resource = path.substr(0, marker);
  std::string action = path.substr(marker + 9);
  if (action.empty()) return std::nullopt;
  if (resource.empty()) resource = "/";
  return std::make_pair(resource, action);
}

bool IsCollection(const json::Json& doc) {
  const json::Json* members =
      doc.is_object() ? doc.as_object().Find("Members") : nullptr;
  return members != nullptr && members->is_array();
}

}  // namespace

RedfishService::RedfishService(ResourceTree& tree, SchemaRegistry registry)
    : tree_(tree), registry_(std::move(registry)) {}

void RedfishService::RegisterFactory(const std::string& collection_uri,
                                     const std::string& type, Factory factory) {
  factories_[http::NormalizePath(collection_uri)] = {type, std::move(factory)};
}

void RedfishService::RegisterAction(const std::string& action_name, ActionHandler handler) {
  actions_[action_name] = std::move(handler);
}

void RedfishService::RegisterDeleteHook(const std::string& prefix, DeleteHook hook) {
  delete_hooks_[http::NormalizePath(prefix)] = std::move(hook);
}

std::string RedfishService::TypeOf(const std::string& uri) const {
  Result<json::Json> doc = tree_.Get(uri);
  if (!doc.ok()) return "";
  return doc->GetString("@odata.type");
}

http::Response RedfishService::Handle(const http::Request& request) {
  if (middleware_) {
    if (std::optional<http::Response> early = middleware_(request)) return *early;
  }
  switch (request.method) {
    case http::Method::kGet: return HandleGet(request);
    case http::Method::kHead: return HandleHead(request);
    case http::Method::kPost: return HandlePost(request);
    case http::Method::kPatch: return HandlePatch(request);
    case http::Method::kPut: return HandlePut(request);
    case http::Method::kDelete: return HandleDelete(request);
    default:
      return ErrorResponse(405, "Base.1.0.ActionNotSupported",
                           "method not supported by this service");
  }
}

http::Response RedfishService::HandleGet(const http::Request& request) {
  Result<json::Json> doc = tree_.Get(request.path);
  if (!doc.ok()) return ErrorResponse(doc.status());

  auto options = odata::ParseQueryOptions(request.query);
  if (!options.ok()) return ErrorResponse(options.status());

  json::Json payload = std::move(*doc);
  const std::string etag = payload.GetString("@odata.etag");

  // Conditional GET.
  const std::string if_none_match = request.headers.GetOr("If-None-Match", "");
  if (!if_none_match.empty() && if_none_match == etag) {
    http::Response not_modified = http::MakeEmptyResponse(304);
    not_modified.headers.Set("ETag", etag);
    return not_modified;
  }

  if (IsCollection(payload)) {
    // $filter: evaluate against each member's full document.
    if (!options->filter.empty()) {
      auto filter = odata::Filter::Compile(options->filter);
      if (!filter.ok()) return ErrorResponse(filter.status());
      json::Json* members = payload.as_object().Find("Members");
      json::Array kept;
      for (const json::Json& entry : members->as_array()) {
        Result<json::Json> member_doc = tree_.Get(odata::IdOf(entry));
        if (member_doc.ok() && filter->Matches(*member_doc)) kept.push_back(entry);
      }
      members->as_array() = std::move(kept);
    }
    odata::ApplyPaging(payload, *options, request.path);
    if (options->expand) {
      odata::ApplyExpand(payload,
                         [this](const std::string& uri) { return tree_.Get(uri); });
    }
  }
  odata::ApplySelect(payload, options->select);

  http::Response response = http::MakeJsonResponse(200, payload);
  if (!etag.empty()) response.headers.Set("ETag", etag);
  response.headers.Set("OData-Version", "4.0");
  response.headers.Set("Allow", "GET, HEAD, POST, PATCH, PUT, DELETE");
  return response;
}

http::Response RedfishService::HandleHead(const http::Request& request) {
  http::Request as_get = request;
  as_get.method = http::Method::kGet;
  http::Response response = HandleGet(as_get);
  response.body.clear();
  return response;
}

http::Response RedfishService::HandlePost(const http::Request& request) {
  // Action invocation?
  if (auto action_target = SplitActionTarget(request.path)) {
    const auto& [resource_uri, action_name] = *action_target;
    auto it = actions_.find(action_name);
    if (it == actions_.end()) {
      return ErrorResponse(400, "Base.1.0.ActionNotSupported",
                           "unknown action: " + action_name);
    }
    if (!tree_.Exists(resource_uri)) {
      return ErrorResponse(Status::NotFound("no resource at " + resource_uri));
    }
    json::Json body = json::Json::MakeObject();
    if (!request.body.empty()) {
      Result<json::Json> parsed = request.JsonBody();
      if (!parsed.ok()) return ErrorResponse(parsed.status());
      body = std::move(*parsed);
    }
    return it->second(resource_uri, body);
  }

  // Creation via collection factory.
  auto factory_it = factories_.find(http::NormalizePath(request.path));
  if (factory_it == factories_.end()) {
    if (!tree_.Exists(request.path)) {
      return ErrorResponse(Status::NotFound("no resource at " + request.path));
    }
    return ErrorResponse(405, "Base.1.0.ActionNotSupported",
                         "resource does not support POST");
  }
  Result<json::Json> body = request.JsonBody();
  if (!body.ok()) return ErrorResponse(body.status());

  const auto& [type, factory] = factory_it->second;
  if (!type.empty()) {
    const Status valid = registry_.ValidateCreate(type, *body);
    if (!valid.ok()) return ErrorResponse(valid);
  }
  Result<std::string> created_uri = factory(*body);
  if (!created_uri.ok()) return ErrorResponse(created_uri.status());

  Result<json::Json> created = tree_.Get(*created_uri);
  http::Response response =
      http::MakeJsonResponse(201, created.ok() ? *created : json::Json::MakeObject());
  response.headers.Set("Location", *created_uri);
  return response;
}

http::Response RedfishService::HandlePatch(const http::Request& request) {
  if (!tree_.Exists(request.path)) {
    return ErrorResponse(Status::NotFound("no resource at " + request.path));
  }
  Result<json::Json> body = request.JsonBody();
  if (!body.ok()) return ErrorResponse(body.status());

  const std::string type = TypeOf(request.path);
  const Status valid = registry_.ValidatePatch(type, *body);
  if (!valid.ok()) return ErrorResponse(valid);

  const Status patched =
      tree_.Patch(request.path, *body, request.headers.GetOr("If-Match", ""));
  if (!patched.ok()) return ErrorResponse(patched);

  Result<json::Json> updated = tree_.Get(request.path);
  http::Response response = http::MakeJsonResponse(200, *updated);
  response.headers.Set("ETag", updated->GetString("@odata.etag"));
  return response;
}

http::Response RedfishService::HandlePut(const http::Request& request) {
  if (!tree_.Exists(request.path)) {
    return ErrorResponse(Status::NotFound("no resource at " + request.path));
  }
  Result<json::Json> body = request.JsonBody();
  if (!body.ok()) return ErrorResponse(body.status());
  const std::string type = TypeOf(request.path);
  const Status valid = registry_.ValidateCreate(type, *body);
  if (!valid.ok()) return ErrorResponse(valid);
  const Status replaced = tree_.Replace(request.path, std::move(*body));
  if (!replaced.ok()) return ErrorResponse(replaced);
  return http::MakeJsonResponse(200, *tree_.Get(request.path));
}

http::Response RedfishService::HandleDelete(const http::Request& request) {
  const std::string path = http::NormalizePath(request.path);
  if (!tree_.Exists(path)) {
    return ErrorResponse(Status::NotFound("no resource at " + path));
  }
  // Longest-prefix delete hook wins.
  const DeleteHook* hook = nullptr;
  std::size_t best_len = 0;
  for (const auto& [prefix, candidate] : delete_hooks_) {
    if (strings::StartsWith(path, prefix) && prefix.size() >= best_len) {
      hook = &candidate;
      best_len = prefix.size();
    }
  }
  if (hook != nullptr) {
    const Status allowed = (*hook)(path);
    if (!allowed.ok()) return ErrorResponse(allowed);
    // The hook may have deleted the resource (plus dependents) itself.
    if (!tree_.Exists(path)) return http::MakeEmptyResponse(204);
  }
  const Status deleted = tree_.Delete(path);
  if (!deleted.ok()) return ErrorResponse(deleted);
  return http::MakeEmptyResponse(204);
}

}  // namespace ofmf::redfish
