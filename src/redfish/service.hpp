// Generic Redfish protocol service over a ResourceTree: GET with OData query
// options, PATCH (merge semantics, schema + readonly + If-Match), PUT,
// DELETE, POST-to-collection via registered factories, and POST actions.
// The OFMF layers its services (sessions, events, tasks, aggregation,
// composition) on top of this dispatcher.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>

#include "http/message.hpp"
#include "http/server.hpp"
#include "odata/query.hpp"
#include "redfish/cache.hpp"
#include "redfish/schemas.hpp"
#include "redfish/tree.hpp"

namespace ofmf::redfish {

/// Creates a resource from a POST body; returns the new resource URI.
using Factory = std::function<Result<std::string>(const json::Json& body)>;

/// Handles a Redfish action invocation (POST <uri>/Actions/<Name>).
using ActionHandler =
    std::function<http::Response(const std::string& resource_uri, const json::Json& body)>;

/// Runs before normal dispatch; a returned response short-circuits (auth).
using Middleware = std::function<std::optional<http::Response>(const http::Request&)>;

/// Veto/augment hook run before a DELETE is applied to the tree.
using DeleteHook = std::function<Status(const std::string& uri)>;

class RedfishService {
 public:
  RedfishService(ResourceTree& tree, SchemaRegistry registry);
  ~RedfishService();
  RedfishService(const RedfishService&) = delete;
  RedfishService& operator=(const RedfishService&) = delete;

  /// POST to `collection_uri` creates via `factory` (factory owns tree
  /// writes; service validates against `type` first when non-empty).
  void RegisterFactory(const std::string& collection_uri, const std::string& type,
                       Factory factory);

  /// POST <resource>/Actions/<action_name> dispatches to `handler`.
  /// `action_name` is the qualified name, e.g. "ComposeService.Compose".
  void RegisterAction(const std::string& action_name, ActionHandler handler);

  /// DELETE on URIs under `prefix` first consults `hook` (non-OK vetoes).
  void RegisterDeleteHook(const std::string& prefix, DeleteHook hook);

  void SetMiddleware(Middleware middleware) { middleware_ = std::move(middleware); }

  /// The full protocol entry point.
  http::Response Handle(const http::Request& request);

  /// Adapter for transports.
  http::ServerHandler Handler() {
    return [this](const http::Request& request) { return Handle(request); };
  }

  ResourceTree& tree() { return tree_; }
  const SchemaRegistry& schemas() const { return registry_; }

  /// Serialized-response cache on the GET/HEAD path (invalidated via the
  /// tree's change listener; disable for uncached baselines).
  ResponseCache& response_cache() { return cache_; }
  const ResponseCache& response_cache() const { return cache_; }

 private:
  http::Response HandleGet(const http::Request& request);
  http::Response HandleHead(const http::Request& request);
  http::Response HandlePost(const http::Request& request);
  http::Response HandlePatch(const http::Request& request);
  http::Response HandlePut(const http::Request& request);
  http::Response HandleDelete(const http::Request& request);

  /// Type tag of a tree resource ("" when absent).
  std::string TypeOf(const std::string& uri) const;

  /// Builds the stamped (and query-shaped) document for a GET of `snapshot`;
  /// sets `cacheable` false when the body embeds state from outside the
  /// resource's own subtree (then ancestor invalidation cannot cover it).
  Result<json::Json> BuildGetPayload(const std::string& path,
                                     const ResourceTree::SnapshotPtr& snapshot,
                                     const odata::QueryOptions& options,
                                     bool& cacheable);

  ResourceTree& tree_;
  SchemaRegistry registry_;
  ResponseCache cache_;
  std::uint64_t cache_subscription_ = 0;
  std::map<std::string, std::pair<std::string, Factory>> factories_;
  std::map<std::string, ActionHandler> actions_;
  std::map<std::string, DeleteHook> delete_hooks_;
  Middleware middleware_;
};

}  // namespace ofmf::redfish
