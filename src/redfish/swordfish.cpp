#include "redfish/swordfish.hpp"

#include "json/pointer.hpp"

namespace ofmf::redfish::swordfish {

json::Json StorageService(const std::string& id, const std::string& name,
                          const std::string& self_uri) {
  return json::Json::Obj({
      {"Id", id},
      {"Name", name},
      {"Status", json::Json::Obj({{"State", "Enabled"}, {"Health", "OK"}})},
      {"StoragePools", json::Json::Obj({{"@odata.id", self_uri + "/StoragePools"}})},
      {"Volumes", json::Json::Obj({{"@odata.id", self_uri + "/Volumes"}})},
      {"Endpoints", json::Json::Obj({{"@odata.id", self_uri + "/Endpoints"}})},
  });
}

json::Json StoragePool(const std::string& name, std::uint64_t allocated_bytes,
                       std::uint64_t consumed_bytes) {
  return json::Json::Obj({
      {"Name", name},
      {"Capacity",
       json::Json::Obj({{"Data", json::Json::Obj({
                                     {"AllocatedBytes",
                                      static_cast<std::int64_t>(allocated_bytes)},
                                     {"ConsumedBytes",
                                      static_cast<std::int64_t>(consumed_bytes)},
                                 })}})},
      {"Status", json::Json::Obj({{"State", "Enabled"}, {"Health", "OK"}})},
  });
}

json::Json Volume(const std::string& name, std::uint64_t capacity_bytes,
                  const std::string& raid_type) {
  return json::Json::Obj({
      {"Name", name},
      {"CapacityBytes", static_cast<std::int64_t>(capacity_bytes)},
      {"RAIDType", raid_type},
      {"AccessCapabilities", json::Json::Arr({"Read", "Write"})},
      {"Status", json::Json::Obj({{"State", "Enabled"}, {"Health", "OK"}})},
  });
}

void SetPoolConsumed(json::Json& pool, std::uint64_t consumed_bytes) {
  (void)json::SetPointer(pool, "/Capacity/Data/ConsumedBytes",
                         static_cast<std::int64_t>(consumed_bytes));
}

std::uint64_t PoolAllocatedBytes(const json::Json& pool) {
  const json::Json* value = json::ResolvePointerRef(pool, "/Capacity/Data/AllocatedBytes");
  if (value == nullptr || !value->is_int()) return 0;
  return static_cast<std::uint64_t>(value->as_int());
}

std::uint64_t PoolConsumedBytes(const json::Json& pool) {
  const json::Json* value = json::ResolvePointerRef(pool, "/Capacity/Data/ConsumedBytes");
  if (value == nullptr || !value->is_int()) return 0;
  return static_cast<std::uint64_t>(value->as_int());
}

}  // namespace ofmf::redfish::swordfish
