// SNIA Swordfish payload builders. The paper's OFMF "implements Redfish and
// Swordfish through the implementation of a Swordfish Endpoint Emulator";
// these helpers are how the storage agents and the BeeOND-backed storage
// service publish their inventory into the tree.
#pragma once

#include <cstdint>
#include <string>

#include "json/value.hpp"

namespace ofmf::redfish::swordfish {

/// StorageService payload (children wired as collection refs by the caller).
json::Json StorageService(const std::string& id, const std::string& name,
                          const std::string& self_uri);

/// StoragePool with a Capacity.Data block.
json::Json StoragePool(const std::string& name, std::uint64_t allocated_bytes,
                       std::uint64_t consumed_bytes);

/// Volume carved out of a pool.
json::Json Volume(const std::string& name, std::uint64_t capacity_bytes,
                  const std::string& raid_type = "None");

/// Updates the consumed-bytes figure of a StoragePool payload in place.
void SetPoolConsumed(json::Json& pool, std::uint64_t consumed_bytes);

/// Reads Capacity.Data.AllocatedBytes (0 when absent).
std::uint64_t PoolAllocatedBytes(const json::Json& pool);
std::uint64_t PoolConsumedBytes(const json::Json& pool);

}  // namespace ofmf::redfish::swordfish
