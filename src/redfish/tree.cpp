#include "redfish/tree.hpp"

#include "http/uri.hpp"
#include "json/merge_patch.hpp"
#include "odata/annotations.hpp"

namespace ofmf::redfish {

const char* to_string(ChangeKind kind) {
  switch (kind) {
    case ChangeKind::kCreated: return "ResourceCreated";
    case ChangeKind::kModified: return "ResourceChanged";
    case ChangeKind::kDeleted: return "ResourceRemoved";
  }
  return "?";
}

std::string ResourceTree::MakeETag(std::uint64_t version) {
  return "W/\"" + std::to_string(version) + "\"";
}

ResourceTree::SnapshotPtr ResourceTree::MakeSnapshot(json::Json payload,
                                                     std::string odata_type,
                                                     std::uint64_t version) {
  auto snapshot = std::make_shared<Snapshot>();
  snapshot->payload = std::move(payload);
  snapshot->odata_type = std::move(odata_type);
  snapshot->version = version;
  snapshot->etag = MakeETag(version);
  return snapshot;
}

void ResourceTree::SetMutationLog(MutationLog log) {
  std::unique_lock lock(mu_);
  mutation_log_ = std::move(log);
}

void ResourceTree::LogLocked(ChangeKind kind, const std::string& uri, SnapshotPtr after) {
  if (mutation_log_) mutation_log_({kind, uri, std::move(after)});
}

Status ResourceTree::Create(const std::string& uri, const std::string& odata_type,
                            json::Json payload) {
  const std::string key = http::NormalizePath(uri);
  if (!payload.is_object()) payload = json::Json::MakeObject();
  ChangeKind kind = ChangeKind::kCreated;
  std::string type = odata_type;
  {
    std::unique_lock lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      if (!recovery_adopt()) {
        return Status::AlreadyExists("resource already exists: " + key);
      }
      // Adoption: the agent re-reports a resource the recovered tree already
      // holds. Take the fresh payload (live state wins) but keep advancing
      // the version so stale ETags cannot validate against the new state.
      const Snapshot& current = *it->second;
      it->second = MakeSnapshot(std::move(payload), current.odata_type,
                                current.version + 1);
      kind = ChangeKind::kModified;
      type = it->second->odata_type;
      LogLocked(kind, key, it->second);
    } else {
      SnapshotPtr snapshot = MakeSnapshot(std::move(payload), odata_type, 1);
      LogLocked(kind, key, snapshot);
      entries_[key] = std::move(snapshot);
    }
  }
  Notify({kind, key, type});
  return Status::Ok();
}

Status ResourceTree::CreateCollection(const std::string& uri, const std::string& odata_type,
                                      const std::string& name) {
  json::Json payload = json::Json::Obj({{"Name", name}, {"Members", json::Json::MakeArray()}});
  return Create(uri, odata_type, std::move(payload));
}

ResourceTree::SnapshotPtr ResourceTree::GetSnapshot(const std::string& uri) const {
  const std::string key = http::NormalizePath(uri);
  std::shared_lock lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  return it->second;
}

Result<json::Json> ResourceTree::Get(const std::string& uri) const {
  const std::string key = http::NormalizePath(uri);
  SnapshotPtr snapshot = GetSnapshot(key);
  if (snapshot == nullptr) return Status::NotFound("no resource at " + key);
  // Copy + stamp outside the lock; the snapshot is immutable.
  json::Json doc = snapshot->payload;
  odata::Stamp(doc, key, snapshot->odata_type, snapshot->etag);
  return doc;
}

Result<json::Json> ResourceTree::GetRaw(const std::string& uri) const {
  SnapshotPtr snapshot = GetSnapshot(uri);
  if (snapshot == nullptr) {
    return Status::NotFound("no resource at " + http::NormalizePath(uri));
  }
  return snapshot->payload;
}

bool ResourceTree::Exists(const std::string& uri) const {
  const std::string key = http::NormalizePath(uri);
  std::shared_lock lock(mu_);
  return entries_.count(key) != 0;
}

std::string ResourceTree::ETagOf(const std::string& uri) const {
  SnapshotPtr snapshot = GetSnapshot(uri);
  return snapshot == nullptr ? "" : snapshot->etag;
}

Status ResourceTree::Patch(const std::string& uri, const json::Json& merge_patch,
                           const std::string& if_match) {
  const std::string key = http::NormalizePath(uri);
  std::string type;
  {
    std::unique_lock lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) return Status::NotFound("no resource at " + key);
    const Snapshot& current = *it->second;
    if (!if_match.empty() && if_match != current.etag) {
      return Status::FailedPrecondition("ETag mismatch for " + key + ": expected " +
                                        current.etag + ", got " + if_match);
    }
    json::Json next = current.payload;
    json::MergePatch(next, merge_patch);
    it->second = MakeSnapshot(std::move(next), current.odata_type, current.version + 1);
    type = it->second->odata_type;
    LogLocked(ChangeKind::kModified, key, it->second);
  }
  Notify({ChangeKind::kModified, key, type});
  return Status::Ok();
}

Status ResourceTree::Replace(const std::string& uri, json::Json payload) {
  const std::string key = http::NormalizePath(uri);
  std::string type;
  {
    std::unique_lock lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) return Status::NotFound("no resource at " + key);
    const Snapshot& current = *it->second;
    it->second = MakeSnapshot(std::move(payload), current.odata_type, current.version + 1);
    type = it->second->odata_type;
    LogLocked(ChangeKind::kModified, key, it->second);
  }
  Notify({ChangeKind::kModified, key, type});
  return Status::Ok();
}

Status ResourceTree::Delete(const std::string& uri) {
  const std::string key = http::NormalizePath(uri);
  std::string type;
  {
    std::unique_lock lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) return Status::NotFound("no resource at " + key);
    type = it->second->odata_type;
    entries_.erase(it);
    LogLocked(ChangeKind::kDeleted, key, nullptr);
  }
  Notify({ChangeKind::kDeleted, key, type});
  return Status::Ok();
}

Status ResourceTree::AddMember(const std::string& collection_uri,
                               const std::string& member_uri) {
  const std::string key = http::NormalizePath(collection_uri);
  const std::string member = http::NormalizePath(member_uri);
  std::string type;
  {
    std::unique_lock lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) return Status::NotFound("no collection at " + key);
    const Snapshot& current = *it->second;
    const json::Json* members =
        current.payload.is_object() ? current.payload.as_object().Find("Members") : nullptr;
    if (members == nullptr || !members->is_array()) {
      return Status::FailedPrecondition(key + " is not a collection");
    }
    for (const json::Json& entry : members->as_array()) {
      if (odata::IdOf(entry) == member) return Status::Ok();  // idempotent
    }
    json::Json next = current.payload;
    next.as_object().Find("Members")->as_array().push_back(odata::Ref(member));
    it->second = MakeSnapshot(std::move(next), current.odata_type, current.version + 1);
    type = it->second->odata_type;
    LogLocked(ChangeKind::kModified, key, it->second);
  }
  Notify({ChangeKind::kModified, key, type});
  return Status::Ok();
}

Status ResourceTree::RemoveMember(const std::string& collection_uri,
                                  const std::string& member_uri) {
  const std::string key = http::NormalizePath(collection_uri);
  const std::string member = http::NormalizePath(member_uri);
  std::string type;
  {
    std::unique_lock lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) return Status::NotFound("no collection at " + key);
    const Snapshot& current = *it->second;
    const json::Json* members =
        current.payload.is_object() ? current.payload.as_object().Find("Members") : nullptr;
    if (members == nullptr || !members->is_array()) {
      return Status::FailedPrecondition(key + " is not a collection");
    }
    json::Json next = current.payload;
    json::Array& arr = next.as_object().Find("Members")->as_array();
    const std::size_t before = arr.size();
    std::erase_if(arr, [&](const json::Json& entry) { return odata::IdOf(entry) == member; });
    if (arr.size() == before) {
      return Status::NotFound(member + " not a member of " + key);
    }
    it->second = MakeSnapshot(std::move(next), current.odata_type, current.version + 1);
    type = it->second->odata_type;
    LogLocked(ChangeKind::kModified, key, it->second);
  }
  Notify({ChangeKind::kModified, key, type});
  return Status::Ok();
}

Result<std::vector<std::string>> ResourceTree::Members(
    const std::string& collection_uri) const {
  SnapshotPtr snapshot = GetSnapshot(collection_uri);
  if (snapshot == nullptr) return Status::NotFound("no collection at " + collection_uri);
  const json::Json* members = snapshot->payload.is_object()
                                  ? snapshot->payload.as_object().Find("Members")
                                  : nullptr;
  if (members == nullptr || !members->is_array()) {
    return Status::FailedPrecondition(collection_uri + " is not a collection");
  }
  std::vector<std::string> uris;
  for (const json::Json& entry : members->as_array()) {
    const std::string uri = odata::IdOf(entry);
    if (!uri.empty()) uris.push_back(uri);
  }
  return uris;
}

std::vector<std::string> ResourceTree::UrisUnder(const std::string& prefix) const {
  const std::string key = http::NormalizePath(prefix);
  std::shared_lock lock(mu_);
  std::vector<std::string> uris;
  for (auto it = entries_.lower_bound(key); it != entries_.end(); ++it) {
    if (it->first.compare(0, key.size(), key) != 0) break;
    // Require an exact match or a path-segment boundary.
    if (it->first.size() == key.size() || it->first[key.size()] == '/' || key == "/") {
      uris.push_back(it->first);
    }
  }
  return uris;
}

std::size_t ResourceTree::size() const {
  std::shared_lock lock(mu_);
  return entries_.size();
}

std::uint64_t ResourceTree::Subscribe(ChangeListener listener) {
  std::lock_guard<std::mutex> lock(listeners_mu_);
  const std::uint64_t token = next_listener_token_++;
  listeners_[token] = std::move(listener);
  return token;
}

void ResourceTree::Unsubscribe(std::uint64_t token) {
  std::lock_guard<std::mutex> lock(listeners_mu_);
  listeners_.erase(token);
}

Status ResourceTree::RestorePut(const std::string& uri, const std::string& odata_type,
                                json::Json payload, std::uint64_t version) {
  const std::string key = http::NormalizePath(uri);
  if (!payload.is_object()) payload = json::Json::MakeObject();
  if (version == 0) version = 1;
  std::unique_lock lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end() && it->second->version > version) {
    return Status::Ok();  // a newer record already landed; last-version-wins
  }
  entries_[key] = MakeSnapshot(std::move(payload), odata_type, version);
  return Status::Ok();
}

Status ResourceTree::RestoreDelete(const std::string& uri) {
  const std::string key = http::NormalizePath(uri);
  std::unique_lock lock(mu_);
  entries_.erase(key);
  return Status::Ok();
}

json::Json ResourceTree::ExportState() const {
  json::Array resources;
  std::shared_lock lock(mu_);
  for (const auto& [uri, snapshot] : entries_) {
    resources.push_back(json::Json::Obj({{"uri", uri},
                                         {"type", snapshot->odata_type},
                                         {"ver", snapshot->version},
                                         {"doc", snapshot->payload}}));
  }
  return json::Json::Obj({{"resources", json::Json(std::move(resources))}});
}

Status ResourceTree::ImportState(const json::Json& state) {
  const json::Json& resources = state.at("resources");
  if (!resources.is_array()) {
    return Status::InvalidArgument("state document missing 'resources' array");
  }
  std::map<std::string, SnapshotPtr> rebuilt;
  for (const json::Json& entry : resources.as_array()) {
    const std::string uri = entry.GetString("uri");
    if (uri.empty() || !entry.at("doc").is_object()) {
      return Status::InvalidArgument("malformed state entry (uri/doc)");
    }
    const std::uint64_t version =
        static_cast<std::uint64_t>(entry.GetInt("ver", 1));
    rebuilt[uri] =
        MakeSnapshot(entry.at("doc"), entry.GetString("type"), version == 0 ? 1 : version);
  }
  std::unique_lock lock(mu_);
  entries_ = std::move(rebuilt);
  return Status::Ok();
}

void ResourceTree::Notify(const ChangeEvent& event) {
  std::vector<ChangeListener> snapshot;
  {
    std::lock_guard<std::mutex> lock(listeners_mu_);
    snapshot.reserve(listeners_.size());
    for (const auto& [token, listener] : listeners_) snapshot.push_back(listener);
  }
  for (const ChangeListener& listener : snapshot) listener(event);
}

}  // namespace ofmf::redfish
