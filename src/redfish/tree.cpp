#include "redfish/tree.hpp"

#include "http/uri.hpp"
#include "json/merge_patch.hpp"
#include "odata/annotations.hpp"

namespace ofmf::redfish {

const char* to_string(ChangeKind kind) {
  switch (kind) {
    case ChangeKind::kCreated: return "ResourceCreated";
    case ChangeKind::kModified: return "ResourceChanged";
    case ChangeKind::kDeleted: return "ResourceRemoved";
  }
  return "?";
}

std::string ResourceTree::MakeETag(std::uint64_t version) {
  return "W/\"" + std::to_string(version) + "\"";
}

Status ResourceTree::Create(const std::string& uri, const std::string& odata_type,
                            json::Json payload) {
  const std::string key = http::NormalizePath(uri);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (entries_.count(key) != 0) {
      return Status::AlreadyExists("resource already exists: " + key);
    }
    if (!payload.is_object()) payload = json::Json::MakeObject();
    entries_[key] = Entry{std::move(payload), odata_type, 1};
  }
  Notify({ChangeKind::kCreated, key, odata_type});
  return Status::Ok();
}

Status ResourceTree::CreateCollection(const std::string& uri, const std::string& odata_type,
                                      const std::string& name) {
  json::Json payload = json::Json::Obj({{"Name", name}, {"Members", json::Json::MakeArray()}});
  return Create(uri, odata_type, std::move(payload));
}

Result<json::Json> ResourceTree::Get(const std::string& uri) const {
  const std::string key = http::NormalizePath(uri);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return Status::NotFound("no resource at " + key);
  json::Json doc = it->second.payload;
  odata::Stamp(doc, key, it->second.odata_type, MakeETag(it->second.version));
  return doc;
}

Result<json::Json> ResourceTree::GetRaw(const std::string& uri) const {
  const std::string key = http::NormalizePath(uri);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return Status::NotFound("no resource at " + key);
  return it->second.payload;
}

bool ResourceTree::Exists(const std::string& uri) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(http::NormalizePath(uri)) != 0;
}

std::string ResourceTree::ETagOf(const std::string& uri) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(http::NormalizePath(uri));
  if (it == entries_.end()) return "";
  return MakeETag(it->second.version);
}

Status ResourceTree::Patch(const std::string& uri, const json::Json& merge_patch,
                           const std::string& if_match) {
  const std::string key = http::NormalizePath(uri);
  std::string type;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) return Status::NotFound("no resource at " + key);
    if (!if_match.empty() && if_match != MakeETag(it->second.version)) {
      return Status::FailedPrecondition("ETag mismatch for " + key + ": expected " +
                                        MakeETag(it->second.version) + ", got " + if_match);
    }
    json::MergePatch(it->second.payload, merge_patch);
    ++it->second.version;
    type = it->second.odata_type;
  }
  Notify({ChangeKind::kModified, key, type});
  return Status::Ok();
}

Status ResourceTree::Replace(const std::string& uri, json::Json payload) {
  const std::string key = http::NormalizePath(uri);
  std::string type;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) return Status::NotFound("no resource at " + key);
    it->second.payload = std::move(payload);
    ++it->second.version;
    type = it->second.odata_type;
  }
  Notify({ChangeKind::kModified, key, type});
  return Status::Ok();
}

Status ResourceTree::Delete(const std::string& uri) {
  const std::string key = http::NormalizePath(uri);
  std::string type;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) return Status::NotFound("no resource at " + key);
    type = it->second.odata_type;
    entries_.erase(it);
  }
  Notify({ChangeKind::kDeleted, key, type});
  return Status::Ok();
}

Status ResourceTree::AddMember(const std::string& collection_uri,
                               const std::string& member_uri) {
  const std::string key = http::NormalizePath(collection_uri);
  const std::string member = http::NormalizePath(member_uri);
  std::string type;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) return Status::NotFound("no collection at " + key);
    json::Json* members = it->second.payload.as_object().Find("Members");
    if (members == nullptr || !members->is_array()) {
      return Status::FailedPrecondition(key + " is not a collection");
    }
    for (const json::Json& entry : members->as_array()) {
      if (odata::IdOf(entry) == member) return Status::Ok();  // idempotent
    }
    members->as_array().push_back(odata::Ref(member));
    ++it->second.version;
    type = it->second.odata_type;
  }
  Notify({ChangeKind::kModified, key, type});
  return Status::Ok();
}

Status ResourceTree::RemoveMember(const std::string& collection_uri,
                                  const std::string& member_uri) {
  const std::string key = http::NormalizePath(collection_uri);
  const std::string member = http::NormalizePath(member_uri);
  std::string type;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) return Status::NotFound("no collection at " + key);
    json::Json* members = it->second.payload.as_object().Find("Members");
    if (members == nullptr || !members->is_array()) {
      return Status::FailedPrecondition(key + " is not a collection");
    }
    json::Array& arr = members->as_array();
    const std::size_t before = arr.size();
    std::erase_if(arr, [&](const json::Json& entry) { return odata::IdOf(entry) == member; });
    if (arr.size() == before) {
      return Status::NotFound(member + " not a member of " + key);
    }
    ++it->second.version;
    type = it->second.odata_type;
  }
  Notify({ChangeKind::kModified, key, type});
  return Status::Ok();
}

Result<std::vector<std::string>> ResourceTree::Members(
    const std::string& collection_uri) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(http::NormalizePath(collection_uri));
  if (it == entries_.end()) return Status::NotFound("no collection at " + collection_uri);
  const json::Json* members = it->second.payload.as_object().Find("Members");
  if (members == nullptr || !members->is_array()) {
    return Status::FailedPrecondition(collection_uri + " is not a collection");
  }
  std::vector<std::string> uris;
  for (const json::Json& entry : members->as_array()) {
    const std::string uri = odata::IdOf(entry);
    if (!uri.empty()) uris.push_back(uri);
  }
  return uris;
}

std::vector<std::string> ResourceTree::UrisUnder(const std::string& prefix) const {
  const std::string key = http::NormalizePath(prefix);
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> uris;
  for (auto it = entries_.lower_bound(key); it != entries_.end(); ++it) {
    if (it->first.compare(0, key.size(), key) != 0) break;
    // Require an exact match or a path-segment boundary.
    if (it->first.size() == key.size() || it->first[key.size()] == '/' || key == "/") {
      uris.push_back(it->first);
    }
  }
  return uris;
}

std::size_t ResourceTree::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::uint64_t ResourceTree::Subscribe(ChangeListener listener) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t token = next_listener_token_++;
  listeners_[token] = std::move(listener);
  return token;
}

void ResourceTree::Unsubscribe(std::uint64_t token) {
  std::lock_guard<std::mutex> lock(mu_);
  listeners_.erase(token);
}

void ResourceTree::Notify(const ChangeEvent& event) {
  std::vector<ChangeListener> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot.reserve(listeners_.size());
    for (const auto& [token, listener] : listeners_) snapshot.push_back(listener);
  }
  for (const ChangeListener& listener : snapshot) listener(event);
}

}  // namespace ofmf::redfish
