// The Redfish resource tree: a versioned, observable store of JSON resource
// documents keyed by URI. The paper's OFMF represents "an HPC disaggregated
// infrastructure under a single Redfish tree that includes all the fabrics
// and resources available" — this is that tree.
//
// Concurrency model: entries are immutable snapshots held by shared_ptr, the
// map is guarded by a shared_mutex. Readers take a shared lock only long
// enough to copy a refcounted pointer out; mutations take the exclusive lock
// and swap in a freshly built snapshot (copy-on-write), so a reader holding
// a snapshot never observes a half-applied patch.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "json/value.hpp"

namespace ofmf::redfish {

enum class ChangeKind { kCreated, kModified, kDeleted };

const char* to_string(ChangeKind kind);

struct ChangeEvent {
  ChangeKind kind;
  std::string uri;
  std::string odata_type;
};

using ChangeListener = std::function<void(const ChangeEvent&)>;

/// Thread-safe resource store. ETags are weak validators W/"<version>" where
/// the version increments on every mutation of that resource.
class ResourceTree {
 public:
  /// One immutable version of a resource. Handed out by refcount; never
  /// mutated after publication.
  struct Snapshot {
    json::Json payload;
    std::string odata_type;
    std::uint64_t version = 1;
    std::string etag;  // W/"<version>", precomputed
  };
  using SnapshotPtr = std::shared_ptr<const Snapshot>;

  /// One applied mutation as seen by the durability layer: the kind, the URI,
  /// and the resulting snapshot (`after` is nullptr for deletes). Unlike
  /// ChangeEvents — fired outside the lock for read-path latency — the
  /// mutation log is invoked while the writer still holds the exclusive lock,
  /// so log order is exactly apply order (a write-ahead journal depends on
  /// that). The callback must not re-enter the tree.
  struct Mutation {
    ChangeKind kind;
    std::string uri;
    SnapshotPtr after;  // nullptr for kDeleted
  };
  using MutationLog = std::function<void(const Mutation&)>;

  /// Installs (or clears, with nullptr) the single mutation-log sink. The
  /// recovery paths (Restore*/ImportState) never feed the log.
  void SetMutationLog(MutationLog log);

  /// Recovery-adoption mode: while enabled, Create() of an existing URI
  /// behaves like Replace() (new payload, version bumped, kModified) instead
  /// of failing AlreadyExists. Lets agents re-publish live inventory into a
  /// tree rebuilt from a snapshot+journal, so the recovered resources they
  /// still report are re-adopted in place.
  void set_recovery_adopt(bool adopt) { recovery_adopt_.store(adopt, std::memory_order_relaxed); }
  bool recovery_adopt() const { return recovery_adopt_.load(std::memory_order_relaxed); }

  /// Creates a resource. `odata_type` is the "#Ns.vX_Y_Z.Type" tag; the tree
  /// stamps @odata.id/@odata.type/@odata.etag on reads.
  Status Create(const std::string& uri, const std::string& odata_type, json::Json payload);

  /// Creates a resource collection ("Members": []).
  Status CreateCollection(const std::string& uri, const std::string& odata_type,
                          const std::string& name);

  /// Refcounted immutable snapshot (nullptr when absent). O(log n) lookup
  /// under a shared lock; no payload copy.
  SnapshotPtr GetSnapshot(const std::string& uri) const;

  /// Full stamped document (copy).
  Result<json::Json> Get(const std::string& uri) const;

  /// Raw payload without annotations (copy).
  Result<json::Json> GetRaw(const std::string& uri) const;

  bool Exists(const std::string& uri) const;

  /// Current ETag ("" if absent).
  std::string ETagOf(const std::string& uri) const;

  /// Applies an RFC 7386 merge patch. If `if_match` is non-empty it must
  /// equal the current ETag (FailedPrecondition otherwise).
  Status Patch(const std::string& uri, const json::Json& merge_patch,
               const std::string& if_match = "");

  /// Replaces the payload wholesale (PUT semantics), keeping the type.
  Status Replace(const std::string& uri, json::Json payload);

  Status Delete(const std::string& uri);

  /// Adds / removes a {"@odata.id": member_uri} entry in `collection_uri`'s
  /// Members array. Duplicate adds are idempotent.
  Status AddMember(const std::string& collection_uri, const std::string& member_uri);
  Status RemoveMember(const std::string& collection_uri, const std::string& member_uri);

  /// Member URIs of a collection.
  Result<std::vector<std::string>> Members(const std::string& collection_uri) const;

  /// All URIs with the given prefix (sorted).
  std::vector<std::string> UrisUnder(const std::string& prefix) const;

  std::size_t size() const;

  /// Registers a change listener (fired synchronously after each mutation,
  /// outside the tree lock). Returns a token for Unsubscribe.
  std::uint64_t Subscribe(ChangeListener listener);
  void Unsubscribe(std::uint64_t token);

  // ------------------------------------------------------------ durability --
  // Recovery-side primitives: they bypass listeners and the mutation log (the
  // journal must not re-journal its own replay) and preserve exact versions
  // so ETags — and everything keyed on them (ETag-CAS claims, client caches)
  // — survive a restart.

  /// Re-materializes a resource at an exact version. Last-version-wins: a
  /// replayed record older than the entry already present is a no-op, which
  /// makes journal replay idempotent over a snapshot that already contains
  /// the record's effect.
  Status RestorePut(const std::string& uri, const std::string& odata_type,
                    json::Json payload, std::uint64_t version);

  /// Replays a deletion; succeeds whether or not the entry exists.
  Status RestoreDelete(const std::string& uri);

  /// Serializes every entry (uri, type, version, payload) to a deterministic
  /// JSON document — the snapshot-compaction payload. Sorted by URI.
  json::Json ExportState() const;

  /// Wholesale-replaces the tree from an ExportState() document. Fires no
  /// listeners and feeds no mutation log; callers must invalidate derived
  /// caches themselves.
  Status ImportState(const json::Json& state);

 private:
  void Notify(const ChangeEvent& event);
  /// Fires the mutation log; must be called with `mu_` held exclusively.
  void LogLocked(ChangeKind kind, const std::string& uri, SnapshotPtr after);
  static std::string MakeETag(std::uint64_t version);
  static SnapshotPtr MakeSnapshot(json::Json payload, std::string odata_type,
                                  std::uint64_t version);

  mutable std::shared_mutex mu_;
  std::map<std::string, SnapshotPtr> entries_;
  MutationLog mutation_log_;  // written under exclusive mu_, read under it too
  std::atomic<bool> recovery_adopt_{false};

  // Listener bookkeeping uses its own lock so subscription management never
  // contends with resource reads and listeners can (un)subscribe from inside
  // tree operations without lock-order coupling.
  mutable std::mutex listeners_mu_;
  std::map<std::uint64_t, ChangeListener> listeners_;
  std::uint64_t next_listener_token_ = 1;
};

}  // namespace ofmf::redfish
