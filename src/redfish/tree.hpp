// The Redfish resource tree: a versioned, observable store of JSON resource
// documents keyed by URI. The paper's OFMF represents "an HPC disaggregated
// infrastructure under a single Redfish tree that includes all the fabrics
// and resources available" — this is that tree.
//
// Concurrency model: entries are immutable snapshots held by shared_ptr, the
// map is guarded by a shared_mutex. Readers take a shared lock only long
// enough to copy a refcounted pointer out; mutations take the exclusive lock
// and swap in a freshly built snapshot (copy-on-write), so a reader holding
// a snapshot never observes a half-applied patch.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "json/value.hpp"

namespace ofmf::redfish {

enum class ChangeKind { kCreated, kModified, kDeleted };

const char* to_string(ChangeKind kind);

struct ChangeEvent {
  ChangeKind kind;
  std::string uri;
  std::string odata_type;
};

using ChangeListener = std::function<void(const ChangeEvent&)>;

/// Thread-safe resource store. ETags are weak validators W/"<version>" where
/// the version increments on every mutation of that resource.
class ResourceTree {
 public:
  /// One immutable version of a resource. Handed out by refcount; never
  /// mutated after publication.
  struct Snapshot {
    json::Json payload;
    std::string odata_type;
    std::uint64_t version = 1;
    std::string etag;  // W/"<version>", precomputed
  };
  using SnapshotPtr = std::shared_ptr<const Snapshot>;

  /// Creates a resource. `odata_type` is the "#Ns.vX_Y_Z.Type" tag; the tree
  /// stamps @odata.id/@odata.type/@odata.etag on reads.
  Status Create(const std::string& uri, const std::string& odata_type, json::Json payload);

  /// Creates a resource collection ("Members": []).
  Status CreateCollection(const std::string& uri, const std::string& odata_type,
                          const std::string& name);

  /// Refcounted immutable snapshot (nullptr when absent). O(log n) lookup
  /// under a shared lock; no payload copy.
  SnapshotPtr GetSnapshot(const std::string& uri) const;

  /// Full stamped document (copy).
  Result<json::Json> Get(const std::string& uri) const;

  /// Raw payload without annotations (copy).
  Result<json::Json> GetRaw(const std::string& uri) const;

  bool Exists(const std::string& uri) const;

  /// Current ETag ("" if absent).
  std::string ETagOf(const std::string& uri) const;

  /// Applies an RFC 7386 merge patch. If `if_match` is non-empty it must
  /// equal the current ETag (FailedPrecondition otherwise).
  Status Patch(const std::string& uri, const json::Json& merge_patch,
               const std::string& if_match = "");

  /// Replaces the payload wholesale (PUT semantics), keeping the type.
  Status Replace(const std::string& uri, json::Json payload);

  Status Delete(const std::string& uri);

  /// Adds / removes a {"@odata.id": member_uri} entry in `collection_uri`'s
  /// Members array. Duplicate adds are idempotent.
  Status AddMember(const std::string& collection_uri, const std::string& member_uri);
  Status RemoveMember(const std::string& collection_uri, const std::string& member_uri);

  /// Member URIs of a collection.
  Result<std::vector<std::string>> Members(const std::string& collection_uri) const;

  /// All URIs with the given prefix (sorted).
  std::vector<std::string> UrisUnder(const std::string& prefix) const;

  std::size_t size() const;

  /// Registers a change listener (fired synchronously after each mutation,
  /// outside the tree lock). Returns a token for Unsubscribe.
  std::uint64_t Subscribe(ChangeListener listener);
  void Unsubscribe(std::uint64_t token);

 private:
  void Notify(const ChangeEvent& event);
  static std::string MakeETag(std::uint64_t version);
  static SnapshotPtr MakeSnapshot(json::Json payload, std::string odata_type,
                                  std::uint64_t version);

  mutable std::shared_mutex mu_;
  std::map<std::string, SnapshotPtr> entries_;

  // Listener bookkeeping uses its own lock so subscription management never
  // contends with resource reads and listeners can (un)subscribe from inside
  // tree operations without lock-order coupling.
  mutable std::mutex listeners_mu_;
  std::map<std::uint64_t, ChangeListener> listeners_;
  std::uint64_t next_listener_token_ = 1;
};

}  // namespace ofmf::redfish
