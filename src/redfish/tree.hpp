// The Redfish resource tree: a versioned, observable store of JSON resource
// documents keyed by URI. The paper's OFMF represents "an HPC disaggregated
// infrastructure under a single Redfish tree that includes all the fabrics
// and resources available" — this is that tree.
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "json/value.hpp"

namespace ofmf::redfish {

enum class ChangeKind { kCreated, kModified, kDeleted };

const char* to_string(ChangeKind kind);

struct ChangeEvent {
  ChangeKind kind;
  std::string uri;
  std::string odata_type;
};

using ChangeListener = std::function<void(const ChangeEvent&)>;

/// Thread-safe resource store. ETags are weak validators W/"<version>" where
/// the version increments on every mutation of that resource.
class ResourceTree {
 public:
  /// Creates a resource. `odata_type` is the "#Ns.vX_Y_Z.Type" tag; the tree
  /// stamps @odata.id/@odata.type/@odata.etag on reads.
  Status Create(const std::string& uri, const std::string& odata_type, json::Json payload);

  /// Creates a resource collection ("Members": []).
  Status CreateCollection(const std::string& uri, const std::string& odata_type,
                          const std::string& name);

  /// Full stamped document (copy).
  Result<json::Json> Get(const std::string& uri) const;

  /// Raw payload without annotations (copy).
  Result<json::Json> GetRaw(const std::string& uri) const;

  bool Exists(const std::string& uri) const;

  /// Current ETag ("" if absent).
  std::string ETagOf(const std::string& uri) const;

  /// Applies an RFC 7386 merge patch. If `if_match` is non-empty it must
  /// equal the current ETag (FailedPrecondition otherwise).
  Status Patch(const std::string& uri, const json::Json& merge_patch,
               const std::string& if_match = "");

  /// Replaces the payload wholesale (PUT semantics), keeping the type.
  Status Replace(const std::string& uri, json::Json payload);

  Status Delete(const std::string& uri);

  /// Adds / removes a {"@odata.id": member_uri} entry in `collection_uri`'s
  /// Members array. Duplicate adds are idempotent.
  Status AddMember(const std::string& collection_uri, const std::string& member_uri);
  Status RemoveMember(const std::string& collection_uri, const std::string& member_uri);

  /// Member URIs of a collection.
  Result<std::vector<std::string>> Members(const std::string& collection_uri) const;

  /// All URIs with the given prefix (sorted).
  std::vector<std::string> UrisUnder(const std::string& prefix) const;

  std::size_t size() const;

  /// Registers a change listener (fired synchronously after each mutation,
  /// outside the tree lock). Returns a token for Unsubscribe.
  std::uint64_t Subscribe(ChangeListener listener);
  void Unsubscribe(std::uint64_t token);

 private:
  struct Entry {
    json::Json payload;
    std::string odata_type;
    std::uint64_t version = 1;
  };

  void Notify(const ChangeEvent& event);
  static std::string MakeETag(std::uint64_t version);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  std::map<std::uint64_t, ChangeListener> listeners_;
  std::uint64_t next_listener_token_ = 1;
};

}  // namespace ofmf::redfish
