#include "slurmsim/slurm.hpp"

#include <algorithm>

#include "common/hostlist.hpp"
#include "common/logging.hpp"
#include "common/strings.hpp"

namespace ofmf::slurmsim {

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kPending: return "PENDING";
    case JobState::kConfiguring: return "CONFIGURING";
    case JobState::kRunning: return "RUNNING";
    case JobState::kCompleting: return "COMPLETING";
    case JobState::kCompleted: return "COMPLETED";
    case JobState::kFailed: return "FAILED";
    case JobState::kCancelled: return "CANCELLED";
  }
  return "?";
}

SlurmManager::SlurmManager(cluster::Cluster& cluster, SimClock& clock)
    : cluster_(cluster), clock_(clock) {}

void SlurmManager::AddProlog(NodeScript script) { prologs_.push_back(std::move(script)); }
void SlurmManager::AddEpilog(NodeScript script) { epilogs_.push_back(std::move(script)); }

Result<std::vector<std::string>> SlurmManager::AllocateNodes(int count) {
  if (count <= 0) return Status::InvalidArgument("node_count must be >= 1");
  std::vector<std::string> available = cluster_.AvailableHostnames();
  const std::set<std::string> busy = BusyHosts();
  std::erase_if(available, [&](const std::string& host) { return busy.count(host) != 0; });
  if (static_cast<int>(available.size()) < count) {
    return Status::ResourceExhausted("not enough idle nodes: need " + std::to_string(count) +
                                     ", have " + std::to_string(available.size()));
  }
  // Contiguous affinity: hostnames are sorted; take the first window whose
  // names are consecutive in the full (sorted) cluster ordering, falling
  // back to the first `count` idle nodes when no contiguous window exists.
  const std::vector<std::string> all = cluster_.Hostnames();
  std::map<std::string, std::size_t> position;
  for (std::size_t i = 0; i < all.size(); ++i) position[all[i]] = i;
  for (std::size_t start = 0; start + static_cast<std::size_t>(count) <= available.size();
       ++start) {
    bool contiguous = true;
    for (int offset = 1; offset < count; ++offset) {
      if (position[available[start + static_cast<std::size_t>(offset)]] !=
          position[available[start]] + static_cast<std::size_t>(offset)) {
        contiguous = false;
        break;
      }
    }
    if (contiguous) {
      return std::vector<std::string>(
          available.begin() + static_cast<std::ptrdiff_t>(start),
          available.begin() + static_cast<std::ptrdiff_t>(start) + count);
    }
  }
  return std::vector<std::string>(available.begin(), available.begin() + count);
}

Result<SimTime> SlurmManager::RunScriptsParallel(const std::vector<NodeScript>& scripts,
                                                 Job& job, std::string* failing_host) {
  // Scripts run concurrently on every node; each node runs the registered
  // scripts sequentially. The job-level cost is the slowest node.
  SimTime max_duration = 0;
  for (const std::string& host : job.hosts) {
    SimTime node_duration = 0;
    for (const NodeScript& script : scripts) {
      const ScriptResult result = script(job, host);
      node_duration += result.duration;
      if (!result.status.ok()) {
        if (failing_host != nullptr) *failing_host = host;
        return result.status;
      }
    }
    max_duration = std::max(max_duration, node_duration);
  }
  return max_duration;
}

Result<JobId> SlurmManager::Submit(const JobSpec& spec) {
  OFMF_ASSIGN_OR_RETURN(std::vector<std::string> hosts, AllocateNodes(spec.node_count));

  Job job;
  job.id = next_id_++;
  job.spec = spec;
  job.hosts = std::move(hosts);
  job.submit_time = clock_.now();
  job.state = JobState::kConfiguring;

  // slurmstepd-style environment.
  job.env["SLURM_JOB_ID"] = std::to_string(job.id);
  job.env["SLURM_JOB_NAME"] = spec.name;
  job.env["SLURM_JOB_USER"] = spec.user;
  job.env["SLURM_NNODES"] = std::to_string(spec.node_count);
  job.env["SLURM_NODELIST"] = CompressHostlist(job.hosts);
  std::vector<std::string> constraints(spec.constraints.begin(), spec.constraints.end());
  job.env["SLURM_JOB_CONSTRAINTS"] = strings::Join(constraints, ",");

  std::string failing_host;
  Result<SimTime> prolog = RunScriptsParallel(prologs_, job, &failing_host);
  if (!prolog.ok()) {
    // The paper's fault path: notify Slurm, log, drain the node for
    // inspection, fail the job.
    job.state = JobState::kFailed;
    job.failure_reason = "prolog failed on " + failing_host + ": " +
                         prolog.status().message();
    if (auto node = cluster_.Node(failing_host); node.ok()) {
      (*node)->SetDrained(true);
    }
    const std::string line = "job " + std::to_string(job.id) + ": " + job.failure_reason +
                             "; node " + failing_host + " drained";
    log_.push_back(line);
    OFMF_WARN << "slurm: " << line;
    jobs_.emplace(job.id, std::move(job));
    return Status::Unavailable(log_.back());
  }
  job.prolog_duration = *prolog;
  clock_.Advance(*prolog);
  job.start_time = clock_.now();
  job.state = JobState::kRunning;
  const JobId id = job.id;
  jobs_.emplace(id, std::move(job));
  return id;
}

Status SlurmManager::Complete(JobId id) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return Status::NotFound("no job " + std::to_string(id));
  Job& job = it->second;
  if (job.state != JobState::kRunning) {
    return Status::FailedPrecondition("job " + std::to_string(id) + " is " +
                                      to_string(job.state));
  }
  job.state = JobState::kCompleting;
  std::string failing_host;
  Result<SimTime> epilog = RunScriptsParallel(epilogs_, job, &failing_host);
  if (!epilog.ok()) {
    job.state = JobState::kFailed;
    job.failure_reason = "epilog failed on " + failing_host + ": " +
                         epilog.status().message();
    if (auto node = cluster_.Node(failing_host); node.ok()) {
      (*node)->SetDrained(true);
    }
    log_.push_back("job " + std::to_string(id) + ": " + job.failure_reason);
    OFMF_WARN << "slurm: " << log_.back();
    job.end_time = clock_.now();
    return Status::Unavailable(job.failure_reason);
  }
  job.epilog_duration = *epilog;
  clock_.Advance(*epilog);
  job.end_time = clock_.now();
  job.state = JobState::kCompleted;
  return Status::Ok();
}

Status SlurmManager::Cancel(JobId id) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return Status::NotFound("no job " + std::to_string(id));
  Job& job = it->second;
  if (job.state != JobState::kRunning && job.state != JobState::kPending &&
      job.state != JobState::kConfiguring) {
    return Status::FailedPrecondition("job not cancellable in state " +
                                      std::string(to_string(job.state)));
  }
  job.state = JobState::kCancelled;
  job.end_time = clock_.now();
  return Status::Ok();
}

Status SlurmManager::FailNode(const std::string& hostname, const std::string& reason) {
  OFMF_ASSIGN_OR_RETURN(cluster::ComputeNode * node, cluster_.Node(hostname));
  node->SetDrained(true);
  bool affected = false;
  for (auto& [id, job] : jobs_) {
    if (job.state != JobState::kRunning && job.state != JobState::kConfiguring) continue;
    if (std::find(job.hosts.begin(), job.hosts.end(), hostname) == job.hosts.end()) {
      continue;
    }
    affected = true;
    job.state = JobState::kFailed;
    job.end_time = clock_.now();
    job.failure_reason = "NODE_FAIL " + hostname + ": " + reason;
    const std::string line = "job " + std::to_string(id) + ": " + job.failure_reason;
    log_.push_back(line);
    OFMF_WARN << "slurm: " << line;
  }
  if (!affected) {
    log_.push_back("node " + hostname + " drained (" + reason + "); no jobs affected");
  }
  return Status::Ok();
}

Result<Job> SlurmManager::GetJob(JobId id) const {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return Status::NotFound("no job " + std::to_string(id));
  return it->second;
}

std::vector<Job> SlurmManager::Jobs() const {
  std::vector<Job> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(job);
  return out;
}

std::set<std::string> SlurmManager::BusyHosts() const {
  std::set<std::string> busy;
  for (const auto& [id, job] : jobs_) {
    if (job.state == JobState::kRunning || job.state == JobState::kConfiguring ||
        job.state == JobState::kCompleting) {
      busy.insert(job.hosts.begin(), job.hosts.end());
    }
  }
  return busy;
}

}  // namespace ofmf::slurmsim
