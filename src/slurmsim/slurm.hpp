// Slurm-like workload manager over the simulated cluster. Faithful to the
// integration points the paper relies on:
//   * contiguous-affinity node allocation,
//   * SLURM_NODELIST / SLURM_JOB_CONSTRAINTS env passed to node scripts,
//   * Prolog/Epilog scripts that "are designed to run in parallel" (the job
//     pays the *max* script time across nodes, not the sum),
//   * constraint toggles (the paper's `beeond` constraint),
//   * error handling: a failed prolog drains the node, logs, and fails the
//     job; batch and interactive submissions share the same path.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/clock.hpp"
#include "common/result.hpp"

namespace ofmf::slurmsim {

enum class JobState { kPending, kConfiguring, kRunning, kCompleting, kCompleted, kFailed,
                      kCancelled };

const char* to_string(JobState state);

struct JobSpec {
  std::string name = "job";
  std::string user = "user";
  int node_count = 1;
  std::set<std::string> constraints;  // e.g. {"beeond"}
  bool interactive = false;
  SimTime time_limit = Seconds(24 * 3600);
};

using JobId = std::uint64_t;

struct Job {
  JobId id = 0;
  JobSpec spec;
  JobState state = JobState::kPending;
  std::vector<std::string> hosts;            // expanded allocation
  std::map<std::string, std::string> env;    // SLURM_* variables
  std::string failure_reason;
  SimTime submit_time = 0;
  SimTime start_time = 0;
  SimTime end_time = 0;
  SimTime prolog_duration = 0;  // max across nodes (parallel scripts)
  SimTime epilog_duration = 0;

  bool HasConstraint(const std::string& constraint) const {
    return spec.constraints.count(constraint) != 0;
  }
};

/// Per-node script outcome: how long the script ran (simulated) or an error.
struct ScriptResult {
  Status status = Status::Ok();
  SimTime duration = 0;
};

/// Node script: runs on one host of the allocation with the job's env.
/// Mirrors slurmstepd variable passing — scripts read SLURM_NODELIST etc.
/// from job.env and learn their own role by comparing `hostname` against the
/// expanded list (the paper's prolog parser).
using NodeScript = std::function<ScriptResult(const Job& job, const std::string& hostname)>;

class SlurmManager {
 public:
  SlurmManager(cluster::Cluster& cluster, SimClock& clock);

  /// Registers prolog/epilog scripts (run on every allocated node).
  void AddProlog(NodeScript script);
  void AddEpilog(NodeScript script);

  /// Submits and immediately attempts allocation + prolog. On success the
  /// job is kRunning. On prolog failure: node drained, job kFailed.
  Result<JobId> Submit(const JobSpec& spec);

  /// Finishes a running job: runs epilogs (parallel), releases nodes.
  Status Complete(JobId id);
  Status Cancel(JobId id);

  /// Hardware fault on a running node: every job holding it fails (with the
  /// reason logged), the node drains. Mirrors production Slurm's NODE_FAIL.
  Status FailNode(const std::string& hostname, const std::string& reason);

  Result<Job> GetJob(JobId id) const;
  std::vector<Job> Jobs() const;

  /// Nodes currently held by running jobs.
  std::set<std::string> BusyHosts() const;

  /// Log lines emitted by the manager (drain notices, failures).
  const std::vector<std::string>& log() const { return log_; }

 private:
  Result<std::vector<std::string>> AllocateNodes(int count);
  /// Runs `scripts` on every host in parallel; returns max duration or the
  /// first error (with the failing hostname recorded).
  Result<SimTime> RunScriptsParallel(const std::vector<NodeScript>& scripts, Job& job,
                                     std::string* failing_host);

  cluster::Cluster& cluster_;
  SimClock& clock_;
  std::vector<NodeScript> prologs_;
  std::vector<NodeScript> epilogs_;
  std::map<JobId, Job> jobs_;
  JobId next_id_ = 1;
  std::vector<std::string> log_;
};

}  // namespace ofmf::slurmsim
