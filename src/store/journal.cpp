#include "store/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <fstream>

namespace ofmf::store {
namespace {

std::array<std::uint32_t, 256> BuildCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

void PutU32Le(std::string& out, std::uint32_t value) {
  out.push_back(static_cast<char>(value & 0xFF));
  out.push_back(static_cast<char>((value >> 8) & 0xFF));
  out.push_back(static_cast<char>((value >> 16) & 0xFF));
  out.push_back(static_cast<char>((value >> 24) & 0xFF));
}

std::uint32_t GetU32Le(const char* bytes) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[0])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[1])) << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[2])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[3])) << 24);
}

Status WriteFully(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t wrote = ::write(fd, data, n);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("journal write failed: ") + std::strerror(errno));
    }
    data += wrote;
    n -= static_cast<std::size_t>(wrote);
  }
  return Status::Ok();
}

}  // namespace

std::uint32_t Crc32(std::string_view bytes) {
  static const std::array<std::uint32_t, 256> table = BuildCrcTable();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : bytes) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Journal::Journal(std::string path, int fd, std::uint64_t size)
    : path_(std::move(path)), fd_(fd), size_(size) {}

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<Journal>> Journal::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::Internal("cannot open journal " + path + ": " + std::strerror(errno));
  }
  const off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) {
    ::close(fd);
    return Status::Internal("cannot seek journal " + path);
  }
  std::uint64_t size = static_cast<std::uint64_t>(end);
  if (size == 0) {
    const Status wrote = WriteFully(fd, kMagic, kMagicSize);
    if (!wrote.ok()) {
      ::close(fd);
      return wrote;
    }
    if (::fsync(fd) != 0) {
      ::close(fd);
      return Status::Internal("cannot fsync new journal " + path);
    }
    size = kMagicSize;
  } else {
    char header[kMagicSize] = {};
    const ssize_t got = ::pread(fd, header, kMagicSize, 0);
    if (got != static_cast<ssize_t>(kMagicSize) ||
        std::memcmp(header, kMagic, kMagicSize) != 0) {
      ::close(fd);
      return Status::Internal("journal " + path + " has a bad magic header");
    }
  }
  return std::unique_ptr<Journal>(new Journal(path, fd, size));
}

Status Journal::AppendRaw(std::string_view bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("journal closed");
  OFMF_RETURN_IF_ERROR(WriteFully(fd_, bytes.data(), bytes.size()));
  size_ += bytes.size();
  return Status::Ok();
}

Status Journal::Fsync() {
  if (fd_ < 0) return Status::FailedPrecondition("journal closed");
  if (::fsync(fd_) != 0) {
    return Status::Internal("journal fsync failed: " + std::string(std::strerror(errno)));
  }
  return Status::Ok();
}

Status Journal::TruncateTo(std::uint64_t size) {
  if (fd_ < 0) return Status::FailedPrecondition("journal closed");
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return Status::Internal("journal truncate failed: " + std::string(std::strerror(errno)));
  }
  if (::lseek(fd_, static_cast<off_t>(size), SEEK_SET) < 0) {
    return Status::Internal("journal seek failed after truncate");
  }
  size_ = size;
  return Status::Ok();
}

std::string Journal::EncodeFrame(std::string_view payload) {
  std::string frame;
  frame.reserve(payload.size() + 8);
  PutU32Le(frame, static_cast<std::uint32_t>(payload.size()));
  PutU32Le(frame, Crc32(payload));
  frame.append(payload);
  return frame;
}

Result<Journal::Scan> Journal::ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("no journal at " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());

  Scan scan;
  if (bytes.size() < kMagicSize ||
      std::memcmp(bytes.data(), kMagic, kMagicSize) != 0) {
    scan.torn_tail = true;  // never even finished writing the header
    return scan;
  }
  std::size_t pos = kMagicSize;
  scan.valid_bytes = kMagicSize;
  while (pos + 8 <= bytes.size()) {
    const std::uint32_t length = GetU32Le(bytes.data() + pos);
    const std::uint32_t crc = GetU32Le(bytes.data() + pos + 4);
    if (length > kMaxFrameBytes || pos + 8 + length > bytes.size()) {
      scan.torn_tail = true;  // frame promised more bytes than the file holds
      return scan;
    }
    const std::string_view payload(bytes.data() + pos + 8, length);
    if (Crc32(payload) != crc) {
      scan.torn_tail = true;  // bit rot or a torn write inside the frame
      return scan;
    }
    scan.records.emplace_back(payload);
    pos += 8 + length;
    scan.valid_bytes = pos;
  }
  if (pos != bytes.size()) scan.torn_tail = true;  // dangling partial header
  return scan;
}

}  // namespace ofmf::store
