// Append-only journal file for the management-plane write-ahead log.
//
// On-disk layout: an 8-byte magic ("OFMFWAL1"), then a sequence of frames
//   [u32 payload length (LE)] [u32 CRC32 of payload (LE)] [payload bytes]
// The payload is one serialized journal record (compact JSON). A reader
// walks frames until the first one that is short (torn tail: the file ends
// mid-frame) or fails its CRC (corrupt frame), and keeps exactly the prefix
// before it — the classic redo-log contract: whatever survives is a valid
// prefix of the mutation history, never a mix.
//
// The class itself is mechanical (open/append/fsync/truncate); crash, torn-
// write and short-fsync *simulation* lives in PersistentStore, which owns
// the fault-injection points and the notion of "synced bytes".
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"

namespace ofmf::store {

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) of `bytes`.
std::uint32_t Crc32(std::string_view bytes);

class Journal {
 public:
  /// Opens `path` for appending. A missing or empty file is initialized with
  /// the magic header (fsynced); an existing file must start with the magic.
  /// Appends always go to the current end of file.
  static Result<std::unique_ptr<Journal>> Open(const std::string& path);

  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Appends raw bytes at the end of the file (no framing — callers frame
  /// via EncodeFrame; raw access is what lets the store simulate torn
  /// writes by persisting only a prefix of a batch).
  Status AppendRaw(std::string_view bytes);

  Status Fsync();

  /// Truncates the file to `size` bytes (crash simulation: everything past
  /// the last synced byte vanishes) and repositions the append offset.
  Status TruncateTo(std::uint64_t size);

  std::uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }

  /// Frames one record payload: length + CRC32 + bytes.
  static std::string EncodeFrame(std::string_view payload);

  struct Scan {
    std::vector<std::string> records;  // payloads of every intact frame
    std::uint64_t valid_bytes = 0;     // magic + intact frames; truncate here
    bool torn_tail = false;            // file ended in a short/corrupt frame
  };

  /// Reads every intact frame of `path`, stopping at the first torn or
  /// CRC-failing frame. NotFound when the file does not exist; a file too
  /// short for (or not matching) the magic yields valid_bytes = 0 and
  /// torn_tail = true rather than an error.
  static Result<Scan> ReadAll(const std::string& path);

  static constexpr char kMagic[9] = "OFMFWAL1";
  static constexpr std::uint64_t kMagicSize = 8;
  /// Upper bound on a single frame payload; a corrupt length field past this
  /// is treated as a torn tail instead of a multi-gigabyte allocation.
  static constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

 private:
  Journal(std::string path, int fd, std::uint64_t size);

  std::string path_;
  int fd_ = -1;
  std::uint64_t size_ = 0;
};

}  // namespace ofmf::store
