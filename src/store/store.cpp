#include "store/store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>

#include "common/clock.hpp"
#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "json/parse.hpp"
#include "json/serialize.hpp"

namespace ofmf::store {
namespace fs = std::filesystem;
namespace {

constexpr char kSnapshotMagic[9] = "OFMFSNP1";
constexpr std::uint64_t kSnapshotMagicSize = 8;
constexpr const char* kSnapshotName = "snapshot.snap";
constexpr const char* kSnapshotTmpName = "snapshot.snap.tmp";

Status FsyncPath(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::Internal("cannot open " + path + " for fsync: " + std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::Internal("fsync of " + path + " failed");
  return Status::Ok();
}

std::string EncodePut(const std::string& uri,
                      const redfish::ResourceTree::SnapshotPtr& after) {
  return json::Serialize(json::Json::Obj({{"op", "put"},
                                          {"uri", uri},
                                          {"type", after->odata_type},
                                          {"ver", after->version},
                                          {"doc", after->payload}}));
}

std::string EncodeDelete(const std::string& uri) {
  return json::Serialize(json::Json::Obj({{"op", "del"}, {"uri", uri}}));
}

std::string EncodeSession(const DurableSession& session) {
  return json::Serialize(json::Json::Obj({{"op", "sess"},
                                          {"id", session.id},
                                          {"user", session.user},
                                          {"token", session.token}}));
}

std::string EncodeEvent(std::uint64_t sequence, const json::Json& record) {
  return json::Serialize(json::Json::Obj(
      {{"op", "evt"}, {"seq", static_cast<std::int64_t>(sequence)}, {"rec", record}}));
}

std::string EncodeCursor(const std::string& uri, std::uint64_t sequence) {
  return json::Serialize(json::Json::Obj(
      {{"op", "cur"}, {"uri", uri}, {"seq", static_cast<std::int64_t>(sequence)}}));
}

}  // namespace

PersistentStore::PersistentStore(StoreOptions options) : options_(std::move(options)) {}

PersistentStore::~PersistentStore() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!dead_) (void)CommitLocked();
}

Result<std::unique_ptr<PersistentStore>> PersistentStore::Open(StoreOptions options) {
  if (options.dir.empty()) return Status::InvalidArgument("store dir must be non-empty");
  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) {
    return Status::Internal("cannot create store dir " + options.dir + ": " + ec.message());
  }
  std::unique_ptr<PersistentStore> self(new PersistentStore(std::move(options)));
  std::uint64_t next_generation = 1;
  for (const auto& [generation, path] : self->ListJournalFiles()) {
    next_generation = std::max(next_generation, generation + 1);
  }
  OFMF_RETURN_IF_ERROR(self->StartGeneration(next_generation));
  return self;
}

std::string PersistentStore::JournalPathFor(std::uint64_t generation) const {
  char name[32];
  std::snprintf(name, sizeof(name), "journal-%08llu.wal",
                static_cast<unsigned long long>(generation));
  return (fs::path(options_.dir) / name).string();
}

std::string PersistentStore::snapshot_path() const {
  return (fs::path(options_.dir) / kSnapshotName).string();
}

std::vector<std::pair<std::uint64_t, std::string>> PersistentStore::ListJournalFiles()
    const {
  std::vector<std::pair<std::uint64_t, std::string>> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    unsigned long long generation = 0;
    // Round-trip the parsed generation through JournalPathFor: sscanf alone
    // would accept strays like journal-1.wal.bak and let Recover replay (and
    // Compact delete) files that are not journal generations.
    if (std::sscanf(name.c_str(), "journal-%llu.wal", &generation) == 1 &&
        fs::path(JournalPathFor(generation)).filename().string() == name) {
      files.emplace_back(generation, entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

Status PersistentStore::StartGeneration(std::uint64_t generation) {
  OFMF_ASSIGN_OR_RETURN(std::unique_ptr<Journal> journal,
                        Journal::Open(JournalPathFor(generation)));
  journal_ = std::move(journal);
  generation_ = generation;
  synced_bytes_ = journal_->size();
  records_since_compact_ = 0;
  return Status::Ok();
}

void PersistentStore::set_fault_injector(std::shared_ptr<FaultInjector> faults) {
  std::lock_guard<std::mutex> lock(mu_);
  faults_ = std::move(faults);
}

FaultDecision PersistentStore::Probe(const char* point) {
  if (faults_ == nullptr || !faults_->enabled()) return {};
  return faults_->Evaluate(point);
}

void PersistentStore::LogMutation(const redfish::ResourceTree::Mutation& mutation) {
  AppendRecord(mutation.kind == redfish::ChangeKind::kDeleted
                   ? EncodeDelete(mutation.uri)
                   : EncodePut(mutation.uri, mutation.after));
}

void PersistentStore::LogSession(const DurableSession& session) {
  AppendRecord(EncodeSession(session));
}

void PersistentStore::LogEvent(std::uint64_t sequence, const json::Json& record) {
  AppendRecord(EncodeEvent(sequence, record));
}

void PersistentStore::LogEventCursor(const std::string& subscription_uri,
                                     std::uint64_t sequence) {
  AppendRecord(EncodeCursor(subscription_uri, sequence));
}

void PersistentStore::AppendRecord(std::string payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dead_) {
    ++stats_.dropped_after_crash;
    return;
  }
  if (compacting_) carry_.push_back(payload);
  std::string frame = Journal::EncodeFrame(payload);
  pending_bytes_ += frame.size();
  pending_.push_back(std::move(frame));
  ++stats_.appended;
  ++records_since_compact_;
  const bool due = !options_.group_commit ||
                   pending_.size() >= options_.group_commit_records ||
                   pending_bytes_ >= options_.group_commit_bytes;
  if (due) (void)CommitLocked();
}

Status PersistentStore::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  return CommitLocked();
}

Status PersistentStore::CommitLocked() {
  if (dead_) return Status::Unavailable("store crashed (injected)");
  if (pending_.empty()) return Status::Ok();

  // One commit = one span (child of whatever mutation triggered it) plus a
  // batch-size sample, so group-commit effectiveness shows up in telemetry.
  trace::Span commit_span("journal.commit");
  static metrics::Histogram& batch_records =
      metrics::Registry::instance().histogram("journal.batch.records");
  static metrics::Histogram& commit_latency =
      metrics::Registry::instance().histogram("journal.commit.ns");
  metrics::ScopedTimer commit_timer(commit_latency);
  if (metrics::Registry::instance().enabled()) batch_records.Record(pending_.size());
  if (commit_span.active()) {
    commit_span.Note(std::to_string(pending_.size()) + " records");
  }

  std::string batch;
  batch.reserve(pending_bytes_);
  for (const std::string& frame : pending_) batch.append(frame);
  const std::size_t records = pending_.size();
  pending_.clear();
  pending_bytes_ = 0;

  const FaultDecision crash = Probe("store.commit.crash");
  if (crash.kind == FaultKind::kCrash) {
    stats_.dropped_after_crash += records;
    SimulateCrashLocked();
    return Status::Unavailable("store crashed (injected) before commit");
  }
  const FaultDecision torn = Probe("store.commit.torn");
  if (torn.kind == FaultKind::kTornWrite) {
    // Power loss mid-write: only a prefix of the batch reaches the platter.
    // Those bytes ARE persistent — recovery must detect the half frame and
    // truncate it, not trust it.
    const std::string prefix = batch.substr(0, std::max<std::size_t>(1, batch.size() / 2));
    (void)journal_->AppendRaw(prefix);
    stats_.dropped_after_crash += records;
    synced_bytes_ = journal_->size();
    dead_ = true;
    return Status::Unavailable("store crashed (injected) mid-write: torn tail");
  }

  if (Status appended = journal_->AppendRaw(batch); !appended.ok()) {
    // Real I/O failure (disk full, EIO): the batch may be partially on disk
    // and can never be trusted. Roll the file back to its last synced byte
    // and mark the store dead — serving on while silently non-durable is
    // worse than failing loudly — and account for the loss.
    ++stats_.io_errors;
    stats_.dropped_after_crash += records;
    SimulateCrashLocked();
    OFMF_ERROR << "journal append failed, store is now dead: " << appended.message();
    return appended;
  }
  ++stats_.commits;
  stats_.committed += records;
  if (options_.fsync_on_commit) {
    const FaultDecision short_fsync = Probe("store.fsync");
    if (short_fsync.kind == FaultKind::kShortFsync) {
      // fsync silently skipped: the records sit in the page cache and will
      // vanish if a crash lands before the next successful fsync.
      return Status::Ok();
    }
    trace::Span fsync_span("journal.fsync");
    static metrics::Histogram& fsync_latency =
        metrics::Registry::instance().histogram("journal.fsync.ns");
    metrics::ScopedTimer fsync_timer(fsync_latency);
    if (Status synced = journal_->Fsync(); !synced.ok()) {
      // The batch reached the file but fsync failed, so the kernel makes no
      // promise it will ever reach the platter. Same treatment as a failed
      // write: truncate to the synced prefix, die loudly, count the loss.
      ++stats_.io_errors;
      stats_.dropped_after_crash += records;
      SimulateCrashLocked();
      OFMF_ERROR << "journal fsync failed, store is now dead: " << synced.message();
      return synced;
    }
    ++stats_.fsyncs;
  }
  synced_bytes_ = journal_->size();
  return Status::Ok();
}

void PersistentStore::SimulateCrashLocked() {
  // Everything past the last fsync lived in the page cache; it is gone.
  (void)journal_->TruncateTo(synced_bytes_);
  dead_ = true;
}

bool PersistentStore::compaction_due() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (dead_) return false;
  return records_since_compact_ >= options_.compact_after_records ||
         (journal_ != nullptr && journal_->size() >= options_.compact_after_bytes);
}

Status PersistentStore::Compact(const std::function<json::Json()>& export_state,
                                const std::vector<DurableSession>& sessions) {
  return Compact(export_state, sessions, DurableEventState{});
}

Status PersistentStore::Compact(const std::function<json::Json()>& export_state,
                                const std::vector<DurableSession>& sessions,
                                const DurableEventState& events) {
  // Handle() triggers compaction from per-connection threads whenever it is
  // due; two interleaved compactions would clobber each other's carry_ and
  // could rotate an older snapshot over a newer one after deleting the
  // journal generations backing it. One compaction at a time; a loser just
  // skips — the winner's snapshot subsumes (or carries) its records.
  std::unique_lock<std::mutex> compact_lock(compact_mu_, std::try_to_lock);
  if (!compact_lock.owns_lock()) return Status::Ok();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dead_) return Status::Unavailable("store crashed (injected)");
    // Fold buffered records into the outgoing generation first. Their tree
    // effects happened before the export below acquires the tree lock, so
    // the snapshot subsumes them — and the old generation is only deleted
    // after the snapshot rename lands, so a failure anywhere in between
    // loses nothing.
    OFMF_RETURN_IF_ERROR(CommitLocked());
    // Carry mode: every record appended from here until rotation is kept
    // aside, because the export below may or may not observe its effect.
    compacting_ = true;
    carry_.clear();
  }
  const json::Json state = export_state();  // takes the tree lock; not ours

  json::Json doc = json::Json::Obj({{"format", 1}});
  doc.as_object().Set("resources", state.at("resources"));
  json::Array session_records;
  for (const DurableSession& session : sessions) {
    session_records.push_back(json::Json::Obj(
        {{"id", session.id}, {"user", session.user}, {"token", session.token}}));
  }
  doc.as_object().Set("sessions", json::Json(std::move(session_records)));
  doc.as_object().Set("eventseq", static_cast<std::int64_t>(events.next_sequence));
  json::Array event_records;
  for (const auto& [sequence, record] : events.events) {
    event_records.push_back(json::Json::Obj(
        {{"seq", static_cast<std::int64_t>(sequence)}, {"rec", record}}));
  }
  doc.as_object().Set("events", json::Json(std::move(event_records)));
  json::Array cursor_records;
  for (const auto& [uri, sequence] : events.cursors) {
    cursor_records.push_back(json::Json::Obj(
        {{"uri", uri}, {"seq", static_cast<std::int64_t>(sequence)}}));
  }
  doc.as_object().Set("cursors", json::Json(std::move(cursor_records)));
  const std::string serialized = json::Serialize(doc);

  std::lock_guard<std::mutex> lock(mu_);
  compacting_ = false;  // mu_ held through rotation: no append can interleave
  if (dead_) {
    carry_.clear();
    return Status::Unavailable("store crashed (injected)");
  }

  const FaultDecision before = Probe("store.compact.crash");
  if (before.kind == FaultKind::kCrash) {
    carry_.clear();
    SimulateCrashLocked();
    return Status::Unavailable("store crashed (injected) before snapshot write");
  }

  const std::string tmp_path = (fs::path(options_.dir) / kSnapshotTmpName).string();
  {
    const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
      return Status::Internal("cannot create " + tmp_path + ": " + std::strerror(errno));
    }
    const std::string frame = Journal::EncodeFrame(serialized);
    std::string blob;
    blob.reserve(kSnapshotMagicSize + frame.size());
    blob.append(kSnapshotMagic, kSnapshotMagicSize);
    blob.append(frame);
    std::size_t off = 0;
    Status wrote = Status::Ok();
    while (off < blob.size()) {
      const ssize_t n = ::write(fd, blob.data() + off, blob.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        wrote = Status::Internal("snapshot write failed: " + std::string(std::strerror(errno)));
        break;
      }
      off += static_cast<std::size_t>(n);
    }
    if (wrote.ok() && ::fsync(fd) != 0) {
      wrote = Status::Internal("snapshot fsync failed");
    }
    ::close(fd);
    if (!wrote.ok()) return wrote;
  }

  const FaultDecision mid = Probe("store.compact.crash");
  if (mid.kind == FaultKind::kCrash) {
    // Crash between tmp write and rename: the old snapshot (or none) stays
    // authoritative; the tmp file is ignored by recovery.
    carry_.clear();
    SimulateCrashLocked();
    return Status::Unavailable("store crashed (injected) before snapshot rename");
  }

  std::error_code ec;
  fs::rename(tmp_path, snapshot_path(), ec);
  if (ec) return Status::Internal("snapshot rename failed: " + ec.message());
  OFMF_RETURN_IF_ERROR(FsyncPath(options_.dir));

  // Rotate: fresh generation first, then delete the old ones. A crash in
  // between leaves extra generations whose replay over the new snapshot is
  // idempotent (state records), so recovery still converges.
  const std::uint64_t old_generation = generation_;
  OFMF_RETURN_IF_ERROR(StartGeneration(old_generation + 1));
  for (const auto& [generation, path] : ListJournalFiles()) {
    if (generation <= old_generation) fs::remove(path, ec);
  }

  // Records journaled while the caller serialized the tree: re-journal them
  // into the fresh generation (their effects may postdate the snapshot).
  // Everything buffered right now arrived during carry mode (the entry
  // commit drained the rest), so rebuilding pending_ from carry_ alone
  // journals each of those records exactly once.
  pending_.clear();
  pending_bytes_ = 0;
  for (const std::string& record : carry_) {
    std::string frame = Journal::EncodeFrame(record);
    pending_bytes_ += frame.size();
    pending_.push_back(std::move(frame));
    ++records_since_compact_;
  }
  carry_.clear();
  ++stats_.compactions;
  return CommitLocked();
}

Result<PersistentStore::RecoveredState> PersistentStore::Recover(
    redfish::ResourceTree& tree) {
  // Recover is a startup-time, single-caller operation (documented: call
  // once, before attaching LogMutation). mu_ is taken only around the
  // store's own journal state, never across tree calls — the mutation-log
  // path locks tree-then-store, so holding mu_ while replaying into the
  // tree would invert that order.
  std::uint64_t active_generation = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dead_) return Status::Unavailable("store crashed (injected)");
    active_generation = generation_;
  }
  Stopwatch timer;
  RecoveredState recovered;
  // Cursor records are last-wins (snapshot first, then journal order); fold
  // through a map and flatten at the end.
  std::map<std::string, std::uint64_t> cursors;
  auto note_sequence = [&recovered](std::uint64_t sequence) {
    recovered.events.next_sequence = std::max(recovered.events.next_sequence, sequence);
  };

  // 1. Snapshot (when present and intact).
  {
    std::ifstream in(snapshot_path(), std::ios::binary);
    if (in) {
      std::string bytes((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
      std::string corrupt;  // when non-empty: why the snapshot can't be trusted
      Journal::Scan scan;
      if (bytes.size() <= kSnapshotMagicSize + 8 ||
          std::memcmp(bytes.data(), kSnapshotMagic, kSnapshotMagicSize) != 0) {
        corrupt = "bad magic header";
      } else {
        scan = [&] {
          // Reuse the frame parser by viewing the snapshot body as one frame.
          Journal::Scan s;
          const char* p = bytes.data() + kSnapshotMagicSize;
          const std::uint32_t length =
              static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
              (static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
              (static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 16) |
              (static_cast<std::uint32_t>(static_cast<unsigned char>(p[3])) << 24);
          const std::uint32_t crc =
              static_cast<std::uint32_t>(static_cast<unsigned char>(p[4])) |
              (static_cast<std::uint32_t>(static_cast<unsigned char>(p[5])) << 8) |
              (static_cast<std::uint32_t>(static_cast<unsigned char>(p[6])) << 16) |
              (static_cast<std::uint32_t>(static_cast<unsigned char>(p[7])) << 24);
          if (kSnapshotMagicSize + 8 + length > bytes.size()) {
            s.torn_tail = true;
            return s;
          }
          const std::string_view payload(p + 8, length);
          if (Crc32(payload) != crc) {
            s.torn_tail = true;
            return s;
          }
          s.records.emplace_back(payload);
          return s;
        }();
        if (scan.torn_tail || scan.records.empty()) corrupt = "failed its CRC check";
      }
      if (!corrupt.empty()) {
        const std::string path = snapshot_path();
        OFMF_ERROR << "snapshot " << path << " " << corrupt
                   << (options_.recover_without_snapshot
                           ? "; setting it aside and recovering from journals alone"
                           : "; refusing to recover");
        if (!options_.recover_without_snapshot) {
          // Refuse by default: journals alone may not reach back past the
          // last compaction, so silently continuing could resurrect a stale
          // tree. The message names the file and the explicit way out.
          return Status::Internal(
              "snapshot " + path + " " + corrupt +
              "; restore it from a copy, or set "
              "StoreOptions::recover_without_snapshot to set it aside and "
              "rebuild from the surviving journal generations alone");
        }
        // Opt-in degraded path: keep the bad snapshot for forensics (never
        // deleted, and the .corrupt name hides it from future recoveries)
        // and fall through to journal-only replay.
        std::error_code ec;
        fs::rename(path, path + ".corrupt", ec);
        recovered.report.snapshot_discarded = true;
      } else {
        OFMF_ASSIGN_OR_RETURN(json::Json doc, json::Parse(scan.records.front()));
        OFMF_RETURN_IF_ERROR(tree.ImportState(doc));
        recovered.report.had_snapshot = true;
        const json::Json& sessions = doc.at("sessions");
        if (sessions.is_array()) {
          for (const json::Json& entry : sessions.as_array()) {
            recovered.sessions.push_back({entry.GetString("id"), entry.GetString("user"),
                                          entry.GetString("token")});
          }
        }
        note_sequence(static_cast<std::uint64_t>(doc.GetInt("eventseq", 0)));
        const json::Json& events = doc.at("events");
        if (events.is_array()) {
          for (const json::Json& entry : events.as_array()) {
            const auto sequence = static_cast<std::uint64_t>(entry.GetInt("seq", 0));
            recovered.events.events.emplace_back(sequence, entry.at("rec"));
            note_sequence(sequence);
          }
        }
        const json::Json& snapshot_cursors = doc.at("cursors");
        if (snapshot_cursors.is_array()) {
          for (const json::Json& entry : snapshot_cursors.as_array()) {
            const auto sequence = static_cast<std::uint64_t>(entry.GetInt("seq", 0));
            cursors[entry.GetString("uri")] = sequence;
            note_sequence(sequence);
          }
        }
      }
    }
  }

  // 2. Journal replay, oldest generation first, stopping (for good) at the
  //    first torn or corrupt frame: everything after it postdates the damage
  //    and cannot be trusted to be a prefix of history.
  bool stop = false;
  for (const auto& [generation, path] : ListJournalFiles()) {
    if (stop) break;
    OFMF_ASSIGN_OR_RETURN(Journal::Scan scan, Journal::ReadAll(path));
    for (const std::string& record : scan.records) {
      OFMF_ASSIGN_OR_RETURN(json::Json doc, json::Parse(record));
      const std::string op = doc.GetString("op");
      if (op == "put") {
        OFMF_RETURN_IF_ERROR(tree.RestorePut(
            doc.GetString("uri"), doc.GetString("type"), doc.at("doc"),
            static_cast<std::uint64_t>(doc.GetInt("ver", 1))));
      } else if (op == "del") {
        OFMF_RETURN_IF_ERROR(tree.RestoreDelete(doc.GetString("uri")));
      } else if (op == "sess") {
        recovered.sessions.push_back(
            {doc.GetString("id"), doc.GetString("user"), doc.GetString("token")});
      } else if (op == "evt") {
        const auto sequence = static_cast<std::uint64_t>(doc.GetInt("seq", 0));
        recovered.events.events.emplace_back(sequence, doc.at("rec"));
        note_sequence(sequence);
      } else if (op == "cur") {
        const auto sequence = static_cast<std::uint64_t>(doc.GetInt("seq", 0));
        cursors[doc.GetString("uri")] = sequence;
        note_sequence(sequence);
      }  // unknown ops are skipped: forward compatibility
      ++recovered.report.records_replayed;
    }
    if (scan.torn_tail) {
      recovered.report.torn_tail = true;
      stop = true;
      if (generation == active_generation) {
        std::lock_guard<std::mutex> lock(mu_);
        OFMF_RETURN_IF_ERROR(journal_->TruncateTo(
            std::max<std::uint64_t>(scan.valid_bytes, Journal::kMagicSize)));
        synced_bytes_ = journal_->size();
      } else {
        std::error_code ec;
        fs::resize_file(path, std::max<std::uint64_t>(scan.valid_bytes, 0), ec);
      }
    }
  }

  recovered.events.cursors.assign(cursors.begin(), cursors.end());
  recovered.report.resources = tree.size();
  recovered.report.sessions = recovered.sessions.size();
  recovered.report.recover_seconds = timer.ElapsedSeconds();
  return recovered;
}

StoreStats PersistentStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

bool PersistentStore::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dead_;
}

}  // namespace ofmf::store
