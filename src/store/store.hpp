// Persistence for the management plane: a write-ahead journal of resource-
// tree mutations plus periodic snapshot compaction, so an OFMF restart can
// rebuild the exact Redfish tree (same payloads, same versions, same ETags)
// the fabric hardware was composed against.
//
// Durability model:
//   * Every tree mutation is journaled as a *state* record (the resulting
//     document + version, not the operation), appended under the tree's
//     write lock so journal order is apply order. State records make replay
//     idempotent: replaying a record whose effect is already present (e.g.
//     a journal that overlaps its snapshot after a crash mid-compaction) is
//     a no-op.
//   * Group commit: records buffer in memory and hit the file + one fsync
//     per batch, so the fsync cost is amortized across a burst of writes
//     and never touches the (lock-free, cache-served) read fast lane.
//   * Compaction: the whole tree is serialized to snapshot.snap.tmp, fsynced,
//     atomically renamed over snapshot.snap, and the journal is rotated to a
//     fresh generation; old generations are deleted only after the rename.
//   * Recovery: load the snapshot (if any), replay every surviving journal
//     generation in order, stop at the first torn/corrupt frame and truncate
//     it away. The result is always a valid prefix of the mutation history.
//
// Crash/torn-write/short-fsync *injection* rides the shared FaultInjector:
//   "store.commit.crash"  (kCrash)      power loss before the batch lands
//   "store.commit.torn"   (kTornWrite)  only a prefix of the batch persists
//   "store.fsync"         (kShortFsync) fsync silently skipped; a later
//                                       crash drops the unsynced suffix
//   "store.compact.crash" (kCrash)      power loss around snapshot rename
// A simulated crash truncates the journal to its last-synced byte (the page
// cache vanished) and marks the store dead; every later call fails
// Unavailable, exactly like writing to a crashed process.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/faults.hpp"
#include "common/result.hpp"
#include "redfish/tree.hpp"
#include "store/journal.hpp"

namespace ofmf::store {

struct StoreOptions {
  std::string dir;
  /// true: records buffer until the batch thresholds below; false: every
  /// record commits (write + fsync) immediately — the safe/slow baseline.
  bool group_commit = true;
  std::size_t group_commit_records = 64;
  std::size_t group_commit_bytes = 256 * 1024;
  /// false skips fsync entirely (throughput baseline for the bench).
  bool fsync_on_commit = true;
  /// Compaction is suggested (compaction_due()) past either threshold.
  std::uint64_t compact_after_records = 8192;
  std::uint64_t compact_after_bytes = 8ull * 1024 * 1024;
  /// Opt-in last resort: when the snapshot fails its magic/CRC check,
  /// set it aside (snapshot.snap.corrupt) and recover from the surviving
  /// journal generations alone instead of refusing to start. Off by
  /// default because journals alone may predate the last compaction.
  bool recover_without_snapshot = false;
};

struct StoreStats {
  std::uint64_t appended = 0;   // records accepted into the buffer
  std::uint64_t committed = 0;  // records written to the journal file
  std::uint64_t commits = 0;    // group-commit batches written
  std::uint64_t fsyncs = 0;
  std::uint64_t compactions = 0;
  std::uint64_t dropped_after_crash = 0;  // records lost to the dead store
  std::uint64_t io_errors = 0;  // real (non-injected) write/fsync failures
};

/// Session secrets ride in the journal/snapshot, never in the Redfish tree
/// (a GET must not leak another client's token).
struct DurableSession {
  std::string id;
  std::string user;
  std::string token;
};

/// Durable event-delivery state: the publisher's sequence counter, the
/// bounded tail of published event records, and each subscription's
/// acknowledged-delivery cursor. Journaled incrementally ("evt"/"cur"
/// records) and folded into every snapshot, so after crash recovery the
/// EventService resumes each subscription at its cursor — acknowledged
/// events are never redelivered and unacknowledged ones are never lost.
struct DurableEventState {
  std::uint64_t next_sequence = 0;  // highest sequence ever assigned
  /// Published event records (sequence -> serialized Event document),
  /// oldest first. Bounded by the EventService's retention window.
  std::vector<std::pair<std::uint64_t, json::Json>> events;
  /// Subscription URI -> highest acknowledged sequence.
  std::vector<std::pair<std::string, std::uint64_t>> cursors;
};

struct RecoveryReport {
  bool had_snapshot = false;
  bool snapshot_discarded = false;  // corrupt snapshot set aside (opt-in)
  bool torn_tail = false;       // replay stopped at a torn/corrupt frame
  std::size_t resources = 0;    // tree entries after recovery
  std::size_t records_replayed = 0;
  std::size_t sessions = 0;     // durable sessions surfaced to the service
  double recover_seconds = 0.0;
};

class PersistentStore {
 public:
  /// Creates `options.dir` if needed and starts a fresh journal generation.
  /// Existing snapshot/journal files are untouched until Recover()/Compact().
  static Result<std::unique_ptr<PersistentStore>> Open(StoreOptions options);

  ~PersistentStore();
  PersistentStore(const PersistentStore&) = delete;
  PersistentStore& operator=(const PersistentStore&) = delete;

  void set_fault_injector(std::shared_ptr<FaultInjector> faults);

  /// Journals one tree mutation. Called from the tree's mutation log — i.e.
  /// under the tree's write lock — so it must not (and does not) re-enter
  /// the tree. Failures are absorbed (the dead-store counter records them).
  void LogMutation(const redfish::ResourceTree::Mutation& mutation);

  /// Journals a session secret (replayed to the SessionService on recovery).
  void LogSession(const DurableSession& session);

  /// Journals one published event record (sequence + serialized document).
  /// Replay feeds the EventService's retained log, so events published but
  /// not yet acknowledged by every subscriber survive a crash.
  void LogEvent(std::uint64_t sequence, const json::Json& record);

  /// Journals a subscription's delivery cursor: every event with a sequence
  /// <= `sequence` has been acknowledged by the destination. Last record
  /// wins on replay.
  void LogEventCursor(const std::string& subscription_uri, std::uint64_t sequence);

  /// Commits everything buffered (group commit now).
  Status Flush();

  /// True when the journal has grown past the compaction thresholds.
  bool compaction_due() const;

  /// Snapshot + rotate. `export_state` is invoked with no store locks held
  /// (lock-order: tree before store) and must return the tree's ExportState()
  /// document. The store flips into carry mode *before* the export, so any
  /// record journaled concurrently — whose effect may or may not have made
  /// the snapshot — is re-journaled into the fresh generation; replay is
  /// idempotent, so the overlap is harmless and nothing is lost to rotation.
  Status Compact(const std::function<json::Json()>& export_state,
                 const std::vector<DurableSession>& sessions);
  /// As above, additionally folding event-delivery state into the snapshot.
  Status Compact(const std::function<json::Json()>& export_state,
                 const std::vector<DurableSession>& sessions,
                 const DurableEventState& events);

  struct RecoveredState {
    RecoveryReport report;
    std::vector<DurableSession> sessions;
    DurableEventState events;
  };

  /// Loads the snapshot and replays the journal into `tree` (wholesale; the
  /// tree's previous contents are discarded). Call once, before attaching
  /// LogMutation to the tree. Torn tails are truncated on disk so the next
  /// recovery sees a clean journal.
  Result<RecoveredState> Recover(redfish::ResourceTree& tree);

  StoreStats stats() const;
  bool crashed() const;
  const StoreOptions& options() const { return options_; }
  std::string snapshot_path() const;

 private:
  explicit PersistentStore(StoreOptions options);

  Status StartGeneration(std::uint64_t generation);
  void AppendRecord(std::string payload);
  Status CommitLocked();
  void SimulateCrashLocked();
  FaultDecision Probe(const char* point);

  std::string JournalPathFor(std::uint64_t generation) const;
  std::vector<std::pair<std::uint64_t, std::string>> ListJournalFiles() const;

  StoreOptions options_;
  std::shared_ptr<FaultInjector> faults_;

  /// Held for the whole of Compact(): two concurrent compactions would race
  /// carry_/generation rotation and can lose committed records. Acquired
  /// before mu_ (mu_ is dropped during the export); never the reverse.
  std::mutex compact_mu_;
  mutable std::mutex mu_;
  std::unique_ptr<Journal> journal_;  // active generation
  std::uint64_t generation_ = 0;
  std::uint64_t synced_bytes_ = 0;  // survives a simulated power loss
  std::vector<std::string> pending_;  // framed but uncommitted records
  std::size_t pending_bytes_ = 0;
  bool compacting_ = false;
  std::vector<std::string> carry_;  // records logged while a Compact exports
  bool dead_ = false;
  std::uint64_t records_since_compact_ = 0;
  StoreStats stats_;
};

}  // namespace ofmf::store
