#include "workloads/experiment.hpp"

#include <algorithm>
#include <cassert>

#include "beeond/beeond.hpp"
#include "cluster/cluster.hpp"
#include "common/clock.hpp"
#include "common/hostlist.hpp"
#include "slurmsim/slurm.hpp"

namespace ofmf::workloads {

const char* to_string(ExperimentClass experiment_class) {
  switch (experiment_class) {
    case ExperimentClass::kHplOnly: return "HPL-Only";
    case ExperimentClass::kMatchingLustre: return "Matching Lustre";
    case ExperimentClass::kSingleBeeond: return "Single BeeOND";
    case ExperimentClass::kMatchingBeeond: return "Matching BeeOND";
    case ExperimentClass::kMatchingBeeondNoMeta: return "Matching BeeOND (no meta)";
  }
  return "?";
}

std::vector<ExperimentClass> AllExperimentClasses() {
  return {ExperimentClass::kHplOnly, ExperimentClass::kMatchingLustre,
          ExperimentClass::kSingleBeeond, ExperimentClass::kMatchingBeeond,
          ExperimentClass::kMatchingBeeondNoMeta};
}

namespace {

struct Layout {
  int ior_nodes = 0;
  bool use_beeond = true;
  bool skip_meta_node = false;  // k=1: dedicated task on the meta node
};

Layout LayoutFor(ExperimentClass experiment_class, int n) {
  switch (experiment_class) {
    case ExperimentClass::kHplOnly: return {0, true, false};
    case ExperimentClass::kMatchingLustre: return {n, false, false};
    case ExperimentClass::kSingleBeeond: return {1, true, false};
    case ExperimentClass::kMatchingBeeond: return {n, true, false};
    case ExperimentClass::kMatchingBeeondNoMeta: return {n, true, true};
  }
  return {};
}

/// Sum of idle daemon core-load on a host given its BeeOND roles.
double IdleLoadOnHost(const beeond::BeeondInstance& instance, const std::string& host) {
  double load = 0.0;
  if (instance.mgmtd_host == host) load += beeond::IdleCoreLoad(beeond::Role::kMgmtd);
  if (std::find(instance.meta_hosts.begin(), instance.meta_hosts.end(), host) !=
      instance.meta_hosts.end()) {
    load += beeond::IdleCoreLoad(beeond::Role::kMeta);
  }
  if (std::find(instance.ost_hosts.begin(), instance.ost_hosts.end(), host) !=
      instance.ost_hosts.end()) {
    load += beeond::IdleCoreLoad(beeond::Role::kStorage);
  }
  load += beeond::IdleCoreLoad(beeond::Role::kHelperd);
  load += beeond::IdleCoreLoad(beeond::Role::kClient);
  return load;
}

}  // namespace

ExperimentResult RunExperiment(ExperimentClass experiment_class,
                               const ExperimentConfig& config) {
  const int n = config.hpl_nodes;
  assert(n >= 1);
  const Layout layout = LayoutFor(experiment_class, n);
  const int allocation = n + layout.ior_nodes + (layout.skip_meta_node ? 1 : 0);

  // Build the machine a little bigger than the allocation.
  cluster::ClusterSpec cluster_spec;
  cluster_spec.node_count = allocation + 2;
  cluster::Cluster machine(cluster_spec);
  for (const std::string& host : machine.Hostnames()) {
    const Status prepared = machine.PrepareNodeStorage(host);
    assert(prepared.ok());
    (void)prepared;
  }

  SimClock clock;
  slurmsim::SlurmManager slurm(machine, clock);
  beeond::BeeondOrchestrator orchestrator(machine);

  // The paper's prolog: if the job carries the `beeond` constraint, assemble
  // a private filesystem over the allocation (all scripts parallel).
  std::string beeond_id;
  slurm.AddProlog([&](const slurmsim::Job& job, const std::string& hostname)
                      -> slurmsim::ScriptResult {
    if (!job.HasConstraint("beeond")) return {};
    // Only the lowest host drives orchestration (idempotent across the
    // parallel per-node scripts, like the paper's role-parser).
    const auto hosts = ExpandHostlist(job.env.at("SLURM_NODELIST"));
    if (!hosts.ok()) return {hosts.status(), 0};
    if (hostname != LowestHost(*hosts)) return {Status::Ok(), Millis(40)};
    beeond_id = "beeond-job" + job.env.at("SLURM_JOB_ID");
    auto instance = orchestrator.Start(beeond_id, *hosts);
    if (!instance.ok()) return {instance.status(), 0};
    return {Status::Ok(), instance->assemble_duration};
  });
  slurm.AddEpilog([&](const slurmsim::Job& job, const std::string& hostname)
                      -> slurmsim::ScriptResult {
    if (!job.HasConstraint("beeond") || beeond_id.empty()) return {};
    const auto hosts = ExpandHostlist(job.env.at("SLURM_NODELIST"));
    if (!hosts.ok()) return {hosts.status(), 0};
    if (hostname != LowestHost(*hosts)) return {Status::Ok(), Millis(40)};
    const auto instance = orchestrator.Get(beeond_id);
    const Status stopped = orchestrator.Stop(beeond_id);
    if (!stopped.ok()) return {stopped, 0};
    const auto after = orchestrator.Get(beeond_id);
    (void)after;
    return {Status::Ok(), orchestrator.ReformatLatency() + Millis(500)};
  });

  slurmsim::JobSpec job_spec;
  job_spec.name = std::string(to_string(experiment_class)) + "-" + std::to_string(n);
  job_spec.node_count = allocation;
  if (layout.use_beeond) job_spec.constraints.insert("beeond");
  const Result<slurmsim::JobId> job_id = slurm.Submit(job_spec);
  assert(job_id.ok());
  const slurmsim::Job job = *slurm.GetJob(*job_id);

  // Partition the allocation: [meta-exempt task node][HPL nodes][IOR nodes].
  std::vector<std::string> hosts = job.hosts;
  std::sort(hosts.begin(), hosts.end());
  std::size_t cursor = layout.skip_meta_node ? 1 : 0;
  const std::vector<std::string> hpl_hosts(hosts.begin() + static_cast<std::ptrdiff_t>(cursor),
                                           hosts.begin() + static_cast<std::ptrdiff_t>(cursor) +
                                               n);
  cursor += static_cast<std::size_t>(n);
  const std::vector<std::string> ior_hosts(
      hosts.begin() + static_cast<std::ptrdiff_t>(cursor),
      hosts.begin() + static_cast<std::ptrdiff_t>(cursor) + layout.ior_nodes);

  ExperimentResult result;
  result.experiment_class = experiment_class;
  result.hpl_nodes = n;
  result.ior_nodes = layout.ior_nodes;
  result.allocation_nodes = allocation;

  // Apply IOR service load to the BeeOND daemons (IOR against external
  // Lustre leaves compute nodes untouched — its servers live elsewhere).
  if (layout.use_beeond && layout.ior_nodes > 0) {
    const auto instance = orchestrator.Get(beeond_id);
    assert(instance.ok());
    const int ost_count = static_cast<int>(instance->ost_hosts.size());
    const double ost_load = OstCoreLoad(config.ior, layout.ior_nodes, ost_count);
    const double meta_load = MetaCoreLoad(config.ior, layout.ior_nodes,
                                          static_cast<int>(instance->meta_hosts.size()));
    const Status loaded = orchestrator.SetIoLoad(beeond_id, ost_load, meta_load);
    assert(loaded.ok());
    (void)loaded;
  }
  if (layout.use_beeond) {
    const auto instance = orchestrator.Get(beeond_id);
    result.assemble_seconds = ToSeconds(instance->assemble_duration);
  }

  // Interference inputs for the HPL nodes from live daemon state.
  std::vector<NodeInterference> interference;
  interference.reserve(hpl_hosts.size());
  for (const std::string& host : hpl_hosts) {
    const auto node = machine.Node(host);
    assert(node.ok());
    double idle = 0.0;
    if (layout.use_beeond) {
      const auto instance = orchestrator.Get(beeond_id);
      idle = IdleLoadOnHost(*instance, host);
    }
    interference.push_back(InterferenceFromNode(**node, idle, config.model));
  }

  // Repetitions: fresh RNG stream per rep, same daemon state.
  Rng master(config.seed ^ (static_cast<std::uint64_t>(experiment_class) << 32) ^
             static_cast<std::uint64_t>(n));
  for (int rep = 0; rep < config.repetitions; ++rep) {
    Rng rep_rng = master.Fork();
    result.runtimes_seconds.push_back(
        SimulateHplSeconds(interference, rep_rng, config.hpl));
  }
  result.ci = MeanCi95(result.runtimes_seconds);

  const Status completed = slurm.Complete(*job_id);
  assert(completed.ok());
  (void)completed;
  if (layout.use_beeond) {
    // Teardown cost recorded by the epilog path.
    const slurmsim::Job finished = *slurm.GetJob(*job_id);
    result.teardown_seconds = ToSeconds(finished.epilog_duration);
  }
  return result;
}

double OverheadVs(const ExperimentResult& result, const ExperimentResult& baseline) {
  return RelativeOverhead(result.ci.mean, baseline.ci.mean);
}

}  // namespace ofmf::workloads
