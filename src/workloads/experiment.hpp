// The paper's experimental procedure, end to end: an n-node HPL task and an
// m-node IOR task placed on non-overlapping node sets of one Slurm
// allocation, with BeeOND daemons assembled (or not) by the job prolog.
// Five experiment classes reproduce Figure "multinode-hpl-runtime-impact"
// and the variance detail figure.
#pragma once

#include <string>
#include <vector>

#include "common/stats.hpp"
#include "workloads/hpl.hpp"
#include "workloads/interference.hpp"
#include "workloads/ior.hpp"

namespace ofmf::workloads {

enum class ExperimentClass {
  kHplOnly,             // k=0, m=0: BeeOND daemons idle, no IOR
  kMatchingLustre,      // k=0, m=n: no BeeOND at all; IOR -> external Lustre
  kSingleBeeond,        // k=0, m=1
  kMatchingBeeond,      // k=0, m=n
  kMatchingBeeondNoMeta // k=1, m=n: HPL avoids the metadata/mgmt node
};

const char* to_string(ExperimentClass experiment_class);
std::vector<ExperimentClass> AllExperimentClasses();

struct ExperimentConfig {
  int hpl_nodes = 16;
  int repetitions = 8;       // paper: 7-10 (3 for Matching Lustre)
  std::uint64_t seed = 2023;
  HplSimConfig hpl;
  IorParams ior;
  InterferenceModel model;
};

struct ExperimentResult {
  ExperimentClass experiment_class;
  int hpl_nodes = 0;
  int ior_nodes = 0;
  int allocation_nodes = 0;
  std::vector<double> runtimes_seconds;
  ConfidenceInterval ci;
  /// Simulated BeeOND assembly / teardown cost (0 for Matching Lustre).
  double assemble_seconds = 0.0;
  double teardown_seconds = 0.0;
};

/// Runs one experiment class at one node count through the full substrate
/// stack (cluster -> slurm -> beeond -> interference -> HPL simulator).
ExperimentResult RunExperiment(ExperimentClass experiment_class,
                               const ExperimentConfig& config);

/// Relative overhead of `result` vs a baseline result at the same n.
double OverheadVs(const ExperimentResult& result, const ExperimentResult& baseline);

}  // namespace ofmf::workloads
