#include "workloads/hpl.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ofmf::workloads {

HplParams HplParamsForNodes(int node_count) {
  assert(node_count >= 1 && node_count <= 1024 &&
         (node_count & (node_count - 1)) == 0 && "node_count must be a power of two");
  constexpr std::int64_t kBaseN = 91048;
  HplParams params;
  params.node_count = node_count;
  params.n_rows = static_cast<std::int64_t>(
      std::llround(static_cast<double>(kBaseN) * std::cbrt(static_cast<double>(node_count))));
  // Grid: start at 7 x 8 (one 56-core node); each doubling doubles the
  // smaller dimension (ties double P), keeping P*Q = 56 * nodes.
  int p = 7;
  int q = 8;
  for (int n = 1; n < node_count; n *= 2) {
    if (p <= q) {
      p *= 2;
    } else {
      q *= 2;
    }
  }
  params.grid_p = p;
  params.grid_q = q;
  return params;
}

std::vector<HplParams> HplParamsTable() {
  std::vector<HplParams> table;
  for (int n = 1; n <= 128; n *= 2) table.push_back(HplParamsForNodes(n));
  return table;
}

double SimulateHplSeconds(const std::vector<NodeInterference>& nodes, Rng& rng,
                          const HplSimConfig& config) {
  assert(!nodes.empty());
  const double node_count = static_cast<double>(nodes.size());
  // Deterministic communication cost per iteration (grows mildly with
  // scale; cancels out of same-node-count comparisons).
  const double comm = config.base_iteration_seconds * config.comm_fraction_per_log2 *
                      std::log2(node_count + 1.0);

  double total = 0.0;
  for (int iteration = 0; iteration < config.iterations; ++iteration) {
    double slowest = 0.0;
    for (const NodeInterference& node : nodes) {
      const double steal = std::clamp(node.cpu_steal, 0.0, 0.95);
      double t = config.base_iteration_seconds / (1.0 - steal);
      t *= 1.0 + std::abs(rng.Normal(0.0, config.jitter_sigma));
      if (node.burst_probability > 0.0 && rng.Chance(node.burst_probability)) {
        // Bounded burst: a service stall costs between half and the full
        // burst fraction of the base step (fsync flush, heartbeat storm).
        const double burst = config.base_iteration_seconds * node.burst_fraction *
                             rng.Uniform(0.5, 1.0);
        t += burst;
      }
      slowest = std::max(slowest, t);
    }
    total += slowest + comm;
  }
  return total;
}

}  // namespace ofmf::workloads
