// HPL model. Two halves:
//  1. Parameter extrapolation reproducing Table II exactly: starting from a
//     well-performing single-node size (N1 = 91048 on a 128 GiB node,
//     7 x 8 grid over 56 ranks), N(n) = round(N1 * n^(1/3)) keeps per-node
//     work — and thus wall-clock — approximately constant, and each node-
//     count doubling doubles the smaller grid dimension.
//  2. A bulk-synchronous runtime simulator: the job advances in panel
//     iterations; each iteration costs the MAX across nodes of
//     (base / (1 - cpu_steal)) * (1 + jitter) + optional noise burst.
//     The max-of-nodes coupling is the daemon-interference amplification
//     mechanism the paper cites.
#pragma once

#include <cstdint>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"

namespace ofmf::workloads {

struct HplParams {
  int node_count = 1;
  std::int64_t n_rows = 0;  // problem size N
  int grid_p = 0;
  int grid_q = 0;
  int ranks() const { return grid_p * grid_q; }
};

/// Table II generator. `node_count` must be a power of two in [1, 1024].
HplParams HplParamsForNodes(int node_count);

/// The full paper table (node counts 1..128).
std::vector<HplParams> HplParamsTable();

/// Per-node interference inputs for one simulated HPL run.
struct NodeInterference {
  double cpu_steal = 0.0;          // fraction of node CPU stolen by daemons
  double burst_probability = 0.0;  // per-iteration chance of a noise burst
  double burst_fraction = 0.0;     // burst length as a fraction of base time
};

struct HplSimConfig {
  int iterations = 120;               // panel steps simulated
  double base_iteration_seconds = 7.5;  // tuned for a ~15 min solo run
  double jitter_sigma = 0.003;        // baseline OS jitter (fraction)
  double comm_fraction_per_log2 = 0.012;  // deterministic comm growth
};

/// Simulates one run; `nodes` holds one entry per HPL node.
double SimulateHplSeconds(const std::vector<NodeInterference>& nodes, Rng& rng,
                          const HplSimConfig& config = {});

}  // namespace ofmf::workloads
