#include "workloads/interference.hpp"

#include <algorithm>

namespace ofmf::workloads {

NodeInterference ComputeInterference(double idle_load, double io_load, int total_cores,
                                     const InterferenceModel& model) {
  NodeInterference out;
  const double total_load = std::max(0.0, idle_load) + std::max(0.0, io_load);
  out.cpu_steal = std::clamp(total_load / static_cast<double>(total_cores), 0.0, 0.95);

  const double p = model.idle_burst_rate * idle_load + model.io_burst_rate * io_load;
  out.burst_probability = std::clamp(p, 0.0, model.max_burst_probability);

  const double idle_part =
      model.idle_burst_fraction * (idle_load / (idle_load + model.io_saturation_half_load));
  const double io_part =
      model.io_burst_fraction * (io_load / (io_load + model.io_saturation_half_load));
  out.burst_fraction = (idle_load > 0.0 ? idle_part : 0.0) + (io_load > 0.0 ? io_part : 0.0);
  return out;
}

NodeInterference InterferenceFromNode(const cluster::ComputeNode& node, double idle_load,
                                      const InterferenceModel& model) {
  const double total = node.DaemonCoreLoad();
  const double io_load = std::max(0.0, total - idle_load);
  return ComputeInterference(std::min(idle_load, total), io_load,
                             node.spec().total_cores(), model);
}

}  // namespace ofmf::workloads
