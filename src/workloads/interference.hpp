// Translation from daemon CPU state on a node to the HPL simulator's
// NodeInterference inputs. The constants here are the calibration knobs for
// the reproduction bands (see DESIGN.md "Calibration targets").
#pragma once

#include "cluster/node.hpp"
#include "workloads/hpl.hpp"

namespace ofmf::workloads {

struct InterferenceModel {
  /// Burst probability per core-equivalent of *idle* daemon load
  /// (heartbeats, timers).
  double idle_burst_rate = 0.05;
  /// Burst probability per core-equivalent of I/O service load; capped.
  double io_burst_rate = 1.0;
  double max_burst_probability = 0.9;
  /// Burst sizes (fraction of a base iteration). Idle bursts are small;
  /// I/O bursts (fsync stalls) are big but roughly load-independent once
  /// the daemon is loaded — hence the saturating form.
  double idle_burst_fraction = 0.028;
  double io_burst_fraction = 0.105;
  double io_saturation_half_load = 0.05;
};

/// Computes interference inputs from explicit load figures.
/// `idle_load` / `io_load` are daemon core-equivalents on the node;
/// `total_cores` is the node's core count.
NodeInterference ComputeInterference(double idle_load, double io_load, int total_cores,
                                     const InterferenceModel& model = {});

/// Reads the node's current daemon state. `io_load` must be supplied by the
/// caller (the node only knows total load; the split drives burst shape), so
/// this overload treats everything above `idle_load` as I/O service load.
NodeInterference InterferenceFromNode(const cluster::ComputeNode& node, double idle_load,
                                      const InterferenceModel& model = {});

}  // namespace ofmf::workloads
