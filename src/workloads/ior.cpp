#include "workloads/ior.hpp"

#include <algorithm>

namespace ofmf::workloads {

std::vector<IorParamRow> IorParamsTable(const IorParams& params) {
  auto on_off = [](bool b) { return b ? std::string("enabled") : std::string("disabled"); };
  return {
      {"[srun] -n", "Processes (per node)", std::to_string(params.procs_per_node)},
      {"-t", "Transfer size (bytes)", std::to_string(params.transfer_bytes)},
      {"-T", "Maximum run duration (minutes)", std::to_string(params.max_run_minutes)},
      {"-D", "Stonewalling deadline (seconds)", std::to_string(params.stonewall_seconds)},
      {"-i", "Test repetitions", std::to_string(params.repetitions)},
      {"-e", "Sync after each write phase", on_off(params.sync_after_phase)},
      {"-C", "Reorder tasks", on_off(params.reorder_tasks)},
      {"-w", "Perform write test", on_off(params.write_test)},
      {"-a", "Access method", params.access},
      {"-s", "Number of segments", std::to_string(params.segments)},
      {"-F", "Use file-per-process", on_off(params.file_per_process)},
      {"-Y", "Sync after every write", on_off(params.sync_every_write)},
  };
}

double OstCoreLoad(const IorParams& params, int ior_nodes, int ost_count) {
  if (ior_nodes <= 0 || ost_count <= 0) return 0.0;
  const double total_procs =
      static_cast<double>(params.procs_per_node) * static_cast<double>(ior_nodes);
  // Service cost per client process landing on one OST, in core-equivalents.
  // Tuned so a matching (m = n) layout saturates OSTs at roughly 16 cores of
  // service work — the calibration behind the 47-52% band at 128 nodes.
  double cost_per_proc = 0.57;
  if (!params.sync_every_write) cost_per_proc *= 0.25;  // -Y is the expensive part
  return cost_per_proc * total_procs / static_cast<double>(ost_count);
}

double MetaCoreLoad(const IorParams& params, int ior_nodes, int meta_count) {
  if (ior_nodes <= 0 || meta_count <= 0) return 0.0;
  const double total_procs =
      static_cast<double>(params.procs_per_node) * static_cast<double>(ior_nodes);
  // File-per-process creates hit the metadata server once per file up front;
  // steady state is a trickle of attribute syncs — cheap enough that the
  // paper saw no definitive Matching vs Matching-no-meta difference.
  const double cost_per_proc = params.file_per_process ? 0.0002 : 0.00005;
  return cost_per_proc * total_procs / static_cast<double>(meta_count);
}

}  // namespace ofmf::workloads
