// IOR model: the paper's Table III parameter set (many tiny synchronous
// writes, file-per-process, fsync after every write, designed to be "as
// disruptive to object storage daemons as possible") and the translation of
// an IOR task into daemon CPU load on the BeeOND servers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ofmf::workloads {

struct IorParams {
  int procs_per_node = 56;            // [srun] -n
  std::uint64_t transfer_bytes = 512;  // -t
  int max_run_minutes = 20;           // -T
  int stonewall_seconds = 60;         // -D
  std::int64_t repetitions = 1048576; // -i
  bool sync_after_phase = true;       // -e
  bool reorder_tasks = true;          // -C
  bool write_test = true;             // -w
  std::string access = "POSIX";       // -a
  int segments = 1024;                // -s
  bool file_per_process = true;       // -F
  bool sync_every_write = true;       // -Y
};

/// The exact Table III rows (parameter flag, description, value) for the
/// bench harness to print.
struct IorParamRow {
  std::string flag;
  std::string description;
  std::string value;
};
std::vector<IorParamRow> IorParamsTable(const IorParams& params = {});

/// Steady-state OST service CPU cost (core-equivalents per OST) for an IOR
/// task of `ior_nodes` nodes striped across `ost_count` OSTs. Synchronous
/// 512-byte writes are pure per-op overhead, so cost scales with the per-OST
/// op arrival rate.
double OstCoreLoad(const IorParams& params, int ior_nodes, int ost_count);

/// Metadata server CPU cost: file-per-process creates + sync bookkeeping
/// scale with total client procs against the (single) metadata server.
double MetaCoreLoad(const IorParams& params, int ior_nodes, int meta_count);

}  // namespace ofmf::workloads
