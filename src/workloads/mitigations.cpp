#include "workloads/mitigations.hpp"

#include <algorithm>
#include <cmath>

namespace ofmf::workloads {

const char* to_string(Mitigation mitigation) {
  switch (mitigation) {
    case Mitigation::kNone: return "none";
    case Mitigation::kCoreSpecialization: return "core-specialization";
    case Mitigation::kCpuQuota: return "cpu-quota";
    case Mitigation::kPlacementExemption: return "placement-exemption";
    case Mitigation::kDedicatedServiceNodes: return "dedicated-service-nodes";
  }
  return "?";
}

std::vector<Mitigation> AllMitigations() {
  return {Mitigation::kNone, Mitigation::kCoreSpecialization, Mitigation::kCpuQuota,
          Mitigation::kPlacementExemption, Mitigation::kDedicatedServiceNodes};
}

namespace {

double MeanHplSeconds(const std::vector<NodeInterference>& nodes,
                      const MitigationConfig& config, std::uint64_t salt) {
  Rng master(config.seed ^ salt);
  double total = 0.0;
  for (int rep = 0; rep < config.repetitions; ++rep) {
    Rng rng = master.Fork();
    total += SimulateHplSeconds(nodes, rng, config.hpl);
  }
  return total / config.repetitions;
}

}  // namespace

MitigationOutcome EvaluateMitigation(Mitigation mitigation,
                                     const MitigationConfig& config) {
  MitigationOutcome outcome;
  outcome.mitigation = mitigation;

  const int n = config.hpl_nodes;
  const int allocation_osts = config.hpl_nodes + config.ior_nodes;
  const double full_ost_load =
      OstCoreLoad(config.ior, config.ior_nodes, allocation_osts);

  // Clean reference: no daemons at all.
  const std::vector<NodeInterference> clean(static_cast<std::size_t>(n));
  const double clean_seconds = MeanHplSeconds(clean, config, 0xC1EA);

  // Effective compute slowdown from losing cores to the fence (core
  // specialization) enters multiplicatively: HPL only has 56-r workers.
  double core_fence_factor = 1.0;
  double idle_load = config.idle_daemon_load;
  double io_load = full_ost_load;
  double burst_suppression = 1.0;  // 1 = bursts unchanged, 0 = gone

  switch (mitigation) {
    case Mitigation::kNone:
      break;

    case Mitigation::kCoreSpecialization: {
      // Daemons pinned to `reserved_cores`; they no longer steal or preempt
      // compute cores (no bursts on the compute partition), but HPL runs on
      // fewer cores. Saturation: if the daemons need more than the fence,
      // the storage path throttles instead of spilling onto compute.
      const double fence = static_cast<double>(config.reserved_cores);
      const double demand = idle_load + io_load;
      outcome.storage_throughput = std::min(1.0, fence / std::max(demand, 1e-9));
      core_fence_factor = static_cast<double>(config.total_cores) /
                          static_cast<double>(config.total_cores - config.reserved_cores);
      idle_load = 0.0;
      io_load = 0.0;
      burst_suppression = 0.05;  // residual shared-LLC/membw interference
      outcome.capacity_cost =
          fence / static_cast<double>(config.total_cores);
      break;
    }

    case Mitigation::kCpuQuota: {
      // cgroup cap: daemons consume at most quota_cores; demand above the
      // cap becomes storage backlog (self-regulating client throttling).
      const double demand = idle_load + io_load;
      const double granted = std::min(demand, config.quota_cores);
      outcome.storage_throughput = granted / std::max(demand, 1e-9);
      const double scale = granted / std::max(demand, 1e-9);
      idle_load *= scale;
      io_load *= scale;
      burst_suppression = scale;  // fewer service slots -> fewer stalls
      outcome.capacity_cost = 0.0;
      break;
    }

    case Mitigation::kPlacementExemption: {
      // HPL nodes run clients only; OSTs live on the IOR nodes, which now
      // absorb the whole load (fine — they are not compute-critical). The
      // exempt nodes' SSDs are lost to the filesystem.
      idle_load = 0.10;  // helperd + client only
      io_load = 0.0;
      burst_suppression = 0.2;
      outcome.storage_throughput =
          static_cast<double>(config.ior_nodes) / allocation_osts;  // fewer OSTs
      outcome.capacity_cost =
          static_cast<double>(n) / allocation_osts;  // stranded SSD fraction
      break;
    }

    case Mitigation::kDedicatedServiceNodes: {
      // Grow the job by `service_nodes` running every service; compute nodes
      // stay clean, storage keeps full capacity (service nodes host OSTs fed
      // by NVMe-oF re-export of the compute nodes' SSDs).
      idle_load = 0.0;
      io_load = 0.0;
      burst_suppression = 0.0;
      outcome.storage_throughput = 1.0;
      outcome.capacity_cost =
          static_cast<double>(config.service_nodes) / static_cast<double>(n);
      break;
    }
  }

  std::vector<NodeInterference> nodes(static_cast<std::size_t>(n));
  for (NodeInterference& node : nodes) {
    node = ComputeInterference(idle_load, io_load, config.total_cores, config.model);
    node.burst_probability *= burst_suppression;
  }
  const double mitigated_seconds =
      MeanHplSeconds(nodes, config, 0x717A) * core_fence_factor;
  outcome.hpl_slowdown = (mitigated_seconds - clean_seconds) / clean_seconds;
  return outcome;
}

}  // namespace ofmf::workloads
