// The Discussion section's interference-mitigation strategies, implemented:
//   * core specialization — pin daemons to r reserved cores; compute loses
//     those cores but stops being preempted;
//   * CPU quota — cgroup-style cap on daemon core consumption; compute is
//     protected but the storage path backs up;
//   * placement exemption — HPL nodes carry no OST (clients only); the
//     remaining OSTs absorb the whole I/O load and node-local SSD capacity
//     on exempt nodes is lost (unless re-exported via NVMe-oF);
//   * dedicated service nodes — grow the allocation by s extra nodes that
//     run all filesystem services.
// Each strategy reports its compute protection, storage cost and capacity
// cost, so "multiple, possibly conflicting mitigations" can be compared —
// exactly what the paper asks deployments to offer.
#pragma once

#include <string>
#include <vector>

#include "workloads/hpl.hpp"
#include "workloads/interference.hpp"
#include "workloads/ior.hpp"

namespace ofmf::workloads {

enum class Mitigation {
  kNone,
  kCoreSpecialization,
  kCpuQuota,
  kPlacementExemption,
  kDedicatedServiceNodes,
};

const char* to_string(Mitigation mitigation);
std::vector<Mitigation> AllMitigations();

struct MitigationConfig {
  int hpl_nodes = 16;
  int ior_nodes = 16;            // matching layout
  int total_cores = 56;
  double idle_daemon_load = 0.36;  // core-equivalents of idle BeeOND services
  IorParams ior;

  // Strategy knobs.
  int reserved_cores = 2;        // core specialization: cores fenced off
  double quota_cores = 4.0;      // CPU quota: daemon cap (core-equivalents)
  int service_nodes = 4;         // dedicated service nodes added to the job

  int repetitions = 6;
  std::uint64_t seed = 11;
  HplSimConfig hpl;
  InterferenceModel model;
};

struct MitigationOutcome {
  Mitigation mitigation;
  /// HPL runtime relative to a clean (daemon-free) run of the same size.
  double hpl_slowdown = 0.0;
  /// Storage service throughput relative to the unmitigated case (1.0 = no
  /// storage cost; quotas/backlog push it below 1).
  double storage_throughput = 1.0;
  /// Extra hardware consumed, as a fraction of the HPL allocation (extra
  /// nodes, lost SSDs, fenced cores).
  double capacity_cost = 0.0;
};

MitigationOutcome EvaluateMitigation(Mitigation mitigation, const MitigationConfig& config);

}  // namespace ofmf::workloads
