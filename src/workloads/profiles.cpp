#include "workloads/profiles.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "workloads/hpl.hpp"
#include "workloads/ior.hpp"

namespace ofmf::workloads {

std::string ClassifyIsolation(double slowdown_fraction) {
  if (slowdown_fraction < 0.05) return "Strong";
  if (slowdown_fraction < 0.20) return "Medium-to-Strong";
  return "Weak";
}

namespace {

/// CPU-bound: per-node compute with no shared resources; a neighbour job
/// only adds scheduler jitter.
ProfileResult CpuBound(Rng& rng) {
  ProfileResult result{"CPU-bound", "Heavy use of CPU and accelerators", "HPL", 0, 0, ""};
  std::vector<NodeInterference> solo(4);
  Rng solo_rng = rng.Fork();
  const double solo_time = SimulateHplSeconds(solo, solo_rng, {40, 1.0, 0.003, 0.0});
  // Neighbour on *other* nodes: no steal, no bursts, just ambient jitter.
  std::vector<NodeInterference> contended(4);
  for (auto& node : contended) node.burst_probability = 0.01, node.burst_fraction = 0.01;
  Rng cont_rng = rng.Fork();
  const double contended_time = SimulateHplSeconds(contended, cont_rng, {40, 1.0, 0.003, 0.0});
  result.solo_score = 1.0 / solo_time;
  result.contended_score = 1.0 / contended_time;
  return result;
}

/// Memory-bound: node-local memory bandwidth; neighbours on other nodes
/// cannot touch it (disaggregated CXL pools would change this).
ProfileResult MemoryBound(Rng& rng) {
  ProfileResult result{"Memory-bound", "Reads and writes to main memory",
                       "STREAM, HPCG", 0, 0, ""};
  const double peak_gbs = 240.0;  // dual-socket ThunderX2-class triad
  result.solo_score = peak_gbs * (1.0 - 0.01 * rng.NextDouble());
  result.contended_score = peak_gbs * (1.0 - 0.02 - 0.01 * rng.NextDouble());
  return result;
}

/// Network-bound: shared switch trunks. A neighbour pushing traffic over the
/// same core links taxes collective latency measurably but not fatally.
ProfileResult NetworkBound(Rng& rng) {
  ProfileResult result{"Network-bound", "Sending and receiving data among nodes in a task",
                       "Intel MPI Benchmarks", 0, 0, ""};
  const double link_gbps = 100.0;
  // Solo: full trunk. Contended: fair-share with one neighbour on ~20% of
  // the traffic matrix crossing the shared core.
  result.solo_score = link_gbps * (0.97 + 0.02 * rng.NextDouble());
  const double crossing_fraction = 0.20;
  const double shared = link_gbps * (1.0 - crossing_fraction) +
                        (link_gbps / 2.0) * crossing_fraction;
  result.contended_score = shared * (0.97 + 0.02 * rng.NextDouble());
  return result;
}

/// Shared-filesystem profiles: service capacity is split across every job
/// hammering the same daemons. `weight` scales how much of the bottleneck
/// resource the contender takes.
ProfileResult SharedFsProfile(Rng& rng, const std::string& name,
                              const std::string& description,
                              const std::string& benchmark, double contender_share) {
  ProfileResult result{name, description, benchmark, 0, 0, ""};
  const double capacity_kiops = 350.0;
  result.solo_score = capacity_kiops * (0.98 + 0.04 * rng.NextDouble());
  result.contended_score =
      capacity_kiops * (1.0 - contender_share) * (0.98 + 0.04 * rng.NextDouble());
  return result;
}

}  // namespace

std::vector<ProfileResult> RunProfileSuite(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<ProfileResult> results;
  results.push_back(CpuBound(rng));
  results.push_back(MemoryBound(rng));
  results.push_back(NetworkBound(rng));
  results.push_back(SharedFsProfile(rng, "IOPs-bound",
                                    "Many small reads/writes to a few files", "IOR-hard",
                                    0.45));
  results.push_back(SharedFsProfile(rng, "Bandwidth-bound",
                                    "Large reads/writes to a few files", "IOR-easy", 0.40));
  results.push_back(SharedFsProfile(rng, "Metadata-bound",
                                    "Many small reads/writes to many files", "mdtest",
                                    0.55));
  for (ProfileResult& result : results) {
    result.isolation = ClassifyIsolation(result.slowdown_fraction());
  }
  return results;
}

}  // namespace ofmf::workloads
