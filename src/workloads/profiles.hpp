// Table I: performance profiles, their representative benchmarks, and the
// degree of isolation HPC users can expect. Each profile runs a small model
// kernel solo and again with a contending neighbour job on the shared
// substrate; the measured slowdown is classified into the paper's
// Strong / Medium-to-Strong / Weak bands.
#pragma once

#include <string>
#include <vector>

namespace ofmf::workloads {

struct ProfileResult {
  std::string profile;       // "CPU-bound"
  std::string description;
  std::string benchmark;     // "HPL"
  double solo_score = 0.0;   // profile-specific throughput metric
  double contended_score = 0.0;
  double slowdown_fraction() const {
    return solo_score <= 0.0 ? 0.0 : (solo_score - contended_score) / solo_score;
  }
  std::string isolation;     // classified band
};

/// Classification thresholds on contention slowdown.
std::string ClassifyIsolation(double slowdown_fraction);

/// Runs all six profiles with a fixed seed.
std::vector<ProfileResult> RunProfileSuite(std::uint64_t seed = 7);

}  // namespace ofmf::workloads
