// ClusterAdapter tests (cluster pool <-> OFMF mirroring, telemetry) plus
// whole-tree referential-integrity property checks over a fully populated
// service.
#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include "common/strings.hpp"
#include "common/units.hpp"
#include "composability/adapter.hpp"
#include "composability/client.hpp"
#include "composability/manager.hpp"
#include "json/serialize.hpp"
#include "ofmf/service.hpp"
#include "ofmf/uris.hpp"

namespace ofmf::composability {
namespace {

using cluster::PooledDevice;
using cluster::ResourceKind;
using json::Json;

class AdapterTest : public ::testing::Test {
 protected:
  AdapterTest() {
    cluster::ClusterSpec spec;
    spec.node_count = 3;
    machine_ = std::make_unique<cluster::Cluster>(spec);
    auto& pool = machine_->pool();
    EXPECT_TRUE(pool.AddDevice({"cpu-0", ResourceKind::kCpu, 28, "rack0", "", false,
                                180, 70}).ok());
    EXPECT_TRUE(pool.AddDevice({"cpu-1", ResourceKind::kCpu, 28, "rack0", "", false,
                                180, 70}).ok());
    EXPECT_TRUE(pool.AddDevice({"gpu-0", ResourceKind::kGpu, 2, "rack0", "", false,
                                600, 110}).ok());
    EXPECT_TRUE(pool.AddDevice({"cxl-0", ResourceKind::kMemoryCxl, 256 * GiB, "rack1",
                                "", false, 100, 50}).ok());
    EXPECT_TRUE(pool.AddDevice({"nvme-0", ResourceKind::kNvme, 894 * GiB, "rack1", "",
                                false, 12, 5}).ok());
    EXPECT_TRUE(ofmf_.Bootstrap().ok());
    adapter_ = std::make_unique<ClusterAdapter>(*machine_, ofmf_);
  }

  std::unique_ptr<cluster::Cluster> machine_;
  core::OfmfService ofmf_;
  std::unique_ptr<ClusterAdapter> adapter_;
};

TEST_F(AdapterTest, PublishCreatesBlocksAndChassis) {
  ASSERT_TRUE(adapter_->Publish().ok());
  EXPECT_EQ(adapter_->published_blocks(), 5u);
  EXPECT_EQ(adapter_->Publish().code(), ErrorCode::kFailedPrecondition);

  // Block capabilities reflect pool device kinds.
  const Json cpu = *ofmf_.tree().Get(adapter_->BlockUriOf("cpu-0"));
  EXPECT_EQ(core::CapabilityFromPayload(cpu).cores, 28);
  EXPECT_EQ(core::CapabilityFromPayload(cpu).block_type, "Compute");
  const Json cxl = *ofmf_.tree().Get(adapter_->BlockUriOf("cxl-0"));
  EXPECT_DOUBLE_EQ(core::CapabilityFromPayload(cxl).memory_gib, 256);
  const Json nvme = *ofmf_.tree().Get(adapter_->BlockUriOf("nvme-0"));
  EXPECT_DOUBLE_EQ(core::CapabilityFromPayload(nvme).storage_gib, 894);
  const Json gpu = *ofmf_.tree().Get(adapter_->BlockUriOf("gpu-0"));
  EXPECT_EQ(core::CapabilityFromPayload(gpu).gpus, 2);

  // Chassis per node.
  const auto chassis = ofmf_.tree().Members(core::kChassis);
  ASSERT_TRUE(chassis.ok());
  EXPECT_EQ(chassis->size(), 3u);
  const Json node = *ofmf_.tree().Get((*chassis)[0]);
  EXPECT_EQ(node.GetString("ChassisType"), "Sled");
  EXPECT_EQ(node.at("Oem").at("Ofmf").GetInt("Cores"), 56);
}

TEST_F(AdapterTest, CompositionStateMirrorsIntoPool) {
  ASSERT_TRUE(adapter_->Publish().ok());
  OfmfClient client(std::make_unique<http::InProcessClient>(ofmf_.Handler()));
  ComposabilityManager manager(client);

  CompositionRequest request;
  request.name = "mirrored";
  request.cores = 40;
  request.memory_gib = 100;
  auto composed = manager.Compose(request);
  ASSERT_TRUE(composed.ok()) << composed.status().ToString();

  // The underlying pool devices are now claimed and in use.
  int claimed = 0;
  for (const PooledDevice& device : machine_->pool().Devices()) {
    if (!device.claimed_by.empty()) {
      ++claimed;
      EXPECT_EQ(device.claimed_by, "ofmf-composition");
      EXPECT_TRUE(device.in_use);
    }
  }
  EXPECT_EQ(claimed, static_cast<int>(composed->block_uris.size()));

  // Decompose releases them.
  ASSERT_TRUE(manager.Decompose(composed->system_uri).ok());
  for (const PooledDevice& device : machine_->pool().Devices()) {
    EXPECT_TRUE(device.claimed_by.empty()) << device.id;
  }
}

TEST_F(AdapterTest, TelemetrySnapshots) {
  EXPECT_EQ(adapter_->PushTelemetry().code(), ErrorCode::kFailedPrecondition);
  ASSERT_TRUE(adapter_->Publish().ok());
  ASSERT_TRUE(adapter_->PushTelemetry().ok());

  const Json power = *ofmf_.telemetry().GetReport("cluster-power");
  const auto& values = power.at("MetricValues").as_array();
  ASSERT_GE(values.size(), 2u);
  EXPECT_EQ(values[0].GetString("MetricId"), "PowerConsumedWatts");
  EXPECT_GT(values[0].GetDouble("MetricValue"), 0.0);

  const Json pool = *ofmf_.telemetry().GetReport("pool-utilization");
  bool saw_cpu_free = false;
  for (const Json& value : pool.at("MetricValues").as_array()) {
    if (value.GetString("MetricId") == "CPUFreeCapacity") {
      saw_cpu_free = true;
      EXPECT_DOUBLE_EQ(value.GetDouble("MetricValue"), 56.0);
    }
  }
  EXPECT_TRUE(saw_cpu_free);

  // Repeated pushes overwrite, not accumulate.
  ASSERT_TRUE(adapter_->PushTelemetry().ok());
  EXPECT_EQ(ofmf_.telemetry().ReportIds().size(), 2u);
}

// ---------------------------------------------------------------------------
// Whole-tree referential integrity: every @odata.id reachable from the
// service root resolves; every collection member exists; every resource
// carries the mandatory annotations. Run over a fully populated service.
// ---------------------------------------------------------------------------
void CollectRefs(const Json& node, std::vector<std::string>& refs) {
  if (node.is_object()) {
    for (const auto& [key, value] : node.as_object()) {
      if (key == "@odata.id" && value.is_string()) refs.push_back(value.as_string());
      CollectRefs(value, refs);
    }
  } else if (node.is_array()) {
    for (const Json& item : node.as_array()) CollectRefs(item, refs);
  }
}

TEST_F(AdapterTest, TreeReferentialIntegrity) {
  ASSERT_TRUE(adapter_->Publish().ok());
  ASSERT_TRUE(adapter_->PushTelemetry().ok());
  OfmfClient client(std::make_unique<http::InProcessClient>(ofmf_.Handler()));
  ComposabilityManager manager(client);
  CompositionRequest request;
  request.cores = 20;
  request.memory_gib = 32;
  ASSERT_TRUE(manager.Compose(request).ok());

  std::size_t visited = 0;
  for (const std::string& uri : ofmf_.tree().UrisUnder("/")) {
    const auto doc = ofmf_.tree().Get(uri);
    ASSERT_TRUE(doc.ok()) << uri;
    ++visited;
    // Mandatory annotations.
    EXPECT_EQ(doc->GetString("@odata.id"), uri);
    EXPECT_TRUE(strings::StartsWith(doc->GetString("@odata.type"), "#")) << uri;
    EXPECT_FALSE(doc->GetString("@odata.etag").empty()) << uri;
    // Every reference resolves.
    std::vector<std::string> refs;
    CollectRefs(*doc, refs);
    for (const std::string& ref : refs) {
      EXPECT_TRUE(ofmf_.tree().Exists(ref)) << uri << " -> dangling " << ref;
    }
  }
  EXPECT_GE(visited, 25u);  // the populated service is substantial
}

TEST_F(AdapterTest, EveryResourceServesOverRest) {
  ASSERT_TRUE(adapter_->Publish().ok());
  OfmfClient client(std::make_unique<http::InProcessClient>(ofmf_.Handler()));
  for (const std::string& uri : ofmf_.tree().UrisUnder("/")) {
    const auto doc = client.Get(uri);
    EXPECT_TRUE(doc.ok()) << uri << ": " << doc.status().ToString();
  }
}

}  // namespace
}  // namespace ofmf::composability
