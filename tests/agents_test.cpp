#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include "agents/cxl_agent.hpp"
#include "agents/ethernet_agent.hpp"
#include "agents/genz_agent.hpp"
#include "agents/ib_agent.hpp"
#include "agents/nvmeof_agent.hpp"
#include "json/parse.hpp"
#include "json/pointer.hpp"
#include "json/serialize.hpp"
#include "ofmf/service.hpp"
#include "ofmf/uris.hpp"
#include "agents/port_publisher.hpp"
#include "redfish/conformance.hpp"

namespace ofmf::agents {
namespace {

using json::Json;
using json::Parse;
using ::testing::HasSubstr;

/// hostA -- sw0 -- sw1 -- memB, plus a backup trunk.
struct FabricWorld {
  fabricsim::FabricGraph graph;
  FabricWorld() {
    EXPECT_TRUE(graph.AddVertex("sw0", fabricsim::VertexKind::kSwitch, 8).ok());
    EXPECT_TRUE(graph.AddVertex("sw1", fabricsim::VertexKind::kSwitch, 8).ok());
    EXPECT_TRUE(graph.AddVertex("hostA", fabricsim::VertexKind::kDevice, 2).ok());
    EXPECT_TRUE(graph.AddVertex("memB", fabricsim::VertexKind::kDevice, 2).ok());
    EXPECT_TRUE(graph.Connect("hostA", 0, "sw0", 0).ok());
    EXPECT_TRUE(graph.Connect("sw0", 1, "sw1", 1).ok());
    EXPECT_TRUE(graph.Connect("sw0", 2, "sw1", 2).ok());
    EXPECT_TRUE(graph.Connect("sw1", 0, "memB", 0).ok());
  }
};

std::string Ep(const std::string& fabric, const std::string& name) {
  return core::FabricUri(fabric) + "/Endpoints/" + name;
}

// -------------------------------------------------------------- CXL agent ---

class CxlAgentTest : public ::testing::Test {
 protected:
  CxlAgentTest() : manager_(world_.graph) {
    EXPECT_TRUE(manager_.RegisterMemoryDevice("memB", 1024, 4).ok());
    EXPECT_TRUE(manager_.RegisterHost("hostA").ok());
    EXPECT_TRUE(ofmf_.Bootstrap().ok());
    EXPECT_TRUE(ofmf_.RegisterAgent(std::make_shared<CxlAgent>("CXL", manager_)).ok());
  }

  http::Response DoJson(http::Method method, const std::string& target, const Json& body) {
    return ofmf_.Handle(http::MakeJsonRequest(method, target, body));
  }

  FabricWorld world_;
  fabricsim::CxlFabricManager manager_;
  core::OfmfService ofmf_;
};

TEST_F(CxlAgentTest, InventoryPublished) {
  const Json fabric = *ofmf_.tree().Get(core::FabricUri("CXL"));
  EXPECT_EQ(fabric.GetString("FabricType"), "CXL");
  const Json host = *ofmf_.tree().Get(Ep("CXL", "hostA"));
  EXPECT_EQ(host.GetString("EndpointRole"), "Initiator");
  const Json target = *ofmf_.tree().Get(Ep("CXL", "memB"));
  EXPECT_EQ(target.GetString("EndpointRole"), "Target");
  EXPECT_EQ(target.at("ConnectedEntities").as_array().size(), 4u);  // 4 LDs
  EXPECT_TRUE(ofmf_.tree().Exists(core::FabricUri("CXL") + "/Switches/sw0"));
  // Registered with the AggregationService.
  EXPECT_TRUE(ofmf_.tree().Exists(std::string(core::kAggregationSources) +
                                  "/cxl-agent/CXL"));
}

TEST_F(CxlAgentTest, ConnectionBindsLogicalDeviceNatively) {
  const http::Response created = DoJson(
      http::Method::kPost, core::FabricUri("CXL") + "/Connections",
      Json::Obj({{"Name", "mem-attach"},
                 {"ConnectionType", "Memory"},
                 {"Links",
                  Json::Obj({{"InitiatorEndpoints",
                              Json::Arr({Json::Obj({{"@odata.id", Ep("CXL", "hostA")}})})},
                             {"TargetEndpoints",
                              Json::Arr({Json::Obj({{"@odata.id",
                                                     Ep("CXL", "memB")}})})}})}}));
  ASSERT_EQ(created.status, 201) << created.body;
  const std::string connection_uri = created.headers.GetOr("Location", "");

  // Native state changed: one LD bound, a decoder programmed.
  EXPECT_EQ(manager_.UnboundCapacityBytes(), 768u);
  EXPECT_EQ(manager_.ListDecoders("hostA").size(), 1u);
  const Json connection = *ofmf_.tree().Get(connection_uri);
  EXPECT_EQ(connection.at("MemoryChunkInfo").as_array()[0].GetInt("CapacityBytes"), 256);

  // DELETE unbinds natively.
  EXPECT_EQ(ofmf_.Handle(http::MakeRequest(http::Method::kDelete, connection_uri)).status,
            204);
  EXPECT_EQ(manager_.UnboundCapacityBytes(), 1024u);
  EXPECT_TRUE(manager_.ListDecoders("hostA").empty());
}

TEST_F(CxlAgentTest, ConnectionsExhaustLogicalDevices) {
  const Json body = Json::Obj(
      {{"Name", "attach"},
       {"ConnectionType", "Memory"},
       {"Links",
        Json::Obj({{"InitiatorEndpoints",
                    Json::Arr({Json::Obj({{"@odata.id", Ep("CXL", "hostA")}})})},
                   {"TargetEndpoints",
                    Json::Arr({Json::Obj({{"@odata.id", Ep("CXL", "memB")}})})}})}});
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(DoJson(http::Method::kPost, core::FabricUri("CXL") + "/Connections", body)
                  .status,
              201);
  }
  EXPECT_EQ(DoJson(http::Method::kPost, core::FabricUri("CXL") + "/Connections", body)
                .status,
            507);  // no unbound LD left
}

TEST_F(CxlAgentTest, LinkDownSurfacesAsAlertAndStatusChange) {
  auto sub = ofmf_.events().Subscribe(*Parse(
      R"({"Destination":"ofmf-internal://w","Protocol":"OEM","EventTypes":["Alert"]})"));
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(world_.graph.SetLinkUp("memB", 0, false).ok());
  auto events = ofmf_.events().Drain(*sub);
  ASSERT_TRUE(events.ok());
  ASSERT_GE(events->size(), 1u);
  // Endpoint status flipped in the tree.
  const Json endpoint = *ofmf_.tree().Get(Ep("CXL", "memB"));
  EXPECT_EQ(endpoint.at("Status").GetString("State"), "UnavailableOffline");
  // Link restoration flips it back.
  ASSERT_TRUE(world_.graph.SetLinkUp("memB", 0, true).ok());
  EXPECT_EQ(ofmf_.tree().Get(Ep("CXL", "memB"))->at("Status").GetString("State"),
            "Enabled");
}

TEST_F(CxlAgentTest, ZoneCreateAndDelete) {
  const http::Response created = DoJson(
      http::Method::kPost, core::FabricUri("CXL") + "/Zones",
      Json::Obj({{"Name", "z"},
                 {"Links", Json::Obj({{"Endpoints",
                                       Json::Arr({Json::Obj(
                                           {{"@odata.id", Ep("CXL", "hostA")}})})}})}}));
  ASSERT_EQ(created.status, 201);
  const std::string zone_uri = created.headers.GetOr("Location", "");
  EXPECT_EQ(ofmf_.Handle(http::MakeRequest(http::Method::kDelete, zone_uri)).status, 204);
}

TEST_F(CxlAgentTest, FabricItselfProtectedFromDelete) {
  EXPECT_EQ(
      ofmf_.Handle(http::MakeRequest(http::Method::kDelete, core::FabricUri("CXL"))).status,
      403);
}

TEST_F(CxlAgentTest, SwitchPortsPublishedWithPeers) {
  const std::string ports_uri = core::FabricUri("CXL") + "/Switches/sw0/Ports";
  const auto ports = ofmf_.tree().Members(ports_uri);
  ASSERT_TRUE(ports.ok());
  EXPECT_EQ(ports->size(), 3u);  // hostA uplink + two trunks
  const Json port0 = *ofmf_.tree().Get(PortUri(core::FabricUri("CXL"), "sw0", 0));
  EXPECT_EQ(port0.GetString("LinkStatus"), "LinkUp");
  EXPECT_EQ(port0.GetString("PortProtocol"), "CXL");
  EXPECT_EQ(port0.at("Oem").at("Ofmf").GetString("Peer"), "hostA");
  // The switch resource links its Ports collection.
  const Json sw = *ofmf_.tree().Get(core::FabricUri("CXL") + "/Switches/sw0");
  EXPECT_EQ(sw.at("Ports").GetString("@odata.id"), ports_uri);
}

TEST_F(CxlAgentTest, PortLinkStatusTracksGraph) {
  const std::string port_uri = PortUri(core::FabricUri("CXL"), "sw0", 1);
  EXPECT_EQ(ofmf_.tree().Get(port_uri)->GetString("LinkStatus"), "LinkUp");
  ASSERT_TRUE(world_.graph.SetLinkUp("sw0", 1, false).ok());
  const Json down = *ofmf_.tree().Get(port_uri);
  EXPECT_EQ(down.GetString("LinkStatus"), "LinkDown");
  EXPECT_EQ(down.at("Status").GetString("Health"), "Critical");
  ASSERT_TRUE(world_.graph.SetLinkUp("sw0", 1, true).ok());
  EXPECT_EQ(ofmf_.tree().Get(port_uri)->GetString("LinkStatus"), "LinkUp");
}

TEST_F(CxlAgentTest, SecondAgentForSameFabricRejected) {
  EXPECT_EQ(ofmf_.RegisterAgent(std::make_shared<CxlAgent>("CXL", manager_)).code(),
            ErrorCode::kAlreadyExists);
}

// --------------------------------------------------------------- IB agent ---

class IbAgentTest : public ::testing::Test {
 protected:
  IbAgentTest() : sm_(world_.graph) {
    EXPECT_TRUE(ofmf_.Bootstrap().ok());
    EXPECT_TRUE(ofmf_.RegisterAgent(std::make_shared<IbAgent>("IB", sm_)).ok());
  }
  http::Response DoJson(http::Method method, const std::string& target, const Json& body) {
    return ofmf_.Handle(http::MakeJsonRequest(method, target, body));
  }

  FabricWorld world_;
  fabricsim::IbSubnetManager sm_;
  core::OfmfService ofmf_;
};

TEST_F(IbAgentTest, InventorySplitsSwitchesAndEndpoints) {
  EXPECT_TRUE(ofmf_.tree().Exists(Ep("IB", "hostA")));
  EXPECT_TRUE(ofmf_.tree().Exists(Ep("IB", "memB")));
  EXPECT_TRUE(ofmf_.tree().Exists(core::FabricUri("IB") + "/Switches/sw0"));
  EXPECT_FALSE(ofmf_.tree().Exists(Ep("IB", "sw0")));
  // LIDs exposed via Oem.
  const Json endpoint = *ofmf_.tree().Get(Ep("IB", "hostA"));
  EXPECT_GT(endpoint.at("Oem").at("Ofmf").GetInt("Lid"), 0);
}

TEST_F(IbAgentTest, ZoneBecomesPartitionNatively) {
  const http::Response created = DoJson(
      http::Method::kPost, core::FabricUri("IB") + "/Zones",
      Json::Obj({{"Name", "job-zone"},
                 {"Links",
                  Json::Obj({{"Endpoints",
                              Json::Arr({Json::Obj({{"@odata.id", Ep("IB", "hostA")}}),
                                         Json::Obj({{"@odata.id",
                                                     Ep("IB", "memB")}})})}})}}));
  ASSERT_EQ(created.status, 201) << created.body;
  const std::string zone_uri = created.headers.GetOr("Location", "");
  const Json zone = *ofmf_.tree().Get(zone_uri);
  const auto pkey = static_cast<fabricsim::PKey>(zone.at("Oem").at("Ofmf").GetInt("PKey"));
  EXPECT_EQ(sm_.PartitionMembers(pkey).size(), 2u);

  // Deleting the zone removes the partition.
  EXPECT_EQ(ofmf_.Handle(http::MakeRequest(http::Method::kDelete, zone_uri)).status, 204);
  EXPECT_TRUE(sm_.PartitionMembers(pkey).empty());
}

TEST_F(IbAgentTest, ConnectionCarriesPathRecord) {
  const http::Response created = DoJson(
      http::Method::kPost, core::FabricUri("IB") + "/Connections",
      Json::Obj({{"Name", "rdma"},
                 {"ConnectionType", "Network"},
                 {"Links",
                  Json::Obj({{"InitiatorEndpoints",
                              Json::Arr({Json::Obj({{"@odata.id", Ep("IB", "hostA")}})})},
                             {"TargetEndpoints",
                              Json::Arr({Json::Obj({{"@odata.id",
                                                     Ep("IB", "memB")}})})}})}}));
  ASSERT_EQ(created.status, 201) << created.body;
  const Json connection = *Parse(created.body);
  EXPECT_GT(connection.at("Oem").at("Ofmf").GetDouble("LatencyNs"), 0.0);
  EXPECT_EQ(connection.at("Oem").at("Ofmf").GetInt("HopCount"), 4);
}

TEST_F(IbAgentTest, ConnectionWithQosReservation) {
  auto make_body = [&](double gbps) {
    return Json::Obj(
        {{"Name", "qos"},
         {"ConnectionType", "Network"},
         {"Links",
          Json::Obj({{"InitiatorEndpoints",
                      Json::Arr({Json::Obj({{"@odata.id", Ep("IB", "hostA")}})})},
                     {"TargetEndpoints",
                      Json::Arr({Json::Obj({{"@odata.id", Ep("IB", "memB")}})})}})},
         {"Oem", Json::Obj({{"Ofmf", Json::Obj({{"ReserveGbps", gbps}})}})}});
  };
  const http::Response created =
      DoJson(http::Method::kPost, core::FabricUri("IB") + "/Connections", make_body(80));
  ASSERT_EQ(created.status, 201) << created.body;
  const Json connection = *Parse(created.body);
  EXPECT_DOUBLE_EQ(connection.at("Oem").at("Ofmf").GetDouble("ReservedGbps"), 80.0);
  EXPECT_DOUBLE_EQ(world_.graph.CommittedGbps("hostA", 0), 80.0);

  // A second 80 Gbps ask exceeds the 100 Gbps uplink -> admission rejects.
  EXPECT_EQ(DoJson(http::Method::kPost, core::FabricUri("IB") + "/Connections",
                   make_body(80))
                .status,
            507);

  // Deleting the connection releases the reservation.
  const std::string uri = created.headers.GetOr("Location", "");
  EXPECT_EQ(ofmf_.Handle(http::MakeRequest(http::Method::kDelete, uri)).status, 204);
  EXPECT_DOUBLE_EQ(world_.graph.CommittedGbps("hostA", 0), 0.0);
  EXPECT_TRUE(world_.graph.Reservations().empty());
}

TEST_F(IbAgentTest, ConnectionFailsAcrossCutFabric) {
  ASSERT_TRUE(world_.graph.SetLinkUp("sw0", 1, false).ok());
  ASSERT_TRUE(world_.graph.SetLinkUp("sw0", 2, false).ok());
  const http::Response created = DoJson(
      http::Method::kPost, core::FabricUri("IB") + "/Connections",
      Json::Obj({{"Name", "rdma"},
                 {"ConnectionType", "Network"},
                 {"Links",
                  Json::Obj({{"InitiatorEndpoints",
                              Json::Arr({Json::Obj({{"@odata.id", Ep("IB", "hostA")}})})},
                             {"TargetEndpoints",
                              Json::Arr({Json::Obj({{"@odata.id",
                                                     Ep("IB", "memB")}})})}})}}));
  EXPECT_EQ(created.status, 404);  // no path record
}

TEST_F(IbAgentTest, SwitchPortsPublishedAndSynced) {
  const auto ports = ofmf_.tree().Members(core::FabricUri("IB") + "/Switches/sw1/Ports");
  ASSERT_TRUE(ports.ok());
  EXPECT_EQ(ports->size(), 3u);  // two trunks + memB uplink
  const std::string port_uri = PortUri(core::FabricUri("IB"), "sw1", 0);
  ASSERT_TRUE(world_.graph.SetLinkUp("sw1", 0, false).ok());
  EXPECT_EQ(ofmf_.tree().Get(port_uri)->GetString("LinkStatus"), "LinkDown");
}

TEST_F(IbAgentTest, TrapsUpdateEndpointStatus) {
  ASSERT_TRUE(world_.graph.SetLinkUp("hostA", 0, false).ok());
  EXPECT_EQ(ofmf_.tree().Get(Ep("IB", "hostA"))->at("Status").GetString("State"),
            "UnavailableOffline");
  ASSERT_TRUE(world_.graph.SetLinkUp("hostA", 0, true).ok());
  EXPECT_EQ(ofmf_.tree().Get(Ep("IB", "hostA"))->at("Status").GetString("State"),
            "Enabled");
}

// ----------------------------------------------------------- NVMe-oF agent ---

class NvmeofAgentTest : public ::testing::Test {
 protected:
  static constexpr const char* kNqn = "nqn.2026-01.org.ofmf:pool0";
  static constexpr const char* kHostNqn = "nqn.2026-01.org.ofmf:hostA";

  NvmeofAgentTest() : manager_(world_.graph) {
    EXPECT_TRUE(manager_.CreateSubsystem(kNqn, "memB").ok());
    EXPECT_TRUE(manager_.AddNamespace(kNqn, 1, 512).ok());
    EXPECT_TRUE(manager_.AddNamespace(kNqn, 2, 256).ok());
    EXPECT_TRUE(manager_.RegisterHostPort(kHostNqn, "hostA").ok());
    EXPECT_TRUE(ofmf_.Bootstrap().ok());
    EXPECT_TRUE(
        ofmf_.RegisterAgent(std::make_shared<NvmeofAgent>("NVMeoF", manager_)).ok());
  }
  http::Response DoJson(http::Method method, const std::string& target, const Json& body) {
    return ofmf_.Handle(http::MakeJsonRequest(method, target, body));
  }

  FabricWorld world_;
  fabricsim::NvmeofTargetManager manager_;
  core::OfmfService ofmf_;
};

TEST_F(NvmeofAgentTest, SwordfishInventoryPublished) {
  const std::string service_uri = std::string(core::kStorageServices) + "/NVMeoF";
  EXPECT_TRUE(ofmf_.tree().Exists(service_uri));
  const auto pools = ofmf_.tree().Members(service_uri + "/StoragePools");
  ASSERT_TRUE(pools.ok());
  ASSERT_EQ(pools->size(), 1u);
  const Json pool = *ofmf_.tree().Get((*pools)[0]);
  EXPECT_EQ(json::ResolvePointerRef(pool, "/Capacity/Data/AllocatedBytes")->as_int(), 768);
  const auto volumes = ofmf_.tree().Members(service_uri + "/Volumes");
  ASSERT_TRUE(volumes.ok());
  EXPECT_EQ(volumes->size(), 2u);  // one per namespace
  EXPECT_TRUE(ofmf_.tree().Exists(Ep("NVMeoF", kNqn)));
}

TEST_F(NvmeofAgentTest, ConnectionAllowsHostAndConnects) {
  const http::Response created = DoJson(
      http::Method::kPost, core::FabricUri("NVMeoF") + "/Connections",
      Json::Obj({{"Name", "nvme-attach"},
                 {"ConnectionType", "Storage"},
                 {"Oem", Json::Obj({{"Ofmf", Json::Obj({{"HostNqn", kHostNqn},
                                                        {"SubsystemNqn", kNqn}})}})}}));
  ASSERT_EQ(created.status, 201) << created.body;
  const auto controllers = manager_.ListControllers();
  ASSERT_EQ(controllers.size(), 1u);
  EXPECT_TRUE(controllers[0].connected);

  const std::string connection_uri = created.headers.GetOr("Location", "");
  EXPECT_EQ(ofmf_.Handle(http::MakeRequest(http::Method::kDelete, connection_uri)).status,
            204);
  EXPECT_FALSE(manager_.ListControllers()[0].connected);
}

TEST_F(NvmeofAgentTest, ConnectionBodyValidated) {
  EXPECT_EQ(DoJson(http::Method::kPost, core::FabricUri("NVMeoF") + "/Connections",
                   Json::Obj({{"Name", "bad"}, {"ConnectionType", "Storage"}}))
                .status,
            400);
}

TEST_F(NvmeofAgentTest, PathLossBecomesAlert) {
  ASSERT_EQ(DoJson(http::Method::kPost, core::FabricUri("NVMeoF") + "/Connections",
                   Json::Obj({{"Name", "a"},
                              {"ConnectionType", "Storage"},
                              {"Oem", Json::Obj({{"Ofmf",
                                                  Json::Obj({{"HostNqn", kHostNqn},
                                                             {"SubsystemNqn",
                                                              kNqn}})}})}}))
                .status,
            201);
  auto sub = ofmf_.events().Subscribe(*Parse(
      R"({"Destination":"ofmf-internal://w","Protocol":"OEM","EventTypes":["Alert"]})"));
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(world_.graph.SetLinkUp("memB", 0, false).ok());
  auto events = ofmf_.events().Drain(*sub);
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 1u);
  EXPECT_THAT(json::Serialize((*events)[0]), HasSubstr("PathLost"));
}

// ----------------------------------------------------------- Ethernet agent ---

class EthernetAgentTest : public ::testing::Test {
 protected:
  EthernetAgentTest() : manager_(world_.graph) {
    EXPECT_TRUE(ofmf_.Bootstrap().ok());
    std::map<std::string, std::pair<std::string, int>> uplinks{
        {"hostA", {"sw0", 0}}, {"memB", {"sw1", 0}}};
    EXPECT_TRUE(
        ofmf_.RegisterAgent(std::make_shared<EthernetAgent>("Eth", manager_, uplinks))
            .ok());
  }
  http::Response DoJson(http::Method method, const std::string& target, const Json& body) {
    return ofmf_.Handle(http::MakeJsonRequest(method, target, body));
  }

  FabricWorld world_;
  fabricsim::EthernetSwitchManager manager_;
  core::OfmfService ofmf_;
};

TEST_F(EthernetAgentTest, ZoneCreatesVlanWithMembership) {
  const http::Response created = DoJson(
      http::Method::kPost, core::FabricUri("Eth") + "/Zones",
      Json::Obj({{"Name", "tenant-a"},
                 {"Links",
                  Json::Obj({{"Endpoints",
                              Json::Arr({Json::Obj({{"@odata.id", Ep("Eth", "hostA")}}),
                                         Json::Obj({{"@odata.id",
                                                     Ep("Eth", "memB")}})})}})}}));
  ASSERT_EQ(created.status, 201) << created.body;
  const Json zone = *Parse(created.body);
  const auto vlan = static_cast<std::uint16_t>(zone.at("Oem").at("Ofmf").GetInt("VlanId"));
  EXPECT_TRUE(manager_.CanCommunicate(vlan, "hostA", "memB"));
  EXPECT_EQ(manager_.VlanPorts(vlan).size(), 2u);

  // Connection inside the VLAN succeeds...
  const http::Response connection = DoJson(
      http::Method::kPost, core::FabricUri("Eth") + "/Connections",
      Json::Obj({{"Name", "flow"},
                 {"ConnectionType", "Network"},
                 {"Links",
                  Json::Obj({{"InitiatorEndpoints",
                              Json::Arr({Json::Obj({{"@odata.id", Ep("Eth", "hostA")}})})},
                             {"TargetEndpoints",
                              Json::Arr({Json::Obj({{"@odata.id", Ep("Eth", "memB")}})})}})},
                 {"Oem", Json::Obj({{"Ofmf", Json::Obj({{"VlanId", vlan}})}})}}));
  EXPECT_EQ(connection.status, 201) << connection.body;

  // Deleting the zone deletes the VLAN.
  const std::string zone_uri = created.headers.GetOr("Location", "");
  EXPECT_EQ(ofmf_.Handle(http::MakeRequest(http::Method::kDelete, zone_uri)).status, 204);
  EXPECT_FALSE(manager_.CanCommunicate(vlan, "hostA", "memB"));
}

TEST_F(EthernetAgentTest, ZoneWithUnknownEndpointRollsBack) {
  const std::size_t vlans_before = manager_.Vlans().size();
  const http::Response created = DoJson(
      http::Method::kPost, core::FabricUri("Eth") + "/Zones",
      Json::Obj({{"Name", "bad"},
                 {"Links", Json::Obj({{"Endpoints",
                                       Json::Arr({Json::Obj(
                                           {{"@odata.id", Ep("Eth", "ghost")}})})}})}}));
  EXPECT_EQ(created.status, 404);
  EXPECT_EQ(manager_.Vlans().size(), vlans_before);  // VLAN rolled back
}

// -------------------------------------------------------------- Gen-Z agent ---

class GenzAgentTest : public ::testing::Test {
 protected:
  GenzAgentTest() : manager_(world_.graph) {
    requester_ =
        *manager_.EnumerateComponent("hostA", fabricsim::GenzComponentClass::kProcessor);
    responder_ =
        *manager_.EnumerateComponent("memB", fabricsim::GenzComponentClass::kMemory, 4096);
    EXPECT_TRUE(ofmf_.Bootstrap().ok());
    EXPECT_TRUE(ofmf_.RegisterAgent(std::make_shared<GenzAgent>("GenZ", manager_)).ok());
  }
  http::Response DoJson(http::Method method, const std::string& target, const Json& body) {
    return ofmf_.Handle(http::MakeJsonRequest(method, target, body));
  }

  FabricWorld world_;
  fabricsim::GenzFabricManager manager_;
  fabricsim::Cid requester_ = 0;
  fabricsim::Cid responder_ = 0;
  core::OfmfService ofmf_;
};

TEST_F(GenzAgentTest, InventoryCarriesCids) {
  const Json endpoint = *ofmf_.tree().Get(Ep("GenZ", "memB"));
  EXPECT_EQ(endpoint.GetString("EndpointRole"), "Target");
  EXPECT_EQ(endpoint.at("Oem").at("Ofmf").GetInt("Cid"),
            static_cast<std::int64_t>(responder_));
  EXPECT_EQ(endpoint.at("Oem").at("Ofmf").GetInt("MemoryBytes"), 4096);
}

TEST_F(GenzAgentTest, ConnectionCreatesRegionAndGrant) {
  const http::Response created = DoJson(
      http::Method::kPost, core::FabricUri("GenZ") + "/Connections",
      Json::Obj({{"Name", "fam"},
                 {"ConnectionType", "Memory"},
                 {"Oem",
                  Json::Obj({{"Ofmf",
                              Json::Obj({{"RequesterCid",
                                          static_cast<std::int64_t>(requester_)},
                                         {"ResponderCid",
                                          static_cast<std::int64_t>(responder_)},
                                         {"OffsetBytes", 0},
                                         {"LengthBytes", 2048}})}})}}));
  ASSERT_EQ(created.status, 201) << created.body;
  ASSERT_EQ(manager_.Regions().size(), 1u);
  const fabricsim::RKey rkey = manager_.Regions()[0].rkey;
  EXPECT_TRUE(manager_.CanAccess(rkey, requester_));

  const std::string connection_uri = created.headers.GetOr("Location", "");
  EXPECT_EQ(ofmf_.Handle(http::MakeRequest(http::Method::kDelete, connection_uri)).status,
            204);
  EXPECT_TRUE(manager_.Regions().empty());
}

TEST_F(GenzAgentTest, ConnectionValidation) {
  EXPECT_EQ(DoJson(http::Method::kPost, core::FabricUri("GenZ") + "/Connections",
                   Json::Obj({{"Name", "bad"}, {"ConnectionType", "Memory"}}))
                .status,
            400);
}

// -------------------------------------------- Multi-fabric aggregation ---

TEST(MultiFabricTest, SingleTreeSpansHeterogeneousFabrics) {
  FabricWorld cxl_world, ib_world;
  fabricsim::CxlFabricManager cxl(cxl_world.graph);
  ASSERT_TRUE(cxl.RegisterMemoryDevice("memB", 512, 2).ok());
  ASSERT_TRUE(cxl.RegisterHost("hostA").ok());
  fabricsim::IbSubnetManager ib(ib_world.graph);

  core::OfmfService ofmf;
  ASSERT_TRUE(ofmf.Bootstrap().ok());
  ASSERT_TRUE(ofmf.RegisterAgent(std::make_shared<CxlAgent>("CXL", cxl)).ok());
  ASSERT_TRUE(ofmf.RegisterAgent(std::make_shared<IbAgent>("IB", ib)).ok());

  // One Redfish tree, both fabrics, one client call.
  const http::Response fabrics =
      ofmf.Handle(http::MakeRequest(http::Method::kGet, core::kFabrics));
  const Json collection = *Parse(fabrics.body);
  EXPECT_EQ(collection.GetInt("Members@odata.count"), 2);
  EXPECT_TRUE(ofmf.AgentForFabric("CXL").ok());
  EXPECT_TRUE(ofmf.AgentForFabric("IB").ok());
  EXPECT_FALSE(ofmf.AgentForFabric("Ethernet").ok());
  // Two aggregation sources listed.
  const auto sources = ofmf.tree().Members(core::kAggregationSources);
  ASSERT_TRUE(sources.ok());
  EXPECT_EQ(sources->size(), 2u);
}

TEST(MultiFabricTest, FullyPopulatedTreeIsSchemaConformant) {
  FabricWorld cxl_world, ib_world;
  fabricsim::CxlFabricManager cxl(cxl_world.graph);
  ASSERT_TRUE(cxl.RegisterMemoryDevice("memB", 512, 2).ok());
  ASSERT_TRUE(cxl.RegisterHost("hostA").ok());
  fabricsim::IbSubnetManager ib(ib_world.graph);
  fabricsim::NvmeofTargetManager nvme(ib_world.graph);
  ASSERT_TRUE(nvme.CreateSubsystem("nqn.t:s0", "memB").ok());
  ASSERT_TRUE(nvme.AddNamespace("nqn.t:s0", 1, 4096).ok());

  core::OfmfService ofmf;
  ASSERT_TRUE(ofmf.Bootstrap().ok());
  ASSERT_TRUE(ofmf.RegisterAgent(std::make_shared<CxlAgent>("CXL", cxl)).ok());
  ASSERT_TRUE(ofmf.RegisterAgent(std::make_shared<IbAgent>("IB", ib)).ok());
  ASSERT_TRUE(ofmf.RegisterAgent(std::make_shared<NvmeofAgent>("NVMeoF", nvme)).ok());

  // Exercise mutations so audited state includes zones/connections/sessions.
  http::Request login = http::MakeJsonRequest(
      http::Method::kPost, core::kSessions,
      Json::Obj({{"UserName", "admin"}, {"Password", "ofmf"}}));
  ASSERT_EQ(ofmf.Handle(login).status, 201);
  ASSERT_TRUE(ofmf.events()
                  .Subscribe(*Parse(
                      R"({"Destination":"ofmf-internal://a","Protocol":"OEM"})"))
                  .ok());
  ASSERT_TRUE(ofmf.tasks().CreateTask("audit").ok());
  ASSERT_TRUE(ofmf.telemetry().PushReport("r", {{"X", 1.0, ""}}).ok());

  const redfish::ConformanceReport report =
      redfish::AuditTree(ofmf.tree(), redfish::SchemaRegistry::BuiltIn());
  EXPECT_GT(report.resources_checked, 30u);
  EXPECT_GT(report.resources_with_schema, 8u);
  for (const redfish::ConformanceIssue& issue : report.issues) {
    ADD_FAILURE() << issue.uri << issue.pointer << ": " << issue.message;
  }
  EXPECT_TRUE(report.clean());
}

}  // namespace
}  // namespace ofmf::agents
