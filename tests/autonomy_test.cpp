// Tests for the Composability Layer's autonomic controllers: AutoHealer
// (Alert-driven connection re-creation over a real agent/fabric stack) and
// MemoryPressureWatcher (telemetry-driven OOM expansion).
#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include "agents/ib_agent.hpp"
#include "composability/autonomy.hpp"
#include "composability/client.hpp"
#include "composability/manager.hpp"
#include "json/parse.hpp"
#include "ofmf/service.hpp"
#include "ofmf/uris.hpp"

namespace ofmf::composability {
namespace {

using json::Json;
using ::testing::HasSubstr;

class AutoHealerTest : public ::testing::Test {
 protected:
  AutoHealerTest() {
    // Redundant two-switch fabric.
    EXPECT_TRUE(graph_.AddVertex("sw0", fabricsim::VertexKind::kSwitch, 8).ok());
    EXPECT_TRUE(graph_.AddVertex("sw1", fabricsim::VertexKind::kSwitch, 8).ok());
    EXPECT_TRUE(graph_.AddVertex("n1", fabricsim::VertexKind::kDevice, 2).ok());
    EXPECT_TRUE(graph_.AddVertex("n2", fabricsim::VertexKind::kDevice, 2).ok());
    EXPECT_TRUE(graph_.Connect("n1", 0, "sw0", 0, {50, 200}).ok());
    EXPECT_TRUE(graph_.Connect("n2", 0, "sw0", 1, {50, 200}).ok());
    EXPECT_TRUE(graph_.Connect("n1", 1, "sw1", 0, {90, 100}).ok());
    EXPECT_TRUE(graph_.Connect("n2", 1, "sw1", 1, {90, 100}).ok());
    sm_ = std::make_unique<fabricsim::IbSubnetManager>(graph_);
    EXPECT_TRUE(ofmf_.Bootstrap().ok());
    EXPECT_TRUE(ofmf_.RegisterAgent(std::make_shared<agents::IbAgent>("IB", *sm_)).ok());
    client_ = std::make_unique<OfmfClient>(
        std::make_unique<http::InProcessClient>(ofmf_.Handler()));
  }

  Json ConnectionBody() const {
    const std::string ep1 = core::FabricUri("IB") + "/Endpoints/n1";
    const std::string ep2 = core::FabricUri("IB") + "/Endpoints/n2";
    return Json::Obj(
        {{"Name", "mpi"},
         {"ConnectionType", "Network"},
         {"Links", Json::Obj({{"InitiatorEndpoints",
                               Json::Arr({Json::Obj({{"@odata.id", ep1}})})},
                              {"TargetEndpoints",
                               Json::Arr({Json::Obj({{"@odata.id", ep2}})})}})}});
  }

  fabricsim::FabricGraph graph_;
  std::unique_ptr<fabricsim::IbSubnetManager> sm_;
  core::OfmfService ofmf_;
  std::unique_ptr<OfmfClient> client_;
};

TEST_F(AutoHealerTest, MustArmBeforePollAndOnlyOnce) {
  AutoHealer healer(*client_);
  EXPECT_EQ(healer.Poll().status().code(), ErrorCode::kFailedPrecondition);
  ASSERT_TRUE(healer.Arm().ok());
  EXPECT_EQ(healer.Arm().code(), ErrorCode::kFailedPrecondition);
  EXPECT_TRUE(healer.Poll().ok());
}

TEST_F(AutoHealerTest, NoAlertsMeansNoWork) {
  AutoHealer healer(*client_);
  ASSERT_TRUE(healer.Arm().ok());
  const std::string conn_uri =
      *client_->Post(core::FabricUri("IB") + "/Connections", ConnectionBody());
  ASSERT_TRUE(healer.GuardConnection(conn_uri, core::FabricUri("IB") + "/Connections",
                                     ConnectionBody())
                  .ok());
  // Drain the creation noise first (connection create emits tree events,
  // but those are not Alerts).
  auto report = healer.Poll();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->alerts_seen, 0);
  EXPECT_EQ(report->connections_checked, 0);
}

TEST_F(AutoHealerTest, HealsConnectionAfterEndpointFailure) {
  AutoHealer healer(*client_);
  ASSERT_TRUE(healer.Arm().ok());
  const std::string conn_uri =
      *client_->Post(core::FabricUri("IB") + "/Connections", ConnectionBody());
  ASSERT_TRUE(healer.GuardConnection(conn_uri, core::FabricUri("IB") + "/Connections",
                                     ConnectionBody())
                  .ok());

  // Primary port of n1 dies -> trap -> Alert -> endpoint marked offline.
  // The backup link (n1:1 via sw1) stays alive, so a re-created connection
  // can route around the fault.
  ASSERT_TRUE(graph_.SetLinkUp("n1", 0, false).ok());

  auto report = healer.Poll();
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->alerts_seen, 1);
  EXPECT_EQ(report->connections_checked, 1);
  EXPECT_EQ(report->connections_healed, 1);
  EXPECT_EQ(report->heal_failures, 0);
  EXPECT_EQ(healer.guarded_count(), 1u);

  // The old URI is gone; a new connection exists with backup-path latency.
  EXPECT_FALSE(client_->Get(conn_uri).ok());
  auto members = client_->Members(core::FabricUri("IB") + "/Connections");
  ASSERT_TRUE(members.ok());
  ASSERT_EQ(members->size(), 1u);
  const Json healed = *client_->Get((*members)[0]);
  EXPECT_DOUBLE_EQ(healed.at("Oem").at("Ofmf").GetDouble("LatencyNs"), 180.0);
}

TEST_F(AutoHealerTest, HealFailureKeepsGuardForRetry) {
  AutoHealer healer(*client_);
  ASSERT_TRUE(healer.Arm().ok());
  const std::string conn_uri =
      *client_->Post(core::FabricUri("IB") + "/Connections", ConnectionBody());
  ASSERT_TRUE(healer.GuardConnection(conn_uri, core::FabricUri("IB") + "/Connections",
                                     ConnectionBody())
                  .ok());
  // Kill the whole fabric: no path remains, healing must fail.
  ASSERT_TRUE(graph_.FailVertex("sw0").ok());
  ASSERT_TRUE(graph_.FailVertex("sw1").ok());
  auto report = healer.Poll();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->connections_healed, 0);
  EXPECT_EQ(report->heal_failures, 1);
  EXPECT_EQ(healer.guarded_count(), 1u);  // kept for retry

  // Fabric returns; next Alert-triggering flap lets the retry succeed.
  ASSERT_TRUE(graph_.SetLinkUp("n1", 1, true).ok());
  ASSERT_TRUE(graph_.SetLinkUp("n2", 1, true).ok());
  auto retry = healer.Poll();
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry->connections_healed, 1);
}

TEST_F(AutoHealerTest, TransientAgentFaultHealRetriesAndSucceeds) {
  auto faults = std::make_shared<FaultInjector>();
  ofmf_.set_fault_injector(faults);
  AutoHealer healer(*client_);
  ASSERT_TRUE(healer.Arm().ok());
  const std::string conn_uri =  // agent call 1
      *client_->Post(core::FabricUri("IB") + "/Connections", ConnectionBody());
  ASSERT_TRUE(healer.GuardConnection(conn_uri, core::FabricUri("IB") + "/Connections",
                                     ConnectionBody())
                  .ok());
  // The first heal's delete (agent call 2) lands but its re-create (call 3)
  // hits a crashed agent: half-healed, the guard must survive for a retry.
  // ArmNthCall counts from the moment of arming, so the re-create is call 2.
  faults->ArmNthCall("agent.IB", FaultKind::kCrash, 2);
  ASSERT_TRUE(graph_.SetLinkUp("n1", 0, false).ok());
  auto report = healer.Poll();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->connections_healed, 0);
  EXPECT_EQ(report->heal_failures, 1);
  EXPECT_EQ(healer.guarded_count(), 1u);
  // One transient failure stays below the breaker threshold.
  EXPECT_EQ((*ofmf_.BreakerForFabric("IB"))->state(), core::BreakerState::kClosed);

  // The link-restore trap raises a fresh Alert; this time the old URI 404s
  // without an agent round-trip and the re-create (call 4) goes through.
  ASSERT_TRUE(graph_.SetLinkUp("n1", 0, true).ok());
  auto retry = healer.Poll();
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry->connections_healed, 1);
  EXPECT_EQ(retry->heal_failures, 0);
  auto members = client_->Members(core::FabricUri("IB") + "/Connections");
  ASSERT_TRUE(members.ok());
  EXPECT_EQ(members->size(), 1u);
  EXPECT_EQ(faults->calls("agent.IB"), 4u);
}

TEST_F(AutoHealerTest, GuardBookkeeping) {
  AutoHealer healer(*client_);
  EXPECT_FALSE(healer.GuardConnection("", "/c", Json::MakeObject()).ok());
  ASSERT_TRUE(healer.GuardConnection("/x", "/c", Json::MakeObject()).ok());
  EXPECT_EQ(healer.guarded_count(), 1u);
  EXPECT_TRUE(healer.UnguardConnection("/x").ok());
  EXPECT_EQ(healer.UnguardConnection("/x").code(), ErrorCode::kNotFound);
}

// ---------------------------------------------------------------------------

class MemoryWatcherTest : public ::testing::Test {
 protected:
  MemoryWatcherTest() {
    EXPECT_TRUE(ofmf_.Bootstrap().ok());
    client_ = std::make_unique<OfmfClient>(
        std::make_unique<http::InProcessClient>(ofmf_.Handler()));
    manager_ = std::make_unique<ComposabilityManager>(*client_);

    core::BlockCapability compute;
    compute.id = "cpu0";
    compute.block_type = "Compute";
    compute.cores = 56;
    compute.memory_gib = 128;
    EXPECT_TRUE(ofmf_.composition().RegisterBlock(compute).ok());
    for (int i = 0; i < 3; ++i) {
      core::BlockCapability memory;
      memory.id = "cxl" + std::to_string(i);
      memory.block_type = "Memory";
      memory.memory_gib = 256;
      EXPECT_TRUE(ofmf_.composition().RegisterBlock(memory).ok());
    }
    CompositionRequest request;
    request.name = "db";
    request.cores = 40;
    request.memory_gib = 64;
    system_uri_ = manager_->Compose(request)->system_uri;
  }

  void PushPressure(double percent) {
    ASSERT_TRUE(ofmf_.telemetry()
                    .PushReport("memory-pressure",
                                {{"MemoryUtilizationPercent", percent, system_uri_}})
                    .ok());
  }

  core::OfmfService ofmf_;
  std::unique_ptr<OfmfClient> client_;
  std::unique_ptr<ComposabilityManager> manager_;
  std::string system_uri_;
};

TEST_F(MemoryWatcherTest, ExpandsAboveThresholdOnly) {
  MemoryPressureWatcher watcher(*client_, *manager_, "memory-pressure", 90.0, 256.0);
  ASSERT_TRUE(watcher.Arm().ok());

  PushPressure(70.0);
  auto calm = watcher.Poll();
  ASSERT_TRUE(calm.ok());
  EXPECT_EQ(calm->reports_seen, 1);
  EXPECT_EQ(calm->expansions, 0);
  EXPECT_DOUBLE_EQ(manager_->systems().at(system_uri_).memory_gib, 128);

  PushPressure(95.0);
  auto hot = watcher.Poll();
  ASSERT_TRUE(hot.ok());
  EXPECT_EQ(hot->expansions, 1);
  EXPECT_DOUBLE_EQ(manager_->systems().at(system_uri_).memory_gib, 128 + 256);
  const Json system = *client_->Get(system_uri_);
  EXPECT_DOUBLE_EQ(system.at("MemorySummary").GetDouble("TotalSystemMemoryGiB"), 384);
}

TEST_F(MemoryWatcherTest, RepeatedPressureKeepsExpandingUntilPoolDry) {
  MemoryPressureWatcher watcher(*client_, *manager_, "memory-pressure", 90.0, 256.0);
  ASSERT_TRUE(watcher.Arm().ok());
  for (int i = 0; i < 3; ++i) {
    PushPressure(99.0);
    auto report = watcher.Poll();
    ASSERT_TRUE(report.ok());
    if (i < 3 - 1 + 1) {
      // 3 CXL blocks of 256 GiB: first three polls expand, then dry.
    }
  }
  EXPECT_DOUBLE_EQ(manager_->systems().at(system_uri_).memory_gib, 128 + 3 * 256);
  PushPressure(99.0);
  auto dry = watcher.Poll();
  ASSERT_TRUE(dry.ok());
  EXPECT_EQ(dry->expansions, 0);
  EXPECT_EQ(dry->expansion_failures, 1);
}

TEST_F(MemoryWatcherTest, ArmRequiredAndIdempotenceRules) {
  MemoryPressureWatcher watcher(*client_, *manager_, "memory-pressure");
  EXPECT_EQ(watcher.Poll().status().code(), ErrorCode::kFailedPrecondition);
  ASSERT_TRUE(watcher.Arm().ok());
  EXPECT_EQ(watcher.Arm().code(), ErrorCode::kFailedPrecondition);
  // No telemetry yet: nothing seen.
  auto report = watcher.Poll();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->reports_seen, 0);
}

}  // namespace
}  // namespace ofmf::composability
