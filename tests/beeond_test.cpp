#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include "beeond/beeond.hpp"
#include "cluster/cluster.hpp"
#include "common/units.hpp"

namespace ofmf::beeond {
namespace {

using ::testing::ElementsAre;
using ::testing::HasSubstr;

class BeeondTest : public ::testing::Test {
 protected:
  BeeondTest() {
    cluster::ClusterSpec spec;
    spec.node_count = 6;
    machine_ = std::make_unique<cluster::Cluster>(spec);
    for (const std::string& host : machine_->Hostnames()) {
      EXPECT_TRUE(machine_->PrepareNodeStorage(host).ok());
    }
    orchestrator_ = std::make_unique<BeeondOrchestrator>(*machine_);
  }

  std::vector<std::string> Hosts(int n) {
    auto all = machine_->Hostnames();
    return {all.begin(), all.begin() + n};
  }

  std::unique_ptr<cluster::Cluster> machine_;
  std::unique_ptr<BeeondOrchestrator> orchestrator_;
};

TEST_F(BeeondTest, RoleAssignmentMatchesPaper) {
  auto instance = orchestrator_->Start("fs1", Hosts(4));
  ASSERT_TRUE(instance.ok());
  // Lowest host: Mgmtd + Meta + OST + client; every host: OST + client.
  EXPECT_EQ(instance->mgmtd_host, "node001");
  EXPECT_THAT(instance->meta_hosts, ElementsAre("node001"));
  EXPECT_THAT(instance->ost_hosts,
              ElementsAre("node001", "node002", "node003", "node004"));
  EXPECT_EQ(instance->mount_point, "/mnt/beeond");
  EXPECT_TRUE(instance->mounted);

  const cluster::ComputeNode* lowest = *machine_->Node("node001");
  EXPECT_TRUE(lowest->HasDaemon("fs1/beeond-mgmtd"));
  EXPECT_TRUE(lowest->HasDaemon("fs1/beeond-meta"));
  EXPECT_TRUE(lowest->HasDaemon("fs1/beeond-ost"));
  EXPECT_TRUE(lowest->HasDaemon("fs1/beeond-helperd"));
  EXPECT_TRUE(lowest->HasDaemon("fs1/beeond-client"));
  const cluster::ComputeNode* other = *machine_->Node("node003");
  EXPECT_FALSE(other->HasDaemon("fs1/beeond-mgmtd"));
  EXPECT_TRUE(other->HasDaemon("fs1/beeond-ost"));
  EXPECT_TRUE(other->HasDaemon("fs1/beeond-client"));
}

TEST_F(BeeondTest, ServiceConfigsCarryPaperParameters) {
  auto instance = orchestrator_->Start("fs1", Hosts(2));
  ASSERT_TRUE(instance.ok());
  bool saw_mgmtd = false;
  for (const ServiceConfig& config : instance->services) {
    EXPECT_FALSE(config.store_dir.empty());
    EXPECT_THAT(config.log_file, HasSubstr("/var/log/"));
    EXPECT_THAT(config.pid_file, HasSubstr("/var/run/"));
    EXPECT_GT(config.port, 0);
    EXPECT_TRUE(config.daemonized);
    if (config.role == Role::kMgmtd) {
      saw_mgmtd = true;
      EXPECT_EQ(config.host, "node001");
    }
  }
  EXPECT_TRUE(saw_mgmtd);
}

TEST_F(BeeondTest, AssemblyIsScaleInvariantAndUnder3s) {
  auto small = orchestrator_->Start("small", Hosts(2));
  ASSERT_TRUE(small.ok());
  const std::vector<std::string> all = Hosts(6);
  auto big = orchestrator_->Start("big", {all.begin() + 2, all.end()});
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(small->assemble_duration, big->assemble_duration);
  EXPECT_LT(ToSeconds(small->assemble_duration), 3.0);
}

TEST_F(BeeondTest, StartValidation) {
  EXPECT_FALSE(orchestrator_->Start("x", {}).ok());
  StartOptions zero_meta;
  zero_meta.meta_count = 0;
  EXPECT_FALSE(orchestrator_->Start("x", Hosts(2), zero_meta).ok());
  StartOptions too_many_meta;
  too_many_meta.meta_count = 5;
  EXPECT_FALSE(orchestrator_->Start("x", Hosts(2), too_many_meta).ok());
  ASSERT_TRUE(orchestrator_->Start("x", Hosts(2)).ok());
  EXPECT_EQ(orchestrator_->Start("x", Hosts(2)).status().code(),
            ErrorCode::kAlreadyExists);
  // Every host exempt from storage -> no OSTs.
  StartOptions all_exempt;
  all_exempt.storage_exempt_hosts = Hosts(2);
  EXPECT_FALSE(orchestrator_->Start("y", Hosts(2), all_exempt).ok());
}

TEST_F(BeeondTest, UnsortedAndDuplicateHostsNormalized) {
  auto instance =
      orchestrator_->Start("dup", {"node003", "node001", "node003", "node002"});
  ASSERT_TRUE(instance.ok());
  EXPECT_THAT(instance->hosts, ElementsAre("node001", "node002", "node003"));
  EXPECT_EQ(instance->mgmtd_host, "node001");
  EXPECT_EQ(instance->ost_hosts.size(), 3u);
}

TEST_F(BeeondTest, UnpreparedStorageFailsAndRollsBack) {
  // Break node002's backing store.
  ASSERT_TRUE((*machine_->Node("node002"))->ssd().Unmount().ok());
  const auto failed = orchestrator_->Start("fs1", Hosts(3));
  EXPECT_EQ(failed.status().code(), ErrorCode::kFailedPrecondition);
  // No daemons may leak from the partial assembly.
  for (const std::string& host : Hosts(3)) {
    EXPECT_TRUE((*machine_->Node(host))->Daemons().empty()) << host;
  }
}

TEST_F(BeeondTest, MultipleMetadataServersSupported) {
  StartOptions options;
  options.meta_count = 3;
  auto instance = orchestrator_->Start("multi", Hosts(4), options);
  ASSERT_TRUE(instance.ok());
  EXPECT_THAT(instance->meta_hosts, ElementsAre("node001", "node002", "node003"));
  EXPECT_TRUE((*machine_->Node("node002"))->HasDaemon("multi/beeond-meta"));
}

TEST_F(BeeondTest, StorageExemptHostsAreClientsOnly) {
  StartOptions options;
  options.storage_exempt_hosts = {"node002"};
  auto instance = orchestrator_->Start("exempt", Hosts(3), options);
  ASSERT_TRUE(instance.ok());
  EXPECT_THAT(instance->ost_hosts, ElementsAre("node001", "node003"));
  EXPECT_FALSE((*machine_->Node("node002"))->HasDaemon("exempt/beeond-ost"));
  EXPECT_TRUE((*machine_->Node("node002"))->HasDaemon("exempt/beeond-client"));
}

TEST_F(BeeondTest, WriteStripesEvenlyAcrossOsts) {
  auto instance = orchestrator_->Start("fs1", Hosts(4));
  ASSERT_TRUE(instance.ok());
  const std::uint64_t total = 64 * instance->chunk_bytes;
  ASSERT_TRUE(orchestrator_->WriteFile("fs1", "node002", total).ok());
  const auto usage = orchestrator_->OstUsage("fs1");
  ASSERT_TRUE(usage.ok());
  std::uint64_t sum = 0;
  for (const auto& [host, bytes] : *usage) {
    // 64 chunks over 4 OSTs: exactly 16 chunks each.
    EXPECT_EQ(bytes, 16 * instance->chunk_bytes) << host;
    sum += bytes;
  }
  EXPECT_EQ(sum, total);
  // Data actually landed on the node SSDs.
  EXPECT_EQ((*machine_->Node("node001"))->ssd().used_bytes(), 16 * instance->chunk_bytes);
}

TEST_F(BeeondTest, WriteValidation) {
  ASSERT_TRUE(orchestrator_->Start("fs1", Hosts(2)).ok());
  EXPECT_EQ(orchestrator_->WriteFile("nope", "node001", 10).code(), ErrorCode::kNotFound);
  EXPECT_EQ(orchestrator_->WriteFile("fs1", "node005", 10).code(),
            ErrorCode::kPermissionDenied);
}

TEST_F(BeeondTest, IoLoadRaisesDaemonCost) {
  ASSERT_TRUE(orchestrator_->Start("fs1", Hosts(3)).ok());
  const double idle = (*machine_->Node("node002"))->DaemonCoreLoad();
  ASSERT_TRUE(orchestrator_->SetIoLoad("fs1", 8.0, 1.0).ok());
  const double loaded = (*machine_->Node("node002"))->DaemonCoreLoad();
  EXPECT_NEAR(loaded - idle, 8.0, 1e-9);
  // Meta host carries the meta load too.
  const double meta_loaded = (*machine_->Node("node001"))->DaemonCoreLoad();
  EXPECT_GT(meta_loaded, loaded);
  // Back to idle.
  ASSERT_TRUE(orchestrator_->SetIoLoad("fs1", 0.0, 0.0).ok());
  EXPECT_NEAR((*machine_->Node("node002"))->DaemonCoreLoad(), idle, 1e-9);
  EXPECT_EQ(orchestrator_->SetIoLoad("ghost", 1, 1).code(), ErrorCode::kNotFound);
}

TEST_F(BeeondTest, StopKillsDaemonsWipesAndRemounts) {
  auto instance = orchestrator_->Start("fs1", Hosts(3));
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(orchestrator_->WriteFile("fs1", "node001", 10 * MiB).ok());
  ASSERT_TRUE(orchestrator_->Stop("fs1").ok());
  EXPECT_EQ(orchestrator_->Stop("fs1").code(), ErrorCode::kNotFound);
  EXPECT_FALSE(orchestrator_->Get("fs1").ok());
  for (const std::string& host : Hosts(3)) {
    const cluster::ComputeNode* node = *machine_->Node(host);
    EXPECT_TRUE(node->Daemons().empty()) << host;
    // Storage wiped (the paper's security property) and remounted for the
    // next allocation.
    EXPECT_EQ(node->ssd().used_bytes(), 0u) << host;
    EXPECT_EQ(node->ssd().state(), cluster::SsdState::kMounted) << host;
  }
}

TEST_F(BeeondTest, TwoInstancesCoexistOnDisjointHosts) {
  ASSERT_TRUE(orchestrator_->Start("a", Hosts(3)).ok());
  auto all = machine_->Hostnames();
  ASSERT_TRUE(
      orchestrator_->Start("b", {all.begin() + 3, all.end()}).ok());
  EXPECT_THAT(orchestrator_->InstanceIds(), ElementsAre("a", "b"));
  ASSERT_TRUE(orchestrator_->Stop("a").ok());
  EXPECT_THAT(orchestrator_->InstanceIds(), ElementsAre("b"));
}

TEST(BeeondNamesTest, RoleStrings) {
  EXPECT_STREQ(to_string(Role::kMgmtd), "Mgmtd");
  EXPECT_EQ(DaemonName(Role::kStorage), "beeond-ost");
  EXPECT_GT(IdleCoreLoad(Role::kStorage), IdleCoreLoad(Role::kMgmtd));
}

}  // namespace
}  // namespace ofmf::beeond
