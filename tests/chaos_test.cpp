// Seeded chaos harness: compose/expand/decompose churn under lossy
// transport, an agent crash window, and a fabric link flap — asserting the
// invariants that make the OFMF trustworthy under faults: no block is ever
// double-claimed or leaked, the circuit breaker always re-closes, and the
// fabric graph re-converges after a flap. Every random choice is seeded, so
// a failure replays identically.
#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "agents/ib_agent.hpp"
#include "common/faults.hpp"
#include "composability/client.hpp"
#include "composability/manager.hpp"
#include "fabricsim/chaos.hpp"
#include "http/resilience.hpp"
#include "ofmf/service.hpp"
#include "ofmf/uris.hpp"
#include "store/store.hpp"

namespace ofmf {
namespace {

using json::Json;

/// Churn length, overridable for soak runs: OFMF_CHAOS_ITERS=5000 ctest ...
int ChaosIters() {
  const char* raw = std::getenv("OFMF_CHAOS_ITERS");
  if (raw == nullptr) return 200;
  const int parsed = std::atoi(raw);
  return parsed > 0 ? parsed : 200;
}

class ChaosTest : public ::testing::Test {
 protected:
  ChaosTest() {
    // Redundant two-switch IB fabric: every endpoint pair has two disjoint
    // paths, so a single link flap degrades but never partitions.
    EXPECT_TRUE(graph_.AddVertex("sw0", fabricsim::VertexKind::kSwitch, 8).ok());
    EXPECT_TRUE(graph_.AddVertex("sw1", fabricsim::VertexKind::kSwitch, 8).ok());
    EXPECT_TRUE(graph_.AddVertex("n1", fabricsim::VertexKind::kDevice, 2).ok());
    EXPECT_TRUE(graph_.AddVertex("n2", fabricsim::VertexKind::kDevice, 2).ok());
    EXPECT_TRUE(graph_.Connect("n1", 0, "sw0", 0, {50, 200}).ok());
    EXPECT_TRUE(graph_.Connect("n2", 0, "sw0", 1, {50, 200}).ok());
    EXPECT_TRUE(graph_.Connect("n1", 1, "sw1", 0, {90, 100}).ok());
    EXPECT_TRUE(graph_.Connect("n2", 1, "sw1", 1, {90, 100}).ok());
    sm_ = std::make_unique<fabricsim::IbSubnetManager>(graph_);

    EXPECT_TRUE(ofmf_.Bootstrap().ok());
    EXPECT_TRUE(ofmf_.RegisterAgent(std::make_shared<agents::IbAgent>("IB", *sm_)).ok());

    for (int i = 0; i < 8; ++i) {
      core::BlockCapability compute;
      compute.id = "cpu" + std::to_string(i);
      compute.block_type = "Compute";
      compute.cores = 8;
      compute.memory_gib = 32;
      auto uri = ofmf_.composition().RegisterBlock(compute);
      EXPECT_TRUE(uri.ok());
      all_blocks_.push_back(*uri);

      core::BlockCapability memory;
      memory.id = "mem" + std::to_string(i);
      memory.block_type = "Memory";
      memory.memory_gib = 16;
      uri = ofmf_.composition().RegisterBlock(memory);
      EXPECT_TRUE(uri.ok());
      all_blocks_.push_back(*uri);
    }

    // Client stack over a lossy wire: requests vanish on the way out
    // ("chaos.conn") and responses vanish on the way back ("chaos.rsp") —
    // the latter is the dangerous one, because the server DID act.
    chaos_ = std::make_shared<FaultInjector>(20260806);
    http::RetryPolicy policy;
    policy.max_attempts = 5;
    policy.base_backoff_ms = 1;
    policy.max_backoff_ms = 4;
    // Below the server's Retry-After grain (1 s): while the breaker is open
    // the client gives up on 503s immediately instead of sleeping.
    policy.deadline_ms = 150;
    client_ = std::make_unique<composability::OfmfClient>(
        std::make_unique<http::RetryingClient>(
            std::make_unique<http::FaultyClient>(
                std::make_unique<http::FaultyClient>(
                    std::make_unique<http::InProcessClient>(ofmf_.Handler()), chaos_,
                    "chaos.conn"),
                chaos_, "chaos.rsp"),
            policy));
    manager_ = std::make_unique<composability::ComposabilityManager>(*client_);
  }

  /// Server-side ground truth, checked with the injector quiesced: every
  /// composed system's blocks are mutually disjoint and Composed; everything
  /// else is Unused; nothing leaks in between.
  void CheckInvariants() {
    const bool was_enabled = chaos_->enabled();
    chaos_->set_enabled(false);
    auto systems = ofmf_.tree().Members(core::kSystems);
    ASSERT_TRUE(systems.ok());
    std::set<std::string> claimed;
    for (const std::string& system_uri : *systems) {
      auto blocks = ofmf_.composition().BlocksOf(system_uri);
      ASSERT_TRUE(blocks.ok()) << system_uri;
      for (const std::string& block_uri : *blocks) {
        EXPECT_TRUE(claimed.insert(block_uri).second)
            << block_uri << " claimed by two systems";
      }
    }
    for (const std::string& block_uri : claimed) {
      EXPECT_EQ(*ofmf_.composition().BlockState(block_uri), "Composed") << block_uri;
    }
    const std::vector<std::string> free = ofmf_.composition().FreeBlockUris();
    for (const std::string& block_uri : free) {
      EXPECT_EQ(claimed.count(block_uri), 0u) << block_uri << " both free and claimed";
    }
    EXPECT_EQ(claimed.size() + free.size(), all_blocks_.size());
    chaos_->set_enabled(was_enabled);
  }

  Json ConnectionBody() const {
    const std::string ep1 = core::FabricUri("IB") + "/Endpoints/n1";
    const std::string ep2 = core::FabricUri("IB") + "/Endpoints/n2";
    return Json::Obj(
        {{"Name", "mpi"},
         {"ConnectionType", "Network"},
         {"Links", Json::Obj({{"InitiatorEndpoints",
                               Json::Arr({Json::Obj({{"@odata.id", ep1}})})},
                              {"TargetEndpoints",
                               Json::Arr({Json::Obj({{"@odata.id", ep2}})})}})}});
  }

  fabricsim::FabricGraph graph_;
  std::unique_ptr<fabricsim::IbSubnetManager> sm_;
  core::OfmfService ofmf_;
  std::shared_ptr<FaultInjector> chaos_;
  std::unique_ptr<composability::OfmfClient> client_;
  std::unique_ptr<composability::ComposabilityManager> manager_;
  std::vector<std::string> all_blocks_;
};

TEST_F(ChaosTest, ComposeChurnUnderLossyTransportLeaksNothing) {
  chaos_->ArmProbability("chaos.conn", FaultKind::kDropConnection, 0.05);
  chaos_->ArmProbability("chaos.rsp", FaultKind::kDropResponse, 0.05);

  std::vector<std::string> live;  // systems this client KNOWS it composed
  int composed = 0, compose_failed = 0, expanded = 0, decomposed = 0;
  const int iters = ChaosIters();
  for (int i = 0; i < iters; ++i) {
    switch (i % 3) {
      case 0: {  // compose one compute block's worth
        composability::CompositionRequest request;
        request.name = "job" + std::to_string(i);
        request.cores = 8;
        auto system = manager_->Compose(request);
        if (system.ok()) {
          live.push_back(system->system_uri);
          ++composed;
        } else {
          ++compose_failed;
        }
        break;
      }
      case 1: {  // grow the oldest live system by one memory block
        if (!live.empty() && manager_->ExpandMemory(live.front(), 8).ok()) ++expanded;
        break;
      }
      case 2: {  // retire the oldest once a few are live
        if (live.size() > 2 && manager_->Decompose(live.front()).ok()) {
          live.erase(live.begin());
          ++decomposed;
        }
        break;
      }
    }
    if (i % 10 == 9) CheckInvariants();
  }
  // The retry stack should absorb nearly all injected faults; composes only
  // fail hard when 5 straight attempts are unlucky or the pool is empty.
  EXPECT_GT(composed, iters / 10);
  EXPECT_GT(chaos_->total_fires(), static_cast<std::uint64_t>(iters) / 4);
  CheckInvariants();

  // Quiesce and drain: every system the SERVER knows about (including any
  // whose create response was lost) decomposes cleanly, and every block
  // returns to the free pool — nothing leaked, nothing stuck.
  chaos_->set_enabled(false);
  auto systems = ofmf_.tree().Members(core::kSystems);
  ASSERT_TRUE(systems.ok());
  for (const std::string& system_uri : *systems) {
    EXPECT_TRUE(manager_->Decompose(system_uri).ok()) << system_uri;
  }
  EXPECT_EQ(ofmf_.tree().Members(core::kSystems)->size(), 0u);
  EXPECT_EQ(ofmf_.composition().FreeBlockUris().size(), all_blocks_.size());

  // The churn must leave legible latency telemetry behind: the
  // RequestLatency MetricReport carries non-zero p50/p99 for the Systems
  // endpoint the churn hammered (GET of the report refreshes it lazily).
  auto latency_report = client_->Get(core::TelemetryService::RequestLatencyReportUri());
  ASSERT_TRUE(latency_report.ok()) << latency_report.status().message();
  double systems_p50 = 0.0, systems_p99 = 0.0;
  for (const Json& value : latency_report->at("MetricValues").as_array()) {
    const std::string id = value.GetString("MetricId");
    if (id == "http.latency.POST.Systems.p50") systems_p50 = value.GetDouble("MetricValue");
    if (id == "http.latency.POST.Systems.p99") systems_p99 = value.GetDouble("MetricValue");
  }
  EXPECT_GT(systems_p50, 0.0);
  EXPECT_GT(systems_p99, 0.0);
  EXPECT_GE(systems_p99, systems_p50);

  SUCCEED() << "composed=" << composed << " failed=" << compose_failed
            << " expanded=" << expanded << " decomposed=" << decomposed;
}

TEST_F(ChaosTest, AgentCrashWindowBreakerReclosesAndReportIsPublished) {
  // The IB agent is dead for calls 1..5; the breaker opens after 3 failures,
  // rejects during cooldown, then a half-open probe lands after recovery.
  auto faults = std::make_shared<FaultInjector>(99);
  ofmf_.set_fault_injector(faults);
  faults->ArmWindow("agent.IB", FaultKind::kCrash, 1, 6);

  core::CircuitBreaker* breaker = *ofmf_.BreakerForFabric("IB");
  const std::string connections_uri = core::FabricUri("IB") + "/Connections";
  int attempts = 0;
  while (breaker->state() != core::BreakerState::kClosed ||
         breaker->stats().opens == 0) {
    ASSERT_LT(++attempts, 50) << "breaker never re-closed";
    (void)client_->Post(connections_uri, ConnectionBody());
  }
  EXPECT_GE(breaker->stats().opens, 1u);
  EXPECT_GE(breaker->stats().closes, 1u);
  EXPECT_FALSE(ofmf_.FabricDegraded("IB"));

  const Json report = *client_->Get(core::TelemetryService::ResilienceReportUri());
  double opens = 0;
  for (const Json& value : report.at("MetricValues").as_array()) {
    if (value.GetString("MetricId") == "BreakerOpens.IB") {
      opens = value.GetDouble("MetricValue");
    }
  }
  EXPECT_GE(opens, 1.0);
}

TEST_F(ChaosTest, CrashMidChurnThenRecoveryRestoresConsistency) {
  // Durable churn: the store's journal commits crash (injected) somewhere in
  // the middle of lossy compose/decompose traffic. A successor service
  // recovering from the surviving prefix must come up with the composition
  // invariants intact and keep serving.
  const std::string dir = ::testing::TempDir() + "ofmf_chaos_store";
  std::filesystem::remove_all(dir);
  store::StoreOptions options;
  options.dir = dir;
  options.group_commit_records = 4;  // commits interleave tightly with churn
  auto persistent = store::PersistentStore::Open(options);
  ASSERT_TRUE(persistent.ok());
  auto store_faults = std::make_shared<FaultInjector>(31337);
  (*persistent)->set_fault_injector(store_faults);
  ASSERT_TRUE(ofmf_.EnableDurability(std::move(*persistent)).ok());

  chaos_->ArmProbability("chaos.rsp", FaultKind::kDropResponse, 0.05);
  store_faults->ArmNthCall("store.commit.crash", FaultKind::kCrash, 12);

  std::vector<std::string> live;
  const int iters = std::min(ChaosIters(), 120);
  for (int i = 0; i < iters; ++i) {
    if (i % 3 != 2) {
      composability::CompositionRequest request;
      request.name = "job" + std::to_string(i);
      request.cores = 8;
      if (auto system = manager_->Compose(request); system.ok()) {
        live.push_back(system->system_uri);
      }
    } else if (live.size() > 1 && manager_->Decompose(live.front()).ok()) {
      live.erase(live.begin());
    }
  }
  ASSERT_TRUE(ofmf_.store()->crashed()) << "the injected commit crash never fired";

  // Successor process: recover from what actually reached the journal, let
  // the agent re-publish its live fabric, reconcile, and check ground truth.
  core::OfmfService successor;
  ASSERT_TRUE(successor.Bootstrap().ok());
  auto reopened = store::PersistentStore::Open(options);
  ASSERT_TRUE(reopened.ok());
  auto report = successor.EnableDurability(std::move(*reopened));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->had_snapshot);
  ASSERT_TRUE(
      successor.RegisterAgent(std::make_shared<agents::IbAgent>("IB", *sm_)).ok());
  auto reconciled = successor.ReconcileWithAgents();
  ASSERT_TRUE(reconciled.ok());

  auto systems = successor.tree().Members(core::kSystems);
  ASSERT_TRUE(systems.ok());
  std::set<std::string> claimed;
  for (const std::string& system_uri : *systems) {
    auto blocks = successor.composition().BlocksOf(system_uri);
    ASSERT_TRUE(blocks.ok()) << system_uri;
    ASSERT_FALSE(blocks->empty()) << system_uri << " recovered half-composed";
    for (const std::string& block_uri : *blocks) {
      EXPECT_TRUE(claimed.insert(block_uri).second)
          << block_uri << " claimed by two recovered systems";
      EXPECT_EQ(*successor.composition().BlockState(block_uri), "Composed");
    }
  }
  const std::vector<std::string> free = successor.composition().FreeBlockUris();
  for (const std::string& block_uri : free) {
    EXPECT_EQ(claimed.count(block_uri), 0u) << block_uri;
  }
  EXPECT_EQ(claimed.size() + free.size(), all_blocks_.size());

  // Still a live control plane: composition works post-recovery.
  if (!free.empty()) {
    composability::OfmfClient direct(
        std::make_unique<http::InProcessClient>(successor.Handler()));
    auto post_recovery = direct.Post(
        core::kSystems,
        Json::Obj({{"Name", "post-recovery"},
                   {"Links",
                    Json::Obj({{"ResourceBlocks",
                                Json::Arr({Json::Obj({{"@odata.id", free[0]}})})}})}}));
    EXPECT_TRUE(post_recovery.ok());
  }
}

TEST_F(ChaosTest, SubscriberFlappingUnderChurnStaysFaultIsolated) {
  // Event subscribers come and go mid-churn while their endpoint fails every
  // third push. Fault isolation means none of that may leak back into the
  // control plane: composition invariants hold, the publish path performs no
  // network sends, and healthy pushes still land.
  auto delivered = std::make_shared<std::atomic<int>>(0);
  auto push_calls = std::make_shared<std::atomic<int>>(0);
  ofmf_.events().set_client_factory([delivered, push_calls](const std::string&) {
    return std::make_unique<http::InProcessClient>(
        [delivered, push_calls](const http::Request&) {
          if (++*push_calls % 3 == 0) return http::MakeTextResponse(503, "flap");
          ++*delivered;
          return http::MakeEmptyResponse(204);
        });
  });
  core::DeliveryConfig delivery;
  delivery.base_backoff_ms = 1;
  delivery.max_backoff_ms = 4;
  delivery.breaker_cooldown_ms = 2;
  ofmf_.events().ConfigureDelivery(delivery);

  chaos_->ArmProbability("chaos.rsp", FaultKind::kDropResponse, 0.05);

  std::vector<std::string> live;
  std::vector<std::string> subscriptions;
  int next_subscriber = 0;
  const int iters = std::min(ChaosIters(), 150);
  for (int i = 0; i < iters; ++i) {
    if (i % 5 == 0) {  // a new push subscriber joins mid-churn
      auto uri = ofmf_.events().Subscribe(Json::Obj(
          {{"Destination", "http://flap" + std::to_string(next_subscriber++) + "/events"},
           {"Protocol", "Redfish"}}));
      ASSERT_TRUE(uri.ok());
      subscriptions.push_back(*uri);
    }
    if (i % 7 == 6 && !subscriptions.empty()) {  // and an old one leaves
      ASSERT_TRUE(ofmf_.events().Unsubscribe(subscriptions.front()).ok());
      subscriptions.erase(subscriptions.begin());
    }
    if (i % 3 != 2) {
      composability::CompositionRequest request;
      request.name = "job" + std::to_string(i);
      request.cores = 8;
      if (auto system = manager_->Compose(request); system.ok()) {
        live.push_back(system->system_uri);
      }
    } else if (live.size() > 1 && manager_->Decompose(live.front()).ok()) {
      live.erase(live.begin());
    }
    if (i % 10 == 9) CheckInvariants();
  }

  chaos_->set_enabled(false);
  ASSERT_TRUE(ofmf_.events().FlushDelivery(15000));
  CheckInvariants();

  // Fault isolation, measured: no publish ever touched the network, the
  // flaky endpoints never wedged the engine, and healthy pushes got through.
  EXPECT_EQ(ofmf_.events().publish_path_sends(), 0u);
  EXPECT_GT(delivered->load(), 0);
  const core::DeliverySnapshot snapshot = ofmf_.events().CollectDelivery();
  EXPECT_EQ(snapshot.total_queued, 0u);
  EXPECT_GT(snapshot.delivered, 0u);
}

TEST_F(ChaosTest, LinkFlapHealsAndGraphReconverges) {
  chaos_->ArmNthCall("fabric.flap", FaultKind::kDropConnection, 1);
  fabricsim::LinkFlapper flapper(graph_, chaos_);

  const std::size_t live_before = [&] {
    std::size_t up = 0;
    for (const auto& link : graph_.Links()) up += link.up ? 1 : 0;
    return up;
  }();
  ASSERT_TRUE(flapper.Tick());  // rule fires: one link goes down
  ASSERT_TRUE(flapper.downed_link().has_value());
  std::size_t live_during = 0;
  for (const auto& link : graph_.Links()) live_during += link.up ? 1 : 0;
  EXPECT_EQ(live_during, live_before - 1);

  EXPECT_FALSE(flapper.Tick());  // rule spent: heals, nothing new goes down
  EXPECT_FALSE(flapper.downed_link().has_value());
  std::size_t live_after = 0;
  for (const auto& link : graph_.Links()) live_after += link.up ? 1 : 0;
  EXPECT_EQ(live_after, live_before);
  EXPECT_EQ(flapper.flaps(), 1u);
}

TEST_F(ChaosTest, SessionChurnAcrossTenantsKeepsBindingsConsistent) {
  // Three tenants, one bound user each. Threads then churn sessions for a
  // random mix of bound and unbound users while others authenticate — the
  // token→tenant mapping the reactor's classifier relies on must never skew.
  for (int i = 0; i < 3; ++i) {
    core::TenantInfo tenant;
    tenant.id = "t" + std::to_string(i);
    tenant.qos_class = i == 0 ? "Guaranteed" : "BestEffort";
    tenant.weight = static_cast<std::uint32_t>(i + 1);
    tenant.users = {"u" + std::to_string(i)};
    ASSERT_TRUE(ofmf_.sessions().CreateTenant(tenant).ok());
    ofmf_.sessions().AddUser("u" + std::to_string(i), "pw");
  }
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      std::mt19937 rng(static_cast<unsigned>(20260807 + t));
      for (int i = 0; i < 200; ++i) {
        const int pick = static_cast<int>(rng() % 4);
        const std::string user = pick == 3 ? "admin" : "u" + std::to_string(pick);
        const std::string expected = pick == 3 ? "" : "t" + std::to_string(pick);
        auto session =
            ofmf_.sessions().CreateSession(user, pick == 3 ? "ofmf" : "pw");
        if (!session.ok()) {
          mismatches.fetch_add(1);
          continue;
        }
        if (session->tenant != expected ||
            ofmf_.sessions().TenantOfToken(session->token) != expected) {
          mismatches.fetch_add(1);
        }
        if (rng() % 2 == 0) {
          if (!ofmf_.sessions().DeleteSession(session->id).ok()) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(mismatches.load(), 0);
  // Quiesced ground truth: every surviving session still carries its user's
  // binding and authenticates to the same tenant.
  for (const core::SessionInfo& session : ofmf_.sessions().ExportSessions()) {
    EXPECT_EQ(session.tenant, ofmf_.sessions().TenantOfUser(session.user));
    auto live = ofmf_.sessions().Authenticate(session.token);
    ASSERT_TRUE(live.has_value());
    EXPECT_EQ(live->tenant, session.tenant);
  }
}

}  // namespace
}  // namespace ofmf
