#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "cluster/energy.hpp"
#include "cluster/node.hpp"
#include "cluster/pools.hpp"
#include "cluster/ssd.hpp"
#include "common/units.hpp"

namespace ofmf::cluster {
namespace {

using ::testing::ElementsAre;
using ::testing::HasSubstr;

// ------------------------------------------------------------------- SSD ---

TEST(SsdTest, LifecycleHappyPath) {
  Ssd ssd(1000 * GiB);
  EXPECT_EQ(ssd.state(), SsdState::kRaw);
  ASSERT_TRUE(ssd.Partition(894 * GiB).ok());
  EXPECT_EQ(ssd.state(), SsdState::kPartitioned);
  ASSERT_TRUE(ssd.Format("xfs").ok());
  EXPECT_EQ(ssd.state(), SsdState::kFormatted);
  ASSERT_TRUE(ssd.Mount("/beeond").ok());
  EXPECT_EQ(ssd.state(), SsdState::kMounted);
  EXPECT_EQ(ssd.mount_point(), "/beeond");
  ASSERT_TRUE(ssd.Write(10 * GiB).ok());
  EXPECT_EQ(ssd.used_bytes(), 10 * GiB);
  ASSERT_TRUE(ssd.Unmount().ok());
  EXPECT_EQ(ssd.state(), SsdState::kFormatted);
}

TEST(SsdTest, OrderingViolationsRejected) {
  Ssd ssd(100);
  EXPECT_EQ(ssd.Format("xfs").code(), ErrorCode::kFailedPrecondition);  // no partition
  EXPECT_EQ(ssd.Mount("/x").code(), ErrorCode::kFailedPrecondition);    // not formatted
  ASSERT_TRUE(ssd.Partition(100).ok());
  EXPECT_FALSE(ssd.Partition(1000).ok());  // exceeds raw capacity
  ASSERT_TRUE(ssd.Format("xfs").ok());
  ASSERT_TRUE(ssd.Mount("/x").ok());
  EXPECT_EQ(ssd.Partition(50).code(), ErrorCode::kFailedPrecondition);  // mounted
  EXPECT_EQ(ssd.Format("xfs").code(), ErrorCode::kFailedPrecondition);  // mounted
  EXPECT_EQ(ssd.Unmount().ok(), true);
  EXPECT_EQ(ssd.Unmount().code(), ErrorCode::kFailedPrecondition);
}

TEST(SsdTest, NonXfsRefusesToMount) {
  Ssd ssd(100);
  ASSERT_TRUE(ssd.Partition(100).ok());
  ASSERT_TRUE(ssd.Format("ext4").ok());
  const Status mounted = ssd.Mount("/beeond");
  EXPECT_EQ(mounted.code(), ErrorCode::kFailedPrecondition);
  EXPECT_THAT(mounted.message(), HasSubstr("xattr"));
}

TEST(SsdTest, WriteBoundsAndErase) {
  Ssd ssd(100);
  ASSERT_TRUE(ssd.Partition(100).ok());
  ASSERT_TRUE(ssd.Format("xfs").ok());
  ASSERT_TRUE(ssd.Mount("/x").ok());
  ASSERT_TRUE(ssd.Write(80).ok());
  EXPECT_EQ(ssd.Write(30).code(), ErrorCode::kResourceExhausted);
  ssd.Erase();
  EXPECT_EQ(ssd.used_bytes(), 0u);
  ASSERT_TRUE(ssd.Write(100).ok());
}

TEST(SsdTest, UdevRuleMatchesPaperBehaviour) {
  Ssd ssd(1000 * GiB);
  EXPECT_FALSE(ssd.RunUdevRule(894 * GiB).ok());  // raw device
  ASSERT_TRUE(ssd.Partition(894 * GiB).ok());
  auto symlink = ssd.RunUdevRule(894 * GiB);
  ASSERT_TRUE(symlink.ok());
  EXPECT_EQ(*symlink, "/dev/beeond_store");
  // Wrong layout -> failure (node must not enter the queue).
  EXPECT_EQ(ssd.RunUdevRule(500 * GiB).status().code(), ErrorCode::kFailedPrecondition);
  ssd.InjectFailure();
  EXPECT_EQ(ssd.RunUdevRule(894 * GiB).status().code(), ErrorCode::kUnavailable);
}

TEST(SsdTest, FailedDeviceRejectsEverything) {
  Ssd ssd(100);
  ssd.InjectFailure();
  EXPECT_EQ(ssd.Partition(100).code(), ErrorCode::kUnavailable);
  EXPECT_EQ(ssd.Format("xfs").code(), ErrorCode::kUnavailable);
  EXPECT_EQ(to_string(ssd.state()), std::string("Failed"));
}

// ------------------------------------------------------------------ Node ---

TEST(NodeTest, SpecDefaultsMatchPaperHardware) {
  ComputeNode node("node001");
  EXPECT_EQ(node.spec().total_cores(), 56);  // dual-socket ThunderX2
  EXPECT_EQ(node.spec().memory_bytes, 128 * GiB);
  EXPECT_EQ(node.spec().ssd_partition_bytes, 894 * GiB);
  EXPECT_EQ(node.spec().ib_ports, 2);
  EXPECT_EQ(node.hostname(), "node001");
}

TEST(NodeTest, DaemonAccounting) {
  ComputeNode node("n1");
  ASSERT_TRUE(node.StartDaemon("beeond-ost", 0.18).ok());
  ASSERT_TRUE(node.StartDaemon("beeond-client", 0.05).ok());
  EXPECT_EQ(node.StartDaemon("beeond-ost", 0.1).code(), ErrorCode::kAlreadyExists);
  EXPECT_FALSE(node.StartDaemon("neg", -1.0).ok());
  EXPECT_DOUBLE_EQ(node.DaemonCoreLoad(), 0.23);
  EXPECT_NEAR(node.CpuStealFraction(), 0.23 / 56.0, 1e-12);
  EXPECT_TRUE(node.HasDaemon("beeond-ost"));
  EXPECT_THAT(node.Daemons(), ElementsAre("beeond-client", "beeond-ost"));

  ASSERT_TRUE(node.SetDaemonLoad("beeond-ost", 16.0).ok());
  EXPECT_DOUBLE_EQ(node.DaemonCoreLoad(), 16.05);
  EXPECT_EQ(node.SetDaemonLoad("ghost", 1.0).code(), ErrorCode::kNotFound);

  ASSERT_TRUE(node.StopDaemon("beeond-ost").ok());
  EXPECT_EQ(node.StopDaemon("beeond-ost").code(), ErrorCode::kNotFound);
  EXPECT_DOUBLE_EQ(node.DaemonCoreLoad(), 0.05);
}

TEST(NodeTest, CpuStealClampedAt95Percent) {
  ComputeNode node("n1");
  ASSERT_TRUE(node.StartDaemon("hog", 1000.0).ok());
  EXPECT_DOUBLE_EQ(node.CpuStealFraction(), 0.95);
}

TEST(NodeTest, MemoryReservationOomPath) {
  ComputeNode node("n1");
  ASSERT_TRUE(node.ReserveMemory(100 * GiB).ok());
  EXPECT_EQ(node.free_memory_bytes(), 28 * GiB);
  const Status oom = node.ReserveMemory(40 * GiB);
  EXPECT_EQ(oom.code(), ErrorCode::kResourceExhausted);
  node.ReleaseMemory(50 * GiB);
  EXPECT_TRUE(node.ReserveMemory(40 * GiB).ok());
  node.ReleaseMemory(10000 * GiB);  // over-release clamps to zero
  EXPECT_EQ(node.reserved_memory_bytes(), 0u);
}

// ----------------------------------------------------------------- Pools ---

PooledDevice Gpu(const std::string& id, const std::string& locality = "rack1") {
  return PooledDevice{id, ResourceKind::kGpu, 1, locality, "", false, 300.0, 55.0};
}

TEST(PoolTest, ClaimReleaseLifecycle) {
  ResourcePool pool;
  ASSERT_TRUE(pool.AddDevice(Gpu("gpu0")).ok());
  ASSERT_TRUE(pool.AddDevice(Gpu("gpu1")).ok());
  EXPECT_EQ(pool.AddDevice(Gpu("gpu0")).code(), ErrorCode::kAlreadyExists);
  EXPECT_FALSE(pool.AddDevice(PooledDevice{}).ok());  // empty id

  ASSERT_TRUE(pool.Claim("gpu0", "jobA").ok());
  EXPECT_EQ(pool.Claim("gpu0", "jobB").code(), ErrorCode::kAlreadyExists);
  EXPECT_FALSE(pool.Claim("gpu1", "").ok());
  EXPECT_EQ(pool.FreeDevices(ResourceKind::kGpu).size(), 1u);

  ASSERT_TRUE(pool.Release("gpu0").ok());
  EXPECT_EQ(pool.Release("gpu0").code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(pool.Release("nope").code(), ErrorCode::kNotFound);
}

TEST(PoolTest, RemoveOnlyWhenFree) {
  ResourcePool pool;
  ASSERT_TRUE(pool.AddDevice(Gpu("gpu0")).ok());
  ASSERT_TRUE(pool.Claim("gpu0", "job").ok());
  EXPECT_EQ(pool.RemoveDevice("gpu0").code(), ErrorCode::kFailedPrecondition);
  ASSERT_TRUE(pool.Release("gpu0").ok());
  EXPECT_TRUE(pool.RemoveDevice("gpu0").ok());
  EXPECT_EQ(pool.RemoveDevice("gpu0").code(), ErrorCode::kNotFound);
}

TEST(PoolTest, ReleaseAllOfOwner) {
  ResourcePool pool;
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(pool.AddDevice(Gpu("gpu" + std::to_string(i))).ok());
  ASSERT_TRUE(pool.Claim("gpu0", "jobA").ok());
  ASSERT_TRUE(pool.Claim("gpu1", "jobA").ok());
  ASSERT_TRUE(pool.Claim("gpu2", "jobB").ok());
  const auto released = pool.ReleaseAllOf("jobA");
  EXPECT_THAT(released, ElementsAre("gpu0", "gpu1"));
  EXPECT_EQ(pool.FreeDevices(ResourceKind::kGpu).size(), 3u);
}

TEST(PoolTest, StrandedAccounting) {
  ResourcePool pool;
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(pool.AddDevice(Gpu("gpu" + std::to_string(i))).ok());
  ASSERT_TRUE(pool.Claim("gpu0", "job").ok());
  ASSERT_TRUE(pool.Claim("gpu1", "job").ok());
  ASSERT_TRUE(pool.SetInUse("gpu0", true).ok());
  EXPECT_EQ(pool.SetInUse("gpu3", true).code(), ErrorCode::kFailedPrecondition);

  const auto accounting = pool.Account(ResourceKind::kGpu);
  EXPECT_EQ(accounting.free, 2u);
  EXPECT_EQ(accounting.claimed_used, 1u);
  EXPECT_EQ(accounting.claimed_idle, 1u);  // gpu1 is stranded
  EXPECT_DOUBLE_EQ(accounting.stranded_fraction(), 0.25);
  EXPECT_EQ(accounting.total(), 4u);
}

TEST(PoolTest, PowerModel) {
  ResourcePool pool;
  ASSERT_TRUE(pool.AddDevice(Gpu("gpu0")).ok());
  ASSERT_TRUE(pool.AddDevice(Gpu("gpu1")).ok());
  EXPECT_DOUBLE_EQ(pool.PowerWatts(), 110.0);  // both idle
  ASSERT_TRUE(pool.Claim("gpu0", "job").ok());
  ASSERT_TRUE(pool.SetInUse("gpu0", true).ok());
  EXPECT_DOUBLE_EQ(pool.PowerWatts(), 355.0);  // one active, one idle
}

TEST(PoolTest, KindNames) {
  EXPECT_STREQ(to_string(ResourceKind::kMemoryCxl), "CXL-Memory");
  EXPECT_STREQ(to_string(ResourceKind::kNvme), "NVMe");
}

// ---------------------------------------------------------------- Energy ---

TEST(EnergyTest, MeterIntegratesPower) {
  EnergyMeter meter;
  meter.Accrue(1000.0, Seconds(3600));  // 1 kW for an hour
  EXPECT_NEAR(meter.kwh(), 1.0, 1e-9);
  EXPECT_NEAR(meter.joules(), 3.6e6, 1e-3);
  PowerModel model;
  EXPECT_NEAR(meter.facility_kwh(model), 1.35, 1e-9);
  meter.Accrue(500.0, 0);  // zero duration: no-op
  EXPECT_NEAR(meter.kwh(), 1.0, 1e-9);
  meter.Reset();
  EXPECT_EQ(meter.joules(), 0.0);
}

// --------------------------------------------------------------- Cluster ---

TEST(ClusterTest, NodeNamingAndLookup) {
  ClusterSpec spec;
  spec.node_count = 3;
  Cluster machine(spec);
  EXPECT_THAT(machine.Hostnames(), ElementsAre("node001", "node002", "node003"));
  EXPECT_TRUE(machine.Node("node002").ok());
  EXPECT_FALSE(machine.Node("node009").ok());
  EXPECT_EQ(machine.node_count(), 3u);
}

TEST(ClusterTest, PrepareNodeStorageHappyPath) {
  ClusterSpec spec;
  spec.node_count = 2;
  Cluster machine(spec);
  ASSERT_TRUE(machine.PrepareNodeStorage("node001").ok());
  const ComputeNode* node = *machine.Node("node001");
  EXPECT_EQ(node->ssd().state(), SsdState::kMounted);
  EXPECT_EQ(node->ssd().mount_point(), "/beeond");
  EXPECT_FALSE(node->drained());
  // Idempotent.
  EXPECT_TRUE(machine.PrepareNodeStorage("node001").ok());
}

TEST(ClusterTest, UdevFailureDrainsNode) {
  ClusterSpec spec;
  spec.node_count = 2;
  Cluster machine(spec);
  (*machine.Node("node002"))->ssd().InjectFailure();
  EXPECT_FALSE(machine.PrepareNodeStorage("node002").ok());
  EXPECT_TRUE((*machine.Node("node002"))->drained());
  EXPECT_THAT(machine.AvailableHostnames(), ElementsAre("node001"));
}

TEST(ClusterTest, ReformatWipesData) {
  ClusterSpec spec;
  spec.node_count = 1;
  Cluster machine(spec);
  ASSERT_TRUE(machine.PrepareNodeStorage("node001").ok());
  ComputeNode* node = *machine.Node("node001");
  ASSERT_TRUE(node->ssd().Write(5 * GiB).ok());
  ASSERT_TRUE(machine.ReformatNodeStorage("node001").ok());
  EXPECT_EQ(node->ssd().used_bytes(), 0u);
  EXPECT_EQ(node->ssd().state(), SsdState::kMounted);
}

TEST(ClusterTest, PowerReflectsActivity) {
  ClusterSpec spec;
  spec.node_count = 2;
  Cluster machine(spec);
  const double idle = machine.PowerWatts();
  EXPECT_DOUBLE_EQ(idle, 2 * machine.power_model().node_idle_watts);
  ASSERT_TRUE((*machine.Node("node001"))->StartDaemon("d", 0.5).ok());
  EXPECT_DOUBLE_EQ(machine.PowerWatts(),
                   machine.power_model().node_active_watts +
                       machine.power_model().node_idle_watts);
}

}  // namespace
}  // namespace ofmf::cluster
