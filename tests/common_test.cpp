#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "common/clock.hpp"
#include "common/hostlist.hpp"
#include "common/logging.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/threadpool.hpp"
#include "common/units.hpp"

namespace ofmf {
namespace {

using ::testing::ElementsAre;
using ::testing::HasSubstr;

// ---------------------------------------------------------------- Result ---

TEST(ResultTest, OkValueRoundTrips) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, ErrorCarriesCodeAndMessage) {
  Result<int> r(Status::NotFound("no such node"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
  EXPECT_THAT(r.status().message(), HasSubstr("no such node"));
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValuesWork) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> taken = std::move(r).value();
  EXPECT_EQ(*taken, 7);
}

Status FailingStep() { return Status::Timeout("agent did not answer"); }
Status UsesReturnIfError() {
  OFMF_RETURN_IF_ERROR(FailingStep());
  return Status::Ok();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(UsesReturnIfError().code(), ErrorCode::kTimeout);
}

Result<int> MakeInt(bool ok) {
  if (ok) return 5;
  return Status::Internal("boom");
}
Status UsesAssignOrReturn(bool ok, int* out) {
  OFMF_ASSIGN_OR_RETURN(int v, MakeInt(ok));
  *out = v;
  return Status::Ok();
}

TEST(ResultTest, AssignOrReturnBothPaths) {
  int out = 0;
  EXPECT_TRUE(UsesAssignOrReturn(true, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UsesAssignOrReturn(false, &out).code(), ErrorCode::kInternal);
}

TEST(ResultTest, ErrorCodeNamesAreStable) {
  EXPECT_STREQ(to_string(ErrorCode::kResourceExhausted), "RESOURCE_EXHAUSTED");
  EXPECT_STREQ(to_string(ErrorCode::kOk), "OK");
}

// --------------------------------------------------------------- Strings ---

TEST(StringsTest, SplitDropsEmptySegments) {
  EXPECT_THAT(strings::Split("a,b,,c", ','), ElementsAre("a", "b", "c"));
  EXPECT_THAT(strings::Split("", ','), ElementsAre());
}

TEST(StringsTest, SplitKeepEmptyPreserves) {
  EXPECT_THAT(strings::SplitKeepEmpty("a,,c", ','), ElementsAre("a", "", "c"));
  EXPECT_THAT(strings::SplitKeepEmpty("", ','), ElementsAre(""));
}

TEST(StringsTest, TrimVariants) {
  EXPECT_EQ(strings::Trim("  x \t\n"), "x");
  EXPECT_EQ(strings::TrimLeft("  x "), "x ");
  EXPECT_EQ(strings::TrimRight("  x "), "  x");
  EXPECT_EQ(strings::Trim("   "), "");
}

TEST(StringsTest, CaseConversionAndCompare) {
  EXPECT_EQ(strings::ToLower("Content-TYPE"), "content-type");
  EXPECT_EQ(strings::ToUpper("abc"), "ABC");
  EXPECT_TRUE(strings::EqualsIgnoreCase("ETag", "etag"));
  EXPECT_FALSE(strings::EqualsIgnoreCase("ETag", "etags"));
}

TEST(StringsTest, AffixChecks) {
  EXPECT_TRUE(strings::StartsWith("/redfish/v1/Systems", "/redfish/v1"));
  EXPECT_FALSE(strings::StartsWith("/red", "/redfish"));
  EXPECT_TRUE(strings::EndsWith("node001", "001"));
}

TEST(StringsTest, JoinZeroPadReplace) {
  EXPECT_EQ(strings::Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(strings::Join({}, ","), "");
  EXPECT_EQ(strings::ZeroPad(7, 3), "007");
  EXPECT_EQ(strings::ZeroPad(1234, 3), "1234");
  EXPECT_EQ(strings::ReplaceAll("a~b~c", "~", "~0"), "a~0b~0c");
}

TEST(StringsTest, IsDigits) {
  EXPECT_TRUE(strings::IsDigits("0123"));
  EXPECT_FALSE(strings::IsDigits(""));
  EXPECT_FALSE(strings::IsDigits("12a"));
}

// ------------------------------------------------------------------- Rng ---

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformIntWithinBoundsAndCoversRange) {
  Rng rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.UniformInt(3, 8);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(RngTest, NormalMomentsApproximatelyCorrect) {
  Rng rng(2026);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.Normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(RngTest, ExponentialMeanIsOneOverLambda) {
  Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.Exponential(4.0));
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
}

TEST(RngTest, LogNormalIsPositive) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.LogNormal(0.0, 1.0), 0.0);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(42);
  Rng child = parent.Fork();
  // The child stream should not reproduce the parent's continuing stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.NextU64() == child.NextU64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

// ----------------------------------------------------------------- Stats ---

TEST(StatsTest, WelfordMatchesDirectComputation) {
  RunningStats s;
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double x : xs) s.Add(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(StatsTest, MergeEqualsSequential) {
  RunningStats a, b, both;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.Normal(0, 1);
    (i % 2 ? a : b).Add(x);
    both.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_NEAR(a.mean(), both.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), both.variance(), 1e-9);
}

TEST(StatsTest, StudentTTableSpotChecks) {
  EXPECT_NEAR(StudentT95(1), 12.706, 1e-3);
  EXPECT_NEAR(StudentT95(9), 2.262, 1e-3);
  EXPECT_NEAR(StudentT95(30), 2.042, 1e-3);
  EXPECT_NEAR(StudentT95(100000), 1.960, 1e-3);
  // Monotone decreasing.
  for (std::size_t dof = 1; dof < 200; ++dof) {
    EXPECT_GE(StudentT95(dof), StudentT95(dof + 1) - 1e-12) << dof;
  }
}

TEST(StatsTest, MeanCi95CoversKnownCase) {
  // n=4 samples with mean 10, stddev 2 -> half width = t(3)*2/sqrt(4)=3.182.
  const ConfidenceInterval ci = MeanCi95({8.0, 10.0, 10.0, 12.0});
  EXPECT_DOUBLE_EQ(ci.mean, 10.0);
  EXPECT_NEAR(ci.half_width, 3.182 * 1.63299 / 2.0, 1e-3);
  EXPECT_LT(ci.lo(), ci.hi());
}

TEST(StatsTest, SingleSampleHasZeroWidth) {
  const ConfidenceInterval ci = MeanCi95({5.0});
  EXPECT_EQ(ci.mean, 5.0);
  EXPECT_EQ(ci.half_width, 0.0);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 25), 2.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 90), 4.6);
}

TEST(StatsTest, RelativeOverhead) {
  EXPECT_NEAR(RelativeOverhead(110.0, 100.0), 0.10, 1e-12);
  EXPECT_NEAR(RelativeOverhead(95.0, 100.0), -0.05, 1e-12);
}

// -------------------------------------------------------------- Hostlist ---

TEST(HostlistTest, ExpandSimpleRange) {
  auto hosts = ExpandHostlist("node[001-003]");
  ASSERT_TRUE(hosts.ok());
  EXPECT_THAT(*hosts, ElementsAre("node001", "node002", "node003"));
}

TEST(HostlistTest, ExpandMixedTerms) {
  auto hosts = ExpandHostlist("login1,node[01-02,05],gpu7");
  ASSERT_TRUE(hosts.ok());
  EXPECT_THAT(*hosts, ElementsAre("login1", "node01", "node02", "node05", "gpu7"));
}

TEST(HostlistTest, ExpandWithSuffix) {
  auto hosts = ExpandHostlist("n[1-2]-ib");
  ASSERT_TRUE(hosts.ok());
  EXPECT_THAT(*hosts, ElementsAre("n1-ib", "n2-ib"));
}

TEST(HostlistTest, ExpandErrors) {
  EXPECT_FALSE(ExpandHostlist("node[3-1]").ok());
  EXPECT_FALSE(ExpandHostlist("node[1-2").ok());
  EXPECT_FALSE(ExpandHostlist("node]1[").ok());
  EXPECT_FALSE(ExpandHostlist("node[a-b]").ok());
  EXPECT_FALSE(ExpandHostlist("node[[1]]").ok());
}

TEST(HostlistTest, EmptyExpressionIsEmptyList) {
  auto hosts = ExpandHostlist("  ");
  ASSERT_TRUE(hosts.ok());
  EXPECT_TRUE(hosts->empty());
}

TEST(HostlistTest, CompressFoldsRuns) {
  EXPECT_EQ(CompressHostlist({"node001", "node002", "node003", "node007"}),
            "node[001-003,007]");
}

TEST(HostlistTest, CompressSingletonStaysBare) {
  EXPECT_EQ(CompressHostlist({"node5"}), "node5");
  EXPECT_EQ(CompressHostlist({"login"}), "login");
}

TEST(HostlistTest, CompressDeduplicates) {
  EXPECT_EQ(CompressHostlist({"n1", "n1", "n2"}), "n[1-2]");
}

TEST(HostlistTest, CompressKeepsDistinctZeroPadWidthsApart) {
  // n1 and n01 are different hosts; they must not fold into one range.
  const std::string compressed = CompressHostlist({"n1", "n01", "n2", "n02"});
  auto round = ExpandHostlist(compressed);
  ASSERT_TRUE(round.ok());
  std::vector<std::string> sorted = *round;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_THAT(sorted, ElementsAre("n01", "n02", "n1", "n2"));
}

TEST(HostlistTest, ExpandDegenerateRanges) {
  // lo == hi is a legal single-element range, padding preserved.
  auto hosts = ExpandHostlist("node[5-5]");
  ASSERT_TRUE(hosts.ok());
  EXPECT_THAT(*hosts, ElementsAre("node5"));
  hosts = ExpandHostlist("node[007-007]");
  ASSERT_TRUE(hosts.ok());
  EXPECT_THAT(*hosts, ElementsAre("node007"));
  hosts = ExpandHostlist("n[0-0],n[00-00]");
  ASSERT_TRUE(hosts.ok());
  EXPECT_THAT(*hosts, ElementsAre("n0", "n00"));
}

TEST(HostlistTest, DegenerateRangeSurvivesCompressExpand) {
  // A one-host "range" and its bare spelling are the same host; whichever
  // form Compress picks must expand back to exactly that host.
  for (const char* expression : {"node[5-5]", "node[042-042]", "gpu[9-9]-ib"}) {
    auto hosts = ExpandHostlist(expression);
    ASSERT_TRUE(hosts.ok()) << expression;
    ASSERT_EQ(hosts->size(), 1u) << expression;
    auto round = ExpandHostlist(CompressHostlist(*hosts));
    ASSERT_TRUE(round.ok()) << expression;
    EXPECT_EQ(*round, *hosts) << expression;
  }
}

TEST(HostlistTest, LowestHostMatchesPaperRule) {
  auto hosts = ExpandHostlist("node[010-012,002]");
  ASSERT_TRUE(hosts.ok());
  EXPECT_EQ(LowestHost(*hosts), "node002");
  EXPECT_EQ(LowestHost({}), "");
}

// Property: expand(compress(expand(e))) == sorted expand(e).
class HostlistRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(HostlistRoundTrip, CompressExpandIsIdentity) {
  auto hosts = ExpandHostlist(GetParam());
  ASSERT_TRUE(hosts.ok()) << GetParam();
  std::vector<std::string> sorted = *hosts;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  auto round = ExpandHostlist(CompressHostlist(*hosts));
  ASSERT_TRUE(round.ok());
  std::vector<std::string> round_sorted = *round;
  std::sort(round_sorted.begin(), round_sorted.end());
  EXPECT_EQ(round_sorted, sorted) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, HostlistRoundTrip,
    ::testing::Values("node[001-128]", "a1,a2,a3", "gpu[1-4],cpu[01-16],login",
                      "n[1,3,5,7,9]", "single", "x[09-11]",
                      "rack1-node[1-3],rack2-node[1-3]",
                      // degenerate one-element ranges, padded and bare
                      "node[5-5]", "node[007-007]", "n[0-0],m[00-00]",
                      "edge[5-5,7-7,9]"));

// ----------------------------------------------------------------- Clock ---

TEST(ClockTest, SimClockAdvances) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0);
  clock.Advance(Seconds(1.5));
  EXPECT_EQ(clock.now(), 1'500'000'000);
  clock.AdvanceTo(Seconds(1.0));  // backwards AdvanceTo is a no-op
  EXPECT_EQ(clock.now(), 1'500'000'000);
  clock.AdvanceTo(Seconds(2.0));
  EXPECT_EQ(clock.now(), 2'000'000'000);
}

TEST(ClockTest, ConversionHelpers) {
  EXPECT_EQ(Seconds(2.0), 2 * kNanosPerSecond);
  EXPECT_EQ(Millis(1.0), kNanosPerMilli);
  EXPECT_EQ(Micros(1.0), kNanosPerMicro);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(3.25)), 3.25);
}

TEST(ClockTest, TimestampFormat) {
  const std::string ts = FormatSimTimestamp(Seconds(3661));
  EXPECT_THAT(ts, HasSubstr("T01:01:01Z"));
  // Monotone in time.
  EXPECT_LT(FormatSimTimestamp(Seconds(1)), FormatSimTimestamp(Seconds(2)));
}

// ---------------------------------------------------------------- Logger ---

TEST(LoggerTest, CaptureSinkSeesMessagesAtOrAboveLevel) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  Logger& logger = Logger::instance();
  const LogLevel old_level = logger.level();
  auto old_sink = logger.set_sink([&](LogLevel level, const std::string& message) {
    captured.emplace_back(level, message);
  });
  logger.set_level(LogLevel::kInfo);

  OFMF_DEBUG << "hidden";
  OFMF_INFO << "hello " << 42;
  OFMF_ERROR << "bad";

  logger.set_sink(std::move(old_sink));
  logger.set_level(old_level);

  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].second, "hello 42");
  EXPECT_EQ(captured[1].first, LogLevel::kError);
}

// ------------------------------------------------------------ ThreadPool ---

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SubmitReturnsValues) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, DrainWaitsForCompletion) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&] { done.fetch_add(1); });
  }
  pool.Drain();
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  EXPECT_EQ(pool.Submit([] { return 1; }).get(), 1);
}

// ----------------------------------------------------------------- Units ---

TEST(UnitsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512.00 B");
  EXPECT_EQ(FormatBytes(2 * KiB), "2.00 KiB");
  EXPECT_EQ(FormatBytes(894 * GiB), "894.00 GiB");
  EXPECT_EQ(FormatBytes(3 * TiB / 2), "1.50 TiB");
}

}  // namespace
}  // namespace ofmf
