#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include "composability/client.hpp"
#include "composability/manager.hpp"
#include "composability/stranded.hpp"
#include "json/parse.hpp"
#include "ofmf/service.hpp"
#include "ofmf/uris.hpp"

namespace ofmf::composability {
namespace {

using core::BlockCapability;
using json::Json;

BlockCapability Block(const std::string& id, const std::string& type, int cores,
                      double mem, int gpus = 0, double storage = 0,
                      const std::string& locality = "rack0", double active_w = 100,
                      double idle_w = 40) {
  BlockCapability block;
  block.id = id;
  block.block_type = type;
  block.cores = cores;
  block.memory_gib = mem;
  block.gpus = gpus;
  block.storage_gib = storage;
  block.locality = locality;
  block.active_watts = active_w;
  block.idle_watts = idle_w;
  return block;
}

class ComposabilityTest : public ::testing::Test {
 protected:
  ComposabilityTest() {
    EXPECT_TRUE(ofmf_.Bootstrap().ok());
    client_ = std::make_unique<OfmfClient>(
        std::make_unique<http::InProcessClient>(ofmf_.Handler()));
    manager_ = std::make_unique<ComposabilityManager>(*client_);
  }

  void Register(const BlockCapability& block) {
    ASSERT_TRUE(ofmf_.composition().RegisterBlock(block).ok());
  }

  core::OfmfService ofmf_;
  std::unique_ptr<OfmfClient> client_;
  std::unique_ptr<ComposabilityManager> manager_;
};

// ------------------------------------------------------------- OfmfClient ---

TEST_F(ComposabilityTest, ClientLoginAttachesToken) {
  ofmf_.sessions().set_auth_required(true);
  // Unauthenticated request fails...
  EXPECT_EQ(client_->Get(core::kFabrics).status().code(), ErrorCode::kPermissionDenied);
  // ...login succeeds and the token is reused.
  ASSERT_TRUE(client_->Login("admin", "ofmf").ok());
  EXPECT_FALSE(client_->token().empty());
  EXPECT_TRUE(client_->Get(core::kFabrics).ok());
  EXPECT_FALSE(client_->Login("admin", "nope").ok());
}

TEST_F(ComposabilityTest, ClientErrorMapping) {
  EXPECT_EQ(client_->Get("/redfish/v1/Missing").status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(client_->Delete("/redfish/v1/Missing").code(), ErrorCode::kNotFound);
  auto members = client_->Members(core::kFabrics);
  ASSERT_TRUE(members.ok());
  EXPECT_TRUE(members->empty());
  EXPECT_FALSE(client_->Members(core::kServiceRoot).ok());  // not a collection
}

// ------------------------------------------------------------- Discovery ---

TEST_F(ComposabilityTest, DiscoverBlocksSeesStateAndCapability) {
  Register(Block("cpu-0", "Compute", 28, 64));
  Register(Block("gpu-0", "Processor", 0, 16, 1));
  auto blocks = manager_->DiscoverBlocks();
  ASSERT_TRUE(blocks.ok());
  ASSERT_EQ(blocks->size(), 2u);
  EXPECT_EQ((*blocks)[0].capability.id, "cpu-0");
  EXPECT_EQ((*blocks)[0].state, "Unused");
  EXPECT_EQ((*blocks)[1].capability.gpus, 1);
}

// ------------------------------------------------------------- Compose ---

TEST_F(ComposabilityTest, ComposeFirstFitCoversRequest) {
  Register(Block("cpu-0", "Compute", 28, 64));
  Register(Block("cpu-1", "Compute", 28, 64));
  Register(Block("cpu-2", "Compute", 28, 64));
  CompositionRequest request;
  request.name = "hpl";
  request.cores = 50;
  request.memory_gib = 100;
  auto composed = manager_->Compose(request);
  ASSERT_TRUE(composed.ok()) << composed.status().ToString();
  EXPECT_EQ(composed->block_uris.size(), 2u);
  EXPECT_EQ(composed->cores, 56);
  EXPECT_DOUBLE_EQ(composed->memory_gib, 128);
  // The composed system exists in the tree with summaries.
  auto system = client_->Get(composed->system_uri);
  ASSERT_TRUE(system.ok());
  EXPECT_EQ(system->at("ProcessorSummary").GetInt("CoreCount"), 56);
}

TEST_F(ComposabilityTest, ComposeFailsWhenPoolShort) {
  Register(Block("cpu-0", "Compute", 28, 64));
  CompositionRequest request;
  request.cores = 100;
  const auto composed = manager_->Compose(request);
  EXPECT_EQ(composed.status().code(), ErrorCode::kResourceExhausted);
  // Nothing was claimed.
  EXPECT_EQ(ofmf_.composition().FreeBlockUris().size(), 1u);
}

TEST_F(ComposabilityTest, EmptyRequestRejected) {
  Register(Block("cpu-0", "Compute", 28, 64));
  EXPECT_EQ(manager_->Compose(CompositionRequest{}).status().code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(ComposabilityTest, BestFitMinimizesOverallocation) {
  Register(Block("big", "Compute", 112, 256));
  Register(Block("small-0", "Compute", 14, 32));
  Register(Block("small-1", "Compute", 14, 32));
  CompositionRequest request;
  request.cores = 24;
  request.memory_gib = 48;
  request.policy = Policy::kBestFit;
  auto composed = manager_->Compose(request);
  ASSERT_TRUE(composed.ok());
  // Best fit picks the two small blocks (28 cores) over the 112-core block.
  EXPECT_EQ(composed->cores, 28);

  ASSERT_TRUE(manager_->Decompose(composed->system_uri).ok());
  request.policy = Policy::kFirstFit;
  auto first_fit = manager_->Compose(request);
  ASSERT_TRUE(first_fit.ok());
  // First fit takes "big" (collection order) and strands 88 cores.
  EXPECT_EQ(first_fit->cores, 112);
}

TEST_F(ComposabilityTest, LocalityAwarePrefersHintedRack) {
  Register(Block("far", "Compute", 28, 64, 0, 0, "rack9"));
  Register(Block("near", "Compute", 28, 64, 0, 0, "rack1"));
  CompositionRequest request;
  request.cores = 20;
  request.memory_gib = 32;
  request.locality_hint = "rack1";
  request.policy = Policy::kLocalityAware;
  auto composed = manager_->Compose(request);
  ASSERT_TRUE(composed.ok());
  ASSERT_EQ(composed->block_uris.size(), 1u);
  EXPECT_THAT(composed->block_uris[0], ::testing::HasSubstr("near"));
}

TEST_F(ComposabilityTest, EnergyAwarePrefersEfficientBlocks) {
  Register(Block("hungry", "Compute", 28, 64, 0, 0, "rack0", 400));
  Register(Block("frugal", "Compute", 28, 64, 0, 0, "rack0", 120));
  CompositionRequest request;
  request.cores = 20;
  request.memory_gib = 32;
  request.policy = Policy::kEnergyAware;
  auto composed = manager_->Compose(request);
  ASSERT_TRUE(composed.ok());
  ASSERT_EQ(composed->block_uris.size(), 1u);
  EXPECT_THAT(composed->block_uris[0], ::testing::HasSubstr("frugal"));
}

TEST_F(ComposabilityTest, CongestionAwarePolicyPassesOverCongestedBlocks) {
  // Two candidate sets that both satisfy the request; the hot one sits
  // behind a nearly saturated fabric path and must be passed over.
  BlockCapability hot = Block("hot", "Compute", 28, 64);
  hot.path_utilization = 0.9;
  Register(hot);
  BlockCapability cool = Block("cool", "Compute", 28, 64);
  cool.path_utilization = 0.1;
  Register(cool);
  CompositionRequest request;
  request.cores = 20;
  request.memory_gib = 32;
  request.policy = Policy::kCongestionAware;
  auto composed = manager_->Compose(request);
  ASSERT_TRUE(composed.ok()) << composed.status().ToString();
  ASSERT_EQ(composed->block_uris.size(), 1u);
  EXPECT_THAT(composed->block_uris[0], ::testing::HasSubstr("cool"));
}

TEST_F(ComposabilityTest, MaxPathUtilizationBoundFiltersCandidates) {
  BlockCapability hot = Block("hot", "Compute", 28, 64);
  hot.path_utilization = 0.9;
  Register(hot);
  CompositionRequest request;
  request.cores = 20;
  request.memory_gib = 32;
  request.max_path_utilization = 0.5;
  // Only the congested block exists: the bound leaves no candidates at all,
  // even though capacity-wise the pool could cover the request.
  EXPECT_EQ(manager_->Compose(request).status().code(), ErrorCode::kResourceExhausted);
  BlockCapability cool = Block("cool", "Compute", 28, 64);
  cool.path_utilization = 0.2;
  Register(cool);
  auto composed = manager_->Compose(request);
  ASSERT_TRUE(composed.ok()) << composed.status().ToString();
  ASSERT_EQ(composed->block_uris.size(), 1u);
  EXPECT_THAT(composed->block_uris[0], ::testing::HasSubstr("cool"));
}

TEST_F(ComposabilityTest, GpuAndStorageDimensionsCovered) {
  Register(Block("cpu-0", "Compute", 28, 64));
  Register(Block("gpu-0", "Processor", 0, 0, 4));
  Register(Block("nvme-0", "Storage", 0, 0, 0, 894));
  CompositionRequest request;
  request.cores = 14;
  request.memory_gib = 32;
  request.gpus = 2;
  request.storage_gib = 500;
  auto composed = manager_->Compose(request);
  ASSERT_TRUE(composed.ok());
  EXPECT_EQ(composed->block_uris.size(), 3u);
  EXPECT_EQ(composed->gpus, 4);
  EXPECT_DOUBLE_EQ(composed->storage_gib, 894);
}

// ------------------------------------------------------- Dynamic expansion ---

TEST_F(ComposabilityTest, ExpandMemoryAddsCxlBlocks) {
  Register(Block("cpu-0", "Compute", 28, 64));
  Register(Block("cxl-0", "Memory", 0, 64));
  Register(Block("cxl-1", "Memory", 0, 64));
  CompositionRequest request;
  request.name = "oom-prone";
  request.cores = 20;
  request.memory_gib = 32;
  auto composed = manager_->Compose(request);
  ASSERT_TRUE(composed.ok());
  EXPECT_DOUBLE_EQ(composed->memory_gib, 64);

  // The job nears OOM: grow by 100 GiB -> both CXL blocks attach.
  ASSERT_TRUE(manager_->ExpandMemory(composed->system_uri, 100).ok());
  const auto& record = manager_->systems().at(composed->system_uri);
  EXPECT_DOUBLE_EQ(record.memory_gib, 192);
  EXPECT_EQ(record.block_uris.size(), 3u);
  const Json system = *client_->Get(composed->system_uri);
  EXPECT_DOUBLE_EQ(system.at("MemorySummary").GetDouble("TotalSystemMemoryGiB"), 192);

  // Pool exhausted on further growth.
  EXPECT_EQ(manager_->ExpandMemory(composed->system_uri, 1000).code(),
            ErrorCode::kResourceExhausted);
  EXPECT_EQ(manager_->ExpandMemory("/redfish/v1/Systems/ghost", 1).code(),
            ErrorCode::kNotFound);
}

// --------------------------------------------------------- Decompose/free ---

TEST_F(ComposabilityTest, DecomposeFreesBlocks) {
  Register(Block("cpu-0", "Compute", 28, 64));
  CompositionRequest request;
  request.cores = 10;
  request.memory_gib = 10;
  auto composed = manager_->Compose(request);
  ASSERT_TRUE(composed.ok());
  EXPECT_TRUE(ofmf_.composition().FreeBlockUris().empty());
  ASSERT_TRUE(manager_->Decompose(composed->system_uri).ok());
  EXPECT_EQ(ofmf_.composition().FreeBlockUris().size(), 1u);
  EXPECT_TRUE(manager_->systems().empty());
}

// ------------------------------------------------------------- Stranded ---

TEST_F(ComposabilityTest, StrandedReportTracksOverallocation) {
  Register(Block("cpu-0", "Compute", 28, 64));
  Register(Block("cpu-1", "Compute", 28, 64));
  CompositionRequest request;
  request.cores = 30;  // needs both blocks (56 cores) -> 26 stranded
  request.memory_gib = 64;
  auto composed = manager_->Compose(request);
  ASSERT_TRUE(composed.ok());
  auto report = manager_->ComputeStranded();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->stranded_cores, 26);
  EXPECT_DOUBLE_EQ(report->stranded_memory_gib, 64);
  EXPECT_NEAR(report->stranded_core_fraction, 26.0 / 56.0, 1e-9);
  EXPECT_EQ(report->free_cores, 0);
}

// ---------------------------------------------------------------- Events ---

TEST_F(ComposabilityTest, EventSubscriptionRoundTrip) {
  auto sub_uri = manager_->SubscribeEvents({"ResourceAdded"});
  ASSERT_TRUE(sub_uri.ok());
  Register(Block("cpu-0", "Compute", 28, 64));
  auto events = manager_->DrainEvents(*sub_uri);
  ASSERT_TRUE(events.ok());
  EXPECT_GE(events->size(), 1u);  // block registration event
  auto empty = manager_->DrainEvents(*sub_uri);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

// -------------------------------------------------- Static vs composable ---

TEST(StrandedSimTest, ComposableStrandsLessAndUsesLessEnergy) {
  const auto jobs = DefaultJobMix();
  const int nodes = 24;
  const ProvisioningOutcome fixed = SimulateStatic(jobs, nodes);
  const ProvisioningOutcome composable = SimulateComposable(jobs, MatchedPool(nodes));

  EXPECT_EQ(fixed.jobs_placed + fixed.jobs_rejected, static_cast<int>(jobs.size()));
  EXPECT_EQ(composable.jobs_placed, static_cast<int>(jobs.size()));
  // The paper's conceptual figure: composable strands (far) less...
  EXPECT_LT(composable.stranded_core_fraction(), fixed.stranded_core_fraction());
  EXPECT_LT(composable.stranded_memory_fraction(), fixed.stranded_memory_fraction());
  EXPECT_LT(composable.stranded_gpu_fraction(), fixed.stranded_gpu_fraction());
  // ...and burns less facility energy for the same work.
  EXPECT_LT(composable.energy_kwh, fixed.energy_kwh);
  EXPECT_GT(composable.energy_kwh, 0.0);
}

TEST(StrandedSimTest, StaticRejectsWhenNodesRunOut) {
  const auto jobs = DefaultJobMix();
  const ProvisioningOutcome tiny = SimulateStatic(jobs, 4);
  EXPECT_GT(tiny.jobs_rejected, 0);
}

TEST(StrandedSimTest, PolicyNames) {
  EXPECT_STREQ(to_string(Policy::kBestFit), "best-fit");
  EXPECT_STREQ(to_string(Policy::kEnergyAware), "energy-aware");
  EXPECT_STREQ(to_string(Policy::kCongestionAware), "congestion-aware");
}

}  // namespace
}  // namespace ofmf::composability
