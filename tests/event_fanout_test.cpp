// Event fan-out engine tests: fault isolation of the publish path, full-
// jitter retry backoff, breaker-bounded probing of dead endpoints, overflow
// drop-oldest with the EventQueueFull meta-event, batch coalescing, SSE
// streaming over the reactor, and durable delivery-cursor crash recovery.
// Runs under the TSan/ASan CI jobs.
#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/faults.hpp"
#include "http/server.hpp"
#include "http/sse.hpp"
#include "json/parse.hpp"
#include "ofmf/service.hpp"
#include "ofmf/uris.hpp"
#include "store/store.hpp"

namespace ofmf {
namespace {

using core::DeliveryConfig;
using core::Event;
using json::Json;
using ::testing::HasSubstr;

using Clock = std::chrono::steady_clock;

double MsBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Scriptable push sink running on delivery workers: the test can block it,
/// flip it into failure mode, and inspect everything that was delivered.
class GateSink {
 public:
  http::Response Handle(const http::Request& request) {
    std::unique_lock<std::mutex> lock(mu_);
    ++calls_;
    call_times_.push_back(Clock::now());
    cv_.wait(lock, [this] { return !blocked_; });
    if (fail_) return http::MakeTextResponse(503, "busy");
    if (auto body = request.JsonBody(); body.ok()) bodies_.push_back(*body);
    return http::MakeEmptyResponse(204);
  }

  core::ClientFactory factory() {
    return [this](const std::string&) -> std::unique_ptr<http::HttpClient> {
      return std::make_unique<http::InProcessClient>(
          [this](const http::Request& request) { return Handle(request); });
    };
  }

  void Block() {
    std::lock_guard<std::mutex> lock(mu_);
    blocked_ = true;
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      blocked_ = false;
    }
    cv_.notify_all();
  }
  void set_fail(bool fail) {
    std::lock_guard<std::mutex> lock(mu_);
    fail_ = fail;
  }
  int calls() const {
    std::lock_guard<std::mutex> lock(mu_);
    return calls_;
  }
  std::vector<Clock::time_point> call_times() const {
    std::lock_guard<std::mutex> lock(mu_);
    return call_times_;
  }
  std::vector<Json> bodies() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bodies_;
  }
  /// MessageIds of every delivered event, across batches, in wire order.
  std::vector<std::string> delivered_message_ids() const {
    std::vector<std::string> ids;
    for (const Json& body : bodies()) {
      for (const Json& entry : body.at("Events").as_array()) {
        ids.push_back(entry.GetString("MessageId"));
      }
    }
    return ids;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool blocked_ = false;
  bool fail_ = false;
  int calls_ = 0;
  std::vector<Clock::time_point> call_times_;
  std::vector<Json> bodies_;
};

Event MakeAlert(const std::string& message_id) {
  Event event;
  event.event_type = "Alert";
  event.message_id = message_id;
  event.message = "test alert";
  event.origin = core::kServiceRoot;
  return event;
}

Result<std::string> SubscribeWire(core::OfmfService& ofmf, const std::string& destination,
                                  const std::vector<std::string>& event_types = {}) {
  Json body = Json::Obj({{"Destination", destination}, {"Protocol", "Redfish"}});
  if (!event_types.empty()) {
    json::Array types;
    for (const std::string& type : event_types) types.push_back(Json(type));
    body.as_object().Set("EventTypes", Json(std::move(types)));
  }
  return ofmf.events().Subscribe(body);
}

// ------------------------------------------------ Publish fault isolation ---

TEST(EventFanoutTest, StalledSubscriberDoesNotDelayPublish) {
  GateSink sink;
  core::OfmfService ofmf;
  ASSERT_TRUE(ofmf.Bootstrap().ok());
  ofmf.events().set_client_factory(sink.factory());
  ASSERT_TRUE(SubscribeWire(ofmf, "http://stalled/events", {"Alert"}).ok());

  // The sink blocks its delivery worker indefinitely; the publisher must
  // not notice. (The old synchronous path would hold the event mutex across
  // this stall, delaying every Publish by the subscriber's latency.)
  sink.Block();
  double worst_ms = 0.0;
  for (int i = 0; i < 200; ++i) {
    const Clock::time_point before = Clock::now();
    ofmf.events().Publish(MakeAlert("Fanout.1.0.Stalled" + std::to_string(i)));
    worst_ms = std::max(worst_ms, MsBetween(before, Clock::now()));
  }
  // Enqueue-only: generous CI bound, still orders of magnitude below a
  // single blocked delivery.
  EXPECT_LT(worst_ms, 20.0);
  // The async contract, measured, not assumed: zero network sends happened
  // on any thread while Publish was on its stack.
  EXPECT_EQ(ofmf.events().publish_path_sends(), 0u);

  sink.Release();
  EXPECT_TRUE(ofmf.events().FlushDelivery(10000));
  EXPECT_EQ(ofmf.events().publish_path_sends(), 0u);
}

// ----------------------------------------------------- Full-jitter backoff ---

TEST(EventFanoutTest, RetryUsesFullJitterBackoff) {
  GateSink sink;
  sink.set_fail(true);
  core::OfmfService ofmf;
  ASSERT_TRUE(ofmf.Bootstrap().ok());
  DeliveryConfig config;
  config.retry_attempts = 4;
  config.base_backoff_ms = 20;
  config.max_backoff_ms = 250;
  ofmf.events().ConfigureDelivery(config);
  ofmf.events().set_client_factory(sink.factory());
  ASSERT_TRUE(SubscribeWire(ofmf, "http://flaky/events", {"Alert"}).ok());

  ofmf.events().Publish(MakeAlert("Fanout.1.0.Backoff"));
  ASSERT_TRUE(ofmf.events().FlushDelivery(10000));

  const std::vector<Clock::time_point> times = sink.call_times();
  ASSERT_EQ(times.size(), 4u);  // the full retry budget was spent
  EXPECT_EQ(ofmf.events().delivery_retries(), 3u);
  EXPECT_EQ(ofmf.events().delivery_failures(), 1u);
  // Full jitter Uniform(0, min(max, base*2^k)): the three waits are bounded
  // above by 40+80+160 ms, and (seeded deterministically) are not hot-spin
  // zero-delay retries.
  const double total_ms = MsBetween(times.front(), times.back());
  EXPECT_LT(total_ms, 400.0);
  EXPECT_GT(total_ms, 1.0);
}

// ------------------------------------------------- Breaker probe budgeting ---

TEST(EventFanoutTest, BreakerCapsProbesOfBlackholedEndpoint) {
  GateSink sink;
  sink.set_fail(true);
  core::OfmfService ofmf;
  ASSERT_TRUE(ofmf.Bootstrap().ok());
  DeliveryConfig config;
  config.retry_attempts = 1;   // every allowed attempt settles its batch
  config.batch_max_events = 4; // keep a backlog for the breaker to shield
  config.base_backoff_ms = 1;
  config.max_backoff_ms = 4;
  // Long relative to the drain so the open breaker shields nearly every
  // batch — even under sanitizer slowdown, probes stay far below batches.
  config.breaker_cooldown_ms = 100;
  ofmf.events().ConfigureDelivery(config);
  ofmf.events().set_client_factory(sink.factory());
  ASSERT_TRUE(SubscribeWire(ofmf, "http://blackhole/events", {"Alert"}).ok());

  constexpr int kEvents = 40;
  for (int i = 0; i < kEvents; ++i) {
    ofmf.events().Publish(MakeAlert("Fanout.1.0.Dead" + std::to_string(i)));
  }
  ASSERT_TRUE(ofmf.events().FlushDelivery(15000));

  // Without the breaker this would be ~kEvents sends. With it the endpoint
  // costs the closed-state failures plus one half-open probe per cooldown.
  EXPECT_LE(sink.calls(), 12);
  EXPECT_GE(sink.calls(), 3);
  EXPECT_EQ(ofmf.events().delivery_failures(), static_cast<std::uint64_t>(kEvents));

  const core::DeliverySnapshot snapshot = ofmf.events().CollectDelivery();
  ASSERT_EQ(snapshot.subscribers.size(), 1u);
  EXPECT_GE(snapshot.subscribers[0].breaker_stats.opens, 1u);
  EXPECT_GE(snapshot.subscribers[0].breaker_stats.rejected, 1u);
}

// ---------------------------------------- Overflow: drop-oldest + alerting ---

TEST(EventFanoutTest, OverflowDropsOldestAndPublishesQueueFullAlert) {
  GateSink sink;
  core::OfmfService ofmf;
  ASSERT_TRUE(ofmf.Bootstrap().ok());
  DeliveryConfig config;
  config.queue_capacity = 4;
  config.batch_max_events = 2;
  ofmf.events().ConfigureDelivery(config);
  ofmf.events().set_client_factory(sink.factory());
  ASSERT_TRUE(SubscribeWire(ofmf, "http://slow/events", {"StatusChange"}).ok());
  // An internal watcher for the meta-event the overflow must surface.
  const Result<std::string> watch = ofmf.events().Subscribe(
      *json::Parse(R"({"Destination":"ofmf-internal://watch","Protocol":"OEM",
                       "EventTypes":["Alert"]})"));
  ASSERT_TRUE(watch.ok());

  sink.Block();
  constexpr int kEvents = 12;
  for (int i = 0; i < kEvents; ++i) {
    Event event;
    event.event_type = "StatusChange";
    event.message_id = "Fanout.1.0.Burst" + std::to_string(i);
    event.origin = core::kServiceRoot;
    ofmf.events().Publish(event);
  }
  sink.Release();
  ASSERT_TRUE(ofmf.events().FlushDelivery(10000));

  // Bounded queue: some events were dropped (oldest first), and the books
  // balance: every enqueued event was either delivered or counted dropped.
  const core::DeliverySnapshot snapshot = ofmf.events().CollectDelivery();
  ASSERT_EQ(snapshot.subscribers.size(), 1u);
  const core::SubscriberSnapshot& sub = snapshot.subscribers[0];
  EXPECT_EQ(sub.enqueued, static_cast<std::uint64_t>(kEvents));
  EXPECT_GT(sub.dropped, 0u);
  EXPECT_EQ(sub.delivered + sub.dropped, static_cast<std::uint64_t>(kEvents));
  // Drop-oldest: the newest event survived the burst.
  const std::vector<std::string> delivered = sink.delivered_message_ids();
  ASSERT_FALSE(delivered.empty());
  EXPECT_EQ(delivered.back(), "Fanout.1.0.Burst" + std::to_string(kEvents - 1));

  // The overflow surfaced as a Redfish Alert meta-event: one per episode,
  // naming the subscription and its cumulative drop count.
  const auto alerts = ofmf.events().Drain(*watch);
  ASSERT_TRUE(alerts.ok());
  ASSERT_EQ(alerts->size(), 1u);
  const Json& alert = (*alerts)[0].at("Events").as_array()[0];
  EXPECT_EQ(alert.GetString("MessageId"), "EventService.1.0.EventQueueFull");
  EXPECT_THAT(alert.at("OriginOfCondition").GetString("@odata.id"),
              HasSubstr("/EventService/Subscriptions/"));
  EXPECT_GE((*alerts)[0].at("Oem").GetInt("DroppedTotal"), 1);
}

// ------------------------------------------------------- Batch coalescing ---

TEST(EventFanoutTest, BacklogCoalescesIntoOneBatchPost) {
  GateSink sink;
  core::OfmfService ofmf;
  ASSERT_TRUE(ofmf.Bootstrap().ok());
  ofmf.events().set_client_factory(sink.factory());
  ASSERT_TRUE(SubscribeWire(ofmf, "http://batch/events", {"Alert"}).ok());

  sink.Block();
  ofmf.events().Publish(MakeAlert("Fanout.1.0.Batch0"));
  // Wait until a worker grabbed the first (single-event) batch and is
  // stalled inside the sink, then pile up a backlog behind it.
  for (int spin = 0; sink.calls() < 1 && spin < 1000; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(sink.calls(), 1);
  for (int i = 1; i <= 8; ++i) {
    ofmf.events().Publish(MakeAlert("Fanout.1.0.Batch" + std::to_string(i)));
  }
  sink.Release();
  ASSERT_TRUE(ofmf.events().FlushDelivery(10000));

  // The backlog left as ONE coalesced POST: first body holds the stalled
  // single event, the second all eight, "Events" arrays concatenated.
  const std::vector<Json> bodies = sink.bodies();
  ASSERT_EQ(bodies.size(), 2u);
  EXPECT_EQ(bodies[0].at("Events").as_array().size(), 1u);
  EXPECT_EQ(bodies[1].at("Events").as_array().size(), 8u);
  EXPECT_EQ(bodies[1].GetString("Name"), "OFMF Event Batch");
  const core::DeliverySnapshot snapshot = ofmf.events().CollectDelivery();
  EXPECT_EQ(snapshot.batches, 2u);
  EXPECT_EQ(snapshot.coalesced, 8u);
  EXPECT_EQ(snapshot.delivered, 9u);
}

// ------------------------------------------------------------ SSE streams ---

TEST(EventFanoutTest, SseStreamDeliversFramesAndDetachesOnDisconnect) {
  core::OfmfService ofmf;
  ASSERT_TRUE(ofmf.Bootstrap().ok());
  http::TcpServer server;
  ASSERT_TRUE(server.Start(ofmf.Handler()).ok());

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  timeval timeout{5, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << std::strerror(errno);
  const std::string request =
      "GET " + std::string(core::kEventServiceSse) + "?EventTypes=Alert HTTP/1.1\r\n"
      "Host: ofmf\r\nAccept: text/event-stream\r\n\r\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(request.size()));

  // Read the streaming head (no Content-Length; connection stays open).
  std::string head;
  char byte = 0;
  while (head.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, &byte, 1, 0);
    ASSERT_GT(n, 0) << "disconnected before the head completed";
    head.push_back(byte);
  }
  EXPECT_THAT(head, HasSubstr("200"));
  EXPECT_THAT(head, HasSubstr("text/event-stream"));

  // Wait for the stream subscriber to attach (the open hook runs on the
  // reactor loop), then publish.
  for (int spin = 0; ofmf.events().CollectDelivery().streams == 0 && spin < 1000;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(ofmf.events().CollectDelivery().streams, 1u);
  for (int i = 0; i < 3; ++i) {
    ofmf.events().Publish(MakeAlert("Fanout.1.0.Sse" + std::to_string(i)));
  }

  http::SseParser parser;
  std::vector<http::SseEvent> frames;
  std::vector<char> buffer(4096);
  while (frames.size() < 3) {
    const ssize_t n = ::recv(fd, buffer.data(), buffer.size(), 0);
    ASSERT_GT(n, 0) << "stream ended before 3 frames arrived";
    for (http::SseEvent& frame :
         parser.Feed(std::string_view(buffer.data(), static_cast<std::size_t>(n)))) {
      frames.push_back(std::move(frame));
    }
  }
  ASSERT_EQ(frames.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    const Result<Json> record = json::Parse(frames[i].data);
    ASSERT_TRUE(record.ok()) << frames[i].data;
    const Json& entry = record->at("Events").as_array()[0];
    EXPECT_EQ(entry.GetString("MessageId"), "Fanout.1.0.Sse" + std::to_string(i));
    // The SSE id is the durable event sequence (resume tokens for clients).
    EXPECT_EQ(frames[i].id, entry.GetString("EventId"));
  }
  EXPECT_EQ(server.stats().streams_opened, 1u);

  // Peer disconnect detaches the subscriber: the reactor sees EOF, marks
  // the writer closed, and the engine drops the stream on its next pass.
  ::close(fd);
  bool detached = false;
  for (int spin = 0; spin < 1000 && !detached; ++spin) {
    ofmf.events().Publish(MakeAlert("Fanout.1.0.AfterClose"));
    (void)ofmf.events().FlushDelivery(1000);
    detached = ofmf.events().CollectDelivery().streams == 0;
    if (!detached) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(detached);
  server.Stop();
}

// ----------------------------------------- Durable cursor crash recovery ---

TEST(EventFanoutTest, DeliveryCursorSurvivesCrashWithoutRedeliveryOrLoss) {
  const std::string dir = ::testing::TempDir() + "ofmf_fanout_cursor";
  std::filesystem::remove_all(dir);
  store::StoreOptions options;
  options.dir = dir;

  GateSink sink;
  std::uint64_t acked_before_crash = 0;
  {
    core::OfmfService ofmf;
    ASSERT_TRUE(ofmf.Bootstrap().ok());
    DeliveryConfig config;
    config.retry_attempts = 1000;  // keep unacknowledged events queued
    config.base_backoff_ms = 1;
    config.max_backoff_ms = 8;
    config.breaker_cooldown_ms = 2;
    ofmf.events().ConfigureDelivery(config);
    ofmf.events().set_client_factory(sink.factory());

    auto persistent = store::PersistentStore::Open(options);
    ASSERT_TRUE(persistent.ok());
    auto faults = std::make_shared<FaultInjector>(4242);
    (*persistent)->set_fault_injector(faults);
    ASSERT_TRUE(ofmf.EnableDurability(std::move(*persistent)).ok());
    ASSERT_TRUE(SubscribeWire(ofmf, "http://cursor/events", {"Alert"}).ok());

    // Phase A: three events delivered and acknowledged; the cursor advances
    // through the journal.
    for (int i = 0; i < 3; ++i) {
      ofmf.events().Publish(MakeAlert("Cursor.1.0.A" + std::to_string(i)));
    }
    ASSERT_TRUE(ofmf.events().FlushDelivery(10000));
    ASSERT_EQ(sink.delivered_message_ids().size(), 3u);
    acked_before_crash = ofmf.events().CollectDelivery().subscribers[0].acked_sequence;
    ASSERT_GT(acked_before_crash, 0u);

    // Phase B: the destination goes dark; three more events stay queued,
    // journaled but unacknowledged. Commit everything to the platter.
    sink.set_fail(true);
    for (int i = 0; i < 3; ++i) {
      ofmf.events().Publish(MakeAlert("Cursor.1.0.B" + std::to_string(i)));
    }
    ASSERT_TRUE(ofmf.FlushStore().ok());

    // Power loss: the next journal commit crashes the store. The event
    // published after the flush never reaches disk — like any write a
    // crashed process never committed.
    faults->ArmNthCall("store.commit.crash", FaultKind::kCrash, 1);
    Event lost;
    lost.event_type = "StatusChange";  // does not match the subscription
    lost.message_id = "Cursor.1.0.Lost";
    lost.origin = core::kServiceRoot;
    ofmf.events().Publish(lost);
    EXPECT_FALSE(ofmf.FlushStore().ok());
    ASSERT_TRUE(ofmf.store()->crashed());
    sink.set_fail(false);  // let teardown drain without spinning
  }

  // Successor process: recover, adopt, and resume the subscription at its
  // cursor. Exactly the unacknowledged suffix (B0..B2) is redelivered — no
  // acknowledged A event twice, no journaled unacked event lost.
  GateSink successor_sink;
  core::OfmfService successor;
  ASSERT_TRUE(successor.Bootstrap().ok());
  DeliveryConfig config;
  config.base_backoff_ms = 1;
  successor.events().ConfigureDelivery(config);
  successor.events().set_client_factory(successor_sink.factory());
  auto reopened = store::PersistentStore::Open(options);
  ASSERT_TRUE(reopened.ok());
  auto report = successor.EnableDurability(std::move(*reopened));
  ASSERT_TRUE(report.ok()) << report.status().message();
  ASSERT_TRUE(successor.events().FlushDelivery(10000));

  const std::vector<std::string> redelivered = successor_sink.delivered_message_ids();
  EXPECT_THAT(redelivered, ::testing::ElementsAre("Cursor.1.0.B0", "Cursor.1.0.B1",
                                                  "Cursor.1.0.B2"));
  const core::DeliverySnapshot snapshot = successor.events().CollectDelivery();
  ASSERT_EQ(snapshot.subscribers.size(), 1u);
  EXPECT_EQ(snapshot.subscribers[0].acked_sequence, acked_before_crash + 3);
  EXPECT_EQ(snapshot.subscribers[0].queue_depth, 0u);
}

}  // namespace
}  // namespace ofmf
