#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include "common/faults.hpp"
#include "fabricsim/chaos.hpp"
#include "fabricsim/cxl.hpp"
#include "fabricsim/ethernet.hpp"
#include "fabricsim/genz.hpp"
#include "fabricsim/graph.hpp"
#include "fabricsim/infiniband.hpp"
#include "fabricsim/nvmeof.hpp"

namespace ofmf::fabricsim {
namespace {

using ::testing::ElementsAre;

// A two-switch dumbbell used across manager tests:
//   hostA -- sw0 -- sw1 -- memB
//              \____/         (redundant second trunk for failover)
struct Dumbbell {
  FabricGraph graph;
  Dumbbell() {
    EXPECT_TRUE(graph.AddVertex("sw0", VertexKind::kSwitch, 8).ok());
    EXPECT_TRUE(graph.AddVertex("sw1", VertexKind::kSwitch, 8).ok());
    EXPECT_TRUE(graph.AddVertex("hostA", VertexKind::kDevice, 2).ok());
    EXPECT_TRUE(graph.AddVertex("memB", VertexKind::kDevice, 2).ok());
    EXPECT_TRUE(graph.Connect("hostA", 0, "sw0", 0, {100, 100}).ok());
    EXPECT_TRUE(graph.Connect("sw0", 1, "sw1", 1, {50, 200}).ok());
    EXPECT_TRUE(graph.Connect("sw0", 2, "sw1", 2, {80, 100}).ok());  // backup trunk
    EXPECT_TRUE(graph.Connect("sw1", 0, "memB", 0, {100, 100}).ok());
  }
};

// ----------------------------------------------------------------- Graph ---

TEST(GraphTest, VertexAndConnectValidation) {
  FabricGraph graph;
  EXPECT_TRUE(graph.AddVertex("a", VertexKind::kDevice, 2).ok());
  EXPECT_EQ(graph.AddVertex("a", VertexKind::kDevice, 2).code(), ErrorCode::kAlreadyExists);
  EXPECT_FALSE(graph.AddVertex("", VertexKind::kDevice, 1).ok());
  EXPECT_FALSE(graph.AddVertex("neg", VertexKind::kDevice, -1).ok());
  EXPECT_TRUE(graph.AddVertex("b", VertexKind::kSwitch, 2).ok());

  EXPECT_EQ(graph.Connect("a", 0, "missing", 0).code(), ErrorCode::kNotFound);
  EXPECT_FALSE(graph.Connect("a", 5, "b", 0).ok());   // port out of range
  EXPECT_FALSE(graph.Connect("a", 0, "a", 1).ok());   // self link
  EXPECT_TRUE(graph.Connect("a", 0, "b", 0).ok());
  EXPECT_EQ(graph.Connect("a", 0, "b", 1).code(), ErrorCode::kAlreadyExists);  // port busy
  EXPECT_EQ(graph.PortCount("a"), 2);
  EXPECT_EQ(graph.PortCount("nope"), -1);
  EXPECT_EQ(graph.PeerOf("a", 0), "b");
  EXPECT_FALSE(graph.PeerOf("a", 1).has_value());
}

TEST(GraphTest, ShortestPathPrefersLowLatency) {
  Dumbbell d;
  auto path = d.graph.ShortestPath("hostA", "memB");
  ASSERT_TRUE(path.ok());
  // 100 + 50 + 100 via the fast trunk.
  EXPECT_DOUBLE_EQ(path->total_latency_ns, 250.0);
  EXPECT_THAT(path->hops, ElementsAre("hostA", "sw0", "sw1", "memB"));
  EXPECT_DOUBLE_EQ(path->min_bandwidth_gbps, 100.0);
}

TEST(GraphTest, FailoverReroutesOverBackupTrunk) {
  Dumbbell d;
  ASSERT_TRUE(d.graph.SetLinkUp("sw0", 1, false).ok());  // kill fast trunk
  auto path = d.graph.ShortestPath("hostA", "memB");
  ASSERT_TRUE(path.ok());
  EXPECT_DOUBLE_EQ(path->total_latency_ns, 280.0);  // 100 + 80 + 100
  // Kill the backup too: unreachable.
  ASSERT_TRUE(d.graph.SetLinkUp("sw0", 2, false).ok());
  EXPECT_FALSE(d.graph.Reachable("hostA", "memB"));
  // Restore.
  ASSERT_TRUE(d.graph.SetLinkUp("sw0", 1, true).ok());
  EXPECT_TRUE(d.graph.Reachable("hostA", "memB"));
}

TEST(GraphTest, LinkChangeNotifications) {
  Dumbbell d;
  std::vector<std::string> events;
  const auto token = d.graph.SubscribeLinkChanges([&](const LinkChange& change) {
    events.push_back(change.id.ToString() + (change.up ? " up" : " down"));
  });
  ASSERT_TRUE(d.graph.SetLinkUp("sw0", 1, false).ok());
  ASSERT_TRUE(d.graph.SetLinkUp("sw0", 1, false).ok());  // no-op, no event
  ASSERT_TRUE(d.graph.SetLinkUp("sw0", 1, true).ok());
  d.graph.UnsubscribeLinkChanges(token);
  ASSERT_TRUE(d.graph.SetLinkUp("sw0", 1, false).ok());
  ASSERT_EQ(events.size(), 2u);
  EXPECT_THAT(events[0], ::testing::HasSubstr("down"));
  EXPECT_THAT(events[1], ::testing::HasSubstr("up"));
}

TEST(GraphTest, TrafficAccountingClampsAndReportsUtilization) {
  Dumbbell d;
  EXPECT_DOUBLE_EQ(d.graph.OfferedGbps("sw0", 1), 0.0);
  EXPECT_DOUBLE_EQ(d.graph.Utilization("sw0", 1), 0.0);
  ASSERT_TRUE(d.graph.AddTraffic("sw0", 1, 100.0).ok());
  EXPECT_DOUBLE_EQ(d.graph.OfferedGbps("sw0", 1), 100.0);
  // Fast trunk bandwidth is 200 Gb/s, so 100 offered = 0.5 utilization —
  // visible from both ends of the link.
  EXPECT_DOUBLE_EQ(d.graph.Utilization("sw0", 1), 0.5);
  EXPECT_DOUBLE_EQ(d.graph.Utilization("sw1", 1), 0.5);
  // Removing more than was offered clamps at zero rather than going negative.
  ASSERT_TRUE(d.graph.AddTraffic("sw0", 1, -500.0).ok());
  EXPECT_DOUBLE_EQ(d.graph.OfferedGbps("sw0", 1), 0.0);
  EXPECT_FALSE(d.graph.AddTraffic("ghost", 0, 1.0).ok());
  EXPECT_FALSE(d.graph.AddTraffic("sw0", 99, 1.0).ok());
}

TEST(GraphTest, LeastCongestedPathDetoursAroundHotTrunk) {
  Dumbbell d;
  // Load the fast trunk to 80% utilization. Latency routing still prefers it,
  // but congestion-aware routing pays 50 * (1 + 4*0.8) = 210 ns effective and
  // detours over the idle 80 ns backup trunk.
  ASSERT_TRUE(d.graph.AddTraffic("sw0", 1, 160.0).ok());
  auto shortest = d.graph.ShortestPath("hostA", "memB");
  ASSERT_TRUE(shortest.ok());
  EXPECT_DOUBLE_EQ(shortest->total_latency_ns, 250.0);
  EXPECT_DOUBLE_EQ(shortest->max_utilization, 0.8);
  auto detour = d.graph.LeastCongestedPath("hostA", "memB");
  ASSERT_TRUE(detour.ok());
  EXPECT_DOUBLE_EQ(detour->total_latency_ns, 280.0);  // via the backup trunk
  EXPECT_DOUBLE_EQ(detour->max_utilization, 0.0);
  // Drain the trunk: both routing modes agree again.
  ASSERT_TRUE(d.graph.AddTraffic("sw0", 1, -160.0).ok());
  auto agreed = d.graph.LeastCongestedPath("hostA", "memB");
  ASSERT_TRUE(agreed.ok());
  EXPECT_DOUBLE_EQ(agreed->total_latency_ns, 250.0);
}

TEST(GraphTest, AddPathTrafficLoadsEveryHopOfTheRoute) {
  Dumbbell d;
  ASSERT_TRUE(d.graph.AddPathTraffic("hostA", "memB", 50.0).ok());
  EXPECT_DOUBLE_EQ(d.graph.OfferedGbps("hostA", 0), 50.0);
  EXPECT_DOUBLE_EQ(d.graph.OfferedGbps("sw0", 1), 50.0);   // fast trunk carries it
  EXPECT_DOUBLE_EQ(d.graph.OfferedGbps("sw0", 2), 0.0);    // backup stays idle
  EXPECT_DOUBLE_EQ(d.graph.OfferedGbps("sw1", 0), 50.0);
  EXPECT_FALSE(d.graph.AddPathTraffic("hostA", "ghost", 1.0).ok());
}

TEST(GraphTest, FailVertexDownsAllLinks) {
  Dumbbell d;
  ASSERT_TRUE(d.graph.FailVertex("sw1").ok());
  EXPECT_FALSE(d.graph.Reachable("hostA", "memB"));
  int down = 0;
  for (const LinkState& link : d.graph.Links()) down += !link.up;
  EXPECT_EQ(down, 3);  // both trunks + memB uplink
}

// ----------------------------------------------------------- LinkFlapper ---

// Dumbbell variant whose FIRST link is the fast trunk, so the flapper's
// "take down the first live link" lands on the path tests can reroute
// around instead of severing a leaf.
struct TrunkFirstDumbbell {
  FabricGraph graph;
  TrunkFirstDumbbell() {
    EXPECT_TRUE(graph.AddVertex("sw0", VertexKind::kSwitch, 8).ok());
    EXPECT_TRUE(graph.AddVertex("sw1", VertexKind::kSwitch, 8).ok());
    EXPECT_TRUE(graph.AddVertex("hostA", VertexKind::kDevice, 2).ok());
    EXPECT_TRUE(graph.AddVertex("memB", VertexKind::kDevice, 2).ok());
    EXPECT_TRUE(graph.Connect("sw0", 1, "sw1", 1, {50, 200}).ok());  // fast trunk
    EXPECT_TRUE(graph.Connect("sw0", 2, "sw1", 2, {80, 100}).ok());  // backup trunk
    EXPECT_TRUE(graph.Connect("hostA", 0, "sw0", 0, {100, 100}).ok());
    EXPECT_TRUE(graph.Connect("sw1", 0, "memB", 0, {100, 100}).ok());
  }
};

TEST(LinkFlapperTest, FlapReroutesOverBackupTrunkAndHealRestores) {
  TrunkFirstDumbbell d;
  auto faults = std::make_shared<FaultInjector>();
  faults->ArmNthCall("fabric.flap", FaultKind::kDropConnection, 1);
  LinkFlapper flapper(d.graph, faults);

  ASSERT_TRUE(flapper.Tick());  // fast trunk goes down
  ASSERT_TRUE(flapper.downed_link().has_value());
  auto rerouted = d.graph.ShortestPath("hostA", "memB");
  ASSERT_TRUE(rerouted.ok());
  EXPECT_DOUBLE_EQ(rerouted->total_latency_ns, 280.0);  // 100 + 80 + 100

  flapper.Heal();
  EXPECT_FALSE(flapper.downed_link().has_value());
  auto restored = d.graph.ShortestPath("hostA", "memB");
  ASSERT_TRUE(restored.ok());
  EXPECT_DOUBLE_EQ(restored->total_latency_ns, 250.0);  // fast trunk again
  EXPECT_EQ(flapper.flaps(), 1u);
}

TEST(LinkFlapperTest, AtMostOneLinkDownAcrossScheduledFlaps) {
  TrunkFirstDumbbell d;
  auto faults = std::make_shared<FaultInjector>();
  faults->ArmSchedule("fabric.flap", FaultKind::kDropConnection, {1, 2, 4});
  LinkFlapper flapper(d.graph, faults);

  for (int tick = 1; tick <= 5; ++tick) {
    flapper.Tick();
    int down = 0;
    for (const LinkState& link : d.graph.Links()) down += !link.up;
    EXPECT_LE(down, 1) << "tick " << tick;
    EXPECT_TRUE(d.graph.Reachable("hostA", "memB")) << "tick " << tick;
  }
  // Schedule exhausted: the last Tick healed the tick-4 flap and downed
  // nothing new.
  EXPECT_EQ(flapper.flaps(), 3u);
  int down = 0;
  for (const LinkState& link : d.graph.Links()) down += !link.up;
  EXPECT_EQ(down, 0);
}

TEST(LinkFlapperTest, NullOrDisabledInjectorNeverFlaps) {
  TrunkFirstDumbbell d;
  LinkFlapper unarmed(d.graph, nullptr);
  EXPECT_FALSE(unarmed.Tick());

  auto faults = std::make_shared<FaultInjector>();
  faults->ArmProbability("fabric.flap", FaultKind::kDropConnection, 1.0);
  faults->set_enabled(false);
  LinkFlapper disabled(d.graph, faults);
  EXPECT_FALSE(disabled.Tick());
  EXPECT_EQ(disabled.flaps(), 0u);
}

TEST(GraphTest, ReachableSelfAndUnknown) {
  Dumbbell d;
  EXPECT_TRUE(d.graph.Reachable("hostA", "hostA"));
  EXPECT_FALSE(d.graph.Reachable("hostA", "ghost"));
  EXPECT_FALSE(d.graph.ShortestPath("ghost", "hostA").ok());
}

TEST(GraphTest, VerticesFilterByKind) {
  Dumbbell d;
  EXPECT_THAT(d.graph.Vertices(VertexKind::kSwitch), ElementsAre("sw0", "sw1"));
  EXPECT_THAT(d.graph.Vertices(VertexKind::kDevice), ElementsAre("hostA", "memB"));
  EXPECT_EQ(d.graph.Vertices().size(), 4u);
}

// ------------------------------------------------------ QoS reservations ---

TEST(QosTest, AdmissionControlEnforcesLinkCapacity) {
  Dumbbell d;
  // Fast trunk has 200 Gbps; host/mem uplinks 100 Gbps -> path cap 100.
  auto first = d.graph.ReserveBandwidth("hostA", "memB", 60.0);
  ASSERT_TRUE(first.ok());
  // Another 60 exceeds the 100 Gbps uplink.
  EXPECT_EQ(d.graph.ReserveBandwidth("hostA", "memB", 60.0).status().code(),
            ErrorCode::kResourceExhausted);
  // 40 fits exactly.
  auto second = d.graph.ReserveBandwidth("hostA", "memB", 40.0);
  ASSERT_TRUE(second.ok());
  EXPECT_DOUBLE_EQ(d.graph.CommittedGbps("hostA", 0), 100.0);
  // Releasing frees headroom.
  ASSERT_TRUE(d.graph.ReleaseBandwidth(*first).ok());
  EXPECT_DOUBLE_EQ(d.graph.CommittedGbps("hostA", 0), 40.0);
  EXPECT_TRUE(d.graph.ReserveBandwidth("hostA", "memB", 60.0).ok());
  EXPECT_EQ(d.graph.ReleaseBandwidth(*first).code(), ErrorCode::kNotFound);
}

TEST(QosTest, ReservationPinsTheLowLatencyPath) {
  Dumbbell d;
  auto id = d.graph.ReserveBandwidth("hostA", "memB", 10.0);
  ASSERT_TRUE(id.ok());
  const auto reservation = d.graph.GetReservation(*id);
  ASSERT_TRUE(reservation.ok());
  ASSERT_EQ(reservation->path_links.size(), 3u);
  // Fast trunk (sw0:1 <-> sw1:1) carries it, not the backup.
  EXPECT_DOUBLE_EQ(d.graph.CommittedGbps("sw0", 1), 10.0);
  EXPECT_DOUBLE_EQ(d.graph.CommittedGbps("sw0", 2), 0.0);
  EXPECT_FALSE(reservation->degraded);
}

TEST(QosTest, LinkFailureDegradesAndRepairRepins) {
  Dumbbell d;
  auto id = d.graph.ReserveBandwidth("hostA", "memB", 10.0);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(d.graph.SetLinkUp("sw0", 1, false).ok());  // kill the pinned trunk
  EXPECT_TRUE(d.graph.GetReservation(*id)->degraded);
  // Degraded reservations hold no capacity.
  EXPECT_DOUBLE_EQ(d.graph.CommittedGbps("hostA", 0), 0.0);
  // Repair re-pins over the backup trunk.
  ASSERT_TRUE(d.graph.RepairReservation(*id).ok());
  const auto repaired = d.graph.GetReservation(*id);
  EXPECT_FALSE(repaired->degraded);
  EXPECT_DOUBLE_EQ(d.graph.CommittedGbps("sw0", 2), 10.0);
  // Repair of a healthy reservation is a no-op.
  EXPECT_TRUE(d.graph.RepairReservation(*id).ok());
  EXPECT_EQ(d.graph.RepairReservation(999).code(), ErrorCode::kNotFound);
}

TEST(QosTest, ValidationAndUnreachable) {
  Dumbbell d;
  EXPECT_FALSE(d.graph.ReserveBandwidth("hostA", "memB", 0.0).ok());
  EXPECT_FALSE(d.graph.ReserveBandwidth("hostA", "ghost", 1.0).ok());
  ASSERT_TRUE(d.graph.SetLinkUp("sw0", 1, false).ok());
  ASSERT_TRUE(d.graph.SetLinkUp("sw0", 2, false).ok());
  EXPECT_EQ(d.graph.ReserveBandwidth("hostA", "memB", 1.0).status().code(),
            ErrorCode::kNotFound);
  EXPECT_TRUE(d.graph.Reservations().empty());
}

// ------------------------------------------------------------------- CXL ---

class CxlTest : public ::testing::Test {
 protected:
  CxlTest() : manager_(d_.graph) {
    EXPECT_TRUE(manager_.RegisterMemoryDevice("memB", 1024, 4).ok());
    EXPECT_TRUE(manager_.RegisterHost("hostA").ok());
  }
  Dumbbell d_;
  CxlFabricManager manager_;
};

TEST_F(CxlTest, RegistrationValidation) {
  EXPECT_EQ(manager_.RegisterMemoryDevice("memB", 1, 1).code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(manager_.RegisterMemoryDevice("ghost", 1, 1).code(), ErrorCode::kNotFound);
  EXPECT_FALSE(manager_.RegisterMemoryDevice("sw0", 1, 0).ok());
  EXPECT_EQ(manager_.RegisterHost("hostA").code(), ErrorCode::kAlreadyExists);
  const auto devices = manager_.ListMemoryDevices();
  ASSERT_EQ(devices.size(), 1u);
  EXPECT_EQ(devices[0].logical_devices.size(), 4u);
  EXPECT_EQ(devices[0].logical_devices[0].capacity_bytes, 256u);
}

TEST_F(CxlTest, BindUnbindLifecycle) {
  EXPECT_TRUE(manager_.BindLogicalDevice("hostA", "memB", 0).ok());
  EXPECT_EQ(manager_.BindLogicalDevice("hostA", "memB", 0).code(),
            ErrorCode::kFailedPrecondition);  // double bind
  auto ld = manager_.QueryLogicalDevice("memB", 0);
  ASSERT_TRUE(ld.ok());
  EXPECT_TRUE(ld->bound);
  EXPECT_EQ(ld->bound_host, "hostA");
  EXPECT_EQ(manager_.UnboundCapacityBytes(), 768u);

  EXPECT_TRUE(manager_.UnbindLogicalDevice("memB", 0).ok());
  EXPECT_EQ(manager_.UnbindLogicalDevice("memB", 0).code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(manager_.UnboundCapacityBytes(), 1024u);
}

TEST_F(CxlTest, BindRequiresLivePath) {
  ASSERT_TRUE(d_.graph.SetLinkUp("sw0", 1, false).ok());
  ASSERT_TRUE(d_.graph.SetLinkUp("sw0", 2, false).ok());
  EXPECT_EQ(manager_.BindLogicalDevice("hostA", "memB", 0).code(),
            ErrorCode::kUnavailable);
}

TEST_F(CxlTest, DecoderProgrammingRules) {
  ASSERT_TRUE(manager_.BindLogicalDevice("hostA", "memB", 0).ok());
  CxlDecoder decoder{"hostA", 0x1000, 128, "memB", 0};
  EXPECT_TRUE(manager_.ProgramDecoder(decoder).ok());
  // Overlapping HPA on same host rejected.
  CxlDecoder overlap{"hostA", 0x1040, 128, "memB", 0};
  EXPECT_EQ(manager_.ProgramDecoder(overlap).code(), ErrorCode::kAlreadyExists);
  // Unbound LD rejected.
  CxlDecoder unbound{"hostA", 0x9000, 64, "memB", 1};
  EXPECT_EQ(manager_.ProgramDecoder(unbound).code(), ErrorCode::kFailedPrecondition);
  // Too large rejected.
  CxlDecoder huge{"hostA", 0x20000, 512, "memB", 0};
  EXPECT_FALSE(manager_.ProgramDecoder(huge).ok());
  EXPECT_EQ(manager_.ListDecoders("hostA").size(), 1u);
  // Unbind clears decoders.
  ASSERT_TRUE(manager_.UnbindLogicalDevice("memB", 0).ok());
  EXPECT_TRUE(manager_.ListDecoders("hostA").empty());
}

TEST_F(CxlTest, EventsEmitted) {
  std::vector<CxlEvent::Kind> kinds;
  manager_.Subscribe([&](const CxlEvent& event) { kinds.push_back(event.kind); });
  ASSERT_TRUE(manager_.BindLogicalDevice("hostA", "memB", 2).ok());
  ASSERT_TRUE(d_.graph.SetLinkUp("memB", 0, false).ok());
  ASSERT_TRUE(manager_.UnbindLogicalDevice("memB", 2).ok());
  EXPECT_THAT(kinds, ElementsAre(CxlEvent::Kind::kLdBound,
                                 CxlEvent::Kind::kPortLinkChanged,
                                 CxlEvent::Kind::kLdUnbound));
}

// ------------------------------------------------------------ InfiniBand ---

class IbTest : public ::testing::Test {
 protected:
  IbTest() : sm_(d_.graph) { sm_.SweepSubnet(); }
  Dumbbell d_;
  IbSubnetManager sm_;
};

TEST_F(IbTest, SweepAssignsStableLids) {
  const auto lid_a = sm_.LidOf("hostA");
  ASSERT_TRUE(lid_a.ok());
  sm_.SweepSubnet();  // re-sweep keeps LIDs
  EXPECT_EQ(*sm_.LidOf("hostA"), *lid_a);
  EXPECT_EQ(sm_.ListPorts().size(), 4u);
  EXPECT_EQ(*sm_.NodeOf(*lid_a), "hostA");
  EXPECT_FALSE(sm_.NodeOf(9999).ok());

  // New vertex appears on next sweep.
  ASSERT_TRUE(d_.graph.AddVertex("hostC", VertexKind::kDevice, 1).ok());
  EXPECT_FALSE(sm_.LidOf("hostC").ok());
  sm_.SweepSubnet();
  EXPECT_TRUE(sm_.LidOf("hostC").ok());
}

TEST_F(IbTest, DefaultPartitionAllowsTraffic) {
  const Lid a = *sm_.LidOf("hostA");
  const Lid b = *sm_.LidOf("memB");
  auto record = sm_.QueryPathRecord(a, b);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->hops.front(), "hostA");
  EXPECT_EQ(record->hops.back(), "memB");
  EXPECT_GT(record->bandwidth_gbps, 0);
}

TEST_F(IbTest, PartitionIsolation) {
  const Lid a = *sm_.LidOf("hostA");
  const Lid b = *sm_.LidOf("memB");
  // Remove both from default partition -> no shared partition.
  ASSERT_TRUE(sm_.RemovePortFromPartition(a, IbSubnetManager::kDefaultPKey).ok());
  EXPECT_EQ(sm_.QueryPathRecord(a, b).status().code(), ErrorCode::kPermissionDenied);

  // Private partition with both as full members restores traffic.
  ASSERT_TRUE(sm_.CreatePartition(0x10).ok());
  ASSERT_TRUE(sm_.AddPortToPartition(a, 0x10, true).ok());
  ASSERT_TRUE(sm_.AddPortToPartition(b, 0x10, true).ok());
  EXPECT_TRUE(sm_.QueryPathRecord(a, b).ok());
}

TEST_F(IbTest, LimitedMembersCannotTalkToEachOther) {
  const Lid a = *sm_.LidOf("hostA");
  const Lid b = *sm_.LidOf("memB");
  ASSERT_TRUE(sm_.RemovePortFromPartition(a, IbSubnetManager::kDefaultPKey).ok());
  ASSERT_TRUE(sm_.RemovePortFromPartition(b, IbSubnetManager::kDefaultPKey).ok());
  ASSERT_TRUE(sm_.CreatePartition(0x20).ok());
  ASSERT_TRUE(sm_.AddPortToPartition(a, 0x20, false).ok());
  ASSERT_TRUE(sm_.AddPortToPartition(b, 0x20, false).ok());
  EXPECT_EQ(sm_.QueryPathRecord(a, b).status().code(), ErrorCode::kPermissionDenied);
  // Upgrade one to full: allowed.
  ASSERT_TRUE(sm_.AddPortToPartition(a, 0x20, true).ok());
  EXPECT_TRUE(sm_.QueryPathRecord(a, b).ok());
}

TEST_F(IbTest, PartitionManagementErrors) {
  EXPECT_EQ(sm_.CreatePartition(IbSubnetManager::kDefaultPKey).code(),
            ErrorCode::kAlreadyExists);
  EXPECT_EQ(sm_.RemovePartition(IbSubnetManager::kDefaultPKey).code(),
            ErrorCode::kPermissionDenied);
  EXPECT_EQ(sm_.RemovePartition(0x99).code(), ErrorCode::kNotFound);
  EXPECT_EQ(sm_.AddPortToPartition(1, 0x99, true).code(), ErrorCode::kNotFound);
  ASSERT_TRUE(sm_.CreatePartition(0x30).ok());
  EXPECT_EQ(sm_.RemovePortFromPartition(*sm_.LidOf("hostA"), 0x30).code(),
            ErrorCode::kNotFound);
  EXPECT_TRUE(sm_.RemovePartition(0x30).ok());
}

TEST_F(IbTest, TrapsOnLinkChange) {
  std::vector<IbTrap::Kind> kinds;
  sm_.Subscribe([&](const IbTrap& trap) { kinds.push_back(trap.kind); });
  ASSERT_TRUE(d_.graph.SetLinkUp("hostA", 0, false).ok());
  ASSERT_TRUE(d_.graph.SetLinkUp("hostA", 0, true).ok());
  sm_.SweepSubnet();
  // hostA + sw0 traps per transition, then sweep-complete.
  EXPECT_EQ(kinds.size(), 5u);
  EXPECT_EQ(kinds.back(), IbTrap::Kind::kSweepComplete);
  const auto record =
      sm_.QueryPathRecord(*sm_.LidOf("hostA"), *sm_.LidOf("memB"));
  EXPECT_TRUE(record.ok());
}

TEST_F(IbTest, PathFailsWhenFabricCut) {
  ASSERT_TRUE(d_.graph.SetLinkUp("sw0", 1, false).ok());
  ASSERT_TRUE(d_.graph.SetLinkUp("sw0", 2, false).ok());
  EXPECT_EQ(sm_.QueryPathRecord(*sm_.LidOf("hostA"), *sm_.LidOf("memB")).status().code(),
            ErrorCode::kNotFound);
}

// --------------------------------------------------------------- NVMe-oF ---

class NvmeofTest : public ::testing::Test {
 protected:
  NvmeofTest() : manager_(d_.graph) {
    EXPECT_TRUE(manager_.CreateSubsystem(kNqn, "memB").ok());
    EXPECT_TRUE(manager_.RegisterHostPort(kHost, "hostA").ok());
  }
  static constexpr const char* kNqn = "nqn.2026-01.org.ofmf:pool0";
  static constexpr const char* kHost = "nqn.2026-01.org.ofmf:hostA";
  Dumbbell d_;
  NvmeofTargetManager manager_;
};

TEST_F(NvmeofTest, SubsystemValidation) {
  EXPECT_EQ(manager_.CreateSubsystem(kNqn, "memB").code(), ErrorCode::kAlreadyExists);
  EXPECT_FALSE(manager_.CreateSubsystem("bad-name", "memB").ok());
  EXPECT_EQ(manager_.CreateSubsystem("nqn.x", "ghost").code(), ErrorCode::kNotFound);
  EXPECT_TRUE(manager_.GetSubsystem(kNqn).ok());
  EXPECT_FALSE(manager_.GetSubsystem("nqn.none").ok());
}

TEST_F(NvmeofTest, NamespaceManagement) {
  EXPECT_TRUE(manager_.AddNamespace(kNqn, 1, 4096).ok());
  EXPECT_EQ(manager_.AddNamespace(kNqn, 1, 4096).code(), ErrorCode::kAlreadyExists);
  EXPECT_FALSE(manager_.AddNamespace(kNqn, 0, 4096).ok());
  EXPECT_EQ(manager_.GetSubsystem(kNqn)->namespaces.size(), 1u);
}

TEST_F(NvmeofTest, AccessControlEnforced) {
  EXPECT_EQ(manager_.Connect(kHost, kNqn).status().code(), ErrorCode::kPermissionDenied);
  ASSERT_TRUE(manager_.AllowHost(kNqn, kHost).ok());
  auto controller = manager_.Connect(kHost, kNqn);
  ASSERT_TRUE(controller.ok());
  EXPECT_EQ(controller->host_nqn, kHost);
  EXPECT_TRUE(controller->connected);

  // allow_any_host bypasses the list.
  ASSERT_TRUE(manager_.RegisterHostPort("nqn.other", "hostA").ok());
  EXPECT_FALSE(manager_.Connect("nqn.other", kNqn).ok());
  ASSERT_TRUE(manager_.SetAllowAnyHost(kNqn, true).ok());
  EXPECT_TRUE(manager_.Connect("nqn.other", kNqn).ok());
}

TEST_F(NvmeofTest, ConnectNeedsLivePath) {
  ASSERT_TRUE(manager_.AllowHost(kNqn, kHost).ok());
  ASSERT_TRUE(d_.graph.SetLinkUp("memB", 0, false).ok());
  EXPECT_EQ(manager_.Connect(kHost, kNqn).status().code(), ErrorCode::kUnavailable);
}

TEST_F(NvmeofTest, PathLossEventsMarkControllers) {
  ASSERT_TRUE(manager_.AllowHost(kNqn, kHost).ok());
  ASSERT_TRUE(manager_.Connect(kHost, kNqn).ok());
  std::vector<NvmeofEvent::Kind> kinds;
  manager_.Subscribe([&](const NvmeofEvent& event) { kinds.push_back(event.kind); });
  ASSERT_TRUE(d_.graph.SetLinkUp("memB", 0, false).ok());
  ASSERT_THAT(kinds, ElementsAre(NvmeofEvent::Kind::kPathLost));
  const auto controllers = manager_.ListControllers();
  ASSERT_EQ(controllers.size(), 1u);
  EXPECT_FALSE(controllers[0].connected);
}

TEST_F(NvmeofTest, DeleteSubsystemBlockedByLiveControllers) {
  ASSERT_TRUE(manager_.AllowHost(kNqn, kHost).ok());
  auto controller = manager_.Connect(kHost, kNqn);
  ASSERT_TRUE(controller.ok());
  EXPECT_EQ(manager_.DeleteSubsystem(kNqn).code(), ErrorCode::kFailedPrecondition);
  ASSERT_TRUE(manager_.Disconnect(controller->cntlid).ok());
  EXPECT_EQ(manager_.Disconnect(controller->cntlid).code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_TRUE(manager_.DeleteSubsystem(kNqn).ok());
}

// -------------------------------------------------------------- Ethernet ---

class EthernetTest : public ::testing::Test {
 protected:
  EthernetTest() : manager_(d_.graph) {}
  Dumbbell d_;
  EthernetSwitchManager manager_;
};

TEST_F(EthernetTest, VlanLifecycle) {
  EXPECT_TRUE(manager_.CreateVlan(100, "compute").ok());
  EXPECT_EQ(manager_.CreateVlan(100, "dup").code(), ErrorCode::kAlreadyExists);
  EXPECT_FALSE(manager_.CreateVlan(0, "bad").ok());
  EXPECT_FALSE(manager_.CreateVlan(4095, "bad").ok());
  EXPECT_EQ(*manager_.VlanName(100), "compute");
  EXPECT_THAT(manager_.Vlans(), ElementsAre(1, 100));
  EXPECT_EQ(manager_.DeleteVlan(1).code(), ErrorCode::kPermissionDenied);
  EXPECT_TRUE(manager_.DeleteVlan(100).ok());
  EXPECT_EQ(manager_.DeleteVlan(100).code(), ErrorCode::kNotFound);
}

TEST_F(EthernetTest, MembershipAndCommunication) {
  ASSERT_TRUE(manager_.CreateVlan(10, "beeond").ok());
  // hostA uplinks via sw0:0; memB via sw1:0.
  ASSERT_TRUE(manager_.AddPortToVlan(10, "sw0", 0, false).ok());
  EXPECT_FALSE(manager_.CanCommunicate(10, "hostA", "memB"));  // memB not joined
  ASSERT_TRUE(manager_.AddPortToVlan(10, "sw1", 0, true).ok());
  EXPECT_TRUE(manager_.CanCommunicate(10, "hostA", "memB"));
  EXPECT_EQ(manager_.AddPortToVlan(10, "sw0", 0, false).code(),
            ErrorCode::kAlreadyExists);
  EXPECT_EQ(manager_.VlanPorts(10).size(), 2u);

  // Cutting the fabric breaks communication even with membership.
  ASSERT_TRUE(d_.graph.SetLinkUp("sw0", 1, false).ok());
  ASSERT_TRUE(d_.graph.SetLinkUp("sw0", 2, false).ok());
  EXPECT_FALSE(manager_.CanCommunicate(10, "hostA", "memB"));

  ASSERT_TRUE(manager_.RemovePortFromVlan(10, "sw1", 0).ok());
  EXPECT_EQ(manager_.RemovePortFromVlan(10, "sw1", 0).code(), ErrorCode::kNotFound);
}

TEST_F(EthernetTest, MembershipValidation) {
  ASSERT_TRUE(manager_.CreateVlan(10, "x").ok());
  EXPECT_EQ(manager_.AddPortToVlan(99, "sw0", 0, false).code(), ErrorCode::kNotFound);
  EXPECT_EQ(manager_.AddPortToVlan(10, "ghost", 0, false).code(), ErrorCode::kNotFound);
  EXPECT_FALSE(manager_.AddPortToVlan(10, "sw0", 99, false).ok());
}

TEST_F(EthernetTest, LinkFlapEvents) {
  int flaps = 0;
  manager_.Subscribe([&](const EthernetEvent& event) {
    if (event.kind == EthernetEvent::Kind::kLinkFlap) ++flaps;
  });
  ASSERT_TRUE(d_.graph.SetLinkUp("sw0", 1, false).ok());
  ASSERT_TRUE(d_.graph.SetLinkUp("sw0", 1, true).ok());
  EXPECT_EQ(flaps, 2);
}

// ----------------------------------------------------------------- Gen-Z ---

class GenzTest : public ::testing::Test {
 protected:
  GenzTest() : manager_(d_.graph) {
    requester_ = *manager_.EnumerateComponent("hostA", GenzComponentClass::kProcessor);
    responder_ = *manager_.EnumerateComponent("memB", GenzComponentClass::kMemory, 4096);
  }
  Dumbbell d_;
  GenzFabricManager manager_;
  Cid requester_ = 0;
  Cid responder_ = 0;
};

TEST_F(GenzTest, EnumerationRules) {
  EXPECT_EQ(manager_.EnumerateComponent("hostA", GenzComponentClass::kProcessor)
                .status()
                .code(),
            ErrorCode::kAlreadyExists);
  EXPECT_FALSE(manager_.EnumerateComponent("ghost", GenzComponentClass::kMemory, 1).ok());
  EXPECT_FALSE(manager_.EnumerateComponent("sw0", GenzComponentClass::kMemory, 0).ok());
  EXPECT_EQ(manager_.Components().size(), 2u);
  EXPECT_TRUE(manager_.ComponentByCid(requester_).ok());
  EXPECT_FALSE(manager_.ComponentByCid(0xDEAD).ok());
}

TEST_F(GenzTest, RegionLifecycleAndOverlap) {
  auto rkey = manager_.CreateRegion(responder_, 0, 1024);
  ASSERT_TRUE(rkey.ok());
  EXPECT_EQ(manager_.CreateRegion(responder_, 512, 1024).status().code(),
            ErrorCode::kAlreadyExists);  // overlap
  EXPECT_TRUE(manager_.CreateRegion(responder_, 1024, 1024).ok());
  EXPECT_FALSE(manager_.CreateRegion(responder_, 4000, 1000).ok());  // beyond capacity
  EXPECT_FALSE(manager_.CreateRegion(requester_, 0, 64).ok());       // not memory
  EXPECT_EQ(manager_.Regions().size(), 2u);
  EXPECT_TRUE(manager_.DestroyRegion(*rkey).ok());
  EXPECT_EQ(manager_.DestroyRegion(*rkey).code(), ErrorCode::kNotFound);
}

TEST_F(GenzTest, AccessControlAndPath) {
  const RKey rkey = *manager_.CreateRegion(responder_, 0, 2048);
  EXPECT_FALSE(manager_.CanAccess(rkey, requester_));
  ASSERT_TRUE(manager_.GrantAccess(rkey, requester_).ok());
  EXPECT_EQ(manager_.GrantAccess(rkey, requester_).code(), ErrorCode::kAlreadyExists);
  EXPECT_TRUE(manager_.CanAccess(rkey, requester_));

  // Fabric cut denies access despite the grant.
  ASSERT_TRUE(d_.graph.SetLinkUp("sw0", 1, false).ok());
  ASSERT_TRUE(d_.graph.SetLinkUp("sw0", 2, false).ok());
  EXPECT_FALSE(manager_.CanAccess(rkey, requester_));
  ASSERT_TRUE(d_.graph.SetLinkUp("sw0", 1, true).ok());
  EXPECT_TRUE(manager_.CanAccess(rkey, requester_));

  ASSERT_TRUE(manager_.RevokeAccess(rkey, requester_).ok());
  EXPECT_EQ(manager_.RevokeAccess(rkey, requester_).code(), ErrorCode::kNotFound);
  EXPECT_FALSE(manager_.CanAccess(rkey, requester_));
}

TEST_F(GenzTest, InterfaceDownEvents) {
  std::vector<Cid> affected;
  manager_.Subscribe([&](const GenzEvent& event) {
    if (event.kind == GenzEvent::Kind::kInterfaceDown) affected.push_back(event.cid);
  });
  ASSERT_TRUE(d_.graph.SetLinkUp("memB", 0, false).ok());
  EXPECT_THAT(affected, ElementsAre(responder_));
}

}  // namespace
}  // namespace ofmf::fabricsim
