// Federation tier tests: consistent-hash routing, the directory's epoch/ETag
// protocol and liveness, scatter-gather collection aggregation with stable
// cross-shard paging, partial-failure behavior (shard death mid-aggregation
// and mid-two-phase-compose), idempotent compose retry, and the pooled
// keep-alive event delivery client. Runs under the TSan/ASan CI jobs.
#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/faults.hpp"
#include "common/trace.hpp"
#include "federation/directory.hpp"
#include "federation/directory_client.hpp"
#include "federation/router.hpp"
#include "federation/routing.hpp"
#include "http/resilience.hpp"
#include "http/server.hpp"
#include "json/parse.hpp"
#include "json/pointer.hpp"
#include "ofmf/service.hpp"
#include "ofmf/uris.hpp"

namespace ofmf {
namespace {

using federation::DirectoryClient;
using federation::DirectoryOptions;
using federation::DirectoryService;
using federation::FederationRouter;
using federation::HashRing;
using federation::RoutingTable;
using federation::ShardInfo;
using json::Json;
using ::testing::HasSubstr;

// ------------------------------------------------------------ ring + table --

RoutingTable MakeTable(std::vector<ShardInfo> shards, std::uint64_t epoch = 1) {
  RoutingTable table;
  table.epoch = epoch;
  table.shards = std::move(shards);
  std::sort(table.shards.begin(), table.shards.end(),
            [](const ShardInfo& a, const ShardInfo& b) { return a.id < b.id; });
  return table;
}

TEST(FederationRoutingTest, RoutingTableJsonRoundTrip) {
  const RoutingTable table =
      MakeTable({{"s1", 8081, true}, {"s2", 8082, false}}, 7);
  const auto parsed = RoutingTable::FromJson(table.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->epoch, 7u);
  ASSERT_EQ(parsed->shards.size(), 2u);
  EXPECT_EQ(parsed->shards[0].id, "s1");
  EXPECT_EQ(parsed->shards[0].port, 8081);
  EXPECT_TRUE(parsed->shards[0].alive);
  EXPECT_EQ(parsed->shards[1].id, "s2");
  EXPECT_FALSE(parsed->shards[1].alive);
  EXPECT_EQ(parsed->AliveCount(), 1u);
}

TEST(FederationRoutingTest, RingPlacementIgnoresLivenessAndEpoch) {
  const RoutingTable all_alive =
      MakeTable({{"a", 1, true}, {"b", 2, true}, {"c", 3, true}}, 1);
  const RoutingTable b_dead =
      MakeTable({{"a", 1, true}, {"b", 2, false}, {"c", 3, true}}, 9);
  const HashRing ring1(all_alive);
  const HashRing ring2(b_dead);
  std::set<std::string> owners;
  for (int i = 0; i < 512; ++i) {
    const std::string key = "fabric:fab" + std::to_string(i);
    const auto owner1 = ring1.OwnerOf(key);
    const auto owner2 = ring2.OwnerOf(key);
    ASSERT_TRUE(owner1.has_value());
    // A liveness flip must not re-home any key.
    EXPECT_EQ(*owner1, *owner2) << key;
    owners.insert(*owner1);
  }
  // 512 keys over 3 shards with 128 vnodes each: every shard owns some.
  EXPECT_EQ(owners.size(), 3u);
}

TEST(FederationRoutingTest, ShardKeyForPath) {
  EXPECT_EQ(federation::ShardKeyForPath("/redfish/v1/Fabrics/ib0"), "fabric:ib0");
  EXPECT_EQ(federation::ShardKeyForPath("/redfish/v1/Fabrics/ib0/Endpoints/n1"),
            "fabric:ib0");
  EXPECT_FALSE(federation::ShardKeyForPath("/redfish/v1/Fabrics").has_value());
  EXPECT_FALSE(federation::ShardKeyForPath("/redfish/v1/Systems/x").has_value());
  EXPECT_FALSE(federation::ShardKeyForPath("/redfish/v1").has_value());
}

// -------------------------------------------------------------- directory --

TEST(DirectoryTest, EpochAdvancesOnMembershipAndLivenessFlips) {
  DirectoryOptions options;
  options.heartbeat_timeout_ms = 100;
  DirectoryService directory(options);
  EXPECT_EQ(directory.Register("s1", 8081), 1u);
  EXPECT_EQ(directory.Register("s2", 8082), 2u);
  // Re-registration on the same port is a heartbeat, not a membership change.
  EXPECT_EQ(directory.Register("s1", 8081), 2u);
  // ... but a port change re-homes the shard's transport: epoch bump.
  EXPECT_EQ(directory.Register("s1", 9091), 3u);
  EXPECT_EQ(directory.Heartbeat("ghost").code(), ErrorCode::kNotFound);

  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  const RoutingTable dead = directory.Table();
  EXPECT_GT(dead.epoch, 3u);  // both liveness flips bumped it
  EXPECT_EQ(dead.AliveCount(), 0u);

  ASSERT_TRUE(directory.Heartbeat("s2").ok());
  const RoutingTable revived = directory.Table();
  EXPECT_GT(revived.epoch, dead.epoch);
  ASSERT_NE(revived.Find("s2"), nullptr);
  EXPECT_TRUE(revived.Find("s2")->alive);
  ASSERT_NE(revived.Find("s1"), nullptr);
  EXPECT_FALSE(revived.Find("s1")->alive);
}

TEST(DirectoryTest, ClientRevalidatesWithEtagAndGets304) {
  DirectoryService directory;
  DirectoryClient client(
      std::make_unique<http::InProcessClient>(directory.Handler()),
      /*max_age_ms=*/0);
  directory.Register("s1", 8081);

  const auto first = client.Table();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->shards.size(), 1u);
  const auto second = client.Table();  // stale by max_age 0: revalidates
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->epoch, first->epoch);
  EXPECT_GE(client.revalidations_sent(), 1u);
  EXPECT_GE(client.revalidations_not_modified(), 1u);

  directory.Register("s2", 8082);  // epoch bump invalidates the ETag
  const auto third = client.Table();
  ASSERT_TRUE(third.ok());
  EXPECT_GT(third->epoch, first->epoch);
  EXPECT_EQ(third->shards.size(), 2u);
}

TEST(DirectoryTest, ClientServesStaleCacheThroughDirectoryOutage) {
  DirectoryService directory;
  auto faults = std::make_shared<FaultInjector>(7);
  DirectoryClient client(
      std::make_unique<http::FaultyClient>(
          std::make_unique<http::InProcessClient>(directory.Handler()), faults),
      /*max_age_ms=*/0);
  directory.Register("s1", 8081);
  const auto warm = client.Table();
  ASSERT_TRUE(warm.ok());

  faults->ArmProbability("http.client", FaultKind::kDropConnection, 1.0);
  const auto stale = client.Table();
  ASSERT_TRUE(stale.ok()) << "directory outage must serve the cached table";
  EXPECT_EQ(stale->epoch, warm->epoch);
  EXPECT_EQ(stale->shards.size(), 1u);
}

// ------------------------------------------------------- federated fixture --

/// A directory + N real TCP shards + a router, with disjoint block
/// inventories per shard ("b<shard>-<i>").
class FederationFixture : public ::testing::Test {
 protected:
  struct Shard {
    std::string id;
    core::OfmfService service;
    http::TcpServer server;
  };

  void StartShards(int count, int blocks_per_shard) {
    for (int s = 0; s < count; ++s) {
      auto shard = std::make_unique<Shard>();
      shard->id = "s" + std::to_string(s + 1);
      ASSERT_TRUE(shard->service.Bootstrap().ok());
      shard->service.set_shard_identity(shard->id);
      for (int i = 0; i < blocks_per_shard; ++i) {
        core::BlockCapability block;
        block.id = "b" + shard->id + "-" + std::to_string(i);
        block.block_type = "Compute";
        block.cores = 8;
        block.memory_gib = 32;
        ASSERT_TRUE(shard->service.composition().RegisterBlock(block).ok());
      }
      ASSERT_TRUE(shard->server.Start(shard->service.Handler(), 0).ok());
      directory_.Register(shard->id, shard->server.port());
      shards_.push_back(std::move(shard));
    }
    router_ = std::make_unique<FederationRouter>(std::make_shared<DirectoryClient>(
        std::make_unique<http::InProcessClient>(directory_.Handler()),
        /*max_age_ms=*/0));
    router_->set_fault_injector(faults_);
  }

  void TearDown() override {
    for (auto& shard : shards_) shard->server.Stop();
  }

  Shard& shard(const std::string& id) {
    for (auto& s : shards_) {
      if (s->id == id) return *s;
    }
    ADD_FAILURE() << "no shard " << id;
    return *shards_.front();
  }

  http::Response Route(http::Request request) { return router_->Route(request); }

  Json GetJson(const std::string& target, int expect_status = 200) {
    const http::Response response =
        Route(http::MakeRequest(http::Method::kGet, target));
    EXPECT_EQ(response.status, expect_status) << target << ": " << response.body.view();
    auto doc = json::Parse(response.body.view());
    EXPECT_TRUE(doc.ok()) << target;
    return doc.ok() ? std::move(doc.value()) : Json();
  }

  std::string BlockUri(const std::string& shard_id, int i) {
    return std::string(core::kResourceBlocks) + "/b" + shard_id + "-" +
           std::to_string(i);
  }

  std::string BlockState(const std::string& shard_id, const std::string& uri) {
    http::InProcessClient direct(shard(shard_id).service.Handler());
    const auto response = direct.Send(http::MakeRequest(http::Method::kGet, uri));
    if (!response.ok() || !response.value().ok()) return "<unreachable>";
    auto doc = json::Parse(response.value().body.view());
    if (!doc.ok()) return "<malformed>";
    return doc.value().at("CompositionStatus").GetString("CompositionState");
  }

  std::vector<std::string> Members(const Json& collection) {
    std::vector<std::string> uris;
    const Json& members = collection.at("Members");
    if (members.is_array()) {
      for (const Json& member : members.as_array()) {
        uris.push_back(member.GetString("@odata.id"));
      }
    }
    return uris;
  }

  Json ComposeBody(const std::vector<std::string>& block_uris,
                   const std::string& name = "fed-job") {
    json::Array refs;
    for (const std::string& uri : block_uris) {
      refs.push_back(Json::Obj({{"@odata.id", uri}}));
    }
    return Json::Obj(
        {{"Name", name},
         {"Links", Json::Obj({{"ResourceBlocks", Json(std::move(refs))}})}});
  }

  DirectoryService directory_;
  std::shared_ptr<FaultInjector> faults_ = std::make_shared<FaultInjector>(2026);
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<FederationRouter> router_;
};

// ------------------------------------------------------ routing + fan-out --

TEST_F(FederationFixture, FabricPathsRouteToRingOwner) {
  StartShards(2, 0);
  const HashRing ring(directory_.Table());
  // Create each fabric on the shard the ring says owns it, then read it back
  // through the router: the request must land on that same shard.
  for (int i = 0; i < 4; ++i) {
    const std::string fabric_id = "fab" + std::to_string(i);
    const auto owner = ring.OwnerOf("fabric:" + fabric_id);
    ASSERT_TRUE(owner.has_value());
    ASSERT_TRUE(shard(*owner).service
                    .CreateFabricSkeleton(fabric_id, "NVMeoF", *owner)
                    .ok());
    const Json fabric = GetJson(core::FabricUri(fabric_id));
    EXPECT_EQ(fabric.GetString("Id"), fabric_id);
  }
  EXPECT_GE(router_->stats().forwarded, 4u);
}

TEST_F(FederationFixture, ServiceRootCarriesFederationView) {
  StartShards(2, 0);
  const Json root = GetJson(core::kServiceRoot);
  const Json* federation = json::ResolvePointerRef(root, "/Oem/Ofmf/Federation");
  ASSERT_NE(federation, nullptr);
  EXPECT_EQ(federation->GetInt("Shards"), 2);
  EXPECT_EQ(federation->GetInt("AliveShards"), 2);
  EXPECT_GT(federation->GetInt("Epoch"), 0);
}

TEST_F(FederationFixture, AggregatedCollectionMergesAllShards) {
  StartShards(2, 2);
  const Json merged = GetJson(core::kResourceBlocks);
  EXPECT_EQ(merged.GetInt("Members@odata.count"), 4);
  const auto members = Members(merged);
  ASSERT_EQ(members.size(), 4u);
  EXPECT_THAT(members, ::testing::UnorderedElementsAre(
                           BlockUri("s1", 0), BlockUri("s1", 1),
                           BlockUri("s2", 0), BlockUri("s2", 1)));
  EXPECT_GE(router_->stats().aggregations, 1u);
}

TEST_F(FederationFixture, PagingWalksShardsWithStableContinuation) {
  StartShards(3, 2);  // 6 members federation-wide
  std::vector<std::string> walked;
  std::string target = std::string(core::kResourceBlocks) + "?$top=2";
  int pages = 0;
  while (!target.empty() && pages++ < 10) {
    const Json page = GetJson(target);
    EXPECT_EQ(page.GetInt("Members@odata.count"), 6) << "count is the federation total";
    for (const std::string& uri : Members(page)) walked.push_back(uri);
    target = page.GetString("@odata.nextLink");
    if (!target.empty()) {
      EXPECT_THAT(target, HasSubstr("$fedskip=")) << "continuation must be shard-stable";
      EXPECT_THAT(target, HasSubstr("$top=2")) << "page size must survive the walk";
    }
  }
  ASSERT_EQ(walked.size(), 6u);
  // No duplicates, nothing missed: the walk is the exact member set.
  const std::set<std::string> unique(walked.begin(), walked.end());
  EXPECT_EQ(unique.size(), 6u);
  const Json full = GetJson(core::kResourceBlocks);
  EXPECT_THAT(Members(full), ::testing::UnorderedElementsAreArray(walked));
}

TEST_F(FederationFixture, GlobalSkipTranslatesAcrossShardBoundaries) {
  StartShards(2, 3);  // 6 members: s1 holds [0..2], s2 holds [3..5]
  const auto all = Members(GetJson(core::kResourceBlocks));
  ASSERT_EQ(all.size(), 6u);
  // A window straddling the shard boundary: global skip 2, top 3 -> [2..4].
  const Json window =
      GetJson(std::string(core::kResourceBlocks) + "?$skip=2&$top=3");
  const auto members = Members(window);
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0], all[2]);
  EXPECT_EQ(members[1], all[3]);
  EXPECT_EQ(members[2], all[4]);
}

TEST_F(FederationFixture, ShardDeathMidScatterGatherAnnotatesOmission) {
  StartShards(2, 2);
  // Warm the per-shard count cache with one healthy aggregation.
  (void)GetJson(core::kResourceBlocks);
  faults_->ArmProbability("federation.shard.s2", FaultKind::kDropConnection, 1.0);

  const Json degraded = GetJson(core::kResourceBlocks);
  EXPECT_EQ(degraded.GetInt("Members@odata.count"), 2) << "only s1 contributed";
  EXPECT_EQ(Members(degraded).size(), 2u);
  const Json* oem = json::ResolvePointerRef(degraded, "/Oem/Ofmf");
  ASSERT_NE(oem, nullptr);
  EXPECT_EQ(oem->GetInt("MembersOmittedCount"), 2)
      << "the dead shard's last known count is surfaced";
  ASSERT_TRUE(oem->at("DegradedShards").is_array());
  ASSERT_EQ(oem->at("DegradedShards").as_array().size(), 1u);
  EXPECT_EQ(oem->at("DegradedShards").as_array()[0].as_string(), "s2");
  EXPECT_GE(router_->stats().degraded_aggregations, 1u);

  faults_->Disarm("federation.shard.s2");
  const Json healed = GetJson(core::kResourceBlocks);
  EXPECT_EQ(healed.GetInt("Members@odata.count"), 4);
  EXPECT_EQ(json::ResolvePointerRef(healed, "/Oem/Ofmf/MembersOmittedCount"), nullptr);
}

// --------------------------------------------------- cross-shard compose --

TEST_F(FederationFixture, CrossShardComposeClaimsAndDecomposeReleases) {
  StartShards(2, 2);
  const std::string local = BlockUri("s1", 0);
  const std::string remote = BlockUri("s2", 0);
  const http::Response composed =
      Route(http::MakeJsonRequest(http::Method::kPost, core::kSystems,
                                  ComposeBody({local, remote})));
  ASSERT_EQ(composed.status, 201) << composed.body.view();
  const std::string system_uri = composed.headers.GetOr("Location", "");
  ASSERT_FALSE(system_uri.empty());

  // Both blocks are Composed on their own shards.
  EXPECT_EQ(BlockState("s1", local), "Composed");
  EXPECT_EQ(BlockState("s2", remote), "Composed");

  // The system reads back through the router with both blocks' capability.
  const Json system = GetJson(system_uri);
  EXPECT_EQ(json::ResolvePointerRef(system, "/ProcessorSummary")->GetInt("CoreCount"),
            16);
  EXPECT_EQ(json::ResolvePointerRef(system, "/MemorySummary")
                ->GetDouble("TotalSystemMemoryGiB"),
            64.0);
  // The aggregated Systems collection shows it exactly once.
  const Json systems = GetJson(core::kSystems);
  EXPECT_EQ(systems.GetInt("Members@odata.count"), 1);

  // Decompose through the router: local AND remote claims are released.
  const http::Response deleted =
      Route(http::MakeRequest(http::Method::kDelete, system_uri));
  EXPECT_EQ(deleted.status, 204) << deleted.body.view();
  EXPECT_EQ(BlockState("s1", local), "Unused");
  EXPECT_EQ(BlockState("s2", remote), "Unused");
  EXPECT_EQ(GetJson(core::kSystems).GetInt("Members@odata.count"), 0);
  EXPECT_GE(router_->stats().cross_shard_composes, 1u);
  EXPECT_EQ(router_->stats().compose_rollbacks, 0u);
}

TEST_F(FederationFixture, ClaimFailureMidComposeRollsBackEarlierClaims) {
  StartShards(2, 2);
  const std::string first = BlockUri("s1", 0);   // sorted first: claimed first
  const std::string second = BlockUri("s2", 0);  // its shard dies
  // Warm the router's location cache so the compose path is deterministic.
  (void)GetJson(first);
  (void)GetJson(second);
  faults_->ArmProbability("federation.shard.s2", FaultKind::kDropConnection, 1.0);

  const http::Response composed =
      Route(http::MakeJsonRequest(http::Method::kPost, core::kSystems,
                                  ComposeBody({first, second})));
  EXPECT_EQ(composed.status, 503) << composed.body.view();
  faults_->Disarm("federation.shard.s2");

  // The claim taken on s1 before s2 died was rolled back: no leaked blocks,
  // no half-composed system anywhere.
  EXPECT_EQ(BlockState("s1", first), "Unused");
  EXPECT_EQ(BlockState("s2", second), "Unused");
  EXPECT_EQ(GetJson(core::kSystems).GetInt("Members@odata.count"), 0);
  EXPECT_GE(router_->stats().compose_rollbacks, 1u);
}

TEST_F(FederationFixture, HomeShardDeathAfterClaimsRollsBackEverything) {
  StartShards(2, 2);
  const std::string home_block = BlockUri("s1", 1);
  const std::string remote_block = BlockUri("s2", 1);
  (void)GetJson(home_block);
  (void)GetJson(remote_block);
  // Kill s1 (the home shard: owner of the first referenced block) starting at
  // its 3rd downstream call after arming: claim GET (1), claim PATCH (2)
  // succeed; the phase-2 compose POST (3) hits a dead shard.
  faults_->ArmWindow("federation.shard.s1", FaultKind::kDropConnection, 3, 1000);

  const http::Response composed =
      Route(http::MakeJsonRequest(http::Method::kPost, core::kSystems,
                                  ComposeBody({home_block, remote_block})));
  EXPECT_EQ(composed.status, 503) << composed.body.view();
  faults_->Disarm("federation.shard.s1");

  // The rollback ran after the home shard "recovered" is not needed: the
  // release PATCHes targeted both shards; s2's went through immediately, and
  // s1's claim release happened on the live connection only if reachable —
  // the router retries are the operator's job. What must hold now: the
  // remote block is free and no system exists.
  EXPECT_EQ(BlockState("s2", remote_block), "Unused");
  EXPECT_EQ(GetJson(core::kSystems).GetInt("Members@odata.count"), 0);
  EXPECT_GE(router_->stats().compose_rollbacks, 1u);
}

TEST_F(FederationFixture, ComposeRetryWithSameRequestIdIsIdempotent) {
  StartShards(2, 2);
  http::Request compose = http::MakeJsonRequest(
      http::Method::kPost, core::kSystems,
      ComposeBody({BlockUri("s1", 0), BlockUri("s2", 0)}, "retry-job"));
  compose.headers.Set("X-Request-Id", "fed-retry-1");

  const http::Response first = Route(compose);
  ASSERT_EQ(first.status, 201) << first.body.view();
  const http::Response second = Route(compose);
  ASSERT_EQ(second.status, 201) << second.body.view();
  EXPECT_EQ(first.headers.GetOr("Location", ""), second.headers.GetOr("Location", ""));
  // Exactly one system exists; the retry re-claimed idempotently (ClaimedBy
  // matches the transaction) and was answered from the replay cache.
  EXPECT_EQ(GetJson(core::kSystems).GetInt("Members@odata.count"), 1);
}

// ------------------------------------- cross-process traces + fleet tele --

/// Resets process-global trace state on scope exit so a failing assertion
/// cannot leak sampling into unrelated tests.
struct TraceSamplingGuard {
  ~TraceSamplingGuard() {
    trace::TraceRecorder::instance().set_sampling(0.0);
    trace::TraceRecorder::instance().set_retain_threshold_ns(0);
    trace::TraceRecorder::instance().Clear();
  }
};

std::string TraceDumpTarget() {
  return std::string(core::kServiceRoot) + "/Actions/OfmfService.TraceDump";
}

TEST_F(FederationFixture, CrossShardComposeProducesOneConnectedTrace) {
  TraceSamplingGuard guard;
  trace::TraceRecorder::instance().Clear();
  trace::TraceRecorder::instance().set_sampling(1.0);
  StartShards(2, 2);

  const http::Response composed =
      Route(http::MakeJsonRequest(http::Method::kPost, core::kSystems,
                                  ComposeBody({BlockUri("s1", 0), BlockUri("s2", 0)})));
  ASSERT_EQ(composed.status, 201) << composed.body.view();
  const std::string trace_hex = composed.headers.GetOr(trace::kTraceIdHeader, "");
  ASSERT_EQ(trace_hex.size(), 16u) << "router must echo the minted trace id";

  const http::Response dumped =
      Route(http::MakeJsonRequest(http::Method::kPost, TraceDumpTarget(),
                                  Json::Obj({{"TraceId", trace_hex}})));
  ASSERT_EQ(dumped.status, 200) << dumped.body.view();
  auto doc = json::Parse(dumped.body.view());
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().GetString("TraceId"), trace_hex);

  // Spans from all three processes (router + both shards), attributed by
  // origin, assembled into ONE tree: exactly one root, no orphans.
  const Json& spans = doc.value().at("Spans");
  ASSERT_TRUE(spans.is_array());
  std::set<std::string> span_ids, origins, names;
  for (const Json& span : spans.as_array()) {
    span_ids.insert(span.GetString("SpanId"));
    origins.insert(span.GetString("Origin"));
    names.insert(span.GetString("Name"));
  }
  int roots = 0;
  for (const Json& span : spans.as_array()) {
    const std::string parent = span.GetString("ParentSpanId");
    if (parent == trace::IdToHex(0)) {
      ++roots;
    } else {
      EXPECT_TRUE(span_ids.count(parent))
          << span.GetString("Name") << " is orphaned from parent " << parent;
    }
  }
  EXPECT_EQ(roots, 1) << "assembled spans must form one connected tree";
  EXPECT_GE(origins.size(), 3u) << "router and both shards must contribute";
  EXPECT_TRUE(origins.count("router"));
  EXPECT_TRUE(origins.count("s1"));
  EXPECT_TRUE(origins.count("s2"));
  for (const char* required :
       {"router.route", "router.compose", "compose.claim", "compose.forward"}) {
    EXPECT_TRUE(names.count(required)) << "missing span " << required;
  }
  EXPECT_FALSE(doc.value().GetString("Tree").empty());
}

TEST_F(FederationFixture, FaultInjectedRollbackShowsCausalityInAssembledTrace) {
  TraceSamplingGuard guard;
  trace::TraceRecorder::instance().Clear();
  trace::TraceRecorder::instance().set_sampling(1.0);
  StartShards(2, 2);
  const std::string home_block = BlockUri("s1", 1);
  const std::string remote_block = BlockUri("s2", 1);
  (void)GetJson(home_block);
  (void)GetJson(remote_block);
  // Home shard dies exactly at the phase-2 compose POST (3rd downstream
  // call): both claims land, the forward fails, the rollback runs.
  faults_->ArmWindow("federation.shard.s1", FaultKind::kDropConnection, 3, 1000);
  const http::Response composed =
      Route(http::MakeJsonRequest(http::Method::kPost, core::kSystems,
                                  ComposeBody({home_block, remote_block})));
  EXPECT_EQ(composed.status, 503) << composed.body.view();
  faults_->Disarm("federation.shard.s1");
  const std::string trace_hex = composed.headers.GetOr(trace::kTraceIdHeader, "");
  ASSERT_EQ(trace_hex.size(), 16u);

  // The ?trace= query shortcut works on the router's dump action too.
  const http::Response dumped = Route(
      http::MakeRequest(http::Method::kPost, TraceDumpTarget() + "?trace=" + trace_hex));
  ASSERT_EQ(dumped.status, 200) << dumped.body.view();
  auto doc = json::Parse(dumped.body.view());
  ASSERT_TRUE(doc.ok());

  // claim -> forward -> rollback causality, with the failure marked.
  std::int64_t claim_start = -1, forward_start = -1, rollback_start = -1;
  std::set<std::string> origins;
  for (const Json& span : doc.value().at("Spans").as_array()) {
    const std::string name = span.GetString("Name");
    const std::int64_t start = span.GetInt("StartNs");
    origins.insert(span.GetString("Origin"));
    if (name == "compose.claim" && claim_start < 0) claim_start = start;
    if (name == "compose.forward") {
      forward_start = start;
      EXPECT_TRUE(span.GetBool("Error")) << "failed forward must be marked";
    }
    if (name == "compose.rollback" && rollback_start < 0) {
      rollback_start = start;
      EXPECT_TRUE(span.GetBool("Error"));
    }
  }
  ASSERT_GE(claim_start, 0) << "no compose.claim span assembled";
  ASSERT_GE(forward_start, 0) << "no compose.forward span assembled";
  ASSERT_GE(rollback_start, 0) << "no compose.rollback span assembled";
  EXPECT_LE(claim_start, forward_start);
  EXPECT_LE(forward_start, rollback_start);
  EXPECT_GE(origins.size(), 3u) << "router and both shards must contribute";
}

TEST_F(FederationFixture, FleetTelemetryMergesShardDumpsAndServesHealth) {
  StartShards(2, 2);
  (void)GetJson(core::kResourceBlocks);  // some shard traffic to count

  // FleetHealth is served by the router from the routing table alone.
  const Json health = GetJson(std::string(core::kMetricReports) + "/FleetHealth");
  EXPECT_EQ(health.GetString("Id"), "FleetHealth");
  const Json* health_shards = json::ResolvePointerRef(health, "/Oem/Ofmf/Shards");
  ASSERT_NE(health_shards, nullptr);
  ASSERT_EQ(health_shards->as_array().size(), 2u);
  for (const Json& shard : health_shards->as_array()) {
    EXPECT_TRUE(shard.GetBool("Alive")) << shard.GetString("ShardId");
  }

  // The merged MetricsDump names both contributing shards and recomputes
  // the fleet cache hit rate from the summed counters.
  const http::Response dump = Route(http::MakeRequest(
      http::Method::kPost,
      std::string(core::kServiceRoot) + "/Actions/OfmfService.MetricsDump"));
  ASSERT_EQ(dump.status, 200) << dump.body.view();
  auto merged = json::Parse(dump.body.view());
  ASSERT_TRUE(merged.ok());
  std::set<std::string> contributing;
  for (const Json& shard : merged.value().at("Shards").as_array()) {
    contributing.insert(shard.as_string());
  }
  EXPECT_EQ(contributing, (std::set<std::string>{"s1", "s2"}));
  EXPECT_TRUE(merged.value().at("ResponseCache").is_object());

  // The router's own TelemetryService lists all five fleet reports and
  // serves the histogram-merged latency report.
  const Json reports = GetJson(core::kMetricReports);
  EXPECT_EQ(reports.GetInt("Members@odata.count"), 5);
  const Json latency = GetJson(std::string(core::kMetricReports) + "/RequestLatency");
  EXPECT_EQ(latency.GetString("Id"), "RequestLatency");
  ASSERT_TRUE(latency.at("MetricValues").is_array());
  GetJson(std::string(core::kMetricReports) + "/NoSuchReport", 404);
}

TEST(DirectoryTest, HeartbeatCarriesOptionalStatsIntoTable) {
  DirectoryService directory;
  directory.Register("s1", 8081);
  ASSERT_TRUE(
      directory.Heartbeat("s1", Json::Obj({{"BreakersOpen", 2}})).ok());
  const RoutingTable table = directory.Table();
  ASSERT_NE(table.Find("s1"), nullptr);
  EXPECT_EQ(table.Find("s1")->stats.GetInt("BreakersOpen"), 2);
  EXPECT_GE(table.Find("s1")->heartbeat_age_ms, 0);
  // The stats survive the JSON round-trip routers receive the table through.
  const auto parsed = RoutingTable::FromJson(table.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("s1")->stats.GetInt("BreakersOpen"), 2);
}

// --------------------------------------------- pooled event delivery wire --

TEST(FederationDeliveryTest, LoopbackDestinationsShareOnePooledConnection) {
  // A real TCP sink: every delivery POST lands here.
  std::atomic<int> posts{0};
  http::TcpServer sink;
  ASSERT_TRUE(sink.Start(
                      [&](const http::Request&) {
                        posts.fetch_add(1);
                        return http::MakeEmptyResponse(204);
                      },
                      0)
                  .ok());

  core::OfmfService ofmf;
  ASSERT_TRUE(ofmf.Bootstrap().ok());
  // No set_client_factory override: the default wire factory must carry
  // loopback destinations over a pooled keep-alive TcpClient.
  const std::string destination =
      "http://127.0.0.1:" + std::to_string(sink.port()) + "/events";
  ASSERT_TRUE(ofmf.events()
                  .Subscribe(Json::Obj({{"Destination", destination},
                                        {"Protocol", "Redfish"}}))
                  .ok());

  core::Event event;
  event.event_type = "Alert";
  event.message_id = "Federation.1.0.PooledDelivery";
  event.message = "pooled";
  event.origin = core::kServiceRoot;
  for (int round = 0; round < 5; ++round) {
    ofmf.events().Publish(event);
    ASSERT_TRUE(ofmf.events().FlushDelivery(10000));
  }

  EXPECT_GE(posts.load(), 5);
  // Keep-alive pooling: many delivery batches, one TCP connection.
  EXPECT_EQ(sink.stats().connections_accepted, 1u);
  sink.Stop();
}

TEST(FederationDeliveryTest, DefaultWireFactoryOnlyBuildsLoopbackClients) {
  const core::ClientFactory factory = core::DefaultWireClientFactory();
  EXPECT_NE(factory("http://127.0.0.1:8080/events"), nullptr);
  EXPECT_NE(factory("http://localhost:9000/sink"), nullptr);
  EXPECT_EQ(factory("http://10.0.0.1/sink"), nullptr);
  EXPECT_EQ(factory("http://example.com:8080/events"), nullptr);
  EXPECT_EQ(factory("http://127.0.0.1:99999/events"), nullptr);  // bad port
  EXPECT_EQ(factory("not-a-url"), nullptr);
}

// ------------------------------------------------ per-subscriber metrics --

TEST(FederationDeliveryTest, DeliveryReportCarriesPerSubscriberCounters) {
  core::OfmfService ofmf;
  ASSERT_TRUE(ofmf.Bootstrap().ok());
  // An in-process sink that always succeeds.
  ofmf.events().set_client_factory([](const std::string&) {
    return std::make_unique<http::InProcessClient>(
        [](const http::Request&) { return http::MakeEmptyResponse(204); });
  });
  const auto subscription = ofmf.events().Subscribe(
      Json::Obj({{"Destination", "http://sink/events"}, {"Protocol", "Redfish"}}));
  ASSERT_TRUE(subscription.ok());

  core::Event event;
  event.event_type = "Alert";
  event.message_id = "Federation.1.0.Metrics";
  event.message = "m";
  event.origin = core::kServiceRoot;
  for (int i = 0; i < 3; ++i) {
    ofmf.events().Publish(event);
    ASSERT_TRUE(ofmf.events().FlushDelivery(10000));
  }

  // GET of the report refreshes it lazily from the live snapshot.
  http::InProcessClient client(ofmf.Handler());
  const auto response = client.Send(http::MakeRequest(
      http::Method::kGet, core::TelemetryService::EventDeliveryReportUri()));
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response.value().status, 200);
  const auto report = json::Parse(response.value().body.view());
  ASSERT_TRUE(report.ok());

  // MetricValues: per-subscriber Delivered./Dropped./Retries./BreakerOpen.
  std::set<std::string> metric_ids;
  for (const Json& value : report->at("MetricValues").as_array()) {
    metric_ids.insert(value.GetString("MetricId"));
  }
  const std::string& uri = subscription.value();
  EXPECT_TRUE(metric_ids.count("Delivered." + uri)) << "missing per-sub delivered";
  EXPECT_TRUE(metric_ids.count("Dropped." + uri));
  EXPECT_TRUE(metric_ids.count("Retries." + uri));
  EXPECT_TRUE(metric_ids.count("Queued." + uri));
  EXPECT_TRUE(metric_ids.count("BreakerOpen." + uri));

  // The Oem.Ofmf.Subscribers entry carries the full counter set.
  const Json* subscribers =
      json::ResolvePointerRef(*report, "/Oem/Ofmf/Subscribers");
  ASSERT_NE(subscribers, nullptr);
  ASSERT_EQ(subscribers->as_array().size(), 1u);
  const Json& entry = subscribers->as_array()[0];
  EXPECT_EQ(entry.GetString("Subscription"), uri);
  EXPECT_EQ(entry.GetInt("Enqueued"), 3);
  EXPECT_EQ(entry.GetInt("Delivered"), 3);
  EXPECT_GE(entry.GetInt("Batches"), 1);
  EXPECT_EQ(entry.GetInt("Dropped"), 0);
  EXPECT_EQ(entry.GetString("BreakerState"), "Closed");
  EXPECT_EQ(entry.GetInt("BreakerOpens"), 0);
}

}  // namespace
}  // namespace ofmf
