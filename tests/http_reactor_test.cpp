// Regression tests for the epoll-reactor TcpServer and the keep-alive
// TcpClient pool: the idle-keep-alive Stop() hang, the EMFILE accept spin,
// the unbounded request buffer, and the broken-parse connection-discard bug,
// plus pipelining/split-read/keep-alive-reuse/Stop-during-inflight coverage.
// All of these run under the TSan/ASan CI jobs.
#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/qos.hpp"
#include "http/message.hpp"
#include "http/server.hpp"
#include "http/wire.hpp"

namespace ofmf::http {
namespace {

using ::testing::HasSubstr;

int ConnectLoopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << std::strerror(errno);
  return fd;
}

void SendAll(int fd, const std::string& wire) {
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(wire.size()));
}

/// Reads responses off `fd` until `count` parsed or the peer closes.
std::vector<Response> ReadResponses(int fd, std::size_t count,
                                    std::size_t read_chunk = 4096) {
  WireParser parser(WireParser::Mode::kResponse);
  std::vector<Response> responses;
  std::vector<char> buffer(read_chunk);
  while (responses.size() < count) {
    const ssize_t n = ::recv(fd, buffer.data(), buffer.size(), 0);
    if (n <= 0) break;
    parser.Feed(std::string_view(buffer.data(), static_cast<std::size_t>(n)));
    while (parser.HasMessage()) {
      auto response = parser.TakeResponse();
      if (!response.ok()) return responses;
      responses.push_back(*response);
    }
  }
  return responses;
}

ServerHandler EchoHandler() {
  return [](const Request& request) {
    return MakeTextResponse(200, "r:" + request.path);
  };
}

// Every reactor test runs against both readiness backends; the io_uring
// variant self-skips on kernels without (usable) io_uring support.
class ReactorTest : public ::testing::TestWithParam<IoBackendKind> {
 protected:
  void SetUp() override {
    if (GetParam() == IoBackendKind::kUring && !IoUringSupported()) {
      GTEST_SKIP() << "io_uring unavailable on this kernel";
    }
  }
  /// Server options preset to the backend under test.
  ServerOptions Options() const {
    ServerOptions options;
    options.io_backend = GetParam();
    return options;
  }
};

INSTANTIATE_TEST_SUITE_P(Backends, ReactorTest,
                         ::testing::Values(IoBackendKind::kEpoll,
                                           IoBackendKind::kUring),
                         [](const ::testing::TestParamInfo<IoBackendKind>& backend) {
                           return std::string(to_string(backend.param));
                         });

// ------------------------------------------------- Stop() responsiveness ---

// Seed bug: connection threads blocked in ::recv on idle keep-alive
// connections; Stop() closed only the listen fd, then joined those threads
// forever. The reactor never blocks in recv, so Stop() must return promptly
// no matter how many idle keep-alive connections are open.
TEST_P(ReactorTest, StopReturnsPromptlyWithIdleKeepAliveConnections) {
  TcpServer server;
  ASSERT_TRUE(server.Start(EchoHandler(), 0, Options()).ok());

  // One connection that completed a keep-alive exchange, one that never
  // sent a byte — both sit idle in the server.
  const int active = ConnectLoopback(server.port());
  Request request = MakeRequest(Method::kGet, "/a");
  request.headers.Set("Connection", "keep-alive");
  SendAll(active, SerializeRequest(request));
  ASSERT_EQ(ReadResponses(active, 1).size(), 1u);
  const int silent = ConnectLoopback(server.port());
  // Wait until the loop has actually accepted the silent connection —
  // otherwise Stop() races the backlog and the kernel answers RST, not FIN.
  while (server.stats().connections_accepted < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const auto t0 = std::chrono::steady_clock::now();
  server.Stop();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 2000);

  // Both fds observe the server-side close.
  char byte = 0;
  EXPECT_EQ(::recv(active, &byte, 1, 0), 0);
  EXPECT_EQ(::recv(silent, &byte, 1, 0), 0);
  ::close(active);
  ::close(silent);
}

TEST_P(ReactorTest, StopDuringInflightRequestDoesNotHangOrCrash) {
  TcpServer server;
  std::atomic<int> entered{0};
  ASSERT_TRUE(server
                  .Start([&](const Request&) {
                    entered.fetch_add(1);
                    std::this_thread::sleep_for(std::chrono::milliseconds(150));
                    return MakeTextResponse(200, "slow");
                  },
                  0, Options())
                  .ok());
  std::vector<std::thread> clients;
  std::atomic<int> finished{0};
  for (int i = 0; i < 4; ++i) {
    clients.emplace_back([&] {
      TcpClient client(server.port(), 2000);
      (void)client.Get("/slow");  // response or transport error; must not hang
      finished.fetch_add(1);
    });
  }
  while (entered.load() == 0) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const auto t0 = std::chrono::steady_clock::now();
  server.Stop();
  const auto stop_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_LT(stop_ms, 2000);
  for (auto& t : clients) t.join();
  EXPECT_EQ(finished.load(), 4);
}

// ------------------------------------------------------ accept() backoff ---

// Seed bug: AcceptLoop() `continue`d on every accept() failure, so a
// persistent EMFILE spun the accept thread at 100% CPU. The reactor must
// back off (bounded failure count) and recover once fds free up.
TEST_P(ReactorTest, AcceptBackoffUnderFdExhaustionAndRecovery) {
  if (GetParam() == IoBackendKind::kUring) {
    // Multishot accept runs in kernel context and (verified on this kernel)
    // installs the accepted fd without charging RLIMIT_NOFILE, so the EMFILE
    // window this test engineers never opens: the "unacceptable" connection
    // is simply accepted. EMFILE backoff is a readiness-accept behavior.
    GTEST_SKIP() << "io_uring accepts in-kernel; EMFILE backoff does not apply";
  }
  TcpServer server;
  ASSERT_TRUE(server.Start(EchoHandler(), 0, Options()).ok());

  // Client socket first — once the fd table is full we cannot make one.
  const int client = ConnectLoopback(server.port());
  // Drain the accept of that first connection so the EMFILE window below
  // only ever sees the second, unacceptable connection.
  Request warm = MakeRequest(Method::kGet, "/warm");
  SendAll(client, SerializeRequest(warm));
  ASSERT_EQ(ReadResponses(client, 1).size(), 1u);
  const int pending = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(pending, 0);

  // Exhaust the process fd table (soft limit lowered so this stays cheap).
  rlimit saved{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &saved), 0);
  rlimit tight = saved;
  tight.rlim_cur = 512;
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &tight), 0);
  std::vector<int> hogs;
  while (true) {
    const int fd = ::dup(0);
    if (fd < 0) break;
    hogs.push_back(fd);
  }

  // The kernel completes this handshake via the listen backlog; the
  // server's accept() then fails EMFILE for the whole window.
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(pending, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const ServerStats during = server.stats();
  EXPECT_GE(during.accept_backoff_bursts, 1u);
  // Without backoff a 300 ms EMFILE window records millions of failures;
  // with 10ms-doubling backoff it records a handful.
  EXPECT_LE(during.accept_failures, 30u);
  EXPECT_EQ(during.connections_accepted, 1u);

  // Free the fds: the next rearm must accept the pending connection.
  for (const int fd : hogs) ::close(fd);
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &saved), 0);
  Request request = MakeRequest(Method::kGet, "/after");
  SendAll(pending, SerializeRequest(request));
  const std::vector<Response> responses = ReadResponses(pending, 1);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].body, "r:/after");
  ::close(pending);
  ::close(client);
  server.Stop();
}

// ------------------------------------------------------- request limits ---

TEST_P(ReactorTest, OversizedHeaderBlockGets431AndClose) {
  ServerOptions options = Options();
  options.max_header_bytes = 1024;
  TcpServer server;
  ASSERT_TRUE(server.Start(EchoHandler(), 0, options).ok());

  const int fd = ConnectLoopback(server.port());
  Request request = MakeRequest(Method::kGet, "/x");
  request.headers.Set("X-Padding", std::string(4096, 'p'));
  SendAll(fd, SerializeRequest(request));
  const std::vector<Response> responses = ReadResponses(fd, 1);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 431);
  EXPECT_EQ(responses[0].headers.Get("Connection"), "close");
  char byte = 0;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);  // connection closed
  ::close(fd);
  EXPECT_GE(server.stats().limit_rejections, 1u);
  server.Stop();
}

// A client streaming header bytes forever (no terminator) used to grow the
// parser buffer without bound; now the cap trips mid-stream.
TEST_P(ReactorTest, EndlessHeaderStreamIsCappedNotBuffered) {
  ServerOptions options = Options();
  options.max_header_bytes = 2048;
  TcpServer server;
  ASSERT_TRUE(server.Start(EchoHandler(), 0, options).ok());

  const int fd = ConnectLoopback(server.port());
  SendAll(fd, "GET /x HTTP/1.1\r\n");
  for (int i = 0; i < 64; ++i) {
    const std::string line = "X-H" + std::to_string(i) + ": " + std::string(100, 'v') + "\r\n";
    if (::send(fd, line.data(), line.size(), MSG_NOSIGNAL) <= 0) break;  // server hung up
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const std::vector<Response> responses = ReadResponses(fd, 1);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 431);
  ::close(fd);
  server.Stop();
}

TEST_P(ReactorTest, OversizedBodyGets413BeforeBufferingIt) {
  ServerOptions options = Options();
  options.max_body_bytes = 1024;
  TcpServer server;
  ASSERT_TRUE(server.Start(EchoHandler(), 0, options).ok());

  const int fd = ConnectLoopback(server.port());
  // Declare a 1 MiB body but send only the headers: the 413 must arrive
  // from the Content-Length alone.
  std::string head = "POST /x HTTP/1.1\r\nContent-Length: 1048576\r\n\r\n";
  SendAll(fd, head);
  const std::vector<Response> responses = ReadResponses(fd, 1);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 413);
  EXPECT_EQ(responses[0].headers.Get("Connection"), "close");
  ::close(fd);
  server.Stop();
}

TEST_P(ReactorTest, RequestExactlyAtBodyLimitIsServed) {
  ServerOptions options = Options();
  options.max_body_bytes = 1024;
  TcpServer server;
  std::atomic<std::size_t> seen_body{0};
  ASSERT_TRUE(server
                  .Start([&](const Request& request) {
                    seen_body.store(request.body.size());
                    return MakeTextResponse(200, "ok");
                  },
                  0, options)
                  .ok());
  const int fd = ConnectLoopback(server.port());
  Request request = MakeRequest(Method::kPost, "/x");
  request.body = std::string(1024, 'b');  // exactly the cap
  SendAll(fd, SerializeRequest(request));
  const std::vector<Response> responses = ReadResponses(fd, 1);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 200);
  EXPECT_EQ(seen_body.load(), 1024u);
  ::close(fd);
  server.Stop();
}

// Parser-level exactness: the caps are inclusive (== limit passes).
TEST_P(ReactorTest, WireParserLimitBoundariesAreExact) {
  Request request = MakeRequest(Method::kGet, "/x");
  const std::string wire = SerializeRequest(request);
  const std::size_t header_bytes = wire.size();  // no body: whole thing is header

  WireParser at_limit(WireParser::Mode::kRequest);
  at_limit.set_limits(header_bytes, 0);
  at_limit.Feed(wire);
  EXPECT_EQ(at_limit.overflow(), WireParser::Overflow::kNone);
  EXPECT_TRUE(at_limit.HasMessage());

  WireParser over_limit(WireParser::Mode::kRequest);
  over_limit.set_limits(header_bytes - 1, 0);
  over_limit.Feed(wire);
  EXPECT_EQ(over_limit.overflow(), WireParser::Overflow::kHeader);
  EXPECT_FALSE(over_limit.HasMessage());

  Request with_body = MakeRequest(Method::kPost, "/x");
  with_body.body = std::string(64, 'b');
  WireParser body_at(WireParser::Mode::kRequest);
  body_at.set_limits(0, 64);
  body_at.Feed(SerializeRequest(with_body));
  EXPECT_EQ(body_at.overflow(), WireParser::Overflow::kNone);
  EXPECT_TRUE(body_at.HasMessage());

  WireParser body_over(WireParser::Mode::kRequest);
  body_over.set_limits(0, 63);
  body_over.Feed(SerializeRequest(with_body));
  EXPECT_EQ(body_over.overflow(), WireParser::Overflow::kBody);
}

// ------------------------------------------------ parse-error discipline ---

// Seed bug: after a broken parse the connection kept its buffered bytes and
// close_after was only computed on the success path. The reactor must send
// one 400 with Connection: close and discard everything after the garbage.
TEST_P(ReactorTest, PipelinedGarbageAfterValidRequestDiscardsConnection) {
  TcpServer server;
  std::atomic<int> served{0};
  ASSERT_TRUE(server
                  .Start([&](const Request& request) {
                    served.fetch_add(1);
                    return MakeTextResponse(200, "r:" + request.path);
                  },
                  0, Options())
                  .ok());
  const int fd = ConnectLoopback(server.port());
  Request good = MakeRequest(Method::kGet, "/good");
  good.headers.Set("Connection", "keep-alive");
  // Garbage that frames like a message (has the blank-line terminator) but
  // fails the request-line parse, followed by a request that must NOT run.
  Request never = MakeRequest(Method::kGet, "/never");
  const std::string wire = SerializeRequest(good) + "BOGUS-LINE\r\n\r\n" +
                           SerializeRequest(never);
  SendAll(fd, wire);
  const std::vector<Response> responses = ReadResponses(fd, 3);
  ASSERT_EQ(responses.size(), 2u);  // 200, then 400, then close — no third
  EXPECT_EQ(responses[0].status, 200);
  EXPECT_EQ(responses[0].body, "r:/good");
  EXPECT_EQ(responses[1].status, 400);
  EXPECT_EQ(responses[1].headers.Get("Connection"), "close");
  char byte = 0;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
  ::close(fd);
  EXPECT_EQ(served.load(), 1);  // /never was discarded with the connection

  // The server survives: a fresh connection still works.
  const int fresh = ConnectLoopback(server.port());
  SendAll(fresh, SerializeRequest(MakeRequest(Method::kGet, "/again")));
  EXPECT_EQ(ReadResponses(fresh, 1).size(), 1u);
  ::close(fresh);
  server.Stop();
}

// --------------------------------------------------- pipelining + reads ---

TEST_P(ReactorTest, TwoRequestsInOneSendAreServedInOrder) {
  TcpServer server;
  ASSERT_TRUE(server.Start(EchoHandler(), 0, Options()).ok());
  const int fd = ConnectLoopback(server.port());
  Request a = MakeRequest(Method::kGet, "/a");
  a.headers.Set("Connection", "keep-alive");
  Request b = MakeRequest(Method::kGet, "/b");
  SendAll(fd, SerializeRequest(a) + SerializeRequest(b));
  const std::vector<Response> responses = ReadResponses(fd, 2);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].body, "r:/a");
  EXPECT_EQ(responses[1].body, "r:/b");
  ::close(fd);
  server.Stop();
}

TEST_P(ReactorTest, ResponseSplitAcrossManySmallReadsParses) {
  TcpServer server;
  ASSERT_TRUE(server
                  .Start([](const Request&) {
                    return MakeTextResponse(200, std::string(8192, 'x'));
                  },
                  0, Options())
                  .ok());
  const int fd = ConnectLoopback(server.port());
  SendAll(fd, SerializeRequest(MakeRequest(Method::kGet, "/big")));
  // 7-byte reads: headers and body arrive in hundreds of fragments.
  const std::vector<Response> responses = ReadResponses(fd, 1, 7);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].body.size(), 8192u);
  ::close(fd);
  server.Stop();
}

TEST_P(ReactorTest, KeepAliveServes100SequentialRequestsOnOneFd) {
  TcpServer server;
  ASSERT_TRUE(server.Start(EchoHandler(), 0, Options()).ok());
  const int fd = ConnectLoopback(server.port());
  for (int i = 0; i < 100; ++i) {
    Request request = MakeRequest(Method::kGet, "/seq/" + std::to_string(i));
    request.headers.Set("Connection", "keep-alive");
    SendAll(fd, SerializeRequest(request));
    const std::vector<Response> responses = ReadResponses(fd, 1);
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].body, "r:/seq/" + std::to_string(i));
  }
  ::close(fd);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.requests_served, 100u);
  server.Stop();
}

// ---------------------------------------------------- client-side pool ---

TEST_P(ReactorTest, TcpClientPoolReusesOneConnection) {
  TcpServer server;
  ASSERT_TRUE(server.Start(EchoHandler(), 0, Options()).ok());
  TcpClient client(server.port());
  for (int i = 0; i < 100; ++i) {
    auto response = client.Get("/p/" + std::to_string(i));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->status, 200);
  }
  EXPECT_EQ(client.connections_opened(), 1u);
  EXPECT_EQ(client.connections_reused(), 99u);
  EXPECT_EQ(server.stats().connections_accepted, 1u);
  server.Stop();
}

TEST_P(ReactorTest, TcpClientRetriesOnceOnStalePooledConnection) {
  ServerOptions options = Options();
  options.idle_timeout_ms = 50;  // server reaps the pooled fd between calls
  TcpServer server;
  ASSERT_TRUE(server.Start(EchoHandler(), 0, options).ok());
  TcpClient client(server.port());
  ASSERT_TRUE(client.Get("/one").ok());
  // Wait until the server's idle sweep has definitely closed the connection.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (server.stats().idle_closed == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server.stats().idle_closed, 1u);
  auto response = client.Get("/two");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(client.connections_opened(), 2u);  // stale fd detected, reconnected
  server.Stop();
}

TEST_P(ReactorTest, MaxRequestsPerConnectionForcesClose) {
  ServerOptions options = Options();
  options.max_requests_per_connection = 2;
  TcpServer server;
  ASSERT_TRUE(server.Start(EchoHandler(), 0, options).ok());
  const int fd = ConnectLoopback(server.port());
  Request request = MakeRequest(Method::kGet, "/x");
  request.headers.Set("Connection", "keep-alive");
  SendAll(fd, SerializeRequest(request));
  std::vector<Response> first = ReadResponses(fd, 1);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].headers.Get("Connection"), "keep-alive");
  SendAll(fd, SerializeRequest(request));
  std::vector<Response> second = ReadResponses(fd, 1);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].headers.Get("Connection"), "close");
  char byte = 0;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
  ::close(fd);
  server.Stop();
}

TEST_P(ReactorTest, IdleConnectionsAreReaped) {
  ServerOptions options = Options();
  options.idle_timeout_ms = 50;
  TcpServer server;
  ASSERT_TRUE(server.Start(EchoHandler(), 0, options).ok());
  const int fd = ConnectLoopback(server.port());
  // Never send a byte: the idle sweep must close us.
  char byte = 0;
  const ssize_t n = ::recv(fd, &byte, 1, 0);  // blocks until server closes
  EXPECT_EQ(n, 0);
  EXPECT_GE(server.stats().idle_closed, 1u);
  ::close(fd);
  server.Stop();
}

TEST_P(ReactorTest, WorkerQueueFullAnswers503RetryAfter) {
  ServerOptions options = Options();
  options.workers = 1;
  options.max_queued_requests = 1;
  TcpServer server;
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::atomic<int> entered{0};
  ASSERT_TRUE(server
                  .Start([&](const Request&) {
                    entered.fetch_add(1);
                    gate.wait();
                    return MakeTextResponse(200, "done");
                  },
                  0, options)
                  .ok());
  // First request occupies the single worker.
  std::thread blocked([&] {
    TcpClient client(server.port(), 5000);
    auto response = client.Get("/block");
    EXPECT_TRUE(response.ok());
  });
  while (entered.load() == 0) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // Second fills the queue slot.
  std::thread queued([&] {
    TcpClient client(server.port(), 5000);
    auto response = client.Get("/queued");
    EXPECT_TRUE(response.ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // Third must be refused immediately by the loop.
  TcpClient client(server.port(), 5000);
  auto refused = client.Get("/refused");
  ASSERT_TRUE(refused.ok()) << refused.status().ToString();
  EXPECT_EQ(refused->status, 503);
  // Retry-After is derived from queue depth / drain rate: a 2-deep backlog
  // against the fresh estimator's 100/s fallback rounds up to 1 s.
  EXPECT_EQ(refused->headers.Get("Retry-After"), "1");
  release.set_value();
  blocked.join();
  queued.join();
  EXPECT_GE(server.stats().overload_rejections, 1u);
  server.Stop();
}

// Regression for the hardcoded "Retry-After: 1": the overload hint must
// scale with the backlog, so clients shed behind a deep queue are told to
// come back later than clients shed behind a shallow one.
TEST_P(ReactorTest, OverloadRetryAfterScalesWithQueueDepth) {
  ServerOptions options = Options();
  options.workers = 1;
  options.max_queued_requests = 150;
  options.max_connections = 400;
  TcpServer server;
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::atomic<int> entered{0};
  ASSERT_TRUE(server
                  .Start([&](const Request&) {
                    entered.fetch_add(1);
                    gate.wait();
                    return MakeTextResponse(200, "done");
                  },
                  0, options)
                  .ok());
  // Park one request on the single worker, then pile ~150 more into the
  // dispatch queue from individual connections.
  std::vector<int> fds;
  for (int i = 0; i < 151; ++i) {
    const int fd = ConnectLoopback(server.port());
    SendAll(fd, SerializeRequest(MakeRequest(Method::kGet, "/pile")));
    fds.push_back(fd);
    if (i == 0) {
      while (entered.load() == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
  }
  // Let the loop ingest the backlog, then get shed at full depth: with ~150
  // queued against the 100/s fallback drain rate the derived hint must
  // exceed the shallow-queue value of 1 s.
  Response refused;
  for (int attempt = 0; attempt < 200 && refused.status != 503; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    TcpClient client(server.port(), 5000);
    auto response = client.Get("/refused");
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    refused = *response;
  }
  ASSERT_EQ(refused.status, 503);
  EXPECT_GE(std::atoi(refused.headers.GetOr("Retry-After", "0").c_str()), 2);
  release.set_value();
  for (const int fd : fds) ::close(fd);
  server.Stop();
}

// End-to-end token-bucket admission: a tenant over its rate gets 429 with a
// Retry-After derived from refill time — and successive rejections quote
// non-decreasing (and eventually growing) waits, never one constant.
TEST_P(ReactorTest, QosRateLimitBreachAnswers429WithDerivedRetryAfter) {
  ServerOptions options = Options();
  options.tenant_classifier = [](const Request& request) {
    qos::TenantSpec spec;
    spec.id = request.headers.GetOr("X-Tenant", "default");
    if (spec.id == "limited") {
      spec.rate_rps = 1.0;
      spec.burst = 1.0;
    }
    return spec;
  };
  TcpServer server;
  ASSERT_TRUE(server.Start(EchoHandler(), 0, options).ok());
  TcpClient client(server.port(), 5000);
  Request request = MakeRequest(Method::kGet, "/limited");
  request.headers.Set("X-Tenant", "limited");
  auto first = client.Send(request);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->status, 200);
  std::vector<int> retry_afters;
  for (int i = 0; i < 4; ++i) {
    auto rejected = client.Send(request);
    ASSERT_TRUE(rejected.ok());
    ASSERT_EQ(rejected->status, 429) << "request " << i;
    const std::string header = rejected->headers.GetOr("Retry-After", "");
    ASSERT_FALSE(header.empty());
    retry_afters.push_back(std::atoi(header.c_str()));
  }
  for (std::size_t i = 1; i < retry_afters.size(); ++i) {
    EXPECT_GE(retry_afters[i], retry_afters[i - 1]);
  }
  EXPECT_GT(retry_afters.back(), retry_afters.front());
  // An unlimited tenant on the same server is untouched.
  Request open = MakeRequest(Method::kGet, "/open");
  open.headers.Set("X-Tenant", "open");
  auto fine = client.Send(open);
  ASSERT_TRUE(fine.ok());
  EXPECT_EQ(fine->status, 200);
  EXPECT_GE(server.stats().rate_limited_rejections, 4u);
  const auto tenants = server.TenantQosStats();
  bool saw_limited = false;
  for (const auto& tenant : tenants) {
    if (tenant.id == "limited") {
      saw_limited = true;
      EXPECT_GE(tenant.rate_limited, 4u);
    }
  }
  EXPECT_TRUE(saw_limited);
  server.Stop();
}

// With the classifier installed, requests flow through the DRR scheduler:
// every request from every tenant still completes (no starvation, no loss).
TEST_P(ReactorTest, QosSchedulerCompletesAllTenantsRequests) {
  ServerOptions options = Options();
  options.workers = 2;
  options.tenant_classifier = [](const Request& request) {
    qos::TenantSpec spec;
    spec.id = request.headers.GetOr("X-Tenant", "default");
    spec.weight = spec.id == "heavy" ? 4 : 1;
    return spec;
  };
  TcpServer server;
  ASSERT_TRUE(server.Start(EchoHandler(), 0, options).ok());
  std::atomic<int> completed{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&, t] {
      TcpClient client(server.port(), 5000);
      Request request = MakeRequest(Method::kGet, "/work");
      request.headers.Set("X-Tenant", t == 0 ? "heavy" : "light" + std::to_string(t));
      for (int i = 0; i < 25; ++i) {
        auto response = client.Send(request);
        if (response.ok() && response->status == 200) completed.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  EXPECT_EQ(completed.load(), 75);
  const auto tenants = server.TenantQosStats();
  EXPECT_GE(tenants.size(), 3u);
  std::uint64_t dispatched = 0;
  for (const auto& tenant : tenants) dispatched += tenant.dispatched;
  EXPECT_EQ(dispatched, 75u);
  server.Stop();
}

// A half-closed client (shutdown(SHUT_WR) after the request) still gets its
// response: EOF while a request is in flight must not kill the connection.
TEST_P(ReactorTest, HalfCloseAfterRequestStillGetsResponse) {
  TcpServer server;
  ASSERT_TRUE(server
                  .Start([](const Request&) {
                    std::this_thread::sleep_for(std::chrono::milliseconds(30));
                    return MakeTextResponse(200, "late");
                  },
                  0, Options())
                  .ok());
  const int fd = ConnectLoopback(server.port());
  SendAll(fd, SerializeRequest(MakeRequest(Method::kGet, "/halfclose")));
  ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);
  const std::vector<Response> responses = ReadResponses(fd, 1);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].body, "late");
  ::close(fd);
  server.Stop();
}

TEST_P(ReactorTest, ConcurrentKeepAliveClientsUnderChurn) {
  TcpServer server;
  ASSERT_TRUE(server.Start(EchoHandler(), 0, Options()).ok());
  std::vector<std::thread> threads;
  std::atomic<int> successes{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      TcpClient client(server.port());
      for (int i = 0; i < 50; ++i) {
        auto response = client.Get("/c/" + std::to_string(t) + "/" + std::to_string(i));
        if (response.ok() && response->status == 200) successes.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(successes.load(), 8 * 50);
  // Pooling means connection count is bounded by the client count, not the
  // request count.
  EXPECT_LE(server.stats().connections_accepted, 16u);
  server.Stop();
}

}  // namespace
}  // namespace ofmf::http
