#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <thread>

#include "http/message.hpp"
#include "http/router.hpp"
#include "http/server.hpp"
#include "http/uri.hpp"
#include "http/wire.hpp"
#include "json/parse.hpp"
#include "json/serialize.hpp"

namespace ofmf::http {
namespace {

using json::Json;
using ::testing::HasSubstr;

// --------------------------------------------------------------- Message ---

TEST(MessageTest, MethodRoundTrip) {
  for (Method m : {Method::kGet, Method::kPost, Method::kPatch, Method::kPut,
                   Method::kDelete, Method::kHead, Method::kOptions}) {
    EXPECT_EQ(ParseMethod(to_string(m)), m);
  }
  EXPECT_FALSE(ParseMethod("BREW").has_value());
}

TEST(MessageTest, HeaderMapIsCaseInsensitive) {
  HeaderMap headers;
  headers.Set("Content-Type", "application/json");
  EXPECT_EQ(headers.Get("content-type"), "application/json");
  EXPECT_EQ(headers.GetOr("X-Missing", "fb"), "fb");
  EXPECT_TRUE(headers.Contains("CONTENT-TYPE"));
  headers.Set("content-TYPE", "text/plain");  // replaces, no duplicate
  EXPECT_EQ(headers.size(), 1u);
  EXPECT_EQ(headers.Get("Content-Type"), "text/plain");
  headers.Remove("CoNtEnT-tYpE");
  EXPECT_FALSE(headers.Contains("Content-Type"));
}

TEST(MessageTest, HeaderAddKeepsMultiple) {
  HeaderMap headers;
  headers.Add("Set-Cookie", "a=1");
  headers.Add("Set-Cookie", "b=2");
  EXPECT_EQ(headers.size(), 2u);
  EXPECT_EQ(headers.Get("set-cookie"), "a=1");  // first value
}

TEST(MessageTest, MakeRequestSplitsQuery) {
  const Request r = MakeRequest(Method::kGet, "/redfish/v1/Systems?$top=3&$skip=1");
  EXPECT_EQ(r.path, "/redfish/v1/Systems");
  EXPECT_EQ(r.query.at("$top"), "3");
  EXPECT_EQ(r.query.at("$skip"), "1");
  EXPECT_EQ(r.target, "/redfish/v1/Systems?$top=3&$skip=1");
}

TEST(MessageTest, JsonBodyParsesAndRejects) {
  Request r = MakeJsonRequest(Method::kPost, "/x", Json::Obj({{"a", 1}}));
  EXPECT_EQ(r.headers.Get("Content-Type"), "application/json");
  auto body = r.JsonBody();
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body->GetInt("a"), 1);

  Request empty = MakeRequest(Method::kPost, "/x");
  EXPECT_FALSE(empty.JsonBody().ok());
  empty.body = "{broken";
  EXPECT_FALSE(empty.JsonBody().ok());
}

TEST(MessageTest, StatusToHttpMapping) {
  EXPECT_EQ(StatusToHttp(Status::Ok()), 200);
  EXPECT_EQ(StatusToHttp(Status::NotFound("")), 404);
  EXPECT_EQ(StatusToHttp(Status::InvalidArgument("")), 400);
  EXPECT_EQ(StatusToHttp(Status::AlreadyExists("")), 409);
  EXPECT_EQ(StatusToHttp(Status::FailedPrecondition("")), 412);
  EXPECT_EQ(StatusToHttp(Status::ResourceExhausted("")), 507);
  EXPECT_EQ(StatusToHttp(Status::Unavailable("")), 503);
  EXPECT_EQ(StatusToHttp(Status::Unimplemented("")), 501);
}

// ------------------------------------------------------------------- Uri ---

TEST(UriTest, PercentDecodeEncode) {
  EXPECT_EQ(PercentDecode("a%20b%2Fc+d"), "a b/c d");
  EXPECT_EQ(PercentDecode("%ZZ"), "%ZZ");  // malformed passes through
  EXPECT_EQ(PercentEncode("a b/c"), "a%20b/c");
  EXPECT_EQ(PercentDecode(PercentEncode("Name eq 'x y'")), "Name eq 'x y'");
}

TEST(UriTest, NormalizePath) {
  EXPECT_EQ(NormalizePath("/redfish/v1/"), "/redfish/v1");
  EXPECT_EQ(NormalizePath("//a//b/"), "/a/b");
  EXPECT_EQ(NormalizePath("/"), "/");
  EXPECT_EQ(NormalizePath(""), "/");
}

TEST(UriTest, QueryWithoutValue) {
  const ParsedUri uri = ParseUriTarget("/a?flag&x=1");
  EXPECT_EQ(uri.query.at("flag"), "");
  EXPECT_EQ(uri.query.at("x"), "1");
}

TEST(UriTest, EncodedFilterDecodes) {
  const ParsedUri uri = ParseUriTarget("/c?$filter=Name%20eq%20%27n1%27");
  EXPECT_EQ(uri.query.at("$filter"), "Name eq 'n1'");
}

// ---------------------------------------------------------------- Router ---

Router MakeTestRouter() {
  Router router;
  router.Route(Method::kGet, "/redfish/v1", [](const Request&, const PathParams&) {
    return MakeTextResponse(200, "root");
  });
  router.Route(Method::kGet, "/redfish/v1/Systems/{id}",
               [](const Request&, const PathParams& params) {
                 return MakeTextResponse(200, "system:" + params.at("id"));
               });
  router.Route(Method::kGet, "/redfish/v1/Systems/special",
               [](const Request&, const PathParams&) {
                 return MakeTextResponse(200, "special");
               });
  router.Route(Method::kPatch, "/redfish/v1/Systems/{id}",
               [](const Request&, const PathParams& params) {
                 return MakeTextResponse(200, "patched:" + params.at("id"));
               });
  router.Route(Method::kGet, "/redfish/v1/Fabrics/{fid}/Endpoints/{eid}",
               [](const Request&, const PathParams& params) {
                 return MakeTextResponse(200, params.at("fid") + "/" + params.at("eid"));
               });
  return router;
}

TEST(RouterTest, ExactAndParamMatches) {
  const Router router = MakeTestRouter();
  EXPECT_EQ(router.Dispatch(MakeRequest(Method::kGet, "/redfish/v1")).body, "root");
  EXPECT_EQ(router.Dispatch(MakeRequest(Method::kGet, "/redfish/v1/Systems/abc")).body,
            "system:abc");
  EXPECT_EQ(router.Dispatch(MakeRequest(Method::kGet, "/redfish/v1/Fabrics/f1/Endpoints/e2")).body,
            "f1/e2");
}

TEST(RouterTest, LiteralBeatsParam) {
  const Router router = MakeTestRouter();
  EXPECT_EQ(router.Dispatch(MakeRequest(Method::kGet, "/redfish/v1/Systems/special")).body,
            "special");
}

TEST(RouterTest, TrailingSlashNormalized) {
  const Router router = MakeTestRouter();
  EXPECT_EQ(router.Dispatch(MakeRequest(Method::kGet, "/redfish/v1/")).body, "root");
}

TEST(RouterTest, NotFoundVersusMethodNotAllowed) {
  const Router router = MakeTestRouter();
  EXPECT_EQ(router.Dispatch(MakeRequest(Method::kGet, "/nope")).status, 404);
  const Response r405 = router.Dispatch(MakeRequest(Method::kDelete, "/redfish/v1/Systems/x"));
  EXPECT_EQ(r405.status, 405);
  EXPECT_EQ(r405.headers.Get("Allow"), "GET, PATCH");
}

TEST(RouterTest, LaterRegistrationOverrides) {
  Router router;
  router.Route(Method::kGet, "/a", [](const Request&, const PathParams&) {
    return MakeTextResponse(200, "one");
  });
  router.Route(Method::kGet, "/a", [](const Request&, const PathParams&) {
    return MakeTextResponse(200, "two");
  });
  EXPECT_EQ(router.route_count(), 1u);
  EXPECT_EQ(router.Dispatch(MakeRequest(Method::kGet, "/a")).body, "two");
}

TEST(RouterTest, MatchesProbe) {
  const Router router = MakeTestRouter();
  EXPECT_TRUE(router.Matches("/redfish/v1/Systems/anything"));
  EXPECT_FALSE(router.Matches("/other"));
}

// ------------------------------------------------------------------ Wire ---

TEST(WireTest, RequestRoundTrip) {
  Request request = MakeJsonRequest(Method::kPost, "/redfish/v1/Systems?x=1",
                                    Json::Obj({{"Name", "n"}}));
  request.headers.Set("X-Auth-Token", "tok123");
  const std::string wire = SerializeRequest(request);
  EXPECT_THAT(wire, HasSubstr("POST /redfish/v1/Systems?x=1 HTTP/1.1\r\n"));
  EXPECT_THAT(wire, HasSubstr("Content-Length:"));

  WireParser parser(WireParser::Mode::kRequest);
  parser.Feed(wire);
  ASSERT_TRUE(parser.HasMessage());
  auto parsed = parser.TakeRequest();
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->method, Method::kPost);
  EXPECT_EQ(parsed->path, "/redfish/v1/Systems");
  EXPECT_EQ(parsed->query.at("x"), "1");
  EXPECT_EQ(parsed->headers.Get("x-auth-token"), "tok123");
  EXPECT_EQ(parsed->JsonBody()->GetString("Name"), "n");
}

TEST(WireTest, ResponseRoundTrip) {
  Response response = MakeJsonResponse(201, Json::Obj({{"Id", "5"}}));
  response.headers.Set("Location", "/redfish/v1/Systems/5");
  const std::string wire = SerializeResponse(response);
  EXPECT_THAT(wire, HasSubstr("HTTP/1.1 201 Created\r\n"));

  WireParser parser(WireParser::Mode::kResponse);
  parser.Feed(wire);
  ASSERT_TRUE(parser.HasMessage());
  auto parsed = parser.TakeResponse();
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->status, 201);
  EXPECT_EQ(parsed->headers.Get("Location"), "/redfish/v1/Systems/5");
}

TEST(WireTest, IncrementalFeedByteByByte) {
  const std::string wire =
      SerializeRequest(MakeJsonRequest(Method::kPatch, "/x", Json::Obj({{"v", 7}})));
  WireParser parser(WireParser::Mode::kRequest);
  for (std::size_t i = 0; i < wire.size(); ++i) {
    EXPECT_FALSE(parser.HasMessage() && i + 1 < wire.size());
    parser.Feed(std::string_view(&wire[i], 1));
  }
  ASSERT_TRUE(parser.HasMessage());
  EXPECT_EQ(parser.TakeRequest()->JsonBody()->GetInt("v"), 7);
}

TEST(WireTest, PipelinedRequestsStayBuffered) {
  const std::string one = SerializeRequest(MakeRequest(Method::kGet, "/a"));
  const std::string two = SerializeRequest(MakeRequest(Method::kGet, "/b"));
  WireParser parser(WireParser::Mode::kRequest);
  parser.Feed(one + two);
  ASSERT_TRUE(parser.HasMessage());
  EXPECT_EQ(parser.TakeRequest()->path, "/a");
  ASSERT_TRUE(parser.HasMessage());
  EXPECT_EQ(parser.TakeRequest()->path, "/b");
  EXPECT_FALSE(parser.HasMessage());
}

TEST(WireTest, MalformedStartLineMarksBroken) {
  WireParser parser(WireParser::Mode::kRequest);
  parser.Feed("NOT A REQUEST LINE\r\nContent-Length: 0\r\n\r\n");
  ASSERT_TRUE(parser.HasMessage());
  EXPECT_FALSE(parser.TakeRequest().ok());
  EXPECT_TRUE(parser.Broken());
}

TEST(WireTest, UnknownMethodRejected) {
  WireParser parser(WireParser::Mode::kRequest);
  parser.Feed("BREW /pot HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
  ASSERT_TRUE(parser.HasMessage());
  EXPECT_FALSE(parser.TakeRequest().ok());
}

TEST(WireTest, TakeWithoutMessageFails) {
  WireParser parser(WireParser::Mode::kRequest);
  EXPECT_FALSE(parser.TakeRequest().ok());
  parser.Feed("GET /a HTTP/1.1\r\n");  // incomplete headers
  EXPECT_FALSE(parser.HasMessage());
}

// ------------------------------------------------------------ Transports ---

TEST(InProcessTest, RoundTripAndConvenienceVerbs) {
  InProcessClient client([](const Request& request) {
    Json body = Json::Obj({{"method", to_string(request.method)},
                           {"path", request.path}});
    return MakeJsonResponse(200, body);
  });
  auto get = client.Get("/redfish/v1");
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(json::Parse(get->body)->GetString("method"), "GET");

  auto post = client.PostJson("/c", Json::Obj({{"a", 1}}));
  ASSERT_TRUE(post.ok());
  EXPECT_EQ(json::Parse(post->body)->GetString("method"), "POST");

  auto patch = client.PatchJson("/c", Json::Obj({}));
  EXPECT_EQ(json::Parse(patch->body)->GetString("method"), "PATCH");
  auto del = client.Delete("/c/1");
  EXPECT_EQ(json::Parse(del->body)->GetString("method"), "DELETE");
}

TEST(TcpTest, ServerClientRoundTrip) {
  TcpServer server;
  ASSERT_TRUE(server
                  .Start([](const Request& request) {
                    return MakeJsonResponse(
                        200, Json::Obj({{"echo", request.path},
                                        {"body_len", static_cast<std::int64_t>(
                                                         request.body.size())}}));
                  })
                  .ok());
  ASSERT_GT(server.port(), 0);

  TcpClient client(server.port());
  auto response = client.PostJson("/redfish/v1/Fabrics", Json::Obj({{"Name", "fab"}}));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  const Json body = *json::Parse(response->body);
  EXPECT_EQ(body.GetString("echo"), "/redfish/v1/Fabrics");
  EXPECT_GT(body.GetInt("body_len"), 0);
  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(TcpTest, ConcurrentClients) {
  TcpServer server;
  ASSERT_TRUE(server
                  .Start([](const Request& request) {
                    return MakeTextResponse(200, "pong:" + request.path);
                  })
                  .ok());
  std::vector<std::thread> threads;
  std::atomic<int> successes{0};
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&, i] {
      TcpClient client(server.port());
      auto response = client.Get("/t/" + std::to_string(i));
      if (response.ok() && response->body == "pong:/t/" + std::to_string(i)) {
        successes.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(successes.load(), 8);
  server.Stop();
}

TEST(TcpTest, KeepAliveServesPipelinedRequestsOnOneConnection) {
  TcpServer server;
  std::atomic<int> served{0};
  ASSERT_TRUE(server
                  .Start([&](const Request& request) {
                    served.fetch_add(1);
                    return MakeTextResponse(200, "r:" + request.path);
                  })
                  .ok());
  // Raw socket: two keep-alive requests back to back on one connection.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  Request first = MakeRequest(Method::kGet, "/a");
  first.headers.Set("Connection", "keep-alive");
  Request second = MakeRequest(Method::kGet, "/b");
  second.headers.Set("Connection", "close");
  const std::string wire = SerializeRequest(first) + SerializeRequest(second);
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));

  WireParser parser(WireParser::Mode::kResponse);
  char buffer[4096];
  std::vector<Response> responses;
  while (responses.size() < 2) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    parser.Feed(std::string_view(buffer, static_cast<std::size_t>(n)));
    while (parser.HasMessage()) {
      auto response = parser.TakeResponse();
      ASSERT_TRUE(response.ok());
      responses.push_back(*response);
    }
  }
  ::close(fd);
  server.Stop();
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].body, "r:/a");
  EXPECT_EQ(responses[0].headers.Get("Connection"), "keep-alive");
  EXPECT_EQ(responses[1].body, "r:/b");
  EXPECT_EQ(responses[1].headers.Get("Connection"), "close");
  EXPECT_EQ(served.load(), 2);
}

TEST(TcpTest, ConnectToClosedPortFails) {
  TcpServer server;
  ASSERT_TRUE(server.Start([](const Request&) { return MakeEmptyResponse(204); }).ok());
  const std::uint16_t port = server.port();
  server.Stop();
  TcpClient client(port);
  EXPECT_FALSE(client.Get("/x").ok());
}

TEST(TcpTest, DoubleStartRejected) {
  TcpServer server;
  ASSERT_TRUE(server.Start([](const Request&) { return MakeEmptyResponse(204); }).ok());
  EXPECT_EQ(server.Start([](const Request&) { return MakeEmptyResponse(204); }, 0).code(),
            ErrorCode::kFailedPrecondition);
  server.Stop();
}

}  // namespace
}  // namespace ofmf::http
