// End-to-end flows across the whole stack: Composability Manager client ->
// OFMF (REST) -> technology agent -> simulated fabric manager, plus the
// spliced paper's Slurm/BeeOND burst-buffer lifecycle and the fail-over
// story, all through public APIs only.
#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include "agents/cxl_agent.hpp"
#include "agents/ib_agent.hpp"
#include "agents/nvmeof_agent.hpp"
#include "beeond/beeond.hpp"
#include "cluster/cluster.hpp"
#include "common/hostlist.hpp"
#include "common/units.hpp"
#include "composability/adapter.hpp"
#include "composability/client.hpp"
#include "composability/manager.hpp"
#include "json/parse.hpp"
#include "json/pointer.hpp"
#include "json/serialize.hpp"
#include "ofmf/service.hpp"
#include "ofmf/uris.hpp"
#include "slurmsim/slurm.hpp"
#include "workloads/experiment.hpp"

namespace ofmf {
namespace {

using json::Json;
using json::Parse;
using ::testing::HasSubstr;

// ---------------------------------------------------------------------------
// Scenario 1: dynamic memory expansion driven end-to-end over the wire.
// A composed system nears OOM; the Composability Manager hot-adds CXL blocks
// and the CXL agent binds logical devices natively.
// ---------------------------------------------------------------------------
TEST(EndToEnd, OomMitigationThroughCxlAgentOverTcp) {
  // Fabric: host + 2 GiB MLD with 4 LDs.
  fabricsim::FabricGraph graph;
  ASSERT_TRUE(graph.AddVertex("sw0", fabricsim::VertexKind::kSwitch, 8).ok());
  ASSERT_TRUE(graph.AddVertex("host0", fabricsim::VertexKind::kDevice, 1).ok());
  ASSERT_TRUE(graph.AddVertex("cxl-mem0", fabricsim::VertexKind::kDevice, 1).ok());
  ASSERT_TRUE(graph.Connect("host0", 0, "sw0", 0).ok());
  ASSERT_TRUE(graph.Connect("cxl-mem0", 0, "sw0", 1).ok());
  fabricsim::CxlFabricManager cxl(graph);
  ASSERT_TRUE(cxl.RegisterHost("host0").ok());
  ASSERT_TRUE(cxl.RegisterMemoryDevice("cxl-mem0", 2048, 4).ok());

  core::OfmfService ofmf;
  ASSERT_TRUE(ofmf.Bootstrap().ok());
  ASSERT_TRUE(ofmf.RegisterAgent(std::make_shared<agents::CxlAgent>("CXL", cxl)).ok());

  // Compute + CXL memory blocks in the composition pool.
  core::BlockCapability compute;
  compute.id = "host0";
  compute.block_type = "Compute";
  compute.cores = 56;
  compute.memory_gib = 128;
  ASSERT_TRUE(ofmf.composition().RegisterBlock(compute).ok());
  for (int i = 0; i < 2; ++i) {
    core::BlockCapability memory;
    memory.id = "cxl-ld" + std::to_string(i);
    memory.block_type = "Memory";
    memory.memory_gib = 512;
    ASSERT_TRUE(ofmf.composition().RegisterBlock(memory).ok());
  }

  // Serve over real TCP; the manager is a remote client.
  http::TcpServer server;
  ASSERT_TRUE(server.Start(ofmf.Handler()).ok());
  composability::OfmfClient client(
      std::make_unique<http::TcpClient>(server.port()));
  composability::ComposabilityManager manager(client);

  composability::CompositionRequest request;
  request.name = "in-memory-db";
  request.cores = 40;
  request.memory_gib = 100;
  auto composed = manager.Compose(request);
  ASSERT_TRUE(composed.ok()) << composed.status().ToString();

  // Compose already pulled one CXL block for its 100 GiB ask; the system
  // nears OOM and grows by another 500 GiB -> the second CXL block attaches.
  ASSERT_TRUE(manager.ExpandMemory(composed->system_uri, 500).ok());
  auto system = client.Get(composed->system_uri);
  ASSERT_TRUE(system.ok());
  EXPECT_DOUBLE_EQ(system->at("MemorySummary").GetDouble("TotalSystemMemoryGiB"), 1152);

  // Attach the fabric-level memory connection through the agent.
  auto connection = client.Post(
      core::FabricUri("CXL") + "/Connections",
      Json::Obj({{"Name", "db-mem"},
                 {"ConnectionType", "Memory"},
                 {"Links",
                  Json::Obj({{"InitiatorEndpoints",
                              Json::Arr({Json::Obj({{"@odata.id",
                                                     core::FabricUri("CXL") +
                                                         "/Endpoints/host0"}})})},
                             {"TargetEndpoints",
                              Json::Arr({Json::Obj({{"@odata.id",
                                                     core::FabricUri("CXL") +
                                                         "/Endpoints/cxl-mem0"}})})}})}}));
  ASSERT_TRUE(connection.ok()) << connection.status().ToString();
  EXPECT_EQ(cxl.UnboundCapacityBytes(), 1536u);  // one of four LDs bound

  server.Stop();
}

// ---------------------------------------------------------------------------
// Scenario 2: link failure -> Alert event -> client re-zones around it.
// ---------------------------------------------------------------------------
TEST(EndToEnd, FailoverEventFlowThroughIbAgent) {
  fabricsim::FabricGraph graph;
  ASSERT_TRUE(graph.AddVertex("sw0", fabricsim::VertexKind::kSwitch, 8).ok());
  ASSERT_TRUE(graph.AddVertex("sw1", fabricsim::VertexKind::kSwitch, 8).ok());
  ASSERT_TRUE(graph.AddVertex("n1", fabricsim::VertexKind::kDevice, 2).ok());
  ASSERT_TRUE(graph.AddVertex("n2", fabricsim::VertexKind::kDevice, 2).ok());
  // Primary path via sw0, backup via sw1.
  ASSERT_TRUE(graph.Connect("n1", 0, "sw0", 0, {50, 200}).ok());
  ASSERT_TRUE(graph.Connect("n2", 0, "sw0", 1, {50, 200}).ok());
  ASSERT_TRUE(graph.Connect("n1", 1, "sw1", 0, {90, 100}).ok());
  ASSERT_TRUE(graph.Connect("n2", 1, "sw1", 1, {90, 100}).ok());
  fabricsim::IbSubnetManager sm(graph);

  core::OfmfService ofmf;
  ASSERT_TRUE(ofmf.Bootstrap().ok());
  ASSERT_TRUE(ofmf.RegisterAgent(std::make_shared<agents::IbAgent>("IB", sm)).ok());

  composability::OfmfClient client(
      std::make_unique<http::InProcessClient>(ofmf.Handler()));
  composability::ComposabilityManager manager(client);
  auto sub = manager.SubscribeEvents({"Alert"});
  ASSERT_TRUE(sub.ok());

  const std::string ep1 = core::FabricUri("IB") + "/Endpoints/n1";
  const std::string ep2 = core::FabricUri("IB") + "/Endpoints/n2";
  auto connection = client.Post(
      core::FabricUri("IB") + "/Connections",
      Json::Obj({{"Name", "mpi"},
                 {"ConnectionType", "Network"},
                 {"Links", Json::Obj({{"InitiatorEndpoints",
                                       Json::Arr({Json::Obj({{"@odata.id", ep1}})})},
                                      {"TargetEndpoints",
                                       Json::Arr({Json::Obj({{"@odata.id", ep2}})})}})}}));
  ASSERT_TRUE(connection.ok());
  const Json before = *client.Get(*connection);
  EXPECT_DOUBLE_EQ(before.at("Oem").at("Ofmf").GetDouble("LatencyNs"), 100.0);

  // Kill the primary switch. The SM traps, the agent raises Alerts.
  ASSERT_TRUE(graph.FailVertex("sw0").ok());
  auto alerts = manager.DrainEvents(*sub);
  ASSERT_TRUE(alerts.ok());
  EXPECT_GE(alerts->size(), 1u);

  // Client heals: drop the dead connection, create a new one; the SM path
  // record now routes via the backup switch at higher latency.
  ASSERT_TRUE(client.Delete(*connection).ok());
  auto healed = client.Post(
      core::FabricUri("IB") + "/Connections",
      Json::Obj({{"Name", "mpi-failover"},
                 {"ConnectionType", "Network"},
                 {"Links", Json::Obj({{"InitiatorEndpoints",
                                       Json::Arr({Json::Obj({{"@odata.id", ep1}})})},
                                      {"TargetEndpoints",
                                       Json::Arr({Json::Obj({{"@odata.id", ep2}})})}})}}));
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  const Json after = *client.Get(*healed);
  EXPECT_DOUBLE_EQ(after.at("Oem").at("Ofmf").GetDouble("LatencyNs"), 180.0);
}

// ---------------------------------------------------------------------------
// Scenario 3: the spliced paper's full burst-buffer lifecycle — Slurm job
// with the `beeond` constraint assembles a private filesystem in the prolog,
// the job writes data, the epilog tears down + wipes, and the NVMe-oF agent
// publishes the node-local storage as a composable Swordfish service.
// ---------------------------------------------------------------------------
class BurstBufferFlow : public ::testing::Test {
 protected:
  BurstBufferFlow() {
    cluster::ClusterSpec spec;
    spec.node_count = 4;
    machine_ = std::make_unique<cluster::Cluster>(spec);
    for (const std::string& host : machine_->Hostnames()) {
      EXPECT_TRUE(machine_->PrepareNodeStorage(host).ok());
    }
    slurm_ = std::make_unique<slurmsim::SlurmManager>(*machine_, clock_);
    orchestrator_ = std::make_unique<beeond::BeeondOrchestrator>(*machine_);

    slurm_->AddProlog([this](const slurmsim::Job& job, const std::string& hostname)
                          -> slurmsim::ScriptResult {
      if (!job.HasConstraint("beeond")) return {};
      const auto hosts = ExpandHostlist(job.env.at("SLURM_NODELIST"));
      if (!hosts.ok()) return {hosts.status(), 0};
      if (hostname != LowestHost(*hosts)) return {Status::Ok(), Millis(40)};
      auto instance =
          orchestrator_->Start("beeond-job" + job.env.at("SLURM_JOB_ID"), *hosts);
      if (!instance.ok()) return {instance.status(), 0};
      return {Status::Ok(), instance->assemble_duration};
    });
    slurm_->AddEpilog([this](const slurmsim::Job& job, const std::string& hostname)
                          -> slurmsim::ScriptResult {
      if (!job.HasConstraint("beeond")) return {};
      const auto hosts = ExpandHostlist(job.env.at("SLURM_NODELIST"));
      if (!hosts.ok()) return {hosts.status(), 0};
      if (hostname != LowestHost(*hosts)) return {Status::Ok(), Millis(40)};
      const Status stopped =
          orchestrator_->Stop("beeond-job" + job.env.at("SLURM_JOB_ID"));
      return {stopped, Seconds(2.5)};
    });
  }

  SimClock clock_;
  std::unique_ptr<cluster::Cluster> machine_;
  std::unique_ptr<slurmsim::SlurmManager> slurm_;
  std::unique_ptr<beeond::BeeondOrchestrator> orchestrator_;
};

TEST_F(BurstBufferFlow, FullLifecycleWithDataWipe) {
  slurmsim::JobSpec spec;
  spec.name = "hpl+ior";
  spec.node_count = 4;
  spec.constraints = {"beeond"};
  auto job_id = slurm_->Submit(spec);
  ASSERT_TRUE(job_id.ok()) << job_id.status().ToString();

  const std::string fs_id = "beeond-job" + std::to_string(*job_id);
  auto instance = orchestrator_->Get(fs_id);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->mgmtd_host, "node001");
  EXPECT_EQ(instance->ost_hosts.size(), 4u);
  EXPECT_LT(ToSeconds(instance->assemble_duration), 3.0);

  // The running job writes through the filesystem.
  ASSERT_TRUE(orchestrator_->WriteFile(fs_id, "node002", 64 * MiB).ok());
  EXPECT_GT((*machine_->Node("node003"))->ssd().used_bytes(), 0u);

  // Completion tears everything down and wipes data (security property).
  ASSERT_TRUE(slurm_->Complete(*job_id).ok());
  EXPECT_FALSE(orchestrator_->Get(fs_id).ok());
  for (const std::string& host : machine_->Hostnames()) {
    EXPECT_EQ((*machine_->Node(host))->ssd().used_bytes(), 0u) << host;
    EXPECT_TRUE((*machine_->Node(host))->Daemons().empty()) << host;
  }
}

TEST_F(BurstBufferFlow, JobWithoutConstraintSkipsBeeond) {
  slurmsim::JobSpec spec;
  spec.node_count = 2;
  auto job_id = slurm_->Submit(spec);
  ASSERT_TRUE(job_id.ok());
  EXPECT_TRUE(orchestrator_->InstanceIds().empty());
  const slurmsim::Job job = *slurm_->GetJob(*job_id);
  for (const std::string& host : job.hosts) {
    EXPECT_TRUE((*machine_->Node(host))->Daemons().empty());
  }
}

TEST_F(BurstBufferFlow, SsdFaultFailsPrologAndDrainsNode) {
  // Break node002's device so the BeeOND assembly fails like hardware would.
  ASSERT_TRUE((*machine_->Node("node002"))->ssd().Unmount().ok());
  slurmsim::JobSpec spec;
  spec.node_count = 3;
  spec.constraints = {"beeond"};
  const auto submitted = slurm_->Submit(spec);
  EXPECT_FALSE(submitted.ok());
  EXPECT_TRUE((*machine_->Node("node001"))->drained());  // orchestrating host reported
  EXPECT_FALSE(slurm_->log().empty());
  // No daemons leaked anywhere.
  for (const std::string& host : machine_->Hostnames()) {
    EXPECT_TRUE((*machine_->Node(host))->Daemons().empty()) << host;
  }
}

TEST_F(BurstBufferFlow, BackToBackJobsReuseNodes) {
  for (int round = 0; round < 3; ++round) {
    slurmsim::JobSpec spec;
    spec.node_count = 4;
    spec.constraints = {"beeond"};
    auto job_id = slurm_->Submit(spec);
    ASSERT_TRUE(job_id.ok()) << "round " << round;
    ASSERT_TRUE(
        orchestrator_->WriteFile("beeond-job" + std::to_string(*job_id), "node001", MiB)
            .ok());
    ASSERT_TRUE(slurm_->Complete(*job_id).ok()) << "round " << round;
  }
  EXPECT_TRUE(orchestrator_->InstanceIds().empty());
}

// ---------------------------------------------------------------------------
// Scenario 4: node-local SSDs published through the OFMF as a Swordfish
// storage service (the composable burst-buffer pool the OFMF abstract
// motivates), then consumed by a storage connection.
// ---------------------------------------------------------------------------
TEST(EndToEnd, NodeLocalStorageAsComposableSwordfishService) {
  fabricsim::FabricGraph graph;
  ASSERT_TRUE(graph.AddVertex("sw0", fabricsim::VertexKind::kSwitch, 8).ok());
  ASSERT_TRUE(graph.AddVertex("node001", fabricsim::VertexKind::kDevice, 1).ok());
  ASSERT_TRUE(graph.AddVertex("node002", fabricsim::VertexKind::kDevice, 1).ok());
  ASSERT_TRUE(graph.Connect("node001", 0, "sw0", 0).ok());
  ASSERT_TRUE(graph.Connect("node002", 0, "sw0", 1).ok());
  fabricsim::NvmeofTargetManager nvme(graph);
  // node002 exports its 894 GiB partition over the fabric (the discussion
  // section's NVMe-oF sharing idea for storage-exempt nodes).
  const std::string nqn = "nqn.2026-01.org.ofmf:node002-beeond";
  ASSERT_TRUE(nvme.CreateSubsystem(nqn, "node002").ok());
  ASSERT_TRUE(nvme.AddNamespace(nqn, 1, 894ull * GiB).ok());
  ASSERT_TRUE(nvme.RegisterHostPort("nqn.host:node001", "node001").ok());

  core::OfmfService ofmf;
  ASSERT_TRUE(ofmf.Bootstrap().ok());
  ASSERT_TRUE(
      ofmf.RegisterAgent(std::make_shared<agents::NvmeofAgent>("NVMeoF", nvme)).ok());

  composability::OfmfClient client(
      std::make_unique<http::InProcessClient>(ofmf.Handler()));
  // The Swordfish pool reflects the SSD partition size.
  auto pools =
      client.Members(std::string(core::kStorageServices) + "/NVMeoF/StoragePools");
  ASSERT_TRUE(pools.ok());
  ASSERT_EQ(pools->size(), 1u);
  const Json pool = *client.Get((*pools)[0]);
  EXPECT_EQ(
      static_cast<std::uint64_t>(
          json::ResolvePointerRef(pool, "/Capacity/Data/AllocatedBytes")->as_int()),
      894ull * GiB);

  // Attach node001 to it through the agent.
  auto connection = client.Post(
      core::FabricUri("NVMeoF") + "/Connections",
      Json::Obj({{"Name", "remote-burst-buffer"},
                 {"ConnectionType", "Storage"},
                 {"Oem", Json::Obj({{"Ofmf",
                                     Json::Obj({{"HostNqn", "nqn.host:node001"},
                                                {"SubsystemNqn", nqn}})}})}}));
  ASSERT_TRUE(connection.ok()) << connection.status().ToString();
  EXPECT_EQ(nvme.ListControllers().size(), 1u);
}

// ---------------------------------------------------------------------------
// Scenario 4b: the burst buffer as a *composable resource managed through
// the OFMF*. The cluster adapter publishes per-node NVMe blocks; each Slurm
// job's prolog composes a storage system over the OFMF REST API sized to
// the allocation, starts BeeOND on it, and the epilog decomposes —
// returning the SSDs to the datacenter pool between jobs.
// ---------------------------------------------------------------------------
TEST(EndToEnd, ComposableBurstBufferThroughOfmf) {
  cluster::ClusterSpec spec;
  spec.node_count = 4;
  cluster::Cluster machine(spec);
  for (const std::string& host : machine.Hostnames()) {
    ASSERT_TRUE(machine.PrepareNodeStorage(host).ok());
    ASSERT_TRUE(machine.pool()
                    .AddDevice({"nvme-" + host, cluster::ResourceKind::kNvme,
                                894ull * GiB, host, "", false, 12, 5})
                    .ok());
  }

  core::OfmfService ofmf;
  ASSERT_TRUE(ofmf.Bootstrap().ok());
  composability::ClusterAdapter adapter(machine, ofmf);
  ASSERT_TRUE(adapter.Publish().ok());
  composability::OfmfClient client(
      std::make_unique<http::InProcessClient>(ofmf.Handler()));
  composability::ComposabilityManager manager(client);

  SimClock clock;
  slurmsim::SlurmManager slurm(machine, clock);
  beeond::BeeondOrchestrator orchestrator(machine);
  std::map<std::string, std::string> storage_system_by_job;  // job id -> system uri

  slurm.AddProlog([&](const slurmsim::Job& job, const std::string& hostname)
                      -> slurmsim::ScriptResult {
    if (!job.HasConstraint("beeond")) return {};
    const auto hosts = ExpandHostlist(job.env.at("SLURM_NODELIST"));
    if (!hosts.ok()) return {hosts.status(), 0};
    if (hostname != LowestHost(*hosts)) return {Status::Ok(), Millis(40)};
    // Compose the job's burst-buffer storage through the OFMF: one NVMe
    // block per allocated node.
    composability::CompositionRequest request;
    request.name = "burst-buffer-job" + job.env.at("SLURM_JOB_ID");
    request.storage_gib = 894.0 * static_cast<double>(hosts->size());
    auto composed = manager.Compose(request);
    if (!composed.ok()) return {composed.status(), 0};
    storage_system_by_job[job.env.at("SLURM_JOB_ID")] = composed->system_uri;
    auto instance =
        orchestrator.Start("beeond-job" + job.env.at("SLURM_JOB_ID"), *hosts);
    if (!instance.ok()) return {instance.status(), 0};
    return {Status::Ok(), instance->assemble_duration};
  });
  slurm.AddEpilog([&](const slurmsim::Job& job, const std::string& hostname)
                      -> slurmsim::ScriptResult {
    if (!job.HasConstraint("beeond")) return {};
    const auto hosts = ExpandHostlist(job.env.at("SLURM_NODELIST"));
    if (!hosts.ok()) return {hosts.status(), 0};
    if (hostname != LowestHost(*hosts)) return {Status::Ok(), Millis(40)};
    const Status stopped = orchestrator.Stop("beeond-job" + job.env.at("SLURM_JOB_ID"));
    if (!stopped.ok()) return {stopped, 0};
    const std::string system_uri = storage_system_by_job[job.env.at("SLURM_JOB_ID")];
    return {manager.Decompose(system_uri), Seconds(2.0)};
  });

  // Job 1: the whole machine.
  slurmsim::JobSpec job_spec;
  job_spec.node_count = 4;
  job_spec.constraints = {"beeond"};
  auto job1 = slurm.Submit(job_spec);
  ASSERT_TRUE(job1.ok()) << job1.status().ToString();

  // While running: all four NVMe blocks composed, mirrored into the pool.
  EXPECT_TRUE(ofmf.composition().FreeBlockUris().empty());
  for (const cluster::PooledDevice& device : machine.pool().Devices()) {
    EXPECT_EQ(device.claimed_by, "ofmf-composition") << device.id;
  }
  const std::string system_uri =
      storage_system_by_job[std::to_string(*job1)];
  const json::Json system = *client.Get(system_uri);
  EXPECT_DOUBLE_EQ(system.at("Oem").at("Ofmf").GetDouble("StorageGiB"), 4 * 894.0);

  // Completion decomposes; blocks return for the next job.
  ASSERT_TRUE(slurm.Complete(*job1).ok());
  EXPECT_EQ(ofmf.composition().FreeBlockUris().size(), 4u);
  for (const cluster::PooledDevice& device : machine.pool().Devices()) {
    EXPECT_TRUE(device.claimed_by.empty()) << device.id;
  }

  // Job 2 reuses the same pool immediately.
  auto job2 = slurm.Submit(job_spec);
  ASSERT_TRUE(job2.ok());
  EXPECT_TRUE(ofmf.composition().FreeBlockUris().empty());
  ASSERT_TRUE(slurm.Complete(*job2).ok());
}

// ---------------------------------------------------------------------------
// Scenario 5: experiment harness sanity under the full stack (ties the
// workloads module to the integration level).
// ---------------------------------------------------------------------------
TEST(EndToEnd, ExperimentHarnessMatchesDirectOrchestration) {
  workloads::ExperimentConfig config;
  config.hpl_nodes = 4;
  config.repetitions = 3;
  const auto result =
      workloads::RunExperiment(workloads::ExperimentClass::kMatchingBeeond, config);
  EXPECT_EQ(result.allocation_nodes, 8);
  EXPECT_GT(result.assemble_seconds, 0.0);
  EXPECT_LT(result.assemble_seconds, 3.0);
  EXPECT_GT(result.ci.mean, 0.0);
}

}  // namespace
}  // namespace ofmf
