#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "json/merge_patch.hpp"
#include "json/parse.hpp"
#include "json/pointer.hpp"
#include "json/schema.hpp"
#include "json/serialize.hpp"
#include "json/value.hpp"

namespace ofmf::json {
namespace {

using ::testing::HasSubstr;

// ----------------------------------------------------------------- Value ---

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Json().is_null());
  EXPECT_TRUE(Json(true).is_bool());
  EXPECT_TRUE(Json(3).is_int());
  EXPECT_TRUE(Json(3.5).is_double());
  EXPECT_TRUE(Json(3).is_number());
  EXPECT_TRUE(Json("x").is_string());
  EXPECT_TRUE(Json::MakeArray().is_array());
  EXPECT_TRUE(Json::MakeObject().is_object());
  EXPECT_DOUBLE_EQ(Json(3).as_double(), 3.0);
}

TEST(ValueTest, ObjectPreservesInsertionOrder) {
  Json obj = Json::Obj({{"z", 1}, {"a", 2}, {"m", 3}});
  std::vector<std::string> keys;
  for (const auto& [k, v] : obj.as_object()) {
    (void)v;
    keys.push_back(k);
  }
  EXPECT_THAT(keys, ::testing::ElementsAre("z", "a", "m"));
}

TEST(ValueTest, ObjectSetOverwritesInPlace) {
  Json obj = Json::Obj({{"a", 1}, {"b", 2}});
  obj.as_object().Set("a", 10);
  EXPECT_EQ(obj.at("a").as_int(), 10);
  EXPECT_EQ(obj.as_object().size(), 2u);
}

TEST(ValueTest, EqualityIsOrderInsensitiveForObjects) {
  EXPECT_EQ(Json::Obj({{"a", 1}, {"b", 2}}), Json::Obj({{"b", 2}, {"a", 1}}));
  EXPECT_NE(Json::Obj({{"a", 1}}), Json::Obj({{"a", 2}}));
}

TEST(ValueTest, AtReturnsNullForMissing) {
  const Json obj = Json::Obj({{"a", 1}});
  EXPECT_TRUE(obj.at("missing").is_null());
  EXPECT_TRUE(Json(5).at("anything").is_null());
}

TEST(ValueTest, IndexOperatorInsertsNull) {
  Json obj = Json::MakeObject();
  obj["new"] = "value";
  EXPECT_EQ(obj.at("new").as_string(), "value");
}

TEST(ValueTest, GettersWithFallback) {
  const Json obj = Json::Obj({{"s", "str"}, {"i", 9}, {"d", 2.5}, {"b", true}});
  EXPECT_EQ(obj.GetString("s"), "str");
  EXPECT_EQ(obj.GetString("nope", "fb"), "fb");
  EXPECT_EQ(obj.GetInt("i"), 9);
  EXPECT_EQ(obj.GetInt("d"), 2);  // double truncates
  EXPECT_DOUBLE_EQ(obj.GetDouble("d"), 2.5);
  EXPECT_DOUBLE_EQ(obj.GetDouble("i"), 9.0);
  EXPECT_TRUE(obj.GetBool("b"));
  EXPECT_TRUE(obj.GetBool("nope", true));
}

// ----------------------------------------------------------------- Parse ---

TEST(ParseTest, Scalars) {
  EXPECT_TRUE(Parse("null")->is_null());
  EXPECT_EQ(Parse("true")->as_bool(), true);
  EXPECT_EQ(Parse("false")->as_bool(), false);
  EXPECT_EQ(Parse("42")->as_int(), 42);
  EXPECT_EQ(Parse("-17")->as_int(), -17);
  EXPECT_DOUBLE_EQ(Parse("3.25")->as_double(), 3.25);
  EXPECT_DOUBLE_EQ(Parse("1e3")->as_double(), 1000.0);
  EXPECT_DOUBLE_EQ(Parse("-2.5E-2")->as_double(), -0.025);
  EXPECT_EQ(Parse("\"hi\"")->as_string(), "hi");
}

TEST(ParseTest, NestedStructure) {
  auto doc = Parse(R"({"a":[1,2,{"b":null}],"c":{"d":true}})");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->at("a").as_array().size(), 3u);
  EXPECT_TRUE(doc->at("a").as_array()[2].at("b").is_null());
  EXPECT_TRUE(doc->at("c").at("d").as_bool());
}

TEST(ParseTest, StringEscapes) {
  EXPECT_EQ(Parse(R"("a\"b\\c\/d\n\t")")->as_string(), "a\"b\\c/d\n\t");
  EXPECT_EQ(Parse(R"("A")")->as_string(), "A");
  EXPECT_EQ(Parse(R"("é")")->as_string(), "\xC3\xA9");          // é
  EXPECT_EQ(Parse(R"("中")")->as_string(), "\xE4\xB8\xAD");      // 中
  EXPECT_EQ(Parse(R"("😀")")->as_string(), "\xF0\x9F\x98\x80");  // 😀
}

TEST(ParseTest, WhitespaceTolerant) {
  auto doc = Parse(" \n\t{ \"a\" : [ 1 , 2 ] } \r\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->at("a").as_array().size(), 2u);
}

TEST(ParseTest, IntegerOverflowBecomesDouble) {
  auto doc = Parse("99999999999999999999999999");
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc->is_double());
  EXPECT_GT(doc->as_double(), 1e25);
}

struct BadJsonCase {
  const char* name;
  const char* text;
};

class ParseRejects : public ::testing::TestWithParam<BadJsonCase> {};

TEST_P(ParseRejects, Input) {
  auto result = Parse(GetParam().text);
  EXPECT_FALSE(result.ok()) << GetParam().text;
  EXPECT_EQ(result.status().code(), ErrorCode::kInvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, ParseRejects,
    ::testing::Values(
        BadJsonCase{"empty", ""}, BadJsonCase{"bare_word", "nope"},
        BadJsonCase{"trailing", "1 2"}, BadJsonCase{"trailing_comma_obj", "{\"a\":1,}"},
        BadJsonCase{"trailing_comma_arr", "[1,]"}, BadJsonCase{"unclosed_obj", "{\"a\":1"},
        BadJsonCase{"unclosed_str", "\"abc"}, BadJsonCase{"leading_zero", "012"},
        BadJsonCase{"bare_minus", "-"}, BadJsonCase{"dot_no_digits", "1."},
        BadJsonCase{"bad_escape", "\"\\x\""}, BadJsonCase{"control_char", "\"a\nb\""},
        BadJsonCase{"lone_high_surrogate", R"("\ud83d")"},
        BadJsonCase{"lone_low_surrogate", R"("\ude00")"},
        BadJsonCase{"colon_missing", "{\"a\" 1}"},
        BadJsonCase{"nonstring_key", "{1:2}"}),
    [](const auto& param_info) { return param_info.param.name; });

TEST(ParseTest, DepthLimitEnforced) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  for (int i = 0; i < 200; ++i) deep += "]";
  ParseOptions opts;
  opts.max_depth = 64;
  EXPECT_FALSE(Parse(deep, opts).ok());
  // And within the limit it parses.
  std::string shallow = "[[[[[1]]]]]";
  EXPECT_TRUE(Parse(shallow, opts).ok());
}

// ------------------------------------------------------------- Serialize ---

TEST(SerializeTest, CompactForms) {
  EXPECT_EQ(Serialize(Json()), "null");
  EXPECT_EQ(Serialize(Json(true)), "true");
  EXPECT_EQ(Serialize(Json(-5)), "-5");
  EXPECT_EQ(Serialize(Json("a\"b")), "\"a\\\"b\"");
  EXPECT_EQ(Serialize(Json::Arr({1, 2})), "[1,2]");
  EXPECT_EQ(Serialize(Json::Obj({{"a", 1}})), "{\"a\":1}");
  EXPECT_EQ(Serialize(Json::MakeObject()), "{}");
  EXPECT_EQ(Serialize(Json::MakeArray()), "[]");
}

TEST(SerializeTest, DoublesRoundTripAndStayDoubles) {
  for (double v : {0.1, 1.0 / 3.0, 1e-300, 123456.789, -2.0}) {
    const std::string s = Serialize(Json(v));
    auto parsed = Parse(s);
    ASSERT_TRUE(parsed.ok()) << s;
    EXPECT_TRUE(parsed->is_double()) << s;
    EXPECT_DOUBLE_EQ(parsed->as_double(), v) << s;
  }
}

TEST(SerializeTest, NanAndInfBecomeNull) {
  EXPECT_EQ(Serialize(Json(std::nan(""))), "null");
  EXPECT_EQ(Serialize(Json(std::numeric_limits<double>::infinity())), "null");
}

TEST(SerializeTest, PrettyIsIndentedAndReparses) {
  const Json doc = Json::Obj({{"a", Json::Arr({1, 2})}, {"b", Json::Obj({{"c", true}})}});
  const std::string pretty = SerializePretty(doc);
  EXPECT_THAT(pretty, HasSubstr("\n  \"a\": [\n"));
  auto round = Parse(pretty);
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(*round, doc);
}

TEST(SerializeTest, ControlCharsEscaped) {
  EXPECT_EQ(Serialize(Json(std::string("\x01"))), "\"\\u0001\"");
  EXPECT_EQ(QuoteString("tab\there"), "\"tab\\there\"");
}

// Property: random documents round-trip byte-compare after one normalization.
Json RandomJson(Rng& rng, int depth) {
  const int pick = depth > 3 ? static_cast<int>(rng.UniformInt(0, 3))
                             : static_cast<int>(rng.UniformInt(0, 5));
  switch (pick) {
    case 0: return Json();
    case 1: return Json(rng.Chance(0.5));
    case 2: return Json(static_cast<std::int64_t>(rng.NextU64() >> 12));
    case 3: {
      std::string s;
      const std::size_t len = rng.UniformInt(0, 12);
      for (std::size_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>(rng.UniformInt(32, 126)));
      }
      return Json(std::move(s));
    }
    case 4: {
      Array arr;
      const std::size_t n = rng.UniformInt(0, 4);
      for (std::size_t i = 0; i < n; ++i) arr.push_back(RandomJson(rng, depth + 1));
      return Json(std::move(arr));
    }
    default: {
      Object obj;
      const std::size_t n = rng.UniformInt(0, 4);
      for (std::size_t i = 0; i < n; ++i) {
        obj.Set("k" + std::to_string(i), RandomJson(rng, depth + 1));
      }
      return Json(std::move(obj));
    }
  }
}

class JsonRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(JsonRoundTrip, SerializeParseSerializeIsStable) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  for (int i = 0; i < 50; ++i) {
    const Json doc = RandomJson(rng, 0);
    const std::string once = Serialize(doc);
    auto parsed = Parse(once);
    ASSERT_TRUE(parsed.ok()) << once;
    EXPECT_EQ(*parsed, doc);
    EXPECT_EQ(Serialize(*parsed), once);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTrip, ::testing::Range(1, 9));

// --------------------------------------------------------------- Pointer ---

TEST(PointerTest, ResolveBasics) {
  auto doc = *Parse(R"({"Members":[{"Name":"a"},{"Name":"b"}],"x~y":1,"a/b":2})");
  EXPECT_EQ(ResolvePointer(doc, "/Members/1/Name")->as_string(), "b");
  EXPECT_EQ(ResolvePointer(doc, "/x~0y")->as_int(), 1);
  EXPECT_EQ(ResolvePointer(doc, "/a~1b")->as_int(), 2);
  EXPECT_EQ(ResolvePointer(doc, "")->at("x~y").as_int(), 1);  // whole doc
}

TEST(PointerTest, ResolveErrors) {
  auto doc = *Parse(R"({"a":[1]})");
  EXPECT_EQ(ResolvePointer(doc, "/missing").status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(ResolvePointer(doc, "/a/5").status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(ResolvePointer(doc, "/a/x").status().code(), ErrorCode::kNotFound);
  EXPECT_FALSE(SplitPointer("no-slash").ok());
  EXPECT_EQ(ResolvePointerRef(doc, "/a/0/deeper"), nullptr);
}

TEST(PointerTest, SetCreatesIntermediateObjects) {
  Json doc = Json::MakeObject();
  ASSERT_TRUE(SetPointer(doc, "/a/b/c", 42).ok());
  EXPECT_EQ(ResolvePointer(doc, "/a/b/c")->as_int(), 42);
}

TEST(PointerTest, SetArrayAppendAndIndex) {
  Json doc = *Parse(R"({"arr":[1,2]})");
  ASSERT_TRUE(SetPointer(doc, "/arr/-", 3).ok());
  ASSERT_TRUE(SetPointer(doc, "/arr/0", 9).ok());
  EXPECT_EQ(Serialize(doc.at("arr")), "[9,2,3]");
  EXPECT_FALSE(SetPointer(doc, "/arr/9", 0).ok());
}

TEST(PointerTest, SetWholeDocument) {
  Json doc = Json(1);
  ASSERT_TRUE(SetPointer(doc, "", Json("whole")).ok());
  EXPECT_EQ(doc.as_string(), "whole");
}

TEST(PointerTest, RemoveMemberAndElement) {
  Json doc = *Parse(R"({"a":1,"arr":[1,2,3]})");
  ASSERT_TRUE(RemovePointer(doc, "/a").ok());
  EXPECT_FALSE(doc.Contains("a"));
  ASSERT_TRUE(RemovePointer(doc, "/arr/1").ok());
  EXPECT_EQ(Serialize(doc.at("arr")), "[1,3]");
  EXPECT_FALSE(RemovePointer(doc, "/arr/7").ok());
  EXPECT_FALSE(RemovePointer(doc, "").ok());
}

TEST(PointerTest, EscapeTokenInverse) {
  EXPECT_EQ(EscapeToken("a/b~c"), "a~1b~0c");
}

// Property: every leaf of a random document is reachable by the pointer
// built from its path, including keys needing ~0/~1 escapes.
void EnumerateLeaves(const Json& node, const std::string& pointer,
                     std::vector<std::pair<std::string, Json>>& leaves) {
  if (node.is_object()) {
    for (const auto& [k, v] : node.as_object()) {
      EnumerateLeaves(v, pointer + "/" + EscapeToken(k), leaves);
    }
  } else if (node.is_array()) {
    const auto& arr = node.as_array();
    for (std::size_t i = 0; i < arr.size(); ++i) {
      EnumerateLeaves(arr[i], pointer + "/" + std::to_string(i), leaves);
    }
  } else {
    leaves.emplace_back(pointer, node);
  }
}

class PointerProperty : public ::testing::TestWithParam<int> {};

TEST_P(PointerProperty, EveryLeafResolvesByItsPointer) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  for (int round = 0; round < 20; ++round) {
    Json doc = RandomJson(rng, 0);
    // Add pathological keys at the top level when it's an object.
    if (doc.is_object()) {
      doc.as_object().Set("a/b", Json(1));
      doc.as_object().Set("t~ilde", Json(2));
      doc.as_object().Set("", Json(3));  // empty key is legal JSON
    }
    std::vector<std::pair<std::string, Json>> leaves;
    EnumerateLeaves(doc, "", leaves);
    for (const auto& [pointer, expected] : leaves) {
      const Json* found = ResolvePointerRef(doc, pointer);
      ASSERT_NE(found, nullptr) << pointer << " in " << Serialize(doc);
      EXPECT_EQ(*found, expected) << pointer;
    }
  }
}

TEST_P(PointerProperty, SetThenResolveRoundTrips) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  for (int round = 0; round < 30; ++round) {
    Json doc = Json::MakeObject();
    // Random object path of depth 1-4.
    std::string pointer;
    const int depth = 1 + static_cast<int>(rng.UniformInt(0, 3));
    for (int d = 0; d < depth; ++d) {
      pointer += "/k" + std::to_string(rng.UniformInt(0, 5));
    }
    const Json value = RandomJson(rng, 2);
    ASSERT_TRUE(SetPointer(doc, pointer, value).ok()) << pointer;
    auto resolved = ResolvePointer(doc, pointer);
    ASSERT_TRUE(resolved.ok()) << pointer;
    EXPECT_EQ(*resolved, value) << pointer;
    // Remove and verify gone.
    ASSERT_TRUE(RemovePointer(doc, pointer).ok()) << pointer;
    EXPECT_FALSE(ResolvePointer(doc, pointer).ok()) << pointer;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PointerProperty, ::testing::Range(1, 6));

// ----------------------------------------------------------- Merge patch ---

TEST(MergePatchTest, Rfc7386Examples) {
  Json target = *Parse(R"({"a":"b","c":{"d":"e","f":"g"}})");
  MergePatch(target, *Parse(R"({"a":"z","c":{"f":null}})"));
  EXPECT_EQ(target, *Parse(R"({"a":"z","c":{"d":"e"}})"));
}

TEST(MergePatchTest, NonObjectPatchReplaces) {
  Json target = *Parse(R"({"a":1})");
  MergePatch(target, Json::Arr({1, 2}));
  EXPECT_TRUE(target.is_array());
}

TEST(MergePatchTest, PatchIntoScalarCreatesObject) {
  Json target = Json(5);
  MergePatch(target, *Parse(R"({"a":1})"));
  EXPECT_EQ(target, *Parse(R"({"a":1})"));
}

TEST(MergePatchTest, DiffThenPatchReachesTarget) {
  Rng rng(404);
  for (int i = 0; i < 40; ++i) {
    Json from = RandomJson(rng, 1);
    Json to = RandomJson(rng, 1);
    if (!from.is_object()) from = Json::Obj({{"v", from}});
    if (!to.is_object()) to = Json::Obj({{"v", to}});
    // Merge-patch cannot represent null members; scrub them from `to`.
    // (RandomJson only nests under object/array; scrub top level members.)
    std::vector<std::string> null_keys;
    for (auto& [k, v] : to.as_object()) {
      if (v.is_null()) null_keys.push_back(k);
    }
    for (const auto& k : null_keys) to.as_object().Erase(k);
    const Json patch = DiffToMergePatch(from, to);
    Json applied = from;
    MergePatch(applied, patch);
    EXPECT_EQ(applied, to) << Serialize(from) << " + " << Serialize(patch);
  }
}

// ---------------------------------------------------------------- Schema ---

Json StorageSchema() {
  return *Parse(R"({
    "type": "object",
    "required": ["Name", "CapacityBytes"],
    "properties": {
      "Name": {"type": "string", "minLength": 1, "maxLength": 64},
      "CapacityBytes": {"type": "integer", "minimum": 0},
      "Status": {"$ref": "#/$defs/Status"},
      "AccessModes": {
        "type": "array",
        "items": {"type": "string", "enum": ["Read", "Write", "ReadWrite"]},
        "minItems": 1, "maxItems": 3
      },
      "Id": {"type": "string", "readonly": true},
      "Utilization": {"type": "number", "minimum": 0, "maximum": 1}
    },
    "additionalProperties": false,
    "$defs": {
      "Status": {
        "type": "object",
        "properties": {
          "State": {"type": "string", "enum": ["Enabled", "Disabled", "Absent"]},
          "Health": {"type": "string"}
        }
      }
    }
  })");
}

TEST(SchemaTest, AcceptsValidDocument) {
  SchemaValidator validator(StorageSchema());
  const Json doc = *Parse(R"({
    "Name": "pool0", "CapacityBytes": 1024,
    "Status": {"State": "Enabled", "Health": "OK"},
    "AccessModes": ["Read", "Write"], "Utilization": 0.5
  })");
  EXPECT_TRUE(validator.Check(doc).ok()) << validator.Check(doc).ToString();
}

TEST(SchemaTest, ReportsEveryViolation) {
  SchemaValidator validator(StorageSchema());
  const Json doc = *Parse(R"({
    "CapacityBytes": -5,
    "Status": {"State": "Bogus"},
    "AccessModes": [],
    "Utilization": 2.0,
    "Extra": 1
  })");
  const auto errors = validator.Validate(doc);
  // Missing Name, negative capacity, bad enum, empty array, >max, extra prop.
  EXPECT_GE(errors.size(), 6u);
}

TEST(SchemaTest, TypeMismatchMessages) {
  SchemaValidator validator(*Parse(R"({"type":"integer"})"));
  const Status status = validator.Check(Json("nope"));
  EXPECT_FALSE(status.ok());
  EXPECT_THAT(status.message(), HasSubstr("expected type"));
}

TEST(SchemaTest, TypeArrayAllowsAlternatives) {
  SchemaValidator validator(*Parse(R"({"type":["string","null"]})"));
  EXPECT_TRUE(validator.Check(Json("x")).ok());
  EXPECT_TRUE(validator.Check(Json()).ok());
  EXPECT_FALSE(validator.Check(Json(5)).ok());
}

TEST(SchemaTest, IntegerVersusNumber) {
  SchemaValidator int_validator(*Parse(R"({"type":"integer"})"));
  EXPECT_TRUE(int_validator.Check(Json(3)).ok());
  EXPECT_FALSE(int_validator.Check(Json(3.5)).ok());
  SchemaValidator num_validator(*Parse(R"({"type":"number"})"));
  EXPECT_TRUE(num_validator.Check(Json(3)).ok());
  EXPECT_TRUE(num_validator.Check(Json(3.5)).ok());
}

TEST(SchemaTest, PatternMatching) {
  SchemaValidator validator(*Parse(R"({"type":"string","pattern":"^node[0-9]+$"})"));
  EXPECT_TRUE(validator.Check(Json("node001")).ok());
  EXPECT_FALSE(validator.Check(Json("login")).ok());
}

TEST(SchemaTest, Combinators) {
  SchemaValidator any(*Parse(R"({"anyOf":[{"type":"string"},{"type":"integer"}]})"));
  EXPECT_TRUE(any.Check(Json("s")).ok());
  EXPECT_TRUE(any.Check(Json(1)).ok());
  EXPECT_FALSE(any.Check(Json(1.5)).ok());

  SchemaValidator one(*Parse(R"({"oneOf":[{"type":"number"},{"type":"integer"}]})"));
  EXPECT_FALSE(one.Check(Json(1)).ok());   // matches both branches
  EXPECT_TRUE(one.Check(Json(1.5)).ok());  // matches only "number"

  SchemaValidator all(*Parse(R"({"allOf":[{"type":"integer"},{"minimum":5}]})"));
  EXPECT_TRUE(all.Check(Json(7)).ok());
  EXPECT_FALSE(all.Check(Json(3)).ok());

  SchemaValidator nots(*Parse(R"({"not":{"type":"null"}})"));
  EXPECT_TRUE(nots.Check(Json(1)).ok());
  EXPECT_FALSE(nots.Check(Json()).ok());
}

TEST(SchemaTest, ConstAndMultipleOf) {
  SchemaValidator c(*Parse(R"({"const":"fixed"})"));
  EXPECT_TRUE(c.Check(Json("fixed")).ok());
  EXPECT_FALSE(c.Check(Json("other")).ok());
  SchemaValidator m(*Parse(R"({"type":"integer","multipleOf":8})"));
  EXPECT_TRUE(m.Check(Json(64)).ok());
  EXPECT_FALSE(m.Check(Json(63)).ok());
}

TEST(SchemaTest, BooleanSchemas) {
  EXPECT_TRUE(SchemaValidator(Json(true)).Check(Json(123)).ok());
  EXPECT_FALSE(SchemaValidator(Json(false)).Check(Json(123)).ok());
}

TEST(SchemaTest, UnresolvableRefIsError) {
  SchemaValidator validator(*Parse(R"({"$ref":"#/$defs/Missing"})"));
  EXPECT_FALSE(validator.Check(Json(1)).ok());
}

TEST(SchemaTest, ReadOnlyViolationsDetected) {
  SchemaValidator validator(StorageSchema());
  const Json patch = *Parse(R"({"Name":"ok","Id":"not-allowed"})");
  const auto violations = validator.ReadOnlyViolations(patch);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].pointer, "/Id");
  EXPECT_TRUE(validator.ReadOnlyViolations(*Parse(R"({"Name":"ok"})")).empty());
}

TEST(SchemaTest, MinProperties) {
  SchemaValidator validator(*Parse(R"({"type":"object","minProperties":2})"));
  EXPECT_FALSE(validator.Check(*Parse(R"({"a":1})")).ok());
  EXPECT_TRUE(validator.Check(*Parse(R"({"a":1,"b":2})")).ok());
}

TEST(SchemaTest, ExclusiveBounds) {
  SchemaValidator validator(
      *Parse(R"({"type":"number","exclusiveMinimum":0,"exclusiveMaximum":10})"));
  EXPECT_FALSE(validator.Check(Json(0)).ok());
  EXPECT_TRUE(validator.Check(Json(5)).ok());
  EXPECT_FALSE(validator.Check(Json(10)).ok());
}

}  // namespace
}  // namespace ofmf::json
