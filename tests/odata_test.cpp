#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include "json/parse.hpp"
#include "json/serialize.hpp"
#include "odata/annotations.hpp"
#include "odata/filter.hpp"
#include "odata/query.hpp"

namespace ofmf::odata {
namespace {

using json::Json;
using json::Parse;
using json::Serialize;
using ::testing::HasSubstr;

// ----------------------------------------------------------- Annotations ---

TEST(AnnotationsTest, StampPutsControlInfoFirst) {
  Json doc = Json::Obj({{"Name", "sys0"}, {"Id", "0"}});
  Stamp(doc, "/redfish/v1/Systems/0", "#ComputerSystem.v1_20_0.ComputerSystem", "W/\"3\"");
  const auto& obj = doc.as_object();
  auto it = obj.begin();
  EXPECT_EQ(it->first, "@odata.id");
  EXPECT_EQ((it + 1)->first, "@odata.type");
  EXPECT_EQ((it + 2)->first, "@odata.etag");
  EXPECT_EQ(doc.GetString("@odata.id"), "/redfish/v1/Systems/0");
  EXPECT_EQ(doc.GetString("Name"), "sys0");
}

TEST(AnnotationsTest, RestampReplacesOldAnnotations) {
  Json doc = Json::Obj({{"Name", "x"}});
  Stamp(doc, "/a", "#T.v1_0_0.T", "W/\"1\"");
  Stamp(doc, "/a", "#T.v1_0_0.T", "W/\"2\"");
  EXPECT_EQ(doc.GetString("@odata.etag"), "W/\"2\"");
  EXPECT_EQ(doc.as_object().size(), 4u);  // no duplicates
}

TEST(AnnotationsTest, StampOnNonObjectCreatesObject) {
  Json doc = Json(42);
  Stamp(doc, "/x", "#T.v1_0_0.T", "");
  EXPECT_TRUE(doc.is_object());
  EXPECT_FALSE(doc.Contains("@odata.etag"));  // empty etag omitted
}

TEST(AnnotationsTest, IdOfAndRefs) {
  EXPECT_EQ(IdOf(Ref("/redfish/v1")), "/redfish/v1");
  EXPECT_EQ(IdOf(Json(3)), "");
  const Json refs = RefArray({"/a", "/b"});
  ASSERT_EQ(refs.as_array().size(), 2u);
  EXPECT_EQ(refs.as_array()[1].GetString("@odata.id"), "/b");
  EXPECT_EQ(TypeName("Fabric", "v1_3_0", "Fabric"), "#Fabric.v1_3_0.Fabric");
}

// ----------------------------------------------------------------- Query ---

std::map<std::string, std::string> Q(
    std::initializer_list<std::pair<const std::string, std::string>> items) {
  return std::map<std::string, std::string>(items);
}

TEST(QueryTest, ParseAllOptions) {
  auto opts = ParseQueryOptions(
      Q({{"$top", "5"}, {"$skip", "10"}, {"$select", "Name, Status"},
         {"$expand", "."}, {"$filter", "Name eq 'x'"}, {"unknown", "ignored"}}));
  ASSERT_TRUE(opts.ok());
  EXPECT_EQ(*opts->top, 5u);
  EXPECT_EQ(opts->skip, 10u);
  EXPECT_THAT(opts->select, ::testing::ElementsAre("Name", "Status"));
  EXPECT_TRUE(opts->expand);
  EXPECT_EQ(opts->filter, "Name eq 'x'");
}

TEST(QueryTest, MalformedCountsRejected) {
  EXPECT_FALSE(ParseQueryOptions(Q({{"$top", "abc"}})).ok());
  EXPECT_FALSE(ParseQueryOptions(Q({{"$skip", "-1"}})).ok());
}

Json Collection(int n) {
  json::Array members;
  for (int i = 0; i < n; ++i) members.push_back(Ref("/m/" + std::to_string(i)));
  return Json::Obj({{"Members", Json(std::move(members))}});
}

TEST(QueryTest, PagingWindowAndNextLink) {
  Json c = Collection(10);
  QueryOptions opts;
  opts.skip = 2;
  opts.top = 3;
  ApplyPaging(c, opts, "/redfish/v1/Systems");
  EXPECT_EQ(c.GetInt("Members@odata.count"), 10);
  ASSERT_EQ(c.at("Members").as_array().size(), 3u);
  EXPECT_EQ(c.at("Members").as_array()[0].GetString("@odata.id"), "/m/2");
  EXPECT_EQ(c.GetString("@odata.nextLink"), "/redfish/v1/Systems?$skip=5&$top=3");
}

TEST(QueryTest, PagingLastPageHasNoNextLink) {
  Json c = Collection(4);
  QueryOptions opts;
  opts.skip = 2;
  opts.top = 5;
  ApplyPaging(c, opts, "/u");
  EXPECT_EQ(c.at("Members").as_array().size(), 2u);
  EXPECT_FALSE(c.Contains("@odata.nextLink"));
}

TEST(QueryTest, PagingSkipBeyondEndYieldsEmpty) {
  Json c = Collection(3);
  QueryOptions opts;
  opts.skip = 7;
  ApplyPaging(c, opts, "/u");
  EXPECT_TRUE(c.at("Members").as_array().empty());
  EXPECT_EQ(c.GetInt("Members@odata.count"), 3);
}

TEST(QueryTest, PagingTopZeroIsEmptyPageWithoutNextLink) {
  // $top=0 is a legal "count only" probe: zero members, the true count, and
  // NO nextLink — a link would never advance $skip and loop the client.
  Json c = Collection(5);
  QueryOptions opts;
  opts.top = 0;
  ApplyPaging(c, opts, "/u");
  EXPECT_TRUE(c.at("Members").as_array().empty());
  EXPECT_EQ(c.GetInt("Members@odata.count"), 5);
  EXPECT_FALSE(c.Contains("@odata.nextLink"));
}

TEST(QueryTest, PagingTopZeroWithSkipStillEmptyAndCounted) {
  Json c = Collection(5);
  QueryOptions opts;
  opts.top = 0;
  opts.skip = 3;
  ApplyPaging(c, opts, "/u");
  EXPECT_TRUE(c.at("Members").as_array().empty());
  EXPECT_EQ(c.GetInt("Members@odata.count"), 5);
  EXPECT_FALSE(c.Contains("@odata.nextLink"));
}

TEST(QueryTest, PagingSkipExactlyAtEndYieldsEmptyNoNextLink) {
  Json c = Collection(4);
  QueryOptions opts;
  opts.skip = 4;  // == size: boundary, not "past" it
  opts.top = 2;
  ApplyPaging(c, opts, "/u");
  EXPECT_TRUE(c.at("Members").as_array().empty());
  EXPECT_EQ(c.GetInt("Members@odata.count"), 4);
  EXPECT_FALSE(c.Contains("@odata.nextLink"));
}

TEST(QueryTest, PagingNextLinkStaysValidWhenCollectionShrinks) {
  // Page 1 of a 6-member collection hands out $skip=2&$top=2; before the
  // client follows it, the collection shrinks to 3 members (systems were
  // decomposed). The stale link must still produce a sane page: the current
  // count, the one remaining member in the window, and no further link.
  Json page1 = Collection(6);
  QueryOptions opts;
  opts.top = 2;
  ApplyPaging(page1, opts, "/u");
  EXPECT_EQ(page1.GetString("@odata.nextLink"), "/u?$skip=2&$top=2");

  Json shrunk = Collection(3);
  QueryOptions stale;
  stale.skip = 2;
  stale.top = 2;
  ApplyPaging(shrunk, stale, "/u");
  EXPECT_EQ(shrunk.GetInt("Members@odata.count"), 3);
  ASSERT_EQ(shrunk.at("Members").as_array().size(), 1u);
  EXPECT_EQ(shrunk.at("Members").as_array()[0].GetString("@odata.id"), "/m/2");
  EXPECT_FALSE(shrunk.Contains("@odata.nextLink"));
}

TEST(QueryTest, PagingNextLinkChainCoversGrowingCollection) {
  // The collection grows between pages; following the chain never repeats a
  // member and each response's count reflects the collection it was cut from.
  QueryOptions opts;
  opts.top = 2;
  Json page1 = Collection(4);
  ApplyPaging(page1, opts, "/u");
  ASSERT_EQ(page1.at("Members").as_array().size(), 2u);
  EXPECT_EQ(page1.GetInt("Members@odata.count"), 4);

  Json page2 = Collection(5);  // one member appended since page 1
  QueryOptions next;
  next.skip = 2;
  next.top = 2;
  ApplyPaging(page2, next, "/u");
  ASSERT_EQ(page2.at("Members").as_array().size(), 2u);
  EXPECT_EQ(page2.at("Members").as_array()[0].GetString("@odata.id"), "/m/2");
  EXPECT_EQ(page2.GetInt("Members@odata.count"), 5);
  EXPECT_EQ(page2.GetString("@odata.nextLink"), "/u?$skip=4&$top=2");
}

TEST(QueryTest, NoOptionsStillStampsCount) {
  Json c = Collection(2);
  ApplyPaging(c, QueryOptions{}, "/u");
  EXPECT_EQ(c.GetInt("Members@odata.count"), 2);
  EXPECT_EQ(c.at("Members").as_array().size(), 2u);
}

TEST(QueryTest, SelectKeepsControlInfo) {
  Json doc = *Parse(R"({"@odata.id":"/x","@odata.type":"#T","Name":"n","Big":1,"Other":2})");
  ApplySelect(doc, {"Name"});
  EXPECT_TRUE(doc.Contains("@odata.id"));
  EXPECT_TRUE(doc.Contains("Name"));
  EXPECT_FALSE(doc.Contains("Big"));
  EXPECT_FALSE(doc.Contains("Other"));
}

TEST(QueryTest, EmptySelectIsNoOp) {
  Json doc = *Parse(R"({"a":1,"b":2})");
  ApplySelect(doc, {});
  EXPECT_EQ(doc.as_object().size(), 2u);
}

TEST(QueryTest, ExpandReplacesRefsAndToleratesFailures) {
  Json c = Collection(3);
  ApplyExpand(c, [](const std::string& uri) -> Result<Json> {
    if (uri == "/m/1") return Status::NotFound("gone");
    return Json::Obj({{"@odata.id", uri}, {"Loaded", true}});
  });
  const auto& members = c.at("Members").as_array();
  EXPECT_TRUE(members[0].GetBool("Loaded"));
  EXPECT_FALSE(members[1].Contains("Loaded"));  // stayed a reference
  EXPECT_TRUE(members[2].GetBool("Loaded"));
}

// ---------------------------------------------------------------- Filter ---

const Json kDoc = *Parse(R"({
  "Name": "node007",
  "CapacityGiB": 894,
  "Enabled": true,
  "Status": {"State": "Enabled", "HealthRollup": "OK"},
  "Utilization": 0.25
})");

bool Match(const std::string& expr) {
  auto filter = Filter::Compile(expr);
  EXPECT_TRUE(filter.ok()) << expr << ": " << filter.status().ToString();
  return filter.ok() && filter->Matches(kDoc);
}

TEST(FilterTest, Comparisons) {
  EXPECT_TRUE(Match("Name eq 'node007'"));
  EXPECT_FALSE(Match("Name eq 'other'"));
  EXPECT_TRUE(Match("Name ne 'other'"));
  EXPECT_TRUE(Match("CapacityGiB gt 800"));
  EXPECT_FALSE(Match("CapacityGiB gt 894"));
  EXPECT_TRUE(Match("CapacityGiB ge 894"));
  EXPECT_TRUE(Match("CapacityGiB lt 1000"));
  EXPECT_TRUE(Match("CapacityGiB le 894"));
  EXPECT_TRUE(Match("Utilization lt 0.5"));
  EXPECT_TRUE(Match("Enabled eq true"));
  EXPECT_FALSE(Match("Enabled eq false"));
}

TEST(FilterTest, NestedPathNavigation) {
  EXPECT_TRUE(Match("Status/State eq 'Enabled'"));
  EXPECT_FALSE(Match("Status/State eq 'Disabled'"));
  EXPECT_TRUE(Match("Status/HealthRollup eq 'OK'"));
}

TEST(FilterTest, MissingPathComparesAsNull) {
  EXPECT_TRUE(Match("Missing eq null"));
  EXPECT_FALSE(Match("Missing eq 'x'"));
  EXPECT_TRUE(Match("Missing ne 'x'"));
  EXPECT_FALSE(Match("Missing gt 1"));  // ordering against null fails
}

TEST(FilterTest, BooleanAlgebraAndPrecedence) {
  EXPECT_TRUE(Match("Name eq 'node007' and CapacityGiB gt 100"));
  EXPECT_FALSE(Match("Name eq 'x' and CapacityGiB gt 100"));
  EXPECT_TRUE(Match("Name eq 'x' or CapacityGiB gt 100"));
  // 'and' binds tighter than 'or': false or (true and true) = true.
  EXPECT_TRUE(Match("Name eq 'x' or Enabled eq true and CapacityGiB gt 100"));
  // Parentheses override: (false or true) and false = false.
  EXPECT_FALSE(Match("(Name eq 'x' or Enabled eq true) and CapacityGiB gt 10000"));
  EXPECT_TRUE(Match("not Name eq 'x'"));
  EXPECT_FALSE(Match("not not Name eq 'x'"));
}

TEST(FilterTest, StringOrdering) {
  EXPECT_TRUE(Match("Name gt 'node006'"));
  EXPECT_TRUE(Match("Name lt 'node008'"));
}

TEST(FilterTest, QuoteEscaping) {
  auto filter = Filter::Compile("Name eq 'it''s'");
  ASSERT_TRUE(filter.ok());
  EXPECT_TRUE(filter->Matches(Json::Obj({{"Name", "it's"}})));
}

TEST(FilterTest, IntDoubleCrossCompare) {
  auto filter = Filter::Compile("Utilization eq 0.25");
  ASSERT_TRUE(filter.ok());
  EXPECT_TRUE(filter->Matches(kDoc));
  auto int_filter = Filter::Compile("CapacityGiB eq 894.0");
  ASSERT_TRUE(int_filter.ok());
  EXPECT_TRUE(int_filter->Matches(kDoc));
}

class FilterRejects : public ::testing::TestWithParam<const char*> {};

TEST_P(FilterRejects, BadExpression) {
  EXPECT_FALSE(Filter::Compile(GetParam()).ok()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Corpus, FilterRejects,
                         ::testing::Values("", "Name", "Name eq", "eq 'x'",
                                           "Name badop 'x'", "Name eq 'unterminated",
                                           "(Name eq 'x'", "Name eq 'x' extra",
                                           "Name eq 'x' and", "42 eq Name",
                                           "Name eq 'x' && Name eq 'y'"));

}  // namespace
}  // namespace ofmf::odata
