#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include "http/server.hpp"
#include "json/parse.hpp"
#include "json/serialize.hpp"
#include "ofmf/service.hpp"
#include "ofmf/uris.hpp"

namespace ofmf::core {
namespace {

using json::Json;
using json::Parse;
using ::testing::HasSubstr;

class OfmfTest : public ::testing::Test {
 protected:
  OfmfTest() { EXPECT_TRUE(ofmf_.Bootstrap().ok()); }

  http::Response Do(http::Method method, const std::string& target) {
    return ofmf_.Handle(http::MakeRequest(method, target));
  }
  http::Response DoJson(http::Method method, const std::string& target, const Json& body) {
    return ofmf_.Handle(http::MakeJsonRequest(method, target, body));
  }

  OfmfService ofmf_;
};

// ------------------------------------------------------------ Bootstrap ---

TEST_F(OfmfTest, ServiceRootLinksEveryService) {
  const Json root = *Parse(Do(http::Method::kGet, kServiceRoot).body);
  EXPECT_EQ(root.GetString("Name"), "OpenFabrics Management Framework");
  for (const char* key : {"Fabrics", "Systems", "Chassis", "StorageServices",
                          "SessionService", "EventService", "TaskService",
                          "TelemetryService", "AggregationService", "CompositionService"}) {
    EXPECT_FALSE(root.at(key).GetString("@odata.id").empty()) << key;
    // Every linked service answers GET.
    const std::string uri = root.at(key).GetString("@odata.id");
    EXPECT_EQ(Do(http::Method::kGet, uri).status, 200) << uri;
  }
}

TEST_F(OfmfTest, DoubleBootstrapRejected) {
  EXPECT_EQ(ofmf_.Bootstrap().code(), ErrorCode::kFailedPrecondition);
}

// -------------------------------------------------------------- Sessions ---

TEST_F(OfmfTest, SessionLoginFlow) {
  const http::Response created =
      DoJson(http::Method::kPost, kSessions,
             Json::Obj({{"UserName", "admin"}, {"Password", "ofmf"}}));
  EXPECT_EQ(created.status, 201);
  const std::string token = created.headers.GetOr("X-Auth-Token", "");
  EXPECT_EQ(token.size(), 32u);
  const std::string location = created.headers.GetOr("Location", "");
  EXPECT_THAT(location, HasSubstr("/SessionService/Sessions/"));
  EXPECT_TRUE(ofmf_.sessions().Authenticate(token).has_value());
  EXPECT_EQ(ofmf_.sessions().session_count(), 1u);

  // Wrong credentials rejected.
  EXPECT_EQ(DoJson(http::Method::kPost, kSessions,
                   Json::Obj({{"UserName", "admin"}, {"Password", "wrong"}}))
                .status,
            403);
  EXPECT_EQ(DoJson(http::Method::kPost, kSessions, Json::Obj({{"UserName", ""}})).status,
            400);
}

TEST_F(OfmfTest, AuthMiddlewareGatesEverythingButRootAndLogin) {
  ofmf_.sessions().set_auth_required(true);
  EXPECT_EQ(Do(http::Method::kGet, kServiceRoot).status, 200);
  EXPECT_EQ(Do(http::Method::kGet, kFabrics).status, 401);

  const http::Response created =
      DoJson(http::Method::kPost, kSessions,
             Json::Obj({{"UserName", "admin"}, {"Password", "ofmf"}}));
  ASSERT_EQ(created.status, 201);
  http::Request authed = http::MakeRequest(http::Method::kGet, kFabrics);
  authed.headers.Set("X-Auth-Token", created.headers.GetOr("X-Auth-Token", ""));
  EXPECT_EQ(ofmf_.Handle(authed).status, 200);

  authed.headers.Set("X-Auth-Token", "bogus");
  EXPECT_EQ(ofmf_.Handle(authed).status, 401);
}

TEST_F(OfmfTest, SessionDeleteInvalidatesToken) {
  const http::Response created =
      DoJson(http::Method::kPost, kSessions,
             Json::Obj({{"UserName", "admin"}, {"Password", "ofmf"}}));
  const std::string token = created.headers.GetOr("X-Auth-Token", "");
  const std::string location = created.headers.GetOr("Location", "");
  EXPECT_EQ(Do(http::Method::kDelete, location).status, 204);
  EXPECT_FALSE(ofmf_.sessions().Authenticate(token).has_value());
  EXPECT_FALSE(ofmf_.tree().Exists(location));
}

TEST_F(OfmfTest, CustomUsersCanLogin) {
  ofmf_.sessions().AddUser("operator", "s3cret");
  EXPECT_EQ(DoJson(http::Method::kPost, kSessions,
                   Json::Obj({{"UserName", "operator"}, {"Password", "s3cret"}}))
                .status,
            201);
}

// ---------------------------------------------------------------- Events ---

TEST_F(OfmfTest, InternalSubscriptionReceivesTreeEvents) {
  const http::Response sub = DoJson(
      http::Method::kPost, kSubscriptions,
      Json::Obj({{"Destination", "ofmf-internal://watcher"},
                 {"Protocol", "OEM"},
                 {"EventTypes", Json::Arr({"ResourceAdded", "ResourceRemoved"})}}));
  ASSERT_EQ(sub.status, 201);
  const std::string sub_uri = sub.headers.GetOr("Location", "");

  // A tree mutation produces a matching event...
  ASSERT_TRUE(ofmf_.tree().Create("/redfish/v1/Chassis/c1", "#Chassis.v1_2_0.Chassis",
                                  Json::Obj({{"Name", "c1"}})).ok());
  // ...and a filtered-out type does not (modification != added/removed).
  ASSERT_TRUE(ofmf_.tree().Patch("/redfish/v1/Chassis/c1", Json::Obj({{"x", 1}})).ok());

  const http::Response drained = DoJson(
      http::Method::kPost, sub_uri + "/Actions/EventDestination.Drain", Json::MakeObject());
  ASSERT_EQ(drained.status, 200);
  const Json events = Parse(drained.body)->at("Events");
  ASSERT_EQ(events.as_array().size(), 1u);
  const Json& record = events.as_array()[0].at("Events").as_array()[0];
  EXPECT_EQ(record.GetString("EventType"), "ResourceAdded");
  EXPECT_EQ(record.at("OriginOfCondition").GetString("@odata.id"),
            "/redfish/v1/Chassis/c1");

  // Queue is now empty.
  const http::Response empty = DoJson(
      http::Method::kPost, sub_uri + "/Actions/EventDestination.Drain", Json::MakeObject());
  EXPECT_TRUE(Parse(empty.body)->at("Events").as_array().empty());
}

TEST_F(OfmfTest, SubscriptionWithoutTypeFilterSeesEverything) {
  auto sub_uri = ofmf_.events().Subscribe(
      *Parse(R"({"Destination":"ofmf-internal://all","Protocol":"OEM"})"));
  ASSERT_TRUE(sub_uri.ok());
  ASSERT_TRUE(ofmf_.tree().Create("/redfish/v1/Chassis/c2", "#Chassis.v1_2_0.Chassis",
                                  Json::Obj({{"Name", "c2"}})).ok());
  ASSERT_TRUE(ofmf_.tree().Patch("/redfish/v1/Chassis/c2", Json::Obj({{"y", 1}})).ok());
  ASSERT_TRUE(ofmf_.tree().Delete("/redfish/v1/Chassis/c2").ok());
  auto events = ofmf_.events().Drain(*sub_uri);
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(events->size(), 3u);
}

TEST_F(OfmfTest, UnsubscribeStopsDeliveryAndCleansTree) {
  auto sub_uri = ofmf_.events().Subscribe(
      *Parse(R"({"Destination":"ofmf-internal://gone","Protocol":"OEM"})"));
  ASSERT_TRUE(sub_uri.ok());
  EXPECT_EQ(Do(http::Method::kDelete, *sub_uri).status, 204);
  EXPECT_FALSE(ofmf_.tree().Exists(*sub_uri));
  EXPECT_FALSE(ofmf_.events().Drain(*sub_uri).ok());
  EXPECT_EQ(ofmf_.events().subscription_count(), 0u);
}

TEST_F(OfmfTest, SubscriptionRequiresDestination) {
  EXPECT_EQ(DoJson(http::Method::kPost, kSubscriptions,
                   Json::Obj({{"Protocol", "Redfish"}}))
                .status,
            400);
}

TEST_F(OfmfTest, PushDeliveryFailuresCounted) {
  ASSERT_TRUE(ofmf_.events()
                  .Subscribe(*Parse(
                      R"({"Destination":"http://10.0.0.1/sink","Protocol":"Redfish"})"))
                  .ok());
  // No client factory installed -> delivery failure counted once the
  // asynchronous engine exhausts its retry budget.
  Event event;
  event.event_type = "Alert";
  event.message_id = "Test.1.0.Alert";
  event.origin = kServiceRoot;
  ofmf_.events().Publish(event);
  ASSERT_TRUE(ofmf_.events().FlushDelivery(5000));
  EXPECT_EQ(ofmf_.events().delivery_failures(), 1u);
}

// ----------------------------------------------------------------- Tasks ---

TEST_F(OfmfTest, TaskLifecycle) {
  auto task_uri = ofmf_.tasks().CreateTask("compose system");
  ASSERT_TRUE(task_uri.ok());
  EXPECT_EQ(*ofmf_.tasks().GetState(*task_uri), TaskState::kNew);
  ASSERT_TRUE(ofmf_.tasks().SetState(*task_uri, TaskState::kRunning).ok());
  ASSERT_TRUE(ofmf_.tasks().SetPercentComplete(*task_uri, 50).ok());
  EXPECT_FALSE(ofmf_.tasks().SetPercentComplete(*task_uri, 200).ok());
  ASSERT_TRUE(ofmf_.tasks().SetState(*task_uri, TaskState::kCompleted, "done").ok());
  const Json doc = *Parse(Do(http::Method::kGet, *task_uri).body);
  EXPECT_EQ(doc.GetString("TaskState"), "Completed");
  EXPECT_EQ(doc.GetInt("PercentComplete"), 100);
  EXPECT_TRUE(doc.Contains("EndTime"));
  // Listed in the collection.
  const Json collection = *Parse(Do(http::Method::kGet, kTasks).body);
  EXPECT_EQ(collection.GetInt("Members@odata.count"), 1);
}

// -------------------------------------------------------------- Telemetry ---

TEST_F(OfmfTest, TelemetryReportsRoundTrip) {
  ASSERT_TRUE(ofmf_.telemetry()
                  .PushReport("power", {{"PowerConsumedWatts", 4200.0, "/redfish/v1/Chassis"},
                                        {"Pue", 1.35, ""}})
                  .ok());
  const Json report = *Parse(Do(http::Method::kGet,
                                std::string(kMetricReports) + "/power")
                                 .body);
  ASSERT_EQ(report.at("MetricValues").as_array().size(), 2u);
  EXPECT_EQ(report.at("MetricValues").as_array()[0].GetString("MetricId"),
            "PowerConsumedWatts");
  EXPECT_DOUBLE_EQ(report.at("MetricValues").as_array()[0].GetDouble("MetricValue"),
                   4200.0);

  // Overwrite keeps a single report.
  ASSERT_TRUE(ofmf_.telemetry().PushReport("power", {{"PowerConsumedWatts", 10.0, ""}}).ok());
  EXPECT_EQ(ofmf_.telemetry().ReportIds().size(), 1u);
  EXPECT_EQ(ofmf_.telemetry().GetReport("power")->at("MetricValues").as_array().size(), 1u);
  EXPECT_FALSE(ofmf_.telemetry().PushReport("", {}).ok());
}

TEST_F(OfmfTest, TelemetryEmitsMetricReportEvents) {
  auto sub = ofmf_.events().Subscribe(*Parse(
      R"({"Destination":"ofmf-internal://metrics","Protocol":"OEM",
          "EventTypes":["MetricReport"]})"));
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(ofmf_.telemetry().PushReport("r1", {{"X", 1.0, ""}}).ok());
  auto events = ofmf_.events().Drain(*sub);
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 1u);
}

TEST_F(OfmfTest, OptionsMethodNotSupported) {
  EXPECT_EQ(Do(http::Method::kOptions, kServiceRoot).status, 405);
}

TEST_F(OfmfTest, TelemetryMissingReportIsNotFound) {
  EXPECT_EQ(ofmf_.telemetry().GetReport("ghost").status().code(), ErrorCode::kNotFound);
  EXPECT_TRUE(ofmf_.telemetry().ReportIds().empty());
}

// ------------------------------------------------------------ Composition ---

BlockCapability MakeComputeBlock(const std::string& id, int cores, double mem) {
  BlockCapability block;
  block.id = id;
  block.block_type = "Compute";
  block.cores = cores;
  block.memory_gib = mem;
  return block;
}

TEST_F(OfmfTest, ComposeAndDecomposeViaRest) {
  ASSERT_TRUE(ofmf_.composition().RegisterBlock(MakeComputeBlock("b0", 28, 64)).ok());
  ASSERT_TRUE(ofmf_.composition().RegisterBlock(MakeComputeBlock("b1", 28, 64)).ok());

  const http::Response composed = DoJson(
      http::Method::kPost, kSystems,
      Json::Obj({{"Name", "my-system"},
                 {"Links",
                  Json::Obj({{"ResourceBlocks",
                              Json::Arr({Json::Obj({{"@odata.id",
                                                     std::string(kResourceBlocks) +
                                                         "/b0"}}),
                                         Json::Obj({{"@odata.id",
                                                     std::string(kResourceBlocks) +
                                                         "/b1"}})})}})}}));
  ASSERT_EQ(composed.status, 201);
  const std::string system_uri = composed.headers.GetOr("Location", "");
  const Json system = *Parse(Do(http::Method::kGet, system_uri).body);
  EXPECT_EQ(system.GetString("SystemType"), "Composed");
  EXPECT_EQ(system.at("ProcessorSummary").GetInt("CoreCount"), 56);
  EXPECT_DOUBLE_EQ(system.at("MemorySummary").GetDouble("TotalSystemMemoryGiB"), 128.0);

  // Blocks now Composed; composing them again fails.
  EXPECT_EQ(*ofmf_.composition().BlockState(std::string(kResourceBlocks) + "/b0"),
            "Composed");
  EXPECT_TRUE(ofmf_.composition().FreeBlockUris().empty());
  const http::Response again = DoJson(
      http::Method::kPost, kSystems,
      Json::Obj({{"Name", "again"},
                 {"Links", Json::Obj({{"ResourceBlocks",
                                       Json::Arr({Json::Obj(
                                           {{"@odata.id", std::string(kResourceBlocks) +
                                                              "/b0"}})})}})}}));
  EXPECT_EQ(again.status, 412);

  // DELETE decomposes and frees the blocks.
  EXPECT_EQ(Do(http::Method::kDelete, system_uri).status, 204);
  EXPECT_FALSE(ofmf_.tree().Exists(system_uri));
  EXPECT_EQ(ofmf_.composition().FreeBlockUris().size(), 2u);
}

TEST_F(OfmfTest, ComposeValidatesBody) {
  EXPECT_EQ(DoJson(http::Method::kPost, kSystems, Json::Obj({{"Name", "x"}})).status, 400);
  EXPECT_EQ(DoJson(http::Method::kPost, kSystems,
                   Json::Obj({{"Name", "x"},
                              {"Links",
                               Json::Obj({{"ResourceBlocks",
                                           Json::Arr({Json::Obj(
                                               {{"@odata.id", "/nope"}})})}})}}))
                .status,
            404);
}

TEST_F(OfmfTest, ExpandSystemAction) {
  ASSERT_TRUE(ofmf_.composition().RegisterBlock(MakeComputeBlock("b0", 28, 64)).ok());
  BlockCapability mem;
  mem.id = "cxl0";
  mem.block_type = "Memory";
  mem.memory_gib = 256;
  ASSERT_TRUE(ofmf_.composition().RegisterBlock(mem).ok());

  auto system_uri = ofmf_.composition().Compose(
      "expandable", {std::string(kResourceBlocks) + "/b0"});
  ASSERT_TRUE(system_uri.ok());

  const http::Response expanded = DoJson(
      http::Method::kPost, *system_uri + "/Actions/ComputerSystem.AddResourceBlock",
      Json::Obj({{"ResourceBlock", std::string(kResourceBlocks) + "/cxl0"}}));
  ASSERT_EQ(expanded.status, 200);
  const Json system = *Parse(expanded.body);
  EXPECT_DOUBLE_EQ(system.at("MemorySummary").GetDouble("TotalSystemMemoryGiB"), 320.0);
  EXPECT_EQ(ofmf_.composition().BlocksOf(*system_uri)->size(), 2u);

  // Missing body parameter.
  EXPECT_EQ(DoJson(http::Method::kPost,
                   *system_uri + "/Actions/ComputerSystem.AddResourceBlock",
                   Json::MakeObject())
                .status,
            400);
}

TEST_F(OfmfTest, UnregisterBlockRules) {
  ASSERT_TRUE(ofmf_.composition().RegisterBlock(MakeComputeBlock("b0", 28, 64)).ok());
  const std::string block_uri = std::string(kResourceBlocks) + "/b0";
  auto system = ofmf_.composition().Compose("sys", {block_uri});
  ASSERT_TRUE(system.ok());
  EXPECT_EQ(ofmf_.composition().UnregisterBlock(block_uri).code(),
            ErrorCode::kFailedPrecondition);
  ASSERT_TRUE(ofmf_.composition().Decompose(*system).ok());
  EXPECT_TRUE(ofmf_.composition().UnregisterBlock(block_uri).ok());
  EXPECT_FALSE(ofmf_.tree().Exists(block_uri));
}

TEST_F(OfmfTest, CompositionEventsPublished) {
  auto sub = ofmf_.events().Subscribe(*Parse(
      R"({"Destination":"ofmf-internal://compose","Protocol":"OEM"})"));
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(ofmf_.composition().RegisterBlock(MakeComputeBlock("b0", 28, 64)).ok());
  auto system = ofmf_.composition().Compose("sys", {std::string(kResourceBlocks) + "/b0"});
  ASSERT_TRUE(system.ok());
  auto events = ofmf_.events().Drain(*sub);
  ASSERT_TRUE(events.ok());
  bool saw_composed = false;
  for (const Json& event : *events) {
    const Json& record = event.at("Events").as_array()[0];
    if (record.GetString("MessageId") == "CompositionService.1.0.SystemComposed") {
      saw_composed = true;
    }
  }
  EXPECT_TRUE(saw_composed);
}

// -------------------------------------------------------------- Capability ---

TEST(BlockCapabilityTest, PayloadRoundTrip) {
  BlockCapability block;
  block.id = "gpu-7";
  block.block_type = "Processor";
  block.cores = 0;
  block.memory_gib = 16;
  block.gpus = 1;
  block.storage_gib = 0;
  block.locality = "rack3";
  block.idle_watts = 55;
  block.active_watts = 300;
  const BlockCapability round = CapabilityFromPayload(block.ToPayload());
  EXPECT_EQ(round.id, block.id);
  EXPECT_EQ(round.block_type, block.block_type);
  EXPECT_EQ(round.gpus, 1);
  EXPECT_DOUBLE_EQ(round.memory_gib, 16);
  EXPECT_EQ(round.locality, "rack3");
  EXPECT_DOUBLE_EQ(round.active_watts, 300);
}

// ---------------------------------------------------- Async composition ---

TEST_F(OfmfTest, AsyncComposeReturnsTaskAndCompletesOnTick) {
  ASSERT_TRUE(ofmf_.composition().RegisterBlock(MakeComputeBlock("b0", 28, 64)).ok());
  http::Request request = http::MakeJsonRequest(
      http::Method::kPost, kSystems,
      Json::Obj({{"Name", "async-system"},
                 {"Links", Json::Obj({{"ResourceBlocks",
                                       Json::Arr({Json::Obj(
                                           {{"@odata.id", std::string(kResourceBlocks) +
                                                              "/b0"}})})}})}}));
  request.headers.Set("Prefer", "respond-async");
  const http::Response accepted = ofmf_.Handle(request);
  ASSERT_EQ(accepted.status, 202);
  const std::string task_uri = accepted.headers.GetOr("Location", "");
  ASSERT_THAT(task_uri, HasSubstr("/TaskService/Tasks/"));
  EXPECT_EQ(*ofmf_.tasks().GetState(task_uri), TaskState::kRunning);
  // Nothing composed yet; work is queued.
  EXPECT_EQ(ofmf_.pending_work(), 1u);
  EXPECT_TRUE(ofmf_.composition().FreeBlockUris().size() == 1);

  EXPECT_EQ(ofmf_.ProcessPendingWork(), 1u);
  EXPECT_EQ(*ofmf_.tasks().GetState(task_uri), TaskState::kCompleted);
  const Json task = *Parse(Do(http::Method::kGet, task_uri).body);
  const std::string system_uri = task.at("Oem").at("Ofmf").GetString("SystemUri");
  ASSERT_FALSE(system_uri.empty());
  EXPECT_TRUE(ofmf_.tree().Exists(system_uri));
  EXPECT_EQ(Parse(Do(http::Method::kGet, system_uri).body)->GetString("Name"),
            "async-system");
}

TEST_F(OfmfTest, AsyncComposeFailureMarksTaskException) {
  http::Request request = http::MakeJsonRequest(
      http::Method::kPost, kSystems,
      Json::Obj({{"Name", "doomed"},
                 {"Links", Json::Obj({{"ResourceBlocks",
                                       Json::Arr({Json::Obj(
                                           {{"@odata.id", "/no/such/block"}})})}})}}));
  request.headers.Set("Prefer", "respond-async");
  const http::Response accepted = ofmf_.Handle(request);
  ASSERT_EQ(accepted.status, 202);
  const std::string task_uri = accepted.headers.GetOr("Location", "");
  EXPECT_EQ(ofmf_.ProcessPendingWork(), 1u);
  EXPECT_EQ(*ofmf_.tasks().GetState(task_uri), TaskState::kException);
}

// ----------------------------------------------------- Tenants and QoS ---

TEST(ConstantTimeEqualsTest, MatchesOnlyExactStrings) {
  EXPECT_TRUE(ConstantTimeEquals("", ""));
  EXPECT_TRUE(ConstantTimeEquals("abcdef0123456789", "abcdef0123456789"));
  EXPECT_FALSE(ConstantTimeEquals("abcdef", "abcdeg"));  // last byte differs
  EXPECT_FALSE(ConstantTimeEquals("abcdef", "bbcdef"));  // first byte differs
  EXPECT_FALSE(ConstantTimeEquals("abcdef", "abcde"));   // provided shorter
  EXPECT_FALSE(ConstantTimeEquals("abcdef", "abcdefg"));  // provided longer
  EXPECT_FALSE(ConstantTimeEquals("abcdef", ""));
  EXPECT_FALSE(ConstantTimeEquals("", "a"));
}

TEST_F(OfmfTest, TenantLifecycleViaRestAndSessionBinding) {
  const http::Response created = DoJson(
      http::Method::kPost, kTenants,
      Json::Obj({{"Id", "acme"},
                 {"Oem",
                  Json::Obj({{"Ofmf",
                              Json::Obj({{"QoSClass", "Guaranteed"},
                                         {"Weight", std::int64_t{3}},
                                         {"RateLimitRps", 10.0},
                                         {"BurstSize", 5.0},
                                         {"Users", Json::Arr({Json(std::string(
                                                       "alice"))})}})}})}}));
  ASSERT_EQ(created.status, 201);
  const std::string uri = created.headers.GetOr("Location", "");
  EXPECT_THAT(uri, HasSubstr("/SessionService/Tenants/acme"));
  auto tenant = ofmf_.sessions().GetTenant("acme");
  ASSERT_TRUE(tenant.ok());
  EXPECT_EQ(tenant->qos_class, "Guaranteed");
  EXPECT_EQ(tenant->weight, 3u);
  EXPECT_DOUBLE_EQ(tenant->rate_rps, 10.0);

  // A session minted for a bound user carries the tenant; the token maps
  // back to it (this is what the reactor's classifier keys on).
  ofmf_.sessions().AddUser("alice", "secret");
  auto session = ofmf_.sessions().CreateSession("alice", "secret");
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session->tenant, "acme");
  EXPECT_EQ(ofmf_.sessions().TenantOfToken(session->token), "acme");
  // Unbound users and unknown tokens map to the default tenant.
  auto admin = ofmf_.sessions().CreateSession("admin", "ofmf");
  ASSERT_TRUE(admin.ok());
  EXPECT_EQ(admin->tenant, "");
  EXPECT_EQ(ofmf_.sessions().TenantOfToken("bogus"), "");

  EXPECT_EQ(Do(http::Method::kDelete, uri).status, 204);
  EXPECT_FALSE(ofmf_.sessions().GetTenant("acme").ok());
}

http::Request ComposeRequest(const std::string& name, const std::string& block_uri) {
  return http::MakeJsonRequest(
      http::Method::kPost, kSystems,
      Json::Obj({{"Name", name},
                 {"Links",
                  Json::Obj({{"ResourceBlocks",
                              Json::Arr({Json::Obj({{"@odata.id", block_uri}})})}})}}));
}

class ComposeQosGateTest : public OfmfTest {
 protected:
  /// One congested compute block plus a Guaranteed-class tenant whose user
  /// "alice" is logged in; returns alice's token.
  std::string SetUpCongestedPool(double utilization = 0.9) {
    BlockCapability block = MakeComputeBlock("hot", 28, 64);
    block.path_utilization = utilization;
    EXPECT_TRUE(ofmf_.composition().RegisterBlock(block).ok());
    TenantInfo tenant;
    tenant.id = "gold";
    tenant.qos_class = "Guaranteed";
    tenant.users = {"alice"};
    EXPECT_TRUE(ofmf_.sessions().CreateTenant(tenant).ok());
    ofmf_.sessions().AddUser("alice", "secret");
    auto session = ofmf_.sessions().CreateSession("alice", "secret");
    EXPECT_TRUE(session.ok());
    return session->token;
  }

  std::string HotBlockUri() const { return std::string(kResourceBlocks) + "/hot"; }
};

TEST_F(ComposeQosGateTest, SyncComposeOverCongestedPathAnswers503) {
  const std::string token = SetUpCongestedPool();
  http::Request request = ComposeRequest("latency-job", HotBlockUri());
  request.headers.Set("X-Auth-Token", token);
  const http::Response refused = ofmf_.Handle(request);
  ASSERT_EQ(refused.status, 503);
  EXPECT_FALSE(refused.headers.GetOr("Retry-After", "").empty());
  EXPECT_THAT(refused.body, HasSubstr("InsufficientResources"));
  // Nothing placed, nothing queued: the block is still free.
  EXPECT_EQ(ofmf_.pending_work(), 0u);
  EXPECT_EQ(*ofmf_.composition().BlockState(HotBlockUri()), "Unused");
}

TEST_F(ComposeQosGateTest, BestEffortTenantPlacesDespiteCongestion) {
  (void)SetUpCongestedPool();
  // No token → default tenant → BestEffort → utilization limit never binds.
  const http::Response placed = ofmf_.Handle(ComposeRequest("batch-job", HotBlockUri()));
  EXPECT_EQ(placed.status, 201);
}

TEST_F(ComposeQosGateTest, AsyncComposeQueuesAndFailsWhileStillCongested) {
  const std::string token = SetUpCongestedPool();
  http::Request request = ComposeRequest("latency-job", HotBlockUri());
  request.headers.Set("X-Auth-Token", token);
  request.headers.Set("Prefer", "respond-async");
  const http::Response accepted = ofmf_.Handle(request);
  ASSERT_EQ(accepted.status, 202);
  const std::string task_uri = accepted.headers.GetOr("Location", "");
  ASSERT_THAT(task_uri, HasSubstr("/TaskService/Tasks/"));
  EXPECT_EQ(*ofmf_.tasks().GetState(task_uri), TaskState::kRunning);
  // The path is still hot when the task runs: the compose is refused loudly,
  // not placed silently.
  EXPECT_EQ(ofmf_.ProcessPendingWork(), 1u);
  EXPECT_EQ(*ofmf_.tasks().GetState(task_uri), TaskState::kException);
  EXPECT_EQ(*ofmf_.composition().BlockState(HotBlockUri()), "Unused");
}

TEST_F(ComposeQosGateTest, AsyncComposeCompletesOnceCongestionDrains) {
  const std::string token = SetUpCongestedPool();
  http::Request request = ComposeRequest("latency-job", HotBlockUri());
  request.headers.Set("X-Auth-Token", token);
  request.headers.Set("Prefer", "respond-async");
  const http::Response accepted = ofmf_.Handle(request);
  ASSERT_EQ(accepted.status, 202);
  const std::string task_uri = accepted.headers.GetOr("Location", "");
  // Congestion drains before the task runs — the re-evaluated gate passes
  // and the queued compose goes through.
  ASSERT_TRUE(ofmf_.composition().SetBlockPathUtilization(HotBlockUri(), 0.1).ok());
  EXPECT_EQ(ofmf_.ProcessPendingWork(), 1u);
  EXPECT_EQ(*ofmf_.tasks().GetState(task_uri), TaskState::kCompleted);
  EXPECT_EQ(*ofmf_.composition().BlockState(HotBlockUri()), "Composed");
}

TEST_F(OfmfTest, SyncComposeUnaffectedByPreferHeaderAbsence) {
  ASSERT_TRUE(ofmf_.composition().RegisterBlock(MakeComputeBlock("b0", 28, 64)).ok());
  const http::Response response = DoJson(
      http::Method::kPost, kSystems,
      Json::Obj({{"Name", "sync"},
                 {"Links", Json::Obj({{"ResourceBlocks",
                                       Json::Arr({Json::Obj(
                                           {{"@odata.id", std::string(kResourceBlocks) +
                                                              "/b0"}})})}})}}));
  EXPECT_EQ(response.status, 201);
  EXPECT_EQ(ofmf_.pending_work(), 0u);
}

// ------------------------------------------------------------ Self-audit ---

TEST_F(OfmfTest, AuditActionReportsCleanService) {
  ASSERT_TRUE(ofmf_.composition().RegisterBlock(MakeComputeBlock("b0", 28, 64)).ok());
  const http::Response response =
      DoJson(http::Method::kPost,
             std::string(kServiceRoot) + "/Actions/OfmfService.Audit",
             Json::MakeObject());
  ASSERT_EQ(response.status, 200);
  const Json report = *Parse(response.body);
  EXPECT_TRUE(report.GetBool("Clean"));
  EXPECT_GT(report.GetInt("ResourcesChecked"), 15);
  EXPECT_GT(report.GetInt("ResourcesWithSchema"), 0);
  EXPECT_TRUE(report.at("Issues").as_array().empty());
}

TEST_F(OfmfTest, AuditActionFlagsInjectedViolations) {
  // Inject a schema-invalid resource directly into the tree (bypassing the
  // validated POST path, as a buggy agent might).
  ASSERT_TRUE(ofmf_.tree()
                  .Create("/redfish/v1/Fabrics/bad", "#Fabric.v1_3_0.Fabric",
                          Json::Obj({{"Name", "bad"}, {"FabricType", "NotAFabric"}}))
                  .ok());
  ASSERT_TRUE(ofmf_.tree().AddMember(kFabrics, "/redfish/v1/Fabrics/bad").ok());
  // And a dangling collection member.
  ASSERT_TRUE(ofmf_.tree().AddMember(kFabrics, "/redfish/v1/Fabrics/ghost").ok());

  const http::Response response =
      DoJson(http::Method::kPost,
             std::string(kServiceRoot) + "/Actions/OfmfService.Audit",
             Json::MakeObject());
  const Json report = *Parse(response.body);
  EXPECT_FALSE(report.GetBool("Clean"));
  ASSERT_GE(report.at("Issues").as_array().size(), 2u);
  bool saw_enum = false;
  bool saw_dangling = false;
  for (const Json& issue : report.at("Issues").as_array()) {
    const std::string message = issue.GetString("Message");
    if (message.find("enum") != std::string::npos) saw_enum = true;
    if (message.find("dangling") != std::string::npos) saw_dangling = true;
  }
  EXPECT_TRUE(saw_enum);
  EXPECT_TRUE(saw_dangling);
}

// -------------------------------------------------- Push event delivery ---

TEST_F(OfmfTest, PushDeliveryThroughClientFactory) {
  // A second OFMF-ish sink service receives pushed events (on a delivery
  // worker thread, hence the lock).
  std::mutex received_mu;
  std::vector<Json> received;
  http::ServerHandler sink = [&](const http::Request& request) {
    std::lock_guard<std::mutex> lock(received_mu);
    received.push_back(*Parse(request.body));
    return http::MakeEmptyResponse(204);
  };
  ofmf_.events().set_client_factory(
      [&](const std::string&) -> std::unique_ptr<http::HttpClient> {
        return std::make_unique<http::InProcessClient>(sink);
      });
  ASSERT_TRUE(ofmf_.events()
                  .Subscribe(*Parse(
                      R"({"Destination":"http://sink/events","Protocol":"Redfish",
                          "EventTypes":["Alert"]})"))
                  .ok());
  Event event;
  event.event_type = "Alert";
  event.message_id = "Test.1.0.Pushed";
  event.message = "pushed";
  event.origin = kServiceRoot;
  ofmf_.events().Publish(event);
  ASSERT_TRUE(ofmf_.events().FlushDelivery(5000));
  std::lock_guard<std::mutex> lock(received_mu);
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].at("Events").as_array()[0].GetString("MessageId"),
            "Test.1.0.Pushed");
  EXPECT_EQ(ofmf_.events().delivery_failures(), 0u);
}

TEST_F(OfmfTest, PushDeliveryRetriesFlakySink) {
  std::atomic<int> calls{0};
  http::ServerHandler flaky = [&](const http::Request&) {
    // Fail twice, then accept.
    return ++calls < 3 ? http::MakeTextResponse(503, "busy")
                       : http::MakeEmptyResponse(204);
  };
  ofmf_.events().set_client_factory(
      [&](const std::string&) -> std::unique_ptr<http::HttpClient> {
        return std::make_unique<http::InProcessClient>(flaky);
      });
  ASSERT_TRUE(ofmf_.events()
                  .Subscribe(*Parse(
                      R"({"Destination":"http://flaky/events","Protocol":"Redfish"})"))
                  .ok());
  Event event;
  event.event_type = "Alert";
  event.message_id = "Test.1.0.Retry";
  event.origin = kServiceRoot;
  ofmf_.events().Publish(event);
  ASSERT_TRUE(ofmf_.events().FlushDelivery(5000));
  EXPECT_EQ(calls.load(), 3);  // two failures + final success
  EXPECT_EQ(ofmf_.events().delivery_failures(), 0u);
  EXPECT_EQ(ofmf_.events().delivery_retries(), 2u);

  // A sink that never recovers exhausts the attempts and counts a failure.
  calls = -100;  // stays < 3 for the whole retry budget
  ofmf_.events().Publish(event);
  ASSERT_TRUE(ofmf_.events().FlushDelivery(5000));
  EXPECT_EQ(ofmf_.events().delivery_failures(), 1u);

  // Retry budget is configurable and clamped to >= 1. The breaker opened on
  // the failures above, so the single attempt lands after its cooldown.
  ofmf_.events().set_retry_attempts(0);
  calls = -100;
  ofmf_.events().Publish(event);
  ASSERT_TRUE(ofmf_.events().FlushDelivery(5000));
  EXPECT_EQ(calls.load(), -99);  // exactly one attempt
}

// -------------------------------------------------------- Graceful drain ---

TEST_F(OfmfTest, DrainRefusesMutationsButServesReads) {
  ofmf_.BeginDrain();
  const http::Response refused =
      DoJson(http::Method::kPost, kSessions,
             Json::Obj({{"UserName", "admin"}, {"Password", "ofmf"}}));
  EXPECT_EQ(refused.status, 503);
  EXPECT_EQ(refused.headers.Get("Retry-After"), "5");
  EXPECT_THAT(refused.body, HasSubstr("ServiceShuttingDown"));
  // Reads keep working through the drain window.
  EXPECT_EQ(Do(http::Method::kGet, kServiceRoot).status, 200);

  ofmf_.EndDrain();
  EXPECT_EQ(DoJson(http::Method::kPost, kSessions,
                   Json::Obj({{"UserName", "admin"}, {"Password", "ofmf"}}))
                .status,
            201);
}

// ----------------------------------------------------------- Wire access ---

TEST_F(OfmfTest, FullServiceOverTcp) {
  http::TcpServer server;
  ASSERT_TRUE(server.Start(ofmf_.Handler()).ok());
  http::TcpClient client(server.port());
  auto root = client.Get(kServiceRoot);
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(Parse(root->body)->GetString("Name"), "OpenFabrics Management Framework");
  auto session = client.PostJson(
      kSessions, Json::Obj({{"UserName", "admin"}, {"Password", "ofmf"}}));
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session->status, 201);
  EXPECT_FALSE(session->headers.GetOr("X-Auth-Token", "").empty());
  server.Stop();
}

}  // namespace
}  // namespace ofmf::core
