// Unit tests for the multi-tenant QoS primitives: token-bucket admission
// (burst edges, clock jumps, Retry-After monotonicity), the shared
// Retry-After derivation the 503/429 paths use, the drain-rate estimator,
// and the deficit-round-robin fair scheduler (weight ratios, zero-weight
// background tenants, queue bounds).
#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/qos.hpp"

namespace ofmf::qos {
namespace {

// --------------------------------------------------------- Retry-After ----

TEST(RetryAfterTest, DerivedFromDepthAndDrainRate) {
  // Deeper queues quote longer waits: the herd is spread, not synchronized.
  EXPECT_LT(DeriveRetryAfterSeconds(0, 100.0), DeriveRetryAfterSeconds(50, 100.0));
  EXPECT_LT(DeriveRetryAfterSeconds(50, 100.0), DeriveRetryAfterSeconds(500, 100.0));
  // Faster drain shortens the quote at equal depth.
  EXPECT_GT(DeriveRetryAfterSeconds(100, 10.0), DeriveRetryAfterSeconds(100, 1000.0));
  EXPECT_DOUBLE_EQ(DeriveRetryAfterSeconds(99, 100.0), 1.0);
}

TEST(RetryAfterTest, HeaderValueIsCeiledAndClamped) {
  EXPECT_EQ(RetryAfterHeaderSeconds(0.0), 1);    // floor 1: never invite a hammer
  EXPECT_EQ(RetryAfterHeaderSeconds(0.02), 1);
  EXPECT_EQ(RetryAfterHeaderSeconds(1.2), 2);    // ceil
  EXPECT_EQ(RetryAfterHeaderSeconds(59.5), 60);
  EXPECT_EQ(RetryAfterHeaderSeconds(1e9), 60);   // cap
}

TEST(DrainRateEstimatorTest, FallbackUntilPrimedThenTracksThroughput) {
  DrainRateEstimator estimator(200.0);
  EXPECT_DOUBLE_EQ(estimator.rate_per_sec(), 200.0);
  // 50 completions over 100 ms -> 500/s; EWMA pulls toward it. (Anchor at a
  // nonzero timestamp: ns 0 is the estimator's "not yet anchored" sentinel,
  // which real steady_clock feeds never produce.)
  std::int64_t now = Seconds(1);
  estimator.NoteCompletions(0, now);  // anchor
  now += 100 * kNanosPerMilli;
  estimator.NoteCompletions(50, now);
  EXPECT_GT(estimator.rate_per_sec(), 200.0);
  for (int i = 0; i < 20; ++i) {
    now += 100 * kNanosPerMilli;
    estimator.NoteCompletions(50, now);
  }
  EXPECT_NEAR(estimator.rate_per_sec(), 500.0, 50.0);
}

// --------------------------------------------------------- token bucket ----

TEST(TokenBucketTest, BurstExactlyAtCapacityAdmitsThenRejects) {
  SimClock clock;
  TokenBucket bucket(/*rate_per_sec=*/10.0, /*burst=*/5.0);
  // Exactly `burst` requests pass back-to-back at a frozen clock...
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(bucket.TryConsume(1.0, clock.now())) << "request " << i;
  }
  // ...and the very next one is rejected: capacity is a hard edge.
  EXPECT_FALSE(bucket.TryConsume(1.0, clock.now()));
  EXPECT_GT(bucket.RetryAfterSeconds(), 0.0);
}

TEST(TokenBucketTest, RefillRestoresTokensAtRate) {
  SimClock clock;
  TokenBucket bucket(10.0, 5.0);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(bucket.TryConsume(1.0, clock.now()));
  ASSERT_FALSE(bucket.TryConsume(1.0, clock.now()));
  // 10/s refill: 300 ms mints 3 tokens.
  clock.Advance(300 * kNanosPerMilli);
  EXPECT_TRUE(bucket.TryConsume(1.0, clock.now()));
  EXPECT_TRUE(bucket.TryConsume(1.0, clock.now()));
  EXPECT_TRUE(bucket.TryConsume(1.0, clock.now()));
  EXPECT_FALSE(bucket.TryConsume(1.0, clock.now()));
}

TEST(TokenBucketTest, RefillNeverOverflowsBurst) {
  SimClock clock;
  TokenBucket bucket(10.0, 5.0);
  ASSERT_TRUE(bucket.TryConsume(1.0, clock.now()));
  clock.Advance(Seconds(3600));  // an hour mints 36000 tokens; capacity holds 5
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(bucket.TryConsume(1.0, clock.now())) << "token " << i;
  }
  EXPECT_FALSE(bucket.TryConsume(1.0, clock.now()));
}

TEST(TokenBucketTest, ClockJumpBackwardsReAnchorsInsteadOfMinting) {
  SimClock clock;
  clock.AdvanceTo(Seconds(100));
  TokenBucket bucket(10.0, 5.0);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(bucket.TryConsume(1.0, clock.now()));
  ASSERT_FALSE(bucket.TryConsume(1.0, clock.now()));
  // A timestamp EARLIER than the last refill (clock jump / reordered caller)
  // must not mint a negative or enormous refill: still rejected.
  EXPECT_FALSE(bucket.TryConsume(1.0, Seconds(50)));
  EXPECT_FALSE(bucket.TryConsume(1.0, Seconds(1)));
  // The bucket re-anchored at the earlier timestamp; time flowing again from
  // there refills normally.
  EXPECT_TRUE(bucket.TryConsume(1.0, Seconds(1) + 100 * kNanosPerMilli));
}

TEST(TokenBucketTest, RetryAfterMonotoneNonDecreasingAcrossAFlood) {
  // Each rejection in one dry spell is quoted the refill time for one more
  // token than the previous rejection, so a flood's Retry-After values climb
  // instead of telling every client the same instant.
  SimClock clock;
  TokenBucket bucket(2.0, 2.0);
  while (bucket.TryConsume(1.0, clock.now())) {
  }
  double last = 0.0;
  std::vector<double> quotes;
  for (int i = 0; i < 8; ++i) {
    ASSERT_FALSE(bucket.TryConsume(1.0, clock.now()));
    const double quote = bucket.RetryAfterSeconds();
    EXPECT_GE(quote, last) << "rejection " << i;
    quotes.push_back(quote);
    last = quote;
  }
  // Non-constant overall: the last client waits strictly longer than the first.
  EXPECT_GT(quotes.back(), quotes.front());
}

TEST(TokenBucketTest, SuccessClearsRejectionDebt) {
  SimClock clock;
  TokenBucket bucket(10.0, 1.0);
  ASSERT_TRUE(bucket.TryConsume(1.0, clock.now()));
  for (int i = 0; i < 5; ++i) ASSERT_FALSE(bucket.TryConsume(1.0, clock.now()));
  const double inflated = bucket.RetryAfterSeconds();
  EXPECT_GT(inflated, 0.1);
  clock.Advance(Seconds(10));  // long quiet spell: bucket refills, debt decays
  ASSERT_TRUE(bucket.TryConsume(1.0, clock.now()));
  // A fresh dry spell starts from a small quote again, not the old debt.
  ASSERT_FALSE(bucket.TryConsume(1.0, clock.now()));
  EXPECT_LT(bucket.RetryAfterSeconds(), inflated);
}

TEST(TokenBucketTest, ZeroRateIsUnlimited) {
  TokenBucket bucket(0.0, 0.0);
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(bucket.TryConsume(1.0, 0));
  EXPECT_DOUBLE_EQ(bucket.RetryAfterSeconds(), 0.0);
}

// ------------------------------------------------------- fair scheduler ----

/// Enqueues `count` no-op items for `tenant` (all admitted or the test fails).
void Fill(FairScheduler& scheduler, const std::string& tenant, int count,
          std::int64_t now_ns = 0) {
  for (int i = 0; i < count; ++i) {
    const auto admission = scheduler.Enqueue(tenant, 0, [] {}, now_ns);
    ASSERT_EQ(admission.verdict, FairScheduler::Admit::kAccepted)
        << tenant << " item " << i;
  }
}

/// Dispatches `rounds` items and counts how many each tenant got.
std::map<std::string, int> DispatchCounts(FairScheduler& scheduler, int rounds) {
  std::map<std::string, int> counts;
  for (int i = 0; i < rounds; ++i) {
    FairScheduler::Item item = scheduler.Dequeue();
    if (!item.work) break;
    ++counts[item.tenant];
  }
  return counts;
}

TEST(FairSchedulerTest, DispatchFollowsWeightRatio) {
  FairScheduler scheduler;
  scheduler.ConfigureTenant({.id = "gold", .weight = 3});
  scheduler.ConfigureTenant({.id = "bronze", .weight = 1});
  Fill(scheduler, "gold", 100);
  Fill(scheduler, "bronze", 100);
  const auto counts = DispatchCounts(scheduler, 80);
  // 3:1 share over full rounds (allow one round of rounding slack).
  EXPECT_NEAR(counts.at("gold"), 60, 3);
  EXPECT_NEAR(counts.at("bronze"), 20, 3);
}

TEST(FairSchedulerTest, BackloggedTenantCannotStarveLightTenant) {
  FairScheduler scheduler(/*default_max_queue=*/1024);
  scheduler.ConfigureTenant({.id = "flood", .weight = 1});
  scheduler.ConfigureTenant({.id = "quiet", .weight = 1});
  Fill(scheduler, "flood", 500);
  Fill(scheduler, "quiet", 5);
  // Equal weights: the quiet tenant's 5 items all surface within the first
  // ~10 dispatches even though 500 flood items arrived first.
  const auto counts = DispatchCounts(scheduler, 12);
  EXPECT_EQ(counts.at("quiet"), 5);
}

TEST(FairSchedulerTest, ZeroWeightTenantServedOnlyWhenWeightedQueuesEmpty) {
  FairScheduler scheduler;
  scheduler.ConfigureTenant({.id = "bg", .weight = 0});
  scheduler.ConfigureTenant({.id = "fg", .weight = 1});
  Fill(scheduler, "bg", 3);
  Fill(scheduler, "fg", 3);
  std::vector<std::string> order;
  for (int i = 0; i < 6; ++i) {
    FairScheduler::Item item = scheduler.Dequeue();
    ASSERT_TRUE(static_cast<bool>(item.work));
    order.push_back(item.tenant);
  }
  EXPECT_THAT(order, ::testing::ElementsAre("fg", "fg", "fg", "bg", "bg", "bg"));
  EXPECT_TRUE(scheduler.empty());
}

TEST(FairSchedulerTest, ZeroWeightTenantNeverDeadlocksWhenIdle) {
  FairScheduler scheduler;
  scheduler.ConfigureTenant({.id = "bg", .weight = 0});
  Fill(scheduler, "bg", 2);
  EXPECT_EQ(scheduler.Dequeue().tenant, "bg");
  EXPECT_EQ(scheduler.Dequeue().tenant, "bg");
  EXPECT_FALSE(static_cast<bool>(scheduler.Dequeue().work));
}

TEST(FairSchedulerTest, QueueBoundRejectsWithQueueFull) {
  FairScheduler scheduler;
  scheduler.ConfigureTenant({.id = "t", .weight = 1, .max_queue = 4});
  Fill(scheduler, "t", 4);
  const auto rejected = scheduler.Enqueue("t", 0, [] {}, 0);
  EXPECT_EQ(rejected.verdict, FairScheduler::Admit::kQueueFull);
  // Other tenants are unaffected by one tenant's full queue.
  const auto other = scheduler.Enqueue("other", 0, [] {}, 0);
  EXPECT_EQ(other.verdict, FairScheduler::Admit::kAccepted);
  const auto stats = scheduler.Stats();
  for (const TenantStats& tenant : stats) {
    if (tenant.id == "t") {
      EXPECT_EQ(tenant.queue_rejected, 1u);
    }
  }
}

TEST(FairSchedulerTest, RateLimitedTenantGets429WithClimbingRetryAfter) {
  SimClock clock;
  FairScheduler scheduler;
  scheduler.ConfigureTenant({.id = "t", .weight = 1, .rate_rps = 5.0, .burst = 2.0});
  Fill(scheduler, "t", 2, clock.now());
  double last = 0.0;
  for (int i = 0; i < 4; ++i) {
    const auto admission = scheduler.Enqueue("t", 0, [] {}, clock.now());
    ASSERT_EQ(admission.verdict, FairScheduler::Admit::kRateLimited) << i;
    EXPECT_GE(admission.retry_after_s, last);
    last = admission.retry_after_s;
  }
  EXPECT_GT(last, 0.0);
  // After the refill horizon the tenant is admitted again.
  clock.Advance(Seconds(2));
  const auto admitted = scheduler.Enqueue("t", 0, [] {}, clock.now());
  EXPECT_EQ(admitted.verdict, FairScheduler::Admit::kAccepted);
}

TEST(FairSchedulerTest, ReconfigureToZeroWeightMidBacklogStillDrains) {
  // A tenant demoted to weight 0 while backlogged must neither spin the
  // scheduler nor strand its queued items forever once the system is idle.
  FairScheduler scheduler;
  scheduler.ConfigureTenant({.id = "t", .weight = 2});
  Fill(scheduler, "t", 4);
  EXPECT_TRUE(static_cast<bool>(scheduler.Dequeue().work));
  scheduler.ConfigureTenant({.id = "t", .weight = 0});
  int drained = 0;
  while (static_cast<bool>(scheduler.Dequeue().work)) ++drained;
  EXPECT_EQ(drained, 3);
  EXPECT_TRUE(scheduler.empty());
}

TEST(FairSchedulerTest, StatsTrackAdmissionAndDispatch) {
  FairScheduler scheduler;
  scheduler.ConfigureTenant({.id = "a", .weight = 2});
  Fill(scheduler, "a", 3);
  (void)scheduler.Dequeue();
  const auto stats = scheduler.Stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].id, "a");
  EXPECT_EQ(stats[0].weight, 2u);
  EXPECT_EQ(stats[0].admitted, 3u);
  EXPECT_EQ(stats[0].dispatched, 1u);
  EXPECT_EQ(stats[0].queued, 2u);
}

}  // namespace
}  // namespace ofmf::qos
