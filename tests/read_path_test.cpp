// Read-path fast lane: ETag versioning, conditional GET/HEAD, the
// serialized-response cache's invalidation ordering under concurrent
// readers and writers, and the client-side ETag cache. The concurrency
// tests are the ones meant to run under OFMF_SANITIZE=thread.
#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "composability/client.hpp"
#include "http/server.hpp"
#include "json/parse.hpp"
#include "json/serialize.hpp"
#include "redfish/cache.hpp"
#include "redfish/schemas.hpp"
#include "redfish/service.hpp"
#include "redfish/tree.hpp"

namespace ofmf::redfish {
namespace {

using json::Json;
using json::Parse;

// ----------------------------------------------------- ETag versioning ---

TEST(ReadPathTree, VersionBumpsOnEveryMutation) {
  ResourceTree tree;
  ASSERT_TRUE(tree.CreateCollection("/c", "#C.C", "c").ok());
  ASSERT_TRUE(tree.Create("/c/r", "#T.v1_0_0.T", Json::Obj({{"x", 1}})).ok());
  EXPECT_EQ(tree.ETagOf("/c/r"), "W/\"1\"");

  ASSERT_TRUE(tree.Patch("/c/r", Json::Obj({{"x", 2}})).ok());
  EXPECT_EQ(tree.ETagOf("/c/r"), "W/\"2\"");

  ASSERT_TRUE(tree.Replace("/c/r", Json::Obj({{"y", 3}})).ok());
  EXPECT_EQ(tree.ETagOf("/c/r"), "W/\"3\"");
  EXPECT_FALSE(tree.GetRaw("/c/r")->Contains("x"));

  const std::string collection_etag = tree.ETagOf("/c");
  ASSERT_TRUE(tree.AddMember("/c", "/c/r").ok());
  EXPECT_NE(tree.ETagOf("/c"), collection_etag);
  // Idempotent AddMember does not bump.
  const std::string after_add = tree.ETagOf("/c");
  ASSERT_TRUE(tree.AddMember("/c", "/c/r").ok());
  EXPECT_EQ(tree.ETagOf("/c"), after_add);
}

TEST(ReadPathTree, SnapshotIsImmutableAcrossLaterWrites) {
  ResourceTree tree;
  ASSERT_TRUE(tree.Create("/r", "#T.v1_0_0.T", Json::Obj({{"x", 1}})).ok());
  ResourceTree::SnapshotPtr snap = tree.GetSnapshot("/r");
  ASSERT_NE(snap, nullptr);
  ASSERT_TRUE(tree.Patch("/r", Json::Obj({{"x", 2}})).ok());
  // The old snapshot still shows the old payload and etag.
  EXPECT_EQ(snap->payload.GetInt("x"), 1);
  EXPECT_EQ(snap->etag, "W/\"1\"");
  EXPECT_EQ(tree.GetSnapshot("/r")->payload.GetInt("x"), 2);
}

TEST(ReadPathTree, PatchIfMatchMismatchIsFailedPrecondition) {
  ResourceTree tree;
  ASSERT_TRUE(tree.Create("/r", "#T.v1_0_0.T", Json::Obj({{"x", 1}})).ok());
  EXPECT_EQ(tree.Patch("/r", Json::Obj({{"x", 2}}), "W/\"999\"").code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ(tree.ETagOf("/r"), "W/\"1\"");
  EXPECT_TRUE(tree.Patch("/r", Json::Obj({{"x", 2}}), "W/\"1\"").ok());
}

// ------------------------------------------------- Service fixture ---

class ReadPathService : public ::testing::Test {
 protected:
  ReadPathService() : service_(tree_, SchemaRegistry::BuiltIn()) {
    EXPECT_TRUE(tree_.Create("/redfish/v1", "#ServiceRoot.v1_15_0.ServiceRoot",
                             Json::Obj({{"Name", "root"}}))
                    .ok());
    EXPECT_TRUE(tree_.CreateCollection("/redfish/v1/Fabrics",
                                       "#FabricCollection.FabricCollection", "Fabrics")
                    .ok());
    EXPECT_TRUE(tree_.Create("/redfish/v1/Fabrics/f", "#Fabric.v1_3_0.Fabric",
                             Json::Obj({{"Name", "f"}, {"FabricType", "CXL"}}))
                    .ok());
    EXPECT_TRUE(tree_.AddMember("/redfish/v1/Fabrics", "/redfish/v1/Fabrics/f").ok());
  }

  http::Response Get(const std::string& target) {
    return service_.Handle(http::MakeRequest(http::Method::kGet, target));
  }

  ResourceTree tree_;
  RedfishService service_;
};

// ------------------------------------------------------ conditional GET ---

TEST_F(ReadPathService, IfNoneMatchReturns304UntilResourceChanges) {
  const http::Response first = Get("/redfish/v1/Fabrics/f");
  ASSERT_EQ(first.status, 200);
  const std::string etag = first.headers.GetOr("ETag", "");
  ASSERT_FALSE(etag.empty());

  http::Request conditional =
      http::MakeRequest(http::Method::kGet, "/redfish/v1/Fabrics/f");
  conditional.headers.Set("If-None-Match", etag);
  http::Response revalidated = service_.Handle(conditional);
  EXPECT_EQ(revalidated.status, 304);
  EXPECT_TRUE(revalidated.body.empty());
  EXPECT_EQ(revalidated.headers.Get("ETag"), etag);

  // A list of candidates and the wildcard also match.
  conditional.headers.Set("If-None-Match", "W/\"999\", " + etag);
  EXPECT_EQ(service_.Handle(conditional).status, 304);
  conditional.headers.Set("If-None-Match", "*");
  EXPECT_EQ(service_.Handle(conditional).status, 304);

  ASSERT_TRUE(tree_.Patch("/redfish/v1/Fabrics/f", Json::Obj({{"MaxZones", 8}})).ok());
  conditional.headers.Set("If-None-Match", etag);
  revalidated = service_.Handle(conditional);
  EXPECT_EQ(revalidated.status, 200);
  EXPECT_EQ(Parse(revalidated.body)->GetInt("MaxZones"), 8);
}

TEST_F(ReadPathService, HeadAdvertisesGetContentLengthWithoutBody) {
  const http::Response get = Get("/redfish/v1/Fabrics/f");
  ASSERT_EQ(get.status, 200);

  const http::Response head = service_.Handle(
      http::MakeRequest(http::Method::kHead, "/redfish/v1/Fabrics/f"));
  EXPECT_EQ(head.status, 200);
  EXPECT_TRUE(head.body.empty());
  EXPECT_EQ(head.headers.GetOr("Content-Length", ""),
            std::to_string(get.body.size()));
  EXPECT_EQ(head.headers.Get("ETag"), get.headers.Get("ETag"));

  http::Request conditional =
      http::MakeRequest(http::Method::kHead, "/redfish/v1/Fabrics/f");
  conditional.headers.Set("If-None-Match", get.headers.GetOr("ETag", ""));
  EXPECT_EQ(service_.Handle(conditional).status, 304);
}

// -------------------------------------------------------- response cache ---

TEST_F(ReadPathService, CacheServesRepeatsAndInvalidatesOnWrite) {
  ResponseCache& cache = service_.response_cache();
  const http::Response first = Get("/redfish/v1/Fabrics/f");
  const http::Response second = Get("/redfish/v1/Fabrics/f");
  EXPECT_EQ(first.body, second.body);
  EXPECT_GE(cache.stats().hits, 1u);

  ASSERT_TRUE(tree_.Patch("/redfish/v1/Fabrics/f", Json::Obj({{"MaxZones", 4}})).ok());
  const http::Response after = Get("/redfish/v1/Fabrics/f");
  EXPECT_EQ(Parse(after.body)->GetInt("MaxZones"), 4);
  EXPECT_EQ(after.headers.Get("ETag"), tree_.ETagOf("/redfish/v1/Fabrics/f"));
}

TEST_F(ReadPathService, CollectionBodyInvalidatedByMemberChange) {
  // $expand embeds member payloads; the collection's own ETag does not cover
  // them, so a member write must still invalidate the cached body.
  const http::Response before = Get("/redfish/v1/Fabrics?$expand=.");
  ASSERT_EQ(before.status, 200);
  (void)Get("/redfish/v1/Fabrics?$expand=.");  // cached now

  ASSERT_TRUE(
      tree_.Patch("/redfish/v1/Fabrics/f", Json::Obj({{"MaxZones", 77}})).ok());
  const http::Response after = Get("/redfish/v1/Fabrics?$expand=.");
  ASSERT_EQ(after.status, 200);
  EXPECT_THAT(after.body, ::testing::HasSubstr("77"));
}

TEST_F(ReadPathService, DisabledCacheStillServesCorrectBodies) {
  service_.response_cache().set_enabled(false);
  const http::Response first = Get("/redfish/v1/Fabrics/f");
  ASSERT_TRUE(tree_.Patch("/redfish/v1/Fabrics/f", Json::Obj({{"MaxZones", 2}})).ok());
  const http::Response after = Get("/redfish/v1/Fabrics/f");
  EXPECT_NE(first.body, after.body);
  EXPECT_EQ(Parse(after.body)->GetInt("MaxZones"), 2);
  EXPECT_EQ(service_.response_cache().size(), 0u);
}

// The core safety property: a served body always matches its ETag header,
// even while writers are concurrently mutating the resource and the cache is
// invalidating. Run under OFMF_SANITIZE=thread to catch data races too.
TEST_F(ReadPathService, BodyAlwaysMatchesEtagUnderConcurrentWrites) {
  constexpr int kReaders = 4;
  constexpr int kReadsPerReader = 400;
  constexpr int kWrites = 200;
  std::atomic<bool> start{false};
  std::atomic<int> mismatches{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!start.load()) std::this_thread::yield();
      for (int i = 0; i < kReadsPerReader; ++i) {
        const http::Response response = Get("/redfish/v1/Fabrics/f");
        if (response.status != 200) {
          ++mismatches;
          continue;
        }
        // The body's stamped etag must equal the ETag header: a cached body
        // served against a newer header would diverge here.
        const auto body = Parse(response.body);
        if (!body.ok() ||
            body->GetString("@odata.etag") != response.headers.GetOr("ETag", "-")) {
          ++mismatches;
        }
      }
    });
  }
  std::thread writer([&] {
    while (!start.load()) std::this_thread::yield();
    for (int i = 0; i < kWrites; ++i) {
      ASSERT_TRUE(
          tree_.Patch("/redfish/v1/Fabrics/f", Json::Obj({{"MaxZones", i}})).ok());
    }
  });

  start.store(true);
  for (std::thread& t : readers) t.join();
  writer.join();
  EXPECT_EQ(mismatches.load(), 0);

  // After the dust settles the cache converges on the final body.
  const http::Response final_get = Get("/redfish/v1/Fabrics/f");
  EXPECT_EQ(Parse(final_get.body)->GetInt("MaxZones"), kWrites - 1);
}

// Mixed collection readers (whose cached bodies embed member state) and
// member writers: the $expand body must never lag the members it embeds
// once the writer finishes.
TEST_F(ReadPathService, ExpandedCollectionNeverServesStaleMembers) {
  constexpr int kReaders = 3;
  constexpr int kReadsPerReader = 200;
  constexpr int kWrites = 100;
  std::atomic<bool> start{false};
  std::atomic<bool> done{false};
  std::atomic<int> stale_after_done{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!start.load()) std::this_thread::yield();
      for (int i = 0; i < kReadsPerReader; ++i) {
        const bool writer_done = done.load();
        const http::Response response = Get("/redfish/v1/Fabrics?$expand=.");
        if (response.status != 200) continue;
        if (writer_done &&
            response.body.find("\"MaxZones\":" + std::to_string(kWrites - 1)) ==
                std::string::npos) {
          ++stale_after_done;
        }
      }
    });
  }
  std::thread writer([&] {
    while (!start.load()) std::this_thread::yield();
    for (int i = 0; i < kWrites; ++i) {
      ASSERT_TRUE(
          tree_.Patch("/redfish/v1/Fabrics/f", Json::Obj({{"MaxZones", i}})).ok());
    }
    done.store(true);
  });

  start.store(true);
  for (std::thread& t : readers) t.join();
  writer.join();
  EXPECT_EQ(stale_after_done.load(), 0);

  const http::Response final_get = Get("/redfish/v1/Fabrics?$expand=.");
  EXPECT_THAT(final_get.body,
              ::testing::HasSubstr("\"MaxZones\":" + std::to_string(kWrites - 1)));
}

// ----------------------------------------------------- client ETag cache ---

TEST_F(ReadPathService, ClientEtagCacheRidesNotModified) {
  composability::OfmfClient client(
      std::make_unique<http::InProcessClient>(service_.Handler()));

  auto first = client.Get("/redfish/v1/Fabrics/f");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(client.etag_cache_hits(), 0u);

  auto second = client.Get("/redfish/v1/Fabrics/f");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(client.etag_cache_hits(), 1u);
  EXPECT_EQ(json::Serialize(*first), json::Serialize(*second));

  // A server-side change makes the next poll a real 200 again.
  ASSERT_TRUE(tree_.Patch("/redfish/v1/Fabrics/f", Json::Obj({{"MaxZones", 5}})).ok());
  auto third = client.Get("/redfish/v1/Fabrics/f");
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(client.etag_cache_hits(), 1u);
  EXPECT_EQ(third->GetInt("MaxZones"), 5);
  // And the refreshed entry serves the following poll via 304.
  ASSERT_TRUE(client.Get("/redfish/v1/Fabrics/f").ok());
  EXPECT_EQ(client.etag_cache_hits(), 2u);
}

}  // namespace
}  // namespace ofmf::redfish
