#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include "http/server.hpp"
#include "json/parse.hpp"
#include "json/serialize.hpp"
#include "redfish/errors.hpp"
#include "redfish/schemas.hpp"
#include "redfish/service.hpp"
#include "redfish/swordfish.hpp"
#include "redfish/tree.hpp"

namespace ofmf::redfish {
namespace {

using json::Json;
using json::Parse;
using ::testing::HasSubstr;

// ------------------------------------------------------------------ Tree ---

TEST(TreeTest, CreateGetStampsAnnotations) {
  ResourceTree tree;
  ASSERT_TRUE(tree.Create("/redfish/v1/Fabrics/CXL", "#Fabric.v1_3_0.Fabric",
                          Json::Obj({{"Name", "cxl"}}))
                  .ok());
  auto doc = tree.Get("/redfish/v1/Fabrics/CXL");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->GetString("@odata.id"), "/redfish/v1/Fabrics/CXL");
  EXPECT_EQ(doc->GetString("@odata.type"), "#Fabric.v1_3_0.Fabric");
  EXPECT_EQ(doc->GetString("@odata.etag"), "W/\"1\"");
  EXPECT_EQ(doc->GetString("Name"), "cxl");
  // Raw payload has no annotations.
  EXPECT_FALSE(tree.GetRaw("/redfish/v1/Fabrics/CXL")->Contains("@odata.id"));
}

TEST(TreeTest, DuplicateCreateRejected) {
  ResourceTree tree;
  ASSERT_TRUE(tree.Create("/a", "#T.v1_0_0.T", Json::MakeObject()).ok());
  EXPECT_EQ(tree.Create("/a", "#T.v1_0_0.T", Json::MakeObject()).code(),
            ErrorCode::kAlreadyExists);
}

TEST(TreeTest, PatchBumpsEtagAndMerges) {
  ResourceTree tree;
  ASSERT_TRUE(tree.Create("/a", "#T.v1_0_0.T",
                          Json::Obj({{"x", 1}, {"nested", Json::Obj({{"keep", 1}, {"drop", 2}})}}))
                  .ok());
  ASSERT_TRUE(
      tree.Patch("/a", *Parse(R"({"x":2,"nested":{"drop":null},"new":"v"})")).ok());
  auto doc = tree.Get("/a");
  EXPECT_EQ(doc->GetInt("x"), 2);
  EXPECT_EQ(doc->GetString("new"), "v");
  EXPECT_TRUE(doc->at("nested").Contains("keep"));
  EXPECT_FALSE(doc->at("nested").Contains("drop"));
  EXPECT_EQ(doc->GetString("@odata.etag"), "W/\"2\"");
}

TEST(TreeTest, PatchWithIfMatch) {
  ResourceTree tree;
  ASSERT_TRUE(tree.Create("/a", "#T.v1_0_0.T", Json::Obj({{"x", 1}})).ok());
  EXPECT_EQ(tree.Patch("/a", Json::Obj({{"x", 2}}), "W/\"999\"").code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_TRUE(tree.Patch("/a", Json::Obj({{"x", 2}}), "W/\"1\"").ok());
  EXPECT_TRUE(tree.Patch("/a", Json::Obj({{"x", 3}}), tree.ETagOf("/a")).ok());
  EXPECT_EQ(tree.Get("/a")->GetInt("x"), 3);
}

TEST(TreeTest, DeleteAndMissingLookups) {
  ResourceTree tree;
  ASSERT_TRUE(tree.Create("/a", "#T.v1_0_0.T", Json::MakeObject()).ok());
  EXPECT_TRUE(tree.Exists("/a"));
  ASSERT_TRUE(tree.Delete("/a").ok());
  EXPECT_FALSE(tree.Exists("/a"));
  EXPECT_EQ(tree.Get("/a").status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(tree.Delete("/a").code(), ErrorCode::kNotFound);
  EXPECT_EQ(tree.Patch("/a", Json::MakeObject()).code(), ErrorCode::kNotFound);
  EXPECT_EQ(tree.ETagOf("/a"), "");
}

TEST(TreeTest, CollectionMembership) {
  ResourceTree tree;
  ASSERT_TRUE(tree.CreateCollection("/c", "#XCollection.XCollection", "Xs").ok());
  ASSERT_TRUE(tree.AddMember("/c", "/c/1").ok());
  ASSERT_TRUE(tree.AddMember("/c", "/c/2").ok());
  ASSERT_TRUE(tree.AddMember("/c", "/c/1").ok());  // idempotent
  auto members = tree.Members("/c");
  ASSERT_TRUE(members.ok());
  EXPECT_THAT(*members, ::testing::ElementsAre("/c/1", "/c/2"));
  ASSERT_TRUE(tree.RemoveMember("/c", "/c/1").ok());
  EXPECT_EQ(tree.RemoveMember("/c", "/c/1").code(), ErrorCode::kNotFound);
  EXPECT_THAT(*tree.Members("/c"), ::testing::ElementsAre("/c/2"));
}

TEST(TreeTest, MembersOnNonCollectionFails) {
  ResourceTree tree;
  ASSERT_TRUE(tree.Create("/plain", "#T.v1_0_0.T", Json::Obj({{"a", 1}})).ok());
  EXPECT_EQ(tree.Members("/plain").status().code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(tree.AddMember("/plain", "/x").code(), ErrorCode::kFailedPrecondition);
}

TEST(TreeTest, UrisUnderRespectsSegmentBoundaries) {
  ResourceTree tree;
  for (const char* uri : {"/redfish/v1", "/redfish/v1/Systems", "/redfish/v1/Systems/1",
                          "/redfish/v1/SystemsOther"}) {
    ASSERT_TRUE(tree.Create(uri, "#T.v1_0_0.T", Json::MakeObject()).ok());
  }
  EXPECT_THAT(tree.UrisUnder("/redfish/v1/Systems"),
              ::testing::ElementsAre("/redfish/v1/Systems", "/redfish/v1/Systems/1"));
  EXPECT_EQ(tree.UrisUnder("/").size(), 4u);
  EXPECT_EQ(tree.size(), 4u);
}

TEST(TreeTest, ChangeListenersFireAndUnsubscribe) {
  ResourceTree tree;
  std::vector<std::string> events;
  const std::uint64_t token = tree.Subscribe([&](const ChangeEvent& event) {
    events.push_back(std::string(to_string(event.kind)) + " " + event.uri);
  });
  ASSERT_TRUE(tree.Create("/a", "#T.v1_0_0.T", Json::MakeObject()).ok());
  ASSERT_TRUE(tree.Patch("/a", Json::Obj({{"x", 1}})).ok());
  ASSERT_TRUE(tree.Delete("/a").ok());
  tree.Unsubscribe(token);
  ASSERT_TRUE(tree.Create("/b", "#T.v1_0_0.T", Json::MakeObject()).ok());
  EXPECT_THAT(events, ::testing::ElementsAre("ResourceCreated /a", "ResourceChanged /a",
                                             "ResourceRemoved /a"));
}

TEST(TreeTest, ReplaceKeepsTypeAndBumpsVersion) {
  ResourceTree tree;
  ASSERT_TRUE(tree.Create("/a", "#T.v1_0_0.T", Json::Obj({{"x", 1}})).ok());
  ASSERT_TRUE(tree.Replace("/a", Json::Obj({{"y", 2}})).ok());
  auto doc = tree.Get("/a");
  EXPECT_FALSE(doc->Contains("x"));
  EXPECT_EQ(doc->GetInt("y"), 2);
  EXPECT_EQ(doc->GetString("@odata.type"), "#T.v1_0_0.T");
  EXPECT_EQ(doc->GetString("@odata.etag"), "W/\"2\"");
}

TEST(TreeTest, TrailingSlashNormalized) {
  ResourceTree tree;
  ASSERT_TRUE(tree.Create("/a/b/", "#T.v1_0_0.T", Json::MakeObject()).ok());
  EXPECT_TRUE(tree.Exists("/a/b"));
  EXPECT_TRUE(tree.Get("/a/b/").ok());
}

// ---------------------------------------------------------------- Errors ---

TEST(ErrorsTest, PayloadShape) {
  const Json body = MakeErrorBody("Base.1.0.GeneralError", "something failed");
  EXPECT_EQ(body.at("error").GetString("code"), "Base.1.0.GeneralError");
  EXPECT_EQ(body.at("error").GetString("message"), "something failed");
  ASSERT_EQ(body.at("error").at("@Message.ExtendedInfo").as_array().size(), 1u);
}

TEST(ErrorsTest, StatusMapping) {
  const http::Response response = ErrorResponse(Status::NotFound("gone"));
  EXPECT_EQ(response.status, 404);
  const Json body = *Parse(response.body);
  EXPECT_EQ(body.at("error").GetString("code"), "Base.1.0.ResourceMissingAtURI");
  EXPECT_THAT(body.at("error").GetString("message"), HasSubstr("gone"));
}

TEST(ErrorsTest, ExtendedInfoEntries) {
  const Json body = MakeErrorBody("Base.1.0.GeneralError", "multi",
                                  {{"Base.1.0.PropertyMissing", "Name is required",
                                    "Critical", "Supply Name"},
                                   {"Base.1.0.PropertyValueError", "bad value",
                                    "Warning", "Fix value"}});
  const auto& info = body.at("error").at("@Message.ExtendedInfo").as_array();
  ASSERT_EQ(info.size(), 2u);
  EXPECT_EQ(info[0].GetString("Severity"), "Critical");
  EXPECT_EQ(info[1].GetString("MessageId"), "Base.1.0.PropertyValueError");
}

// --------------------------------------------------------------- Schemas ---

TEST(SchemaRegistryTest, BuiltInTypesPresent) {
  const SchemaRegistry registry = SchemaRegistry::BuiltIn();
  for (const char* type : {"Fabric", "Endpoint", "Zone", "Connection", "Switch", "Port",
                           "ComputerSystem", "Chassis", "Processor", "Memory",
                           "StorageService", "StoragePool", "Volume", "EventDestination",
                           "Session", "ResourceBlock"}) {
    EXPECT_NE(registry.Find(type), nullptr) << type;
  }
  EXPECT_EQ(registry.Find("NoSuchType"), nullptr);
}

TEST(SchemaRegistryTest, VersionedTypeTagResolves) {
  const SchemaRegistry registry = SchemaRegistry::BuiltIn();
  EXPECT_NE(registry.Find("#Fabric.v1_3_0.Fabric"), nullptr);
  EXPECT_NE(registry.Find("#Zone.v1_6_1.Zone"), nullptr);
}

TEST(SchemaRegistryTest, ValidateCreateEnforcesRequired) {
  const SchemaRegistry registry = SchemaRegistry::BuiltIn();
  EXPECT_TRUE(registry
                  .ValidateCreate("Fabric", *Parse(R"({"Name":"f","FabricType":"CXL"})"))
                  .ok());
  EXPECT_FALSE(registry.ValidateCreate("Fabric", *Parse(R"({"Name":"f"})")).ok());
  EXPECT_FALSE(
      registry.ValidateCreate("Fabric", *Parse(R"({"Name":"f","FabricType":"Carrier"})"))
          .ok());
  // Unknown types pass (OEM forgiveness).
  EXPECT_TRUE(registry.ValidateCreate("OemWidget", *Parse(R"({"anything":1})")).ok());
}

TEST(SchemaRegistryTest, ValidatePatchSkipsRequiredButChecksValues) {
  const SchemaRegistry registry = SchemaRegistry::BuiltIn();
  // Partial body without required members is fine for PATCH...
  EXPECT_TRUE(registry.ValidatePatch("Fabric", *Parse(R"({"MaxZones":8})")).ok());
  // ...but bad values are still rejected.
  EXPECT_FALSE(registry.ValidatePatch("Fabric", *Parse(R"({"MaxZones":-1})")).ok());
}

TEST(SchemaRegistryTest, ValidatePatchRejectsReadOnly) {
  const SchemaRegistry registry = SchemaRegistry::BuiltIn();
  const Status status = registry.ValidatePatch("Fabric", *Parse(R"({"Id":"new-id"})"));
  EXPECT_EQ(status.code(), ErrorCode::kPermissionDenied);
}

TEST(SchemaRegistryTest, StatusFragmentShared) {
  const SchemaRegistry registry = SchemaRegistry::BuiltIn();
  EXPECT_FALSE(registry
                   .ValidateCreate("Port", *Parse(R"({"Name":"p1",
                     "Status":{"State":"NotAState"}})"))
                   .ok());
  EXPECT_TRUE(registry
                  .ValidateCreate("Port", *Parse(R"({"Name":"p1",
                    "Status":{"State":"Enabled","Health":"OK"}})"))
                  .ok());
}

// --------------------------------------------------------------- Service ---

class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest() : service_(tree_, SchemaRegistry::BuiltIn()) {
    EXPECT_TRUE(tree_.Create("/redfish/v1", "#ServiceRoot.v1_15_0.ServiceRoot",
                             Json::Obj({{"Name", "root"}}))
                    .ok());
    EXPECT_TRUE(tree_.CreateCollection("/redfish/v1/Fabrics",
                                       "#FabricCollection.FabricCollection", "Fabrics")
                    .ok());
    service_.RegisterFactory(
        "/redfish/v1/Fabrics", "Fabric", [this](const Json& body) -> Result<std::string> {
          const std::string uri = "/redfish/v1/Fabrics/" + body.GetString("Name");
          OFMF_RETURN_IF_ERROR(tree_.Create(uri, "#Fabric.v1_3_0.Fabric", body));
          OFMF_RETURN_IF_ERROR(tree_.AddMember("/redfish/v1/Fabrics", uri));
          return uri;
        });
  }

  http::Response Do(http::Method method, const std::string& target) {
    return service_.Handle(http::MakeRequest(method, target));
  }
  http::Response DoJson(http::Method method, const std::string& target, const Json& body) {
    return service_.Handle(http::MakeJsonRequest(method, target, body));
  }

  ResourceTree tree_;
  RedfishService service_;
};

TEST_F(ServiceTest, GetServiceRoot) {
  const http::Response response = Do(http::Method::kGet, "/redfish/v1");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.headers.Get("OData-Version"), "4.0");
  const Json body = *Parse(response.body);
  EXPECT_EQ(body.GetString("Name"), "root");
}

TEST_F(ServiceTest, GetMissingIs404WithRedfishError) {
  const http::Response response = Do(http::Method::kGet, "/redfish/v1/Nope");
  EXPECT_EQ(response.status, 404);
  EXPECT_EQ(Parse(response.body)->at("error").GetString("code"),
            "Base.1.0.ResourceMissingAtURI");
}

TEST_F(ServiceTest, PostCreatesViaFactory) {
  const http::Response response =
      DoJson(http::Method::kPost, "/redfish/v1/Fabrics",
             Json::Obj({{"Name", "cxl0"}, {"FabricType", "CXL"}}));
  EXPECT_EQ(response.status, 201);
  EXPECT_EQ(response.headers.Get("Location"), "/redfish/v1/Fabrics/cxl0");
  EXPECT_TRUE(tree_.Exists("/redfish/v1/Fabrics/cxl0"));
  const Json collection = *Parse(Do(http::Method::kGet, "/redfish/v1/Fabrics").body);
  EXPECT_EQ(collection.GetInt("Members@odata.count"), 1);
}

TEST_F(ServiceTest, PostInvalidBodyRejectedBySchema) {
  const http::Response response = DoJson(http::Method::kPost, "/redfish/v1/Fabrics",
                                         Json::Obj({{"Name", "missing-type"}}));
  EXPECT_EQ(response.status, 400);
  EXPECT_THAT(Parse(response.body)->at("error").GetString("message"),
              HasSubstr("FabricType"));
  EXPECT_FALSE(tree_.Exists("/redfish/v1/Fabrics/missing-type"));
}

TEST_F(ServiceTest, PostMalformedJsonRejected) {
  http::Request request = http::MakeRequest(http::Method::kPost, "/redfish/v1/Fabrics");
  request.body = "{not json";
  EXPECT_EQ(service_.Handle(request).status, 400);
}

TEST_F(ServiceTest, PostToNonCollection405) {
  const http::Response response =
      DoJson(http::Method::kPost, "/redfish/v1", Json::Obj({{"a", 1}}));
  EXPECT_EQ(response.status, 405);
}

TEST_F(ServiceTest, PatchValidatesAndBumpsEtag) {
  DoJson(http::Method::kPost, "/redfish/v1/Fabrics",
         Json::Obj({{"Name", "f"}, {"FabricType", "CXL"}}));
  const http::Response ok_patch = DoJson(http::Method::kPatch, "/redfish/v1/Fabrics/f",
                                         Json::Obj({{"MaxZones", 16}}));
  EXPECT_EQ(ok_patch.status, 200);
  EXPECT_EQ(Parse(ok_patch.body)->GetInt("MaxZones"), 16);
  EXPECT_EQ(ok_patch.headers.Get("ETag"), "W/\"2\"");

  const http::Response readonly_patch = DoJson(
      http::Method::kPatch, "/redfish/v1/Fabrics/f", Json::Obj({{"Id", "hack"}}));
  EXPECT_EQ(readonly_patch.status, 403);
}

TEST_F(ServiceTest, PatchIfMatchPreconditions) {
  DoJson(http::Method::kPost, "/redfish/v1/Fabrics",
         Json::Obj({{"Name", "f"}, {"FabricType", "CXL"}}));
  http::Request request = http::MakeJsonRequest(
      http::Method::kPatch, "/redfish/v1/Fabrics/f", Json::Obj({{"MaxZones", 4}}));
  request.headers.Set("If-Match", "W/\"42\"");
  EXPECT_EQ(service_.Handle(request).status, 412);
  request.headers.Set("If-Match", tree_.ETagOf("/redfish/v1/Fabrics/f"));
  EXPECT_EQ(service_.Handle(request).status, 200);
}

TEST_F(ServiceTest, ConditionalGetWith304) {
  http::Request request = http::MakeRequest(http::Method::kGet, "/redfish/v1");
  http::Response first = service_.Handle(request);
  const std::string etag = first.headers.GetOr("ETag", "");
  ASSERT_FALSE(etag.empty());
  request.headers.Set("If-None-Match", etag);
  const http::Response second = service_.Handle(request);
  EXPECT_EQ(second.status, 304);
  EXPECT_TRUE(second.body.empty());
}

TEST_F(ServiceTest, DeleteWithHookVeto) {
  DoJson(http::Method::kPost, "/redfish/v1/Fabrics",
         Json::Obj({{"Name", "prot"}, {"FabricType", "CXL"}}));
  service_.RegisterDeleteHook("/redfish/v1/Fabrics", [](const std::string&) {
    return Status::PermissionDenied("fabrics are permanent");
  });
  EXPECT_EQ(Do(http::Method::kDelete, "/redfish/v1/Fabrics/prot").status, 403);
  EXPECT_TRUE(tree_.Exists("/redfish/v1/Fabrics/prot"));
}

TEST_F(ServiceTest, DeleteRemoves) {
  DoJson(http::Method::kPost, "/redfish/v1/Fabrics",
         Json::Obj({{"Name", "gone"}, {"FabricType", "CXL"}}));
  EXPECT_EQ(Do(http::Method::kDelete, "/redfish/v1/Fabrics/gone").status, 204);
  EXPECT_FALSE(tree_.Exists("/redfish/v1/Fabrics/gone"));
}

TEST_F(ServiceTest, ActionDispatch) {
  service_.RegisterAction("Fabric.Reset",
                          [](const std::string& uri, const Json& body) {
                            return http::MakeJsonResponse(
                                200, Json::Obj({{"Target", uri},
                                                {"Type", body.GetString("ResetType")}}));
                          });
  DoJson(http::Method::kPost, "/redfish/v1/Fabrics",
         Json::Obj({{"Name", "f"}, {"FabricType", "CXL"}}));
  const http::Response response =
      DoJson(http::Method::kPost, "/redfish/v1/Fabrics/f/Actions/Fabric.Reset",
             Json::Obj({{"ResetType", "ForceRestart"}}));
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(Parse(response.body)->GetString("Target"), "/redfish/v1/Fabrics/f");
  EXPECT_EQ(Parse(response.body)->GetString("Type"), "ForceRestart");

  EXPECT_EQ(DoJson(http::Method::kPost, "/redfish/v1/Fabrics/f/Actions/No.Such",
                   Json::MakeObject())
                .status,
            400);
  EXPECT_EQ(DoJson(http::Method::kPost, "/redfish/v1/Fabrics/nope/Actions/Fabric.Reset",
                   Json::MakeObject())
                .status,
            404);
}

TEST_F(ServiceTest, CollectionQueryOptionsEndToEnd) {
  for (int i = 0; i < 5; ++i) {
    DoJson(http::Method::kPost, "/redfish/v1/Fabrics",
           Json::Obj({{"Name", "f" + std::to_string(i)},
                      {"FabricType", i % 2 == 0 ? "CXL" : "Ethernet"}}));
  }
  const Json page =
      *Parse(Do(http::Method::kGet, "/redfish/v1/Fabrics?$skip=1&$top=2").body);
  EXPECT_EQ(page.GetInt("Members@odata.count"), 5);
  EXPECT_EQ(page.at("Members").as_array().size(), 2u);
  EXPECT_THAT(page.GetString("@odata.nextLink"), HasSubstr("$skip=3"));

  const Json filtered = *Parse(
      Do(http::Method::kGet, "/redfish/v1/Fabrics?$filter=FabricType%20eq%20%27CXL%27")
          .body);
  EXPECT_EQ(filtered.at("Members").as_array().size(), 3u);

  const Json expanded =
      *Parse(Do(http::Method::kGet, "/redfish/v1/Fabrics?$expand=.").body);
  EXPECT_EQ(expanded.at("Members").as_array()[0].GetString("FabricType"), "CXL");

  const Json selected = *Parse(
      Do(http::Method::kGet, "/redfish/v1/Fabrics/f0?$select=Name").body);
  EXPECT_TRUE(selected.Contains("Name"));
  EXPECT_FALSE(selected.Contains("FabricType"));
  EXPECT_TRUE(selected.Contains("@odata.id"));
}

TEST_F(ServiceTest, MiddlewareShortCircuits) {
  service_.SetMiddleware([](const http::Request& request)
                             -> std::optional<http::Response> {
    if (!request.headers.Contains("X-Auth-Token")) {
      return ErrorResponse(401, "Base.1.0.NoValidSession", "authenticate first");
    }
    return std::nullopt;
  });
  EXPECT_EQ(Do(http::Method::kGet, "/redfish/v1").status, 401);
  http::Request authed = http::MakeRequest(http::Method::kGet, "/redfish/v1");
  authed.headers.Set("X-Auth-Token", "t");
  EXPECT_EQ(service_.Handle(authed).status, 200);
}

TEST_F(ServiceTest, HeadMirrorsGetWithoutBody) {
  const http::Response response = Do(http::Method::kHead, "/redfish/v1");
  EXPECT_EQ(response.status, 200);
  EXPECT_TRUE(response.body.empty());
  EXPECT_TRUE(response.headers.Contains("ETag"));
}

TEST_F(ServiceTest, PutReplaces) {
  DoJson(http::Method::kPost, "/redfish/v1/Fabrics",
         Json::Obj({{"Name", "f"}, {"FabricType", "CXL"}, {"MaxZones", 4}}));
  const http::Response response =
      DoJson(http::Method::kPut, "/redfish/v1/Fabrics/f",
             Json::Obj({{"Name", "f"}, {"FabricType", "Ethernet"}}));
  EXPECT_EQ(response.status, 200);
  const Json doc = *Parse(response.body);
  EXPECT_EQ(doc.GetString("FabricType"), "Ethernet");
  EXPECT_FALSE(doc.Contains("MaxZones"));
}

TEST_F(ServiceTest, WorksOverTcpTransport) {
  http::TcpServer server;
  ASSERT_TRUE(server.Start(service_.Handler()).ok());
  http::TcpClient client(server.port());
  auto response = client.PostJson("/redfish/v1/Fabrics",
                                  Json::Obj({{"Name", "wire"}, {"FabricType", "GenZ"}}));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 201);
  auto fetched = client.Get("/redfish/v1/Fabrics/wire");
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(Parse(fetched->body)->GetString("FabricType"), "GenZ");
  server.Stop();
}

// ------------------------------------------------------------- Swordfish ---

TEST(SwordfishTest, PayloadBuilders) {
  const Json service = swordfish::StorageService("beeond", "BeeOND", "/redfish/v1/SS/beeond");
  EXPECT_EQ(service.GetString("Id"), "beeond");
  EXPECT_EQ(service.at("StoragePools").GetString("@odata.id"),
            "/redfish/v1/SS/beeond/StoragePools");

  Json pool = swordfish::StoragePool("pool0", 1000, 250);
  EXPECT_EQ(swordfish::PoolAllocatedBytes(pool), 1000u);
  EXPECT_EQ(swordfish::PoolConsumedBytes(pool), 250u);
  swordfish::SetPoolConsumed(pool, 700);
  EXPECT_EQ(swordfish::PoolConsumedBytes(pool), 700u);

  const Json volume = swordfish::Volume("v0", 4096, "RAID0");
  EXPECT_EQ(volume.GetInt("CapacityBytes"), 4096);
  EXPECT_EQ(volume.GetString("RAIDType"), "RAID0");

  // Builders satisfy the built-in schemas.
  const SchemaRegistry registry = SchemaRegistry::BuiltIn();
  EXPECT_TRUE(registry.ValidateCreate("StoragePool", pool).ok());
  EXPECT_TRUE(registry.ValidateCreate("Volume", volume).ok());
}

TEST(SwordfishTest, AccessorsOnMalformedPayloads) {
  EXPECT_EQ(swordfish::PoolAllocatedBytes(Json::MakeObject()), 0u);
  EXPECT_EQ(swordfish::PoolConsumedBytes(Json(5)), 0u);
}

}  // namespace
}  // namespace ofmf::redfish
