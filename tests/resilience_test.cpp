// Fault injection, retry/backoff, idempotency dedupe, circuit breaking and
// transactional compose: the machinery that keeps the OFMF coherent when
// transports drop, agents crash and clients replay.
#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include <deque>
#include <memory>

#include "agents/ib_agent.hpp"
#include "common/faults.hpp"
#include "composability/client.hpp"
#include "http/resilience.hpp"
#include "http/server.hpp"
#include "ofmf/breaker.hpp"
#include "ofmf/service.hpp"
#include "ofmf/uris.hpp"
#include "redfish/errors.hpp"

namespace ofmf {
namespace {

using json::Json;
using ::testing::HasSubstr;

// ----------------------------------------------------------- FaultInjector ---

TEST(FaultInjectorTest, SeededProbabilityIsDeterministic) {
  FaultInjector a(42), b(42);
  a.ArmProbability("p", FaultKind::kDropConnection, 0.3);
  b.ArmProbability("p", FaultKind::kDropConnection, 0.3);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.Evaluate("p").fired(), b.Evaluate("p").fired());
  }
  EXPECT_EQ(a.fires("p"), b.fires("p"));
  EXPECT_GT(a.fires("p"), 30u);  // ~60 expected at p=0.3
  EXPECT_LT(a.fires("p"), 90u);
}

TEST(FaultInjectorTest, NthCallFiresExactlyOnce) {
  FaultInjector inj;
  inj.ArmNthCall("n", FaultKind::kCrash, 3);
  for (int call = 1; call <= 6; ++call) {
    EXPECT_EQ(inj.Evaluate("n").fired(), call == 3) << "call " << call;
  }
  EXPECT_EQ(inj.calls("n"), 6u);
  EXPECT_EQ(inj.fires("n"), 1u);
}

TEST(FaultInjectorTest, WindowModelsCrashThenRecovery) {
  FaultInjector inj;
  inj.ArmWindow("w", FaultKind::kCrash, 2, 5);  // calls 2,3,4 fail
  std::vector<bool> fired;
  for (int call = 1; call <= 6; ++call) fired.push_back(inj.Evaluate("w").fired());
  EXPECT_EQ(fired, (std::vector<bool>{false, true, true, true, false, false}));
}

TEST(FaultInjectorTest, ScheduleFiresOnListedCallsOnly) {
  FaultInjector inj;
  inj.ArmSchedule("s", FaultKind::kDelay, {1, 4});
  EXPECT_TRUE(inj.Evaluate("s").fired());
  EXPECT_FALSE(inj.Evaluate("s").fired());
  EXPECT_FALSE(inj.Evaluate("s").fired());
  EXPECT_TRUE(inj.Evaluate("s").fired());
  EXPECT_EQ(inj.total_fires(), 2u);
}

TEST(FaultInjectorTest, KillSwitchAndDisarm) {
  FaultInjector inj;
  inj.ArmProbability("p", FaultKind::kCrash, 1.0);
  inj.set_enabled(false);
  EXPECT_FALSE(inj.Evaluate("p").fired());
  inj.set_enabled(true);
  EXPECT_TRUE(inj.Evaluate("p").fired());
  inj.Disarm("p");
  EXPECT_FALSE(inj.Evaluate("p").fired());
  EXPECT_EQ(inj.calls("p"), 2u);  // disabled probes are not counted
  inj.Disarm("never-armed");      // harmless
}

// -------------------------------------------------------------- decorators ---

/// Scripted transport: pops pre-programmed results, counts calls.
class ScriptedClient : public http::HttpClient {
 public:
  Result<http::Response> Send(const http::Request& request) override {
    ++calls_;
    last_request_ = request;
    if (script_.empty()) return http::MakeTextResponse(200, "ok");
    Result<http::Response> next = std::move(script_.front());
    script_.pop_front();
    return next;
  }
  void Push(Result<http::Response> result) { script_.push_back(std::move(result)); }
  int calls_ = 0;
  http::Request last_request_;

 private:
  std::deque<Result<http::Response>> script_;
};

TEST(FaultyClientTest, NullOrDisabledInjectorPassesThrough) {
  auto inner = std::make_unique<ScriptedClient>();
  ScriptedClient* raw = inner.get();
  http::FaultyClient faulty(std::move(inner), nullptr);
  EXPECT_EQ(faulty.Get("/x")->status, 200);
  EXPECT_EQ(raw->calls_, 1);
}

TEST(FaultyClientTest, DropConnectionNeverReachesInner) {
  auto faults = std::make_shared<FaultInjector>();
  faults->ArmNthCall("http.client", FaultKind::kDropConnection, 1);
  auto inner = std::make_unique<ScriptedClient>();
  ScriptedClient* raw = inner.get();
  http::FaultyClient faulty(std::move(inner), faults);
  auto result = faulty.Get("/x");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kUnavailable);
  EXPECT_EQ(raw->calls_, 0);
  EXPECT_EQ(faulty.Get("/x")->status, 200);  // rule consumed
}

TEST(FaultyClientTest, DropResponseAppliesRequestButLosesResponse) {
  auto faults = std::make_shared<FaultInjector>();
  faults->ArmNthCall("http.client", FaultKind::kDropResponse, 1);
  auto inner = std::make_unique<ScriptedClient>();
  ScriptedClient* raw = inner.get();
  http::FaultyClient faulty(std::move(inner), faults);
  auto result = faulty.Get("/x");
  ASSERT_FALSE(result.ok());
  EXPECT_THAT(result.status().message(), HasSubstr("response lost"));
  EXPECT_EQ(raw->calls_, 1);  // the request DID reach the peer
}

TEST(FaultyClientTest, ErrorStatusSynthesizesRetryableResponse) {
  auto faults = std::make_shared<FaultInjector>();
  faults->ArmNthCall("http.client", FaultKind::kErrorStatus, 1);
  auto inner = std::make_unique<ScriptedClient>();
  ScriptedClient* raw = inner.get();
  http::FaultyClient faulty(std::move(inner), faults);
  auto result = faulty.Get("/x");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->status, 503);
  EXPECT_TRUE(result->headers.Contains("Retry-After"));
  EXPECT_EQ(raw->calls_, 0);
}

http::RetryPolicy FastPolicy() {
  http::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.base_backoff_ms = 0;  // no sleeping in unit tests
  policy.max_backoff_ms = 0;
  policy.deadline_ms = 5000;
  return policy;
}

TEST(RetryingClientTest, RetriesTransportErrorsUntilSuccess) {
  auto inner = std::make_unique<ScriptedClient>();
  ScriptedClient* raw = inner.get();
  raw->Push(Status::Unavailable("boom"));
  raw->Push(Status::Timeout("slow"));
  http::RetryingClient retrying(std::move(inner), FastPolicy());
  auto result = retrying.Get("/x");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->status, 200);
  EXPECT_EQ(raw->calls_, 3);
  const http::RetryStats stats = retrying.stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.attempts, 3u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.transport_errors, 2u);
}

TEST(RetryingClientTest, RetryableHttpStatusesRetried) {
  auto inner = std::make_unique<ScriptedClient>();
  ScriptedClient* raw = inner.get();
  raw->Push(http::MakeTextResponse(503, "overloaded"));
  raw->Push(http::MakeTextResponse(429, "slow down"));
  http::RetryingClient retrying(std::move(inner), FastPolicy());
  EXPECT_EQ(retrying.Get("/x")->status, 200);
  EXPECT_EQ(raw->calls_, 3);
  EXPECT_EQ(retrying.stats().retryable_statuses, 2u);
}

TEST(RetryingClientTest, NonRetryableStatusReturnsImmediately) {
  auto inner = std::make_unique<ScriptedClient>();
  ScriptedClient* raw = inner.get();
  raw->Push(http::MakeTextResponse(404, "nope"));
  http::RetryingClient retrying(std::move(inner), FastPolicy());
  EXPECT_EQ(retrying.Get("/x")->status, 404);
  EXPECT_EQ(raw->calls_, 1);
}

TEST(RetryingClientTest, PostWithoutIdempotencyKeyNeverRetried) {
  auto inner = std::make_unique<ScriptedClient>();
  ScriptedClient* raw = inner.get();
  raw->Push(Status::Unavailable("boom"));
  http::RetryingClient retrying(std::move(inner), FastPolicy());
  auto result = retrying.PostJson("/x", Json::MakeObject());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(raw->calls_, 1);  // one attempt: a blind replay could double-apply
}

TEST(RetryingClientTest, PostWithRequestIdIsRetried) {
  auto inner = std::make_unique<ScriptedClient>();
  ScriptedClient* raw = inner.get();
  raw->Push(Status::Unavailable("boom"));
  http::RetryingClient retrying(std::move(inner), FastPolicy());
  http::Request request = http::MakeJsonRequest(http::Method::kPost, "/x",
                                                Json::MakeObject());
  request.headers.Set("X-Request-Id", "req-1");
  EXPECT_EQ(retrying.Send(request)->status, 200);
  EXPECT_EQ(raw->calls_, 2);
}

TEST(RetryingClientTest, GivesUpAfterMaxAttempts) {
  auto inner = std::make_unique<ScriptedClient>();
  ScriptedClient* raw = inner.get();
  for (int i = 0; i < 10; ++i) raw->Push(Status::Unavailable("down"));
  http::RetryingClient retrying(std::move(inner), FastPolicy());
  EXPECT_FALSE(retrying.Get("/x").ok());
  EXPECT_EQ(raw->calls_, 4);  // max_attempts
  EXPECT_EQ(retrying.stats().exhausted_attempts, 1u);
}

TEST(RetryingClientTest, DeadlineBudgetBoundsRetryAfterSleeps) {
  auto inner = std::make_unique<ScriptedClient>();
  ScriptedClient* raw = inner.get();
  http::Response overloaded = http::MakeTextResponse(503, "busy");
  overloaded.headers.Set("Retry-After", "2");  // 2 s, far beyond the budget
  raw->Push(overloaded);
  http::RetryPolicy policy = FastPolicy();
  policy.deadline_ms = 100;
  http::RetryingClient retrying(std::move(inner), policy);
  EXPECT_EQ(retrying.Get("/x")->status, 503);  // gave up instead of sleeping 2 s
  EXPECT_EQ(raw->calls_, 1);
  EXPECT_EQ(retrying.stats().deadline_exhausted, 1u);
}

// -------------------------------------------------------- HTTP error model ---

TEST(ErrorModelTest, TimeoutMapsToGatewayTimeout) {
  EXPECT_EQ(http::StatusToHttp(Status::Timeout("late")), 504);
  EXPECT_EQ(http::StatusToHttp(Status::Unavailable("down")), 503);
  EXPECT_EQ(http::ReasonPhrase(504), "Gateway Timeout");
  EXPECT_EQ(http::ReasonPhrase(429), "Too Many Requests");
}

TEST(ErrorModelTest, ServiceUnavailableCarriesRetryAfter) {
  const http::Response response = redfish::ErrorResponse(Status::Unavailable("down"));
  EXPECT_EQ(response.status, 503);
  EXPECT_TRUE(response.headers.Contains("Retry-After"));
  const http::Response not_found = redfish::ErrorResponse(Status::NotFound("gone"));
  EXPECT_FALSE(not_found.headers.Contains("Retry-After"));
}

// ---------------------------------------------------------- CircuitBreaker ---

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailuresOnly) {
  core::CircuitBreaker breaker({.failure_threshold = 3, .open_cooldown_calls = 2});
  breaker.RecordFailure();
  breaker.RecordFailure();
  breaker.RecordSuccess();  // resets the streak
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), core::BreakerState::kClosed);
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), core::BreakerState::kOpen);
  EXPECT_EQ(breaker.stats().opens, 1u);
}

TEST(CircuitBreakerTest, CooldownRejectionsLeadToHalfOpenProbe) {
  core::CircuitBreaker breaker({.failure_threshold = 1, .open_cooldown_calls = 2});
  breaker.RecordFailure();
  ASSERT_EQ(breaker.state(), core::BreakerState::kOpen);
  EXPECT_FALSE(breaker.Allow());
  EXPECT_FALSE(breaker.Allow());  // cooldown spent -> half-open
  EXPECT_EQ(breaker.state(), core::BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.Allow());  // the probe
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), core::BreakerState::kClosed);
  EXPECT_EQ(breaker.stats().closes, 1u);
  EXPECT_EQ(breaker.stats().rejected, 2u);
}

TEST(CircuitBreakerTest, FailedProbeReopens) {
  core::CircuitBreaker breaker({.failure_threshold = 1, .open_cooldown_calls = 1});
  breaker.RecordFailure();
  EXPECT_FALSE(breaker.Allow());
  ASSERT_EQ(breaker.state(), core::BreakerState::kHalfOpen);
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), core::BreakerState::kOpen);
  EXPECT_EQ(breaker.stats().opens, 2u);
}

// ------------------------------------------------- service-level integration ---

class ResilientServiceTest : public ::testing::Test {
 protected:
  ResilientServiceTest() {
    EXPECT_TRUE(graph_.AddVertex("sw0", fabricsim::VertexKind::kSwitch, 8).ok());
    EXPECT_TRUE(graph_.AddVertex("n1", fabricsim::VertexKind::kDevice, 2).ok());
    EXPECT_TRUE(graph_.AddVertex("n2", fabricsim::VertexKind::kDevice, 2).ok());
    EXPECT_TRUE(graph_.Connect("n1", 0, "sw0", 0, {50, 200}).ok());
    EXPECT_TRUE(graph_.Connect("n2", 0, "sw0", 1, {50, 200}).ok());
    sm_ = std::make_unique<fabricsim::IbSubnetManager>(graph_);
    EXPECT_TRUE(ofmf_.Bootstrap().ok());
    EXPECT_TRUE(ofmf_.RegisterAgent(std::make_shared<agents::IbAgent>("IB", *sm_)).ok());
    faults_ = std::make_shared<FaultInjector>(7);
    ofmf_.set_fault_injector(faults_);
    client_ = std::make_unique<composability::OfmfClient>(
        std::make_unique<http::InProcessClient>(ofmf_.Handler()));

    for (int i = 0; i < 4; ++i) {
      core::BlockCapability block;
      block.id = "blk" + std::to_string(i);
      block.block_type = "Compute";
      block.cores = 8;
      block.memory_gib = 32;
      EXPECT_TRUE(ofmf_.composition().RegisterBlock(block).ok());
    }
  }

  Json ConnectionBody() const {
    const std::string ep1 = core::FabricUri("IB") + "/Endpoints/n1";
    const std::string ep2 = core::FabricUri("IB") + "/Endpoints/n2";
    return Json::Obj(
        {{"Name", "mpi"},
         {"ConnectionType", "Network"},
         {"Links", Json::Obj({{"InitiatorEndpoints",
                               Json::Arr({Json::Obj({{"@odata.id", ep1}})})},
                              {"TargetEndpoints",
                               Json::Arr({Json::Obj({{"@odata.id", ep2}})})}})}});
  }

  std::string BlockUri(int i) const {
    return std::string(core::kResourceBlocks) + "/blk" + std::to_string(i);
  }

  fabricsim::FabricGraph graph_;
  std::unique_ptr<fabricsim::IbSubnetManager> sm_;
  core::OfmfService ofmf_;
  std::shared_ptr<FaultInjector> faults_;
  std::unique_ptr<composability::OfmfClient> client_;
};

TEST_F(ResilientServiceTest, AgentCrashOpensBreakerDegradesAndRecovers) {
  // Agent dead for its next 5 calls: three failures open the breaker, the
  // failed half-open probes keep it open, and once the window passes a probe
  // closes it again.
  faults_->ArmWindow("agent.IB", FaultKind::kCrash, 1, 6);
  const std::string connections_uri = core::FabricUri("IB") + "/Connections";
  core::CircuitBreaker* breaker = *ofmf_.BreakerForFabric("IB");

  int posts = 0;
  bool saw_open = false;
  while (breaker->state() != core::BreakerState::kOpen && posts < 10) {
    ++posts;
    EXPECT_FALSE(client_->Post(connections_uri, ConnectionBody()).ok());
  }
  ASSERT_EQ(breaker->state(), core::BreakerState::kOpen);
  saw_open = true;
  EXPECT_EQ(posts, 3);  // failure_threshold

  // Degraded, not deleted: the endpoint is still served, with Critical status.
  const std::string endpoint_uri = core::FabricUri("IB") + "/Endpoints/n1";
  Json endpoint = *client_->Get(endpoint_uri);
  EXPECT_EQ(endpoint.at("Status").GetString("State"), "UnavailableOffline");
  EXPECT_EQ(endpoint.at("Status").GetString("Health"), "Critical");
  EXPECT_TRUE(ofmf_.FabricDegraded("IB"));

  // Keep knocking: rejections, then probes; the agent recovers at call 6 and
  // the successful probe closes the breaker and restores the fabric.
  int extra = 0;
  while (breaker->state() != core::BreakerState::kClosed && extra < 60) {
    ++extra;
    (void)client_->Post(connections_uri, ConnectionBody());
  }
  EXPECT_EQ(breaker->state(), core::BreakerState::kClosed);
  EXPECT_FALSE(ofmf_.FabricDegraded("IB"));
  endpoint = *client_->Get(endpoint_uri);
  EXPECT_EQ(endpoint.at("Status").GetString("State"), "Enabled");
  EXPECT_EQ(endpoint.at("Status").GetString("Health"), "OK");

  const core::BreakerStats stats = breaker->stats();
  EXPECT_TRUE(saw_open);
  EXPECT_GE(stats.opens, 1u);
  EXPECT_EQ(stats.closes, 1u);
  EXPECT_GT(stats.rejected, 0u);

  // The counters surface over Redfish as the Resilience MetricReport.
  const Json report = *client_->Get(core::TelemetryService::ResilienceReportUri());
  bool saw_opens_metric = false;
  for (const Json& value : report.at("MetricValues").as_array()) {
    if (value.GetString("MetricId") == "BreakerOpens.IB") {
      saw_opens_metric = true;
      EXPECT_GE(value.GetDouble("MetricValue"), 1.0);
    }
  }
  EXPECT_TRUE(saw_opens_metric);
  EXPECT_EQ(report.at("Oem").at("Ofmf").at("Breakers").as_array()[0].GetString("State"),
            "Closed");
}

TEST_F(ResilientServiceTest, ClientErrorsDoNotTripTheBreaker) {
  core::CircuitBreaker* breaker = *ofmf_.BreakerForFabric("IB");
  const std::string connections_uri = core::FabricUri("IB") + "/Connections";
  for (int i = 0; i < 6; ++i) {
    // Body missing endpoints: the agent answers InvalidArgument; that says
    // nothing about agent health.
    EXPECT_FALSE(client_->Post(connections_uri,
                               Json::Obj({{"Name", "junk"},
                                          {"ConnectionType", "Network"}}))
                     .ok());
  }
  EXPECT_EQ(breaker->state(), core::BreakerState::kClosed);
  EXPECT_EQ(breaker->stats().failures, 0u);
}

TEST_F(ResilientServiceTest, PostReplayDedupedByRequestId) {
  http::Request compose = http::MakeJsonRequest(
      http::Method::kPost, core::kSystems,
      Json::Obj({{"Name", "dedupe"},
                 {"Links", Json::Obj({{"ResourceBlocks",
                                       Json::Arr({Json::Obj(
                                           {{"@odata.id", BlockUri(0)}})})}})}}));
  compose.headers.Set("X-Request-Id", "compose-once");
  const http::Response first = ofmf_.Handle(compose);
  ASSERT_EQ(first.status, 201);
  const http::Response replay = ofmf_.Handle(compose);
  EXPECT_EQ(replay.status, 201);
  EXPECT_EQ(replay.headers.GetOr("Location", ""),
            first.headers.GetOr("Location", ""));
  // One system, not two; three blocks still free.
  EXPECT_EQ(ofmf_.tree().Members(core::kSystems)->size(), 1u);
  EXPECT_EQ(ofmf_.composition().FreeBlockUris().size(), 3u);
}

TEST_F(ResilientServiceTest, FailedPostsAreNotReplayCached) {
  http::Request bad = http::MakeJsonRequest(
      http::Method::kPost, core::kSystems,
      Json::Obj({{"Name", "bad"},
                 {"Links", Json::Obj({{"ResourceBlocks",
                                       Json::Arr({Json::Obj(
                                           {{"@odata.id", "/redfish/v1/nope"}})})}})}}));
  bad.headers.Set("X-Request-Id", "retry-me");
  EXPECT_EQ(ofmf_.Handle(bad).status, 404);
  // Same key, now-valid body: must re-execute, not replay the 404.
  http::Request good = http::MakeJsonRequest(
      http::Method::kPost, core::kSystems,
      Json::Obj({{"Name", "good"},
                 {"Links", Json::Obj({{"ResourceBlocks",
                                       Json::Arr({Json::Obj(
                                           {{"@odata.id", BlockUri(0)}})})}})}}));
  good.headers.Set("X-Request-Id", "retry-me");
  EXPECT_EQ(ofmf_.Handle(good).status, 201);
}

TEST_F(ResilientServiceTest, ReplayCacheNeverBypassesAuth) {
  ofmf_.sessions().set_auth_required(true);
  const http::Response session = ofmf_.Handle(http::MakeJsonRequest(
      http::Method::kPost, core::kSessions,
      Json::Obj({{"UserName", "admin"}, {"Password", "ofmf"}})));
  ASSERT_EQ(session.status, 201);
  const std::string token = session.headers.GetOr("X-Auth-Token", "");

  http::Request compose = http::MakeJsonRequest(
      http::Method::kPost, core::kSystems,
      Json::Obj({{"Name", "secret"},
                 {"Links", Json::Obj({{"ResourceBlocks",
                                       Json::Arr({Json::Obj(
                                           {{"@odata.id", BlockUri(0)}})})}})}}));
  compose.headers.Set("X-Request-Id", "guessable-1");
  compose.headers.Set("X-Auth-Token", token);
  ASSERT_EQ(ofmf_.Handle(compose).status, 201);

  // An unauthenticated request with the (guessable) same id must hit the
  // 401, not the replay cache: auth runs before the dedupe lookup.
  http::Request stolen = compose;
  stolen.headers.Remove("X-Auth-Token");
  const http::Response denied = ofmf_.Handle(stolen);
  EXPECT_EQ(denied.status, 401);
  EXPECT_EQ(denied.headers.GetOr("Location", ""), "");

  // A *different* session reusing the id gets its own execution (the cache
  // is keyed by token), not the first session's cached Location.
  const http::Response other = ofmf_.Handle(http::MakeJsonRequest(
      http::Method::kPost, core::kSessions,
      Json::Obj({{"UserName", "admin"}, {"Password", "ofmf"}})));
  ASSERT_EQ(other.status, 201);
  http::Request cross = http::MakeJsonRequest(
      http::Method::kPost, core::kSystems,
      Json::Obj({{"Name", "mine"},
                 {"Links", Json::Obj({{"ResourceBlocks",
                                       Json::Arr({Json::Obj(
                                           {{"@odata.id", BlockUri(1)}})})}})}}));
  cross.headers.Set("X-Request-Id", "guessable-1");
  cross.headers.Set("X-Auth-Token", other.headers.GetOr("X-Auth-Token", ""));
  const http::Response fresh = ofmf_.Handle(cross);
  ASSERT_EQ(fresh.status, 201);
  EXPECT_NE(fresh.headers.GetOr("Location", ""),
            ofmf_.Handle(compose).headers.GetOr("Location", ""));
  EXPECT_EQ(ofmf_.tree().Members(core::kSystems)->size(), 2u);
}

TEST_F(ResilientServiceTest, ReplayWithDifferentBodyIsRejectedNotReplayed) {
  http::Request first = http::MakeJsonRequest(
      http::Method::kPost, core::kSystems,
      Json::Obj({{"Name", "one"},
                 {"Links", Json::Obj({{"ResourceBlocks",
                                       Json::Arr({Json::Obj(
                                           {{"@odata.id", BlockUri(0)}})})}})}}));
  first.headers.Set("X-Request-Id", "reused");
  ASSERT_EQ(ofmf_.Handle(first).status, 201);
  // Same key, different request: answering with the cached 201 would hand
  // back the wrong system, so the service refuses outright.
  http::Request second = http::MakeJsonRequest(
      http::Method::kPost, core::kSystems,
      Json::Obj({{"Name", "two"},
                 {"Links", Json::Obj({{"ResourceBlocks",
                                       Json::Arr({Json::Obj(
                                           {{"@odata.id", BlockUri(1)}})})}})}}));
  second.headers.Set("X-Request-Id", "reused");
  EXPECT_EQ(ofmf_.Handle(second).status, 400);
  EXPECT_EQ(ofmf_.tree().Members(core::kSystems)->size(), 1u);
}

TEST_F(ResilientServiceTest, RequestIdsDistinctAcrossClients) {
  // Two clients (think: two manager processes against one TCP service) must
  // never emit colliding idempotency keys, or the server would replay one
  // client's response for the other's unrelated POST.
  auto inner_a = std::make_unique<ScriptedClient>();
  auto inner_b = std::make_unique<ScriptedClient>();
  ScriptedClient* raw_a = inner_a.get();
  ScriptedClient* raw_b = inner_b.get();
  composability::OfmfClient a(std::move(inner_a));
  composability::OfmfClient b(std::move(inner_b));
  (void)a.Post("/x", Json::MakeObject());
  (void)b.Post("/x", Json::MakeObject());
  const std::string id_a = raw_a->last_request_.headers.GetOr("X-Request-Id", "");
  const std::string id_b = raw_b->last_request_.headers.GetOr("X-Request-Id", "");
  EXPECT_FALSE(id_a.empty());
  EXPECT_FALSE(id_b.empty());
  EXPECT_NE(id_a, id_b);  // both are this process's first POST
}

TEST_F(ResilientServiceTest, RestorePutsBackPreOutageStatusNotBlanketOk) {
  // n2 was legitimately unhealthy before the outage; recovery must not
  // launder it to OK.
  const std::string sick_uri = core::FabricUri("IB") + "/Endpoints/n2";
  ASSERT_TRUE(ofmf_.tree()
                  .Patch(sick_uri, Json::Obj({{"Status",
                                               Json::Obj({{"State", "Enabled"},
                                                          {"Health", "Warning"}})}}))
                  .ok());
  faults_->ArmWindow("agent.IB", FaultKind::kCrash, 1, 6);
  const std::string connections_uri = core::FabricUri("IB") + "/Connections";
  core::CircuitBreaker* breaker = *ofmf_.BreakerForFabric("IB");
  int calls = 0;
  while (breaker->state() != core::BreakerState::kClosed && calls < 60) {
    ++calls;
    (void)client_->Post(connections_uri, ConnectionBody());
  }
  ASSERT_EQ(breaker->state(), core::BreakerState::kClosed);
  ASSERT_FALSE(ofmf_.FabricDegraded("IB"));
  const Json healthy = *client_->Get(core::FabricUri("IB") + "/Endpoints/n1");
  EXPECT_EQ(healthy.at("Status").GetString("Health"), "OK");
  const Json sick = *client_->Get(sick_uri);
  EXPECT_EQ(sick.at("Status").GetString("State"), "Enabled");
  EXPECT_EQ(sick.at("Status").GetString("Health"), "Warning");
}

TEST_F(ResilientServiceTest, LostResponseRetryConvergesToOneSystem) {
  // Full decorated stack: OfmfClient -> RetryingClient -> FaultyClient ->
  // in-process service. The compose response is lost on the wire; the
  // client's stamped X-Request-Id lets the retry replay the stored response
  // instead of composing a second system.
  auto chaos = std::make_shared<FaultInjector>(11);
  chaos->ArmNthCall("http.client", FaultKind::kDropResponse, 1);
  http::RetryPolicy policy;
  policy.base_backoff_ms = 0;
  policy.max_backoff_ms = 0;
  auto stack = std::make_unique<http::RetryingClient>(
      std::make_unique<http::FaultyClient>(
          std::make_unique<http::InProcessClient>(ofmf_.Handler()), chaos),
      policy);
  composability::OfmfClient client(std::move(stack));

  auto system = client.Post(
      core::kSystems,
      Json::Obj({{"Name", "lossy"},
                 {"Links", Json::Obj({{"ResourceBlocks",
                                       Json::Arr({Json::Obj(
                                           {{"@odata.id", BlockUri(1)}})})}})}}));
  ASSERT_TRUE(system.ok());
  EXPECT_EQ(chaos->fires("http.client"), 1u);
  EXPECT_EQ(ofmf_.tree().Members(core::kSystems)->size(), 1u);
  EXPECT_EQ(ofmf_.CollectResilience().replayed_posts, 1u);
}

TEST_F(ResilientServiceTest, ComposeRollsBackClaimsOnFailure) {
  // blk2 is already taken; composing {blk0, blk2} must fail and leave blk0
  // Unused with no partial system behind.
  ASSERT_TRUE(ofmf_.composition().Compose("holder", {BlockUri(2)}).ok());
  const auto before_systems = ofmf_.tree().Members(core::kSystems)->size();
  auto result = ofmf_.composition().Compose("doomed", {BlockUri(0), BlockUri(2)});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(*ofmf_.composition().BlockState(BlockUri(0)), "Unused");
  EXPECT_EQ(ofmf_.tree().Members(core::kSystems)->size(), before_systems);

  // Duplicate block references are rejected up front.
  EXPECT_EQ(ofmf_.composition()
                .Compose("dup", {BlockUri(0), BlockUri(0)})
                .status()
                .code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(ResilientServiceTest, DecomposeIsIdempotent) {
  auto system = ofmf_.composition().Compose("once", {BlockUri(3)});
  ASSERT_TRUE(system.ok());
  EXPECT_TRUE(ofmf_.composition().Decompose(*system).ok());
  EXPECT_TRUE(ofmf_.composition().Decompose(*system).ok());  // converged
  EXPECT_EQ(*ofmf_.composition().BlockState(BlockUri(3)), "Unused");
}

TEST_F(ResilientServiceTest, EtagCacheForgetsOwnMutations) {
  // Delete-then-recreate at one URI restarts the version counter, so a
  // client that kept the old ETag would see a spurious 304 and serve the
  // previous resource's body. Forget() on own mutations prevents it.
  const std::string uri = "/redfish/v1/Chassis/rack1";
  ASSERT_TRUE(ofmf_.tree()
                  .Create(uri, "#Chassis.v1_0_0.Chassis", Json::Obj({{"Name", "old"}}))
                  .ok());
  EXPECT_EQ(client_->Get(uri)->GetString("Name"), "old");  // cached, W/"1"
  ASSERT_TRUE(client_->Delete(uri).ok());                  // forgets the entry
  ASSERT_TRUE(ofmf_.tree()
                  .Create(uri, "#Chassis.v1_0_0.Chassis", Json::Obj({{"Name", "new"}}))
                  .ok());
  EXPECT_EQ(client_->Get(uri)->GetString("Name"), "new");  // W/"1" again: no 304
}

}  // namespace
}  // namespace ofmf
