#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include "composability/client.hpp"
#include "composability/scheduler.hpp"
#include "ofmf/service.hpp"

namespace ofmf::composability {
namespace {

JobRequirement J(const std::string& name, int cores, double mem, double hours,
                 int gpus = 0) {
  JobRequirement job;
  job.name = name;
  job.cores = cores;
  job.memory_gib = mem;
  job.gpus = gpus;
  job.duration_hours = hours;
  return job;
}

// ---------------------------------------------------------------- Static ---

TEST(StaticScheduleTest, SerializesWhenMachineTooSmall) {
  // 2 nodes; every job needs 2 nodes -> strictly serial.
  const std::vector<JobRequirement> jobs = {J("a", 112, 64, 1.0), J("b", 112, 64, 2.0),
                                            J("c", 112, 64, 1.5)};
  const ScheduleOutcome outcome = RunStaticSchedule(jobs, 2);
  EXPECT_EQ(outcome.rejected, 0);
  EXPECT_NEAR(outcome.makespan_hours, 4.5, 1e-9);
  // b waits 1 h, c waits 3 h.
  EXPECT_NEAR(ToSeconds(outcome.jobs[1].wait_time()) / 3600.0, 1.0, 1e-9);
  EXPECT_NEAR(ToSeconds(outcome.jobs[2].wait_time()) / 3600.0, 3.0, 1e-9);
}

TEST(StaticScheduleTest, ParallelWhenItFits) {
  const std::vector<JobRequirement> jobs = {J("a", 56, 64, 2.0), J("b", 56, 64, 2.0)};
  const ScheduleOutcome outcome = RunStaticSchedule(jobs, 2);
  EXPECT_NEAR(outcome.makespan_hours, 2.0, 1e-9);
  EXPECT_NEAR(outcome.mean_wait_hours, 0.0, 1e-9);
}

TEST(StaticScheduleTest, BackfillOvertakesBlockedHead) {
  // Head needs the whole 2-node machine; one node busy -> without backfill
  // the small job waits behind it.
  const std::vector<JobRequirement> jobs = {J("long", 56, 64, 4.0),
                                            J("wide", 112, 64, 1.0),
                                            J("small", 28, 32, 1.0)};
  const ScheduleOutcome fifo = RunStaticSchedule(jobs, 2, {}, /*backfill=*/false);
  const ScheduleOutcome backfilled = RunStaticSchedule(jobs, 2, {}, /*backfill=*/true);
  // With backfill, "small" starts at t=0 next to "long".
  EXPECT_EQ(backfilled.jobs[2].start_time, 0);
  EXPECT_GT(fifo.jobs[2].start_time, 0);
  EXPECT_LE(backfilled.makespan_hours, fifo.makespan_hours + 1e-9);
}

TEST(StaticScheduleTest, ImpossibleJobRejectedNotStalled) {
  const std::vector<JobRequirement> jobs = {J("huge", 1120, 64, 1.0), J("ok", 28, 32, 1.0)};
  const ScheduleOutcome outcome = RunStaticSchedule(jobs, 2);
  EXPECT_EQ(outcome.rejected, 1);
  EXPECT_TRUE(outcome.jobs[0].rejected);
  EXPECT_EQ(outcome.jobs[1].start_time, 0);
}

TEST(StaticScheduleTest, GpuDimensionDrivesNodeCount) {
  // 8 GPUs needed, 2 per node -> 4 nodes even though cores fit in one.
  const std::vector<JobRequirement> jobs = {J("gpu", 8, 16, 1.0, 8)};
  const ScheduleOutcome small = RunStaticSchedule(jobs, 2);
  EXPECT_EQ(small.rejected, 1);
  const ScheduleOutcome big = RunStaticSchedule(jobs, 4);
  EXPECT_EQ(big.rejected, 0);
}

// ------------------------------------------------------------ Composable ---

class ComposableSchedulerTest : public ::testing::Test {
 protected:
  ComposableSchedulerTest() {
    EXPECT_TRUE(ofmf_.Bootstrap().ok());
    client_ = std::make_unique<OfmfClient>(
        std::make_unique<http::InProcessClient>(ofmf_.Handler()));
    manager_ = std::make_unique<ComposabilityManager>(*client_);
    // 4 compute blocks of 28 cores / 64 GiB.
    for (int i = 0; i < 4; ++i) {
      core::BlockCapability block;
      block.id = "cpu-" + std::to_string(i);
      block.block_type = "Compute";
      block.cores = 28;
      block.memory_gib = 64;
      EXPECT_TRUE(ofmf_.composition().RegisterBlock(block).ok());
    }
  }

  core::OfmfService ofmf_;
  std::unique_ptr<OfmfClient> client_;
  std::unique_ptr<ComposabilityManager> manager_;
};

TEST_F(ComposableSchedulerTest, RunsStreamToCompletionAndFreesPool) {
  const std::vector<JobRequirement> jobs = {J("a", 56, 100, 1.0), J("b", 56, 100, 2.0),
                                            J("c", 28, 32, 0.5), J("d", 112, 200, 1.0)};
  ComposableScheduler scheduler(*manager_, Policy::kBestFit, true);
  auto outcome = scheduler.Run(jobs, 112);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->rejected, 0);
  for (const ScheduledJob& job : outcome->jobs) {
    EXPECT_GE(job.start_time, 0) << job.requirement.name;
    EXPECT_GT(job.end_time, job.start_time) << job.requirement.name;
  }
  EXPECT_GT(outcome->makespan_hours, 0.0);
  EXPECT_GT(outcome->core_utilization, 0.0);
  EXPECT_LE(outcome->core_utilization, 1.0);
  // Every block returned to the pool.
  EXPECT_EQ(ofmf_.composition().FreeBlockUris().size(), 4u);
  EXPECT_TRUE(manager_->systems().empty());
}

TEST_F(ComposableSchedulerTest, ParallelJobsOverlap) {
  const std::vector<JobRequirement> jobs = {J("a", 28, 32, 2.0), J("b", 28, 32, 2.0)};
  ComposableScheduler scheduler(*manager_, Policy::kBestFit, true);
  auto outcome = scheduler.Run(jobs, 112);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->jobs[0].start_time, 0);
  EXPECT_EQ(outcome->jobs[1].start_time, 0);
  EXPECT_NEAR(outcome->makespan_hours, 2.0, 1e-9);
}

TEST_F(ComposableSchedulerTest, QueuesWhenPoolBusy) {
  // Each job takes the whole pool.
  const std::vector<JobRequirement> jobs = {J("a", 112, 256, 1.0), J("b", 112, 256, 1.0)};
  ComposableScheduler scheduler(*manager_, Policy::kBestFit, true);
  auto outcome = scheduler.Run(jobs, 112);
  ASSERT_TRUE(outcome.ok());
  EXPECT_NEAR(outcome->makespan_hours, 2.0, 1e-9);
  EXPECT_NEAR(ToSeconds(outcome->jobs[1].wait_time()) / 3600.0, 1.0, 1e-9);
}

TEST_F(ComposableSchedulerTest, UnsatisfiableJobRejected) {
  const std::vector<JobRequirement> jobs = {J("impossible", 1000, 64, 1.0),
                                            J("fine", 28, 32, 1.0)};
  ComposableScheduler scheduler(*manager_, Policy::kBestFit, true);
  auto outcome = scheduler.Run(jobs, 112);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->rejected, 1);
  EXPECT_TRUE(outcome->jobs[0].rejected);
  EXPECT_FALSE(outcome->jobs[1].rejected);
  EXPECT_EQ(ofmf_.composition().FreeBlockUris().size(), 4u);
}

TEST_F(ComposableSchedulerTest, BackfillImprovesOrEqualsFifo) {
  const std::vector<JobRequirement> jobs = {J("long", 56, 128, 4.0),
                                            J("wide", 112, 256, 1.0),
                                            J("small", 28, 32, 1.0)};
  ComposableScheduler fifo(*manager_, Policy::kBestFit, /*backfill=*/false);
  auto fifo_outcome = fifo.Run(jobs, 112);
  ASSERT_TRUE(fifo_outcome.ok());
  ComposableScheduler backfilled(*manager_, Policy::kBestFit, /*backfill=*/true);
  auto backfill_outcome = backfilled.Run(jobs, 112);
  ASSERT_TRUE(backfill_outcome.ok());
  EXPECT_LE(backfill_outcome->makespan_hours, fifo_outcome->makespan_hours + 1e-9);
  EXPECT_EQ(backfill_outcome->jobs[2].start_time, 0);  // small backfilled at t=0
}

TEST_F(ComposableSchedulerTest, EmptyStreamIsTrivial) {
  ComposableScheduler scheduler(*manager_, Policy::kBestFit, true);
  auto outcome = scheduler.Run({}, 112);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->makespan_hours, 0.0);
  EXPECT_EQ(outcome->rejected, 0);
}

}  // namespace
}  // namespace ofmf::composability
