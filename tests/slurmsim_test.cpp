#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "common/hostlist.hpp"
#include "slurmsim/slurm.hpp"

namespace ofmf::slurmsim {
namespace {

using ::testing::ElementsAre;
using ::testing::HasSubstr;

class SlurmTest : public ::testing::Test {
 protected:
  SlurmTest() {
    cluster::ClusterSpec spec;
    spec.node_count = 8;
    machine_ = std::make_unique<cluster::Cluster>(spec);
    slurm_ = std::make_unique<SlurmManager>(*machine_, clock_);
  }

  SimClock clock_;
  std::unique_ptr<cluster::Cluster> machine_;
  std::unique_ptr<SlurmManager> slurm_;
};

TEST_F(SlurmTest, SubmitAllocatesContiguousNodesAndEnv) {
  JobSpec spec;
  spec.name = "hpl";
  spec.node_count = 4;
  spec.constraints = {"beeond"};
  auto id = slurm_->Submit(spec);
  ASSERT_TRUE(id.ok());
  const Job job = *slurm_->GetJob(*id);
  EXPECT_EQ(job.state, JobState::kRunning);
  EXPECT_THAT(job.hosts, ElementsAre("node001", "node002", "node003", "node004"));
  EXPECT_EQ(job.env.at("SLURM_NODELIST"), "node[001-004]");
  EXPECT_EQ(job.env.at("SLURM_JOB_CONSTRAINTS"), "beeond");
  EXPECT_EQ(job.env.at("SLURM_NNODES"), "4");
  EXPECT_EQ(job.env.at("SLURM_JOB_ID"), std::to_string(*id));
}

TEST_F(SlurmTest, SecondJobGetsDisjointNodes) {
  JobSpec spec;
  spec.node_count = 3;
  auto first = slurm_->Submit(spec);
  ASSERT_TRUE(first.ok());
  auto second = slurm_->Submit(spec);
  ASSERT_TRUE(second.ok());
  const Job job2 = *slurm_->GetJob(*second);
  EXPECT_THAT(job2.hosts, ElementsAre("node004", "node005", "node006"));
  EXPECT_EQ(slurm_->BusyHosts().size(), 6u);
}

TEST_F(SlurmTest, AllocationExhaustion) {
  JobSpec spec;
  spec.node_count = 8;
  ASSERT_TRUE(slurm_->Submit(spec).ok());
  spec.node_count = 1;
  EXPECT_EQ(slurm_->Submit(spec).status().code(), ErrorCode::kResourceExhausted);
  JobSpec zero;
  zero.node_count = 0;
  EXPECT_FALSE(slurm_->Submit(zero).ok());
}

TEST_F(SlurmTest, DrainedNodesSkipped) {
  (*machine_->Node("node001"))->SetDrained(true);
  JobSpec spec;
  spec.node_count = 2;
  auto id = slurm_->Submit(spec);
  ASSERT_TRUE(id.ok());
  EXPECT_THAT(slurm_->GetJob(*id)->hosts, ElementsAre("node002", "node003"));
}

TEST_F(SlurmTest, PrologsRunPerNodeInParallelCostingTheMax) {
  std::vector<std::string> prolog_hosts;
  slurm_->AddProlog([&](const Job&, const std::string& host) -> ScriptResult {
    prolog_hosts.push_back(host);
    // node002 is slow; the job should pay only the max, not the sum.
    return {Status::Ok(), host == "node002" ? Millis(500) : Millis(100)};
  });
  JobSpec spec;
  spec.node_count = 3;
  const SimTime before = clock_.now();
  auto id = slurm_->Submit(spec);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(prolog_hosts.size(), 3u);
  EXPECT_EQ(slurm_->GetJob(*id)->prolog_duration, Millis(500));
  EXPECT_EQ(clock_.now() - before, Millis(500));
}

TEST_F(SlurmTest, ConstraintDrivenPrologMatchesPaperToggle) {
  int beeond_starts = 0;
  slurm_->AddProlog([&](const Job& job, const std::string&) -> ScriptResult {
    if (job.HasConstraint("beeond")) ++beeond_starts;
    return {};
  });
  JobSpec plain;
  plain.node_count = 2;
  ASSERT_TRUE(slurm_->Submit(plain).ok());
  EXPECT_EQ(beeond_starts, 0);
  JobSpec with_constraint;
  with_constraint.node_count = 2;
  with_constraint.constraints = {"beeond"};
  ASSERT_TRUE(slurm_->Submit(with_constraint).ok());
  EXPECT_EQ(beeond_starts, 2);  // once per allocated node
}

TEST_F(SlurmTest, PrologFailureDrainsNodeFailsJobAndLogs) {
  slurm_->AddProlog([&](const Job&, const std::string& host) -> ScriptResult {
    if (host == "node002") return {Status::Unavailable("udev rule failed"), 0};
    return {};
  });
  JobSpec spec;
  spec.node_count = 3;
  const auto submitted = slurm_->Submit(spec);
  EXPECT_FALSE(submitted.ok());
  EXPECT_TRUE((*machine_->Node("node002"))->drained());
  ASSERT_EQ(slurm_->log().size(), 1u);
  EXPECT_THAT(slurm_->log()[0], HasSubstr("node002"));
  EXPECT_THAT(slurm_->log()[0], HasSubstr("drained"));
  const auto jobs = slurm_->Jobs();
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].state, JobState::kFailed);
  EXPECT_THAT(jobs[0].failure_reason, HasSubstr("udev"));
  // The failed job holds no nodes.
  EXPECT_TRUE(slurm_->BusyHosts().empty());
}

TEST_F(SlurmTest, CompleteRunsEpilogAndFreesNodes) {
  int epilogs = 0;
  slurm_->AddEpilog([&](const Job&, const std::string&) -> ScriptResult {
    ++epilogs;
    return {Status::Ok(), Millis(200)};
  });
  JobSpec spec;
  spec.node_count = 2;
  auto id = slurm_->Submit(spec);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(slurm_->Complete(*id).ok());
  EXPECT_EQ(epilogs, 2);
  const Job job = *slurm_->GetJob(*id);
  EXPECT_EQ(job.state, JobState::kCompleted);
  EXPECT_EQ(job.epilog_duration, Millis(200));
  EXPECT_TRUE(slurm_->BusyHosts().empty());
  // Completing twice fails.
  EXPECT_EQ(slurm_->Complete(*id).code(), ErrorCode::kFailedPrecondition);
}

TEST_F(SlurmTest, EpilogFailureDrainsAndFails) {
  slurm_->AddEpilog([&](const Job&, const std::string& host) -> ScriptResult {
    if (host == "node001") return {Status::Internal("reformat failed"), 0};
    return {};
  });
  JobSpec spec;
  spec.node_count = 2;
  auto id = slurm_->Submit(spec);
  ASSERT_TRUE(id.ok());
  EXPECT_FALSE(slurm_->Complete(*id).ok());
  EXPECT_EQ(slurm_->GetJob(*id)->state, JobState::kFailed);
  EXPECT_TRUE((*machine_->Node("node001"))->drained());
}

TEST_F(SlurmTest, CancelAndLookupErrors) {
  JobSpec spec;
  spec.node_count = 1;
  auto id = slurm_->Submit(spec);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(slurm_->Cancel(*id).ok());
  EXPECT_EQ(slurm_->GetJob(*id)->state, JobState::kCancelled);
  EXPECT_EQ(slurm_->Cancel(*id).code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(slurm_->Cancel(999).code(), ErrorCode::kNotFound);
  EXPECT_FALSE(slurm_->GetJob(999).ok());
  EXPECT_EQ(slurm_->Complete(999).code(), ErrorCode::kNotFound);
  EXPECT_TRUE(slurm_->BusyHosts().empty());
}

TEST_F(SlurmTest, InteractiveJobsShareTheSamePath) {
  JobSpec spec;
  spec.node_count = 1;
  spec.interactive = true;
  spec.constraints = {"beeond"};
  auto id = slurm_->Submit(spec);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(slurm_->GetJob(*id)->state, JobState::kRunning);
}

TEST_F(SlurmTest, NodelistRoundTripsThroughHostlist) {
  JobSpec spec;
  spec.node_count = 5;
  auto id = slurm_->Submit(spec);
  ASSERT_TRUE(id.ok());
  const Job job = *slurm_->GetJob(*id);
  const auto expanded = ExpandHostlist(job.env.at("SLURM_NODELIST"));
  ASSERT_TRUE(expanded.ok());
  EXPECT_EQ(*expanded, job.hosts);
  EXPECT_EQ(LowestHost(*expanded), "node001");
}

TEST_F(SlurmTest, NodeFailureKillsRunningJobsAndDrains) {
  JobSpec spec;
  spec.node_count = 3;
  auto victim = slurm_->Submit(spec);
  ASSERT_TRUE(victim.ok());
  spec.node_count = 2;
  auto survivor = slurm_->Submit(spec);
  ASSERT_TRUE(survivor.ok());

  ASSERT_TRUE(slurm_->FailNode("node002", "ECC storm").ok());
  EXPECT_EQ(slurm_->GetJob(*victim)->state, JobState::kFailed);
  EXPECT_THAT(slurm_->GetJob(*victim)->failure_reason, HasSubstr("NODE_FAIL node002"));
  EXPECT_EQ(slurm_->GetJob(*survivor)->state, JobState::kRunning);  // disjoint nodes
  EXPECT_TRUE((*machine_->Node("node002"))->drained());
  // The failed job's nodes are free again; the drained one is excluded.
  JobSpec refill;
  refill.node_count = 2;
  auto refill_id = slurm_->Submit(refill);
  ASSERT_TRUE(refill_id.ok());
  const Job refill_job = *slurm_->GetJob(*refill_id);
  for (const std::string& host : refill_job.hosts) {
    EXPECT_NE(host, "node002");
  }
  // Completing the dead job is rejected.
  EXPECT_EQ(slurm_->Complete(*victim).code(), ErrorCode::kFailedPrecondition);
}

TEST_F(SlurmTest, FailNodeWithoutJobsJustDrains) {
  ASSERT_TRUE(slurm_->FailNode("node007", "preventive").ok());
  EXPECT_TRUE((*machine_->Node("node007"))->drained());
  EXPECT_FALSE(slurm_->log().empty());
  EXPECT_EQ(slurm_->FailNode("ghost", "x").code(), ErrorCode::kNotFound);
}

TEST(SlurmStateTest, Names) {
  EXPECT_STREQ(to_string(JobState::kRunning), "RUNNING");
  EXPECT_STREQ(to_string(JobState::kFailed), "FAILED");
}

}  // namespace
}  // namespace ofmf::slurmsim
