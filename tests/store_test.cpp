// Durability-layer tests: journal framing and torn-tail detection, group
// commit, snapshot compaction + rotation, crash/torn-write/short-fsync
// injection, and the service-level recovery contract — restart + recovery
// rebuilds a tree byte-identical to a reference replayed from the surviving
// journal prefix, with no half-composed system and no leaked block claim.
#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/faults.hpp"
#include "common/rng.hpp"
#include "http/message.hpp"
#include "json/parse.hpp"
#include "json/serialize.hpp"
#include "ofmf/service.hpp"
#include "ofmf/uris.hpp"
#include "redfish/tree.hpp"
#include "store/journal.hpp"
#include "store/store.hpp"

namespace ofmf {
namespace {

namespace fs = std::filesystem;
using json::Json;
using store::Journal;
using store::PersistentStore;
using store::StoreOptions;

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "ofmf_store_" + name;
  fs::remove_all(dir);
  return dir;
}

StoreOptions Options(const std::string& dir) {
  StoreOptions options;
  options.dir = dir;
  return options;
}

/// Wires a tree's mutation log straight into a store (what EnableDurability
/// does inside OfmfService).
void Attach(redfish::ResourceTree& tree, PersistentStore& store) {
  tree.SetMutationLog([&store](const redfish::ResourceTree::Mutation& mutation) {
    store.LogMutation(mutation);
  });
}

std::string TreeBytes(const redfish::ResourceTree& tree) {
  return json::Serialize(tree.ExportState());
}

/// Independent recovery reference: parse the snapshot file by hand (magic +
/// one CRC frame) and replay every surviving journal record via the tree's
/// Restore primitives, stopping at the first torn generation — without going
/// through PersistentStore::Recover.
void RebuildReference(const std::string& dir, redfish::ResourceTree& tree) {
  const std::string snapshot_path = dir + "/snapshot.snap";
  if (fs::exists(snapshot_path)) {
    std::ifstream in(snapshot_path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    ASSERT_GT(bytes.size(), 16u);
    ASSERT_EQ(bytes.substr(0, 8), "OFMFSNP1");
    auto doc = json::Parse(std::string_view(bytes).substr(16));
    ASSERT_TRUE(doc.ok()) << doc.status().message();
    ASSERT_TRUE(tree.ImportState(*doc).ok());
  }
  std::vector<std::string> journals;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("journal-", 0) == 0 && name.size() > 4 &&
        name.substr(name.size() - 4) == ".wal") {
      journals.push_back(entry.path().string());
    }
  }
  std::sort(journals.begin(), journals.end());
  for (const std::string& path : journals) {
    auto scan = Journal::ReadAll(path);
    ASSERT_TRUE(scan.ok());
    for (const std::string& record : scan->records) {
      auto doc = json::Parse(record);
      ASSERT_TRUE(doc.ok());
      const std::string op = doc->GetString("op");
      if (op == "put") {
        ASSERT_TRUE(tree.RestorePut(doc->GetString("uri"), doc->GetString("type"),
                                    doc->at("doc"),
                                    static_cast<std::uint64_t>(doc->GetInt("ver", 1)))
                        .ok());
      } else if (op == "del") {
        ASSERT_TRUE(tree.RestoreDelete(doc->GetString("uri")).ok());
      }
    }
    if (scan->torn_tail) break;  // nothing after the damage can be trusted
  }
}

TEST(Crc32Test, MatchesKnownVector) {
  EXPECT_EQ(store::Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(store::Crc32(""), 0u);
}

TEST(JournalTest, RoundTripsFrames) {
  const std::string dir = FreshDir("journal_roundtrip");
  fs::create_directories(dir);
  const std::string path = dir + "/j.wal";
  auto journal = Journal::Open(path);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE((*journal)->AppendRaw(Journal::EncodeFrame(R"({"a":1})")).ok());
  ASSERT_TRUE((*journal)->AppendRaw(Journal::EncodeFrame(R"({"b":2})")).ok());
  ASSERT_TRUE((*journal)->Fsync().ok());

  auto scan = Journal::ReadAll(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_FALSE(scan->torn_tail);
  ASSERT_EQ(scan->records.size(), 2u);
  EXPECT_EQ(scan->records[0], R"({"a":1})");
  EXPECT_EQ(scan->records[1], R"({"b":2})");
  EXPECT_EQ(scan->valid_bytes, (*journal)->size());
}

TEST(JournalTest, TornTailDetectedAndTruncatedAway) {
  const std::string dir = FreshDir("journal_torn");
  fs::create_directories(dir);
  const std::string path = dir + "/j.wal";
  auto journal = Journal::Open(path);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE((*journal)->AppendRaw(Journal::EncodeFrame(R"({"a":1})")).ok());
  const std::uint64_t intact = (*journal)->size();
  const std::string partial = Journal::EncodeFrame(R"({"torn":true})");
  ASSERT_TRUE((*journal)->AppendRaw(partial.substr(0, partial.size() / 2)).ok());

  auto scan = Journal::ReadAll(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->torn_tail);
  ASSERT_EQ(scan->records.size(), 1u);
  EXPECT_EQ(scan->valid_bytes, intact);

  ASSERT_TRUE((*journal)->TruncateTo(scan->valid_bytes).ok());
  auto clean = Journal::ReadAll(path);
  ASSERT_TRUE(clean.ok());
  EXPECT_FALSE(clean->torn_tail);
  EXPECT_EQ(clean->records.size(), 1u);
}

TEST(JournalTest, CorruptFrameStopsReplayAtPrefix) {
  const std::string dir = FreshDir("journal_corrupt");
  fs::create_directories(dir);
  const std::string path = dir + "/j.wal";
  std::uint64_t second_frame_offset = 0;
  {
    auto journal = Journal::Open(path);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->AppendRaw(Journal::EncodeFrame(R"({"keep":1})")).ok());
    second_frame_offset = (*journal)->size();
    ASSERT_TRUE((*journal)->AppendRaw(Journal::EncodeFrame(R"({"rot":2})")).ok());
    ASSERT_TRUE((*journal)->AppendRaw(Journal::EncodeFrame(R"({"after":3})")).ok());
  }
  {
    // Flip one payload byte of the middle frame: its CRC must now fail, and
    // replay must keep only the frames before it — never the ones after.
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(static_cast<std::streamoff>(second_frame_offset + 8 + 2));
    file.put('X');
  }
  auto scan = Journal::ReadAll(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->torn_tail);
  ASSERT_EQ(scan->records.size(), 1u);
  EXPECT_EQ(scan->records[0], R"({"keep":1})");
}

TEST(StoreTest, JournalReplayRebuildsTreeByteIdentical) {
  const std::string dir = FreshDir("replay");
  auto store = PersistentStore::Open(Options(dir));
  ASSERT_TRUE(store.ok());

  redfish::ResourceTree tree;
  Attach(tree, **store);
  ASSERT_TRUE(tree.Create("/redfish/v1/Chassis/c1", "#Chassis.v1_21_0.Chassis",
                          Json::Obj({{"Id", "c1"}}))
                  .ok());
  ASSERT_TRUE(tree.Create("/redfish/v1/Chassis/c2", "#Chassis.v1_21_0.Chassis",
                          Json::Obj({{"Id", "c2"}}))
                  .ok());
  ASSERT_TRUE(tree.Patch("/redfish/v1/Chassis/c1",
                         Json::Obj({{"AssetTag", "rack-7"}}))
                  .ok());
  ASSERT_TRUE(tree.Delete("/redfish/v1/Chassis/c2").ok());
  ASSERT_TRUE((*store)->Flush().ok());

  redfish::ResourceTree recovered;
  auto state = (*store)->Recover(recovered);
  ASSERT_TRUE(state.ok());
  EXPECT_FALSE(state->report.had_snapshot);
  EXPECT_FALSE(state->report.torn_tail);
  EXPECT_EQ(state->report.records_replayed, 4u);
  EXPECT_EQ(TreeBytes(recovered), TreeBytes(tree));
  // Exact versions restored => identical ETags (the CAS claims depend on it).
  EXPECT_EQ(recovered.ETagOf("/redfish/v1/Chassis/c1"),
            tree.ETagOf("/redfish/v1/Chassis/c1"));
}

TEST(StoreTest, GroupCommitAmortizesFsyncs) {
  const std::string dir = FreshDir("group_commit");
  StoreOptions options = Options(dir);
  options.group_commit_records = 8;
  auto store = PersistentStore::Open(options);
  ASSERT_TRUE(store.ok());
  redfish::ResourceTree tree;
  Attach(tree, **store);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(tree.Create("/redfish/v1/Chassis/c" + std::to_string(i),
                            "#Chassis.v1_21_0.Chassis",
                            Json::Obj({{"Id", std::to_string(i)}}))
                    .ok());
  }
  const store::StoreStats stats = (*store)->stats();
  EXPECT_EQ(stats.appended, 64u);
  EXPECT_EQ(stats.committed, 64u);
  EXPECT_EQ(stats.commits, 8u);  // 64 records / 8 per batch
  EXPECT_EQ(stats.fsyncs, 8u);

  const std::string dir2 = FreshDir("per_record_commit");
  StoreOptions eager = Options(dir2);
  eager.group_commit = false;
  auto store2 = PersistentStore::Open(eager);
  ASSERT_TRUE(store2.ok());
  redfish::ResourceTree tree2;
  Attach(tree2, **store2);
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(tree2.Create("/redfish/v1/Chassis/c" + std::to_string(i),
                             "#Chassis.v1_21_0.Chassis",
                             Json::Obj({{"Id", std::to_string(i)}}))
                    .ok());
  }
  EXPECT_EQ((*store2)->stats().fsyncs, 16u);  // one per record: the slow baseline
}

TEST(StoreTest, CompactionSnapshotsRotatesAndDeletesOldGenerations) {
  const std::string dir = FreshDir("compact");
  auto store = PersistentStore::Open(Options(dir));
  ASSERT_TRUE(store.ok());
  redfish::ResourceTree tree;
  Attach(tree, **store);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(tree.Create("/redfish/v1/Chassis/c" + std::to_string(i),
                            "#Chassis.v1_21_0.Chassis",
                            Json::Obj({{"Id", std::to_string(i)}}))
                    .ok());
  }
  ASSERT_TRUE(
      (*store)->Compact([&] { return tree.ExportState(); }, {}).ok());
  EXPECT_TRUE(fs::exists((*store)->snapshot_path()));
  EXPECT_FALSE(fs::exists(dir + "/snapshot.snap.tmp"));

  std::size_t journal_files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind("journal-", 0) == 0) ++journal_files;
  }
  EXPECT_EQ(journal_files, 1u);  // old generations deleted after the rename

  // Mutations after compaction land in the fresh generation...
  ASSERT_TRUE(tree.Patch("/redfish/v1/Chassis/c0", Json::Obj({{"AssetTag", "x"}})).ok());
  ASSERT_TRUE((*store)->Flush().ok());

  // ...and recovery = snapshot + replay of just that delta.
  redfish::ResourceTree recovered;
  auto state = (*store)->Recover(recovered);
  ASSERT_TRUE(state.ok());
  EXPECT_TRUE(state->report.had_snapshot);
  EXPECT_EQ(state->report.records_replayed, 1u);
  EXPECT_EQ(TreeBytes(recovered), TreeBytes(tree));
}

TEST(StoreTest, StrayJournalLookalikeFilesAreIgnored) {
  const std::string dir = FreshDir("stray");
  auto store = PersistentStore::Open(Options(dir));
  ASSERT_TRUE(store.ok());
  // Files whose names merely resemble a generation must be neither replayed
  // by Recover nor deleted by Compact's rotation.
  { std::ofstream(dir + "/journal-00000001.wal.bak") << "operator backup"; }
  { std::ofstream(dir + "/journal-1.wal") << "unpadded, not ours"; }

  redfish::ResourceTree tree;
  Attach(tree, **store);
  ASSERT_TRUE(tree.Create("/redfish/v1/Chassis/c1", "#Chassis.v1_21_0.Chassis",
                          Json::Obj({{"Id", "c1"}}))
                  .ok());
  ASSERT_TRUE((*store)->Flush().ok());

  redfish::ResourceTree recovered;
  auto state = (*store)->Recover(recovered);
  ASSERT_TRUE(state.ok()) << state.status().message();
  EXPECT_EQ(state->report.records_replayed, 1u);
  EXPECT_EQ(TreeBytes(recovered), TreeBytes(tree));

  ASSERT_TRUE((*store)->Compact([&] { return tree.ExportState(); }, {}).ok());
  EXPECT_TRUE(fs::exists(dir + "/journal-00000001.wal.bak"));
  EXPECT_TRUE(fs::exists(dir + "/journal-1.wal"));
}

TEST(StoreTest, CorruptSnapshotRefusesByDefaultAndDegradesWhenAsked) {
  const std::string dir = FreshDir("corrupt_snapshot");
  {
    auto store = PersistentStore::Open(Options(dir));
    ASSERT_TRUE(store.ok());
    redfish::ResourceTree tree;
    Attach(tree, **store);
    ASSERT_TRUE(tree.Create("/redfish/v1/Chassis/c1", "#Chassis.v1_21_0.Chassis",
                            Json::Obj({{"Id", "c1"}}))
                    .ok());
    ASSERT_TRUE((*store)->Compact([&] { return tree.ExportState(); }, {}).ok());
    // Post-snapshot delta: lives only in the fresh journal generation.
    ASSERT_TRUE(tree.Create("/redfish/v1/Chassis/c2", "#Chassis.v1_21_0.Chassis",
                            Json::Obj({{"Id", "c2"}}))
                    .ok());
    ASSERT_TRUE((*store)->Flush().ok());
  }

  // Flip one payload byte: the snapshot CRC must catch the rot.
  const std::string snapshot = dir + "/snapshot.snap";
  {
    std::ifstream in(snapshot, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    ASSERT_FALSE(bytes.empty());
    bytes.back() = static_cast<char>(bytes.back() ^ 0x40);
    std::ofstream out(snapshot, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  {
    // Default: refuse, naming the corrupt file, rather than silently serving
    // a tree that lost everything up to the last compaction.
    auto store = PersistentStore::Open(Options(dir));
    ASSERT_TRUE(store.ok());
    redfish::ResourceTree recovered;
    auto state = (*store)->Recover(recovered);
    ASSERT_FALSE(state.ok());
    EXPECT_THAT(state.status().message(), ::testing::HasSubstr(snapshot));
    EXPECT_TRUE(fs::exists(snapshot));  // left in place for the operator
  }

  {
    // Opt-in: the bad snapshot is set aside and the surviving journal
    // generations replay alone — c2 (post-compaction) comes back, c1 (its
    // record was rotated away with the old generation) is gone.
    StoreOptions degraded = Options(dir);
    degraded.recover_without_snapshot = true;
    auto store = PersistentStore::Open(degraded);
    ASSERT_TRUE(store.ok());
    redfish::ResourceTree recovered;
    auto state = (*store)->Recover(recovered);
    ASSERT_TRUE(state.ok()) << state.status().message();
    EXPECT_TRUE(state->report.snapshot_discarded);
    EXPECT_FALSE(state->report.had_snapshot);
    EXPECT_TRUE(recovered.Exists("/redfish/v1/Chassis/c2"));
    EXPECT_FALSE(recovered.Exists("/redfish/v1/Chassis/c1"));
    EXPECT_FALSE(fs::exists(snapshot));
    EXPECT_TRUE(fs::exists(snapshot + ".corrupt"));  // kept for forensics
  }
}

TEST(StoreTest, ConcurrentCompactionsAndAppendsLoseNothing) {
  const std::string dir = FreshDir("concurrent_compact");
  StoreOptions options = Options(dir);
  options.fsync_on_commit = false;  // platter durability is not under test
  auto store = PersistentStore::Open(options);
  ASSERT_TRUE(store.ok());
  redfish::ResourceTree tree;
  Attach(tree, **store);

  // Race appends against repeated compactions from several threads, the way
  // per-connection Handle() threads race when compaction_due() flips true.
  std::atomic<int> next{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        const int id = next.fetch_add(1);
        ASSERT_TRUE(tree.Create("/redfish/v1/Chassis/c" + std::to_string(id),
                                "#Chassis.v1_21_0.Chassis",
                                Json::Obj({{"Id", std::to_string(id)}}))
                        .ok());
        if (i % 10 == 0) {
          ASSERT_TRUE(
              (*store)->Compact([&] { return tree.ExportState(); }, {}).ok());
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  ASSERT_TRUE((*store)->Flush().ok());
  EXPECT_FALSE((*store)->crashed());

  redfish::ResourceTree recovered;
  auto state = (*store)->Recover(recovered);
  ASSERT_TRUE(state.ok()) << state.status().message();
  EXPECT_EQ(recovered.size(), tree.size());
  EXPECT_EQ(TreeBytes(recovered), TreeBytes(tree));
}

TEST(StoreTest, InjectedCrashDropsEverythingPastLastFsync) {
  const std::string dir = FreshDir("crash");
  StoreOptions options = Options(dir);
  options.group_commit_records = 100;  // keep everything buffered until Flush
  auto store = PersistentStore::Open(options);
  ASSERT_TRUE(store.ok());
  auto faults = std::make_shared<FaultInjector>(7);
  (*store)->set_fault_injector(faults);

  redfish::ResourceTree tree;
  Attach(tree, **store);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(tree.Create("/redfish/v1/Chassis/sync" + std::to_string(i),
                            "#Chassis.v1_21_0.Chassis", Json::Obj({{"Id", "s"}}))
                    .ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());  // these four are on the platter

  faults->ArmNthCall("store.commit.crash", FaultKind::kCrash, 1);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(tree.Create("/redfish/v1/Chassis/lost" + std::to_string(i),
                            "#Chassis.v1_21_0.Chassis", Json::Obj({{"Id", "l"}}))
                    .ok());
  }
  EXPECT_FALSE((*store)->Flush().ok());
  EXPECT_TRUE((*store)->crashed());
  EXPECT_EQ((*store)->stats().dropped_after_crash, 4u);
  // The dead store absorbs later mutations like a crashed process would.
  ASSERT_TRUE(tree.Create("/redfish/v1/Chassis/after", "#Chassis.v1_21_0.Chassis",
                          Json::Obj({{"Id", "a"}}))
                  .ok());

  auto reopened = PersistentStore::Open(Options(dir));
  ASSERT_TRUE(reopened.ok());
  redfish::ResourceTree recovered;
  auto state = (*reopened)->Recover(recovered);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->report.records_replayed, 4u);
  EXPECT_TRUE(recovered.Exists("/redfish/v1/Chassis/sync0"));
  EXPECT_FALSE(recovered.Exists("/redfish/v1/Chassis/lost0"));
  EXPECT_FALSE(recovered.Exists("/redfish/v1/Chassis/after"));
}

TEST(StoreTest, TornWritePersistsOnlyAPrefixAndRecoveryKeepsIt) {
  const std::string dir = FreshDir("torn");
  StoreOptions options = Options(dir);
  options.group_commit_records = 100;
  auto store = PersistentStore::Open(options);
  ASSERT_TRUE(store.ok());
  auto faults = std::make_shared<FaultInjector>(11);
  (*store)->set_fault_injector(faults);

  redfish::ResourceTree tree;
  Attach(tree, **store);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(tree.Create("/redfish/v1/Chassis/c" + std::to_string(i),
                            "#Chassis.v1_21_0.Chassis",
                            Json::Obj({{"Id", std::to_string(i)}}))
                    .ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());  // c0..c2 are on the platter

  // One big record in its own batch: the torn write persists half of its
  // frame, which MUST land mid-frame and be detected as a torn tail.
  faults->ArmNthCall("store.commit.torn", FaultKind::kTornWrite, 1);
  ASSERT_TRUE(tree.Create("/redfish/v1/Chassis/big", "#Chassis.v1_21_0.Chassis",
                          Json::Obj({{"Id", "big"}, {"AssetTag", std::string(512, 'x')}}))
                  .ok());
  EXPECT_FALSE((*store)->Flush().ok());
  EXPECT_TRUE((*store)->crashed());

  auto reopened = PersistentStore::Open(Options(dir));
  ASSERT_TRUE(reopened.ok());
  redfish::ResourceTree recovered;
  auto state = (*reopened)->Recover(recovered);
  ASSERT_TRUE(state.ok());
  EXPECT_TRUE(state->report.torn_tail);
  EXPECT_EQ(state->report.records_replayed, 3u);  // the synced prefix, nothing more
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(recovered.Exists("/redfish/v1/Chassis/c" + std::to_string(i)));
  }
  EXPECT_FALSE(recovered.Exists("/redfish/v1/Chassis/big"));
  // And the truncation is durable: a second recovery sees a clean journal.
  redfish::ResourceTree again;
  auto second = PersistentStore::Open(Options(dir));
  ASSERT_TRUE(second.ok());
  auto state2 = (*second)->Recover(again);
  ASSERT_TRUE(state2.ok());
  EXPECT_FALSE(state2->report.torn_tail);
  EXPECT_EQ(TreeBytes(again), TreeBytes(recovered));
}

TEST(StoreTest, ShortFsyncWidensTheCrashLossWindow) {
  const std::string dir = FreshDir("short_fsync");
  StoreOptions options = Options(dir);
  options.group_commit_records = 2;
  auto store = PersistentStore::Open(options);
  ASSERT_TRUE(store.ok());
  auto faults = std::make_shared<FaultInjector>(13);
  (*store)->set_fault_injector(faults);
  // First commit's fsync is silently skipped: its records reach the file but
  // not the platter. The crash on the second commit then wipes BOTH batches —
  // the file is truncated back to the last real fsync (the magic header).
  faults->ArmNthCall("store.fsync", FaultKind::kShortFsync, 1);
  faults->ArmNthCall("store.commit.crash", FaultKind::kCrash, 2);

  redfish::ResourceTree tree;
  Attach(tree, **store);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(tree.Create("/redfish/v1/Chassis/c" + std::to_string(i),
                            "#Chassis.v1_21_0.Chassis",
                            Json::Obj({{"Id", std::to_string(i)}}))
                    .ok());
  }
  EXPECT_TRUE((*store)->crashed());

  auto reopened = PersistentStore::Open(Options(dir));
  ASSERT_TRUE(reopened.ok());
  redfish::ResourceTree recovered;
  auto state = (*reopened)->Recover(recovered);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->report.records_replayed, 0u);
  EXPECT_EQ(recovered.size(), 0u);
}

// ---------------------------------------------------------------- service --

class DurableServiceTest : public ::testing::Test {
 protected:
  static std::unique_ptr<core::OfmfService> StartService(
      const std::string& dir, std::shared_ptr<FaultInjector> faults = nullptr,
      StoreOptions options = {}) {
    auto service = std::make_unique<core::OfmfService>();
    EXPECT_TRUE(service->Bootstrap().ok());
    options.dir = dir;
    auto store = PersistentStore::Open(options);
    EXPECT_TRUE(store.ok());
    if (faults != nullptr) (*store)->set_fault_injector(faults);
    EXPECT_TRUE(service->EnableDurability(std::move(*store)).ok());
    return service;
  }

  static void RegisterBlocks(core::OfmfService& service, int count) {
    for (int i = 0; i < count; ++i) {
      core::BlockCapability block;
      block.id = "b" + std::to_string(i);
      block.block_type = i % 2 == 0 ? "Compute" : "Memory";
      block.cores = 8;
      block.memory_gib = 32;
      EXPECT_TRUE(service.composition().RegisterBlock(block).ok());
    }
  }

  /// No half-composed system, no leaked or double claim.
  static void CheckCompositionInvariants(core::OfmfService& service) {
    auto systems = service.tree().Members(core::kSystems);
    ASSERT_TRUE(systems.ok());
    std::set<std::string> claimed;
    for (const std::string& system_uri : *systems) {
      auto blocks = service.composition().BlocksOf(system_uri);
      ASSERT_TRUE(blocks.ok()) << system_uri;
      for (const std::string& block_uri : *blocks) {
        EXPECT_TRUE(claimed.insert(block_uri).second)
            << block_uri << " claimed twice";
        EXPECT_EQ(*service.composition().BlockState(block_uri), "Composed");
      }
    }
    for (const std::string& uri : service.tree().UrisUnder(core::kResourceBlocks)) {
      if (uri == std::string(core::kResourceBlocks) || claimed.count(uri) != 0) continue;
      EXPECT_EQ(*service.composition().BlockState(uri), "Unused")
          << uri << " is claimed by no system";
    }
  }
};

TEST_F(DurableServiceTest, RestartPreservesEtagsSessionsAndIdCounters) {
  const std::string dir = FreshDir("service_restart");
  std::string token;
  std::string block_etag;
  std::string old_system;
  {
    auto service = StartService(dir);
    RegisterBlocks(*service, 4);
    auto system = service->composition().Compose(
        "job1", {std::string(core::kResourceBlocks) + "/b0",
                 std::string(core::kResourceBlocks) + "/b1"});
    ASSERT_TRUE(system.ok());
    old_system = *system;

    const http::Request login = http::MakeJsonRequest(
        http::Method::kPost, core::kSessions,
        Json::Obj({{"UserName", "admin"}, {"Password", "ofmf"}}));
    const http::Response response = service->Handle(login);
    ASSERT_EQ(response.status, 201);
    token = response.headers.GetOr("X-Auth-Token", "");
    ASSERT_FALSE(token.empty());

    block_etag = service->tree().ETagOf(std::string(core::kResourceBlocks) + "/b0");
    ASSERT_TRUE(service->FlushStore().ok());
  }

  auto service = StartService(dir);
  // ETags (and the CAS claims keyed on them) survive the restart exactly.
  EXPECT_EQ(service->tree().ETagOf(std::string(core::kResourceBlocks) + "/b0"),
            block_etag);
  // The session token authenticates again.
  EXPECT_TRUE(service->sessions().Authenticate(token).has_value());
  auto report = service->ReconcileWithAgents();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->systems_adopted, 1u);
  EXPECT_EQ(report->systems_rolled_back, 0u);
  CheckCompositionInvariants(*service);
  // The id counter resumed past the recovered system: no URI collision.
  auto next = service->composition().Compose(
      "job2", {std::string(core::kResourceBlocks) + "/b2"});
  ASSERT_TRUE(next.ok());
  EXPECT_NE(*next, old_system);
}

TEST_F(DurableServiceTest, RestartPreservesTenantsAndSessionTenantBinding) {
  const std::string dir = FreshDir("service_tenants");
  std::string token;
  {
    auto service = StartService(dir);
    core::TenantInfo tenant;
    tenant.id = "gold";
    tenant.qos_class = "Guaranteed";
    tenant.weight = 3;
    tenant.rate_rps = 10.0;
    tenant.users = {"alice"};
    ASSERT_TRUE(service->sessions().CreateTenant(tenant).ok());
    service->sessions().AddUser("alice", "secret");
    // Login over HTTP: that path journals the token alongside the Session
    // resource, so it must survive the restart.
    const http::Response login = service->Handle(http::MakeJsonRequest(
        http::Method::kPost, core::kSessions,
        Json::Obj({{"UserName", "alice"}, {"Password", "secret"}})));
    ASSERT_EQ(login.status, 201);
    token = login.headers.GetOr("X-Auth-Token", "");
    ASSERT_FALSE(token.empty());
    ASSERT_EQ(service->sessions().TenantOfToken(token), "gold");
    ASSERT_TRUE(service->FlushStore().ok());
  }

  auto service = StartService(dir);
  // The tenant resource came back through the journal with every QoS knob.
  auto tenant = service->sessions().GetTenant("gold");
  ASSERT_TRUE(tenant.ok());
  EXPECT_EQ(tenant->qos_class, "Guaranteed");
  EXPECT_EQ(tenant->weight, 3u);
  EXPECT_DOUBLE_EQ(tenant->rate_rps, 10.0);
  // The restored session re-derived its tenant binding (tenants are adopted
  // before sessions during recovery), so the reactor's classifier still maps
  // the old token to the right scheduling queue.
  auto session = service->sessions().Authenticate(token);
  ASSERT_TRUE(session.has_value());
  EXPECT_EQ(session->tenant, "gold");
  EXPECT_EQ(service->sessions().TenantOfToken(token), "gold");
}

TEST_F(DurableServiceTest, ReconcileRollsBackHalfComposedAndReleasesLeaks) {
  const std::string dir = FreshDir("service_reconcile");
  {
    auto service = StartService(dir);
    RegisterBlocks(*service, 4);
    auto system = service->composition().Compose(
        "doomed", {std::string(core::kResourceBlocks) + "/b0",
                   std::string(core::kResourceBlocks) + "/b1"});
    ASSERT_TRUE(system.ok());
    // Sabotage, as a crash mid-compose would leave it: one of the system's
    // claims is gone, and an unrelated block holds a claim no system owns.
    ASSERT_TRUE(service->tree()
                    .Patch(std::string(core::kResourceBlocks) + "/b1",
                           Json::Obj({{"CompositionStatus",
                                       Json::Obj({{"CompositionState", "Unused"}})}}))
                    .ok());
    ASSERT_TRUE(service->tree()
                    .Patch(std::string(core::kResourceBlocks) + "/b3",
                           Json::Obj({{"CompositionStatus",
                                       Json::Obj({{"CompositionState", "Composed"}})}}))
                    .ok());
    ASSERT_TRUE(service->FlushStore().ok());
  }

  auto service = StartService(dir);
  auto report = service->ReconcileWithAgents();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->systems_adopted, 0u);
  EXPECT_EQ(report->systems_rolled_back, 1u);
  EXPECT_EQ(report->claims_released, 1u);
  EXPECT_EQ(service->tree().Members(core::kSystems)->size(), 0u);
  CheckCompositionInvariants(*service);
  EXPECT_EQ(service->composition().FreeBlockUris().size(), 4u);
}

TEST_F(DurableServiceTest, CrashRecoveryPropertySeededSchedules) {
  // The acceptance property: for seeded crash/torn-write schedules firing at
  // arbitrary commit points mid-churn, restart + recovery yields a tree
  // byte-identical to an independently rebuilt reference (snapshot + the
  // surviving journal prefix), and reconciliation leaves no half-composed
  // system and no leaked claim.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const std::string dir = FreshDir("property_" + std::to_string(seed));
    auto faults = std::make_shared<FaultInjector>(seed);
    StoreOptions options;
    options.group_commit_records = 4;  // commits interleave tightly with churn
    {
      auto service = StartService(dir, faults, options);
      RegisterBlocks(*service, 6);
      const FaultKind kind = seed % 2 == 0 ? FaultKind::kTornWrite : FaultKind::kCrash;
      const char* point =
          kind == FaultKind::kTornWrite ? "store.commit.torn" : "store.commit.crash";
      faults->ArmNthCall(point, kind, 2 + seed * 3);

      std::vector<std::string> live;
      Rng rng(seed * 977);
      for (int i = 0; i < 60; ++i) {
        const std::uint64_t dice = rng.NextU64() % 10;
        if (dice < 5) {
          const std::string block =
              std::string(core::kResourceBlocks) + "/b" + std::to_string(rng.NextU64() % 6);
          auto system =
              service->composition().Compose("job" + std::to_string(i), {block});
          if (system.ok()) live.push_back(*system);
        } else if (dice < 8 && !live.empty()) {
          if (service->composition().Decompose(live.front()).ok()) {
            live.erase(live.begin());
          }
        } else {
          (void)service->tree().Patch(
              std::string(core::kResourceBlocks) + "/b" + std::to_string(rng.NextU64() % 6),
              Json::Obj({{"AssetTag", "churn-" + std::to_string(i)}}));
        }
      }
      EXPECT_TRUE(service->store()->crashed())
          << "schedule never fired; churn too short for this seed";
    }

    // Independent reference: snapshot file + manual replay of the surviving
    // journal prefix, no PersistentStore involved.
    redfish::ResourceTree reference;
    RebuildReference(dir, reference);

    auto service = StartService(dir, nullptr, options);
    EXPECT_EQ(TreeBytes(service->tree()), TreeBytes(reference));

    auto report = service->ReconcileWithAgents();
    ASSERT_TRUE(report.ok());
    CheckCompositionInvariants(*service);

    // The recovered service is live: it can keep composing.
    auto blocks = service->composition().FreeBlockUris();
    if (!blocks.empty()) {
      EXPECT_TRUE(service->composition().Compose("post-recovery", {blocks[0]}).ok());
    }
  }
}

TEST_F(DurableServiceTest, CrashDuringCompactionKeepsAuthoritativeSnapshot) {
  const std::string dir = FreshDir("compact_crash");
  auto faults = std::make_shared<FaultInjector>(21);
  std::string expected;
  {
    auto service = StartService(dir, faults);
    RegisterBlocks(*service, 3);
    ASSERT_TRUE(service->FlushStore().ok());
    expected = TreeBytes(service->tree());
    // Crash between the tmp write and the rename: the tmp file must be
    // ignored and the previous snapshot + journal stay authoritative.
    faults->ArmNthCall("store.compact.crash", FaultKind::kCrash, 2);
    EXPECT_FALSE(service->CompactStore().ok());
    EXPECT_TRUE(service->store()->crashed());
  }
  auto service = StartService(dir);
  EXPECT_EQ(TreeBytes(service->tree()), expected);
}

}  // namespace
}  // namespace ofmf
