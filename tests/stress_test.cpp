// Concurrency and robustness: the ResourceTree and the full OFMF service
// hammered from parallel clients (in-process and TCP), event-flood
// behaviour, and hostile wire input. Sized for a small CI box.
#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/threadpool.hpp"
#include "composability/client.hpp"
#include "json/parse.hpp"
#include "ofmf/service.hpp"
#include "ofmf/uris.hpp"
#include "redfish/tree.hpp"

namespace ofmf {
namespace {

using json::Json;

TEST(TreeConcurrency, ParallelPatchesAllLand) {
  redfish::ResourceTree tree;
  ASSERT_TRUE(tree.Create("/r", "#T.v1_0_0.T", Json::Obj({{"count", 0}})).ok());
  constexpr int kThreads = 8;
  constexpr int kPatchesPerThread = 200;
  {
    ThreadPool pool(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      pool.Submit([&tree, t] {
        for (int i = 0; i < kPatchesPerThread; ++i) {
          const std::string key = "t" + std::to_string(t) + "-" + std::to_string(i);
          ASSERT_TRUE(tree.Patch("/r", Json::Obj({{key, 1}})).ok());
        }
      });
    }
    pool.Drain();
  }
  // Every patch merged; version counted every mutation.
  const Json doc = *tree.Get("/r");
  EXPECT_EQ(doc.as_object().size(),
            static_cast<std::size_t>(kThreads * kPatchesPerThread) + 4);  // +count +3 annot
  EXPECT_EQ(tree.ETagOf("/r"), "W/\"" + std::to_string(kThreads * kPatchesPerThread + 1) +
                                   "\"");
}

TEST(TreeConcurrency, ParallelCreateDeleteDisjointUris) {
  redfish::ResourceTree tree;
  constexpr int kThreads = 8;
  {
    ThreadPool pool(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      pool.Submit([&tree, t] {
        for (int i = 0; i < 100; ++i) {
          const std::string uri = "/x/" + std::to_string(t) + "/" + std::to_string(i);
          ASSERT_TRUE(tree.Create(uri, "#T.v1_0_0.T", Json::Obj({{"i", i}})).ok());
          if (i % 2 == 0) {
            ASSERT_TRUE(tree.Delete(uri).ok());
          }
        }
      });
    }
    pool.Drain();
  }
  EXPECT_EQ(tree.size(), 8u * 50u);
}

TEST(TreeConcurrency, ListenersSafeUnderConcurrentMutation) {
  redfish::ResourceTree tree;
  std::atomic<int> events{0};
  const auto token = tree.Subscribe([&](const redfish::ChangeEvent&) {
    events.fetch_add(1);
  });
  {
    ThreadPool pool(4);
    for (int t = 0; t < 4; ++t) {
      pool.Submit([&tree, t] {
        for (int i = 0; i < 100; ++i) {
          ASSERT_TRUE(tree.Create("/n/" + std::to_string(t) + "/" + std::to_string(i),
                                  "#T.v1_0_0.T", Json::MakeObject())
                          .ok());
        }
      });
    }
    pool.Drain();
  }
  tree.Unsubscribe(token);
  EXPECT_EQ(events.load(), 400);
}

TEST(OfmfStress, ParallelTcpClientsMixedWorkload) {
  core::OfmfService ofmf;
  ASSERT_TRUE(ofmf.Bootstrap().ok());
  for (int i = 0; i < 16; ++i) {
    core::BlockCapability block;
    block.id = "blk" + std::to_string(i);
    block.block_type = "Compute";
    block.cores = 8;
    block.memory_gib = 16;
    ASSERT_TRUE(ofmf.composition().RegisterBlock(block).ok());
  }
  http::TcpServer server;
  ASSERT_TRUE(server.Start(ofmf.Handler()).ok());

  std::atomic<int> failures{0};
  std::atomic<int> composed{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 6; ++c) {
    clients.emplace_back([&, c] {
      composability::OfmfClient client(
          std::make_unique<http::TcpClient>(server.port()));
      for (int i = 0; i < 20; ++i) {
        if (!client.Get(core::kServiceRoot).ok()) failures.fetch_add(1);
        if (!client.Get(core::kResourceBlocks).ok()) failures.fetch_add(1);
        // Half the clients also try to compose/decompose; contention on the
        // same blocks is expected and must fail cleanly, never corrupt.
        if (c % 2 == 0) {
          auto system = client.Post(
              core::kSystems,
              Json::Obj({{"Name", "stress"},
                         {"Links",
                          Json::Obj({{"ResourceBlocks",
                                      Json::Arr({Json::Obj(
                                          {{"@odata.id",
                                            std::string(core::kResourceBlocks) + "/blk" +
                                                std::to_string((c + i) % 16)}})})}})}}));
          if (system.ok()) {
            composed.fetch_add(1);
            if (!client.Delete(*system).ok()) failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.Stop();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(composed.load(), 0);
  // All blocks must be free again (no leaked claims).
  EXPECT_EQ(ofmf.composition().FreeBlockUris().size(), 16u);
}

TEST(OfmfStress, EventFloodDrainsCompletely) {
  core::OfmfService ofmf;
  ASSERT_TRUE(ofmf.Bootstrap().ok());
  auto sub = ofmf.events().Subscribe(*json::Parse(
      R"({"Destination":"ofmf-internal://flood","Protocol":"OEM"})"));
  ASSERT_TRUE(sub.ok());
  constexpr int kEvents = 5000;
  for (int i = 0; i < kEvents; ++i) {
    core::Event event;
    event.event_type = "Alert";
    event.message_id = "Stress.1.0.E";
    event.message = "event " + std::to_string(i);
    event.origin = core::kServiceRoot;
    ofmf.events().Publish(event);
  }
  auto drained = ofmf.events().Drain(*sub);
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(drained->size(), static_cast<std::size_t>(kEvents));
  // Ordered delivery.
  EXPECT_EQ((*drained)[0].at("Events").as_array()[0].GetString("Message"), "event 0");
  EXPECT_EQ((*drained)[kEvents - 1].at("Events").as_array()[0].GetString("Message"),
            "event " + std::to_string(kEvents - 1));
}

TEST(WireHostility, GarbageInputNeverCrashesServer) {
  core::OfmfService ofmf;
  ASSERT_TRUE(ofmf.Bootstrap().ok());
  http::TcpServer server;
  ASSERT_TRUE(server.Start(ofmf.Handler()).ok());

  // Raw garbage over the socket; then a well-formed request must still work.
  {
    http::TcpClient probe(server.port());
    // Malformed JSON body to a POST endpoint.
    http::Request bad = http::MakeRequest(http::Method::kPost, core::kSessions);
    bad.body = "\x01\x02{{{{ not json";
    auto response = probe.Send(bad);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->status, 400);
  }
  {
    http::TcpClient ok_client(server.port());
    auto response = ok_client.Get(core::kServiceRoot);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->status, 200);
  }
  server.Stop();
}

TEST(WireHostility, DeeplyNestedJsonBodyRejectedNotCrashed) {
  core::OfmfService ofmf;
  ASSERT_TRUE(ofmf.Bootstrap().ok());
  std::string deep = "{\"UserName\":";
  for (int i = 0; i < 300; ++i) deep += "[";
  for (int i = 0; i < 300; ++i) deep += "]";
  deep += "}";
  http::Request request = http::MakeRequest(http::Method::kPost, core::kSessions);
  request.body = deep;
  const http::Response response = ofmf.Handle(request);
  EXPECT_EQ(response.status, 400);
}

}  // namespace
}  // namespace ofmf
