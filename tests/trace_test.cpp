// Observability suite: the span recorder's id/ring/sampling mechanics, the
// sharded histograms, trace propagation across the client/server/journal
// layers (including one connected tree when every retry fails), the
// ETag-stable MetricReports scrape, and thread-safety of concurrent
// recording + scraping (run under TSan in CI).
#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "agents/ib_agent.hpp"
#include "common/faults.hpp"
#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "composability/client.hpp"
#include "composability/manager.hpp"
#include "http/resilience.hpp"
#include "http/server.hpp"
#include "json/parse.hpp"
#include "ofmf/service.hpp"
#include "ofmf/telemetry.hpp"
#include "ofmf/uris.hpp"
#include "store/store.hpp"

namespace ofmf {
namespace {

using json::Json;
using ::testing::HasSubstr;

/// Recorder and registry are process globals; every test starts from a known
/// state and leaves sampling off so unrelated suites stay uninstrumented.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { ResetObservability(); }
  void TearDown() override { ResetObservability(); }

  static void ResetObservability() {
    trace::TraceRecorder::instance().set_sampling(0.0);
    trace::TraceRecorder::instance().set_slow_threshold_ns(0);
    trace::TraceRecorder::instance().set_retain_threshold_ns(0);
    trace::TraceRecorder::instance().Clear();
    metrics::Registry::instance().set_enabled(true);
  }

  /// Groups the ring by trace id.
  static std::map<std::uint64_t, std::vector<trace::SpanRecord>> ByTrace() {
    std::map<std::uint64_t, std::vector<trace::SpanRecord>> traces;
    for (trace::SpanRecord& span : trace::TraceRecorder::instance().Snapshot()) {
      traces[span.trace_id].push_back(std::move(span));
    }
    return traces;
  }

  static std::set<std::string> Names(const std::vector<trace::SpanRecord>& spans) {
    std::set<std::string> names;
    for (const trace::SpanRecord& span : spans) names.insert(span.name);
    return names;
  }

  static int CountNamed(const std::vector<trace::SpanRecord>& spans,
                        const std::string& name) {
    int count = 0;
    for (const trace::SpanRecord& span : spans) {
      if (span.name == name) ++count;
    }
    return count;
  }

  /// One connected tree: exactly one root, and every other span's parent is
  /// a recorded span of the same trace.
  static void ExpectConnectedTree(const std::vector<trace::SpanRecord>& spans) {
    std::set<std::uint64_t> ids;
    for (const trace::SpanRecord& span : spans) ids.insert(span.span_id);
    int roots = 0;
    for (const trace::SpanRecord& span : spans) {
      if (span.parent_span_id == 0) {
        ++roots;
      } else {
        EXPECT_EQ(ids.count(span.parent_span_id), 1u)
            << span.name << " has a dangling parent";
      }
    }
    EXPECT_EQ(roots, 1) << "trace must have exactly one root";
  }
};

TEST_F(TraceTest, IdsAreNonZeroDistinctAndHexRoundTrips) {
  const std::uint64_t a = trace::NewId();
  const std::uint64_t b = trace::NewId();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);

  const std::string hex = trace::IdToHex(a);
  EXPECT_EQ(hex.size(), 16u);
  EXPECT_EQ(trace::HexToId(hex), a);

  // Anything that does not parse means "no trace", never a crash.
  EXPECT_EQ(trace::HexToId(""), 0u);
  EXPECT_EQ(trace::HexToId("not-hex-at-all"), 0u);
  EXPECT_EQ(trace::HexToId("12345"), 0u);  // wrong length
}

TEST_F(TraceTest, SpansAreNoopsWhenSamplingIsOff) {
  const trace::TraceStats before = trace::TraceRecorder::instance().stats();

  trace::Span root("unsampled.root", trace::TraceContext{});
  EXPECT_FALSE(root.active());
  EXPECT_FALSE(root.context().active());
  root.Note("must not allocate into a record anyone sees");

  trace::Span child("unsampled.child");
  EXPECT_FALSE(child.active());

  const trace::TraceStats after = trace::TraceRecorder::instance().stats();
  EXPECT_TRUE(trace::TraceRecorder::instance().Snapshot().empty());
  EXPECT_EQ(after.spans_recorded, before.spans_recorded);
  // sampling == 0 is the fully-off fast path: not even the skip counter moves.
  EXPECT_EQ(after.skipped_traces, before.skipped_traces);

  // A (vanishingly) small probability exercises the sampler proper: the coin
  // flip comes up "no" and the skip IS counted.
  trace::TraceRecorder::instance().set_sampling(1e-12);
  trace::Span coin("unsampled.coin", trace::TraceContext{});
  EXPECT_FALSE(coin.active());
  EXPECT_GE(trace::TraceRecorder::instance().stats().skipped_traces,
            before.skipped_traces + 1);
}

TEST_F(TraceTest, SampledSpansFormOneConnectedTree) {
  trace::TraceRecorder::instance().set_sampling(1.0);
  std::uint64_t trace_id = 0;
  {
    trace::Span root("req.root", trace::TraceContext{});
    ASSERT_TRUE(root.active());
    trace_id = root.context().trace_id;
    root.Note("POST /redfish/v1/Systems");
    {
      trace::Span claim("req.claim");
      ASSERT_TRUE(claim.active());
      EXPECT_EQ(claim.context().trace_id, trace_id);
      trace::Span nested("req.journal");
      EXPECT_TRUE(nested.active());
    }
    trace::Span sibling("req.create");
    EXPECT_TRUE(sibling.active());
  }
  // Ambient context fully restored once the root is gone.
  EXPECT_FALSE(trace::Current().active());

  const auto spans = trace::TraceRecorder::instance().TraceSpans(trace_id);
  ASSERT_EQ(spans.size(), 4u);
  ExpectConnectedTree(spans);
  EXPECT_THAT(Names(spans),
              ::testing::UnorderedElementsAre("req.root", "req.claim",
                                              "req.journal", "req.create"));

  const std::string tree = trace::FormatTraceTree(spans);
  EXPECT_THAT(tree, HasSubstr("req.root"));
  EXPECT_THAT(tree, HasSubstr("(POST /redfish/v1/Systems)"));
  EXPECT_THAT(tree, HasSubstr("  req.claim"));    // children indent under the root
  EXPECT_THAT(tree, HasSubstr("    req.journal"));
}

TEST_F(TraceTest, EntrySpanAdoptsRemoteContextAndChildrenInherit) {
  trace::TraceRecorder::instance().set_sampling(0.0);  // sampler says no...
  const std::uint64_t wire_trace = trace::NewId();
  const std::uint64_t wire_span = trace::NewId();
  {
    // ...but the wire headers carried an identity, so the server adopts it.
    trace::Span entry("http.handle", trace::TraceContext{wire_trace, wire_span});
    ASSERT_TRUE(entry.active());
    EXPECT_EQ(entry.context().trace_id, wire_trace);
    trace::Span child("auth");
    EXPECT_TRUE(child.active());
  }
  const auto spans = trace::TraceRecorder::instance().TraceSpans(wire_trace);
  ASSERT_EQ(spans.size(), 2u);
  for (const trace::SpanRecord& span : spans) {
    EXPECT_EQ(span.trace_id, wire_trace);
  }
  // The entry span parents under the remote caller's span.
  EXPECT_EQ(CountNamed(spans, "http.handle"), 1);
  for (const trace::SpanRecord& span : spans) {
    if (span.name == "http.handle") {
      EXPECT_EQ(span.parent_span_id, wire_span);
    }
  }
}

TEST_F(TraceTest, RingEvictsOldestWhenFull) {
  const trace::TraceStats before = trace::TraceRecorder::instance().stats();
  auto& recorder = trace::TraceRecorder::instance();
  const std::size_t extra = 16;
  for (std::size_t i = 0; i < trace::TraceRecorder::kRingCapacity + extra; ++i) {
    trace::SpanRecord span;
    span.trace_id = 1;
    span.span_id = i + 1;
    span.name = "synthetic";
    span.start_ns = i;
    recorder.Record(std::move(span));
  }
  const auto snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.size(), trace::TraceRecorder::kRingCapacity);
  // Oldest-first and the first `extra` spans were evicted.
  EXPECT_EQ(snapshot.front().span_id, extra + 1);
  EXPECT_EQ(snapshot.back().span_id, trace::TraceRecorder::kRingCapacity + extra);
  const trace::TraceStats after = recorder.stats();
  EXPECT_GE(after.spans_evicted, before.spans_evicted + extra);
}

TEST_F(TraceTest, HistogramPercentilesCountAndReset) {
  metrics::Histogram hist;
  for (int i = 0; i < 100; ++i) hist.Record(1000);   // ~1 us
  for (int i = 0; i < 10; ++i) hist.Record(1000000); // ~1 ms tail
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.count, 110u);
  EXPECT_EQ(snap.sum, 100u * 1000u + 10u * 1000000u);

  // Log2 buckets: estimates are octave-accurate, which is all we assert.
  const double p50 = snap.Percentile(0.50);
  EXPECT_GE(p50, 512.0);
  EXPECT_LE(p50, 2048.0);
  const double p99 = snap.Percentile(0.99);
  EXPECT_GE(p99, 524288.0);  // within the ~1 ms octave
  EXPECT_LE(p99, 2097152.0);
  EXPECT_GE(p99, p50);
  EXPECT_NEAR(snap.mean(), (100.0 * 1000.0 + 10.0 * 1000000.0) / 110.0, 1.0);

  hist.Reset();
  const auto zero = hist.snapshot();
  EXPECT_EQ(zero.count, 0u);
  EXPECT_EQ(zero.Percentile(0.99), 0.0);
}

TEST_F(TraceTest, HistogramMergeSumsBucketsAndDerivesCount) {
  metrics::Histogram a, b;
  for (int i = 0; i < 100; ++i) a.Record(1000);    // ~1 us
  for (int i = 0; i < 50; ++i) b.Record(1000);
  for (int i = 0; i < 10; ++i) b.Record(1000000);  // ~1 ms tail

  const auto snap_a = a.snapshot();
  const auto snap_b = b.snapshot();
  auto merged = a.snapshot();
  merged.Merge(snap_b);

  // Buckets and sums add; the count is re-derived from the merged buckets so
  // a merge of already-merged snapshots stays self-consistent.
  std::uint64_t derived = 0;
  for (std::size_t i = 0; i < metrics::Histogram::kBuckets; ++i) {
    EXPECT_EQ(merged.buckets[i], snap_a.buckets[i] + snap_b.buckets[i])
        << "bucket " << i;
    derived += merged.buckets[i];
  }
  EXPECT_EQ(merged.count, derived);
  EXPECT_EQ(merged.count, 160u);
  EXPECT_EQ(merged.sum, snap_a.sum + snap_b.sum);
  EXPECT_EQ(merged.DerivedCount(), merged.count);

  // Percentiles recompute from the merged buckets (they never average).
  EXPECT_GE(merged.Percentile(0.50), 512.0);
  EXPECT_LE(merged.Percentile(0.50), 2048.0);
  EXPECT_GE(merged.Percentile(0.99), 524288.0);
  EXPECT_LE(merged.Percentile(0.99), 2097152.0);

  auto twice = merged;
  twice.Merge(merged);
  EXPECT_EQ(twice.count, 2 * merged.count);
  EXPECT_EQ(twice.sum, 2 * merged.sum);
}

TEST_F(TraceTest, ErrorAndSlowTreesAreRetainedForTraceDump) {
  auto& recorder = trace::TraceRecorder::instance();
  recorder.set_sampling(1.0);

  // Default retain threshold 0: plain traces vanish with the ring, error
  // trees are kept.
  std::uint64_t ok_id = 0, err_id = 0;
  {
    trace::Span root("ok.root", trace::TraceContext{});
    ok_id = root.context().trace_id;
  }
  {
    trace::Span root("bad.root", trace::TraceContext{});
    err_id = root.context().trace_id;
    trace::Span child("bad.child");
    child.SetError();
  }
  EXPECT_TRUE(recorder.RetainedTrace(ok_id).empty());
  const auto retained = recorder.RetainedTrace(err_id);
  ASSERT_FALSE(retained.empty());
  EXPECT_EQ(Names(retained).count("bad.child"), 1u);
  const auto ids = recorder.RetainedTraceIds();
  EXPECT_NE(std::find(ids.begin(), ids.end(), err_id), ids.end());

  // A retain threshold keeps slow (non-error) local-root trees too.
  recorder.set_retain_threshold_ns(1);
  std::uint64_t slow_id = 0;
  {
    trace::Span root("slow.root", trace::TraceContext{});
    slow_id = root.context().trace_id;
  }
  recorder.set_retain_threshold_ns(0);
  EXPECT_FALSE(recorder.RetainedTrace(slow_id).empty());

  // Bounded FIFO: flooding with fresh error trees evicts the oldest.
  for (std::size_t i = 0; i < trace::TraceRecorder::kRetainedTraces + 4; ++i) {
    trace::Span root("err.flood", trace::TraceContext{});
    root.SetError();
  }
  EXPECT_LE(recorder.RetainedTraceIds().size(), trace::TraceRecorder::kRetainedTraces);
  EXPECT_TRUE(recorder.RetainedTrace(err_id).empty()) << "oldest tree must be evicted";
}

TEST_F(TraceTest, ScopedTimerHonorsDisabledRegistry) {
  metrics::Histogram& hist =
      metrics::Registry::instance().histogram("trace_test.timer.ns");
  hist.Reset();

  metrics::Registry::instance().set_enabled(false);
  { metrics::ScopedTimer timer(hist); }
  EXPECT_EQ(hist.snapshot().count, 0u) << "disabled registry must not record";

  metrics::Registry::instance().set_enabled(true);
  { metrics::ScopedTimer timer(hist); }
  EXPECT_EQ(hist.snapshot().count, 1u);

  {  // null histogram and Cancel() are both safe no-ops
    metrics::ScopedTimer null_timer(nullptr);
    metrics::ScopedTimer cancelled(hist);
    cancelled.Cancel();
  }
  EXPECT_EQ(hist.snapshot().count, 1u);
}

TEST_F(TraceTest, SlowRootSpanDumpsItsTreeViaWarnLog) {
  trace::TraceRecorder::instance().set_sampling(1.0);
  trace::TraceRecorder::instance().set_slow_threshold_ns(1);  // everything is slow

  auto& logger = Logger::instance();
  std::vector<std::string> captured;
  std::mutex captured_mu;
  auto old_sink = logger.set_sink([&](LogLevel, const std::string& message) {
    std::lock_guard<std::mutex> lock(captured_mu);
    captured.push_back(message);
  });

  std::uint64_t trace_id = 0;
  {
    trace::Span root("slow.root", trace::TraceContext{});
    trace_id = root.context().trace_id;
    trace::Span child("slow.child");
  }
  logger.set_sink(std::move(old_sink));

  bool dumped = false;
  for (const std::string& line : captured) {
    if (line.find("slow request trace") != std::string::npos) {
      dumped = true;
      EXPECT_THAT(line, HasSubstr(trace::IdToHex(trace_id)));
      EXPECT_THAT(line, HasSubstr("slow.root"));
      EXPECT_THAT(line, HasSubstr("slow.child"));
    }
  }
  EXPECT_TRUE(dumped) << "no slow-request dump reached the log sink";
  const trace::TraceStats stats = trace::TraceRecorder::instance().stats();
  EXPECT_GE(stats.slow_traces, 1u);
}

TEST_F(TraceTest, LogLinePrefixCarriesMonotonicClockAndThreadOrdinal) {
  const std::string prefix = LogLinePrefix();
  EXPECT_THAT(prefix, ::testing::MatchesRegex(
                          "\\[ *[0-9]+\\.[0-9]{3}s\\] \\[T[0-9]+\\] "));
  // Same thread, same ordinal: the [Tn] tag is stable across lines.
  EXPECT_EQ(LogLinePrefix().substr(prefix.find("[T")),
            prefix.substr(prefix.find("[T")));
}

TEST_F(TraceTest, ConcurrentRecordingAndScrapingIsClean) {
  trace::TraceRecorder::instance().set_sampling(1.0);
  metrics::Histogram& hist =
      metrics::Registry::instance().histogram("trace_test.concurrent.ns");
  hist.Reset();

  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&hist] {
      for (int i = 0; i < 500; ++i) {
        trace::Span root("conc.root", trace::TraceContext{});
        trace::Span child("conc.child");
        hist.Record(static_cast<std::uint64_t>(i) + 1);
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([] {
      for (int i = 0; i < 100; ++i) {
        (void)trace::TraceRecorder::instance().Snapshot();
        (void)trace::TraceRecorder::instance().stats();
        (void)metrics::Registry::instance().HistogramSnapshots();
        (void)metrics::Registry::instance().CounterValues();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(hist.snapshot().count, 4u * 500u);
  EXPECT_FALSE(trace::TraceRecorder::instance().Snapshot().empty());
}

/// Client stack whose wire always fails: compose exhausts its retries, and
/// the resulting trace must still be one connected tree with every failed
/// attempt recorded as a sibling span.
TEST_F(TraceTest, ExhaustedRetriesStillFormOneConnectedTree) {
  core::OfmfService ofmf;
  ASSERT_TRUE(ofmf.Bootstrap().ok());

  auto faults = std::make_shared<FaultInjector>(42);
  faults->ArmProbability("trace.conn", FaultKind::kDropConnection, 1.0);
  http::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff_ms = 1;
  policy.max_backoff_ms = 1;
  policy.deadline_ms = 10000;
  composability::OfmfClient client(std::make_unique<http::RetryingClient>(
      std::make_unique<http::FaultyClient>(
          std::make_unique<http::InProcessClient>(ofmf.Handler()), faults,
          "trace.conn"),
      policy));

  trace::TraceRecorder::instance().set_sampling(1.0);
  const auto composed = client.Post(
      core::kSystems,
      Json::Obj({{"Name", "doomed"},
                 {"Links", Json::Obj({{"ResourceBlocks", Json::Arr({})}})}}));
  trace::TraceRecorder::instance().set_sampling(0.0);
  ASSERT_FALSE(composed.ok());

  const auto traces = ByTrace();
  ASSERT_EQ(traces.size(), 1u) << "one compose must yield exactly one trace";
  const std::vector<trace::SpanRecord>& spans = traces.begin()->second;
  ExpectConnectedTree(spans);
  EXPECT_EQ(CountNamed(spans, "client.post"), 1);
  ASSERT_EQ(CountNamed(spans, "retry.attempt"), policy.max_attempts);
  for (const trace::SpanRecord& span : spans) {
    if (span.name != "retry.attempt") continue;
    EXPECT_THAT(span.note, HasSubstr("attempt"));
    EXPECT_THAT(span.note, HasSubstr("error:")) << "failed attempt must record why";
  }
}

/// Two scrapes with no traffic in between must be byte-identical: the
/// MetricReports subtree is excluded from the endpoint histograms, the
/// quiet-update fingerprint suppresses the patch, the ETag holds, and the
/// conditional re-GET comes back 304.
TEST_F(TraceTest, RequestLatencyReportETagStableAcrossScrapes) {
  core::OfmfService ofmf;
  ASSERT_TRUE(ofmf.Bootstrap().ok());

  // Move some counters so the report has content.
  for (int i = 0; i < 5; ++i) {
    const http::Response probe =
        ofmf.Handle(http::MakeRequest(http::Method::kGet, core::kServiceRoot));
    ASSERT_EQ(probe.status, 200);
  }

  const std::string report_uri = core::TelemetryService::RequestLatencyReportUri();
  const http::Response first =
      ofmf.Handle(http::MakeRequest(http::Method::kGet, report_uri));
  ASSERT_EQ(first.status, 200);
  const std::string etag = first.headers.GetOr("ETag", "");
  ASSERT_FALSE(etag.empty());

  http::Request conditional = http::MakeRequest(http::Method::kGet, report_uri);
  conditional.headers.Set("If-None-Match", etag);
  const http::Response second = ofmf.Handle(conditional);
  EXPECT_EQ(second.status, 304) << "scrape must not perturb its own report";
  EXPECT_EQ(second.headers.GetOr("ETag", ""), etag);

  // New traffic moves the histograms; the next scrape republished.
  const http::Response churn =
      ofmf.Handle(http::MakeRequest(http::Method::kGet, core::kSystems));
  ASSERT_EQ(churn.status, 200);
  const http::Response third = ofmf.Handle(conditional);
  EXPECT_EQ(third.status, 200);
  EXPECT_NE(third.headers.GetOr("ETag", ""), etag);
}

/// The piggybacked refresh publishes all three reports after enough traffic,
/// without anyone GETting the report URIs (which lazily refresh on read).
TEST_F(TraceTest, PeriodicRefreshPublishesReportsWithoutScrapes) {
  core::OfmfService ofmf;
  ASSERT_TRUE(ofmf.Bootstrap().ok());

  EXPECT_FALSE(
      ofmf.tree().Get(core::TelemetryService::RequestLatencyReportUri()).ok());
  // The stride counter is thread-local and shared across services, so any
  // full interval's worth of requests crosses the refresh boundary exactly
  // once, whatever phase the counter started in.
  for (std::uint64_t i = 0; i < core::OfmfService::kReportRefreshInterval; ++i) {
    (void)ofmf.Handle(http::MakeRequest(http::Method::kGet, core::kServiceRoot));
  }
  EXPECT_TRUE(
      ofmf.tree().Get(core::TelemetryService::RequestLatencyReportUri()).ok());
  EXPECT_TRUE(
      ofmf.tree().Get(core::TelemetryService::ResponseCacheReportUri()).ok());
  EXPECT_TRUE(
      ofmf.tree().Get(core::TelemetryService::ResilienceReportUri()).ok());
}

TEST_F(TraceTest, MetricsDumpActionReturnsHistogramsCountersAndTraceStats) {
  core::OfmfService ofmf;
  ASSERT_TRUE(ofmf.Bootstrap().ok());
  for (int i = 0; i < 3; ++i) {
    (void)ofmf.Handle(http::MakeRequest(http::Method::kGet, core::kServiceRoot));
  }

  const http::Response dump = ofmf.Handle(http::MakeJsonRequest(
      http::Method::kPost,
      std::string(core::kServiceRoot) + "/Actions/OfmfService.MetricsDump",
      Json::MakeObject()));
  ASSERT_EQ(dump.status, 200) << dump.body;
  const auto parsed = json::Parse(dump.body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->Contains("Histograms"));
  EXPECT_TRUE(parsed->Contains("Counters"));
  EXPECT_TRUE(parsed->Contains("Trace"));

  bool saw_service_root_latency = false;
  for (const Json& entry : parsed->at("Histograms").as_array()) {
    if (entry.GetString("Name") == "http.latency.GET.ServiceRoot") {
      saw_service_root_latency = true;
      EXPECT_GE(entry.GetInt("Count"), 3);
      EXPECT_GT(entry.GetDouble("P50"), 0.0);
    }
  }
  EXPECT_TRUE(saw_service_root_latency);
}

/// End-to-end acceptance: a real TCP wire, a durable store fsyncing every
/// record, retries in the client stack, and an IB fabric agent. One compose
/// and one fabric connection each produce a single connected trace stitching
/// client, transport, REST, composition/agent, and journal spans together.
class WireTraceTest : public TraceTest {
 protected:
  void SetUp() override {
    TraceTest::SetUp();
    ASSERT_TRUE(graph_.AddVertex("sw0", fabricsim::VertexKind::kSwitch, 8).ok());
    ASSERT_TRUE(graph_.AddVertex("n1", fabricsim::VertexKind::kDevice, 2).ok());
    ASSERT_TRUE(graph_.AddVertex("n2", fabricsim::VertexKind::kDevice, 2).ok());
    ASSERT_TRUE(graph_.Connect("n1", 0, "sw0", 0, {50, 200}).ok());
    ASSERT_TRUE(graph_.Connect("n2", 0, "sw0", 1, {50, 200}).ok());
    sm_ = std::make_unique<fabricsim::IbSubnetManager>(graph_);

    ASSERT_TRUE(ofmf_.Bootstrap().ok());

    // group_commit off: every tree mutation commits and fsyncs inline, so
    // journal.fsync spans land inside the request that caused them.
    store_dir_ = ::testing::TempDir() + "ofmf_trace_wire";
    std::filesystem::remove_all(store_dir_);
    store::StoreOptions options;
    options.dir = store_dir_;
    options.group_commit = false;
    auto persistent = store::PersistentStore::Open(options);
    ASSERT_TRUE(persistent.ok()) << persistent.status().message();
    ASSERT_TRUE(ofmf_.EnableDurability(std::move(*persistent)).ok());

    ASSERT_TRUE(
        ofmf_.RegisterAgent(std::make_shared<agents::IbAgent>("IB", *sm_)).ok());
    core::BlockCapability compute;
    compute.id = "cpu0";
    compute.block_type = "Compute";
    compute.cores = 8;
    compute.memory_gib = 32;
    ASSERT_TRUE(ofmf_.composition().RegisterBlock(compute).ok());

    ASSERT_TRUE(server_.Start(ofmf_.Handler()).ok());
    http::RetryPolicy policy;
    policy.max_attempts = 3;
    policy.base_backoff_ms = 1;
    policy.max_backoff_ms = 2;
    policy.deadline_ms = 5000;
    client_ = std::make_unique<composability::OfmfClient>(
        std::make_unique<http::RetryingClient>(
            std::make_unique<http::TcpClient>(server_.port()), policy));
  }

  void TearDown() override {
    server_.Stop();
    std::filesystem::remove_all(store_dir_);
    TraceTest::TearDown();
  }

  fabricsim::FabricGraph graph_;
  std::unique_ptr<fabricsim::IbSubnetManager> sm_;
  core::OfmfService ofmf_;
  http::TcpServer server_;
  std::unique_ptr<composability::OfmfClient> client_;
  std::string store_dir_;
};

TEST_F(WireTraceTest, ComposeAndFabricCallTraceEndToEndOverTcp) {
  trace::TraceRecorder::instance().Clear();
  trace::TraceRecorder::instance().set_sampling(1.0);

  composability::ComposabilityManager manager(*client_);
  composability::CompositionRequest request;
  request.name = "trace-job";
  request.cores = 8;
  const auto composed = manager.Compose(request);
  ASSERT_TRUE(composed.ok()) << composed.status().message();

  const std::string ep1 = core::FabricUri("IB") + "/Endpoints/n1";
  const std::string ep2 = core::FabricUri("IB") + "/Endpoints/n2";
  const auto connection = client_->Post(
      core::FabricUri("IB") + "/Connections",
      Json::Obj(
          {{"Name", "trace-conn"},
           {"ConnectionType", "Network"},
           {"Links", Json::Obj({{"InitiatorEndpoints",
                                 Json::Arr({Json::Obj({{"@odata.id", ep1}})})},
                                {"TargetEndpoints",
                                 Json::Arr({Json::Obj({{"@odata.id", ep2}})})}})}}));
  ASSERT_TRUE(connection.ok()) << connection.status().message();
  trace::TraceRecorder::instance().set_sampling(0.0);

  const auto traces = ByTrace();

  // The compose POST: client -> retry attempt -> TCP accept thread -> HTTP
  // handler -> REST create -> claim/create -> journal commit+fsync, all one
  // connected tree under one trace id.
  const std::vector<trace::SpanRecord>* compose_trace = nullptr;
  const std::vector<trace::SpanRecord>* connection_trace = nullptr;
  for (const auto& [trace_id, spans] : traces) {
    if (CountNamed(spans, "compose.create") > 0) compose_trace = &spans;
    if (CountNamed(spans, "agent.call") > 0) connection_trace = &spans;
  }
  ASSERT_NE(compose_trace, nullptr) << "no trace contains the compose spans";
  ExpectConnectedTree(*compose_trace);
  const std::set<std::string> compose_names = Names(*compose_trace);
  for (const char* expected :
       {"client.post", "retry.attempt", "tcp.serve", "http.handle",
        "rest.handle", "rest.parse", "rest.create", "compose.claim",
        "compose.create", "journal.commit", "journal.fsync"}) {
    EXPECT_EQ(compose_names.count(expected), 1u)
        << expected << " missing from compose trace:\n"
        << trace::FormatTraceTree(*compose_trace);
  }

  // The fabric connection POST routes through the circuit-breaker-guarded
  // agent call and journals too — same end-to-end stitching.
  ASSERT_NE(connection_trace, nullptr) << "no trace contains an agent.call span";
  ExpectConnectedTree(*connection_trace);
  const std::set<std::string> connection_names = Names(*connection_trace);
  for (const char* expected :
       {"client.post", "retry.attempt", "tcp.serve", "http.handle",
        "rest.handle", "rest.create", "agent.call", "journal.commit",
        "journal.fsync"}) {
    EXPECT_EQ(connection_names.count(expected), 1u)
        << expected << " missing from connection trace:\n"
        << trace::FormatTraceTree(*connection_trace);
  }

  // The agent latency histogram moved.
  bool saw_agent_latency = false;
  for (const auto& entry : metrics::Registry::instance().HistogramSnapshots()) {
    if (entry.name == "agent.call.ns" && entry.snap.count > 0) {
      saw_agent_latency = true;
    }
  }
  EXPECT_TRUE(saw_agent_latency);
}

}  // namespace
}  // namespace ofmf
