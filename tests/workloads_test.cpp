#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include "workloads/experiment.hpp"
#include "workloads/hpl.hpp"
#include "workloads/interference.hpp"
#include "workloads/ior.hpp"
#include "workloads/mitigations.hpp"
#include "workloads/profiles.hpp"

namespace ofmf::workloads {
namespace {

// ------------------------------------------------------------ HPL params ---

TEST(HplParamsTest, TableIIExactRows) {
  struct Row {
    int nodes;
    long long n;
    int p, q;
  };
  // Paper rows; n=4 prints 144529 in the paper, inconsistent with every
  // uniform rounding of N1*cbrt(n) — the rule's 144530 is accepted.
  const Row rows[] = {{1, 91048, 7, 8},     {2, 114713, 14, 8},   {4, 144530, 14, 16},
                      {8, 182096, 28, 16},  {16, 229427, 28, 32}, {32, 289059, 56, 32},
                      {64, 364192, 56, 64}, {128, 458853, 112, 64}};
  for (const Row& row : rows) {
    const HplParams params = HplParamsForNodes(row.nodes);
    EXPECT_EQ(params.n_rows, row.n) << row.nodes;
    EXPECT_EQ(params.grid_p, row.p) << row.nodes;
    EXPECT_EQ(params.grid_q, row.q) << row.nodes;
    EXPECT_EQ(params.ranks(), 56 * row.nodes) << row.nodes;
  }
  EXPECT_EQ(HplParamsTable().size(), 8u);
}

TEST(HplParamsTest, CommentedOut256NodeRowAlsoReproduces) {
  // The paper's LaTeX comments out "256 & 578119 & 112 & 128"; the same rule
  // regenerates it (within the same +/-1 transcription slack as n=4).
  const HplParams params = HplParamsForNodes(256);
  EXPECT_NEAR(static_cast<double>(params.n_rows), 578119.0, 1.0);
  EXPECT_EQ(params.grid_p, 112);
  EXPECT_EQ(params.grid_q, 128);
}

TEST(HplParamsTest, PerNodeWorkApproximatelyConstant) {
  // Work ~ N^3; per node it should stay within a few percent of the base.
  const double base_work = std::pow(91048.0, 3.0);
  for (int n = 2; n <= 128; n *= 2) {
    const HplParams params = HplParamsForNodes(n);
    const double per_node = std::pow(static_cast<double>(params.n_rows), 3.0) / n;
    EXPECT_NEAR(per_node / base_work, 1.0, 0.01) << n;
  }
}

// --------------------------------------------------------- HPL simulator ---

TEST(HplSimTest, DeterministicGivenSeed) {
  std::vector<NodeInterference> nodes(8);
  Rng a(42), b(42);
  EXPECT_DOUBLE_EQ(SimulateHplSeconds(nodes, a), SimulateHplSeconds(nodes, b));
}

TEST(HplSimTest, CleanRunNearNominalTime) {
  std::vector<NodeInterference> nodes(4);
  Rng rng(1);
  HplSimConfig config;
  const double seconds = SimulateHplSeconds(nodes, rng, config);
  const double nominal = config.iterations * config.base_iteration_seconds;
  EXPECT_GT(seconds, nominal);            // jitter + comm only add time
  EXPECT_LT(seconds, nominal * 1.10);
}

TEST(HplSimTest, CpuStealInflatesProportionally) {
  Rng rng(2);
  std::vector<NodeInterference> clean(4);
  const double base = SimulateHplSeconds(clean, rng);
  std::vector<NodeInterference> stolen(4);
  for (auto& node : stolen) node.cpu_steal = 0.25;
  Rng rng2(2);
  const double slowed = SimulateHplSeconds(stolen, rng2);
  // 1/(1-0.25) = 1.333; comm is additive so allow slack.
  EXPECT_NEAR(slowed / base, 1.32, 0.03);
}

TEST(HplSimTest, OneSlowNodeDragsTheWholeJob) {
  Rng rng(3);
  std::vector<NodeInterference> nodes(16);
  nodes[7].cpu_steal = 0.30;  // single straggler
  const double with_straggler = SimulateHplSeconds(nodes, rng);
  Rng rng2(3);
  std::vector<NodeInterference> clean(16);
  const double base = SimulateHplSeconds(clean, rng2);
  EXPECT_GT(with_straggler / base, 1.35);  // bulk-synchronous max coupling
}

TEST(HplSimTest, BurstImpactGrowsWithNodeCount) {
  // Same per-node burst profile; more nodes -> higher chance per iteration
  // that some node bursts -> larger relative slowdown.
  auto slowdown_at = [](int n) {
    std::vector<NodeInterference> noisy(static_cast<std::size_t>(n));
    for (auto& node : noisy) {
      node.burst_probability = 0.02;
      node.burst_fraction = 0.03;
    }
    std::vector<NodeInterference> clean(static_cast<std::size_t>(n));
    double noisy_total = 0, clean_total = 0;
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      Rng r1(seed), r2(seed);
      HplSimConfig config;
      config.comm_fraction_per_log2 = 0.0;  // isolate the noise effect
      noisy_total += SimulateHplSeconds(noisy, r1, config);
      clean_total += SimulateHplSeconds(clean, r2, config);
    }
    return noisy_total / clean_total;
  };
  const double at4 = slowdown_at(4);
  const double at64 = slowdown_at(64);
  EXPECT_GT(at64, at4);
  EXPECT_GT(at64, 1.005);
}

// --------------------------------------------------------------- IOR ---

TEST(IorTest, TableIIIRowsMatchPaper) {
  const auto rows = IorParamsTable();
  ASSERT_EQ(rows.size(), 12u);
  EXPECT_EQ(rows[0].flag, "[srun] -n");
  EXPECT_EQ(rows[0].value, "56");
  EXPECT_EQ(rows[1].value, "512");       // transfer bytes
  EXPECT_EQ(rows[2].value, "20");        // minutes
  EXPECT_EQ(rows[3].value, "60");        // stonewall
  EXPECT_EQ(rows[4].value, "1048576");   // repetitions
  EXPECT_EQ(rows[8].value, "POSIX");
  EXPECT_EQ(rows[11].flag, "-Y");
  EXPECT_EQ(rows[11].value, "enabled");
}

TEST(IorTest, OstLoadScalesWithClientsAndDilutesWithOsts) {
  const IorParams params;
  const double one_node = OstCoreLoad(params, 1, 129);
  const double matching = OstCoreLoad(params, 128, 256);
  EXPECT_GT(matching, one_node * 10);
  // More OSTs dilute the per-OST load.
  EXPECT_GT(OstCoreLoad(params, 4, 8), OstCoreLoad(params, 4, 64));
  EXPECT_EQ(OstCoreLoad(params, 0, 8), 0.0);
  EXPECT_EQ(OstCoreLoad(params, 4, 0), 0.0);
}

TEST(IorTest, SyncEveryWriteIsTheExpensivePart) {
  IorParams params;
  const double with_sync = OstCoreLoad(params, 4, 8);
  params.sync_every_write = false;
  EXPECT_LT(OstCoreLoad(params, 4, 8), with_sync * 0.5);
}

TEST(IorTest, MetaLoadStaysSmall) {
  const IorParams params;
  EXPECT_LT(MetaCoreLoad(params, 128, 1), 2.0);
  EXPECT_GT(MetaCoreLoad(params, 128, 1), MetaCoreLoad(params, 1, 1));
}

// ---------------------------------------------------------- Interference ---

TEST(InterferenceTest, StealAndBurstMapping) {
  const NodeInterference clean = ComputeInterference(0.0, 0.0, 56);
  EXPECT_EQ(clean.cpu_steal, 0.0);
  EXPECT_EQ(clean.burst_probability, 0.0);
  EXPECT_EQ(clean.burst_fraction, 0.0);

  const NodeInterference idle = ComputeInterference(0.36, 0.0, 56);
  EXPECT_NEAR(idle.cpu_steal, 0.36 / 56, 1e-9);
  EXPECT_GT(idle.burst_probability, 0.0);
  EXPECT_LT(idle.burst_probability, 0.05);
  EXPECT_GT(idle.burst_fraction, 0.0);

  const NodeInterference loaded = ComputeInterference(0.36, 16.0, 56);
  EXPECT_NEAR(loaded.cpu_steal, 16.36 / 56, 1e-9);
  EXPECT_DOUBLE_EQ(loaded.burst_probability, 0.9);  // capped
  EXPECT_GT(loaded.burst_fraction, idle.burst_fraction);
}

TEST(InterferenceTest, IoBurstSizeSaturates) {
  // fsync stalls are stalls: size roughly load-independent once loaded.
  const double light = ComputeInterference(0.0, 0.25, 56).burst_fraction;
  const double heavy = ComputeInterference(0.0, 16.0, 56).burst_fraction;
  EXPECT_GT(heavy, light);
  EXPECT_LT(heavy / light, 1.5);
}

TEST(InterferenceTest, StealClamped) {
  EXPECT_DOUBLE_EQ(ComputeInterference(0.0, 1000.0, 56).cpu_steal, 0.95);
}

// ------------------------------------------------------------ Experiment ---

TEST(ExperimentTest, ClassNamesAndLayouts) {
  EXPECT_STREQ(to_string(ExperimentClass::kMatchingBeeondNoMeta),
               "Matching BeeOND (no meta)");
  EXPECT_EQ(AllExperimentClasses().size(), 5u);
}

TEST(ExperimentTest, AllocationSizesPerClass) {
  ExperimentConfig config;
  config.hpl_nodes = 4;
  config.repetitions = 2;
  EXPECT_EQ(RunExperiment(ExperimentClass::kHplOnly, config).allocation_nodes, 4);
  EXPECT_EQ(RunExperiment(ExperimentClass::kMatchingLustre, config).allocation_nodes, 8);
  EXPECT_EQ(RunExperiment(ExperimentClass::kSingleBeeond, config).allocation_nodes, 5);
  EXPECT_EQ(RunExperiment(ExperimentClass::kMatchingBeeond, config).allocation_nodes, 8);
  EXPECT_EQ(RunExperiment(ExperimentClass::kMatchingBeeondNoMeta, config).allocation_nodes,
            9);
}

TEST(ExperimentTest, OrderingOfClassesAtModerateScale) {
  ExperimentConfig config;
  config.hpl_nodes = 16;
  config.repetitions = 4;
  const auto lustre = RunExperiment(ExperimentClass::kMatchingLustre, config);
  const auto hpl_only = RunExperiment(ExperimentClass::kHplOnly, config);
  const auto single = RunExperiment(ExperimentClass::kSingleBeeond, config);
  const auto matching = RunExperiment(ExperimentClass::kMatchingBeeond, config);
  // Paper ordering: Lustre < HPL-only (idle daemons) < single < matching.
  EXPECT_LT(lustre.ci.mean, hpl_only.ci.mean);
  EXPECT_LT(hpl_only.ci.mean, single.ci.mean);
  EXPECT_LT(single.ci.mean, matching.ci.mean);
}

TEST(ExperimentTest, ReproductionBandsAt128) {
  ExperimentConfig config;
  config.hpl_nodes = 128;
  config.repetitions = 6;
  const auto lustre = RunExperiment(ExperimentClass::kMatchingLustre, config);
  const auto single = RunExperiment(ExperimentClass::kSingleBeeond, config);
  const auto no_meta = RunExperiment(ExperimentClass::kMatchingBeeondNoMeta, config);
  const double single_overhead = OverheadVs(single, lustre);
  const double no_meta_overhead = OverheadVs(no_meta, lustre);
  EXPECT_GE(single_overhead, 0.07);
  EXPECT_LE(single_overhead, 0.13);
  EXPECT_GE(no_meta_overhead, 0.47);
  EXPECT_LE(no_meta_overhead, 0.52);
}

TEST(ExperimentTest, IdleDaemonOverheadBandAt64) {
  ExperimentConfig config;
  config.hpl_nodes = 64;
  config.repetitions = 8;
  const auto lustre = RunExperiment(ExperimentClass::kMatchingLustre, config);
  const auto hpl_only = RunExperiment(ExperimentClass::kHplOnly, config);
  const double overhead = OverheadVs(hpl_only, lustre);
  EXPECT_GE(overhead, 0.009);
  EXPECT_LE(overhead, 0.025);
}

TEST(ExperimentTest, MatchingVsNoMetaNotDefinitivelyDifferent) {
  ExperimentConfig config;
  config.hpl_nodes = 32;
  config.repetitions = 6;
  const auto matching = RunExperiment(ExperimentClass::kMatchingBeeond, config);
  const auto no_meta = RunExperiment(ExperimentClass::kMatchingBeeondNoMeta, config);
  // Within a few percent of each other (the paper could not separate them).
  EXPECT_NEAR(matching.ci.mean / no_meta.ci.mean, 1.0, 0.05);
}

TEST(ExperimentTest, BeeondLifecycleTimesRecorded) {
  ExperimentConfig config;
  config.hpl_nodes = 8;
  config.repetitions = 2;
  const auto result = RunExperiment(ExperimentClass::kMatchingBeeond, config);
  EXPECT_GT(result.assemble_seconds, 0.0);
  EXPECT_LT(result.assemble_seconds, 3.0);
  EXPECT_GT(result.teardown_seconds, 0.0);
  EXPECT_LT(result.teardown_seconds, 6.0);
  const auto lustre = RunExperiment(ExperimentClass::kMatchingLustre, config);
  EXPECT_EQ(lustre.assemble_seconds, 0.0);
}

// Property sweep: every class at every small node count completes and the
// CI is well-formed.
class ExperimentSweep
    : public ::testing::TestWithParam<std::tuple<ExperimentClass, int>> {};

TEST_P(ExperimentSweep, ProducesWellFormedResults) {
  const auto [experiment_class, nodes] = GetParam();
  ExperimentConfig config;
  config.hpl_nodes = nodes;
  config.repetitions = 3;
  const ExperimentResult result = RunExperiment(experiment_class, config);
  EXPECT_EQ(result.hpl_nodes, nodes);
  ASSERT_EQ(result.runtimes_seconds.size(), 3u);
  for (double t : result.runtimes_seconds) EXPECT_GT(t, 0.0);
  EXPECT_GT(result.ci.mean, 0.0);
  EXPECT_GE(result.ci.half_width, 0.0);
  EXPECT_LE(result.ci.lo(), result.ci.hi());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExperimentSweep,
    ::testing::Combine(::testing::ValuesIn(AllExperimentClasses()),
                       ::testing::Values(1, 2, 4, 8)));

// ------------------------------------------------------------ Mitigations ---

TEST(MitigationTest, EveryStrategyBeatsUnmitigated) {
  MitigationConfig config;
  config.hpl_nodes = 16;
  config.ior_nodes = 16;
  config.repetitions = 4;
  const double baseline =
      EvaluateMitigation(Mitigation::kNone, config).hpl_slowdown;
  EXPECT_GT(baseline, 0.40);  // matching layout hurts ~50%
  for (Mitigation mitigation :
       {Mitigation::kCoreSpecialization, Mitigation::kCpuQuota,
        Mitigation::kPlacementExemption, Mitigation::kDedicatedServiceNodes}) {
    const MitigationOutcome outcome = EvaluateMitigation(mitigation, config);
    EXPECT_LT(outcome.hpl_slowdown, baseline) << to_string(mitigation);
  }
}

TEST(MitigationTest, CoreSpecializationTradesComputeForStorage) {
  MitigationConfig config;
  config.repetitions = 4;
  config.reserved_cores = 2;
  const MitigationOutcome outcome =
      EvaluateMitigation(Mitigation::kCoreSpecialization, config);
  // Compute impact ~ r/(56-r) plus residual noise.
  EXPECT_NEAR(outcome.hpl_slowdown, 2.0 / 54.0, 0.02);
  // Two fenced cores cannot serve ~16 core-equivalents of demand.
  EXPECT_LT(outcome.storage_throughput, 0.2);
  EXPECT_NEAR(outcome.capacity_cost, 2.0 / 56.0, 1e-9);
}

TEST(MitigationTest, QuotaIsSelfRegulating) {
  MitigationConfig config;
  config.repetitions = 4;
  config.quota_cores = 4.0;
  const MitigationOutcome outcome = EvaluateMitigation(Mitigation::kCpuQuota, config);
  // Steal bounded by quota/56.
  EXPECT_LT(outcome.hpl_slowdown, 0.25);
  EXPECT_GT(outcome.hpl_slowdown, 0.03);
  EXPECT_NEAR(outcome.storage_throughput,
              4.0 / (0.36 + OstCoreLoad(config.ior, 16, 32)), 0.01);
  EXPECT_EQ(outcome.capacity_cost, 0.0);
}

TEST(MitigationTest, ExemptionAndDedicatedNodesProtectCompute) {
  MitigationConfig config;
  config.repetitions = 4;
  const MitigationOutcome exempt =
      EvaluateMitigation(Mitigation::kPlacementExemption, config);
  EXPECT_LT(exempt.hpl_slowdown, 0.02);
  EXPECT_DOUBLE_EQ(exempt.storage_throughput, 0.5);  // half the OSTs
  EXPECT_DOUBLE_EQ(exempt.capacity_cost, 0.5);       // exempt SSDs stranded

  const MitigationOutcome dedicated =
      EvaluateMitigation(Mitigation::kDedicatedServiceNodes, config);
  EXPECT_LT(dedicated.hpl_slowdown, 0.01);
  EXPECT_DOUBLE_EQ(dedicated.storage_throughput, 1.0);
  EXPECT_NEAR(dedicated.capacity_cost, 4.0 / 16.0, 1e-9);
}

TEST(MitigationTest, NamesAndEnumeration) {
  EXPECT_EQ(AllMitigations().size(), 5u);
  EXPECT_STREQ(to_string(Mitigation::kCpuQuota), "cpu-quota");
  EXPECT_STREQ(to_string(Mitigation::kPlacementExemption), "placement-exemption");
}

// --------------------------------------------------------------- Profiles ---

TEST(ProfilesTest, ClassificationThresholds) {
  EXPECT_EQ(ClassifyIsolation(0.0), "Strong");
  EXPECT_EQ(ClassifyIsolation(0.049), "Strong");
  EXPECT_EQ(ClassifyIsolation(0.10), "Medium-to-Strong");
  EXPECT_EQ(ClassifyIsolation(0.5), "Weak");
}

TEST(ProfilesTest, SuiteMatchesPaperBands) {
  const auto results = RunProfileSuite();
  ASSERT_EQ(results.size(), 6u);
  EXPECT_EQ(results[0].profile, "CPU-bound");
  EXPECT_EQ(results[0].isolation, "Strong");
  EXPECT_EQ(results[1].isolation, "Strong");
  EXPECT_EQ(results[2].isolation, "Medium-to-Strong");
  EXPECT_EQ(results[3].isolation, "Weak");
  EXPECT_EQ(results[4].isolation, "Weak");
  EXPECT_EQ(results[5].isolation, "Weak");
  for (const auto& result : results) {
    EXPECT_GT(result.solo_score, 0.0);
    EXPECT_GT(result.contended_score, 0.0);
    EXPECT_FALSE(result.benchmark.empty());
  }
}

}  // namespace
}  // namespace ofmf::workloads
