// Zero-copy response path: BufferPool slab recycling and alias safety
// (meant to run under OFMF_SANITIZE=address), Body view semantics, the
// WireParser's zero-copy body extraction and eager compaction, cache-hit
// slab identity through the Redfish service, and partial-writev resumption
// mid-iovec through a real TcpServer on both IoBackends.
#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <vector>

#include "common/bufpool.hpp"
#include "http/message.hpp"
#include "http/server.hpp"
#include "http/wire.hpp"
#include "json/value.hpp"
#include "redfish/schemas.hpp"
#include "redfish/service.hpp"
#include "redfish/tree.hpp"

namespace ofmf {
namespace {

using json::Json;

// ------------------------------------------------------------ BufferPool ---

TEST(BufferPoolTest, ReusesSlabsWithinSizeClass) {
  common::BufferPool pool;
  std::string* raw = nullptr;
  {
    common::BufferPool::Slab slab = pool.Acquire(4096);
    ASSERT_NE(slab, nullptr);
    EXPECT_GE(slab->size(), 4096u);
    raw = slab.get();
  }  // last reference drops: parked, not freed
  common::BufferPool::Slab again = pool.Acquire(4096);
  EXPECT_EQ(again.get(), raw);  // same slab handed back out
  const common::BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.acquired, 2u);
  EXPECT_EQ(stats.reused, 1u);
  EXPECT_EQ(stats.returned, 1u);
}

TEST(BufferPoolTest, RoundsUpToPowerOfTwoClasses) {
  common::BufferPool pool;
  EXPECT_EQ(pool.Acquire(1)->size(), common::BufferPool::kMinSlabBytes);
  EXPECT_EQ(pool.Acquire(4097)->size(), 2 * common::BufferPool::kMinSlabBytes);
  EXPECT_EQ(pool.Acquire(100000)->size(), 131072u);
}

TEST(BufferPoolTest, OversizeRequestsAreServedUnpooled) {
  common::BufferPool pool;
  const std::size_t huge = common::BufferPool::kMaxSlabBytes + 1;
  { common::BufferPool::Slab slab = pool.Acquire(huge); ASSERT_GE(slab->size(), huge); }
  const common::BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.dropped, 1u);   // freed, never parked
  EXPECT_EQ(stats.returned, 0u);
}

TEST(BufferPoolTest, TrimDropsParkedSlabs) {
  common::BufferPool pool;
  std::string* raw = pool.Acquire(4096).get();  // park immediately
  pool.Trim();
  // After Trim the free list is empty; a fresh Acquire may or may not land
  // on the same address (allocator's choice), but stats must show no reuse.
  (void)raw;
  (void)pool.Acquire(4096);
  EXPECT_EQ(pool.stats().reused, 0u);
}

// A Body aliasing a pooled slab keeps it checked out: the slab returns to
// the pool only after the LAST reference drops, so the pool can never hand
// bytes still visible through a view to a new owner. ASan would flag any
// use-after-return here.
TEST(BufferPoolTest, BodyAliasKeepsSlabCheckedOut) {
  common::BufferPool pool;
  http::Body body;
  {
    common::BufferPool::Slab slab = pool.Acquire(4096);
    std::memcpy(slab->data(), "payload-bytes", 13);
    body = http::Body(std::shared_ptr<const std::string>(slab), 0, 13);
  }  // parser-side reference gone; the Body still owns the slab
  EXPECT_EQ(pool.stats().returned, 0u);  // not yet parked
  EXPECT_EQ(body, "payload-bytes");      // bytes still valid under ASan
  body.clear();
  EXPECT_EQ(pool.stats().returned, 1u);  // now it came back
  // And it is genuinely reusable afterwards.
  EXPECT_EQ(pool.stats().acquired, 1u);
  (void)pool.Acquire(4096);
  EXPECT_EQ(pool.stats().reused, 1u);
}

// ------------------------------------------------------------------ Body ---

TEST(BodyTest, ViewSemantics) {
  http::Body empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.slab(), nullptr);
  EXPECT_EQ(empty, "");

  http::Body owned = std::string("hello world");
  EXPECT_EQ(owned.size(), 11u);
  EXPECT_EQ(owned, "hello world");
  EXPECT_EQ(owned.find("world"), 6u);
  EXPECT_EQ(owned.str(), "hello world");

  auto slab = std::make_shared<const std::string>("xxhelloxx");
  http::Body window(slab, 2, 5);
  EXPECT_EQ(window, "hello");
  EXPECT_EQ(window.slab_offset(), 2u);
  EXPECT_EQ(window.slab().get(), slab.get());

  http::Body copy = window;
  EXPECT_EQ(copy.slab().get(), window.slab().get());  // copies share, not dup
  EXPECT_EQ(copy, window);
}

// ------------------------------------------------------------ WireParser ---

TEST(WireParserZeroCopyTest, LargeBodyIsExtractedAsSlabViewNotCopied) {
  http::ResetWireCopyStats();
  http::Request request = http::MakeRequest(http::Method::kPost, "/big");
  request.body = std::string(64 * 1024, 'b');

  http::WireParser parser(http::WireParser::Mode::kRequest);
  parser.Feed(http::SerializeRequest(request));
  ASSERT_TRUE(parser.HasMessage());
  Result<http::Request> parsed = parser.TakeRequest();
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->body.size(), 64u * 1024u);
  EXPECT_NE(parsed->body.slab(), nullptr);
  EXPECT_GT(parsed->body.slab_offset(), 0u);  // views past the header block

  const http::WireCopyStats stats = http::GetWireCopyStats();
  EXPECT_EQ(stats.zero_copy_bodies, 1u);
  // The only copies allowed are serialization-side (building the wire
  // string), never the parse-side body extraction.
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(WireParserZeroCopyTest, PipelinedTailSurvivesZeroCopyExtraction) {
  http::Request big = http::MakeRequest(http::Method::kPost, "/big");
  big.body = std::string(32 * 1024, 'z');
  const http::Request small = http::MakeRequest(http::Method::kGet, "/after");

  http::WireParser parser(http::WireParser::Mode::kRequest);
  parser.Feed(http::SerializeRequest(big) + http::SerializeRequest(small));
  ASSERT_TRUE(parser.HasMessage());
  Result<http::Request> first = parser.TakeRequest();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->body.size(), 32u * 1024u);
  // The relinquished slab froze with the big body; the pipelined tail moved
  // to a fresh slab and still parses.
  ASSERT_TRUE(parser.HasMessage());
  Result<http::Request> second = parser.TakeRequest();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->path, "/after");
}

TEST(WireParserZeroCopyTest, SmallBodiesAreCopiedAndCounted) {
  http::ResetWireCopyStats();
  http::Request request = http::MakeRequest(http::Method::kPost, "/small");
  request.body = std::string(100, 's');

  http::WireParser parser(http::WireParser::Mode::kRequest);
  parser.Feed(http::SerializeRequest(request));
  Result<http::Request> parsed = parser.TakeRequest();
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->body.size(), 100u);
  EXPECT_EQ(http::GetWireCopyStats().zero_copy_bodies, 0u);
  EXPECT_GE(http::GetWireCopyStats().body_copies, 1u);
}

TEST(WireParserZeroCopyTest, BufferCompactsAfterLargeFramedMessage) {
  http::Request big = http::MakeRequest(http::Method::kPost, "/big");
  big.body = std::string(1024 * 1024, 'q');

  http::WireParser parser(http::WireParser::Mode::kRequest);
  parser.Feed(http::SerializeRequest(big));
  EXPECT_GE(parser.buffer_capacity(), 1024u * 1024u);
  ASSERT_TRUE(parser.TakeRequest().ok());
  // The megabyte slab went with the body; the parser must not still pin
  // peak-request memory for the (empty) keep-alive tail.
  EXPECT_LE(parser.buffer_capacity(), 2 * http::WireParser::kZeroCopyBodyBytes);
}

// ---------------------------------------------- Redfish cache slab sharing ---

class ZeroCopyCacheTest : public ::testing::Test {
 protected:
  ZeroCopyCacheTest() : service_(tree_, redfish::SchemaRegistry::BuiltIn()) {
    EXPECT_TRUE(tree_.Create("/redfish/v1", "#ServiceRoot.v1_15_0.ServiceRoot",
                             Json::Obj({{"Name", "root"}}))
                    .ok());
    EXPECT_TRUE(tree_.CreateCollection("/redfish/v1/Fabrics",
                                       "#FabricCollection.FabricCollection", "Fabrics")
                    .ok());
    EXPECT_TRUE(tree_.Create("/redfish/v1/Fabrics/f", "#Fabric.v1_3_0.Fabric",
                             Json::Obj({{"Name", "f"}, {"FabricType", "CXL"}}))
                    .ok());
    EXPECT_TRUE(tree_.AddMember("/redfish/v1/Fabrics", "/redfish/v1/Fabrics/f").ok());
  }

  http::Response Get(const std::string& target) {
    return service_.Handle(http::MakeRequest(http::Method::kGet, target));
  }

  redfish::ResourceTree tree_;
  redfish::RedfishService service_;
};

// The zero-copy contract end to end: the miss builds one slab, the cache
// stores it, and every subsequent hit hands out THE SAME slab — pointer
// identity, not just equal bytes.
TEST_F(ZeroCopyCacheTest, CacheHitsShareOneBodySlab) {
  const http::Response miss = Get("/redfish/v1/Fabrics/f");
  ASSERT_EQ(miss.status, 200);
  ASSERT_NE(miss.body.slab(), nullptr);

  const http::Response hit1 = Get("/redfish/v1/Fabrics/f");
  const http::Response hit2 = Get("/redfish/v1/Fabrics/f");
  ASSERT_EQ(hit1.status, 200);
  ASSERT_EQ(hit2.status, 200);
  EXPECT_EQ(hit1.body.slab().get(), miss.body.slab().get());
  EXPECT_EQ(hit2.body.slab().get(), miss.body.slab().get());
  EXPECT_EQ(hit1.body, miss.body);

  // Hits also carry the pre-serialized head: the transport writes it
  // verbatim, serializing nothing.
  EXPECT_NE(hit1.wire_head(), nullptr);
  EXPECT_EQ(hit1.wire_head().get(), hit2.wire_head().get());
}

TEST_F(ZeroCopyCacheTest, MutationInvalidatesSharedSlab) {
  const http::Response before = Get("/redfish/v1/Fabrics/f");
  ASSERT_TRUE(tree_.Patch("/redfish/v1/Fabrics/f", Json::Obj({{"MaxZones", 4}})).ok());
  const http::Response after = Get("/redfish/v1/Fabrics/f");
  ASSERT_EQ(after.status, 200);
  EXPECT_NE(after.body.slab().get(), before.body.slab().get());
  EXPECT_NE(after.headers.Get("ETag"), before.headers.Get("ETag"));
  // The old response still reads its (now superseded) slab safely.
  EXPECT_GT(before.body.size(), 0u);
}

TEST_F(ZeroCopyCacheTest, MutatingHeadersAfterAttachInvalidatesWireHead) {
  (void)Get("/redfish/v1/Fabrics/f");  // seed the cache
  http::Response hit = Get("/redfish/v1/Fabrics/f");
  ASSERT_NE(hit.wire_head(), nullptr);
  hit.headers.Set("X-Trace-Id", "abc123");  // post-handler stamp
  EXPECT_EQ(hit.wire_head(), nullptr);  // stale head must not hit the wire
}

// ------------------------------------------- wire-level writev resumption ---

class ZeroCopyWireTest : public ::testing::TestWithParam<http::IoBackendKind> {
 protected:
  void SetUp() override {
    if (GetParam() == http::IoBackendKind::kUring && !http::IoUringSupported()) {
      GTEST_SKIP() << "io_uring unavailable on this kernel";
    }
  }
  http::ServerOptions Options() const {
    http::ServerOptions options;
    options.io_backend = GetParam();
    return options;
  }
};

INSTANTIATE_TEST_SUITE_P(Backends, ZeroCopyWireTest,
                         ::testing::Values(http::IoBackendKind::kEpoll,
                                           http::IoBackendKind::kUring),
                         [](const ::testing::TestParamInfo<http::IoBackendKind>& backend) {
                           return std::string(http::to_string(backend.param));
                         });

int ConnectLoopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << std::strerror(errno);
  return fd;
}

// A multi-megabyte response cannot fit the socket buffer: sendmsg returns
// partial writes that stop inside the body iovec, and the outbox must
// resume mid-segment without corrupting or duplicating bytes. The client
// reads in deliberately tiny chunks to maximize the number of partial
// writes, then checksums the body byte-for-byte.
TEST_P(ZeroCopyWireTest, PartialWritevResumesMidIovecWithoutCorruption) {
  // A patterned body makes any mid-iovec resumption bug (skipped or
  // repeated range) corrupt the comparison, not just the length.
  std::string expected(4 * 1024 * 1024, '\0');
  for (std::size_t i = 0; i < expected.size(); ++i) {
    expected[i] = static_cast<char>('A' + (i % 23));
  }
  auto slab = std::make_shared<const std::string>(expected);

  http::TcpServer server;
  ASSERT_TRUE(server
                  .Start([slab](const http::Request&) {
                    http::Response response;
                    response.status = 200;
                    response.body = http::Body(slab);
                    response.headers.Set("Content-Type", "application/octet-stream");
                    return response;
                  },
                  0, Options())
                  .ok());

  // A 4 MiB body far exceeds the default loopback socket buffers, so the
  // first sendmsg is guaranteed partial and the flush resumes mid-iovec.
  const int fd = ConnectLoopback(server.port());
  const std::string wire = "GET /blob HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(wire.size()));

  http::WireParser parser(http::WireParser::Mode::kResponse);
  std::vector<char> chunk(64 * 1024);
  while (!parser.HasMessage()) {
    const ssize_t n = ::recv(fd, chunk.data(), chunk.size(), 0);
    ASSERT_GT(n, 0) << "connection died mid-response";
    parser.Feed(std::string_view(chunk.data(), static_cast<std::size_t>(n)));
  }
  Result<http::Response> response = parser.TakeResponse();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  ASSERT_EQ(response->body.size(), expected.size());
  EXPECT_TRUE(response->body == expected);  // full byte-for-byte comparison

  ::close(fd);
  EXPECT_GT(server.stats().io_send_calls, 1u);  // provably flushed in parts
  server.Stop();
}

// The server-side copy discipline on the wire: with a pre-attached head and
// a slab body, queueing and flushing a response performs no user-space body
// copy at all (the recv/parse side of the echoed GET is header-only).
TEST_P(ZeroCopyWireTest, CachedStyleResponseMovesZeroBodyBytesInUserSpace) {
  auto slab = std::make_shared<const std::string>(std::string(256 * 1024, 'c'));
  http::TcpServer server;
  ASSERT_TRUE(server
                  .Start([slab](const http::Request&) {
                    http::Response response;
                    response.status = 200;
                    response.body = http::Body(slab);
                    response.headers.Set("Content-Type", "application/octet-stream");
                    response.set_wire_head(std::make_shared<const std::string>(
                        http::SerializeResponseHead(response, slab->size())));
                    return response;
                  },
                  0, Options())
                  .ok());
  const int fd = ConnectLoopback(server.port());
  const std::string wire = "GET /c HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(wire.size()));

  http::ResetWireCopyStats();  // measure only the response path from here
  http::WireParser parser(http::WireParser::Mode::kResponse);
  std::vector<char> chunk(64 * 1024);
  while (!parser.HasMessage()) {
    const ssize_t n = ::recv(fd, chunk.data(), chunk.size(), 0);
    ASSERT_GT(n, 0);
    parser.Feed(std::string_view(chunk.data(), static_cast<std::size_t>(n)));
  }
  Result<http::Response> response = parser.TakeResponse();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->body.size(), slab->size());
  ::close(fd);
  // Server: head slab + Connection fragment + body slab via sendmsg — no
  // serialization, no concatenation. Client: ≥4 KiB body extracted as a
  // slab view. Either side copying body bytes in user space trips this.
  EXPECT_EQ(http::GetWireCopyStats().body_bytes_copied, 0u);
  server.Stop();
}

}  // namespace
}  // namespace ofmf
